// Finance: the §2.2 motivation — a cloud provider peering with a financial
// exchange needs parsing logic that classifies market-data traffic at line
// rate. This example defines an exchange-feed protocol (a framing header
// whose message type selects between trade, quote, and heartbeat layouts),
// compiles it for both device families, and classifies a feed.
package main

import (
	"fmt"
	"log"

	"parserhawk"
)

// A compact market-data framing: every message starts with a 4-bit
// session tag and a 4-bit message type; trades carry price and size,
// quotes carry bid and ask, heartbeats carry a sequence number.
const feedParser = `
header frame {
    bit<4> session;
    bit<4> msgType;
}
header trade {
    bit<8> price;
    bit<4> size;
}
header quote {
    bit<8> bid;
    bit<8> ask;
}
header heartbeat {
    bit<4> seq;
}
parser ExchangeFeed {
    state start {
        extract(frame);
        transition select(frame.msgType) {
            1       : parse_trade;
            2       : parse_quote;
            3       : parse_heartbeat;
            default : reject;
        }
    }
    state parse_trade     { extract(trade);     transition accept; }
    state parse_quote     { extract(quote);     transition accept; }
    state parse_heartbeat { extract(heartbeat); transition accept; }
}
`

func main() {
	spec, err := parserhawk.ParseSpec(feedParser)
	if err != nil {
		log.Fatal(err)
	}

	// The same specification compiles for both device families — the
	// retargetability the paper demonstrates in §7.3.
	for _, target := range []parserhawk.Profile{parserhawk.Tofino(), parserhawk.IPU()} {
		res, err := parserhawk.Compile(spec, target, parserhawk.DefaultOptions())
		if err != nil {
			log.Fatalf("%s: %v", target.Name, err)
		}
		if rep := parserhawk.Verify(spec, res.Program, 0); !rep.OK() {
			log.Fatalf("%s: %s", target.Name, rep)
		}
		fmt.Printf("%-8s %d TCAM entries, %d stages (verified)\n",
			target.Name+":", res.Resources.Entries, res.Resources.Stages)
	}

	// Classify a burst of feed messages with the Tofino build.
	res, err := parserhawk.Compile(spec, parserhawk.Tofino(), parserhawk.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	messages := []struct {
		name string
		bits parserhawk.Bits
	}{
		// session 5, trade: price 0x80, size 3
		{"trade", parserhawk.Uint(0x51_80_3, 20)},
		// session 5, quote: bid 0x41, ask 0x42
		{"quote", parserhawk.Uint(0x52_41_42, 24)},
		// session 7, heartbeat: seq 9
		{"heartbeat", parserhawk.Uint(0x73_9, 12)},
		// unknown message type 0xF: dropped at line rate
		{"garbage", parserhawk.Uint(0x5F_00, 16)},
	}
	fmt.Println("\nclassifying feed messages:")
	for _, m := range messages {
		out := res.Program.Run(m.bits, 0)
		switch {
		case out.Rejected:
			fmt.Printf("  %-10s -> dropped (unknown message type)\n", m.name)
		case len(out.Dict["trade.price"]) > 0:
			fmt.Printf("  %-10s -> trade  price=%d size=%d\n", m.name,
				out.Dict["trade.price"].Uint(0, 8), out.Dict["trade.size"].Uint(0, 4))
		case len(out.Dict["quote.bid"]) > 0:
			fmt.Printf("  %-10s -> quote  bid=%d ask=%d\n", m.name,
				out.Dict["quote.bid"].Uint(0, 8), out.Dict["quote.ask"].Uint(0, 8))
		default:
			fmt.Printf("  %-10s -> heartbeat seq=%d\n", m.name,
				out.Dict["heartbeat.seq"].Uint(0, 4))
		}
	}
}
