// Interleaved: the third parser architecture of the paper's Figure 2(c)
// (Broadcom Trident style). The device parses an outer header, jumps into
// the match-action pipeline — which REWRITES a header field — and resumes
// parsing with decisions based on the rewritten value.
//
// The scenario: a datacenter receives tunnel traffic from two merged
// vendors whose gear stamps private protocol codes (0xA and 0xB) instead
// of the canonical code 0x3. A normalization table in the pipeline maps
// the private codes to the canonical one; the second sub-parser then
// selects on the normalized code. No single-pass parser can express this:
// the value being matched never appears in the packet.
package main

import (
	"fmt"
	"log"

	"parserhawk"
	"parserhawk/internal/bitstream"
	"parserhawk/internal/core"
	"parserhawk/internal/interleave"
	"parserhawk/internal/mat"
	"parserhawk/internal/p4"
)

func main() {
	outer := p4.MustParseSpec(`
header outer { bit<4> proto; }
parser Outer {
    state start { extract(outer); transition accept; }
}
`)
	inner := p4.MustParseSpec(`
header outer  { bit<4> proto; }
header tunnel { bit<8> vni; }
parser Inner {
    state start {
        transition select(outer.proto) {
            0x3     : parse_tunnel;
            default : accept;
        }
    }
    state parse_tunnel { extract(tunnel); transition accept; }
}
`)
	normalize := &mat.Pipeline{Tables: []mat.Table{{
		Name: "normalize-vendor-codes",
		Rules: []mat.Rule{{
			// 0xA and 0xB (mask 0b1110 covers both) -> canonical 0x3.
			Match:   []mat.FieldMatch{{Field: "outer.proto", Value: 0xA, Mask: 0xE, Width: 4}},
			Actions: []mat.Action{{Field: "outer.proto", Width: 4, SetConst: mat.U64(0x3)}},
		}},
	}}}

	chain := []interleave.Stage{
		{Spec: outer, Pipe: normalize},
		{Spec: inner, Imports: []string{"outer.proto"}},
	}

	prog, err := interleave.Compile(chain, parserhawk.IPU(), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	r := prog.Resources()
	fmt.Printf("compiled %d sub-parsers: %d entries, %d pipeline segments total\n\n",
		len(prog.Stages), r.Entries, r.Stages)

	fmt.Println("normalization pipeline between the sub-parsers:")
	fmt.Print(normalize)

	packets := []struct {
		name string
		in   parserhawk.Bits
	}{
		{"vendor A code 0xA", bitstream.MustFromString("1010_01011100")},
		{"vendor B code 0xB", bitstream.MustFromString("1011_01011100")},
		{"canonical 0x3    ", bitstream.MustFromString("0011_01011100")},
		{"unrelated 0x7    ", bitstream.MustFromString("0111_01011100")},
	}
	fmt.Println("\nparsing tunnel packets through the interleaved chain:")
	for _, p := range packets {
		// Cross-check against the chain's reference semantics.
		impl := prog.Run(p.in, 0)
		spec := interleave.RunSpec(chain, p.in, 0)
		if impl.Accepted != spec.Accepted || !impl.Dict.Equal(spec.Dict) {
			log.Fatalf("%s: compiled chain diverges from reference", p.name)
		}
		if vni, ok := impl.Dict["tunnel.vni"]; ok {
			fmt.Printf("  %s -> tunnel parsed, vni=%d (proto normalized to %#x)\n",
				p.name, vni.Uint(0, 8), impl.Dict["outer.proto"].Uint(0, 4))
		} else {
			fmt.Printf("  %s -> no tunnel header (proto %#x)\n",
				p.name, impl.Dict["outer.proto"].Uint(0, 4))
		}
	}
	fmt.Println("\nNote: codes 0xA/0xB parse the tunnel even though the match value 0x3")
	fmt.Println("never appears on the wire — the pipeline feedback of Figure 2(c).")
}
