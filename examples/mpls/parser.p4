// MPLS label-stack parser: Ethernet -> MPLS loop until bottom-of-stack.
// A clean loopy spec: every loop iteration consumes a full 32-bit label,
// so SpecLint stays silent on single-table targets and only notes the
// bounded unrolling on pipelined ones.
//
//   go run ./cmd/parserhawk -target tofino examples/mpls/parser.p4
//   go run ./cmd/parserhawk -lint examples/mpls/parser.p4
//
header ethernet {
    bit<48> dst;
    bit<48> src;
    bit<16> etherType;
}
header mpls {
    bit<20> label;
    bit<3>  exp;
    bit<1>  bos;
    bit<8>  ttl;
}
parser MPLS {
    state start {
        extract(ethernet);
        transition select(ethernet.etherType) {
            0x8847  : parse_mpls;
            default : accept;
        }
    }
    state parse_mpls {
        extract(mpls);
        transition select(mpls.bos) {
            0       : parse_mpls;
            default : accept;
        }
    }
}
