// Quickstart: compile a classic Ethernet → IPv4 → TCP/UDP parser for the
// Tofino profile, inspect the synthesized TCAM entries, and push a real
// packet through the compiled implementation.
package main

import (
	"fmt"
	"log"

	"parserhawk"
	"parserhawk/internal/pkt"
	"parserhawk/internal/sim"
)

func main() {
	// The wire-scale parser: real field widths (48-bit MACs, 16-bit
	// etherType, full IPv4 header).
	spec, err := parserhawk.ParseSpec(sim.WireParserSource)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("specification:")
	fmt.Print(spec)

	res, err := parserhawk.Compile(spec, parserhawk.Tofino(), parserhawk.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsynthesized TCAM program:")
	fmt.Print(res.Program)
	fmt.Printf("resources: %d entries, key width %d bits, %d CEGIS iterations (%.2fs)\n",
		res.Resources.Entries, res.Resources.MaxKeyWidth,
		res.Stats.CEGISIterations, res.Stats.Elapsed.Seconds())

	// Equivalence check (the paper's §7.1 simulator).
	rep := parserhawk.Verify(spec, res.Program, 4096)
	fmt.Println("verification:", rep)

	// Drive a real TCP packet through the compiled parser.
	raw, err := pkt.TCPPacket(
		[4]byte{10, 0, 0, 1}, [4]byte{192, 168, 1, 42}, 49152, 443, []byte("hello"))
	if err != nil {
		log.Fatal(err)
	}
	out := res.Program.Run(parserhawk.BitsOf(raw), 0)
	fmt.Printf("\nparsed a %d-byte TCP packet: accepted=%v\n", len(raw), out.Accepted)
	for _, f := range []string{"ethernet.etherType", "ipv4.protocol", "ipv4.dst", "tcp.dstPort"} {
		if v, ok := out.Dict[f]; ok {
			fmt.Printf("  %-22s = %s\n", f, v)
		}
	}
	if got := out.Dict["tcp.dstPort"].Uint(0, 16); got != 443 {
		log.Fatalf("wrong dstPort: %d", got)
	}
	fmt.Println("\nOK: the synthesized parser extracts every field correctly.")
}
