// The quickstart parser: wire-scale Ethernet -> IPv4 -> TCP/UDP.
// Compile it with:
//
//   go run ./cmd/parserhawk -target tofino examples/quickstart/parser.p4
//
header ethernet {
    bit<48> dst;
    bit<48> src;
    bit<16> etherType;
}
header ipv4 {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  tos;
    bit<16> totalLen;
    bit<16> id;
    bit<16> fragOff;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> checksum;
    bit<32> src;
    bit<32> dst;
}
header tcp {
    bit<16> srcPort;
    bit<16> dstPort;
}
header udp {
    bit<16> srcPort;
    bit<16> dstPort;
}
parser EthernetIP {
    state start {
        extract(ethernet);
        transition select(ethernet.etherType) {
            0x0800  : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.protocol) {
            6       : parse_tcp;
            17      : parse_udp;
            default : accept;
        }
    }
    state parse_tcp { extract(tcp); transition accept; }
    state parse_udp { extract(udp); transition accept; }
}
