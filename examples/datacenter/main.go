// Datacenter: the intro's packet-origin identification scenario — a cloud
// provider tags traffic with an origin header (internal server, premium
// customer, financial exchange) before routing into the packet-processing
// pipeline. The example also demonstrates the paper's robustness claim:
// two differently written but semantically equivalent versions of the
// parser compile to the SAME hardware footprint, while a written-form
// compiler would charge extra for the sloppier one.
package main

import (
	"fmt"
	"log"

	"parserhawk"
)

// The clean version a careful engineer writes: merged ternary matches.
const cleanParser = `
header origin { bit<4> class; }
header internal { bit<4> rack; }
header premium  { bit<4> tier; }
header exchange { bit<8> venue; }
parser Origin {
    state start {
        extract(origin);
        transition select(origin.class) {
            0b0000 &&& 0b1100 : from_internal;  // classes 0-3
            0b0100 &&& 0b1100 : from_premium;   // classes 4-7
            0b1000            : from_exchange;
            default           : reject;
        }
    }
    state from_internal { extract(internal); transition accept; }
    state from_premium  { extract(premium);  transition accept; }
    state from_exchange { extract(exchange); transition accept; }
}
`

// The grown-organically version: every class spelled out, one duplicated
// (copy-paste), exactly the +R1/+R3 drift of the paper's Figure 21.
const sloppyParser = `
header origin { bit<4> class; }
header internal { bit<4> rack; }
header premium  { bit<4> tier; }
header exchange { bit<8> venue; }
parser Origin {
    state start {
        extract(origin);
        transition select(origin.class) {
            0  : from_internal;
            1  : from_internal;
            2  : from_internal;
            3  : from_internal;
            3  : from_internal;
            4  : from_premium;
            5  : from_premium;
            6  : from_premium;
            7  : from_premium;
            8  : from_exchange;
            default : reject;
        }
    }
    state from_internal { extract(internal); transition accept; }
    state from_premium  { extract(premium);  transition accept; }
    state from_exchange { extract(exchange); transition accept; }
}
`

func main() {
	clean, err := parserhawk.ParseSpec(cleanParser)
	if err != nil {
		log.Fatal(err)
	}
	sloppy, err := parserhawk.ParseSpec(sloppyParser)
	if err != nil {
		log.Fatal(err)
	}

	opts := parserhawk.DefaultOptions()
	target := parserhawk.Tofino()

	cleanRes, err := parserhawk.Compile(clean, target, opts)
	if err != nil {
		log.Fatal(err)
	}
	sloppyRes, err := parserhawk.Compile(sloppy, target, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clean source : %d TCAM entries\n", cleanRes.Resources.Entries)
	fmt.Printf("sloppy source: %d TCAM entries\n", sloppyRes.Resources.Entries)
	if cleanRes.Resources.Entries == sloppyRes.Resources.Entries {
		fmt.Println("-> identical footprint: synthesis sees semantics, not style")
	} else {
		log.Fatal("style dependence detected — this should not happen")
	}

	// Both are verified equivalent to their specs; and the two specs are
	// equivalent to each other, so either program classifies correctly.
	for _, rep := range []parserhawk.VerifyReport{
		parserhawk.Verify(clean, cleanRes.Program, 0),
		parserhawk.Verify(clean, sloppyRes.Program, 0), // cross-check styles
	} {
		if !rep.OK() {
			log.Fatalf("verification failed: %s", rep)
		}
	}

	fmt.Println("\nclassifying traffic with the compiled parser:")
	cases := []struct {
		name string
		in   parserhawk.Bits
	}{
		{"internal rack 7", parserhawk.Uint(0x2_7, 8)},
		{"premium tier 2", parserhawk.Uint(0x6_2, 8)},
		{"exchange venue 0x2A", parserhawk.Uint(0x8_2A, 12)},
		{"unknown class", parserhawk.Uint(0xF_0, 8)},
	}
	for _, c := range cases {
		out := cleanRes.Program.Run(c.in, 0)
		switch {
		case out.Rejected:
			fmt.Printf("  %-20s -> dropped\n", c.name)
		case len(out.Dict["internal.rack"]) > 0:
			fmt.Printf("  %-20s -> internal (rack %d)\n", c.name, out.Dict["internal.rack"].Uint(0, 4))
		case len(out.Dict["premium.tier"]) > 0:
			fmt.Printf("  %-20s -> premium (tier %d)\n", c.name, out.Dict["premium.tier"].Uint(0, 4))
		default:
			fmt.Printf("  %-20s -> exchange (venue %#x)\n", c.name, out.Dict["exchange.venue"].Uint(0, 8))
		}
	}
}
