// SpecLint demo: a spec that compiles — none of the defects are
// error-severity — but carries one of each prunable smell:
//
//   PH002 shadowed-rule      the second 0x0800 arm can never be the first
//                            match (SAT-proved), so it is pruned;
//   PH003 dead-default       parse_ver's two arms cover the whole 1-bit
//                            key, so its default is unreachable;
//   PH001 unreachable-state  parse_legacy is only reachable through the
//                            shadowed arm, so after rule pruning it is
//                            orphaned and pruned too.
//
//   go run ./cmd/parserhawk -lint examples/lint/shadowed.p4
//
header ethernet {
    bit<48> dst;
    bit<48> src;
    bit<16> etherType;
}
header flag {
    bit<1> v6;
    bit<7> rsvd;
}
header legacy {
    bit<8> kind;
}
parser LintDemo {
    state start {
        extract(ethernet);
        transition select(ethernet.etherType) {
            0x0800  : parse_ver;
            0x0800  : parse_legacy;
            default : accept;
        }
    }
    state parse_ver {
        extract(flag);
        transition select(flag.v6) {
            0       : accept;
            1       : accept;
            default : reject;
        }
    }
    state parse_legacy {
        extract(legacy);
        transition accept;
    }
}
