// Retarget: compile one specification for three increasingly constrained
// devices — a loop-capable single-table parser, a pipelined parser, and a
// narrow-key device that forces transition-key splitting (§6.4.3). The
// program includes an MPLS-style loop, so the three backends exercise
// loop reuse, bounded unrolling, and key splitting respectively.
package main

import (
	"fmt"
	"log"

	"parserhawk"
)

const tunnelParser = `
header shim { bit<3> label; bit<1> last; }
header inner { bit<8> kind; }
header payload { bit<4> data; }
parser Tunnel {
    state start {
        extract(shim);
        transition select(shim.last) {
            0       : start;
            default : parse_inner;
        }
    }
    state parse_inner {
        extract(inner);
        transition select(inner.kind) {
            0xA5    : parse_payload;
            default : accept;
        }
    }
    state parse_payload { extract(payload); transition accept; }
}
`

func main() {
	spec, err := parserhawk.ParseSpec(tunnelParser)
	if err != nil {
		log.Fatal(err)
	}

	opts := parserhawk.DefaultOptions()
	opts.MaxIterations = 4 // loop unroll depth for pipelined targets

	// 1. Single TCAM table (Tofino-like): the loop becomes one revisited
	//    entry — the paper's §3.1 MPLS trick.
	tofino, err := parserhawk.Compile(spec, parserhawk.Tofino(), opts)
	if err != nil {
		log.Fatal("tofino:", err)
	}
	fmt.Printf("single-table : %2d entries, %d states  (loop reused in place)\n",
		tofino.Resources.Entries, tofino.Resources.States)
	if rep := parserhawk.Verify(spec, tofino.Program, 0); !rep.OK() {
		log.Fatalf("tofino: %s", rep)
	}

	// 2. Pipelined (IPU-like): loops cannot revisit a stage, so the
	//    compiler unrolls to the configured depth; the device drops deeper
	//    stacks. The equivalence contract is the bounded unrolling.
	ipu, err := parserhawk.Compile(spec, parserhawk.IPU(), opts)
	if err != nil {
		log.Fatal("ipu:", err)
	}
	fmt.Printf("pipelined    : %2d entries, %d stages  (loop unrolled %dx)\n",
		ipu.Resources.Entries, ipu.Resources.Stages, opts.MaxIterations)
	bounded, err := parserhawk.Unroll(spec, opts.MaxIterations)
	if err != nil {
		log.Fatal(err)
	}
	if rep := parserhawk.Verify(bounded, ipu.Program, 0); !rep.OK() {
		log.Fatalf("ipu: %s", rep)
	}

	// 3. Narrow-key device: inner.kind is an 8-bit key but the device
	//    matches at most 4 bits per entry, so the key splits across a
	//    synthesized state tree (Figure 4 Step 2).
	narrowDev := parserhawk.Custom(4, 12, 16)
	narrow, err := parserhawk.Compile(spec, narrowDev, opts)
	if err != nil {
		log.Fatal("narrow:", err)
	}
	fmt.Printf("narrow (4bit): %2d entries, key width %d  (8-bit key split)\n",
		narrow.Resources.Entries, narrow.Resources.MaxKeyWidth)
	if narrow.Resources.MaxKeyWidth > 4 {
		log.Fatal("key split failed")
	}
	if rep := parserhawk.Verify(spec, narrow.Program, 0); !rep.OK() {
		log.Fatalf("narrow: %s", rep)
	}

	// Same traffic through all three.
	fmt.Println("\nparsing a 2-shim tunnel packet on every device:")
	in := parserhawk.Uint(0b0010_1011_10100101_0110, 20) // shim, shim(last), inner 0xA5, payload 6
	for name, prog := range map[string]*parserhawk.Program{
		"single-table": tofino.Program, "pipelined": ipu.Program, "narrow": narrow.Program,
	} {
		out := prog.Run(in, 0)
		fmt.Printf("  %-13s accepted=%v payload=%v\n", name, out.Accepted, out.Dict["payload.data"])
	}
}
