package parserhawk_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parserhawk"
)

const quickSource = `
header eth  { bit<4> etherType; }
header ipv4 { bit<4> ttl; }
parser Quick {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            4       : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 { extract(ipv4); transition accept; }
}
`

func TestCompileSourceEndToEnd(t *testing.T) {
	res, err := parserhawk.CompileSource(quickSource, parserhawk.Tofino(), parserhawk.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resources.Entries == 0 {
		t.Fatal("no entries")
	}
	spec, _ := parserhawk.ParseSpec(quickSource)
	rep := parserhawk.Verify(spec, res.Program, 0)
	if !rep.OK() {
		t.Fatalf("verification failed: %s", rep)
	}
	// Parse a concrete "packet": etherType 4, ttl 9.
	out := res.Program.Run(parserhawk.Uint(0x49, 8), 0)
	if !out.Accepted {
		t.Fatal("packet rejected")
	}
	if got := out.Dict["ipv4.ttl"].Uint(0, 4); got != 9 {
		t.Errorf("ttl=%d", got)
	}
}

func TestCompileFileAndParseErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "quick.p4")
	if err := os.WriteFile(path, []byte(quickSource), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := parserhawk.CompileFile(path, parserhawk.IPU(), parserhawk.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resources.Stages < 1 {
		t.Error("no stages")
	}
	if _, err := parserhawk.CompileFile(filepath.Join(dir, "missing.p4"),
		parserhawk.Tofino(), parserhawk.DefaultOptions()); err == nil {
		t.Error("missing file must error")
	}
	if _, err := parserhawk.CompileSource("garbage", parserhawk.Tofino(),
		parserhawk.DefaultOptions()); err == nil {
		t.Error("bad source must error")
	}
}

func TestCustomProfileKeySplitting(t *testing.T) {
	src := `
header h { bit<8> k; }
parser P {
    state start {
        extract(h);
        transition select(h.k) {
            0xA5    : hit;
            default : accept;
        }
    }
    state hit { transition reject; }
}
`
	res, err := parserhawk.CompileSource(src, parserhawk.Custom(4, 8, 16), parserhawk.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resources.MaxKeyWidth > 4 {
		t.Errorf("key width %d exceeds custom device limit 4", res.Resources.MaxKeyWidth)
	}
	spec, _ := parserhawk.ParseSpec(src)
	if rep := parserhawk.Verify(spec, res.Program, 0); !rep.OK() {
		t.Fatalf("split program wrong: %s", rep)
	}
}

func TestBitsOfRoundTrip(t *testing.T) {
	b := parserhawk.BitsOf([]byte{0xDE, 0xAD})
	if b.Uint(0, 16) != 0xDEAD {
		t.Error("BitsOf wrong")
	}
}

func TestUnrollExported(t *testing.T) {
	src := `
header mpls { bit<3> label; bit<1> bos; }
parser P {
    state start {
        extract(mpls);
        transition select(mpls.bos) {
            0       : start;
            default : accept;
        }
    }
}
`
	spec, err := parserhawk.ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	un, err := parserhawk.Unroll(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if un.HasLoop() {
		t.Error("unrolled spec must be loop-free")
	}
	if len(un.States) != 3*len(spec.States) {
		t.Errorf("states=%d", len(un.States))
	}
}

func TestProgramRendering(t *testing.T) {
	res, err := parserhawk.CompileSource(quickSource, parserhawk.Tofino(), parserhawk.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Program.String(); !strings.Contains(s, "TID:0 SID:0") {
		t.Errorf("program rendering:\n%s", s)
	}
}

func TestNaiveOptionsStillCorrect(t *testing.T) {
	res, err := parserhawk.CompileSource(quickSource, parserhawk.Tofino(), parserhawk.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := parserhawk.ParseSpec(quickSource)
	if rep := parserhawk.Verify(spec, res.Program, 0); !rep.OK() {
		t.Fatalf("naive mode produced a wrong program: %s", rep)
	}
}
