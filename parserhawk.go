// Package parserhawk is a hardware-aware parser generator using program
// synthesis — a from-scratch reproduction of "ParserHawk: Hardware-aware
// parser generator using program synthesis" (SIGCOMM 2025).
//
// ParserHawk compiles a P4-style parser specification into the TCAM
// configuration of a line-rate programmable parser. Instead of rewrite
// rules, it runs counterexample-guided inductive synthesis (CEGIS) over a
// built-in SAT/bitvector solver, searching for the semantically equivalent
// implementation that uses the fewest hardware resources — TCAM entries on
// single-table devices like the Barefoot Tofino, pipeline stages on
// pipelined devices like the Intel IPU.
//
// # Quick start
//
//	spec, err := parserhawk.ParseSpec(source)           // P4 subset text
//	res, err := parserhawk.Compile(spec, parserhawk.Tofino(), parserhawk.DefaultOptions())
//	fmt.Println(res.Program)                            // the TCAM entries
//	out := res.Program.Run(parserhawk.BitsOf(packet), 0) // parse a packet
//
// The compiler is retargetable: the same specification compiles for any
// Profile, and a new device needs only a new Profile (§7.3). The seven
// optimizations of the paper's §6 are individually toggleable through
// Options; DefaultOptions enables all of them, NaiveOptions none (the
// paper's "Orig" mode).
package parserhawk

import (
	"context"
	"fmt"
	"os"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/cert"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/lint"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
	"parserhawk/internal/sim"
	"parserhawk/internal/tcam"
)

// Spec is a parser specification: a finite-state machine of extraction
// and transition actions. Build one with ParseSpec or pir constructors.
type Spec = pir.Spec

// Program is a compiled TCAM parser implementation. Its Run method
// interprets the device semantics (Figure 6 of the paper).
type Program = tcam.Program

// Profile describes a target device's parser architecture and resource
// limits. Tofino, IPU, and Custom build common profiles.
type Profile = hw.Profile

// Options toggles the synthesis optimizations and budgets (§6).
type Options = core.Options

// Result is a successful compilation.
type Result = core.Result

// Stats reports how a compilation went.
type Stats = core.Stats

// SolverStats aggregates CDCL and bit-blasting counters over every solver
// instance a compilation ran, including racing attempts that lost.
type SolverStats = core.SolverStats

// IterationStats is one CEGIS iteration of the winning budget rung.
type IterationStats = core.IterationStats

// QueryDump is one captured SAT query (DIMACS CNF plus metadata),
// delivered to Options.QuerySink when DIMACS capture is enabled.
type QueryDump = core.QueryDump

// Certificate is the proof-carrying artifact a compile emits when
// Options.EmitCertificate is set: the effective spec, the compiled
// program, a bisimulation witness relating the two, and (with
// Options.LogProofs) a DRAT proof of the hardest UNSAT solver query.
// It is validated by the independent checker in internal/cert and the
// hawkcheck command — see Certificate.SelfCheck.
type Certificate = cert.Certificate

// LintStats summarizes a compilation's SpecLint pre-pass: diagnostic
// tallies and the pre/post-prune specification size.
type LintStats = core.LintStats

// Diag is one structured SpecLint diagnostic (codes PH001–PH007).
type Diag = lint.Diag

// Severity classifies a Diag; error-severity diagnostics make Compile
// reject the specification.
type Severity = lint.Severity

// Diagnostic severities.
const (
	SeverityInfo    = lint.Info
	SeverityWarning = lint.Warning
	SeverityError   = lint.Error
)

// LintError is the diagnostics-bearing error Compile returns when the
// specification has error-severity lint findings.
type LintError = core.LintError

// Bits is a wire-order bit string; Dict maps field names to parsed values.
type (
	Bits = bitstream.Bits
	Dict = bitstream.Dict
)

// Compilation failure sentinels.
var (
	ErrTimeout    = core.ErrTimeout
	ErrNoSolution = core.ErrNoSolution
)

// DefaultOptions enables every optimization of §6 — the configuration the
// paper evaluates as "OPT".
func DefaultOptions() Options { return core.DefaultOptions() }

// NaiveOptions disables every optimization — the paper's "Orig" mode.
// Expect timeouts on non-trivial programs; that observation is Table 3.
func NaiveOptions() Options { return core.NaiveOptions() }

// Tofino returns the single-TCAM-table profile (loops allowed, entries
// are the scarce resource).
func Tofino() Profile { return hw.Tofino() }

// FPGA returns the streaming-pipeline profile (fixed words-per-cycle
// window, forward-only, depth is the scarce resource).
func FPGA() Profile { return hw.FPGAStreaming() }

// IPU returns the pipelined-TCAM-tables profile (forward-only, stages are
// the scarce resource).
func IPU() Profile { return hw.IPU() }

// Custom builds a single-table profile with explicit limits, matching the
// parameterized hardware of the paper's Table 4.
func Custom(keyLimit, lookahead, extract int) Profile {
	return hw.Parameterized(keyLimit, lookahead, extract)
}

// ParseSpec parses a parser written in the P4-16 subset (header
// declarations plus one parser with states, extracts, and selects).
func ParseSpec(source string) (*Spec, error) { return p4.ParseSpec(source) }

// ParseSpecFile reads and parses a .p4 file.
func ParseSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("parserhawk: %w", err)
	}
	return p4.ParseSpec(string(data))
}

// Compile synthesizes a TCAM program implementing spec on the target
// device. It runs the full pipeline of the paper's Figure 8: semantic
// analysis, skeleton construction, CEGIS over the built-in solver,
// post-synthesis optimization, and device validation.
func Compile(spec *Spec, target Profile, opts Options) (*Result, error) {
	return core.Compile(spec, target, opts)
}

// CompileContext is Compile under a caller-supplied context. Cancellation
// propagates down to in-flight SAT solves and verification sweeps, so
// canceling ctx aborts the search promptly instead of waiting for the
// current solver call to finish. Options.Timeout, when set, applies as a
// deadline on top of ctx.
func CompileContext(ctx context.Context, spec *Spec, target Profile, opts Options) (*Result, error) {
	return core.CompileContext(ctx, spec, target, opts)
}

// CompileSource parses and compiles in one step.
func CompileSource(source string, target Profile, opts Options) (*Result, error) {
	spec, err := ParseSpec(source)
	if err != nil {
		return nil, err
	}
	return Compile(spec, target, opts)
}

// CompileFile reads, parses, and compiles a .p4 file.
func CompileFile(path string, target Profile, opts Options) (*Result, error) {
	spec, err := ParseSpecFile(path)
	if err != nil {
		return nil, err
	}
	return Compile(spec, target, opts)
}

// Unroll rewrites a loopy specification into the bounded loop-free form a
// pipelined device implements: loop states are replicated depth times and
// deeper stacks are dropped. Use it to state the equivalence contract for
// pipelined compilations of loopy parsers.
func Unroll(spec *Spec, depth int) (*Spec, error) { return core.Unroll(spec, depth) }

// Lint runs the SpecLint static analyzer over a specification without a
// device profile: the semantic passes only (reachability, width
// consistency, extraction dataflow, SAT-certified shadowing and dead
// defaults, zero-progress loops). Diagnostics come back sorted by state,
// rule, and code.
func Lint(spec *Spec) []Diag { return lint.Run(spec, nil) }

// LintFor is Lint plus the device-feasibility passes: key-width and
// lookahead demands are checked against the target profile (PH006), and
// parse loops on forward-only devices get the bounded-unrolling note.
func LintFor(spec *Spec, target Profile) []Diag { return lint.Run(spec, &target) }

// VerifyReport is the outcome of an equivalence check between a
// specification and a compiled program (the paper's §7.1 validation).
type VerifyReport = sim.Report

// Verify compares spec and program on the input space: exhaustively when
// the space is at most 2^16 inputs, otherwise on samples random inputs
// (0 picks a default). It is the Figure 22 simulator.
func Verify(spec *Spec, program *Program, samples int) VerifyReport {
	return sim.Check(spec, program, samples, 16, 0, 1)
}

// EncodeProgramJSON serializes a compiled program (with its field table)
// into the deployment JSON format; DecodeProgramJSON reverses it.
func EncodeProgramJSON(p *Program) ([]byte, error) { return p.EncodeJSON() }

// DecodeProgramJSON reconstructs a compiled program from its JSON form.
func DecodeProgramJSON(data []byte) (*Program, error) { return tcam.DecodeJSON(data) }

// PrintSpec renders a specification back into the P4 subset — useful for
// normalizing a parser or emitting the compiler's view of it.
func PrintSpec(spec *Spec) (string, error) { return p4.Print(spec) }

// BitsOf converts packet bytes into the wire-order bit string parsers
// consume.
func BitsOf(packet []byte) Bits { return bitstream.FromBytes(packet) }

// Uint builds a width-bit big-endian bit string from the low bits of v —
// convenient for constructing test inputs.
func Uint(v uint64, width int) Bits { return bitstream.FromUint(v, width) }
