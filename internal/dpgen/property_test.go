package dpgen

import (
	"math/rand"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// coverSet enumerates the exact values a cube list maps to each target,
// respecting priority.
func coverSet(cs []cube, kw int) map[uint64]pir.Target {
	out := map[uint64]pir.Target{}
	for v := uint64(0); v < 1<<uint(kw); v++ {
		for _, c := range cs {
			if v&c.mask == c.value&c.mask {
				out[v] = c.next
				break
			}
		}
	}
	return out
}

func ruleCover(rules []pir.Rule, kw int) map[uint64]pir.Target {
	out := map[uint64]pir.Target{}
	for v := uint64(0); v < 1<<uint(kw); v++ {
		for _, r := range rules {
			if v&r.Mask == r.Value&r.Mask {
				out[v] = r.Next
				break
			}
		}
	}
	return out
}

// TestGreedyMergePreservesSemantics: for random exact rule lists, the
// merged cubes map every key value to the same target as the original
// priority list.
func TestGreedyMergePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		kw := 2 + rng.Intn(4)
		n := 1 + rng.Intn(6)
		var rules []pir.Rule
		for i := 0; i < n; i++ {
			tgt := pir.To(rng.Intn(3))
			rules = append(rules, pir.ExactRule(rng.Uint64()&(1<<uint(kw)-1), kw, tgt))
		}
		merged := greedyMerge(rules, kw)
		if len(merged) > len(rules) {
			t.Fatalf("merge grew the list: %d -> %d", len(rules), len(merged))
		}
		got := coverSet(merged, kw)
		want := ruleCover(rules, kw)
		if len(got) != len(want) {
			t.Fatalf("trial %d: coverage size %d vs %d", trial, len(got), len(want))
		}
		for v, tg := range want {
			if got[v] != tg {
				t.Fatalf("trial %d: value %#x maps to %v, want %v\nrules=%v\nmerged=%v",
					trial, v, got[v], tg, rules, merged)
			}
		}
	}
}

// TestSplitPreservesSemantics: random exact rule sets compiled through a
// narrow device agree with the unsplit spec on every input.
func TestSplitPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		kw := 4 + rng.Intn(3) // 4-6 bit keys on a 2-bit device
		n := 1 + rng.Intn(4)
		var rules []pir.Rule
		for i := 0; i < n; i++ {
			rules = append(rules, pir.ExactRule(rng.Uint64()&(1<<uint(kw)-1), kw, pir.To(1)))
		}
		spec := pir.MustNew("t",
			[]pir.Field{{Name: "k", Width: kw}, {Name: "x", Width: 2}},
			[]pir.State{
				{
					Name:     "S",
					Extracts: []pir.Extract{{Field: "k"}},
					Key:      []pir.KeyPart{pir.WholeField("k", kw)},
					Rules:    rules,
					Default:  pir.AcceptTarget,
				},
				{Name: "X", Extracts: []pir.Extract{{Field: "x"}}, Default: pir.AcceptTarget},
			})
		profile := hw.Parameterized(2, 2, 16)
		r, err := Compile(spec, profile)
		if err != nil {
			continue // resource overflow on unlucky shapes is fine
		}
		total := kw + 2
		for v := uint64(0); v < 1<<uint(total); v++ {
			in := bitstream.FromUint(v, total)
			got := r.Program.Run(in, 0)
			want := spec.Run(in, 0)
			if !got.Same(want) {
				t.Fatalf("trial %d: value %0*b differs\n%s", trial, total, v, r.Program)
			}
		}
	}
}
