package dpgen

import (
	"errors"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// fig3 is the motivating-example program of Figure 3, with exact rules
// only (representable by DPParserGen).
func fig3(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("fig3",
		[]pir.Field{
			{Name: "k", Width: 4},
			{Name: "a", Width: 2}, {Name: "b", Width: 2}, {Name: "c", Width: 2},
		},
		[]pir.State{
			{
				Name:     "Start",
				Extracts: []pir.Extract{{Field: "k"}},
				Key:      []pir.KeyPart{pir.WholeField("k", 4)},
				Rules: []pir.Rule{
					pir.ExactRule(15, 4, pir.To(1)), pir.ExactRule(11, 4, pir.To(1)),
					pir.ExactRule(7, 4, pir.To(1)), pir.ExactRule(3, 4, pir.To(1)),
					pir.ExactRule(14, 4, pir.To(2)), pir.ExactRule(2, 4, pir.To(3)),
				},
				Default: pir.AcceptTarget,
			},
			{Name: "N1", Extracts: []pir.Extract{{Field: "a"}}, Default: pir.AcceptTarget},
			{Name: "N2", Extracts: []pir.Extract{{Field: "b"}}, Default: pir.AcceptTarget},
			{Name: "N3", Extracts: []pir.Extract{{Field: "c"}}, Default: pir.AcceptTarget},
		})
}

func checkSemantics(t *testing.T, spec *pir.Spec, r *Result, bits int) {
	t.Helper()
	for v := uint64(0); v < 1<<uint(bits); v++ {
		in := bitstream.FromUint(v, bits)
		got := r.Program.Run(in, 0)
		want := spec.Run(in, 0)
		if !got.Same(want) {
			t.Fatalf("input %0*b: impl %v/%v vs spec %v/%v\n%s",
				bits, v, got.Accepted, got.Dict, want.Accepted, want.Dict, r.Program)
		}
	}
}

func TestCompileFig3WideDevice(t *testing.T) {
	spec := fig3(t)
	r, err := Compile(spec, hw.Parameterized(16, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	checkSemantics(t, spec, r, 10)
	// Greedy merging reduces the {15,11,7,3} family; with the default
	// entries for all four states this lands at <= 10 entries.
	if r.Entries > 10 {
		t.Errorf("entries=%d", r.Entries)
	}
}

func TestCompileFig3NarrowDeviceSplits(t *testing.T) {
	spec := fig3(t)
	r, err := Compile(spec, hw.Parameterized(2, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	checkSemantics(t, spec, r, 10)
	if res := r.Program.Resources(); res.MaxKeyWidth > 2 {
		t.Errorf("split failed: key width %d", res.MaxKeyWidth)
	}
}

func TestGreedyMergeFirstFit(t *testing.T) {
	rules := []pir.Rule{
		pir.ExactRule(15, 4, pir.To(1)), pir.ExactRule(11, 4, pir.To(1)),
		pir.ExactRule(7, 4, pir.To(1)), pir.ExactRule(3, 4, pir.To(1)),
	}
	cs := greedyMerge(rules, 4)
	if len(cs) != 1 {
		t.Errorf("greedy merge of {15,11,7,3} -> %d cubes, want 1", len(cs))
	}
	if cs[0].mask != 0b0011 || cs[0].value != 0b0011 {
		t.Errorf("merged cube = %04b/%04b", cs[0].value, cs[0].mask)
	}
}

func TestGreedyMergeKeepsRedundantEntries(t *testing.T) {
	rules := []pir.Rule{
		pir.ExactRule(5, 4, pir.To(1)),
		pir.ExactRule(5, 4, pir.To(1)), // R1 redundant duplicate
	}
	cs := greedyMerge(rules, 4)
	if len(cs) != 2 {
		t.Errorf("duplicates must survive (no semantic pruning): %d cubes", len(cs))
	}
}

func TestRepresentableRestrictions(t *testing.T) {
	masked := pir.MustNew("m", []pir.Field{{Name: "k", Width: 4}},
		[]pir.State{{
			Name:     "S",
			Extracts: []pir.Extract{{Field: "k"}},
			Key:      []pir.KeyPart{pir.WholeField("k", 4)},
			Rules:    []pir.Rule{{Value: 0b1000, Mask: 0b1000, Next: pir.RejectTarget}},
			Default:  pir.AcceptTarget,
		}})
	if err := Representable(masked); !errors.Is(err, ErrMaskedRule) {
		t.Errorf("masked: %v", err)
	}

	acceptOnValue := pir.MustNew("a", []pir.Field{{Name: "k", Width: 4}},
		[]pir.State{{
			Name:     "S",
			Extracts: []pir.Extract{{Field: "k"}},
			Key:      []pir.KeyPart{pir.WholeField("k", 4)},
			Rules:    []pir.Rule{pir.ExactRule(0, 4, pir.AcceptTarget)},
			Default:  pir.RejectTarget,
		}})
	if err := Representable(acceptOnValue); !errors.Is(err, ErrAcceptOnValue) {
		t.Errorf("accept-on-value: %v", err)
	}

	la := pir.MustNew("l", []pir.Field{{Name: "k", Width: 4}},
		[]pir.State{{
			Name:     "S",
			Extracts: []pir.Extract{{Field: "k"}},
			Key:      []pir.KeyPart{pir.LookaheadBits(0, 2)},
			Rules:    []pir.Rule{pir.ExactRule(0, 2, pir.RejectTarget)},
			Default:  pir.AcceptTarget,
		}})
	if err := Representable(la); !errors.Is(err, ErrLookahead) {
		t.Errorf("lookahead: %v", err)
	}

	cross := pir.MustNew("c",
		[]pir.Field{{Name: "x", Width: 2}, {Name: "y", Width: 2}},
		[]pir.State{
			{Name: "A", Extracts: []pir.Extract{{Field: "x"}}, Default: pir.To(1)},
			{
				Name:     "B",
				Extracts: []pir.Extract{{Field: "y"}},
				Key:      []pir.KeyPart{pir.WholeField("x", 2)},
				Rules:    []pir.Rule{pir.ExactRule(0, 2, pir.RejectTarget)},
				Default:  pir.AcceptTarget,
			},
		})
	if err := Representable(cross); !errors.Is(err, ErrCrossStateKey) {
		t.Errorf("cross-state: %v", err)
	}

	loop := pir.MustNew("lp", []pir.Field{{Name: "k", Width: 2}},
		[]pir.State{{
			Name:     "S",
			Extracts: []pir.Extract{{Field: "k"}},
			Key:      []pir.KeyPart{pir.WholeField("k", 2)},
			Rules:    []pir.Rule{pir.ExactRule(0, 2, pir.To(0))},
			Default:  pir.RejectTarget,
		}})
	if err := Representable(loop); !errors.Is(err, ErrLoop) {
		t.Errorf("loop: %v", err)
	}
}

func TestCompileRejectsPipelined(t *testing.T) {
	if _, err := Compile(fig3(t), hw.IPU()); !errors.Is(err, ErrArchitecture) {
		t.Errorf("want architecture error, got %v", err)
	}
}

func TestCompileRejectsOverBudget(t *testing.T) {
	p := hw.Parameterized(16, 2, 10)
	p.TCAMLimit = 2
	if _, err := Compile(fig3(t), p); !errors.Is(err, ErrResources) {
		t.Errorf("want resource error, got %v", err)
	}
}
