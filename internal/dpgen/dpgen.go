// Package dpgen reimplements DPParserGen, the dynamic-programming parser
// generator of Gibb et al. ("Design principles for packet parsers", ANCS
// 2013), which the paper uses as its research baseline (§7).
//
// DPParserGen clusters adjacent parser states to reduce TCAM entries and
// splits oversized transition keys, but — as §2.3 and §7.2 document — it
// is restricted and brittle:
//
//   - it targets only single-TCAM-table architectures;
//   - the transition key of a state must come from fields extracted in
//     that state (no lookahead, no cross-state keys);
//   - input rules must be exact matches (no mask+value wildcards) and may
//     not transition to accept on a specific value;
//   - its entry merging is greedy (first-fit cube merging), which misses
//     globally better covers;
//   - its key splitting always checks chunks most-significant-first (the
//     V1 strategy of Figure 4), which can cost extra entries; and
//   - it keeps redundant and unreachable entries because it works on the
//     written form of the program, not its semantics.
package dpgen

import (
	"errors"
	"fmt"
	"sort"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// Unsupported-input errors (the representation restrictions of §7).
var (
	ErrMaskedRule    = errors.New("dpgen: mask+value/wildcard matches are not representable")
	ErrAcceptOnValue = errors.New("dpgen: transition to accept on a specific value is not representable")
	ErrLookahead     = errors.New("dpgen: lookahead keys are not representable")
	ErrCrossStateKey = errors.New("dpgen: transition key must come from fields extracted in the same state")
	ErrArchitecture  = errors.New("dpgen: only single-TCAM-table architectures are supported")
	ErrLoop          = errors.New("dpgen: parser loops are not supported")
	ErrResources     = errors.New("dpgen: program does not fit device resources")
)

// Representable reports whether DPParserGen's input language can express
// the spec at all; the evaluation only runs it on representable benchmarks.
func Representable(spec *pir.Spec) error {
	if spec.HasLoop() {
		return ErrLoop
	}
	for i := range spec.States {
		st := &spec.States[i]
		extracted := map[string]bool{}
		for _, e := range st.Extracts {
			extracted[e.Field] = true
		}
		for _, p := range st.Key {
			if p.Lookahead {
				return ErrLookahead
			}
			if !extracted[p.Field] {
				return fmt.Errorf("%w: state %q keys on %q", ErrCrossStateKey, st.Name, p.Field)
			}
		}
		kw := st.KeyWidth()
		for _, r := range st.Rules {
			if r.Mask&widthMask(kw) != widthMask(kw) {
				return fmt.Errorf("%w: state %q", ErrMaskedRule, st.Name)
			}
			if r.Next.Kind == pir.Accept {
				return fmt.Errorf("%w: state %q", ErrAcceptOnValue, st.Name)
			}
		}
	}
	return nil
}

// Result is a DPParserGen compilation outcome.
type Result struct {
	Program *tcam.Program
	Entries int
}

// Compile runs the DP generator against a single-TCAM-table profile.
func Compile(spec *pir.Spec, profile hw.Profile) (*Result, error) {
	if profile.Arch != hw.SingleTable {
		return nil, ErrArchitecture
	}
	if err := Representable(spec); err != nil {
		return nil, err
	}

	prog := &tcam.Program{Spec: spec}
	reach := spec.Reachable()
	// DPParserGen emits entries for every written state, reachable or not
	// (it does not do semantic pruning) — but states must exist in the
	// table regardless, so unreachable ones still consume entries.
	_ = reach
	for si := range spec.States {
		st := &spec.States[si]
		implState, err := lowerState(spec, si, profile)
		if err != nil {
			return nil, err
		}
		prog.States = append(prog.States, implState...)
		_ = st
	}
	res := prog.Resources()
	if res.Entries > profile.TCAMLimit {
		return nil, fmt.Errorf("%w: %d entries > %d", ErrResources, res.Entries, profile.TCAMLimit)
	}
	return &Result{Program: prog, Entries: res.Entries}, nil
}

// cube is a partially merged ternary match.
type cube struct {
	value, mask uint64
	next        pir.Target
}

// lowerState compiles one spec state: greedy entry merging, then MSB-first
// key splitting when the key exceeds the device width.
//
// DPParserGen's hardware model matches one contiguous window anchored at
// the extraction cursor (Figure 5's "devices that can only start
// key+value matching from the current extraction cursor"). Key parts that
// skip bits therefore widen the window, with the gaps wildcarded — which
// is why two written forms with the same merge count can consume
// different TCAM resources.
func lowerState(spec *pir.Spec, si int, profile hw.Profile) ([]tcam.State, error) {
	st := &spec.States[si]
	lay := stateOffsets(spec, st)
	origKW := st.KeyWidth()

	// Window extent: from the cursor to the farthest referenced bit.
	maxBit := 0
	for _, p := range st.Key {
		if end := lay[p.Field] + p.Hi; end > maxBit {
			maxBit = end
		}
	}
	kw := maxBit
	var key []pir.KeyPart
	if kw > 0 {
		key = []pir.KeyPart{pir.LookaheadBits(0, kw)}
	}

	// Reposition each rule's value/mask bits from the spec's composed key
	// into the window.
	reposition := func(r pir.Rule) pir.Rule {
		var v, m uint64
		bit := 0
		for _, p := range st.Key {
			w := p.Hi - p.Lo
			for j := 0; j < w; j++ {
				srcShift := uint(origKW - bit - 1)
				dstShift := uint(kw - (lay[p.Field] + p.Lo + j) - 1)
				v |= (r.Value >> srcShift & 1) << dstShift
				m |= (r.Mask >> srcShift & 1) << dstShift
				bit++
			}
		}
		return pir.Rule{Value: v, Mask: m, Next: r.Next}
	}
	rules := make([]pir.Rule, len(st.Rules))
	for i, r := range st.Rules {
		rules[i] = reposition(r)
	}

	cubes := greedyMergeMasked(rules)
	// Default as a final wildcard entry.
	cubes = append(cubes, cube{value: 0, mask: 0, next: st.Default})

	target := func(t pir.Target) tcam.Target {
		switch t.Kind {
		case pir.Accept:
			return tcam.AcceptTarget
		case pir.Reject:
			return tcam.RejectTarget
		default:
			return tcam.To(0, t.State*splitFanout)
		}
	}

	if kw <= profile.KeyLimit {
		out := tcam.State{Table: 0, ID: si * splitFanout, Key: key}
		for _, c := range cubes {
			out.Entries = append(out.Entries, tcam.Entry{
				Value:    c.value,
				Mask:     c.mask,
				Extracts: append([]pir.Extract(nil), st.Extracts...),
				Next:     target(c.next),
			})
		}
		return []tcam.State{out}, nil
	}

	// Key splitting, always MSB-first (the V1 strategy): the first chunk
	// state fans out one continuation state per surviving distinct prefix.
	return splitState(spec, si, st, key, cubes, kw, profile, target)
}

// splitFanout reserves an ID range per spec state for its split chain.
const splitFanout = 64

// splitState implements DPParserGen's MSB-first key splitting (the V1
// strategy of Figure 4): the first chunk state expands every reachable
// exact chunk value — wildcard patterns introduced by merging or defaults
// are blown up into the exact values they cover — and routes each to a
// continuation state holding the cubes compatible with that value.
// Identical continuations are shared, and same-target sibling entries are
// re-merged greedily. Correct, but often costlier than ParserHawk's
// synthesized trees.
func splitState(spec *pir.Spec, si int, st *pir.State, key []pir.KeyPart, cubes []cube, kw int, profile hw.Profile, target func(pir.Target) tcam.Target) ([]tcam.State, error) {
	chunkW := profile.KeyLimit
	if chunkW <= 0 || (kw > chunkW && chunkW > 12) {
		return nil, fmt.Errorf("%w: cannot expand %d-bit chunks", ErrResources, chunkW)
	}

	var out []tcam.State
	nextID := si * splitFanout
	newID := func() (int, error) {
		id := nextID
		nextID++
		if nextID > si*splitFanout+splitFanout {
			return 0, fmt.Errorf("%w: split fanout exceeded", ErrResources)
		}
		return id, nil
	}

	type memoKey struct {
		level int
		sig   string
	}
	memo := map[memoKey]int{}

	var build func(cs []cube, level int) (int, error)
	build = func(cs []cube, level int) (int, error) {
		sig := ""
		for _, c := range cs {
			sig += fmt.Sprintf("%x/%x/%v;", c.value, c.mask, c.next)
		}
		if id, ok := memo[memoKey{level, sig}]; ok {
			return id, nil
		}
		id, err := newID()
		if err != nil {
			return 0, err
		}
		memo[memoKey{level, sig}] = id

		lo := level * chunkW
		hi := lo + chunkW
		if hi > kw {
			hi = kw
		}
		w := hi - lo
		shift := uint(kw - hi)
		stt := tcam.State{Table: 0, ID: id, Key: sliceKeyParts(key, lo, hi)}
		last := hi == kw

		if last {
			for _, c := range cs {
				stt.Entries = append(stt.Entries, tcam.Entry{
					Value:    c.value >> shift & widthMask(w),
					Mask:     c.mask >> shift & widthMask(w),
					Extracts: append([]pir.Extract(nil), st.Extracts...),
					Next:     target(c.next),
				})
			}
			out = append(out, stt)
			return id, nil
		}

		// Expand every exact chunk value; group values by the priority-
		// ordered continuation they select.
		type rootEntry struct {
			value uint64
			sub   int
		}
		var roots []rootEntry
		for v := uint64(0); v < 1<<uint(w); v++ {
			var matching []cube
			for _, c := range cs {
				cv := c.value >> shift & widthMask(w)
				cm := c.mask >> shift & widthMask(w)
				if v&cm == cv&cm {
					matching = append(matching, c)
				}
			}
			if len(matching) == 0 {
				continue
			}
			sub, err := build(matching, level+1)
			if err != nil {
				return 0, err
			}
			roots = append(roots, rootEntry{value: v, sub: sub})
		}
		// Greedy first-fit re-merge of sibling values routed to the same
		// continuation.
		type rc struct {
			value, mask uint64
			sub         int
		}
		var rcs []rc
		for _, r := range roots {
			rcs = append(rcs, rc{value: r.value, mask: widthMask(w), sub: r.sub})
		}
		for {
			merged := false
			for i := 0; i < len(rcs) && !merged; i++ {
				for j := i + 1; j < len(rcs) && !merged; j++ {
					if rcs[i].sub != rcs[j].sub || rcs[i].mask != rcs[j].mask {
						continue
					}
					diff := (rcs[i].value ^ rcs[j].value) & rcs[i].mask
					if diff != 0 && diff&(diff-1) == 0 {
						rcs[i].mask &^= diff
						rcs[i].value &= rcs[i].mask
						rcs = append(rcs[:j], rcs[j+1:]...)
						merged = true
					}
				}
			}
			if !merged {
				break
			}
		}
		for _, r := range rcs {
			stt.Entries = append(stt.Entries, tcam.Entry{
				Value: r.value, Mask: r.mask, Next: tcam.To(0, r.sub),
			})
		}
		out = append(out, stt)
		return id, nil
	}
	if _, err := build(cubes, 0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// greedyMerge performs first-fit cube merging over exact-match rules at a
// given key width.
func greedyMerge(rules []pir.Rule, kw int) []cube {
	rs := make([]pir.Rule, len(rules))
	for i, r := range rules {
		rs[i] = pir.Rule{Value: r.Value & widthMask(kw), Mask: widthMask(kw), Next: r.Next}
	}
	return greedyMergeMasked(rs)
}

// greedyMergeMasked performs first-fit cube merging: repeatedly merge the
// first pair of entries with the same target and mask whose patterns
// differ in exactly one care bit. Merging hoists the later entry's
// coverage up to the earlier entry's priority, so the merge is applied
// only when no intervening entry with a different target intersects the
// widened cube (TCAM priority must be preserved). First-fit order makes
// it miss better covers — the documented suboptimality.
func greedyMergeMasked(rules []pir.Rule) []cube {
	var cs []cube
	for _, r := range rules {
		cs = append(cs, cube{value: r.Value & r.Mask, mask: r.Mask, next: r.Next})
	}
	intersects := func(a, b cube) bool {
		return (a.value^b.value)&a.mask&b.mask == 0
	}
	for {
		mergedAny := false
		for i := 0; i < len(cs) && !mergedAny; i++ {
			for j := i + 1; j < len(cs) && !mergedAny; j++ {
				if cs[i].next != cs[j].next || cs[i].mask != cs[j].mask {
					continue
				}
				diff := (cs[i].value ^ cs[j].value) & cs[i].mask
				if diff == 0 || diff&(diff-1) != 0 { // need exactly one bit
					continue
				}
				widened := cube{value: cs[i].value &^ diff, mask: cs[i].mask &^ diff, next: cs[i].next}
				safe := true
				for k := 0; k < j; k++ {
					if k == i {
						continue
					}
					if cs[k].next != widened.next && intersects(cs[k], widened) {
						safe = false
						break
					}
				}
				if !safe {
					continue
				}
				cs[i] = widened
				cs = append(cs[:j], cs[j+1:]...)
				mergedAny = true
			}
		}
		if !mergedAny {
			return cs
		}
	}
}

func stateOffsets(spec *pir.Spec, st *pir.State) map[string]int {
	off := map[string]int{}
	w := 0
	for _, e := range st.Extracts {
		f, _ := spec.Field(e.Field)
		off[e.Field] = w
		w += f.Width
	}
	return off
}

func sliceKeyParts(key []pir.KeyPart, lo, hi int) []pir.KeyPart {
	var out []pir.KeyPart
	pos := 0
	for _, p := range key {
		w := p.BitWidth()
		plo, phi := pos, pos+w
		pos = phi
		s, e := max(plo, lo), min(phi, hi)
		if s >= e {
			continue
		}
		out = append(out, pir.LookaheadBits(p.Skip+(s-plo), e-s))
	}
	return out
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
