package solve

import (
	"bytes"
	"testing"

	"parserhawk/internal/bv"
	"parserhawk/internal/sat"
)

// TestScopesGateOneInstance drives one encoded instance through several
// assumption scopes: the same session must answer differently under
// different hypotheses without any re-encoding, and recover once a scope
// is dropped.
func TestScopesGateOneInstance(t *testing.T) {
	se := New()
	s := se.Solver()
	a, b := s.NewLit(), s.NewLit()
	s.Assert(s.Or(a, b)) // a ∨ b

	if st := se.Solve(nil); st != sat.Sat {
		t.Fatalf("unconstrained solve: %v", st)
	}

	sc := se.Assume(a.Not(), b.Not())
	if st := se.Solve(nil); st != sat.Unsat {
		t.Fatalf("under ¬a∧¬b: got %v want Unsat", st)
	}
	if c := se.LastCall(); c.Assumptions != 2 {
		t.Errorf("LastCall.Assumptions=%d want 2", c.Assumptions)
	}

	sc.Drop()
	if st := se.Solve(nil); st != sat.Sat {
		t.Fatalf("after dropping the scope: got %v want Sat — the hypothesis leaked", st)
	}
	sc.Drop() // double drop is a no-op
	if st := se.Solve(nil); st != sat.Sat {
		t.Fatalf("after double drop: %v", st)
	}
}

// TestCommitMakesHypothesisPermanent promotes a scope to asserted facts
// and checks the session afterwards behaves as if the literals had been
// part of the instance all along.
func TestCommitMakesHypothesisPermanent(t *testing.T) {
	se := New()
	s := se.Solver()
	a, b := s.NewLit(), s.NewLit()
	s.Assert(s.Or(a, b))

	sc := se.Assume(a.Not())
	if st := se.Solve(nil); st != sat.Sat {
		t.Fatalf("under ¬a: %v", st)
	}
	sc.Commit()
	// ¬a is now permanent: assuming ¬b must contradict a ∨ b.
	sc2 := se.Assume(b.Not())
	if st := se.Solve(nil); st != sat.Unsat {
		t.Fatalf("after committing ¬a, under ¬b: got %v want Unsat", st)
	}
	sc2.Drop()
	if st := se.Solve(nil); st != sat.Sat {
		t.Fatalf("after committing ¬a alone: %v", st)
	}
	if !s.SAT.Model(b.Var()) {
		t.Error("model should set b: a is committed false and a ∨ b holds")
	}
}

// TestCallTrace checks the per-call accounting: every Solve is recorded
// with its own effort delta, and the deltas sum to the session totals.
func TestCallTrace(t *testing.T) {
	se := New()
	s := se.Solver()
	xs := make([]bv.Lit, 8)
	for i := range xs {
		xs[i] = s.NewLit()
	}
	// Odd parity over the chain gives the search something to decide.
	acc := xs[0]
	for _, l := range xs[1:] {
		acc = s.Xor(acc, l)
	}
	s.Assert(acc)

	for i := 0; i < 4; i++ {
		if st := se.Solve(nil); st != sat.Sat {
			t.Fatalf("solve %d: %v", i, st)
		}
	}
	calls := se.Calls()
	if len(calls) != 4 {
		t.Fatalf("recorded %d calls, want 4", len(calls))
	}
	var deltaSum int64
	for i, c := range calls {
		if c.Status != sat.Sat {
			t.Errorf("call %d status %v", i, c.Status)
		}
		if c.Delta.Solves != 1 {
			t.Errorf("call %d delta counts %d solves, want exactly 1", i, c.Delta.Solves)
		}
		deltaSum += c.Delta.Decisions
	}
	if got := se.Metrics().Decisions; got != deltaSum {
		t.Errorf("per-call decision deltas sum to %d, session total is %d", deltaSum, got)
	}
	if r := se.Reuse(); r.Solves != 4 {
		t.Errorf("Reuse.Solves=%d want 4", r.Solves)
	}
}

// TestDumpLastQueryRoundTrip exports a query under assumptions and replays
// it through the DIMACS reader: the fresh solver must reproduce the status
// of the original call, proving the dump captures the exact instance with
// the assumptions standing in as unit clauses.
func TestDumpLastQueryRoundTrip(t *testing.T) {
	se := NewRecording()
	s := se.Solver()
	a, b, c := s.NewLit(), s.NewLit(), s.NewLit()
	s.Assert(s.Or(a, b))
	s.Assert(s.Or(b, c))

	sc := se.Assume(b.Not())
	if st := se.Solve(nil); st != sat.Sat {
		t.Fatalf("under ¬b: %v", st)
	}
	data, err := se.DumpLastQuery()
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sat.ReadDIMACS(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st := replay.Solve(); st != sat.Sat {
		t.Fatalf("replayed SAT query: %v", st)
	}
	sc.Drop()

	se.Assume(a.Not(), b.Not())
	if st := se.Solve(nil); st != sat.Unsat {
		t.Fatalf("under ¬a∧¬b: %v", st)
	}
	data, err = se.DumpLastQuery()
	if err != nil {
		t.Fatal(err)
	}
	replay, err = sat.ReadDIMACS(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st := replay.Solve(); st != sat.Unsat {
		t.Fatalf("replayed UNSAT query: %v", st)
	}
}

// TestDumpRequiresRecording checks the error path: a session without
// clause recording cannot export DIMACS.
func TestDumpRequiresRecording(t *testing.T) {
	se := New()
	s := se.Solver()
	s.Assert(s.NewLit())
	se.Solve(nil)
	if _, err := se.DumpLastQuery(); err == nil {
		t.Fatal("DumpLastQuery on a non-recording session should error")
	}
}
