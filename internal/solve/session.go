// Package solve owns incremental solving sessions: one persistent
// bit-blasted solver (internal/bv over internal/sat) that answers a whole
// conversation of related queries instead of being rebuilt per query.
//
// ParserHawk's CEGIS loop issues long chains of nearly identical SMT
// queries — the same symbolic entry table plus one more counterexample
// and a slightly larger entry budget each round. A Session keeps the
// encoded instance, the learned-clause database, and the VSIDS activity
// across those calls; per-query variation (the entry-budget rung, a
// racing sibling's hypothesis) is expressed as assumption scopes, the
// MiniSat solve-under-assumptions technique. The session also keeps
// per-call effort deltas so callers can report how much work the
// persistent state saved versus what each query re-derived.
package solve

import (
	"bytes"
	"fmt"

	"parserhawk/internal/bv"
	"parserhawk/internal/sat"
)

// Session is one incremental solving conversation over a persistent
// solver. It is not safe for concurrent use: a session belongs to one
// goroutine (ParserHawk gives each skeleton attempt its own).
type Session struct {
	s      *bv.Solver
	scopes []*Scope
	calls  []Call

	lastAssumps []bv.Lit // assumptions of the most recent Solve call

	ex    *sat.Exchange // nil when this session is not in a portfolio
	exID  int
	epoch int // examples encoded so far; tags exported clauses
}

// Call records one Solve call's outcome and cost: the per-call counter
// movement (not lifetime totals) plus how many learned clauses the call
// inherited from earlier calls.
type Call struct {
	Status      sat.Status
	Assumptions int
	// Delta is the search effort this call alone spent.
	Delta sat.Metrics
	// RetainedLearnts is the learned-clause database size entering the
	// call — work reused rather than re-derived.
	RetainedLearnts int64
}

// ReuseStats summarizes cross-call reuse over the session's lifetime.
type ReuseStats struct {
	Solves int64 `json:"solves"`
	// RetainedLearnts sums each call's inherited learned clauses.
	RetainedLearnts int64 `json:"retained_learnts"`
	// LearnedClauses is the total ever learned across all calls.
	LearnedClauses int64 `json:"learned_clauses"`
	// Propagations is the total implications across all calls;
	// BinPropagations is the share served by the solver's binary
	// implication lists without touching the clause arena.
	Propagations    int64 `json:"propagations"`
	BinPropagations int64 `json:"bin_propagations"`
	// GlueLearnts counts learnt clauses with LBD ≤ 2 (never deleted), and
	// LBDHist buckets all learnt clauses by LBD at learning time (index i
	// holds LBD i+1; the last bucket holds LBD ≥ 8). Per-call movements of
	// the same counters are in each Call.Delta.
	GlueLearnts int64    `json:"glue_learnts"`
	LBDHist     [8]int64 `json:"lbd_hist"`
}

// New returns a session over a fresh solver.
func New() *Session { return Wrap(bv.New()) }

// NewRecording returns a session whose solver logs every clause so
// DumpLastQuery can export queries as DIMACS.
func NewRecording() *Session { return Wrap(bv.NewRecording()) }

// Wrap adopts an existing solver into a session. The solver must not be
// solved through any other path afterwards, or the session's per-call
// accounting goes stale.
func Wrap(s *bv.Solver) *Session { return &Session{s: s} }

// Solver exposes the underlying bit-blaster for encoding. Constraints
// added here are permanent; per-query constraints belong in a Scope.
func (se *Session) Solver() *bv.Solver { return se.s }

// AttachExchange joins this session to a portfolio clause pool as producer
// id. Every Solve call afterwards stages the glue clauses it learns and
// publishes them tagged with the session's current epoch (see SetEpoch).
// When importMaxEpoch ≥ 0 the session also consumes from the pool: clauses
// with epoch ≤ importMaxEpoch are injected at the solver's restart
// boundaries. Sessions whose models must stay bit-identical to a
// non-portfolio run (ParserHawk's authoritative CEGIS ladders) attach
// export-only (importMaxEpoch < 0): publishing copies clauses out but
// never perturbs the session's own search.
func (se *Session) AttachExchange(x *sat.Exchange, id, importMaxEpoch int) {
	se.ex = x
	se.exID = id
	se.s.SAT.CollectGlue = true
	if importMaxEpoch >= 0 {
		se.s.SAT.ImportHook = func() [][]sat.Lit {
			return x.Collect(id, importMaxEpoch, se.s.SAT.NumVars())
		}
	}
}

// SetEpoch records how many CEGIS examples have been encoded into the
// session's formula. Clauses learned from now on are implied by the base
// encoding plus exactly those examples, and are published under this tag;
// consumers only import clauses whose epoch their own formula covers.
func (se *Session) SetEpoch(examples int) { se.epoch = examples }

// Scope is a set of assumption literals active in every Solve call until
// it is dropped or committed. Scopes are how one encoded instance serves
// many variants of a query: a budget rung assumes "no more than k entries
// enabled", a racing sibling assumes a different k, and neither pollutes
// the shared clause database with its hypothesis.
type Scope struct {
	se     *Session
	lits   []bv.Lit
	closed bool
}

// Assume opens a scope holding the given assumption literals.
func (se *Session) Assume(lits ...bv.Lit) *Scope {
	sc := &Scope{se: se, lits: append([]bv.Lit(nil), lits...)}
	se.scopes = append(se.scopes, sc)
	return sc
}

// Drop deactivates the scope: its literals stop being assumed. Dropping
// an already-closed scope is a no-op.
func (sc *Scope) Drop() {
	if sc.closed {
		return
	}
	sc.closed = true
	kept := sc.se.scopes[:0]
	for _, s := range sc.se.scopes {
		if s != sc {
			kept = append(kept, s)
		}
	}
	sc.se.scopes = kept
}

// Commit asserts the scope's literals permanently (they become unit
// clauses) and deactivates the scope. Use it when a hypothesis has been
// promoted to a fact the rest of the session may rely on.
func (sc *Scope) Commit() {
	if sc.closed {
		return
	}
	for _, l := range sc.lits {
		sc.se.s.Assert(l)
	}
	sc.Drop()
}

// assumptions collects the open scopes' literals in opening order.
func (se *Session) assumptions() []bv.Lit {
	var out []bv.Lit
	for _, sc := range se.scopes {
		out = append(out, sc.lits...)
	}
	return out
}

// Solve runs the SAT search under every open scope's assumptions. cancel,
// when non-nil, is polled inside the CDCL loop; a canceled solve returns
// sat.Unknown, never Unsat. The call's effort delta is recorded and
// available via LastCall.
func (se *Session) Solve(cancel func() bool) sat.Status {
	se.s.SAT.Cancel = cancel
	assumps := se.assumptions()
	retained := int64(se.s.SAT.LearntsLive())
	st := se.s.Solve(assumps...)
	if se.ex != nil {
		se.ex.Publish(se.exID, se.epoch, se.s.SAT.DrainGlue())
	}
	se.lastAssumps = assumps
	se.calls = append(se.calls, Call{
		Status:          st,
		Assumptions:     len(assumps),
		Delta:           se.s.SAT.LastSolveDelta(),
		RetainedLearnts: retained,
	})
	return st
}

// Calls returns the per-call trace.
func (se *Session) Calls() []Call { return se.calls }

// LastCall returns the most recent call's record; the zero Call before
// any Solve.
func (se *Session) LastCall() Call {
	if len(se.calls) == 0 {
		return Call{}
	}
	return se.calls[len(se.calls)-1]
}

// Metrics snapshots the solver's cumulative counters.
func (se *Session) Metrics() bv.Metrics { return se.s.Metrics() }

// Reuse summarizes how much the session's persistence was worth.
func (se *Session) Reuse() ReuseStats {
	m := se.s.Metrics()
	return ReuseStats{
		Solves:          m.Solves,
		RetainedLearnts: m.RetainedLearnts,
		LearnedClauses:  m.LearnedClauses,
		Propagations:    m.Propagations,
		BinPropagations: m.BinPropagations,
		GlueLearnts:     m.GlueLearnts,
		LBDHist:         m.LBDHist,
	}
}

// LogProofs enables DRAT proof logging on the session's solver. Call
// before the first Solve so the log covers every learnt clause.
func (se *Session) LogProofs() { se.s.SAT.StartProof() }

// DumpLastProof exports the DRAT log accumulated so far. When the most
// recent Solve call returned Unsat the terminating empty clause is
// appended, making the log a complete refutation of the CNF that
// DumpLastQuery exports for the same call. Returns nil when proof
// logging was never enabled.
func (se *Session) DumpLastProof() []byte {
	return se.s.SAT.ProofBytes(se.LastCall().Status == sat.Unsat)
}

// DumpLastQuery exports the most recent Solve call's instance as DIMACS
// CNF — every clause encoded so far plus that call's assumptions as unit
// clauses — so the exact query can be replayed by an external solver. The
// session must have been created with NewRecording.
func (se *Session) DumpLastQuery() ([]byte, error) {
	var buf bytes.Buffer
	if err := se.s.SAT.WriteDIMACSUnder(&buf, se.lastAssumps...); err != nil {
		return nil, fmt.Errorf("solve: dumping query: %w", err)
	}
	return buf.Bytes(), nil
}
