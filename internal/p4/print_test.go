package p4_test

import (
	"math/rand"
	"strings"
	"testing"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/bitstream"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
)

// TestRoundTripBenchmarks prints every benchmark spec and re-parses it,
// checking semantic equivalence on exhaustive or random inputs.
func TestRoundTripBenchmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, b := range benchdata.All() {
		src, err := p4.Print(b.Spec)
		if err != nil {
			t.Errorf("%s: print: %v", b.Name(), err)
			continue
		}
		back, err := p4.ParseSpec(src)
		if err != nil {
			t.Errorf("%s: reparse: %v\n%s", b.Name(), err, src)
			continue
		}
		maxIter := b.MaxIterations
		if maxIter == 0 {
			maxIter = pir.DefaultMaxIterations
		}
		maxLen := b.Spec.MaxConsumedBits(maxIter) + b.Spec.LookaheadUse()
		checks := 2000
		exhaustive := maxLen <= 12
		if exhaustive {
			checks = 1 << uint(maxLen)
		}
		for i := 0; i < checks; i++ {
			var in bitstream.Bits
			if exhaustive {
				in = bitstream.FromUint(uint64(i), maxLen)
			} else {
				in = bitstream.Random(rng, maxLen)
			}
			got := back.Run(in, maxIter)
			want := b.Spec.Run(in, maxIter)
			if !got.Same(want) {
				t.Fatalf("%s: round trip changed semantics on %s\nsource:\n%s", b.Name(), in, src)
			}
		}
	}
}

func TestRoundTripWireScale(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, b := range benchdata.WireScale() {
		src, err := p4.Print(b.Spec)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		back, err := p4.ParseSpec(src)
		if err != nil {
			t.Fatalf("%s: %v\n%s", b.Name(), err, src)
		}
		maxLen := b.Spec.MaxConsumedBits(0) + b.Spec.LookaheadUse()
		for i := 0; i < 500; i++ {
			in := bitstream.Random(rng, maxLen)
			if !back.Run(in, 0).Same(b.Spec.Run(in, 0)) {
				t.Fatalf("%s: semantics changed", b.Name())
			}
		}
	}
}

func TestPrintRendersMasksAndTuples(t *testing.T) {
	src := `
header h { bit<2> a; bit<2> b; }
parser P {
    state start {
        extract(h);
        transition select(h.a, h.b) {
            (0b10, 0b01)          : hit;
            (0b11 &&& 0b10, 0b00) : hit;
            default               : accept;
        }
    }
    state hit { transition reject; }
}
`
	spec := p4.MustParseSpec(src)
	out, err := p4.Print(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "&&&") {
		t.Errorf("mask not rendered:\n%s", out)
	}
	if !strings.Contains(out, "(") {
		t.Errorf("tuple not rendered:\n%s", out)
	}
	if p4.Fingerprint(p4.MustParseSpec(out)) != p4.Fingerprint(spec) {
		t.Errorf("fingerprint changed:\n%s", out)
	}
}

func TestPrintVarbit(t *testing.T) {
	src := `
header ip { bit<4> ihl; varbit<40> options; }
parser P {
    state start {
        extract(ip, ip.ihl * 8 + 4);
        transition accept;
    }
}
`
	spec := p4.MustParseSpec(src)
	out, err := p4.Print(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ip.ihl * 8 + 4") {
		t.Errorf("length expression lost:\n%s", out)
	}
	if p4.Fingerprint(p4.MustParseSpec(out)) != p4.Fingerprint(spec) {
		t.Error("varbit round trip changed structure")
	}
}

func TestPrintErrorsOnUnprintable(t *testing.T) {
	// Field without a header prefix.
	flat := pir.MustNew("flat", []pir.Field{{Name: "plain", Width: 4}},
		[]pir.State{{Name: "S", Extracts: []pir.Extract{{Field: "plain"}}, Default: pir.AcceptTarget}})
	if _, err := p4.Print(flat); err == nil {
		t.Error("flat field names must not print")
	}
	// Lookahead with nonzero skip.
	la := pir.MustNew("la", []pir.Field{{Name: "h.f", Width: 4}},
		[]pir.State{{
			Name:     "S",
			Extracts: []pir.Extract{{Field: "h.f"}},
			Key:      []pir.KeyPart{pir.LookaheadBits(2, 2)},
			Rules:    []pir.Rule{pir.ExactRule(0, 2, pir.AcceptTarget)},
			Default:  pir.RejectTarget,
		}})
	if _, err := p4.Print(la); err == nil {
		t.Error("skipped lookahead must not print")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := p4.MustParseSpec(`header h { bit<2> f; } parser P { state start { extract(h); transition accept; } }`)
	b := p4.MustParseSpec(`header h { bit<2> f; } parser P { state start { extract(h); transition reject; } }`)
	if p4.Fingerprint(a) == p4.Fingerprint(b) {
		t.Error("different semantics, same fingerprint")
	}
	if p4.Fingerprint(a) != p4.Fingerprint(a) {
		t.Error("fingerprint not stable")
	}
}
