package p4

import (
	"strings"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/pir"
)

const ethIPv4 = `
// Quickstart parser: Ethernet then IPv4.
header eth {
    bit<8> dst;     // scaled-down addresses
    bit<8> src;
    bit<16> etherType;
}
header ipv4 {
    bit<4> version;
    bit<4> ihl;
    bit<8> ttl;
}
parser EthIp {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x0800  : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition accept;
    }
}
`

func TestLowerEthIPv4(t *testing.T) {
	spec, err := ParseSpec(ethIPv4)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "EthIp" {
		t.Errorf("name=%q", spec.Name)
	}
	if len(spec.Fields) != 6 {
		t.Errorf("fields=%d", len(spec.Fields))
	}
	if spec.States[0].Name != "start" {
		t.Errorf("start state=%q", spec.States[0].Name)
	}
	// Semantics: etherType 0x0800 parses IPv4.
	in := bitstream.FromUint(0xAA, 8).
		Concat(bitstream.FromUint(0xBB, 8)).
		Concat(bitstream.FromUint(0x0800, 16)).
		Concat(bitstream.FromUint(0x45, 8)).
		Concat(bitstream.FromUint(64, 8))
	r := spec.Run(in, 0)
	if !r.Accepted {
		t.Fatal("must accept")
	}
	if got := r.Dict["ipv4.ttl"].Uint(0, 8); got != 64 {
		t.Errorf("ttl=%d", got)
	}
	if got := r.Dict["eth.etherType"].Uint(0, 16); got != 0x0800 {
		t.Errorf("etherType=%#x", got)
	}
	// Non-IP accepts without ipv4 fields.
	in2 := bitstream.FromUint(0, 32)
	r2 := spec.Run(in2, 0)
	if !r2.Accepted {
		t.Fatal("must accept default")
	}
	if _, ok := r2.Dict["ipv4.ttl"]; ok {
		t.Error("ipv4 must not be extracted on default path")
	}
}

func TestMaskedCaseAndComments(t *testing.T) {
	spec, err := ParseSpec(`
header h { bit<4> k; }
parser P {
    state start {
        extract(h);
        /* block
           comment */
        transition select(h.k) {
            0b1010 &&& 0b1110 : hit;  // matches 1010 and 1011
            default : accept;
        }
    }
    state hit { transition reject; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	for v, wantReject := range map[uint64]bool{0b1010: true, 0b1011: true, 0b1000: false, 0b0010: false} {
		r := spec.Run(bitstream.FromUint(v, 4), 0)
		if r.Rejected != wantReject {
			t.Errorf("k=%04b rejected=%v want %v", v, r.Rejected, wantReject)
		}
	}
}

func TestSliceSyntaxP4BitOrder(t *testing.T) {
	// P4 slice [3:2] of a 4-bit field selects the two MSBs.
	spec, err := ParseSpec(`
header h { bit<4> k; }
parser P {
    state start {
        extract(h);
        transition select(h.k[3:2]) {
            0b11 : hit;
            default : accept;
        }
    }
    state hit { transition reject; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	kp := spec.States[0].Key[0]
	if kp.Lo != 0 || kp.Hi != 2 {
		t.Errorf("slice lowered to [%d,%d), want [0,2)", kp.Lo, kp.Hi)
	}
	if r := spec.Run(bitstream.MustFromString("1101"), 0); !r.Rejected {
		t.Error("1101 has MSBs 11, must reject")
	}
	if r := spec.Run(bitstream.MustFromString("0111"), 0); !r.Accepted {
		t.Error("0111 has MSBs 01, must accept")
	}
}

func TestLookaheadSyntax(t *testing.T) {
	spec, err := ParseSpec(`
header h { bit<4> f; }
header g { bit<2> x; }
parser P {
    state start {
        extract(h);
        transition select(lookahead<bit<2>>()) {
            0b11 : more;
            default : accept;
        }
    }
    state more { extract(g); transition accept; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.States[0].Key[0].Lookahead {
		t.Fatal("expected lookahead key part")
	}
	r := spec.Run(bitstream.MustFromString("0000_11"), 0)
	if _, ok := r.Dict["g.x"]; !ok {
		t.Error("lookahead must route to state more")
	}
}

func TestTupleCase(t *testing.T) {
	spec, err := ParseSpec(`
header h { bit<2> a; bit<2> b; }
parser P {
    state start {
        extract(h);
        transition select(h.a, h.b) {
            (0b10, 0b01)             : hit;
            (0b11 &&& 0b10, 0b00)    : hit;
            default                  : accept;
        }
    }
    state hit { transition reject; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]bool{
		"1001": true,  // (10,01)
		"1000": true,  // (1x, 00) via masked arm
		"1100": true,  // (1x, 00)
		"1011": false, // b=11 matches nothing
		"0001": false,
	}
	for in, wantReject := range cases {
		r := spec.Run(bitstream.MustFromString(in), 0)
		if r.Rejected != wantReject {
			t.Errorf("%s: rejected=%v want %v", in, r.Rejected, wantReject)
		}
	}
}

func TestVarbitLowering(t *testing.T) {
	spec, err := ParseSpec(`
header ip { bit<4> ihl; varbit<40> options; }
parser P {
    state start {
        extract(ip, ip.ihl * 8);
        transition accept;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := spec.Field("ip.options")
	if !f.Var || f.Width != 40 {
		t.Errorf("varbit decl lowered wrong: %+v", f)
	}
	r := spec.Run(bitstream.MustFromString("0010_1111_0000_1111_0000"), 0)
	if got := len(r.Dict["ip.options"]); got != 16 {
		t.Errorf("options width=%d want 16", got)
	}
}

func TestWidthPrefixedLiterals(t *testing.T) {
	spec, err := ParseSpec(`
header h { bit<16> t; }
parser P {
    state start {
        extract(h);
        transition select(h.t) {
            16w0x0800 : hit;
            default   : accept;
        }
    }
    state hit { transition reject; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if r := spec.Run(bitstream.FromUint(0x0800, 16), 0); !r.Rejected {
		t.Error("width-prefixed literal mismatch")
	}
}

func TestMissingDefaultRejects(t *testing.T) {
	spec, err := ParseSpec(`
header h { bit<2> k; }
parser P {
    state start {
        extract(h);
        transition select(h.k) {
            0 : accept;
        }
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if r := spec.Run(bitstream.MustFromString("01"), 0); !r.Rejected {
		t.Error("missing default must reject")
	}
}

func TestStartStateReordered(t *testing.T) {
	spec, err := ParseSpec(`
header h { bit<1> k; }
parser P {
    state other { transition accept; }
    state start { extract(h); transition other; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.States[0].Name != "start" {
		t.Errorf("state0=%q", spec.States[0].Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`header h { bit<4> f; } parser P { state start { transition nowhere; } }`, "unknown state"},
		{`parser P { state start { extract(ghost); transition accept; } }`, "unknown header"},
		{`header h { bit<4> f; } garbage`, "expected 'header' or 'parser'"},
		{`header h { bit<4> f; } parser P { state start { transition select(h.f) { (1,2) : accept; } } }`, "tuple has 2 values"},
		{`header h { bit<4> f; } parser P { state start { transition select(h.f, h.f) { 3 : accept; } } }`, "use a tuple"},
		{`header h { bit<4> f; } parser P { state start { transition select(h.f) { 0x1F : accept; } } }`, "exceeds 4-bit"},
		{`header h { bit<4> f; } parser P { state start { transition select(h.f[5:0]) { 0 : accept; } } }`, "out of range"},
		{`header h { bit<4> f; } parser P { state start { transition select(h.f[0:2]) { 0 : accept; } } }`, "hi < lo"},
		{`header h { varbit<8> v; } parser P { state start { extract(h); transition accept; } }`, "length expression"},
		{`header h { bit<4> f; } parser P { state start { transition accept; transition accept; } }`, "duplicate transition"},
		{`header h { bit<4> f; } parser P { state start { transition accept; extract(h); } }`, "extract after transition"},
		{`header h { bit<4> f; } header h { bit<2> g; } parser P { state start { transition accept; } }`, "duplicate header"},
		{`@`, "unexpected character"},
		{`header h { bit<4> f; } parser P { } parser Q { }`, "exactly one parser"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: err=%v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestFigure7Spec2RoundTrip(t *testing.T) {
	// Spec2.p4 from Figure 7 written in our subset.
	spec, err := ParseSpec(`
header f0 { bit<4> v; }
header f1 { bit<4> v; }
parser Spec2 {
    state start {
        extract(f0);
        transition select(f0.v[3:3]) {
            0       : state1;
            default : accept;
        }
    }
    state state1 {
        extract(f1);
        transition accept;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	r := spec.Run(bitstream.MustFromString("0111_1010"), 0)
	if got := r.Dict["f1.v"].Uint(0, 4); got != 0b1010 {
		t.Errorf("f1=%04b dict=%v", got, r.Dict)
	}
	r = spec.Run(bitstream.MustFromString("1111_1010"), 0)
	if _, ok := r.Dict["f1.v"]; ok {
		t.Error("f1 must be skipped when f0 MSB is 1")
	}
}

func TestLowerReferenceIntoPIRTypes(t *testing.T) {
	spec := MustParseSpec(ethIPv4)
	// The lowered states must be a valid pir.Spec usable by analyses.
	if spec.HasLoop() {
		t.Error("eth/ipv4 has no loop")
	}
	if len(spec.RelevantBits()) != 16 {
		t.Errorf("relevant bits=%d want 16 (etherType)", len(spec.RelevantBits()))
	}
	var names []string
	for _, f := range spec.Fields {
		names = append(names, f.Name)
	}
	if spec.FieldIndex("eth.etherType") < 0 {
		t.Errorf("qualified field names missing: %v", names)
	}
	_ = pir.AcceptTarget
}
