package p4_test

import (
	"strings"
	"testing"

	"parserhawk"
	"parserhawk/internal/bitstream"
	"parserhawk/internal/p4"
)

const valueSetSource = `
header eth { bit<8> etherType; }
header vip { bit<4> svc; }

value_set<bit<8>>(4) trusted_types;

parser P {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            trusted_types : parse_vip;
            default       : accept;
        }
    }
    state parse_vip { extract(vip); transition accept; }
}
`

func TestValueSetEmptyMatchesNothing(t *testing.T) {
	prog, err := p4.Parse(valueSetSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.ValueSets) != 1 || prog.ValueSets[0].Size != 4 || prog.ValueSets[0].Width != 8 {
		t.Fatalf("decl = %+v", prog.ValueSets)
	}
	spec, err := prog.Lower("P")
	if err != nil {
		t.Fatal(err)
	}
	// No contents installed: every packet takes the default.
	for _, v := range []uint64{0, 0x42, 0xFF} {
		r := spec.Run(bitstream.FromUint(v<<4, 12), 0)
		if _, ok := r.Dict["vip.svc"]; ok {
			t.Errorf("etherType %#x matched an empty set", v)
		}
	}
}

func TestValueSetInstalledContents(t *testing.T) {
	prog, err := p4.Parse(valueSetSource)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := prog.LowerWithSets("P", map[string][]uint64{
		"trusted_types": {0x42, 0x99},
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range map[uint64]bool{0x42: true, 0x99: true, 0x41: false, 0: false} {
		r := spec.Run(bitstream.FromUint(v<<4|0x5, 12), 0)
		_, got := r.Dict["vip.svc"]
		if got != want {
			t.Errorf("etherType %#x: parsed vip=%v want %v", v, got, want)
		}
	}
}

func TestValueSetCompilesEndToEnd(t *testing.T) {
	prog, err := p4.Parse(valueSetSource)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := prog.LowerWithSets("P", map[string][]uint64{
		"trusted_types": {0x42, 0x99, 0xA0},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := parserhawk.Compile(spec, parserhawk.Tofino(), parserhawk.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep := parserhawk.Verify(spec, res.Program, 0); !rep.OK() {
		t.Fatalf("compiled value-set parser wrong: %s", rep)
	}
}

func TestValueSetErrors(t *testing.T) {
	prog, err := p4.Parse(valueSetSource)
	if err != nil {
		t.Fatal(err)
	}
	// Too many contents for the declared size.
	_, err = prog.LowerWithSets("P", map[string][]uint64{
		"trusted_types": {1, 2, 3, 4, 5},
	})
	if err == nil || !strings.Contains(err.Error(), "declared size") {
		t.Errorf("size overflow: %v", err)
	}
	// Value wider than the set.
	_, err = prog.LowerWithSets("P", map[string][]uint64{
		"trusted_types": {0x1FF},
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("wide value: %v", err)
	}
	// Unknown set reference.
	_, err = p4.ParseSpec(`
header h { bit<4> k; }
parser P {
    state start {
        extract(h);
        transition select(h.k) {
            ghost   : accept;
            default : reject;
        }
    }
}
`)
	if err == nil || !strings.Contains(err.Error(), "unknown value_set") {
		t.Errorf("unknown set: %v", err)
	}
	// Width mismatch between set and key.
	_, err = p4.ParseSpec(`
header h { bit<4> k; }
value_set<bit<8>>(2) vs;
parser P {
    state start {
        extract(h);
        transition select(h.k) {
            vs      : accept;
            default : reject;
        }
    }
}
`)
	if err == nil || !strings.Contains(err.Error(), "key is 4") {
		t.Errorf("width mismatch: %v", err)
	}
}
