package p4

import (
	"fmt"

	"parserhawk/internal/pir"
)

// Lower converts the named parser declaration into the pir representation
// with no value-set contents installed (set arms match nothing, the P4
// semantics of an empty set). Field names are qualified as
// "header.field". The "start" state (or the first declared state when no
// state is named start) becomes state 0.
func (prog *Program) Lower(parserName string) (*pir.Spec, error) {
	return prog.LowerWithSets(parserName, nil)
}

// LowerWithSets lowers the parser with the given value-set contents
// installed: each arm naming a set expands into one exact rule per
// installed value, at the arm's priority — the recompile-on-update model
// real deployments use for parser value sets. Contents beyond a set's
// declared size are rejected (the device reserved only Size entries).
func (prog *Program) LowerWithSets(parserName string, contents map[string][]uint64) (*pir.Spec, error) {
	var pd *ParserDecl
	for i := range prog.Parsers {
		if prog.Parsers[i].Name == parserName {
			pd = &prog.Parsers[i]
		}
	}
	if pd == nil {
		return nil, fmt.Errorf("p4: no parser named %q", parserName)
	}
	if len(pd.States) == 0 {
		return nil, fmt.Errorf("p4: parser %q has no states", parserName)
	}

	// Header table.
	headers := map[string]*HeaderDecl{}
	var fields []pir.Field
	fieldWidth := map[string]int{}
	for i := range prog.Headers {
		h := &prog.Headers[i]
		if _, dup := headers[h.Name]; dup {
			return nil, fmt.Errorf("p4: duplicate header %q", h.Name)
		}
		headers[h.Name] = h
		for _, f := range h.Fields {
			q := h.Name + "." + f.Name
			fields = append(fields, pir.Field{Name: q, Width: f.Width, Var: f.Var})
			fieldWidth[q] = f.Width
		}
	}

	// State ordering: start first.
	order := make([]*StateDecl, 0, len(pd.States))
	startIdx := 0
	for i := range pd.States {
		if pd.States[i].Name == "start" {
			startIdx = i
		}
	}
	order = append(order, &pd.States[startIdx])
	for i := range pd.States {
		if i != startIdx {
			order = append(order, &pd.States[i])
		}
	}
	stateIdx := map[string]int{}
	for i, st := range order {
		if _, dup := stateIdx[st.Name]; dup {
			return nil, fmt.Errorf("p4: duplicate state %q", st.Name)
		}
		stateIdx[st.Name] = i
	}

	target := func(name string, line int) (pir.Target, error) {
		switch name {
		case "accept":
			return pir.AcceptTarget, nil
		case "reject":
			return pir.RejectTarget, nil
		}
		i, ok := stateIdx[name]
		if !ok {
			return pir.Target{}, fmt.Errorf("p4: line %d: transition to unknown state %q", line, name)
		}
		return pir.To(i), nil
	}

	states := make([]pir.State, len(order))
	for si, sd := range order {
		out := pir.State{Name: sd.Name, Default: pir.RejectTarget}
		for _, ex := range sd.Extracts {
			h, ok := headers[ex.Header]
			if !ok {
				return nil, fmt.Errorf("p4: state %q extracts unknown header %q", sd.Name, ex.Header)
			}
			for _, f := range h.Fields {
				q := h.Name + "." + f.Name
				pe := pir.Extract{Field: q}
				if f.Var {
					if ex.LenField == "" {
						return nil, fmt.Errorf("p4: state %q: varbit member %q requires a length expression (extract(%s, hdr.field * k))",
							sd.Name, q, ex.Header)
					}
					if _, ok := fieldWidth[ex.LenField]; !ok {
						return nil, fmt.Errorf("p4: state %q: unknown length field %q", sd.Name, ex.LenField)
					}
					pe.LenField = ex.LenField
					pe.LenScale = ex.LenScale
					pe.LenBias = ex.LenBias
				}
				out.Extracts = append(out.Extracts, pe)
			}
		}

		switch {
		case sd.Select != nil:
			var parts []pir.KeyPart
			var widths []int
			for _, k := range sd.Select.Keys {
				if k.Lookahead {
					parts = append(parts, pir.LookaheadBits(0, k.LAWidth))
					widths = append(widths, k.LAWidth)
					continue
				}
				w, ok := fieldWidth[k.Field]
				if !ok {
					return nil, fmt.Errorf("p4: state %q keys on unknown field %q", sd.Name, k.Field)
				}
				lo, hi := 0, w
				if k.Hi >= 0 { // P4 slice [hi:lo], bit 0 = LSB
					if k.Hi >= w {
						return nil, fmt.Errorf("p4: state %q: slice [%d:%d] out of range for %d-bit %q",
							sd.Name, k.Hi, k.Lo, w, k.Field)
					}
					lo, hi = w-1-k.Hi, w-k.Lo
				}
				parts = append(parts, pir.FieldSlice(k.Field, lo, hi))
				widths = append(widths, hi-lo)
			}
			out.Key = parts
			out.Default = pir.RejectTarget
			totalW := 0
			for _, w := range widths {
				totalW += w
			}
			for _, arm := range sd.Select.Cases {
				tgt, err := target(arm.Target, arm.Line)
				if err != nil {
					return nil, err
				}
				if arm.Default {
					out.Default = tgt
					continue
				}
				if arm.SetRef != "" {
					var decl *ValueSetDecl
					for i := range prog.ValueSets {
						if prog.ValueSets[i].Name == arm.SetRef {
							decl = &prog.ValueSets[i]
						}
					}
					if decl == nil {
						return nil, fmt.Errorf("p4: line %d: unknown value_set %q", arm.Line, arm.SetRef)
					}
					if decl.Width != totalW {
						return nil, fmt.Errorf("p4: line %d: value_set %q is %d bits, key is %d",
							arm.Line, arm.SetRef, decl.Width, totalW)
					}
					vals := contents[arm.SetRef]
					if len(vals) > decl.Size {
						return nil, fmt.Errorf("p4: value_set %q holds %d values, declared size %d",
							arm.SetRef, len(vals), decl.Size)
					}
					for _, v := range vals {
						if v > widthMask(totalW) {
							return nil, fmt.Errorf("p4: value_set %q value %#x exceeds %d bits",
								arm.SetRef, v, totalW)
						}
						out.Rules = append(out.Rules, pir.Rule{
							Value: v, Mask: widthMask(totalW), Next: tgt,
						})
					}
					continue
				}
				var value, mask uint64
				for i, w := range widths {
					wm := widthMask(w)
					if arm.Values[i] > wm {
						return nil, fmt.Errorf("p4: line %d: value %#x exceeds %d-bit key component",
							arm.Line, arm.Values[i], w)
					}
					value = value<<uint(w) | arm.Values[i]&wm
					mask = mask<<uint(w) | arm.Masks[i]&wm
				}
				out.Rules = append(out.Rules, pir.Rule{Value: value, Mask: mask, Next: tgt})
			}
		default:
			tgt, err := target(sd.Direct, sd.Line)
			if err != nil {
				return nil, err
			}
			out.Default = tgt
		}
		states[si] = out
	}

	return pir.New(pd.Name, fields, states)
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
