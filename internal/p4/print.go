package p4

import (
	"fmt"
	"sort"
	"strings"

	"parserhawk/internal/pir"
)

// Print renders a pir specification back into the P4 subset this package
// parses, enabling round-trip tooling (normalize a parser, emit the
// compiler's view of it, diff two formulations). Specs built through the
// pir API are printable as long as their field names follow the
// "header.field" convention and lookahead windows start at the cursor
// (skip 0), which is all the surface syntax can express.
func Print(spec *pir.Spec) (string, error) {
	var sb strings.Builder

	// Group fields into headers by name prefix, preserving declaration
	// order within each header and ordering headers by first appearance.
	type header struct {
		name   string
		fields []pir.Field
	}
	var headers []*header
	index := map[string]*header{}
	for _, f := range spec.Fields {
		i := strings.IndexByte(f.Name, '.')
		if i <= 0 || i == len(f.Name)-1 {
			return "", fmt.Errorf("p4: field %q is not in header.field form", f.Name)
		}
		hn := f.Name[:i]
		h, ok := index[hn]
		if !ok {
			h = &header{name: hn}
			index[hn] = h
			headers = append(headers, h)
		}
		h.fields = append(h.fields, f)
	}
	for _, h := range headers {
		fmt.Fprintf(&sb, "header %s {\n", h.name)
		for _, f := range h.fields {
			kind := "bit"
			if f.Var {
				kind = "varbit"
			}
			fmt.Fprintf(&sb, "    %s<%d> %s;\n", kind, f.Width, f.Name[len(h.name)+1:])
		}
		sb.WriteString("}\n")
	}

	name := identifier(spec.Name)
	fmt.Fprintf(&sb, "parser %s {\n", name)
	for si := range spec.States {
		st := &spec.States[si]
		fmt.Fprintf(&sb, "    state %s {\n", stateName(spec, si))

		// Extractions: group consecutive fields of the same header into one
		// extract() when they cover the header in declaration order.
		if err := printExtracts(&sb, spec, st); err != nil {
			return "", err
		}

		switch {
		case len(st.Key) > 0:
			parts := make([]string, len(st.Key))
			widths := make([]int, len(st.Key))
			for i, p := range st.Key {
				w := p.BitWidth()
				widths[i] = w
				if p.Lookahead {
					if p.Skip != 0 {
						return "", fmt.Errorf("p4: state %q lookahead skip %d not expressible", st.Name, p.Skip)
					}
					parts[i] = fmt.Sprintf("lookahead<bit<%d>>()", p.Width)
					continue
				}
				f, _ := spec.Field(p.Field)
				if p.Lo == 0 && p.Hi == f.Width {
					parts[i] = p.Field
				} else {
					// pir [lo,hi) MSB-first -> P4 [hi:lo] LSB 0.
					parts[i] = fmt.Sprintf("%s[%d:%d]", p.Field, f.Width-1-p.Lo, f.Width-p.Hi)
				}
			}
			fmt.Fprintf(&sb, "        transition select(%s) {\n", strings.Join(parts, ", "))
			for _, r := range st.Rules {
				fmt.Fprintf(&sb, "            %s : %s;\n",
					caseValue(r, widths), targetName(spec, r.Next))
			}
			fmt.Fprintf(&sb, "            default : %s;\n", targetName(spec, st.Default))
			sb.WriteString("        }\n")
		default:
			fmt.Fprintf(&sb, "        transition %s;\n", targetName(spec, st.Default))
		}
		sb.WriteString("    }\n")
	}
	sb.WriteString("}\n")
	return sb.String(), nil
}

// printExtracts emits extract() statements. A run of extractions covering
// one header's fields in order becomes a single extract(header); partial
// or out-of-order extraction is not expressible in the subset.
func printExtracts(sb *strings.Builder, spec *pir.Spec, st *pir.State) error {
	i := 0
	for i < len(st.Extracts) {
		e := st.Extracts[i]
		hn := headerOf(e.Field)
		// Count how many of this header's fields follow, in order.
		var fields []pir.Field
		for _, f := range spec.Fields {
			if headerOf(f.Name) == hn {
				fields = append(fields, f)
			}
		}
		if i+len(fields) > len(st.Extracts) {
			return fmt.Errorf("p4: state %q extracts header %q partially", st.Name, hn)
		}
		var vb *pir.Extract
		for j, f := range fields {
			got := st.Extracts[i+j]
			if got.Field != f.Name {
				return fmt.Errorf("p4: state %q extracts %q out of header order", st.Name, got.Field)
			}
			if got.LenField != "" {
				g := got
				vb = &g
			}
		}
		if vb != nil {
			expr := vb.LenField
			if vb.LenScale != 1 {
				expr += fmt.Sprintf(" * %d", vb.LenScale)
			}
			if vb.LenBias != 0 {
				expr += fmt.Sprintf(" + %d", vb.LenBias)
			}
			fmt.Fprintf(sb, "        extract(%s, %s);\n", hn, expr)
		} else {
			fmt.Fprintf(sb, "        extract(%s);\n", hn)
		}
		i += len(fields)
	}
	return nil
}

// caseValue renders a rule's (value, mask) against the key component
// widths: a scalar for single-part keys, a tuple otherwise, with "&&&"
// only where the mask is not exact.
func caseValue(r pir.Rule, widths []int) string {
	total := 0
	for _, w := range widths {
		total += w
	}
	var items []string
	shift := total
	for _, w := range widths {
		shift -= w
		wm := uint64(1)<<uint(w) - 1
		if w >= 64 {
			wm = ^uint64(0)
		}
		v := r.Value >> uint(shift) & wm
		m := r.Mask >> uint(shift) & wm
		if m == wm {
			items = append(items, fmt.Sprintf("%#x", v))
		} else {
			items = append(items, fmt.Sprintf("%#x &&& %#x", v&m, m))
		}
	}
	if len(items) == 1 {
		return items[0]
	}
	return "(" + strings.Join(items, ", ") + ")"
}

func headerOf(field string) string {
	if i := strings.IndexByte(field, '.'); i > 0 {
		return field[:i]
	}
	return field
}

func targetName(spec *pir.Spec, t pir.Target) string {
	switch t.Kind {
	case pir.Accept:
		return "accept"
	case pir.Reject:
		return "reject"
	default:
		return stateName(spec, t.State)
	}
}

// stateName sanitizes state names into identifiers, keeping the start
// state named "start" (index 0 parses back as the entry point regardless,
// but naming it start keeps round trips stable).
func stateName(spec *pir.Spec, i int) string {
	n := identifier(spec.States[i].Name)
	if i == 0 && n != "start" {
		return "start"
	}
	if i != 0 && n == "start" {
		return "start_" // avoid stealing the entry point
	}
	return n
}

// identifier rewrites arbitrary names into lexer-safe identifiers
// deterministically.
func identifier(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "p"
	}
	return b.String()
}

// Fingerprint returns a stable structural digest of a spec: useful for
// asserting that two formulations parse to the same machine.
func Fingerprint(spec *pir.Spec) string {
	var parts []string
	for _, f := range spec.Fields {
		parts = append(parts, fmt.Sprintf("F:%s/%d/%v", f.Name, f.Width, f.Var))
	}
	for i := range spec.States {
		st := &spec.States[i]
		s := fmt.Sprintf("S%d:", i)
		for _, e := range st.Extracts {
			s += fmt.Sprintf("x(%s,%s,%d,%d)", e.Field, e.LenField, e.LenScale, e.LenBias)
		}
		for _, k := range st.Key {
			s += fmt.Sprintf("k(%v)", k)
		}
		for _, r := range st.Rules {
			// Canonicalize under the mask: bits the mask ignores are not
			// semantic.
			s += fmt.Sprintf("r(%x,%x,%v)", r.Value&r.Mask, r.Mask, r.Next)
		}
		s += fmt.Sprintf("d(%v)", st.Default)
		parts = append(parts, s)
	}
	sort.Strings(parts[:len(spec.Fields)]) // field order is not semantic
	return strings.Join(parts, ";")
}
