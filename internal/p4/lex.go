// Package p4 is a front-end for the P4-16 parser subset ParserHawk accepts
// (Figure 3, Figure 7). It lexes and parses header declarations and parser
// state machines, then lowers them to the internal/pir representation the
// synthesizer consumes.
//
// Supported syntax:
//
//	header ethernet_t {
//	    bit<48> dst;
//	    bit<48> src;
//	    bit<16> etherType;
//	}
//	header opt_t {
//	    bit<4>    len;
//	    varbit<40> data;   // runtime-sized
//	}
//	parser Example {
//	    state start {
//	        extract(ethernet_t);
//	        transition select(ethernet_t.etherType, lookahead<bit<4>>()) {
//	            0x0800            : parse_ipv4;
//	            0x8100 &&& 0xFFFF : parse_vlan;  // ternary match
//	            default           : accept;
//	        }
//	    }
//	    state parse_opts {
//	        extract(opt_t, opt_t.len * 8);       // varbit length in bits
//	        transition accept;
//	    }
//	}
//
// Field slices use P4 bit order: f[hi:lo] with bit 0 the least significant.
package p4

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single punctuation rune or "&&&"
)

type token struct {
	kind tokKind
	text string
	num  uint64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src, stripping // and /* */ comments.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peek(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek(1) == '*':
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek(1) == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("p4: line %d: unterminated block comment", l.line)
			}
			l.pos += 2
		case c == '&' && l.peek(1) == '&' && l.peek(2) == '&':
			l.emit(tokPunct, "&&&", 0)
			l.pos += 3
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], 0)
		case unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("{}()<>:;,.[]*+-=_", rune(c)):
			l.emit(tokPunct, string(c), 0)
			l.pos++
		default:
			return nil, fmt.Errorf("p4: line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "", 0)
	return l.toks, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) emit(k tokKind, text string, num uint64) {
	l.toks = append(l.toks, token{kind: k, text: text, num: num, line: l.line})
}

// lexNumber handles decimal, 0x/0b prefixed, and P4 width-prefixed
// literals such as 16w0x0800 (the width prefix is validated and dropped;
// widths come from the declared key parts).
func (l *lexer) lexNumber() error {
	start := l.pos
	for l.pos < len(l.src) && (isIdentPart(rune(l.src[l.pos]))) {
		l.pos++
	}
	text := l.src[start:l.pos]
	digits := text
	if i := strings.IndexByte(text, 'w'); i > 0 {
		if _, err := strconv.Atoi(text[:i]); err != nil {
			return fmt.Errorf("p4: line %d: bad width prefix in %q", l.line, text)
		}
		digits = text[i+1:]
	}
	base := 10
	switch {
	case strings.HasPrefix(digits, "0x") || strings.HasPrefix(digits, "0X"):
		base, digits = 16, digits[2:]
	case strings.HasPrefix(digits, "0b") || strings.HasPrefix(digits, "0B"):
		base, digits = 2, digits[2:]
	}
	v, err := strconv.ParseUint(strings.ReplaceAll(digits, "_", ""), base, 64)
	if err != nil {
		return fmt.Errorf("p4: line %d: bad number %q", l.line, text)
	}
	l.emit(tokNumber, text, v)
	return nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
