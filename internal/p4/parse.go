package p4

import (
	"fmt"

	"parserhawk/internal/pir"
)

// AST types. The AST stays close to the concrete syntax; lowering to pir
// happens in lower.go.

// HeaderDecl is a header type declaration with its ordered fields.
type HeaderDecl struct {
	Name   string
	Fields []FieldDecl
}

// FieldDecl is one header member.
type FieldDecl struct {
	Name  string
	Width int
	Var   bool
}

// ParserDecl is a parser declaration with its states.
type ParserDecl struct {
	Name   string
	States []StateDecl
}

// StateDecl is one parser state.
type StateDecl struct {
	Name     string
	Extracts []ExtractStmt
	// Transition: either Select with cases, or a direct Target.
	Select *SelectStmt
	Direct string // target name when Select == nil
	Line   int
}

// ExtractStmt extracts a header instance; an optional length expression
// sizes the header's varbit member.
type ExtractStmt struct {
	Header   string
	LenField string // "hdr.field" or ""
	LenScale int
	LenBias  int
}

// SelectStmt is a transition select with key parts and cases.
type SelectStmt struct {
	Keys  []KeyExpr
	Cases []CaseArm
}

// KeyExpr is one select key component.
type KeyExpr struct {
	Field     string // "hdr.field" for field refs
	Hi, Lo    int    // P4 slice bounds (bit 0 = LSB); Hi < 0 when unsliced
	Lookahead bool
	LAWidth   int
}

// CaseArm is one select case: value/mask per key component, a value-set
// reference, or default.
type CaseArm struct {
	Default bool
	SetRef  string // non-empty when the arm names a value_set
	Values  []uint64
	Masks   []uint64
	Target  string
	Line    int
}

// ValueSetDecl declares a runtime-populated match set (P4-16
// `value_set<bit<W>>(size) name;`). Its contents are installed by the
// control plane and supplied at lowering time; a select arm naming the
// set matches any installed value.
type ValueSetDecl struct {
	Name  string
	Width int
	Size  int // maximum number of installed values (reserved TCAM entries)
}

// Program is a parsed source file.
type Program struct {
	Headers   []HeaderDecl
	Parsers   []ParserDecl
	ValueSets []ValueSetDecl
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a source file into its AST.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokIdent, "header"):
			h, err := p.header()
			if err != nil {
				return nil, err
			}
			prog.Headers = append(prog.Headers, h)
		case p.at(tokIdent, "parser"):
			pd, err := p.parserDecl()
			if err != nil {
				return nil, err
			}
			prog.Parsers = append(prog.Parsers, pd)
		case p.at(tokIdent, "value_set"):
			vs, err := p.valueSet()
			if err != nil {
				return nil, err
			}
			prog.ValueSets = append(prog.ValueSets, vs)
		default:
			return nil, p.errf("expected 'header' or 'parser', got %s", p.cur())
		}
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	want := text
	if want == "" && k == tokIdent {
		want = "identifier"
	}
	if want == "" && k == tokNumber {
		want = "number"
	}
	return token{}, p.errf("expected %q, got %s", want, p.cur())
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("p4: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// valueSet parses `value_set<bit<W>>(size) name;`.
func (p *parser) valueSet() (ValueSetDecl, error) {
	p.next() // "value_set"
	for _, tok := range []string{"<", "bit", "<"} {
		kind := tokPunct
		if tok == "bit" {
			kind = tokIdent
		}
		if _, err := p.expect(kind, tok); err != nil {
			return ValueSetDecl{}, err
		}
	}
	w, err := p.expect(tokNumber, "")
	if err != nil {
		return ValueSetDecl{}, err
	}
	for _, tok := range []string{">", ">", "("} {
		if _, err := p.expect(tokPunct, tok); err != nil {
			return ValueSetDecl{}, err
		}
	}
	size, err := p.expect(tokNumber, "")
	if err != nil {
		return ValueSetDecl{}, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return ValueSetDecl{}, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return ValueSetDecl{}, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return ValueSetDecl{}, err
	}
	return ValueSetDecl{Name: name.text, Width: int(w.num), Size: int(size.num)}, nil
}

func (p *parser) header() (HeaderDecl, error) {
	p.next() // "header"
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return HeaderDecl{}, err
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return HeaderDecl{}, err
	}
	h := HeaderDecl{Name: name.text}
	for !p.accept(tokPunct, "}") {
		var isVar bool
		switch {
		case p.accept(tokIdent, "bit"):
		case p.accept(tokIdent, "varbit"):
			isVar = true
		default:
			return HeaderDecl{}, p.errf("expected 'bit' or 'varbit', got %s", p.cur())
		}
		if _, err := p.expect(tokPunct, "<"); err != nil {
			return HeaderDecl{}, err
		}
		w, err := p.expect(tokNumber, "")
		if err != nil {
			return HeaderDecl{}, err
		}
		if _, err := p.expect(tokPunct, ">"); err != nil {
			return HeaderDecl{}, err
		}
		fn, err := p.expect(tokIdent, "")
		if err != nil {
			return HeaderDecl{}, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return HeaderDecl{}, err
		}
		h.Fields = append(h.Fields, FieldDecl{Name: fn.text, Width: int(w.num), Var: isVar})
	}
	return h, nil
}

func (p *parser) parserDecl() (ParserDecl, error) {
	p.next() // "parser"
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return ParserDecl{}, err
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return ParserDecl{}, err
	}
	pd := ParserDecl{Name: name.text}
	for !p.accept(tokPunct, "}") {
		st, err := p.state()
		if err != nil {
			return ParserDecl{}, err
		}
		pd.States = append(pd.States, st)
	}
	return pd, nil
}

func (p *parser) state() (StateDecl, error) {
	if _, err := p.expect(tokIdent, "state"); err != nil {
		return StateDecl{}, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return StateDecl{}, err
	}
	st := StateDecl{Name: name.text, Line: name.line}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return StateDecl{}, err
	}
	sawTransition := false
	for !p.accept(tokPunct, "}") {
		switch {
		case p.at(tokIdent, "extract"):
			ex, err := p.extract()
			if err != nil {
				return StateDecl{}, err
			}
			if sawTransition {
				return StateDecl{}, p.errf("extract after transition in state %q", st.Name)
			}
			st.Extracts = append(st.Extracts, ex)
		case p.at(tokIdent, "transition"):
			if sawTransition {
				return StateDecl{}, p.errf("duplicate transition in state %q", st.Name)
			}
			sawTransition = true
			p.next()
			if p.at(tokIdent, "select") {
				sel, err := p.selectStmt()
				if err != nil {
					return StateDecl{}, err
				}
				st.Select = &sel
			} else {
				tgt, err := p.expect(tokIdent, "")
				if err != nil {
					return StateDecl{}, err
				}
				if _, err := p.expect(tokPunct, ";"); err != nil {
					return StateDecl{}, err
				}
				st.Direct = tgt.text
			}
		default:
			return StateDecl{}, p.errf("expected 'extract' or 'transition', got %s", p.cur())
		}
	}
	if !sawTransition {
		st.Direct = "reject"
	}
	return st, nil
}

func (p *parser) extract() (ExtractStmt, error) {
	p.next() // "extract"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return ExtractStmt{}, err
	}
	hdr, err := p.expect(tokIdent, "")
	if err != nil {
		return ExtractStmt{}, err
	}
	ex := ExtractStmt{Header: hdr.text, LenScale: 1}
	if p.accept(tokPunct, ",") {
		// Length expression: fieldRef [* number] [+ number] | number
		if p.at(tokNumber, "") {
			n := p.next()
			ex.LenBias = int(n.num)
			ex.LenScale = 0
			ex.LenField = ""
		} else {
			ref, err := p.fieldRef()
			if err != nil {
				return ExtractStmt{}, err
			}
			ex.LenField = ref
			if p.accept(tokPunct, "*") {
				n, err := p.expect(tokNumber, "")
				if err != nil {
					return ExtractStmt{}, err
				}
				ex.LenScale = int(n.num)
			}
			if p.accept(tokPunct, "+") {
				n, err := p.expect(tokNumber, "")
				if err != nil {
					return ExtractStmt{}, err
				}
				ex.LenBias = int(n.num)
			}
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return ExtractStmt{}, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return ExtractStmt{}, err
	}
	return ex, nil
}

func (p *parser) fieldRef() (string, error) {
	h, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokPunct, "."); err != nil {
		return "", err
	}
	f, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return h.text + "." + f.text, nil
}

func (p *parser) selectStmt() (SelectStmt, error) {
	p.next() // "select"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return SelectStmt{}, err
	}
	var sel SelectStmt
	for {
		k, err := p.keyExpr()
		if err != nil {
			return SelectStmt{}, err
		}
		sel.Keys = append(sel.Keys, k)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return SelectStmt{}, err
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return SelectStmt{}, err
	}
	for !p.accept(tokPunct, "}") {
		arm, err := p.caseArm(len(sel.Keys))
		if err != nil {
			return SelectStmt{}, err
		}
		sel.Cases = append(sel.Cases, arm)
	}
	return sel, nil
}

func (p *parser) keyExpr() (KeyExpr, error) {
	if p.accept(tokIdent, "lookahead") {
		for _, tok := range []string{"<", "bit", "<"} {
			kind := tokPunct
			if tok == "bit" {
				kind = tokIdent
			}
			if _, err := p.expect(kind, tok); err != nil {
				return KeyExpr{}, err
			}
		}
		w, err := p.expect(tokNumber, "")
		if err != nil {
			return KeyExpr{}, err
		}
		for _, tok := range []string{">", ">", "(", ")"} {
			if _, err := p.expect(tokPunct, tok); err != nil {
				return KeyExpr{}, err
			}
		}
		return KeyExpr{Lookahead: true, LAWidth: int(w.num)}, nil
	}
	ref, err := p.fieldRef()
	if err != nil {
		return KeyExpr{}, err
	}
	k := KeyExpr{Field: ref, Hi: -1}
	if p.accept(tokPunct, "[") {
		hi, err := p.expect(tokNumber, "")
		if err != nil {
			return KeyExpr{}, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return KeyExpr{}, err
		}
		lo, err := p.expect(tokNumber, "")
		if err != nil {
			return KeyExpr{}, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return KeyExpr{}, err
		}
		k.Hi, k.Lo = int(hi.num), int(lo.num)
		if k.Hi < k.Lo {
			return KeyExpr{}, p.errf("slice [%d:%d] has hi < lo", k.Hi, k.Lo)
		}
	}
	return k, nil
}

func (p *parser) caseArm(nKeys int) (CaseArm, error) {
	arm := CaseArm{Line: p.cur().line}
	switch {
	case p.accept(tokIdent, "default") || p.accept(tokIdent, "_"):
		arm.Default = true
	case p.at(tokIdent, ""):
		// A bare identifier names a value_set.
		arm.SetRef = p.next().text
	case p.accept(tokPunct, "("):
		for {
			v, m, err := p.valueMask()
			if err != nil {
				return CaseArm{}, err
			}
			arm.Values = append(arm.Values, v)
			arm.Masks = append(arm.Masks, m)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return CaseArm{}, err
		}
		if len(arm.Values) != nKeys {
			return CaseArm{}, p.errf("case tuple has %d values for %d keys", len(arm.Values), nKeys)
		}
	default:
		v, m, err := p.valueMask()
		if err != nil {
			return CaseArm{}, err
		}
		arm.Values = []uint64{v}
		arm.Masks = []uint64{m}
		if nKeys != 1 {
			return CaseArm{}, p.errf("scalar case value for %d-key select; use a tuple", nKeys)
		}
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return CaseArm{}, err
	}
	tgt, err := p.expect(tokIdent, "")
	if err != nil {
		return CaseArm{}, err
	}
	arm.Target = tgt.text
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return CaseArm{}, err
	}
	return arm, nil
}

// valueMask parses number ["&&&" number]; a missing mask means exact match
// (all ones, applied during lowering once widths are known).
func (p *parser) valueMask() (uint64, uint64, error) {
	v, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, 0, err
	}
	if p.accept(tokPunct, "&&&") {
		m, err := p.expect(tokNumber, "")
		if err != nil {
			return 0, 0, err
		}
		return v.num, m.num, nil
	}
	return v.num, ^uint64(0), nil
}

// ParseSpec parses src and lowers its sole parser declaration.
func ParseSpec(src string) (*pir.Spec, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Parsers) != 1 {
		return nil, fmt.Errorf("p4: expected exactly one parser, found %d", len(prog.Parsers))
	}
	return prog.Lower(prog.Parsers[0].Name)
}

// MustParseSpec is ParseSpec that panics on error; for tests and the
// built-in benchmark corpus.
func MustParseSpec(src string) *pir.Spec {
	s, err := ParseSpec(src)
	if err != nil {
		panic(err)
	}
	return s
}
