// Package interleave implements the third parser architecture of Figure
// 2(c): sub-parsers interleaved with match-action pipeline stages
// (Broadcom Trident style). The device parses a while, jumps into the
// packet-processing pipeline — which may rewrite already-extracted header
// fields — and returns to parsing, so later parse decisions can depend on
// the rewritten values. That feedback is inexpressible on the other two
// architectures, which is the paper's point about these devices being
// "more expressive".
//
// A chain is a sequence of stages, each a parser specification followed
// by an optional pipeline. Compile() synthesizes every sub-parser with
// the ParserHawk core and glues them; RunSpec() is the chain's reference
// semantics, used for end-to-end equivalence checking.
package interleave

import (
	"fmt"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/mat"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// Stage is one parse-then-process step of the chain.
type Stage struct {
	// Spec is the sub-parser for this stage. Its Accept means "hand off to
	// the pipeline and continue with the next stage"; Reject drops the
	// packet.
	Spec *pir.Spec
	// Imports names fields produced by earlier stages (and possibly
	// rewritten by their pipelines) that this stage's transition keys
	// reference. They must be declared in Spec with the widths the chain
	// dictionary carries. This is the Figure 2(c) feedback path: parsing
	// decisions that depend on pipeline-computed values.
	Imports []string
	// Pipe optionally rewrites extracted fields after this stage's parsing
	// completes. Nil means no processing between this stage and the next.
	Pipe *mat.Pipeline
}

// withImports rewrites a stage spec so the imported fields look like a
// leading extraction: a synthetic state extracts them before the original
// start state runs. At run time the executor splices the chain
// dictionary's current values for those fields in front of the remaining
// input, so the "extraction" reproduces exactly the (possibly rewritten)
// values — and every downstream key sees them.
func (st Stage) withImports() (*pir.Spec, int, error) {
	if len(st.Imports) == 0 {
		return st.Spec, 0, nil
	}
	spec := st.Spec
	importWidth := 0
	var extracts []pir.Extract
	for _, f := range st.Imports {
		fd, ok := spec.Field(f)
		if !ok {
			return nil, 0, fmt.Errorf("interleave: stage %q imports undeclared field %q", spec.Name, f)
		}
		if fd.Var {
			return nil, 0, fmt.Errorf("interleave: stage %q imports varbit field %q", spec.Name, f)
		}
		importWidth += fd.Width
		extracts = append(extracts, pir.Extract{Field: f})
	}
	states := make([]pir.State, 0, len(spec.States)+1)
	states = append(states, pir.State{
		Name:     "__import",
		Extracts: extracts,
		Default:  pir.To(1),
	})
	for i := range spec.States {
		s := spec.States[i]
		shift := func(t pir.Target) pir.Target {
			if t.Kind == pir.ToState {
				return pir.To(t.State + 1)
			}
			return t
		}
		ns := pir.State{
			Name:     s.Name,
			Extracts: append([]pir.Extract(nil), s.Extracts...),
			Key:      append([]pir.KeyPart(nil), s.Key...),
			Default:  shift(s.Default),
		}
		for _, r := range s.Rules {
			ns.Rules = append(ns.Rules, pir.Rule{Value: r.Value, Mask: r.Mask, Next: shift(r.Next)})
		}
		states = append(states, ns)
	}
	out, err := pir.New(spec.Name+"+imports", spec.Fields, states)
	if err != nil {
		return nil, 0, err
	}
	return out, importWidth, nil
}

// spliceInput builds the effective input for a stage with imports: the
// chain dictionary's current values for the imported fields, followed by
// the unconsumed remainder of the packet.
func spliceInput(st Stage, dict bitstream.Dict, input bitstream.Bits, pos int) bitstream.Bits {
	if len(st.Imports) == 0 {
		return input[min(pos, len(input)):]
	}
	var pre bitstream.Bits
	for _, f := range st.Imports {
		fd, _ := st.Spec.Field(f)
		v := dict[f]
		pre = append(pre, bitstream.FromUint(v.Uint(0, fd.Width), fd.Width)...)
	}
	return pre.Concat(input[min(pos, len(input)):])
}

// Program is a compiled interleaved parser: one TCAM program per
// sub-parser, with the pipelines in between.
type Program struct {
	Stages []CompiledStage
}

// CompiledStage pairs a synthesized sub-parser with its pipeline.
type CompiledStage struct {
	Parser *tcam.Program
	Pipe   *mat.Pipeline

	stage       Stage
	importWidth int
}

// Compile synthesizes each sub-parser with the ParserHawk core against
// the given per-sub-parser hardware profile (Trident sub-parsers are
// pipelined TCAM sequences, so a Pipelined profile is the natural choice,
// but any profile works).
func Compile(stages []Stage, profile hw.Profile, opts core.Options) (*Program, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("interleave: no stages")
	}
	out := &Program{}
	for i, st := range stages {
		if st.Pipe != nil {
			if err := st.Pipe.Validate(); err != nil {
				return nil, fmt.Errorf("interleave: stage %d: %w", i, err)
			}
		}
		spec, importWidth, err := st.withImports()
		if err != nil {
			return nil, err
		}
		res, err := core.Compile(spec, profile, opts)
		if err != nil {
			return nil, fmt.Errorf("interleave: stage %d (%s): %w", i, st.Spec.Name, err)
		}
		out.Stages = append(out.Stages, CompiledStage{
			Parser: res.Program, Pipe: st.Pipe, stage: st, importWidth: importWidth,
		})
	}
	return out, nil
}

// Run executes the compiled chain: each sub-parser resumes at the cursor
// where the previous one accepted, seeing the (possibly rewritten) field
// dictionary; each pipeline transforms the dictionary in place.
func (p *Program) Run(input bitstream.Bits, maxIter int) pir.Result {
	dict := bitstream.Dict{}
	pos := 0
	var last pir.Result
	for _, st := range p.Stages {
		stageIn := spliceInput(st.stage, dict, input, pos)
		res, end := st.Parser.RunFrom(stageIn, 0, dict, maxIter)
		if !res.Accepted {
			return res // rejected (or budget-exhausted) mid-chain
		}
		pos += end - st.importWidth
		dict = res.Dict
		if st.Pipe != nil {
			dict = st.Pipe.Apply(dict)
		}
		last = res
		last.Dict = dict
	}
	return last
}

// RunSpec is the chain's reference semantics: the specification
// interpreters with the pipelines in between. Compile's output must be
// observationally equivalent to it.
func RunSpec(stages []Stage, input bitstream.Bits, maxIter int) pir.Result {
	dict := bitstream.Dict{}
	pos := 0
	var last pir.Result
	for _, st := range stages {
		spec, importWidth, err := st.withImports()
		if err != nil {
			return pir.Result{Rejected: true, Dict: dict}
		}
		stageIn := spliceInput(st, dict, input, pos)
		res := runSpecFrom(spec, stageIn, 0, dict, maxIter)
		if !res.Accepted {
			return res
		}
		pos += res.Consumed - importWidth
		dict = res.Dict
		if st.Pipe != nil {
			dict = st.Pipe.Apply(dict)
		}
		last = res
		last.Dict = dict
	}
	return last
}

// runSpecFrom interprets a spec with a pre-positioned cursor and a
// pre-seeded dictionary (mirrors tcam.Program.RunFrom for specifications).
func runSpecFrom(spec *pir.Spec, input bitstream.Bits, pos int, dict bitstream.Dict, maxIter int) pir.Result {
	if maxIter <= 0 {
		maxIter = pir.DefaultMaxIterations
	}
	res := pir.Result{Dict: dict.Clone()}
	cur := 0
	for iter := 0; iter < maxIter; iter++ {
		st := &spec.States[cur]
		res.Path = append(res.Path, cur)
		for _, e := range st.Extracts {
			w := extractWidth(spec, e, res.Dict)
			res.Dict[e.Field] = input.Slice(pos, w)
			pos += w
		}
		res.Consumed = pos
		next := st.Default
		if len(st.Key) > 0 {
			key := spec.KeyValue(st, res.Dict, input, pos)
			for _, r := range st.Rules {
				if key&r.Mask == r.Value&r.Mask {
					next = r.Next
					break
				}
			}
		}
		switch next.Kind {
		case pir.Accept:
			res.Accepted = true
			return res
		case pir.Reject:
			res.Rejected = true
			return res
		default:
			cur = next.State
		}
	}
	res.Rejected = true
	return res
}

func extractWidth(spec *pir.Spec, e pir.Extract, dict bitstream.Dict) int {
	f, _ := spec.Field(e.Field)
	if e.LenField == "" {
		return f.Width
	}
	lf, _ := spec.Field(e.LenField)
	n := int(dict[e.LenField].Uint(0, lf.Width))*e.LenScale + e.LenBias
	if n < 0 {
		n = 0
	}
	if n > f.Width {
		n = f.Width
	}
	return n
}

// Resources sums the chain's hardware usage: total entries and the total
// number of sub-parser stages (each sub-parser occupies its own TCAM
// pipeline segment on the device).
func (p *Program) Resources() tcam.Resources {
	var total tcam.Resources
	for _, st := range p.Stages {
		r := st.Parser.Resources()
		total.Entries += r.Entries
		total.Stages += r.Stages
		total.States += r.States
		if r.MaxKeyWidth > total.MaxKeyWidth {
			total.MaxKeyWidth = r.MaxKeyWidth
		}
		if r.MaxEntries > total.MaxEntries {
			total.MaxEntries = r.MaxEntries
		}
	}
	return total
}
