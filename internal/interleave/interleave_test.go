package interleave

import (
	"math/rand"
	"strings"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/mat"
	"parserhawk/internal/p4"
)

// normChain builds the canonical Figure 2(c) scenario: the first
// sub-parser extracts a vendor-specific type tag; the pipeline NORMALIZES
// it (maps the vendor's private code to the canonical one); the second
// sub-parser selects on the normalized value. No single parser could
// express this: the match value seen by stage 2 never appears in the
// packet.
func normChain(t *testing.T) []Stage {
	t.Helper()
	stage1 := p4.MustParseSpec(`
header outer { bit<4> vendorType; }
parser Outer {
    state start { extract(outer); transition accept; }
}
`)
	stage2 := p4.MustParseSpec(`
header outer { bit<4> vendorType; }
header inner { bit<4> payload; }
parser Inner {
    state start {
        transition select(outer.vendorType) {
            0x3     : parse_inner;
            default : accept;
        }
    }
    state parse_inner { extract(inner); transition accept; }
}
`)
	// The pipeline maps vendor codes {0xA, 0xB} to the canonical 0x3.
	pipe := &mat.Pipeline{Tables: []mat.Table{{
		Name: "normalize",
		Rules: []mat.Rule{
			{
				Match:   []mat.FieldMatch{{Field: "outer.vendorType", Value: 0xA, Mask: 0xE, Width: 4}},
				Actions: []mat.Action{{Field: "outer.vendorType", Width: 4, SetConst: mat.U64(0x3)}},
			},
		},
	}}}
	return []Stage{
		{Spec: stage1, Pipe: pipe},
		{Spec: stage2, Imports: []string{"outer.vendorType"}},
	}
}

func TestReferenceSemanticsNormalization(t *testing.T) {
	stages := normChain(t)
	// Vendor code 0xA: the pipeline rewrites it to 0x3, so stage 2 parses
	// the inner header even though 0x3 never appears on the wire.
	in := bitstream.MustFromString("1010_0110")
	res := RunSpec(stages, in, 0)
	if !res.Accepted {
		t.Fatal("must accept")
	}
	if got := res.Dict["inner.payload"].Uint(0, 4); got != 0b0110 {
		t.Errorf("inner=%04b dict=%v", got, res.Dict)
	}
	if got := res.Dict["outer.vendorType"].Uint(0, 4); got != 0x3 {
		t.Errorf("normalized type=%x", got)
	}
	// Vendor code 0x4: not normalized, inner not parsed.
	res = RunSpec(stages, bitstream.MustFromString("0100_0110"), 0)
	if _, ok := res.Dict["inner.payload"]; ok {
		t.Error("inner must not be parsed for unknown types")
	}
}

func TestCompiledChainMatchesReference(t *testing.T) {
	stages := normChain(t)
	prog, err := Compile(stages, hw.IPU(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 1<<8; v++ {
		in := bitstream.FromUint(uint64(v), 8)
		got := prog.Run(in, 0)
		want := RunSpec(stages, in, 0)
		if got.Accepted != want.Accepted || !got.Dict.Equal(want.Dict) {
			t.Fatalf("input %08b:\nimpl acc=%v dict=%v\nspec acc=%v dict=%v",
				v, got.Accepted, got.Dict, want.Accepted, want.Dict)
		}
	}
}

func TestCompiledChainRandomWide(t *testing.T) {
	stages := normChain(t)
	prog, err := Compile(stages, hw.Tofino(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		in := bitstream.Random(rng, 12)
		got := prog.Run(in, 0)
		want := RunSpec(stages, in, 0)
		if got.Accepted != want.Accepted || !got.Dict.Equal(want.Dict) {
			t.Fatalf("input %s: impl %v vs spec %v", in, got.Dict, want.Dict)
		}
	}
}

func TestResourcesSumAcrossStages(t *testing.T) {
	stages := normChain(t)
	prog, err := Compile(stages, hw.IPU(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Resources()
	if r.Entries < 2 || r.Stages < 2 {
		t.Errorf("resources=%+v", r)
	}
}

func TestRejectionMidChain(t *testing.T) {
	s1 := p4.MustParseSpec(`
header h { bit<2> k; }
parser A {
    state start {
        extract(h);
        transition select(h.k) {
            0       : accept;
            default : reject;
        }
    }
}
`)
	s2 := p4.MustParseSpec(`
header g { bit<2> x; }
parser B {
    state start { extract(g); transition accept; }
}
`)
	stages := []Stage{{Spec: s1}, {Spec: s2}}
	prog, err := Compile(stages, hw.IPU(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Run(bitstream.MustFromString("1100"), 0)
	if !res.Rejected {
		t.Error("stage-1 rejection must drop the packet")
	}
	if _, ok := res.Dict["g.x"]; ok {
		t.Error("stage 2 must not run after a rejection")
	}
	ref := RunSpec(stages, bitstream.MustFromString("1100"), 0)
	if !ref.Rejected {
		t.Error("reference semantics must agree")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, hw.IPU(), core.DefaultOptions()); err == nil {
		t.Error("empty chain must fail")
	}
	spec := p4.MustParseSpec(`
header h { bit<2> k; }
parser A { state start { extract(h); transition accept; } }
`)
	// Import of an undeclared field.
	_, err := Compile([]Stage{{Spec: spec, Imports: []string{"nope"}}}, hw.IPU(), core.DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("want undeclared-import error, got %v", err)
	}
	// Invalid pipeline.
	bad := &mat.Pipeline{Tables: []mat.Table{{
		Rules: []mat.Rule{{Actions: []mat.Action{{Field: "f", Width: 4}}}},
	}}}
	_, err = Compile([]Stage{{Spec: spec, Pipe: bad}}, hw.IPU(), core.DefaultOptions())
	if err == nil {
		t.Error("invalid pipeline must fail")
	}
}

func TestWithImportsTransform(t *testing.T) {
	stages := normChain(t)
	spec, w, err := stages[1].withImports()
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Errorf("import width=%d", w)
	}
	if spec.States[0].Name != "__import" {
		t.Errorf("state0=%q", spec.States[0].Name)
	}
	if len(spec.States) != len(stages[1].Spec.States)+1 {
		t.Error("state count")
	}
}
