// Package bitstream provides bit-level views over packet data.
//
// A parser consumes an unstructured stream of bits and deposits slices of it
// into named packet fields. Bits is the fundamental representation used by
// both the specification interpreter (internal/pir) and the TCAM
// implementation interpreter (internal/tcam): a sequence of bits, most
// significant first, exactly as they appear on the wire.
package bitstream

import (
	"fmt"
	"math/rand"
	"strings"
)

// Bits is an immutable-by-convention sequence of bits in wire order.
// Index 0 is the first bit received. Values are 0 or 1.
type Bits []byte

// FromUint builds a width-bit big-endian Bits from the low bits of v.
func FromUint(v uint64, width int) Bits {
	b := make(Bits, width)
	for i := 0; i < width; i++ {
		b[i] = byte(v >> uint(width-1-i) & 1)
	}
	return b
}

// FromBytes expands wire bytes into bits, most significant bit first.
func FromBytes(data []byte) Bits {
	b := make(Bits, 0, len(data)*8)
	for _, by := range data {
		for i := 7; i >= 0; i-- {
			b = append(b, by>>uint(i)&1)
		}
	}
	return b
}

// FromString parses a string of '0' and '1' runes. Underscores and spaces
// are ignored so callers can group bits for readability.
func FromString(s string) (Bits, error) {
	b := make(Bits, 0, len(s))
	for _, r := range s {
		switch r {
		case '0':
			b = append(b, 0)
		case '1':
			b = append(b, 1)
		case '_', ' ':
		default:
			return nil, fmt.Errorf("bitstream: invalid bit %q in %q", r, s)
		}
	}
	return b, nil
}

// MustFromString is FromString that panics on malformed input. For tests
// and static tables.
func MustFromString(s string) Bits {
	b, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Random returns n uniformly random bits drawn from rng.
func Random(rng *rand.Rand, n int) Bits {
	b := make(Bits, n)
	for i := range b {
		b[i] = byte(rng.Intn(2))
	}
	return b
}

// Uint interprets b[from:from+width] as a big-endian unsigned integer.
// Bits beyond the end of the stream read as zero, matching hardware
// parsers that pad short packets.
func (b Bits) Uint(from, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		if p := from + i; p >= 0 && p < len(b) && b[p] != 0 {
			v |= 1
		}
	}
	return v
}

// Slice returns a copy of b[from:from+width], zero-padded past the end.
func (b Bits) Slice(from, width int) Bits {
	out := make(Bits, width)
	for i := 0; i < width; i++ {
		if p := from + i; p >= 0 && p < len(b) {
			out[i] = b[p]
		}
	}
	return out
}

// Bit returns the bit at position i, or zero past the end.
func (b Bits) Bit(i int) byte {
	if i >= 0 && i < len(b) {
		return b[i]
	}
	return 0
}

// Clone returns a fresh copy of b.
func (b Bits) Clone() Bits {
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// Concat returns the concatenation of b and more, as a new slice.
func (b Bits) Concat(more Bits) Bits {
	out := make(Bits, 0, len(b)+len(more))
	out = append(out, b...)
	return append(out, more...)
}

// Equal reports whether two bit strings are identical in length and content.
func (b Bits) Equal(o Bits) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the bits as a compact 0/1 string grouped in nibbles.
func (b Bits) String() string {
	var sb strings.Builder
	for i, bit := range b {
		if i > 0 && i%4 == 0 {
			sb.WriteByte('_')
		}
		sb.WriteByte('0' + bit)
	}
	return sb.String()
}

// Dict maps packet field names to their parsed values. A missing key means
// the field was never extracted; the specification's and implementation's
// dictionaries must agree on both membership and values (§4).
type Dict map[string]Bits

// Clone returns a deep copy of the dictionary.
func (d Dict) Clone() Dict {
	out := make(Dict, len(d))
	for k, v := range d {
		out[k] = v.Clone()
	}
	return out
}

// Equal reports whether two dictionaries hold exactly the same fields with
// exactly the same values.
func (d Dict) Equal(o Dict) bool {
	if len(d) != len(o) {
		return false
	}
	for k, v := range d {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first disagreement
// between d and o, or "" when they are equal. Used by the correctness
// simulator to explain counterexamples.
func (d Dict) Diff(o Dict) string {
	for k, v := range d {
		ov, ok := o[k]
		if !ok {
			return fmt.Sprintf("field %q present only in first dict (=%s)", k, v)
		}
		if !v.Equal(ov) {
			return fmt.Sprintf("field %q differs: %s vs %s", k, v, ov)
		}
	}
	for k := range o {
		if _, ok := d[k]; !ok {
			return fmt.Sprintf("field %q present only in second dict (=%s)", k, o[k])
		}
	}
	return ""
}
