package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromUint(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  string
	}{
		{0, 4, "0000"},
		{15, 4, "1111"},
		{10, 4, "1010"},
		{1, 1, "1"},
		{0x800A, 16, "1000_0000_0000_1010"},
		{5, 8, "0000_0101"},
	}
	for _, c := range cases {
		if got := FromUint(c.v, c.width).String(); got != MustFromString(c.want).String() {
			t.Errorf("FromUint(%d,%d)=%s want %s", c.v, c.width, got, c.want)
		}
	}
}

func TestUintRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		b := FromUint(uint64(v), 16)
		return b.Uint(0, 16) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBytes(t *testing.T) {
	b := FromBytes([]byte{0xAB, 0x01})
	if got := b.Uint(0, 16); got != 0xAB01 {
		t.Fatalf("got %#x want 0xAB01", got)
	}
	if len(b) != 16 {
		t.Fatalf("len=%d want 16", len(b))
	}
}

func TestFromStringErrors(t *testing.T) {
	if _, err := FromString("01x1"); err == nil {
		t.Error("expected error for invalid rune")
	}
	b, err := FromString("10_10 01")
	if err != nil {
		t.Fatal(err)
	}
	if b.Uint(0, 6) != 0b101001 {
		t.Errorf("separator handling wrong: %s", b)
	}
}

func TestUintPastEndReadsZero(t *testing.T) {
	b := MustFromString("11")
	if got := b.Uint(0, 4); got != 0b1100 {
		t.Errorf("got %b want 1100", got)
	}
	if got := b.Uint(5, 3); got != 0 {
		t.Errorf("fully-past-end read: got %d want 0", got)
	}
}

func TestSlicePadding(t *testing.T) {
	b := MustFromString("101")
	s := b.Slice(1, 4)
	if !s.Equal(MustFromString("0100")) {
		t.Errorf("Slice(1,4)=%s", s)
	}
}

func TestBit(t *testing.T) {
	b := MustFromString("10")
	if b.Bit(0) != 1 || b.Bit(1) != 0 || b.Bit(2) != 0 || b.Bit(-1) != 0 {
		t.Error("Bit boundary behaviour wrong")
	}
}

func TestConcatDoesNotAlias(t *testing.T) {
	a := MustFromString("1")
	c := a.Concat(MustFromString("0"))
	c[0] = 0
	if a[0] != 1 {
		t.Error("Concat aliased its receiver")
	}
}

func TestEqual(t *testing.T) {
	if MustFromString("10").Equal(MustFromString("100")) {
		t.Error("length mismatch must not be equal")
	}
	if !MustFromString("10").Equal(MustFromString("10")) {
		t.Error("identical strings must be equal")
	}
}

func TestRandomLengthAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Random(rng, 100)
	if len(b) != 100 {
		t.Fatalf("len=%d", len(b))
	}
	for _, bit := range b {
		if bit > 1 {
			t.Fatalf("bit out of range: %d", bit)
		}
	}
}

func TestDictEqualAndDiff(t *testing.T) {
	d1 := Dict{"a": MustFromString("01")}
	d2 := Dict{"a": MustFromString("01")}
	if !d1.Equal(d2) || d1.Diff(d2) != "" {
		t.Error("equal dicts reported different")
	}
	d2["a"] = MustFromString("11")
	if d1.Equal(d2) || d1.Diff(d2) == "" {
		t.Error("different values not detected")
	}
	d3 := Dict{"a": MustFromString("01"), "b": MustFromString("1")}
	if d1.Equal(d3) || d1.Diff(d3) == "" || d3.Diff(d1) == "" {
		t.Error("membership difference not detected")
	}
}

func TestDictCloneIsDeep(t *testing.T) {
	d := Dict{"a": MustFromString("01")}
	c := d.Clone()
	c["a"][0] = 1
	if d["a"][0] != 0 {
		t.Error("Clone shared underlying bits")
	}
}

func TestCloneIndependent(t *testing.T) {
	b := MustFromString("0101")
	c := b.Clone()
	c[0] = 1
	if b[0] != 0 {
		t.Error("Clone aliased")
	}
}

// Property: Slice then Uint agrees with direct Uint.
func TestSliceUintAgreement(t *testing.T) {
	f := func(v uint32, off uint8) bool {
		b := FromUint(uint64(v), 32)
		o := int(off % 32)
		w := 8
		return b.Slice(o, w).Uint(0, w) == b.Uint(o, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
