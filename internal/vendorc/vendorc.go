// Package vendorc models the commercial baseline compilers of §7: the
// open-sourced Tofino compiler back end and the closed-source Intel IPU
// compiler. Both translate the WRITTEN form of the parser program directly
// into TCAM entries — one entry per written transition rule plus one for
// the default — applying only the local heuristics the paper credits them
// with. In particular (per §7.2) they CANNOT:
//
//   - perform R4-like rewrites (splitting a transition key wider than the
//     hardware limit), so wide keys are rejected ("Wide tran key");
//   - rule out redundant (R1) or never-reached (R2) entries, so mutated
//     programs consume extra entries or stages and may push the program
//     past device limits ("Too many TCAM" / "Too many stages");
//   - unroll parser loops (IPU), so loopy programs are rejected
//     ("Parser loop rej"); and
//   - merge written states, so the pure-extraction chain keeps one stage
//     per written state.
//
// Like the real compilers, the output is nonetheless semantically correct
// whenever compilation succeeds.
package vendorc

import (
	"errors"
	"fmt"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// Failure reasons, matching the red cells of Table 3.
var (
	ErrWideKey      = errors.New("vendorc: wide tran key")
	ErrTooManyTCAM  = errors.New("vendorc: too many TCAM entries")
	ErrTooManyStage = errors.New("vendorc: too many stages")
	ErrParserLoop   = errors.New("vendorc: parser loop rejected")
	ErrConflict     = errors.New("vendorc: conflict transition")
	ErrCrossKey     = errors.New("vendorc: cross-state key positions not resolvable")
)

// Result is a vendor compilation outcome.
type Result struct {
	Program *tcam.Program
	Entries int
	Stages  int
}

// CompileTofino models the Tofino back end: single TCAM table, loops
// allowed, one entry per written rule.
func CompileTofino(spec *pir.Spec, profile hw.Profile) (*Result, error) {
	prog, err := literalTranslate(spec)
	if err != nil {
		return nil, err
	}
	res := prog.Resources()
	if res.MaxKeyWidth > profile.KeyLimit {
		return nil, fmt.Errorf("%w: %d bits > %d", ErrWideKey, res.MaxKeyWidth, profile.KeyLimit)
	}
	if res.Entries > profile.TCAMLimit {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyTCAM, res.Entries, profile.TCAMLimit)
	}
	return &Result{Program: prog, Entries: res.Entries, Stages: 1}, nil
}

// CompileIPU models the Intel IPU compiler: pipelined stages assigned by
// written-form depth, no loops, no written-state merging. A state whose
// written entries exceed the per-stage TCAM limit overflows into
// additional stages (the "Parse Ethernet + R1 uses 2 stages" effect).
func CompileIPU(spec *pir.Spec, profile hw.Profile) (*Result, error) {
	if spec.HasLoop() {
		return nil, ErrParserLoop
	}
	prog, err := literalTranslate(spec)
	if err != nil {
		return nil, err
	}
	res := prog.Resources()
	if res.MaxKeyWidth > profile.KeyLimit {
		return nil, fmt.Errorf("%w: %d bits > %d", ErrWideKey, res.MaxKeyWidth, profile.KeyLimit)
	}
	// Detect R2-style conflicts: two written rules with identical patterns
	// but different targets in one state. The real compiler's table fitter
	// reports a conflict instead of applying first-match priority analysis.
	for i := range spec.States {
		st := &spec.States[i]
		for a := 0; a < len(st.Rules); a++ {
			for b := a + 1; b < len(st.Rules); b++ {
				ra, rb := st.Rules[a], st.Rules[b]
				if ra.Value&ra.Mask == rb.Value&rb.Mask && ra.Mask == rb.Mask && ra.Next != rb.Next {
					return nil, fmt.Errorf("%w: state %q", ErrConflict, st.Name)
				}
			}
		}
	}

	// Stage assignment: depth of the written state graph, one written
	// state per stage slot. A state whose written entries exceed the
	// per-stage TCAM budget occupies an additional stage (the compiler
	// spills the overflowing entries forward rather than merging).
	depth, maxD, err := writtenDepths(spec)
	if err != nil {
		return nil, err
	}
	stages := maxD + 1
	for i := range prog.States {
		if len(prog.States[i].Entries) > profile.TCAMLimit {
			stages++
		}
	}
	if stages > profile.StageLimit {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyStage, stages, profile.StageLimit)
	}
	// Materialize stage numbers on the program. Overflow is modeled by
	// pushing every deeper state one stage further.
	bump := make([]int, len(prog.States))
	cum := 0
	for d := 0; d <= maxD; d++ {
		for i := range prog.States {
			if depth[i] != d {
				continue
			}
			bump[i] = cum
			if len(prog.States[i].Entries) > profile.TCAMLimit {
				cum++
			}
		}
	}
	remap := map[int]tcam.Target{}
	for i := range prog.States {
		remap[prog.States[i].ID] = tcam.To(depth[i]+bump[i], prog.States[i].ID)
	}
	for i := range prog.States {
		prog.States[i].Table = depth[i] + bump[i]
		for ei := range prog.States[i].Entries {
			n := prog.States[i].Entries[ei].Next
			if n.Kind == tcam.ToState {
				prog.States[i].Entries[ei].Next = remap[n.State]
			}
		}
	}
	res = prog.Resources()
	return &Result{Program: prog, Entries: res.Entries, Stages: stages}, nil
}

// CompileStreaming models an HLS-style FPGA streaming-parser generator:
// the packet arrives as a fixed window per cycle, each written state is
// laid onto the cycle grid where its headers arrive, and a state whose
// extraction exceeds one window stalls the pipeline for extra cycles. Like
// the other vendor models it translates the written form literally — no
// state merging, no key splitting, no loop unrolling — so wide keys, loops,
// and over-deep written graphs are rejected rather than rewritten. The
// reported Stages is the pipeline depth in cycles (the latency the paper's
// FPGA baseline optimizes), not the count of occupied tables.
func CompileStreaming(spec *pir.Spec, profile hw.Profile) (*Result, error) {
	if spec.HasLoop() {
		return nil, ErrParserLoop
	}
	prog, err := literalTranslate(spec)
	if err != nil {
		return nil, err
	}
	res := prog.Resources()
	if res.MaxKeyWidth > profile.KeyLimit {
		return nil, fmt.Errorf("%w: %d bits > %d", ErrWideKey, res.MaxKeyWidth, profile.KeyLimit)
	}
	for i := range prog.States {
		if len(prog.States[i].Entries) > profile.TCAMLimit {
			return nil, fmt.Errorf("%w: %d > %d per cycle", ErrTooManyTCAM, len(prog.States[i].Entries), profile.TCAMLimit)
		}
	}

	// Cycle slots: a written state occupies ⌈fixed-extract-bits/window⌉
	// cycles (minimum one); varbit tails are streamed by dedicated
	// shift-register logic and do not lengthen the match pipeline.
	slots := make([]int, len(spec.States))
	for i := range spec.States {
		bits := 0
		for _, e := range spec.States[i].Extracts {
			f, _ := spec.Field(e.Field)
			if f.Var {
				continue
			}
			bits += f.Width
		}
		slots[i] = 1
		if profile.WindowBits > 0 {
			if n := (bits + profile.WindowBits - 1) / profile.WindowBits; n > slots[i] {
				slots[i] = n
			}
		}
	}

	// Weighted longest path from the start state: each state begins the
	// cycle after its deepest predecessor finishes all of its slots.
	begin := make([]int, len(spec.States))
	queue := []int{0}
	relax := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if relax++; relax > len(spec.States)*len(spec.States)+1 {
			return nil, ErrParserLoop // cycle guard; HasLoop should have caught it
		}
		st := &spec.States[i]
		push := func(t pir.Target) {
			if t.Kind != pir.ToState {
				return
			}
			if d := begin[i] + slots[i]; d > begin[t.State] {
				begin[t.State] = d
				queue = append(queue, t.State)
			}
		}
		for _, r := range st.Rules {
			push(r.Next)
		}
		push(st.Default)
	}
	depth := 0
	for i := range spec.States {
		if begin[i]+slots[i] > depth {
			depth = begin[i] + slots[i]
		}
	}
	if depth > profile.StageLimit {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyStage, depth, profile.StageLimit)
	}

	// Materialize cycle numbers on the program.
	remap := map[int]tcam.Target{}
	for i := range prog.States {
		remap[prog.States[i].ID] = tcam.To(begin[i], prog.States[i].ID)
	}
	for i := range prog.States {
		prog.States[i].Table = begin[i]
		for ei := range prog.States[i].Entries {
			n := prog.States[i].Entries[ei].Next
			if n.Kind == tcam.ToState {
				prog.States[i].Entries[ei].Next = remap[n.State]
			}
		}
	}
	res = prog.Resources()
	return &Result{Program: prog, Entries: res.Entries, Stages: depth}, nil
}

// writtenDepths computes each written state's depth from the start state.
func writtenDepths(spec *pir.Spec) ([]int, int, error) {
	depth := make([]int, len(spec.States))
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	queue := []int{0}
	maxD := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		st := &spec.States[i]
		push := func(t pir.Target) {
			if t.Kind != pir.ToState {
				return
			}
			if d := depth[i] + 1; d > depth[t.State] {
				depth[t.State] = d
				if d > maxD {
					maxD = d
				}
				if d > len(spec.States) {
					return // cycle guard; HasLoop should have caught it
				}
				queue = append(queue, t.State)
			}
		}
		for _, r := range st.Rules {
			push(r.Next)
		}
		push(st.Default)
	}
	for i := range depth {
		if depth[i] < 0 {
			depth[i] = maxD // written but unreachable states still occupy a stage slot
		}
	}
	return depth, maxD, nil
}

// literalTranslate converts each written spec state into one TCAM state
// with one entry per written rule plus a default entry — no merging, no
// redundancy elimination, no reachability pruning.
func literalTranslate(spec *pir.Spec) (*tcam.Program, error) {
	back, err := backOffsets(spec)
	if err != nil {
		return nil, err
	}
	prog := &tcam.Program{Spec: spec}
	for si := range spec.States {
		st := &spec.States[si]
		lay, w, vbAt := offsets(spec, st)
		var key []pir.KeyPart
		for _, p := range st.Key {
			switch {
			case p.Lookahead:
				if vbAt >= 0 {
					return nil, fmt.Errorf("%w: state %q", ErrCrossKey, st.Name)
				}
				key = append(key, pir.LookaheadBits(w+p.Skip, p.Width))
			default:
				if off, ok := lay[p.Field]; ok {
					key = append(key, pir.LookaheadBits(off+p.Lo, p.Hi-p.Lo))
				} else if d, ok := back[si][p.Field]; ok && d >= 0 {
					key = append(key, p) // container match
					_ = d
				} else {
					return nil, fmt.Errorf("%w: state %q keys on %q", ErrCrossKey, st.Name, p.Field)
				}
			}
		}
		out := tcam.State{Table: 0, ID: si, Key: key}
		target := func(t pir.Target) tcam.Target {
			switch t.Kind {
			case pir.Accept:
				return tcam.AcceptTarget
			case pir.Reject:
				return tcam.RejectTarget
			default:
				return tcam.To(0, t.State)
			}
		}
		kw := st.KeyWidth()
		for _, r := range st.Rules {
			out.Entries = append(out.Entries, tcam.Entry{
				Value:    r.Value & widthMask(kw),
				Mask:     r.Mask & widthMask(kw),
				Extracts: append([]pir.Extract(nil), st.Extracts...),
				Next:     target(r.Next),
			})
		}
		out.Entries = append(out.Entries, tcam.Entry{
			Value: 0, Mask: 0,
			Extracts: append([]pir.Extract(nil), st.Extracts...),
			Next:     target(st.Default),
		})
		prog.States = append(prog.States, out)
	}
	return prog, nil
}

// offsets returns field offsets within a state's extraction, the static
// width, and the varbit offset (-1 when absent).
func offsets(spec *pir.Spec, st *pir.State) (map[string]int, int, int) {
	off := map[string]int{}
	w := 0
	vbAt := -1
	for _, e := range st.Extracts {
		f, _ := spec.Field(e.Field)
		off[e.Field] = w
		if f.Var {
			vbAt = w
			continue
		}
		w += f.Width
	}
	return off, w, vbAt
}

// backOffsets computes cross-state field back-distances, like the core
// compiler's analysis but without its varbit restrictions (the vendor
// compilers match extracted fields from containers, which always works).
func backOffsets(spec *pir.Spec) ([]map[string]int, error) {
	out := make([]map[string]int, len(spec.States))
	for i := range out {
		out[i] = map[string]int{}
	}
	// Record which fields are extracted on every path to each state.
	reach := make([]map[string]bool, len(spec.States))
	reach[0] = map[string]bool{}
	work := []int{0}
	for len(work) > 0 {
		si := work[0]
		work = work[1:]
		st := &spec.States[si]
		after := map[string]bool{}
		for f := range reach[si] {
			after[f] = true
		}
		for _, e := range st.Extracts {
			after[e.Field] = true
		}
		push := func(t pir.Target) {
			if t.Kind != pir.ToState {
				return
			}
			if reach[t.State] == nil {
				m := map[string]bool{}
				for f := range after {
					m[f] = true
				}
				reach[t.State] = m
				work = append(work, t.State)
				return
			}
			// Intersect.
			changed := false
			for f := range reach[t.State] {
				if !after[f] {
					delete(reach[t.State], f)
					changed = true
				}
			}
			if changed {
				work = append(work, t.State)
			}
		}
		for _, r := range st.Rules {
			push(r.Next)
		}
		push(st.Default)
	}
	for si := range spec.States {
		for f := range reachOrEmpty(reach, si) {
			out[si][f] = 0 // distance unused; containers hold the value
		}
	}
	return out, nil
}

func reachOrEmpty(reach []map[string]bool, i int) map[string]bool {
	if reach[i] == nil {
		return map[string]bool{}
	}
	return reach[i]
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
