package vendorc

import (
	"errors"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

func ethLike(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("eth",
		[]pir.Field{{Name: "type", Width: 4}, {Name: "v4", Width: 2}, {Name: "v6", Width: 2}},
		[]pir.State{
			{
				Name:     "start",
				Extracts: []pir.Extract{{Field: "type"}},
				Key:      []pir.KeyPart{pir.WholeField("type", 4)},
				Rules: []pir.Rule{
					pir.ExactRule(4, 4, pir.To(1)),
					pir.ExactRule(6, 4, pir.To(2)),
				},
				Default: pir.AcceptTarget,
			},
			{Name: "v4s", Extracts: []pir.Extract{{Field: "v4"}}, Default: pir.AcceptTarget},
			{Name: "v6s", Extracts: []pir.Extract{{Field: "v6"}}, Default: pir.AcceptTarget},
		})
}

func checkSemantics(t *testing.T, spec *pir.Spec, prog interface {
	Run(bitstream.Bits, int) pir.Result
}, bits int) {
	t.Helper()
	for v := uint64(0); v < 1<<uint(bits); v++ {
		in := bitstream.FromUint(v, bits)
		got := prog.Run(in, 0)
		want := spec.Run(in, 0)
		if !got.Same(want) {
			t.Fatalf("input %0*b: impl %v/%v vs spec %v/%v", bits, v,
				got.Accepted, got.Dict, want.Accepted, want.Dict)
		}
	}
}

func TestTofinoLiteralTranslation(t *testing.T) {
	spec := ethLike(t)
	r, err := CompileTofino(spec, hw.Tofino())
	if err != nil {
		t.Fatal(err)
	}
	checkSemantics(t, spec, r.Program, 6)
	// Written form: 2 rules + default in start, 1 default in each leaf.
	if r.Entries != 5 {
		t.Errorf("entries=%d want 5 (literal translation)", r.Entries)
	}
}

func TestTofinoKeepsRedundantEntries(t *testing.T) {
	spec := ethLike(t)
	// R1: duplicate a rule. Literal translation pays one entry for it.
	spec.States[0].Rules = append(spec.States[0].Rules, pir.ExactRule(4, 4, pir.To(1)))
	r, err := CompileTofino(spec, hw.Tofino())
	if err != nil {
		t.Fatal(err)
	}
	if r.Entries != 6 {
		t.Errorf("entries=%d want 6 (redundant entry retained)", r.Entries)
	}
	checkSemantics(t, spec, r.Program, 6)
}

func TestTofinoRejectsWideKey(t *testing.T) {
	spec := ethLike(t)
	p := hw.Tofino()
	p.KeyLimit = 2
	if _, err := CompileTofino(spec, p); !errors.Is(err, ErrWideKey) {
		t.Errorf("want wide-key rejection, got %v", err)
	}
}

func TestTofinoRejectsOverBudget(t *testing.T) {
	spec := ethLike(t)
	p := hw.Tofino()
	p.TCAMLimit = 3
	if _, err := CompileTofino(spec, p); !errors.Is(err, ErrTooManyTCAM) {
		t.Errorf("want entry rejection, got %v", err)
	}
}

func TestIPUStagesFollowWrittenDepth(t *testing.T) {
	spec := ethLike(t)
	r, err := CompileIPU(spec, hw.IPU())
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages != 2 {
		t.Errorf("stages=%d want 2 (written depth)", r.Stages)
	}
	checkSemantics(t, spec, r.Program, 6)
}

func TestIPUOverflowAddsStage(t *testing.T) {
	spec := ethLike(t)
	p := hw.IPU()
	p.TCAMLimit = 2 // start state has 3 written entries -> overflow
	r, err := CompileIPU(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages != 3 {
		t.Errorf("stages=%d want 3 (overflow stage)", r.Stages)
	}
}

func TestIPURejectsLoop(t *testing.T) {
	loop := pir.MustNew("mpls", []pir.Field{{Name: "l", Width: 4}},
		[]pir.State{{
			Name:     "L",
			Extracts: []pir.Extract{{Field: "l"}},
			Key:      []pir.KeyPart{pir.FieldSlice("l", 3, 4)},
			Rules:    []pir.Rule{pir.ExactRule(0, 1, pir.To(0))},
			Default:  pir.AcceptTarget,
		}})
	if _, err := CompileIPU(loop, hw.IPU()); !errors.Is(err, ErrParserLoop) {
		t.Errorf("want loop rejection, got %v", err)
	}
}

func TestIPUConflictTransition(t *testing.T) {
	spec := ethLike(t)
	// R2-ish mutation: identical pattern, different target (dead by
	// priority, but the table fitter reports a conflict).
	spec.States[0].Rules = append(spec.States[0].Rules, pir.ExactRule(4, 4, pir.To(2)))
	if _, err := CompileIPU(spec, hw.IPU()); !errors.Is(err, ErrConflict) {
		t.Errorf("want conflict rejection, got %v", err)
	}
}

func TestIPURejectsTooManyStages(t *testing.T) {
	spec := ethLike(t)
	p := hw.IPU()
	p.StageLimit = 1
	if _, err := CompileIPU(spec, p); !errors.Is(err, ErrTooManyStage) {
		t.Errorf("want stage rejection, got %v", err)
	}
}

func TestCrossStateContainerKey(t *testing.T) {
	spec := pir.MustNew("cross",
		[]pir.Field{{Name: "x", Width: 2}, {Name: "y", Width: 2}},
		[]pir.State{
			{Name: "A", Extracts: []pir.Extract{{Field: "x"}}, Default: pir.To(1)},
			{
				Name:     "B",
				Extracts: []pir.Extract{{Field: "y"}},
				Key:      []pir.KeyPart{pir.WholeField("x", 2)},
				Rules:    []pir.Rule{pir.ExactRule(3, 2, pir.RejectTarget)},
				Default:  pir.AcceptTarget,
			},
		})
	r, err := CompileTofino(spec, hw.Tofino())
	if err != nil {
		t.Fatal(err)
	}
	checkSemantics(t, spec, r.Program, 4)
}
