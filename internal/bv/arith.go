package bv

// Arithmetic and ordering over bitvectors. The parser encodings mostly
// need equality and masked matches, but a usable bitvector layer —
// and future encodings such as cursor arithmetic for symbolic positions —
// also need addition and unsigned comparison. All operations are
// MSB-first like the rest of the package.

// Add returns a + b (mod 2^width) via a ripple-carry adder.
func (s *Solver) Add(a, b BV) BV {
	s.sameWidth(a, b, "Add")
	w := a.Width()
	out := BV{Bits: make([]Lit, w)}
	carry := s.False()
	for i := w - 1; i >= 0; i-- {
		x, y := a.Bits[i], b.Bits[i]
		sum := s.Xor(s.Xor(x, y), carry)
		carry = s.Or(s.And(x, y), s.And(carry, s.Xor(x, y)))
		out.Bits[i] = sum
	}
	return out
}

// AddConst returns a + c (mod 2^width).
func (s *Solver) AddConst(a BV, c uint64) BV {
	return s.Add(a, s.Const(c, a.Width()))
}

// Sub returns a - b (mod 2^width), computed as a + ^b + 1.
func (s *Solver) Sub(a, b BV) BV {
	s.sameWidth(a, b, "Sub")
	w := a.Width()
	out := BV{Bits: make([]Lit, w)}
	carry := s.True() // the +1 of two's complement
	for i := w - 1; i >= 0; i-- {
		x, y := a.Bits[i], b.Bits[i].Not()
		sum := s.Xor(s.Xor(x, y), carry)
		carry = s.Or(s.And(x, y), s.And(carry, s.Xor(x, y)))
		out.Bits[i] = sum
	}
	return out
}

// ULT returns the formula a < b (unsigned).
func (s *Solver) ULT(a, b BV) Lit {
	s.sameWidth(a, b, "ULT")
	// MSB-first scan: a < b iff at the first differing bit, a has 0.
	lt := s.False()
	eqSoFar := s.True()
	for i := 0; i < a.Width(); i++ {
		lt = s.Or(lt, s.AndN(eqSoFar, a.Bits[i].Not(), b.Bits[i]))
		eqSoFar = s.And(eqSoFar, s.Iff(a.Bits[i], b.Bits[i]))
	}
	return lt
}

// ULE returns the formula a <= b (unsigned).
func (s *Solver) ULE(a, b BV) Lit {
	return s.Or(s.ULT(a, b), s.Eq(a, b))
}

// ShiftLeftConst returns a << n (zeros shifted in), same width.
func (s *Solver) ShiftLeftConst(a BV, n int) BV {
	w := a.Width()
	out := BV{Bits: make([]Lit, w)}
	for i := 0; i < w; i++ {
		if i+n < w {
			out.Bits[i] = a.Bits[i+n]
		} else {
			out.Bits[i] = s.False()
		}
	}
	return out
}

// ShiftRightConst returns a >> n (logical), same width.
func (s *Solver) ShiftRightConst(a BV, n int) BV {
	w := a.Width()
	out := BV{Bits: make([]Lit, w)}
	for i := 0; i < w; i++ {
		if i-n >= 0 {
			out.Bits[i] = a.Bits[i-n]
		} else {
			out.Bits[i] = s.False()
		}
	}
	return out
}

// ZeroExtend widens a to width bits by prepending zeros. Width smaller
// than a's is a programming error.
func (s *Solver) ZeroExtend(a BV, width int) BV {
	if width < a.Width() {
		panic("bv: ZeroExtend narrows")
	}
	out := BV{Bits: make([]Lit, width)}
	pad := width - a.Width()
	for i := 0; i < pad; i++ {
		out.Bits[i] = s.False()
	}
	copy(out.Bits[pad:], a.Bits)
	return out
}

// PopCountAtMost asserts that the number of set bits in a is at most k —
// the bitvector view of the hardware cardinality limits (key-width
// budgets of Figures 10 and 11).
func (s *Solver) PopCountAtMost(a BV, k int) {
	s.AtMostK(append([]Lit(nil), a.Bits...), k)
}
