// Package bv is a bitvector and pseudo-boolean constraint layer over the
// CDCL solver in internal/sat. It plays the role Z3 plays in the paper:
// ParserHawk's encoder builds formulas over fixed-width bitvectors (TCAM
// values, masks, one-hot state selectors) and asks for a model.
//
// Formulas are constructed with Tseitin transformation; constant operands
// are folded eagerly so that the optimized encodings (which replace free
// symbolic constants with small selector variables, §6.4) produce
// dramatically smaller CNF — the mechanism behind the paper's speedups.
package bv

import (
	"fmt"

	"parserhawk/internal/sat"
)

// Lit is a boolean formula handle: a SAT literal, with the solver's
// constant-true literal used to fold constants.
type Lit = sat.Lit

// BV is a fixed-width bitvector of boolean formulas, most significant bit
// first (index 0 = MSB), matching the wire order used everywhere else.
type BV struct {
	Bits []Lit
}

// Width returns the bitvector's width.
func (b BV) Width() int { return len(b.Bits) }

// Solver wraps a SAT solver with formula-construction helpers.
//
// Gate construction is hash-consed: structurally identical And/Xor/Ite
// gates are built once and shared, so repeated subcircuits (the CEGIS
// loop re-encodes near-identical counterexample circuits constantly) stop
// emitting duplicate CNF. DisableConsing turns the sharing off for A/B
// measurement.
type Solver struct {
	SAT *sat.Solver

	tru sat.Lit // literal fixed to true

	andCache map[[2]Lit]Lit
	xorCache map[[2]Lit]Lit
	muxCache map[[3]Lit]Lit

	nocons   bool
	gates    int64 // Tseitin gates actually allocated (cache misses)
	consHits int64 // gate constructions answered from the structural cache
}

// Metrics combines the underlying CDCL counters with the bit-blasting
// layer's own: how many Tseitin gates the encoder materialized (constant
// folding and the structural caches make this far smaller than the number
// of formula-construction calls), and how many gate constructions the
// hash-consing caches answered without emitting CNF.
type Metrics struct {
	sat.Metrics
	Gates    int64 `json:"gates"`
	ConsHits int64 `json:"cons_hits"`
}

// Metrics snapshots the solver's cumulative counters.
func (s *Solver) Metrics() Metrics {
	return Metrics{Metrics: s.SAT.Metrics(), Gates: s.gates, ConsHits: s.consHits}
}

// New returns a fresh solver with its constant-true literal asserted.
func New() *Solver { return newSolver(false) }

// NewRecording returns a solver that logs every clause (including the
// constant-true unit added here) so the instance can later be exported
// with WriteDIMACS. Costs one clause copy per AddClause; use only when an
// export may be requested.
func NewRecording() *Solver { return newSolver(true) }

func newSolver(record bool) *Solver {
	s := &Solver{
		SAT:      sat.New(),
		andCache: map[[2]Lit]Lit{},
		xorCache: map[[2]Lit]Lit{},
		muxCache: map[[3]Lit]Lit{},
	}
	s.SAT.RecordOriginal = record
	v := s.SAT.NewVar()
	s.tru = sat.MkLit(v, false)
	s.SAT.AddClause(s.tru)
	return s
}

// DisableConsing turns off the structural gate caches (constant folding
// stays on), so every And/Xor/Ite call emits fresh CNF. Only the A/B
// tests and ablation benches use it: it exists to measure what the
// hash-consed layer saves.
func (s *Solver) DisableConsing() { s.nocons = true }

// True and False return the constant literals.
func (s *Solver) True() Lit  { return s.tru }
func (s *Solver) False() Lit { return s.tru.Not() }

// NewLit allocates a fresh free boolean variable.
func (s *Solver) NewLit() Lit { return sat.MkLit(s.SAT.NewVar(), false) }

// Bool converts a Go bool to the corresponding constant literal.
func (s *Solver) Bool(b bool) Lit {
	if b {
		return s.tru
	}
	return s.tru.Not()
}

func (s *Solver) isTrue(l Lit) bool  { return l == s.tru }
func (s *Solver) isFalse(l Lit) bool { return l == s.tru.Not() }

// NewBV allocates a fresh symbolic bitvector of the given width.
func (s *Solver) NewBV(width int) BV {
	b := BV{Bits: make([]Lit, width)}
	for i := range b.Bits {
		b.Bits[i] = s.NewLit()
	}
	return b
}

// Const builds a constant bitvector from the low width bits of v.
func (s *Solver) Const(v uint64, width int) BV {
	b := BV{Bits: make([]Lit, width)}
	for i := 0; i < width; i++ {
		b.Bits[i] = s.Bool(v>>uint(width-1-i)&1 == 1)
	}
	return b
}

// Concat concatenates bitvectors MSB-first.
func (s *Solver) Concat(vs ...BV) BV {
	var bits []Lit
	for _, v := range vs {
		bits = append(bits, v.Bits...)
	}
	return BV{Bits: bits}
}

// Extract returns bits [lo, hi) of b (0 = MSB).
func (s *Solver) Extract(b BV, lo, hi int) BV {
	return BV{Bits: append([]Lit(nil), b.Bits[lo:hi]...)}
}

// Not negates a boolean formula.
func (s *Solver) Not(a Lit) Lit { return a.Not() }

// And returns a conjunction gate, folding constants.
func (s *Solver) And(a, b Lit) Lit {
	switch {
	case s.isFalse(a) || s.isFalse(b):
		return s.False()
	case s.isTrue(a):
		return b
	case s.isTrue(b):
		return a
	case a == b:
		return a
	case a == b.Not():
		return s.False()
	}
	if a > b {
		a, b = b, a
	}
	if g, ok := s.andCache[[2]Lit{a, b}]; ok && !s.nocons {
		s.consHits++
		return g
	}
	g := s.NewLit()
	s.gates++
	s.SAT.AddBinary(g.Not(), a)
	s.SAT.AddBinary(g.Not(), b)
	s.SAT.AddClause(g, a.Not(), b.Not())
	if !s.nocons {
		s.andCache[[2]Lit{a, b}] = g
	}
	return g
}

// Or returns a disjunction gate, folding constants.
func (s *Solver) Or(a, b Lit) Lit {
	return s.And(a.Not(), b.Not()).Not()
}

// Xor returns an exclusive-or gate, folding constants.
func (s *Solver) Xor(a, b Lit) Lit {
	switch {
	case s.isFalse(a):
		return b
	case s.isFalse(b):
		return a
	case s.isTrue(a):
		return b.Not()
	case s.isTrue(b):
		return a.Not()
	case a == b:
		return s.False()
	case a == b.Not():
		return s.True()
	}
	if a > b {
		a, b = b, a
	}
	if g, ok := s.xorCache[[2]Lit{a, b}]; ok && !s.nocons {
		s.consHits++
		return g
	}
	g := s.NewLit()
	s.gates++
	s.SAT.AddClause(g.Not(), a, b)
	s.SAT.AddClause(g.Not(), a.Not(), b.Not())
	s.SAT.AddClause(g, a.Not(), b)
	s.SAT.AddClause(g, a, b.Not())
	if !s.nocons {
		s.xorCache[[2]Lit{a, b}] = g
	}
	return g
}

// Iff returns a ↔ b.
func (s *Solver) Iff(a, b Lit) Lit { return s.Xor(a, b).Not() }

// Implies returns a → b.
func (s *Solver) Implies(a, b Lit) Lit { return s.Or(a.Not(), b) }

// AndN folds And over any number of formulas (empty = true).
func (s *Solver) AndN(ls ...Lit) Lit {
	g := s.True()
	for _, l := range ls {
		g = s.And(g, l)
	}
	return g
}

// OrN folds Or over any number of formulas (empty = false).
func (s *Solver) OrN(ls ...Lit) Lit {
	g := s.False()
	for _, l := range ls {
		g = s.Or(g, l)
	}
	return g
}

// MuxLit returns c ? a : b as a boolean formula: a single hash-consed
// if-then-else gate after constant folding. The condition is canonicalized
// to positive polarity (ITE(¬c,a,b) = ITE(c,b,a)) so both spellings share
// one gate.
func (s *Solver) MuxLit(c, a, b Lit) Lit {
	if s.isTrue(c) {
		return a
	}
	if s.isFalse(c) {
		return b
	}
	if a == b {
		return a
	}
	if c.Neg() {
		c, a, b = c.Not(), b, a
	}
	switch {
	case s.isTrue(a) || a == c:
		return s.Or(c, b)
	case s.isFalse(a) || a == c.Not():
		return s.And(c.Not(), b)
	case s.isTrue(b) || b == c.Not():
		return s.Or(c.Not(), a)
	case s.isFalse(b) || b == c:
		return s.And(c, a)
	case a == b.Not():
		return s.Iff(c, a)
	}
	if g, ok := s.muxCache[[3]Lit{c, a, b}]; ok && !s.nocons {
		s.consHits++
		return g
	}
	g := s.NewLit()
	s.gates++
	s.SAT.AddClause(g.Not(), c.Not(), a)
	s.SAT.AddClause(g.Not(), c, b)
	s.SAT.AddClause(g, c.Not(), a.Not())
	s.SAT.AddClause(g, c, b.Not())
	// Redundant but propagation-strengthening: a and b agreeing fixes g
	// without deciding c.
	s.SAT.AddClause(g, a.Not(), b.Not())
	s.SAT.AddClause(g.Not(), a, b)
	if !s.nocons {
		s.muxCache[[3]Lit{c, a, b}] = g
	}
	return g
}

// BVAnd computes the bitwise conjunction of equal-width vectors.
func (s *Solver) BVAnd(a, b BV) BV {
	s.sameWidth(a, b, "BVAnd")
	out := BV{Bits: make([]Lit, a.Width())}
	for i := range out.Bits {
		out.Bits[i] = s.And(a.Bits[i], b.Bits[i])
	}
	return out
}

// BVOr computes the bitwise disjunction of equal-width vectors.
func (s *Solver) BVOr(a, b BV) BV {
	s.sameWidth(a, b, "BVOr")
	out := BV{Bits: make([]Lit, a.Width())}
	for i := range out.Bits {
		out.Bits[i] = s.Or(a.Bits[i], b.Bits[i])
	}
	return out
}

// BVNot computes the bitwise negation.
func (s *Solver) BVNot(a BV) BV {
	out := BV{Bits: make([]Lit, a.Width())}
	for i := range out.Bits {
		out.Bits[i] = a.Bits[i].Not()
	}
	return out
}

// Eq returns the formula a == b for equal-width vectors.
func (s *Solver) Eq(a, b BV) Lit {
	s.sameWidth(a, b, "Eq")
	g := s.True()
	for i := range a.Bits {
		g = s.And(g, s.Iff(a.Bits[i], b.Bits[i]))
	}
	return g
}

// EqConst returns the formula a == v.
func (s *Solver) EqConst(a BV, v uint64) Lit {
	return s.Eq(a, s.Const(v, a.Width()))
}

// MaskedEq returns the TCAM match formula key & mask == value & mask. This
// is the core condition of every entry (§3.2, step 1).
func (s *Solver) MaskedEq(key, mask, value BV) Lit {
	s.sameWidth(key, mask, "MaskedEq")
	s.sameWidth(key, value, "MaskedEq")
	g := s.True()
	for i := range key.Bits {
		// mask[i] -> (key[i] == value[i])
		g = s.And(g, s.Implies(mask.Bits[i], s.Iff(key.Bits[i], value.Bits[i])))
	}
	return g
}

// Ite returns c ? a : b over equal-width vectors.
func (s *Solver) Ite(c Lit, a, b BV) BV {
	s.sameWidth(a, b, "Ite")
	out := BV{Bits: make([]Lit, a.Width())}
	for i := range out.Bits {
		out.Bits[i] = s.MuxLit(c, a.Bits[i], b.Bits[i])
	}
	return out
}

// SelectBV returns Σ sel[i]·opts[i] assuming sel is one-hot. All options
// must share a width. A non-one-hot selection yields the bitwise OR of the
// selected options, so callers must constrain sel with ExactlyOne.
func (s *Solver) SelectBV(sel []Lit, opts []BV) BV {
	if len(sel) != len(opts) {
		panic(fmt.Sprintf("bv: SelectBV %d selectors for %d options", len(sel), len(opts)))
	}
	w := opts[0].Width()
	out := s.Const(0, w)
	for i, o := range opts {
		s.sameWidth(o, out, "SelectBV")
		masked := BV{Bits: make([]Lit, w)}
		for j := 0; j < w; j++ {
			masked.Bits[j] = s.And(sel[i], o.Bits[j])
		}
		out = s.BVOr(out, masked)
	}
	return out
}

// SelectLit returns Σ sel[i]·opts[i] for boolean options under a one-hot
// selector.
func (s *Solver) SelectLit(sel []Lit, opts []Lit) Lit {
	if len(sel) != len(opts) {
		panic("bv: SelectLit arity mismatch")
	}
	g := s.False()
	for i := range sel {
		g = s.Or(g, s.And(sel[i], opts[i]))
	}
	return g
}

// AtMostOne asserts that at most one of the literals is true (pairwise
// encoding; selector vectors here are small).
func (s *Solver) AtMostOne(ls []Lit) {
	for i := 0; i < len(ls); i++ {
		for j := i + 1; j < len(ls); j++ {
			s.SAT.AddBinary(ls[i].Not(), ls[j].Not())
		}
	}
}

// ExactlyOne asserts that exactly one of the literals is true.
func (s *Solver) ExactlyOne(ls []Lit) {
	s.SAT.AddClause(ls...)
	s.AtMostOne(ls)
}

// AtMostK asserts Σ ls ≤ k with a sequential-counter encoding, used for
// hardware cardinality limits such as key-width budgets (Figures 10, 11).
func (s *Solver) AtMostK(ls []Lit, k int) {
	if k < 0 {
		panic("bv: AtMostK negative bound")
	}
	if k >= len(ls) {
		return
	}
	if k == 0 {
		for _, l := range ls {
			s.SAT.AddClause(l.Not())
		}
		return
	}
	// reg[i][j] ⇔ at least j+1 of ls[0..i] are true.
	n := len(ls)
	reg := make([][]Lit, n)
	for i := 0; i < n-1; i++ {
		reg[i] = make([]Lit, k)
		for j := range reg[i] {
			reg[i][j] = s.NewLit()
		}
	}
	s.SAT.AddBinary(ls[0].Not(), reg[0][0])
	for j := 1; j < k; j++ {
		s.SAT.AddClause(reg[0][j].Not())
	}
	for i := 1; i < n-1; i++ {
		s.SAT.AddBinary(ls[i].Not(), reg[i][0])
		s.SAT.AddBinary(reg[i-1][0].Not(), reg[i][0])
		for j := 1; j < k; j++ {
			s.SAT.AddClause(ls[i].Not(), reg[i-1][j-1].Not(), reg[i][j])
			s.SAT.AddBinary(reg[i-1][j].Not(), reg[i][j])
		}
		s.SAT.AddBinary(ls[i].Not(), reg[i-1][k-1].Not())
	}
	if n >= 2 {
		s.SAT.AddBinary(ls[n-1].Not(), reg[n-2][k-1].Not())
	}
}

// CountLadder builds a full sequential-counter over ls and returns its
// threshold literals: th[j] is implied whenever at least j+1 of ls are
// true (one-directional, like AtMostK's registers). Solving under the
// assumption th[k].Not() therefore enforces Σ ls ≤ k without committing
// the solver to any particular bound — the incremental alternative to
// AtMostK, letting one encoded instance serve a whole budget ladder of
// queries by swapping assumptions instead of re-encoding.
func (s *Solver) CountLadder(ls []Lit) []Lit {
	n := len(ls)
	if n == 0 {
		return nil
	}
	// Row i covers prefix ls[0..i]; row[j] ⇔ at least j+1 of the prefix.
	prev := []Lit{ls[0]}
	for i := 1; i < n; i++ {
		row := make([]Lit, i+1)
		for j := range row {
			row[j] = s.NewLit()
		}
		s.SAT.AddBinary(ls[i].Not(), row[0])
		for j := range prev {
			s.SAT.AddBinary(prev[j].Not(), row[j])
			s.SAT.AddClause(ls[i].Not(), prev[j].Not(), row[j+1])
		}
		prev = row
	}
	return prev
}

// Assert requires the formula to hold.
func (s *Solver) Assert(l Lit) { s.SAT.AddClause(l) }

// AssertOr requires at least one of the formulas to hold.
func (s *Solver) AssertOr(ls ...Lit) { s.SAT.AddClause(ls...) }

// Solve runs the SAT search (optionally under assumptions).
func (s *Solver) Solve(assumptions ...Lit) sat.Status {
	return s.SAT.Solve(assumptions...)
}

// Value reads a boolean formula's value from the last model.
func (s *Solver) Value(l Lit) bool {
	v := s.SAT.Model(l.Var())
	if l.Neg() {
		return !v
	}
	return v
}

// BVValue reads a bitvector's value from the last model.
func (s *Solver) BVValue(b BV) uint64 {
	var v uint64
	for _, l := range b.Bits {
		v <<= 1
		if s.Value(l) {
			v |= 1
		}
	}
	return v
}

// NumVars exposes the size of the underlying CNF in variables; Table 3's
// "search space (bits)" column reports the free decision bits separately.
func (s *Solver) NumVars() int { return s.SAT.NumVars() }

func (s *Solver) sameWidth(a, b BV, op string) {
	if a.Width() != b.Width() {
		panic(fmt.Sprintf("bv: %s width mismatch %d vs %d", op, a.Width(), b.Width()))
	}
}
