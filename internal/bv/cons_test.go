package bv

import (
	"math/bits"
	"math/rand"
	"testing"

	"parserhawk/internal/sat"
)

// buildRandomCircuit grows a random gate DAG over the given leaves using
// the consed gate constructors, returning the root. Drawing operands from
// the whole node list (not just the frontier) makes shared subcircuits
// common, which is exactly what the hash-consing layer targets.
func buildRandomCircuit(s *Solver, rng *rand.Rand, leaves []Lit, gates int) Lit {
	nodes := append([]Lit(nil), leaves...)
	pick := func() Lit {
		l := nodes[rng.Intn(len(nodes))]
		if rng.Intn(2) == 0 {
			return l.Not()
		}
		return l
	}
	for i := 0; i < gates; i++ {
		var g Lit
		switch rng.Intn(4) {
		case 0:
			g = s.And(pick(), pick())
		case 1:
			g = s.Or(pick(), pick())
		case 2:
			g = s.Xor(pick(), pick())
		default:
			g = s.MuxLit(pick(), pick(), pick())
		}
		nodes = append(nodes, g)
	}
	return nodes[len(nodes)-1]
}

// TestConsedCircuitsModelEquivalent builds the same random circuits in a
// consed and an unconsed solver and compares the root's value under every
// assignment of the leaves: hash-consing and the extra constant folds must
// never change circuit semantics.
func TestConsedCircuitsModelEquivalent(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		// Same seed per solver: both build the identical gate sequence.
		const nLeaves = 5
		build := func(s *Solver) ([]Lit, Lit) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			leaves := make([]Lit, nLeaves)
			for i := range leaves {
				leaves[i] = s.NewLit()
			}
			return leaves, buildRandomCircuit(s, rng, leaves, 30)
		}
		cons := New()
		consLeaves, consRoot := build(cons)
		plain := New()
		plain.DisableConsing()
		plainLeaves, plainRoot := build(plain)

		for assign := 0; assign < 1<<nLeaves; assign++ {
			pin := func(leaves []Lit) []Lit {
				out := make([]Lit, nLeaves)
				for i, l := range leaves {
					if assign&(1<<i) != 0 {
						out[i] = l
					} else {
						out[i] = l.Not()
					}
				}
				return out
			}
			if st := cons.Solve(pin(consLeaves)...); st != sat.Sat {
				t.Fatalf("trial %d assign %b: consed solver says %v", trial, assign, st)
			}
			if st := plain.Solve(pin(plainLeaves)...); st != sat.Sat {
				t.Fatalf("trial %d assign %b: unconsed solver says %v", trial, assign, st)
			}
			if cv, pv := cons.Value(consRoot), plain.Value(plainRoot); cv != pv {
				t.Fatalf("trial %d assign %05b: consed root=%v unconsed root=%v",
					trial, assign, cv, pv)
			}
		}
	}
}

// TestConsingShrinksRepeatedSubcircuits encodes the same comparison
// subcircuit many times — the shape of CEGIS counterexample circuitry,
// where every example re-matches the same symbolic entries — and checks
// the consed encoding emits strictly fewer CNF clauses while registering
// cache hits.
func TestConsingShrinksRepeatedSubcircuits(t *testing.T) {
	encode := func(s *Solver) {
		key := s.NewBV(12)
		mask := s.NewBV(12)
		for rep := 0; rep < 10; rep++ {
			// Identical structure each repetition: the gates behind
			// MaskedEq/Eq dedupe to a single copy under consing.
			fired := s.MaskedEq(key, mask, s.Const(0x5A5, 12))
			miss := s.Eq(key, s.Const(0x0FF, 12))
			s.Assert(s.Or(fired, miss.Not()))
		}
	}
	cons := New()
	encode(cons)
	plain := New()
	plain.DisableConsing()
	encode(plain)

	cm, pm := cons.Metrics(), plain.Metrics()
	if cm.Clauses >= pm.Clauses {
		t.Errorf("consed encoding uses %d clauses, unconsed %d — expected a strict shrink",
			cm.Clauses, pm.Clauses)
	}
	if cm.Vars >= pm.Vars {
		t.Errorf("consed encoding uses %d vars, unconsed %d — expected a strict shrink",
			cm.Vars, pm.Vars)
	}
	if cm.ConsHits == 0 {
		t.Error("no cons-cache hits recorded on a fixture made of repeated subcircuits")
	}
	if pm.ConsHits != 0 {
		t.Errorf("unconsed solver recorded %d cons hits; DisableConsing should bypass the caches", pm.ConsHits)
	}

	// The dedup must not change satisfiability.
	if cs, ps := cons.Solve(), plain.Solve(); cs != ps {
		t.Errorf("consed=%v unconsed=%v on the same instance", cs, ps)
	}
}

// TestCountLadderMatchesAtMostK checks the soundness claim behind the
// incremental budget ladder: for every assignment of the counted literals
// and every threshold k, solving under the assumption ladder[k].Not() is
// satisfiable exactly when at most k literals are true — i.e. the
// assumption enforces precisely what a hard AtMostK(ls, k) encodes.
func TestCountLadderMatchesAtMostK(t *testing.T) {
	const n = 6
	s := New()
	ls := make([]Lit, n)
	for i := range ls {
		ls[i] = s.NewLit()
	}
	ladder := s.CountLadder(ls)
	if len(ladder) != n {
		t.Fatalf("ladder has %d thresholds for %d literals", len(ladder), n)
	}
	for assign := 0; assign < 1<<n; assign++ {
		pinned := make([]Lit, n)
		for i, l := range ls {
			if assign&(1<<i) != 0 {
				pinned[i] = l
			} else {
				pinned[i] = l.Not()
			}
		}
		count := bits.OnesCount(uint(assign))
		for k := 0; k < n; k++ {
			want := sat.Unsat
			if count <= k {
				want = sat.Sat
			}
			if got := s.Solve(append(pinned[:n:n], ladder[k].Not())...); got != want {
				t.Fatalf("assign %06b (count %d) under ¬ladder[%d]: got %v want %v",
					assign, count, k, got, want)
			}
		}
		// Sanity: with no threshold assumed, any count is permitted.
		if got := s.Solve(pinned...); got != sat.Sat {
			t.Fatalf("assign %06b unconstrained: %v", assign, got)
		}
	}
}
