package bv

import (
	"math/rand"
	"testing"

	"parserhawk/internal/sat"
)

func TestAddSubAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		a, b := rng.Uint64()&0xFF, rng.Uint64()&0xFF
		s := New()
		sum := s.Add(s.Const(a, 8), s.Const(b, 8))
		diff := s.Sub(s.Const(a, 8), s.Const(b, 8))
		s.Solve()
		if got := s.BVValue(sum); got != (a+b)&0xFF {
			t.Fatalf("%d+%d=%d want %d", a, b, got, (a+b)&0xFF)
		}
		if got := s.BVValue(diff); got != (a-b)&0xFF {
			t.Fatalf("%d-%d=%d want %d", a, b, got, (a-b)&0xFF)
		}
	}
}

func TestAddSolvesForOperand(t *testing.T) {
	// Find x with x + 17 == 100 over 8 bits.
	s := New()
	x := s.NewBV(8)
	s.Assert(s.Eq(s.AddConst(x, 17), s.Const(100, 8)))
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	if got := s.BVValue(x); got != 83 {
		t.Errorf("x=%d", got)
	}
}

func TestULTULEAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		a, b := rng.Uint64()&0x3F, rng.Uint64()&0x3F
		s := New()
		lt := s.ULT(s.Const(a, 6), s.Const(b, 6))
		le := s.ULE(s.Const(a, 6), s.Const(b, 6))
		s.Solve()
		if s.Value(lt) != (a < b) {
			t.Fatalf("ULT(%d,%d)=%v", a, b, s.Value(lt))
		}
		if s.Value(le) != (a <= b) {
			t.Fatalf("ULE(%d,%d)=%v", a, b, s.Value(le))
		}
	}
}

func TestULTSynthesizesOrderedValue(t *testing.T) {
	// Find x strictly between 10 and 13.
	s := New()
	x := s.NewBV(4)
	s.Assert(s.ULT(s.Const(10, 4), x))
	s.Assert(s.ULT(x, s.Const(13, 4)))
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	if got := s.BVValue(x); got != 11 && got != 12 {
		t.Errorf("x=%d", got)
	}
}

func TestShifts(t *testing.T) {
	s := New()
	a := s.Const(0b0110_1001, 8)
	s.Solve()
	if got := s.BVValue(s.ShiftLeftConst(a, 3)); got != 0b0100_1000 {
		t.Errorf("shl=%08b", got)
	}
	if got := s.BVValue(s.ShiftRightConst(a, 2)); got != 0b0001_1010 {
		t.Errorf("shr=%08b", got)
	}
	if got := s.BVValue(s.ShiftLeftConst(a, 0)); got != 0b0110_1001 {
		t.Errorf("shl0=%08b", got)
	}
}

func TestZeroExtend(t *testing.T) {
	s := New()
	a := s.Const(0b101, 3)
	e := s.ZeroExtend(a, 8)
	s.Solve()
	if got := s.BVValue(e); got != 0b101 {
		t.Errorf("zext=%08b", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("narrowing ZeroExtend must panic")
		}
	}()
	s.ZeroExtend(s.Const(0, 8), 4)
}

func TestPopCountAtMost(t *testing.T) {
	s := New()
	x := s.NewBV(6)
	s.PopCountAtMost(x, 2)
	s.Assert(s.ULT(s.Const(0b100000, 6), x)) // force a large value
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	v := s.BVValue(x)
	pop := 0
	for t := v; t != 0; t &= t - 1 {
		pop++
	}
	if pop > 2 {
		t.Errorf("x=%06b has %d set bits", v, pop)
	}
}

func TestAddAssociativity(t *testing.T) {
	// (a+b)+c == a+(b+c) as formulas: assert inequality, expect unsat.
	s := New()
	a, b, c := s.NewBV(6), s.NewBV(6), s.NewBV(6)
	l := s.Add(s.Add(a, b), c)
	r := s.Add(a, s.Add(b, c))
	s.Assert(s.Eq(l, r).Not())
	if s.Solve() != sat.Unsat {
		t.Error("addition must be associative for every assignment")
	}
}
