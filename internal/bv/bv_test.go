package bv

import (
	"math/rand"
	"testing"

	"parserhawk/internal/sat"
)

func TestConstFolding(t *testing.T) {
	s := New()
	if !s.Value(s.True()) {
		t.Skip() // Value needs a model; establish one first
	}
}

func TestConstAndSolve(t *testing.T) {
	s := New()
	a := s.NewLit()
	s.Assert(s.And(a, s.True()))
	if s.Solve() != sat.Sat {
		t.Fatal("unsat?")
	}
	if !s.Value(a) {
		t.Error("a must be true")
	}
}

func TestMetricsCountGatesAndClauses(t *testing.T) {
	s := New()
	a, b := s.NewLit(), s.NewLit()
	g := s.And(a, b)
	if got := s.Metrics().Gates; got != 1 {
		t.Fatalf("gates=%d want 1", got)
	}
	// Cache hits and constant folding must not allocate new gates.
	if s.And(a, b) != g {
		t.Fatal("and cache broken")
	}
	s.And(a, s.True())
	if got := s.Metrics().Gates; got != 1 {
		t.Fatalf("gates=%d after cache hit + fold, want 1", got)
	}
	s.Assert(g)
	if s.Solve() != sat.Sat {
		t.Fatal("unsat?")
	}
	m := s.Metrics()
	if m.Clauses == 0 || m.Vars == 0 || m.Propagations == 0 {
		t.Errorf("metrics look dead: %+v", m)
	}
}

func TestAndOrXorTruthTables(t *testing.T) {
	// For every pair of free vars and every gate, enumerate models and
	// compare with Go's operators by asserting both polarities.
	type gate struct {
		name string
		mk   func(s *Solver, a, b Lit) Lit
		eval func(a, b bool) bool
	}
	gates := []gate{
		{"and", (*Solver).And, func(a, b bool) bool { return a && b }},
		{"or", (*Solver).Or, func(a, b bool) bool { return a || b }},
		{"xor", (*Solver).Xor, func(a, b bool) bool { return a != b }},
		{"iff", (*Solver).Iff, func(a, b bool) bool { return a == b }},
		{"implies", (*Solver).Implies, func(a, b bool) bool { return !a || b }},
	}
	for _, g := range gates {
		for av := 0; av < 2; av++ {
			for bvv := 0; bvv < 2; bvv++ {
				s := New()
				a, b := s.NewLit(), s.NewLit()
				out := g.mk(s, a, b)
				s.Assert(s.Iff(a, s.Bool(av == 1)))
				s.Assert(s.Iff(b, s.Bool(bvv == 1)))
				if s.Solve() != sat.Sat {
					t.Fatalf("%s(%d,%d): unsat", g.name, av, bvv)
				}
				want := g.eval(av == 1, bvv == 1)
				if got := s.Value(out); got != want {
					t.Errorf("%s(%d,%d)=%v want %v", g.name, av, bvv, got, want)
				}
			}
		}
	}
}

func TestGateConstantFolding(t *testing.T) {
	s := New()
	a := s.NewLit()
	if s.And(a, s.False()) != s.False() {
		t.Error("And false fold")
	}
	if s.And(a, s.True()) != a {
		t.Error("And true fold")
	}
	if s.Or(a, s.True()) != s.True() {
		t.Error("Or true fold")
	}
	if s.Xor(a, s.False()) != a {
		t.Error("Xor false fold")
	}
	if s.Xor(a, a) != s.False() {
		t.Error("Xor self fold")
	}
	if s.And(a, a.Not()) != s.False() {
		t.Error("And complement fold")
	}
	n := s.SAT.NumVars()
	s.And(a, s.True())
	if s.SAT.NumVars() != n {
		t.Error("folding must not allocate variables")
	}
}

func TestGateCaching(t *testing.T) {
	s := New()
	a, b := s.NewLit(), s.NewLit()
	g1 := s.And(a, b)
	g2 := s.And(b, a)
	if g1 != g2 {
		t.Error("And cache must be order-insensitive")
	}
}

func TestBVConstAndValue(t *testing.T) {
	s := New()
	c := s.Const(0b1010, 4)
	s.Solve()
	if got := s.BVValue(c); got != 0b1010 {
		t.Errorf("got %b", got)
	}
}

func TestEqAndExtractConcat(t *testing.T) {
	s := New()
	x := s.NewBV(8)
	s.Assert(s.EqConst(x, 0xA5))
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	if got := s.BVValue(x); got != 0xA5 {
		t.Fatalf("x=%x", got)
	}
	hi := s.Extract(x, 0, 4)
	lo := s.Extract(x, 4, 8)
	if s.BVValue(hi) != 0xA || s.BVValue(lo) != 0x5 {
		t.Error("extract halves wrong")
	}
	if s.BVValue(s.Concat(lo, hi)) != 0x5A {
		t.Error("concat wrong")
	}
}

func TestBitwiseOpsAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		av, bvv := rng.Uint64()&0xFF, rng.Uint64()&0xFF
		s := New()
		a, b := s.Const(av, 8), s.Const(bvv, 8)
		and, or, not := s.BVAnd(a, b), s.BVOr(a, b), s.BVNot(a)
		s.Solve()
		if s.BVValue(and) != av&bvv {
			t.Errorf("and: %x", s.BVValue(and))
		}
		if s.BVValue(or) != av|bvv {
			t.Errorf("or: %x", s.BVValue(or))
		}
		if s.BVValue(not) != ^av&0xFF {
			t.Errorf("not: %x", s.BVValue(not))
		}
	}
}

func TestMaskedEqMatchesTCAMSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		k, m, v := rng.Uint64()&0xF, rng.Uint64()&0xF, rng.Uint64()&0xF
		s := New()
		g := s.MaskedEq(s.Const(k, 4), s.Const(m, 4), s.Const(v, 4))
		s.Solve()
		want := k&m == v&m
		if got := s.Value(g); got != want {
			t.Errorf("MaskedEq(%x,%x,%x)=%v want %v", k, m, v, got, want)
		}
	}
}

func TestMaskedEqSynthesizesMergingMask(t *testing.T) {
	// The Figure 4 situation: find one (value, mask) covering {15,11,7,3}
	// while excluding {14, 2, 0}. The answer is mask=0b0011, value=0b0011.
	s := New()
	val := s.NewBV(4)
	mask := s.NewBV(4)
	for _, k := range []uint64{15, 11, 7, 3} {
		s.Assert(s.MaskedEq(s.Const(k, 4), mask, val))
	}
	for _, k := range []uint64{14, 2, 0} {
		s.Assert(s.MaskedEq(s.Const(k, 4), mask, val).Not())
	}
	if s.Solve() != sat.Sat {
		t.Fatal("a merging mask exists but was not found")
	}
	mv, vv := s.BVValue(mask), s.BVValue(val)
	for _, k := range []uint64{15, 11, 7, 3} {
		if k&mv != vv&mv {
			t.Errorf("model does not cover %d: m=%b v=%b", k, mv, vv)
		}
	}
	for _, k := range []uint64{14, 2, 0} {
		if k&mv == vv&mv {
			t.Errorf("model wrongly covers %d: m=%b v=%b", k, mv, vv)
		}
	}
}

func TestIteAndMux(t *testing.T) {
	s := New()
	c := s.NewLit()
	x := s.Ite(c, s.Const(0xF, 4), s.Const(0x3, 4))
	s.Assert(c)
	s.Solve()
	if s.BVValue(x) != 0xF {
		t.Error("ite true branch")
	}
	s2 := New()
	c2 := s2.NewLit()
	x2 := s2.Ite(c2, s2.Const(0xF, 4), s2.Const(0x3, 4))
	s2.Assert(c2.Not())
	s2.Solve()
	if s2.BVValue(x2) != 0x3 {
		t.Error("ite false branch")
	}
}

func TestSelectBVOneHot(t *testing.T) {
	s := New()
	sel := []Lit{s.NewLit(), s.NewLit(), s.NewLit()}
	s.ExactlyOne(sel)
	opts := []BV{s.Const(1, 4), s.Const(7, 4), s.Const(12, 4)}
	out := s.SelectBV(sel, opts)
	s.Assert(sel[2])
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	if got := s.BVValue(out); got != 12 {
		t.Errorf("select got %d", got)
	}
	if s.Value(sel[0]) || s.Value(sel[1]) {
		t.Error("one-hot violated")
	}
}

func TestSelectLit(t *testing.T) {
	s := New()
	sel := []Lit{s.NewLit(), s.NewLit()}
	s.ExactlyOne(sel)
	out := s.SelectLit(sel, []Lit{s.True(), s.False()})
	s.Assert(out.Not())
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	if !s.Value(sel[1]) {
		t.Error("must pick the false option")
	}
}

func TestExactlyOne(t *testing.T) {
	s := New()
	ls := []Lit{s.NewLit(), s.NewLit(), s.NewLit(), s.NewLit()}
	s.ExactlyOne(ls)
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	n := 0
	for _, l := range ls {
		if s.Value(l) {
			n++
		}
	}
	if n != 1 {
		t.Errorf("%d literals true", n)
	}
	// Forcing two true must be unsat.
	if s.Solve(ls[0], ls[1]) != sat.Unsat {
		t.Error("two trues must conflict")
	}
	// Forcing all false must be unsat.
	if s.Solve(ls[0].Not(), ls[1].Not(), ls[2].Not(), ls[3].Not()) != sat.Unsat {
		t.Error("all false must conflict")
	}
}

func TestAtMostKExhaustive(t *testing.T) {
	// For n ≤ 5 and every k, check AtMostK agrees with popcount by
	// trying all forced assignments.
	for n := 1; n <= 5; n++ {
		for k := 0; k <= n; k++ {
			for m := 0; m < 1<<uint(n); m++ {
				s := New()
				ls := make([]Lit, n)
				for i := range ls {
					ls[i] = s.NewLit()
				}
				s.AtMostK(ls, k)
				var assumptions []Lit
				pop := 0
				for i := range ls {
					if m>>uint(i)&1 == 1 {
						assumptions = append(assumptions, ls[i])
						pop++
					} else {
						assumptions = append(assumptions, ls[i].Not())
					}
				}
				got := s.Solve(assumptions...)
				want := sat.Sat
				if pop > k {
					want = sat.Unsat
				}
				if got != want {
					t.Fatalf("AtMostK(n=%d,k=%d,m=%b): %v want %v", n, k, m, got, want)
				}
			}
		}
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := New()
	s.Eq(s.NewBV(3), s.NewBV(4))
}

func TestAndNOrN(t *testing.T) {
	s := New()
	a, b, c := s.NewLit(), s.NewLit(), s.NewLit()
	s.Assert(s.AndN(a, b, c))
	s.Assert(s.OrN())
	if s.Solve() != sat.Unsat {
		t.Error("empty OrN is false; conjunction with it must be unsat")
	}
	s2 := New()
	x, y := s2.NewLit(), s2.NewLit()
	s2.Assert(s2.AndN(x, y))
	if s2.Solve() != sat.Sat || !s2.Value(x) || !s2.Value(y) {
		t.Error("AndN must force all true")
	}
}
