package core

import (
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/hw"
	"parserhawk/internal/p4"
)

// figure23Source is the left-hand program of the paper's Figure 23: two
// headers F0 and F1 whose trailing "common" field drives identical select
// logic in both parse states.
const figure23Source = `
header f0 { bit<4> f00; bit<4> common; }
header f1 { bit<4> f01; bit<4> common; }
header n0 { bit<2> x; }
header nk { bit<2> y; }
parser Fig23 {
    state start {
        transition select(lookahead<bit<1>>()) {
            0       : parse_f0;
            default : parse_f1;
        }
    }
    state parse_f0 {
        extract(f0);
        transition select(f0.common) {
            0x5     : nextv0;
            0x9     : nextvk;
            default : accept;
        }
    }
    state parse_f1 {
        extract(f1);
        transition select(f1.common) {
            0x5     : nextv0;
            0x9     : nextvk;
            default : accept;
        }
    }
    state nextv0 { extract(n0); transition accept; }
    state nextvk { extract(nk); transition accept; }
}
`

func TestFactorCommonSuffixFigure23(t *testing.T) {
	spec := p4.MustParseSpec(figure23Source)
	factored, facts, err := FactorCommonSuffix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 {
		t.Fatalf("factorings=%v", facts)
	}
	if len(facts[0].States) != 2 || facts[0].CommonWidth != 4 {
		t.Errorf("factoring=%+v", facts[0])
	}
	// One extra (shared) state.
	if len(factored.States) != len(spec.States)+1 {
		t.Errorf("states=%d", len(factored.States))
	}

	// The factored spec is equivalent modulo the renamed common field.
	for v := 0; v < 1<<13; v++ {
		in := bitstream.FromUint(uint64(v), 13)
		a := spec.Run(in, 0)
		b := factored.Run(in, 0)
		if a.Accepted != b.Accepted || a.Rejected != b.Rejected {
			t.Fatalf("outcome differs on %s", in)
		}
		// The prefix fields and the next-header fields must agree; the
		// common part appears under the shared name.
		for _, f := range []string{"f0.f00", "f1.f01", "n0.x", "nk.y"} {
			av, aok := a.Dict[f]
			bv, bok := b.Dict[f]
			if aok != bok || (aok && !av.Equal(bv)) {
				t.Fatalf("field %s differs on %s: %v vs %v", f, in, a.Dict, b.Dict)
			}
		}
		if cv, ok := a.Dict["f0.common"]; ok {
			if sv, sok := b.Dict["common0.part"]; !sok || !cv.Equal(sv) {
				t.Fatalf("common part lost on %s: %v vs %v", in, a.Dict, b.Dict)
			}
		}
	}
}

// TestFactoringSavesTCAM reproduces the Figure 23 claim: the factored
// program compiles to fewer TCAM entries because the duplicated select
// logic collapses into one shared state.
func TestFactoringSavesTCAM(t *testing.T) {
	spec := p4.MustParseSpec(figure23Source)
	factored, _, err := FactorCommonSuffix(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	before, err := Compile(spec, hw.Tofino(), opts)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Compile(factored, hw.Tofino(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if after.Resources.Entries >= before.Resources.Entries {
		t.Errorf("factoring must save entries: %d -> %d",
			before.Resources.Entries, after.Resources.Entries)
	}
	t.Logf("Figure 23: %d entries unfactored, %d factored",
		before.Resources.Entries, after.Resources.Entries)
}

func TestFactorNoOpWhenNothingShared(t *testing.T) {
	spec := p4.MustParseSpec(`
header h { bit<4> k; }
parser P {
    state start {
        extract(h);
        transition select(h.k) {
            1       : done;
            default : accept;
        }
    }
    state done { transition accept; }
}
`)
	out, facts, err := FactorCommonSuffix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 0 || out != spec {
		t.Error("nothing to factor; spec must be returned unchanged")
	}
}

func TestFactorIgnoresDifferentLogic(t *testing.T) {
	// Same trailing widths but different rules: must not merge.
	spec := p4.MustParseSpec(`
header a { bit<4> c; }
header b { bit<4> c; }
parser P {
    state start {
        transition select(lookahead<bit<1>>()) {
            0       : pa;
            default : pb;
        }
    }
    state pa {
        extract(a);
        transition select(a.c) {
            1       : accept;
            default : reject;
        }
    }
    state pb {
        extract(b);
        transition select(b.c) {
            2       : accept;
            default : reject;
        }
    }
}
`)
	_, facts, err := FactorCommonSuffix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 0 {
		t.Errorf("different select logic must not factor: %+v", facts)
	}
}
