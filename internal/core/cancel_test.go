package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// hardSpec is a deliberately expensive synthesis problem for the naive
// mode: a 16-bit transition key gives the unoptimized encoding a 2^16
// constant domain per entry, so uncancelled compilation runs for a very
// long time (that observation is the paper's Table 3).
func hardSpec(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("hard",
		[]pir.Field{
			{Name: "k", Width: 16},
			{Name: "a", Width: 4}, {Name: "b", Width: 4}, {Name: "c", Width: 4},
		},
		[]pir.State{
			{
				Name:     "Start",
				Extracts: []pir.Extract{{Field: "k"}},
				Key:      []pir.KeyPart{pir.WholeField("k", 16)},
				Rules: []pir.Rule{
					pir.ExactRule(0x8100, 16, pir.To(1)),
					pir.ExactRule(0x0800, 16, pir.To(2)),
					pir.ExactRule(0x86DD, 16, pir.To(3)),
					pir.ExactRule(0x0806, 16, pir.To(1)),
					pir.ExactRule(0x8847, 16, pir.To(2)),
				},
				Default: pir.AcceptTarget,
			},
			{Name: "N1", Extracts: []pir.Extract{{Field: "a"}}, Default: pir.AcceptTarget},
			{Name: "N2", Extracts: []pir.Extract{{Field: "b"}}, Default: pir.AcceptTarget},
			{Name: "N3", Extracts: []pir.Extract{{Field: "c"}}, Default: pir.AcceptTarget},
		})
}

// TestCompileTimeoutPrompt checks the tentpole property of the cancellable
// engine: a too-small budget on a hard (naive-mode) problem returns
// ErrTimeout promptly, because the deadline is threaded into the CDCL
// conflict loop and the verification sweeps rather than only being checked
// between CEGIS iterations. The naive hardSpec compilation runs far longer
// than the budget when allowed to; with a 100 ms budget it must abort
// within seconds.
func TestCompileTimeoutPrompt(t *testing.T) {
	spec := hardSpec(t)
	opts := NaiveOptions()
	opts.Timeout = 100 * time.Millisecond
	start := time.Now()
	_, err := Compile(spec, hw.Tofino(), opts)
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("finished within 100ms; machine too fast to observe timeout")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err=%v want ErrTimeout", err)
	}
	// Generous bound for slow CI machines: the point is "seconds, not the
	// minutes an uncancelled naive compile takes".
	if elapsed > 10*time.Second {
		t.Errorf("timeout honored only after %v; cancellation is not reaching the solver", elapsed)
	}
}

// TestCompileContextPreCanceled checks that an already-canceled context is
// reported as the context's error, not as a bogus ErrTimeout or
// ErrNoSolution.
func TestCompileContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileContext(ctx, hardSpec(t), hw.Tofino(), NaiveOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v want context.Canceled", err)
	}
}

// TestCompileContextCancelMidFlight cancels a long naive compilation from
// another goroutine and checks it aborts promptly with the context error.
func TestCompileContextCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := CompileContext(ctx, hardSpec(t), hw.Tofino(), NaiveOptions())
	elapsed := time.Since(start)
	if err == nil {
		// The compile won the race against the cancel; nothing to assert
		// beyond basic sanity.
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		t.Skip("compilation finished before the cancel fired")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancel honored only after %v", elapsed)
	}
}

// TestStatsSolverCountersLiveAndMonotone compiles the Figure 3 example and
// checks the solver-level statistics: the aggregate counters are non-zero,
// the winning runner's per-iteration snapshots are monotone (they are
// cumulative for that runner's solver), and the aggregate dominates the
// winner's final snapshot (it also includes losing budget rungs and
// skeleton attempts).
func TestStatsSolverCountersLiveAndMonotone(t *testing.T) {
	spec := fig3Spec(t)
	res, err := Compile(spec, hw.Tofino(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Solver.Solves == 0 || st.Solver.Propagations == 0 ||
		st.Solver.Clauses == 0 || st.Solver.Gates == 0 || st.Solver.Vars == 0 {
		t.Fatalf("aggregate solver counters look dead: %+v", st.Solver)
	}
	if st.BudgetsTried < 1 {
		t.Errorf("BudgetsTried=%d want >=1", st.BudgetsTried)
	}
	if len(st.Iterations) == 0 {
		t.Fatal("no per-iteration trace recorded")
	}
	var prev SolverStats
	for i, it := range st.Iterations {
		s := it.Solver
		if s.Decisions < prev.Decisions || s.Propagations < prev.Propagations ||
			s.Conflicts < prev.Conflicts || s.LearnedClauses < prev.LearnedClauses ||
			s.Clauses < prev.Clauses || s.Gates < prev.Gates || s.Vars < prev.Vars {
			t.Errorf("iteration %d snapshot not monotone: %+v after %+v", i, s, prev)
		}
		// Snapshots are cumulative for the rung's solver; the winning rung's
		// persistent session may enter with solves from earlier rungs, so the
		// first iteration only needs Solves >= 1, later ones exactly +1.
		if i == 0 && s.Solves < 1 {
			t.Errorf("iteration 0 snapshot has no solve: %+v", s)
		}
		if i > 0 && s.Solves != prev.Solves+1 {
			t.Errorf("iteration %d solve count %d, want %d", i, s.Solves, prev.Solves+1)
		}
		if it.Budget != st.EntryBudget {
			t.Errorf("iteration %d budget=%d, trace should be the winning runner's (budget %d)",
				i, it.Budget, st.EntryBudget)
		}
		prev = s
	}
	last := st.Iterations[len(st.Iterations)-1]
	if last.Status != "sat" {
		t.Errorf("winning runner's final iteration status=%q want sat", last.Status)
	}
	if st.Solver.Propagations < last.Solver.Propagations || st.Solver.Solves < last.Solver.Solves {
		t.Errorf("aggregate %+v smaller than the winner's own trace %+v", st.Solver, last.Solver)
	}
	if st.CEGISIterations == 0 || st.TestCases == 0 {
		t.Errorf("CEGIS bookkeeping dead: iterations=%d examples=%d", st.CEGISIterations, st.TestCases)
	}
}

// TestRacingLadderMatchesSequential checks that every ladder strategy
// lands on the same entry count: the FreshEncode sequential ladder, the
// FreshEncode racing ladder (rung racing only exists in that mode — an
// incremental session climbs by swapping one assumption, so there is
// nothing to race), and the default incremental session.
func TestRacingLadderMatchesSequential(t *testing.T) {
	spec := fig3Spec(t)
	seq := DefaultOptions()
	seq.Opt7Parallelism = false
	seq.FreshEncode = true
	rs, err := Compile(spec, hw.Tofino(), seq)
	if err != nil {
		t.Fatal(err)
	}
	race := DefaultOptions()
	race.Workers = 4
	race.FreshEncode = true
	rr, err := Compile(spec, hw.Tofino(), race)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := Compile(spec, hw.Tofino(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Resources.Entries != rr.Resources.Entries {
		t.Errorf("racing ladder changed the result: sequential=%d entries, racing=%d entries",
			rs.Resources.Entries, rr.Resources.Entries)
	}
	if rs.Resources.Entries != incr.Resources.Entries {
		t.Errorf("incremental session changed the result: fresh=%d entries, incremental=%d entries",
			rs.Resources.Entries, incr.Resources.Entries)
	}
}
