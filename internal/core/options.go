// Package core implements ParserHawk's program-synthesis compiler (§5, §6).
//
// Compilation proceeds exactly as in Figure 8: the front end analyzes the
// parser specification (internal/pir) and the hardware profile
// (internal/hw); the synthesizer runs a CEGIS loop over the bitvector
// solver (internal/bv) to concretize the symbolic TCAM entries of a parser
// skeleton; the back end post-optimizes and emits a tcam.Program.
//
// Each optimization of §6 is independently toggleable so the evaluation
// harness can reproduce the paper's ablations (Tables 3 and 5).
package core

import "time"

// Options configures a compilation. The zero value enables nothing; use
// DefaultOptions (all optimizations on, as in the paper's OPT rows) or
// NaiveOptions (all off, the Orig rows).
type Options struct {
	// Opt1 restricts implementation transition-key construction to the bits
	// the specification itself keys on (§6.1).
	Opt1SpecGuidedKeys bool
	// Opt2 scales fields irrelevant to control flow down to 1 bit during
	// synthesis and restores them afterwards (§6.2).
	Opt2BitWidthMin bool
	// Opt3 preallocates field extraction to parser states instead of
	// letting the solver choose (§6.3). Only applies to symmetric
	// (single-TCAM-table) architectures.
	Opt3Preallocation bool
	// Opt4 restricts symbolic match constants to values present in the
	// specification, their adjacent-state concatenations, and their
	// hardware-width subranges (§6.4).
	Opt4ConstantSynthesis bool
	// Opt5 groups contiguous bits of one field into indivisible key units
	// (§6.5).
	Opt5KeyGrouping bool
	// Opt6 treats varbit fields as fixed-size during synthesis and converts
	// them back afterwards (§6.6).
	Opt6FreezeVarbits bool
	// Opt7 runs loop-aware/loop-free skeletons and alternative structural
	// subproblems in parallel, taking the first success (§6.7).
	Opt7Parallelism bool

	// Timeout bounds the total compilation time; zero means no limit.
	// The paper uses 24 h; the scaled harness uses seconds.
	Timeout time.Duration

	// MaxIterations is the FSM unrolling bound K (§4). Zero picks a bound
	// derived from the specification.
	MaxIterations int

	// MaxBudget caps the iterative-deepening search budget, in the profile
	// objective's units (TCAM entries for entry-minimizing targets; see
	// hw.Objective). Zero derives a bound from the specification (one entry
	// per spec rule plus defaults).
	MaxBudget int

	// ExhaustiveVerifyBits is the largest input-space size (in bits) that
	// the verifier checks exhaustively; larger spaces use directed plus
	// random sampling. Default 16.
	ExhaustiveVerifyBits int

	// VerifySamples is the number of sampled inputs when exhaustive
	// verification is infeasible. Default 2000.
	VerifySamples int

	// Workers bounds Opt7's parallel subproblems. Zero means GOMAXPROCS.
	Workers int

	// SkipLint disables the SpecLint pre-pass: no diagnostics, no
	// error-severity rejection, and no pruning of unreachable states or
	// SAT-proved shadowed rules. The naive mode sets it — the paper's Orig
	// rows measure the plain encoding without any spec analysis — and tests
	// use it to compare pruned against unpruned compilations.
	SkipLint bool

	// ExhaustPortfolio disables early termination of the skeleton
	// portfolio: every structural subproblem runs to completion even after
	// a sibling has produced a provably-cheapest result (one at the
	// portfolio's entry lower bound). The evaluation harness uses it to
	// measure how much work early cancellation saves; leave it off
	// otherwise.
	ExhaustPortfolio bool

	// FreshEncode disables incremental solving sessions and restores the
	// old architecture: every entry-budget rung rebuilds a fresh solver,
	// re-bit-blasts the symbolic entry table, and re-encodes every CEGIS
	// example accumulated so far (with Opt7, adjacent rungs race in
	// parallel). Off — the default — one persistent session per skeleton
	// encodes the table once at the ladder cap and each rung is a solve
	// under a cardinality assumption, carrying learned clauses, variable
	// activity, and encoded counterexamples across rungs. The A/B harness
	// and CI smoke job flip this to measure what the sessions save, exactly
	// as ExhaustPortfolio does for racing.
	FreshEncode bool

	// NoExchange disables the portfolio's learnt-clause exchange: ladders
	// stop publishing glue clauses and refuter probes stop importing them.
	// Probes and the shared best-cost bound still run. The flag exists for
	// A/B measurement of what the exchange is worth; outcomes are identical
	// either way, because the authoritative ladder sessions never import.
	NoExchange bool

	// QuerySink, when non-nil, enables DIMACS capture: each budget rung
	// reports its most-conflicted SAT query (instance plus that solve's
	// assumptions as unit clauses) for offline solver debugging. The sink
	// may be called concurrently from racing skeleton attempts. Capture
	// costs one clause copy per AddClause; leave nil otherwise.
	QuerySink func(QueryDump)

	// EmitCertificate attaches a checkable certificate to the Result: the
	// effective spec, the compiled program, and a bisimulation witness the
	// independent checker in internal/cert validates statically (plus a
	// DRAT proof bundle when LogProofs is also set). Witness construction
	// runs once per compile, after the portfolio picks a winner; a failure
	// to construct one is recorded in the certificate, never an error.
	// Off by default. Outcome-invariant: the same program is produced
	// either way, so the flag is excluded from Fingerprint.
	EmitCertificate bool

	// LogProofs enables DRAT proof logging in every solver session this
	// compile creates. Each budget rung's hardest UNSAT query then carries
	// a replayable refutation (QueryDump.Proof), and portfolio refuter
	// kills are honored only after their proof passes the forward DRAT
	// check — certified rather than trusted. Proof-logging probes attach
	// to the clause exchange export-only so their refutations stay
	// self-contained. Off by default: logging copies every learnt clause.
	// Outcome-invariant and excluded from Fingerprint (a refuter kill it
	// suppresses only defers the same UNSAT verdict to the ladder).
	LogProofs bool

	// Seed makes test-case generation deterministic.
	Seed int64

	// Memo, when non-nil, connects the compile to a cross-compile memo
	// cache (internal/memo): the portfolio consults tier-2 skeleton
	// UNSAT-at-cap facts before starting a ladder and seeds each
	// skeleton's clause pool with tier-3 glue clauses recorded by an
	// identical earlier compile. Outcome-invariant and excluded from
	// Fingerprint: a tier-2 fact only skips a ladder whose ErrNoSolution
	// verdict is already proven (same rule as a refuter kill), and tier-3
	// seeds flow through the exchange's existing import path, which the
	// authoritative ladders never read.
	Memo Memo
}

// DefaultOptions returns the paper's OPT configuration: every optimization
// enabled.
func DefaultOptions() Options {
	return Options{
		Opt1SpecGuidedKeys:    true,
		Opt2BitWidthMin:       true,
		Opt3Preallocation:     true,
		Opt4ConstantSynthesis: true,
		Opt5KeyGrouping:       true,
		Opt6FreezeVarbits:     true,
		Opt7Parallelism:       true,
		ExhaustiveVerifyBits:  16,
		VerifySamples:         2000,
		Seed:                  1,
	}
}

// NaiveOptions returns the paper's Orig configuration: the plain synthesis
// encoding with every optimization disabled. Expect timeouts on all but the
// smallest inputs — that observation is the paper's Table 3.
func NaiveOptions() Options {
	return Options{
		ExhaustiveVerifyBits: 16,
		VerifySamples:        2000,
		Seed:                 1,
		SkipLint:             true,
	}
}

// LintStats summarizes the SpecLint pre-pass of one compilation: the
// diagnostic tallies and how much specification the analyzer proved dead
// and pruned before skeleton enumeration.
type LintStats struct {
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`

	// Pre/post-prune specification size. Equal when nothing was prunable;
	// zero throughout when linting was skipped.
	StatesBefore int `json:"states_before"`
	StatesAfter  int `json:"states_after"`
	RulesBefore  int `json:"rules_before"`
	RulesAfter   int `json:"rules_after"`
}

// Stats reports how a compilation went; the evaluation tables are built
// from these numbers.
type Stats struct {
	CEGISIterations int           `json:"cegis_iterations"`  // synthesis/verification round trips (winning skeleton)
	SkeletonsTried  int           `json:"skeletons_tried"`   // structural subproblems attempted
	BudgetsTried    int           `json:"budgets_tried"`     // entry-budget rungs attempted on the winning skeleton
	EntryBudget     int           `json:"entry_budget"`      // final entry budget that succeeded
	SearchSpaceBits int           `json:"search_space_bits"` // free decision bits of the naive encoding (Table 3)
	SolverVars      int           `json:"solver_vars"`       // CNF variables of the final successful query
	Elapsed         time.Duration `json:"elapsed"`           // wall-clock compile time
	SynthesisTime   time.Duration `json:"synthesis_time"`
	VerifyTime      time.Duration `json:"verify_time"`
	TestCases       int           `json:"test_cases"` // final size of the CEGIS example set

	// Lint reports the SpecLint pre-pass: diagnostic counts and the
	// specification shrink achieved by pruning unreachable states and
	// SAT-proved shadowed rules.
	Lint LintStats `json:"lint"`

	// Solver aggregates the CDCL/bit-blasting counters over every solver
	// instance the compilation ran — including skeleton attempts and budget
	// rungs that lost the race or were canceled, and the portfolio's refuter
	// probes, so it measures total search effort, not just the winner's.
	Solver SolverStats `json:"solver"`
	// Portfolio reports the parallel scheduler's activity: worker count,
	// ladders and refuter probes run, skeletons killed by refutation or the
	// shared best-cost bound, and clause-exchange traffic. All zero when the
	// compilation ran the sequential path (-workers 1, or Opt7 off).
	Portfolio PortfolioStats `json:"portfolio"`
	// Iterations is the winning budget rung's per-CEGIS-iteration trace.
	// Solver snapshots within it are cumulative for the solver that ran the
	// rung — the skeleton's persistent session (which may enter the rung
	// with non-zero counters from earlier rungs), or the rung's own solver
	// in FreshEncode mode — so they grow monotonically across the trace.
	Iterations []IterationStats `json:"iterations,omitempty"`
}

// SolverStats aggregates solver-level search counters (§6's cost model made
// observable): CDCL decisions, conflicts, propagations, learned clauses and
// restarts, plus the bit-blasting layer's CNF size in clauses, Tseitin
// gates, and variables.
type SolverStats struct {
	Solves          int64 `json:"solves"` // Solve calls issued
	Decisions       int64 `json:"decisions"`
	Propagations    int64 `json:"propagations"`
	Conflicts       int64 `json:"conflicts"`
	LearnedClauses  int64 `json:"learned_clauses"`
	LearnedLiterals int64 `json:"learned_literals"`
	Restarts        int64 `json:"restarts"`
	Clauses         int64 `json:"clauses"` // bit-blasted problem clauses
	Gates           int64 `json:"gates"`   // Tseitin gates materialized
	Vars            int64 `json:"vars"`    // CNF variables allocated

	// RetainedClauses sums, over every Solve call, the learned clauses
	// alive when the call started — CDCL work reused from earlier calls in
	// the same session rather than re-derived. Always zero in FreshEncode
	// mode within a rung's first solve and across rungs; with incremental
	// sessions it measures what the persistent clause database was worth.
	RetainedClauses int64 `json:"retained_clauses"`
	// ConsHits counts gate constructions the bit-blaster's hash-consing
	// caches answered without emitting CNF — duplicate subcircuits (mostly
	// repeated counterexample circuitry) that were deduplicated.
	ConsHits int64 `json:"cons_hits"`
	// BinPropagations counts implications served by the solver's binary
	// implication lists — propagations that never touched the clause arena.
	// The ratio to Propagations measures how binary-heavy the Tseitin
	// encodings are in practice.
	BinPropagations int64 `json:"bin_propagations"`
	// GlueLearnts counts learnt clauses with literal block distance ≤ 2 at
	// learning time; the solver's reduceDB never deletes them.
	GlueLearnts int64 `json:"glue_learnts"`
	// ExportedClauses counts glue clauses published to the portfolio's
	// clause exchange; ImportedClauses counts clauses adopted from it by
	// refuter probes; ImportHits counts the times an imported clause
	// participated in conflict analysis — proof work the exchange saved.
	// All zero outside the parallel portfolio path.
	ExportedClauses int64 `json:"exported_clauses"`
	ImportedClauses int64 `json:"imported_clauses"`
	ImportHits      int64 `json:"import_hits"`
}

// Add accumulates another snapshot into s.
func (s *SolverStats) Add(o SolverStats) {
	s.Solves += o.Solves
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.LearnedClauses += o.LearnedClauses
	s.LearnedLiterals += o.LearnedLiterals
	s.Restarts += o.Restarts
	s.Clauses += o.Clauses
	s.Gates += o.Gates
	s.Vars += o.Vars
	s.RetainedClauses += o.RetainedClauses
	s.ConsHits += o.ConsHits
	s.BinPropagations += o.BinPropagations
	s.GlueLearnts += o.GlueLearnts
	s.ExportedClauses += o.ExportedClauses
	s.ImportedClauses += o.ImportedClauses
	s.ImportHits += o.ImportHits
}

// Sub returns the counter movement from an earlier snapshot o to s. Every
// field is monotone over one solver's lifetime, so on snapshots of the
// same session the result is the effort spent in between — how per-rung
// deltas are carved out of a shared session without double counting.
func (s SolverStats) Sub(o SolverStats) SolverStats {
	return SolverStats{
		Solves:          s.Solves - o.Solves,
		Decisions:       s.Decisions - o.Decisions,
		Propagations:    s.Propagations - o.Propagations,
		Conflicts:       s.Conflicts - o.Conflicts,
		LearnedClauses:  s.LearnedClauses - o.LearnedClauses,
		LearnedLiterals: s.LearnedLiterals - o.LearnedLiterals,
		Restarts:        s.Restarts - o.Restarts,
		Clauses:         s.Clauses - o.Clauses,
		Gates:           s.Gates - o.Gates,
		Vars:            s.Vars - o.Vars,
		RetainedClauses: s.RetainedClauses - o.RetainedClauses,
		ConsHits:        s.ConsHits - o.ConsHits,
		BinPropagations: s.BinPropagations - o.BinPropagations,
		GlueLearnts:     s.GlueLearnts - o.GlueLearnts,
		ExportedClauses: s.ExportedClauses - o.ExportedClauses,
		ImportedClauses: s.ImportedClauses - o.ImportedClauses,
		ImportHits:      s.ImportHits - o.ImportHits,
	}
}

// PortfolioStats reports what the parallel portfolio scheduler did during
// one compilation. The scheduler only ever acts on schedule-invariant facts
// (see portfolio.go), so these counters describe how the work was carved
// up, never why an outcome differs — outcomes do not differ.
type PortfolioStats struct {
	// Workers is the resolved goroutine count the portfolio ran with.
	Workers int `json:"workers"`
	// LaddersRun counts skeleton ladders actually started (skeletons
	// dropped by domination or a provably-cheapest sibling are not run).
	LaddersRun int `json:"ladders_run"`
	// RefutersRun counts cap-budget infeasibility probes launched by idle
	// workers; SkeletonsRefuted counts skeletons those probes killed with a
	// cap-level UNSAT proof.
	RefutersRun      int `json:"refuters_run"`
	SkeletonsRefuted int `json:"skeletons_refuted"`
	// SkeletonsDominated counts skeletons dropped (or canceled mid-ladder)
	// because a lower-index sibling reached the portfolio's entry lower
	// bound — the shared best-cost bound's provably-cheapest rule, the one
	// domination test that is schedule-invariant (see portfolio.go).
	SkeletonsDominated int `json:"skeletons_dominated"`
	// SkeletonsMemoSkipped counts skeletons never started because the
	// memo cache (Options.Memo) held a tier-2 UNSAT-at-cap fact for their
	// canonical key — the same ErrNoSolution verdict a refuter kill or the
	// ladder itself would have produced, recalled instead of re-proven.
	SkeletonsMemoSkipped int `json:"skeletons_memo_skipped,omitempty"`
	// RefuterEffort totals the refuter probes' solver work. It is folded
	// into Stats.Solver, so compile-wide totals stay honest.
	RefuterEffort SolverStats `json:"refuter_effort"`
	// Exchange traffic summed over the per-skeleton clause pools: glue
	// clauses published by producers, clauses handed to consumers, and
	// publishes refused at the pool capacity.
	ExchangePublished int64 `json:"exchange_published"`
	ExchangeCollected int64 `json:"exchange_collected"`
	ExchangeDropped   int64 `json:"exchange_dropped"`
	// ExchangeSeeded counts clauses injected into the pools from the memo
	// cache's tier-3 records before any solver ran.
	ExchangeSeeded int64 `json:"exchange_seeded,omitempty"`
}

// QueryDump is one captured SAT query for offline debugging: the DIMACS
// CNF of the instance at solve time (assumptions included as unit
// clauses) plus enough metadata to tell which subproblem produced it.
// Options.QuerySink receives the most-conflicted query of each budget
// rung; a sink keeping the max-Conflicts dump sees the hardest query of
// the whole compilation.
type QueryDump struct {
	Spec     string // specification name
	Skeleton string // structural subproblem
	Budget   int    // entry-budget rung
	Examples int    // CEGIS examples encoded when the query ran
	Status   string // sat, unsat, or unknown
	// Conflicts is the solve's own conflict count (per-call delta), the
	// hardness measure used to pick which query to keep.
	Conflicts int64
	DIMACS    []byte
	// Proof is the DRAT log for this solve when Options.LogProofs is set
	// and the query was UNSAT: a refutation of exactly the CNF in DIMACS.
	Proof []byte
}

// IterationStats records one CEGIS iteration of one budget rung: the
// wall time split between the synthesis solve and the verification search,
// and a cumulative snapshot of the rung's solver counters taken right
// after the iteration's solve returned.
type IterationStats struct {
	Budget     int           `json:"budget"`
	Examples   int           `json:"examples"` // CEGIS examples fed before this solve
	Status     string        `json:"status"`   // sat, unsat, or canceled
	SolveTime  time.Duration `json:"solve_time"`
	VerifyTime time.Duration `json:"verify_time"`
	Solver     SolverStats   `json:"solver"` // cumulative within this runner
}
