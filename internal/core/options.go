// Package core implements ParserHawk's program-synthesis compiler (§5, §6).
//
// Compilation proceeds exactly as in Figure 8: the front end analyzes the
// parser specification (internal/pir) and the hardware profile
// (internal/hw); the synthesizer runs a CEGIS loop over the bitvector
// solver (internal/bv) to concretize the symbolic TCAM entries of a parser
// skeleton; the back end post-optimizes and emits a tcam.Program.
//
// Each optimization of §6 is independently toggleable so the evaluation
// harness can reproduce the paper's ablations (Tables 3 and 5).
package core

import "time"

// Options configures a compilation. The zero value enables nothing; use
// DefaultOptions (all optimizations on, as in the paper's OPT rows) or
// NaiveOptions (all off, the Orig rows).
type Options struct {
	// Opt1 restricts implementation transition-key construction to the bits
	// the specification itself keys on (§6.1).
	Opt1SpecGuidedKeys bool
	// Opt2 scales fields irrelevant to control flow down to 1 bit during
	// synthesis and restores them afterwards (§6.2).
	Opt2BitWidthMin bool
	// Opt3 preallocates field extraction to parser states instead of
	// letting the solver choose (§6.3). Only applies to symmetric
	// (single-TCAM-table) architectures.
	Opt3Preallocation bool
	// Opt4 restricts symbolic match constants to values present in the
	// specification, their adjacent-state concatenations, and their
	// hardware-width subranges (§6.4).
	Opt4ConstantSynthesis bool
	// Opt5 groups contiguous bits of one field into indivisible key units
	// (§6.5).
	Opt5KeyGrouping bool
	// Opt6 treats varbit fields as fixed-size during synthesis and converts
	// them back afterwards (§6.6).
	Opt6FreezeVarbits bool
	// Opt7 runs loop-aware/loop-free skeletons and alternative structural
	// subproblems in parallel, taking the first success (§6.7).
	Opt7Parallelism bool

	// Timeout bounds the total compilation time; zero means no limit.
	// The paper uses 24 h; the scaled harness uses seconds.
	Timeout time.Duration

	// MaxIterations is the FSM unrolling bound K (§4). Zero picks a bound
	// derived from the specification.
	MaxIterations int

	// MaxEntryBudget caps the iterative-deepening search for TCAM entries.
	// Zero derives a bound from the specification (one entry per spec rule
	// plus defaults).
	MaxEntryBudget int

	// ExhaustiveVerifyBits is the largest input-space size (in bits) that
	// the verifier checks exhaustively; larger spaces use directed plus
	// random sampling. Default 16.
	ExhaustiveVerifyBits int

	// VerifySamples is the number of sampled inputs when exhaustive
	// verification is infeasible. Default 2000.
	VerifySamples int

	// Workers bounds Opt7's parallel subproblems. Zero means GOMAXPROCS.
	Workers int

	// Seed makes test-case generation deterministic.
	Seed int64
}

// DefaultOptions returns the paper's OPT configuration: every optimization
// enabled.
func DefaultOptions() Options {
	return Options{
		Opt1SpecGuidedKeys:    true,
		Opt2BitWidthMin:       true,
		Opt3Preallocation:     true,
		Opt4ConstantSynthesis: true,
		Opt5KeyGrouping:       true,
		Opt6FreezeVarbits:     true,
		Opt7Parallelism:       true,
		ExhaustiveVerifyBits:  16,
		VerifySamples:         2000,
		Seed:                  1,
	}
}

// NaiveOptions returns the paper's Orig configuration: the plain synthesis
// encoding with every optimization disabled. Expect timeouts on all but the
// smallest inputs — that observation is the paper's Table 3.
func NaiveOptions() Options {
	return Options{
		ExhaustiveVerifyBits: 16,
		VerifySamples:        2000,
		Seed:                 1,
	}
}

// Stats reports how a compilation went; the evaluation tables are built
// from these numbers.
type Stats struct {
	CEGISIterations int           // synthesis/verification round trips
	SkeletonsTried  int           // structural subproblems attempted
	EntryBudget     int           // final entry budget that succeeded
	SearchSpaceBits int           // free decision bits of the naive encoding (Table 3)
	SolverVars      int           // CNF variables of the final successful query
	Elapsed         time.Duration // wall-clock compile time
	SynthesisTime   time.Duration
	VerifyTime      time.Duration
	TestCases       int // final size of the CEGIS example set
}
