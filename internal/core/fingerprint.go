package core

import "fmt"

// Fingerprint encodes the Options fields that can influence a
// compilation's outcome — the verdict, the entry table, and the stage
// count — as a stable human-readable string. It is the options component
// of the compile service's content-addressed cache key: two Options with
// equal fingerprints are guaranteed to produce identical outcomes on the
// same (spec, profile), so a cached result may be served for either.
//
// Deliberately excluded are the fields the compiler's determinism
// contracts prove outcome-invariant, so they never fragment the cache:
//
//   - Workers: the portfolio scheduler reproduces the sequential
//     compiler's verdicts, entry tables, and stage counts at every worker
//     count (see portfolio.go and the w4-vs-w1 CI identity job).
//   - FreshEncode: incremental sessions and per-rung re-encoding agree on
//     every outcome (the ab-smoke CI gate).
//   - NoExchange / ExhaustPortfolio: measurement toggles; the
//     authoritative ladders never import clauses, and early termination
//     only skips work a provably-cheapest result already dominates.
//   - Timeout: a deadline decides whether a result arrives, never which
//     result arrives. Timed-out compilations must not be cached at all.
//   - QuerySink / Seed-independent instrumentation: observation only.
//   - Memo: the cross-compile memo only replays verdicts it previously
//     proved (tier 2) or seeds clause pools the ladders never import
//     (tier 3) — a memoized compile's outcome equals the cold one's.
//   - EmitCertificate / LogProofs: certificates and DRAT logs describe
//     the compilation without steering it — proof logging appends to a
//     side buffer and never changes a solver decision, and the witness
//     is built from the finished program. The compile service relies on
//     this: it forces EmitCertificate on regardless of what the client's
//     fingerprint says.
//
// Seed stays in the key: it drives CEGIS test-case generation, and while
// any seed yields a correct program, different seeds may reach different
// (equally cheap) entry tables.
func (o Options) Fingerprint() string {
	return fmt.Sprintf(
		"opts1=%t,2=%t,3=%t,4=%t,5=%t,6=%t,7=%t;unroll=%d;budget=%d;exbits=%d;samples=%d;skiplint=%t;seed=%d",
		o.Opt1SpecGuidedKeys, o.Opt2BitWidthMin, o.Opt3Preallocation,
		o.Opt4ConstantSynthesis, o.Opt5KeyGrouping, o.Opt6FreezeVarbits,
		o.Opt7Parallelism,
		o.MaxIterations, o.MaxBudget,
		o.ExhaustiveVerifyBits, o.VerifySamples,
		o.SkipLint, o.Seed,
	)
}
