package core

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/sat"
	"parserhawk/internal/tcam"
)

// Result is a successful compilation: the concrete TCAM program, its
// resource footprint, and synthesis statistics.
type Result struct {
	Program   *tcam.Program
	Resources tcam.Resources
	Stats     Stats
}

// ErrTimeout reports that the compilation budget expired before any
// skeleton/budget subproblem succeeded — the ">timeout" rows of Table 3.
var ErrTimeout = errors.New("core: compilation timed out")

// ErrNoSolution reports that the CEGIS search exhausted every skeleton and
// entry budget without finding an implementation within the device's
// resources.
var ErrNoSolution = errors.New("core: no implementation fits the device resources")

// Compile synthesizes a TCAM parser program implementing spec on the given
// hardware profile. It is the whole Figure 8 pipeline: analysis, skeleton
// portfolio, CEGIS, post-synthesis optimization, and validation.
func Compile(spec *pir.Spec, profile hw.Profile, opts Options) (*Result, error) {
	start := time.Now()
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	// Loopy specs on pipelined devices are bounded by unrolling; the
	// verifier must use the same iteration bound so "deeper stack than the
	// device holds" counts as rejection on both sides.
	if spec.HasLoop() && !profile.AllowLoops() && opts.MaxIterations == 0 {
		opts.MaxIterations = 4
	}

	// Opt2: synthesize against the bit-width-minimized spec.
	synthSpec := spec
	if opts.Opt2BitWidthMin {
		synthSpec = scaleSpec(spec)
	}

	unroll := opts.MaxIterations
	origSks, effOrig, err := buildSkeletons(spec, profile, opts, unroll)
	if err != nil {
		return nil, err
	}
	synthSks, effSynth, err := origSks, effOrig, error(nil)
	if synthSpec != spec {
		synthSks, effSynth, err = buildSkeletons(synthSpec, profile, opts, unroll)
		if err != nil || !sameStructure(origSks, synthSks) {
			// Width-dependent structural decisions (lookahead deferral,
			// quotient grouping) diverged between the scaled and original
			// specs; Opt2 cannot be applied to this program. Fall back to
			// synthesizing on the original widths.
			synthSpec, synthSks, effSynth = spec, origSks, effOrig
		}
	}

	stats := Stats{}
	estEntries := 0
	for i := range spec.States {
		estEntries += len(spec.States[i].Rules) + 1
	}
	stages := 1
	if profile.Arch != hw.SingleTable {
		stages = profile.StageLimit
	}
	stats.SearchSpaceBits = spec.SearchSpaceBits(estEntries, stages)

	type attemptOut struct {
		res *Result
		err error
		idx int
	}
	attempt := func(idx int) attemptOut {
		r, err := compileSkeleton(spec, effOrig, effSynth, &origSks[idx], &synthSks[idx], profile, opts, expired)
		return attemptOut{res: r, err: err, idx: idx}
	}

	var outs []attemptOut
	if opts.Opt7Parallelism && len(origSks) > 1 && runtime.NumCPU() > 1 {
		// §6.7: solve structural subproblems in parallel, keep every
		// success, choose the cheapest.
		ch := make(chan attemptOut, len(origSks))
		var wg sync.WaitGroup
		for i := range origSks {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ch <- attempt(i)
			}(i)
		}
		wg.Wait()
		close(ch)
		for o := range ch {
			outs = append(outs, o)
		}
	} else {
		// Sequential portfolio (single-CPU machines, or Opt7 disabled):
		// every structural subproblem still runs — chunk-check order alone
		// can change the entry count (Figure 4's V1 vs V2) — the
		// subproblems just share the core instead of racing.
		for i := range origSks {
			outs = append(outs, attempt(i))
		}
	}

	var best *Result
	var firstErr error
	timedOut := false
	for _, o := range outs {
		stats.SkeletonsTried++
		if o.err != nil {
			if errors.Is(o.err, ErrTimeout) {
				timedOut = true
			} else if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if best == nil || cheaper(profile, o.res.Resources, best.Resources) {
			best = o.res
		}
	}
	if best == nil {
		if timedOut {
			return nil, ErrTimeout
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, ErrNoSolution
	}
	best.Stats.SkeletonsTried = stats.SkeletonsTried
	best.Stats.SearchSpaceBits = stats.SearchSpaceBits
	best.Stats.Elapsed = time.Since(start)
	return best, nil
}

// cheaper orders resource footprints by the device's scarce resource:
// stages then entries for pipelined parsers, entries then states for
// single-table parsers.
func cheaper(profile hw.Profile, a, b tcam.Resources) bool {
	if profile.Arch != hw.SingleTable {
		if a.Stages != b.Stages {
			return a.Stages < b.Stages
		}
		return a.Entries < b.Entries
	}
	if a.Entries != b.Entries {
		return a.Entries < b.Entries
	}
	return a.States < b.States
}

// compileSkeleton runs the iterative-deepening entry-budget ladder with a
// CEGIS loop at each rung.
// compileSkeleton runs CEGIS over one skeleton. spec is the user's
// original specification (used for the emitted program's field table);
// effOrig/effSynth are the effective verification specs — equal to
// spec/scaled-spec for loop-capable targets, their bounded unrollings for
// pipelined ones.
func compileSkeleton(spec, effOrig, effSynth *pir.Spec, origSk, synthSk *skeleton, profile hw.Profile, opts Options, expired func() bool) (*Result, error) {
	cap := 0
	for _, ss := range synthSk.States {
		cap += ss.MaxEntries
	}
	if opts.MaxEntryBudget > 0 && opts.MaxEntryBudget < cap {
		cap = opts.MaxEntryBudget
	}
	if profile.Arch == hw.SingleTable && cap > profile.TCAMLimit {
		cap = profile.TCAMLimit
	}
	// Semantic lower bound: a state realizing spec states with k distinct
	// implementation-level transition targets needs at least k entries
	// (mask merging only combines rules with the same target, §6.4.2).
	// Start the iterative-deepening ladder there. The bound is part of the
	// constant-synthesis domain knowledge, so the naive mode — which the
	// paper measures without any of it — starts from one entry.
	low := 1
	if opts.Opt4ConstantSynthesis {
		low = skeletonLowerBound(effSynth, synthSk)
	}
	if low > cap {
		low = cap
	}
	if low < 1 {
		low = 1
	}

	ver, err := newVerifier(effSynth, opts, opts.Seed)
	if err != nil {
		return nil, err
	}
	origVer, err := newVerifier(effOrig, opts, opts.Seed+1)
	if err != nil {
		return nil, err
	}

	// Shared CEGIS example set: counterexamples discovered at one budget
	// remain valid spec behaviours at every other budget.
	type example struct {
		in  bitstream.Bits
		out pir.Result
	}
	k := ver.maxIterBudget()
	var examples []example
	addExample := func(in bitstream.Bits) {
		examples = append(examples, example{in: in, out: effSynth.Run(in, k)})
	}
	addExample(make(bitstream.Bits, ver.maxLen)) // all-zeros
	addExample(ver.randomInput())                // §5.2: one random seed example

	stats := Stats{}
	synthStart := time.Now()
	debug := os.Getenv("PARSERHAWK_DEBUG") != ""
	for budget := low; budget <= cap; budget++ {
		if debug {
			fmt.Fprintf(os.Stderr, "[%s] budget=%d/%d examples=%d vars-so-far elapsed=%.1fs\n",
				synthSk.Name, budget, cap, len(examples), time.Since(synthStart).Seconds())
		}
		if expired() {
			return nil, ErrTimeout
		}
		sy := newSynthesizer(effSynth, synthSk, profile, opts, budget)
		fed := 0
		for {
			if expired() {
				return nil, ErrTimeout
			}
			tb := time.Now()
			for ; fed < len(examples); fed++ {
				if err := sy.addTestCase(examples[fed].in, examples[fed].out); err != nil {
					return nil, err
				}
			}
			if debug {
				fmt.Fprintf(os.Stderr, "  build=%.2fs vars=%d\n", time.Since(tb).Seconds(), sy.s.NumVars())
			}
			t0 := time.Now()
			status := sy.solve(expired)
			stats.SynthesisTime += time.Since(t0)
			if debug {
				fmt.Fprintf(os.Stderr, "  solve=%.2fs status=%v\n", time.Since(t0).Seconds(), status)
			}
			if status == sat.Unsat {
				break // budget too small; climb the ladder
			}
			if status == sat.Unknown {
				return nil, ErrTimeout
			}
			stats.CEGISIterations++

			// Verification phase on the synthesis-side spec.
			cand := sy.extract(effSynth, synthSk)
			t1 := time.Now()
			cex, found, _ := ver.counterexample(cand)
			stats.VerifyTime += time.Since(t1)
			if found {
				addExample(cex)
				continue
			}

			// Success on the synthesis spec: rebuild against the original
			// spec (undo Opt2 scaling) and re-verify.
			final := sy.extract(spec, origSk)
			if cex2, found2, _ := origVer.counterexample(final); found2 {
				if effSynth == effOrig {
					// Same spec, different sampling seed: a genuine
					// counterexample the first verifier missed. Feed it
					// back into the CEGIS example set and continue.
					addExample(cex2)
					continue
				}
				// Scaling misled synthesis (should not happen for supported
				// specs); fall back by disabling Opt2 for this skeleton.
				o2 := opts
				o2.Opt2BitWidthMin = false
				return compileSkeleton(spec, effOrig, effOrig, origSk, origSk, profile, o2, expired)
			}
			unoptimized := final
			final, err := postOptimize(final, profile)
			if err != nil {
				// Post-optimization found a hard resource violation (e.g.
				// too many stages); a larger budget will not help.
				return nil, err
			}
			// Folding can change iteration counts; at the unrolling bound K
			// that can shift an outcome across the budget boundary. Keep the
			// optimized program only if it still satisfies the K-bounded
			// contract.
			if _, foldBroke, _ := origVer.counterexample(final); foldBroke {
				final = unoptimized
				if profile.Arch != hw.SingleTable {
					var serr error
					if final, serr = assignStages(final, profile); serr != nil {
						break
					}
				}
			}
			if err := profile.Validate(final); err != nil {
				break // exceeds device limits at this shape; try next budget
			}
			stats.EntryBudget = budget
			stats.SolverVars = sy.s.NumVars()
			stats.TestCases = len(examples)
			stats.Elapsed = time.Since(synthStart)
			return &Result{Program: final, Resources: final.Resources(), Stats: stats}, nil
		}
	}
	return nil, ErrNoSolution
}

// skeletonLowerBound computes the minimum total entry count any correct
// implementation of the skeleton can use: per skeleton state, the number
// of distinct implementation-level targets (skeleton-state classes plus
// accept/reject) its spec rules and defaults reach. Key-split copies
// beyond the canonical one contribute nothing (they may stay empty).
func skeletonLowerBound(spec *pir.Spec, sk *skeleton) int {
	// Map each spec state to the skeleton state class realizing it.
	class := map[int]int{}
	seenClass := map[string]bool{}
	for si, ss := range sk.States {
		if seenClass[ss.Name] {
			continue
		}
		seenClass[ss.Name] = true
		for _, sp := range ss.SpecStates {
			if _, ok := class[sp]; !ok {
				class[sp] = si
			}
		}
	}
	total := 0
	counted := map[string]bool{} // one contribution per spec-state group
	for _, ss := range sk.States {
		sig := fmt.Sprint(ss.SpecStates)
		if counted[sig] {
			continue // later key-split copies of the same spec states
		}
		counted[sig] = true
		// A key-split chain needs at least one entry per continuation level
		// on top of its per-target entries.
		levels := 0
		for _, other := range sk.States {
			if fmt.Sprint(other.SpecStates) == sig && other.ChainLevel > levels {
				levels = other.ChainLevel
			}
		}
		total += levels
		targets := map[int]bool{}
		const (
			tAccept = -1
			tReject = -2
		)
		add := func(t pir.Target) {
			switch t.Kind {
			case pir.Accept:
				targets[tAccept] = true
			case pir.Reject:
				targets[tReject] = true
			default:
				if c, ok := class[t.State]; ok {
					targets[c] = true
				} else {
					targets[tReject] = true // unreachable spec target
				}
			}
		}
		for _, sp := range ss.SpecStates {
			for _, r := range spec.States[sp].Rules {
				add(r.Next)
			}
			add(spec.States[sp].Default)
		}
		n := len(targets)
		if n < 1 {
			n = 1
		}
		total += n
	}
	return total
}

// scaleSpec implements Opt2 (§6.2): every field irrelevant to control flow
// is shrunk to 1 bit, shrinking the synthesis input space exponentially.
// The structural search result transfers back to the original spec because
// transition keys never touch irrelevant fields.
func scaleSpec(spec *pir.Spec) *pir.Spec {
	irr := map[string]bool{}
	for _, f := range spec.IrrelevantFields() {
		irr[f] = true
	}
	if len(irr) == 0 {
		return spec
	}
	fields := make([]pir.Field, len(spec.Fields))
	for i, f := range spec.Fields {
		fields[i] = f
		if irr[f.Name] {
			fields[i].Width = 1
		}
	}
	states := make([]pir.State, len(spec.States))
	for i := range spec.States {
		st := spec.States[i]
		states[i] = pir.State{
			Name:     st.Name,
			Extracts: append([]pir.Extract(nil), st.Extracts...),
			Key:      append([]pir.KeyPart(nil), st.Key...),
			Rules:    append([]pir.Rule(nil), st.Rules...),
			Default:  st.Default,
		}
	}
	scaled, err := pir.New(spec.Name+"-scaled", fields, states)
	if err != nil {
		// Scaling can only fail if the original was malformed; fall back.
		return spec
	}
	return scaled
}

// sameStructure reports whether two skeleton portfolios made identical
// structural decisions (same subproblems, same states), so a model found
// on one transfers to the other.
func sameStructure(a, b []skeleton) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].States) != len(b[i].States) {
			return false
		}
		for j := range a[i].States {
			sa, sb := &a[i].States[j], &b[i].States[j]
			if sa.Name != sb.Name || sa.KeyWidth != sb.KeyWidth ||
				len(sa.Key) != len(sb.Key) || len(sa.Extracts) != len(sb.Extracts) {
				return false
			}
		}
	}
	return true
}

// Unroll rewrites a loopy specification into the bounded loop-free form
// used when compiling for pipelined devices: loop states are replicated
// depth times and a deeper stack is rejected. It is exported so callers
// can state the bounded-equivalence contract explicitly (the compiled
// pipeline is equivalent to Unroll(spec, depth), not to the unbounded
// loop).
func Unroll(spec *pir.Spec, depth int) (*pir.Spec, error) {
	return unrollSpec(spec, depth)
}
