package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/bv"
	"parserhawk/internal/cert"
	"parserhawk/internal/hw"
	"parserhawk/internal/lint"
	"parserhawk/internal/pir"
	"parserhawk/internal/sat"
	"parserhawk/internal/tcam"
)

// Result is a successful compilation: the concrete TCAM program, its
// resource footprint, and synthesis statistics.
type Result struct {
	Program   *tcam.Program
	Resources tcam.Resources
	Stats     Stats
	// Certificate is the proof-carrying artifact built when
	// Options.EmitCertificate is set: the effective spec, the program,
	// a bisimulation witness, and optionally a DRAT proof bundle, all
	// checkable by internal/cert (and the hawkcheck CLI) without
	// trusting this package.
	Certificate *cert.Certificate
}

// ErrTimeout reports that the compilation budget expired before any
// skeleton/budget subproblem succeeded — the ">timeout" rows of Table 3.
var ErrTimeout = errors.New("core: compilation timed out")

// ErrNoSolution reports that the CEGIS search exhausted every skeleton and
// entry budget without finding an implementation within the device's
// resources.
var ErrNoSolution = errors.New("core: no implementation fits the device resources")

// LintError is the diagnostics-bearing rejection returned when SpecLint
// finds error-severity defects. All diagnostics — not just the errors —
// are attached so the caller can render the full report.
type LintError struct {
	Spec  string      // specification name
	Diags []lint.Diag // every diagnostic from the failed run, sorted
}

func (e *LintError) Error() string {
	errs, warns, _ := lint.Counts(e.Diags)
	msg := fmt.Sprintf("core: spec %q rejected by lint: %d error(s), %d warning(s)", e.Spec, errs, warns)
	for _, d := range e.Diags {
		if d.Severity == lint.Error {
			msg += "\n  " + d.String()
		}
	}
	return msg
}

// errCanceled marks a skeleton attempt or budget rung that was cut short by
// cancellation — either the compilation deadline or a sibling winning the
// race. It never escapes Compile: the collector translates it into
// ErrTimeout, the caller's context error, or simply drops it when a sibling
// produced a result.
var errCanceled = errors.New("core: attempt canceled")

// errBudgetTooSmall reports that a budget rung proved its search budget
// insufficient (solver UNSAT, or the shape exceeded device limits); the
// ladder climbs to the next rung. The budget is measured in the profile
// objective's units (see hw.Objective).
var errBudgetTooSmall = errors.New("core: search budget too small")

// Compile synthesizes a TCAM parser program implementing spec on the given
// hardware profile. It is the whole Figure 8 pipeline: analysis, skeleton
// portfolio, CEGIS, post-synthesis optimization, and validation.
func Compile(spec *pir.Spec, profile hw.Profile, opts Options) (*Result, error) {
	return CompileContext(context.Background(), spec, profile, opts)
}

// CompileContext is Compile under a caller-supplied context. Cancellation
// is threaded down through every skeleton attempt, budget rung, and into
// the CDCL conflict loop itself, so canceling ctx aborts in-flight SAT
// solves instead of waiting for them to finish. Options.Timeout, when set,
// is applied as a deadline on top of ctx.
func CompileContext(ctx context.Context, spec *pir.Spec, profile hw.Profile, opts Options) (*Result, error) {
	start := time.Now()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(opts.Timeout))
		defer cancel()
	}

	// SpecLint pre-pass and loop-bound defaulting, shared with
	// EffectiveSpec so an independent checker reproduces the exact spec
	// the synthesizer targeted. orig is kept for the certificate: the
	// input spec's identity (SpecSHA) must be computed before pruning.
	orig := spec
	spec, lintStats, err := lintFixpoint(spec, profile, opts)
	if err != nil {
		return nil, err
	}

	// Loopy specs on pipelined devices are bounded by unrolling; the
	// verifier must use the same iteration bound so "deeper stack than the
	// device holds" counts as rejection on both sides.
	if spec.HasLoop() && !profile.AllowLoops() && opts.MaxIterations == 0 {
		opts.MaxIterations = 4
	}

	// The hardest proof-bearing query is kept for the certificate; the
	// tee forwards every dump to the caller's sink unchanged, so -dimacs
	// and the certificate always describe the same solver call.
	var hardestProof *proofTee
	if opts.EmitCertificate && opts.LogProofs {
		hardestProof = &proofTee{next: opts.QuerySink}
		opts.QuerySink = hardestProof.consider
	}

	// Opt2: synthesize against the bit-width-minimized spec.
	synthSpec := spec
	if opts.Opt2BitWidthMin {
		synthSpec = scaleSpec(spec)
	}

	unroll := opts.MaxIterations
	origSks, effOrig, err := buildSkeletons(spec, profile, opts, unroll)
	if err != nil {
		return nil, err
	}
	synthSks, effSynth, err := origSks, effOrig, error(nil)
	if synthSpec != spec {
		synthSks, effSynth, err = buildSkeletons(synthSpec, profile, opts, unroll)
		if err != nil || !sameStructure(origSks, synthSks) {
			// Width-dependent structural decisions (lookahead deferral,
			// quotient grouping) diverged between the scaled and original
			// specs; Opt2 cannot be applied to this program. Fall back to
			// synthesizing on the original widths.
			synthSpec, synthSks, effSynth = spec, origSks, effOrig
		}
	}

	stats := Stats{}
	estEntries := 0
	for i := range spec.States {
		estEntries += len(spec.States[i].Rules) + 1
	}
	stages := 1
	if profile.Arch != hw.SingleTable {
		stages = profile.StageLimit
	}
	stats.SearchSpaceBits = spec.SearchSpaceBits(estEntries, stages)

	// Portfolio objective lower bound: any solution from skeleton i uses at
	// least skeletonLowerBound(i) entries, so a solution at the portfolio
	// minimum cannot be beaten on the entry count by any sibling. Reaching
	// it cancels the rest of the race (§6.7 with early termination). Only
	// the entry-minimizing objective has such a bound; stage- and
	// depth-ranked devices always run the portfolio to completion.
	objective := profile.Objective.For(profile.Arch)
	minLB := 0
	if objective.UsesEntryLowerBound() && opts.Opt4ConstantSynthesis {
		for i := range synthSks {
			lb := skeletonLowerBound(effSynth, &synthSks[i])
			if minLB == 0 || lb < minLB {
				minLB = lb
			}
		}
	}
	provablyCheapest := func(r *Result) bool {
		return !opts.ExhaustPortfolio && minLB > 0 && objective.Cost(r.Resources) <= minLB
	}

	// Cross-compile memo keys (tier 2: skeleton-UNSAT facts; tier 3: glue
	// clause pools). Computed once per compile; nil when no memo is
	// attached or the spec resists canonicalization, in which case the
	// portfolio runs exactly as it would without a memo.
	var memoK *memoKeys
	if opts.Memo != nil {
		memoK = computeMemoKeys(effSynth, synthSks, profile, opts)
	}

	raceCtx, cancelRace := context.WithCancel(ctx)
	defer cancelRace()

	var outs []attemptOut
	if opts.Opt7Parallelism && effectiveWorkers(opts) > 1 {
		// §6.7 as a bounded portfolio: skeletons form a work queue drained
		// by Options.Workers goroutines, idle workers run refuter probes
		// against still-running ladders, and glue clauses flow through a
		// per-skeleton exchange (see portfolio.go for why every scheduler
		// action is schedule-invariant). Results come back in skeleton-index
		// order, so the reduction below resolves ties exactly as the
		// sequential loop does.
		outs, stats.Portfolio = runPortfolio(raceCtx, portfolioInput{
			spec: spec, effOrig: effOrig, effSynth: effSynth,
			origSks: origSks, synthSks: synthSks,
			profile: profile, opts: opts,
			workers:          effectiveWorkers(opts),
			provablyCheapest: provablyCheapest,
			memo:             opts.Memo, keys: memoK,
		})
	} else {
		// Sequential portfolio (single-CPU machines, or Opt7 disabled):
		// every structural subproblem still runs — chunk-check order alone
		// can change the entry count (Figure 4's V1 vs V2) — unless one
		// reaches the portfolio lower bound, which no later subproblem can
		// improve on. A tier-2 memo hit recalls a ladder's ErrNoSolution
		// without running it; the verdict is identical because the recorded
		// fact (solver UNSAT at the cap) is exactly what forces that ladder
		// to ErrNoSolution.
		for i := range origSks {
			if memoK != nil && memoK.tier2[i] != "" && opts.Memo.SkeletonUnsat(memoK.tier2[i]) {
				outs = append(outs, attemptOut{err: ErrNoSolution})
				stats.Portfolio.SkeletonsMemoSkipped++
				continue
			}
			eng, low, capN := newSkeletonEngine(spec, effOrig, effSynth, &origSks[i], &synthSks[i], profile, opts)
			r, solver, err := eng.runLadder(raceCtx, low, capN)
			if memoK != nil && memoK.tier2[i] != "" && errors.Is(err, ErrNoSolution) && eng.capUnsat {
				opts.Memo.RecordSkeletonUnsat(memoK.tier2[i])
			}
			o := attemptOut{res: r, solver: solver, err: err}
			outs = append(outs, o)
			if o.err == nil && provablyCheapest(o.res) {
				break
			}
		}
	}

	var best *Result
	var firstErr error
	for _, o := range outs {
		stats.SkeletonsTried++
		stats.Solver.Add(o.solver)
		if o.err != nil {
			if firstErr == nil && !errors.Is(o.err, errCanceled) {
				firstErr = o.err
			}
			continue
		}
		if best == nil || resultCheaper(profile, o.res.Resources, best.Resources) {
			best = o.res
		}
	}
	// Refuter probes are solver work this compile performed; fold them into
	// the totals so wall time and effort stay reconcilable.
	stats.Solver.Add(stats.Portfolio.RefuterEffort)
	if best == nil {
		// Order matters: a deadline explains canceled attempts, but it is
		// checked only here, after every collected result has been
		// considered — a success that lands after the deadline check in a
		// sibling goroutine still wins above, so ErrTimeout never masks it.
		switch {
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			return nil, ErrTimeout
		case ctx.Err() != nil:
			return nil, ctx.Err()
		case firstErr != nil:
			return nil, firstErr
		}
		return nil, ErrNoSolution
	}
	best.Stats.SkeletonsTried = stats.SkeletonsTried
	best.Stats.SearchSpaceBits = stats.SearchSpaceBits
	best.Stats.Solver = stats.Solver
	best.Stats.Portfolio = stats.Portfolio
	best.Stats.Lint = lintStats
	if opts.EmitCertificate {
		unrollUsed := 0
		if effOrig != spec {
			unrollUsed = unroll
			if unrollUsed <= 0 {
				unrollUsed = 4
			}
		}
		var proofDump *QueryDump
		if hardestProof != nil {
			proofDump = hardestProof.take()
		}
		best.Certificate = buildCertificate(orig, effOrig, profile, unrollUsed, best.Program, proofDump)
	}
	best.Stats.Elapsed = time.Since(start)
	return best, nil
}

// lintFixpoint is the SpecLint pre-pass (Figure 8's analysis stage made
// checkable): reject error-severity specs before any solving starts,
// then prune what the analyzer proved dead — unreachable states and
// SAT-certified shadowed rules — to a fixpoint (removing a shadowed
// rule can orphan the state it targeted, which the next round then
// removes). Pruning is sound: the pruned spec is observationally
// equivalent to the original on every input (see lint.Prune), so the
// verifier's contract is unchanged. Shared by CompileContext and
// EffectiveSpec so certificates and checkers agree on the spec the
// synthesizer actually targeted.
func lintFixpoint(spec *pir.Spec, profile hw.Profile, opts Options) (*pir.Spec, LintStats, error) {
	var lintStats LintStats
	if opts.SkipLint {
		return spec, lintStats, nil
	}
	diags := lint.Run(spec, &profile)
	if lint.HasErrors(diags) {
		return nil, lintStats, &LintError{Spec: spec.Name, Diags: diags}
	}
	errs, warns, infos := lint.Counts(diags)
	lintStats = LintStats{Errors: errs, Warnings: warns, Infos: infos}
	pruned, pst := lint.Prune(spec, diags)
	lintStats.StatesBefore, lintStats.RulesBefore = pst.StatesBefore, pst.RulesBefore
	for pruned != spec {
		spec = pruned
		pruned, pst = lint.Prune(spec, lint.Run(spec, &profile))
	}
	lintStats.StatesAfter, lintStats.RulesAfter = pst.StatesAfter, pst.RulesAfter
	return spec, lintStats, nil
}

// EffectiveSpec reproduces the spec-transformation pipeline a compile
// applies before synthesis — the lint/prune fixpoint, the default loop
// bound, and unrolling for loopy specs on loop-free targets — without
// running any synthesis. hawkcheck uses it to recompute, from the input
// spec alone, the effective spec a certificate's witness must relate to
// the program, refusing certificates built against anything else.
func EffectiveSpec(spec *pir.Spec, profile hw.Profile, opts Options) (*pir.Spec, error) {
	pruned, _, err := lintFixpoint(spec, profile, opts)
	if err != nil {
		return nil, err
	}
	if pruned.HasLoop() && !profile.AllowLoops() && opts.MaxIterations == 0 {
		opts.MaxIterations = 4
	}
	_, eff, err := buildSkeletons(pruned, profile, opts, opts.MaxIterations)
	if err != nil {
		return nil, err
	}
	return eff, nil
}

// proofTee keeps the hardest proof-bearing query dump for the
// certificate while forwarding every dump to the caller's own sink.
type proofTee struct {
	mu   sync.Mutex
	next func(QueryDump)
	best *QueryDump
}

func (t *proofTee) consider(q QueryDump) {
	t.mu.Lock()
	if len(q.Proof) > 0 && (t.best == nil || q.Conflicts > t.best.Conflicts) {
		t.best = &q
	}
	t.mu.Unlock()
	if t.next != nil {
		t.next(q)
	}
}

func (t *proofTee) take() *QueryDump {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.best
}

// effectiveWorkers resolves Options.Workers: an explicit value wins, zero
// means one worker per schedulable CPU.
func effectiveWorkers(opts Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// resultCheaper orders resource footprints by the device's scarce
// resource, as declared by the profile objective: entries then states for
// entry-minimizing parsers, stages then entries for stage-ranked ones,
// depth then entries then states for streaming pipelines. Dominance is
// per-objective on purpose — a portfolio result that wins on one device's
// objective may lose on another's, so cross-target comparison happens in
// the harness, never inside one compile.
func resultCheaper(profile hw.Profile, a, b tcam.Resources) bool {
	return profile.Objective.For(profile.Arch).Less(a, b)
}

// compileSkeleton runs CEGIS over one skeleton. spec is the user's
// original specification (used for the emitted program's field table);
// effOrig/effSynth are the effective verification specs — equal to
// spec/scaled-spec for loop-capable targets, their bounded unrollings for
// pipelined ones.
//
// The iterative-deepening entry-budget ladder runs each rung through
// runBudget. With Opt7 and more than one worker, adjacent rungs (budgets k
// and k+1) race in parallel with first-useful-win semantics; otherwise the
// ladder is strictly sequential. The returned SolverStats totals the
// solver effort of every rung attempted, including losers — it is reported
// even when the skeleton fails, so Compile can account for the whole race.
func compileSkeleton(ctx context.Context, spec, effOrig, effSynth *pir.Spec, origSk, synthSk *skeleton, profile hw.Profile, opts Options) (*Result, SolverStats, error) {
	eng, low, capN := newSkeletonEngine(spec, effOrig, effSynth, origSk, synthSk, profile, opts)
	return eng.runLadder(ctx, low, capN)
}

// ladderBounds computes one skeleton's budget ladder endpoints: the cap
// (sum of per-state maxima, clamped by the option and device limits) and
// the starting rung. The ladder always climbs entry counts — entries bound
// the symbolic table the encoder builds — but the device clamp is the
// objective's call (see hw.Objective.LadderCap).
func ladderBounds(effSynth *pir.Spec, synthSk *skeleton, profile hw.Profile, opts Options) (low, capN int) {
	for _, ss := range synthSk.States {
		capN += ss.MaxEntries
	}
	if opts.MaxBudget > 0 && opts.MaxBudget < capN {
		capN = opts.MaxBudget
	}
	capN = profile.Objective.For(profile.Arch).LadderCap(profile, capN)
	// Semantic lower bound: a state realizing spec states with k distinct
	// implementation-level transition targets needs at least k entries
	// (mask merging only combines rules with the same target, §6.4.2).
	// Start the iterative-deepening ladder there. The bound is part of the
	// constant-synthesis domain knowledge, so the naive mode — which the
	// paper measures without any of it — starts from one entry.
	low = 1
	if opts.Opt4ConstantSynthesis {
		low = skeletonLowerBound(effSynth, synthSk)
	}
	if low > capN {
		low = capN
	}
	if low < 1 {
		low = 1
	}
	return low, capN
}

// newSkeletonEngine builds the immutable ladder context for one skeleton
// and returns it with the ladder endpoints. The portfolio scheduler uses
// the endpoints for refuter targeting and lower-bound domination before
// any ladder runs.
func newSkeletonEngine(spec, effOrig, effSynth *pir.Spec, origSk, synthSk *skeleton, profile hw.Profile, opts Options) (*skeletonEngine, int, int) {
	low, capN := ladderBounds(effSynth, synthSk, profile, opts)
	eng := &skeletonEngine{
		spec:       spec,
		effOrig:    effOrig,
		effSynth:   effSynth,
		origSk:     origSk,
		synthSk:    synthSk,
		profile:    profile,
		opts:       opts,
		debug:      os.Getenv("PARSERHAWK_DEBUG") != "",
		synthStart: time.Now(),
	}
	return eng, low, capN
}

// runLadder dispatches one skeleton's budget ladder to the architecture
// the options select.
func (eng *skeletonEngine) runLadder(ctx context.Context, low, capN int) (*Result, SolverStats, error) {
	opts := eng.opts
	if opts.FreshEncode && opts.Opt7Parallelism && effectiveWorkers(opts) > 1 && capN > low {
		return eng.raceLadder(ctx, low, capN)
	}
	env, err := eng.newEnv()
	if err != nil {
		return nil, SolverStats{}, err
	}
	if opts.FreshEncode {
		return eng.sequentialLadder(ctx, env, low, capN)
	}
	return eng.incrementalLadder(ctx, env, low, capN)
}

// skeletonEngine is the immutable context of one skeleton's budget ladder.
type skeletonEngine struct {
	spec, effOrig, effSynth *pir.Spec
	origSk, synthSk         *skeleton
	profile                 hw.Profile
	opts                    Options
	debug                   bool
	synthStart              time.Time

	// capUnsat is set when the ladder exhausted every rung and the cap rung
	// itself climbed via a genuine solver UNSAT: the ensuing ErrNoSolution
	// is then a seed-independent fact about (spec, skeleton, cap) that the
	// tier-2 memo may record. A cap rung rejected by device validation
	// leaves it false — that verdict depends on which model the solver
	// happened to find.
	capUnsat bool

	// exchange, when non-nil, is this skeleton's portfolio clause pool. The
	// authoritative ladder session attaches export-only: it publishes the
	// glue clauses it learns (tagged with its example epoch) but never
	// imports, so its search — and therefore the final model, the entry
	// table, and the stage count — is bit-identical to a run without any
	// portfolio. Only the scheduler's refuter probes import.
	exchange *sat.Exchange
}

// budgetEnv is the mutable CEGIS environment one budget runner works in:
// the verifier pair (whose sampling RNGs advance as candidates are
// checked) and the growing example pool. The sequential ladder threads one
// env through every rung, carrying counterexamples up the ladder as
// classic iterative deepening does. Racing rungs each get an isolated env,
// so a rung's outcome is a deterministic function of (spec, skeleton,
// budget, seed) — never of sibling timing. Sharing the pool across racing
// rungs looks attractive (counterexamples are valid at every budget) but
// makes the entry count scheduling-dependent: a sibling's counterexample
// arriving before rung k's solve can flip that solve from SAT to UNSAT.
type budgetEnv struct {
	ver, origVer *verifier
	examples     *exampleSet
}

// newEnv builds a fresh deterministic environment: verifiers seeded from
// Options.Seed and a pool holding the two §5.2 seed examples.
func (eng *skeletonEngine) newEnv() (*budgetEnv, error) {
	ver, err := newVerifier(eng.effSynth, eng.opts, eng.opts.Seed)
	if err != nil {
		return nil, err
	}
	origVer, err := newVerifier(eng.effOrig, eng.opts, eng.opts.Seed+1)
	if err != nil {
		return nil, err
	}
	env := &budgetEnv{
		ver:      ver,
		origVer:  origVer,
		examples: &exampleSet{spec: eng.effSynth, iterBudget: ver.maxIterBudget()},
	}
	env.examples.add(make(bitstream.Bits, ver.maxLen)) // all-zeros
	env.examples.add(ver.randomInput())                // §5.2: one random seed example
	return env, nil
}

// example is one CEGIS input/expected-output pair.
type example struct {
	in  bitstream.Bits
	out pir.Result
}

// exampleSet is an append-only CEGIS example pool. Each pool belongs to a
// single budget runner (or the whole sequential ladder), so it needs no
// locking.
type exampleSet struct {
	spec       *pir.Spec
	iterBudget int
	ex         []example
}

func (e *exampleSet) add(in bitstream.Bits) {
	out := e.spec.Run(in, e.iterBudget)
	e.ex = append(e.ex, example{in: in, out: out})
}

// pending returns the examples appended at index from and beyond.
func (e *exampleSet) pending(from int) []example {
	return e.ex[from:]
}

func (e *exampleSet) size() int { return len(e.ex) }

// rungResult is the outcome of one budget rung: a Result on success, or
// errBudgetTooSmall (climb), errCanceled (race lost or deadline), or a
// terminal error. stats always carries the rung's own solver effort so the
// scheduler can account for losers too.
type rungResult struct {
	budget int
	res    *Result
	err    error
	stats  Stats
	// unsat marks an errBudgetTooSmall produced by a genuine solver UNSAT
	// (no table at this budget exists), as opposed to one produced by a
	// device-validation failure of a found model — only the former is a
	// seed-independent fact the tier-2 memo may record.
	unsat bool
}

// sequentialLadder is the classic iterative-deepening loop of the
// FreshEncode architecture: one budget at a time, each rung rebuilding its
// solver from scratch, climbing on errBudgetTooSmall, with counterexamples
// (and the verifiers' RNG state) carried up the ladder through the shared
// env.
func (eng *skeletonEngine) sequentialLadder(ctx context.Context, env *budgetEnv, low, capN int) (*Result, SolverStats, error) {
	var collected []*rungResult
	for budget := low; budget <= capN; budget++ {
		sy := newSynthesizer(eng.effSynth, eng.synthSk, eng.profile, eng.opts, budget)
		r := eng.runBudget(ctx, budget, env, sy)
		collected = append(collected, r)
		if r.err == nil {
			return eng.assemble(r, collected)
		}
		if errors.Is(r.err, errBudgetTooSmall) {
			continue
		}
		return nil, sumSolver(collected), r.err
	}
	if n := len(collected); n > 0 && collected[n-1].unsat {
		eng.capUnsat = true
	}
	return nil, sumSolver(collected), ErrNoSolution
}

// incrementalLadder is the default architecture: one persistent solving
// session serves the entire budget ladder. The skeleton's symbolic entry
// table is encoded once at the ladder cap; rung k solves under the
// assumption that at most k entries are enabled, so an UNSAT rung's
// learned clauses, the solver's variable activity, and every encoded
// counterexample carry directly into rung k+1 instead of being rebuilt.
// Rungs are strictly sequential — with nothing to re-encode, a rung
// transition is one assumption swap, which removes the racing ladder's
// reason to exist and makes the outcome deterministic regardless of
// worker count.
func (eng *skeletonEngine) incrementalLadder(ctx context.Context, env *budgetEnv, low, capN int) (*Result, SolverStats, error) {
	sy := newSynthesizer(eng.effSynth, eng.synthSk, eng.profile, eng.opts, capN)
	if eng.exchange != nil {
		sy.sess.AttachExchange(eng.exchange, ladderProducerID, -1)
	}
	var collected []*rungResult
	for budget := low; budget <= capN; budget++ {
		r := eng.runBudget(ctx, budget, env, sy)
		collected = append(collected, r)
		if r.err == nil {
			return eng.assemble(r, collected)
		}
		if errors.Is(r.err, errBudgetTooSmall) {
			continue
		}
		return nil, sumSolver(collected), r.err
	}
	if n := len(collected); n > 0 && collected[n-1].unsat {
		eng.capUnsat = true
	}
	return nil, sumSolver(collected), ErrNoSolution
}

// refuteStatus runs one cap-budget infeasibility probe against this skeleton: a
// fresh deterministic re-encode of the same symbolic entry table at the
// ladder cap, fed only the two deterministic seed examples, solved under
// the weakest cardinality assumption the ladder will ever use. UNSAT here
// is a proof that no rung of the ladder can ever succeed — adding
// counterexamples only strengthens the formula, and every rung's budget
// assumption is at least as tight — so the scheduler may cancel the
// authoritative ladder and report ErrNoSolution, exactly the verdict the
// ladder would have ground out rung by rung. A SAT probe proves nothing
// (the seed examples underconstrain the table) and is discarded.
//
// The probe diversifies its VSIDS seed so portfolio clones explore
// different orders, and (unless the exchange is nil) both publishes its
// glue clauses to the skeleton's pool and imports clauses whose epoch its
// own two-example formula covers — including the authoritative ladder's
// early-rung exports.
func (eng *skeletonEngine) refuteStatus(ctx context.Context, capN int, seed int64, ex *sat.Exchange, producerID int) (sat.Status, SolverStats) {
	env, err := eng.newEnv()
	if err != nil {
		return sat.Unknown, SolverStats{}
	}
	opts := eng.opts
	opts.QuerySink = nil // probes never own the hardest-query dump
	sy := newSynthesizer(eng.effSynth, eng.synthSk, eng.profile, opts, capN)
	for _, e := range env.examples.pending(0) {
		if err := sy.addTestCase(e.in, e.out); err != nil {
			return sat.Unknown, solverSnapshot(sy.s)
		}
		sy.fed++
	}
	sy.sess.SetEpoch(sy.fed)
	sy.s.SAT.Diversify(seed)
	if ex != nil {
		importEpoch := sy.fed
		if opts.LogProofs {
			// Imported pool clauses are implied by the shared formula but
			// need not be RUP-derivable from this probe's own clause
			// sequence, so a strict DRAT check of the kill proof would
			// reject them. Attach export-only: the probe still feeds the
			// pool, and its refutation stays self-contained.
			importEpoch = -1
		}
		sy.sess.AttachExchange(ex, producerID, importEpoch)
	}
	stop := func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	st := sy.solveAt(capN, stop)
	if st == sat.Unsat && opts.LogProofs {
		// A refuter kill cancels the authoritative ladder, so it is held to
		// a higher standard than its own trusted verdict: the probe must
		// produce a strict DRAT refutation of the exact query it solved, or
		// the kill is demoted to Unknown and the ladder keeps running.
		dimacs, err := sy.sess.DumpLastQuery()
		if err != nil || cert.CheckDRAT(dimacs, sy.sess.DumpLastProof(), cert.Strict) != nil {
			return sat.Unknown, solverSnapshot(sy.s)
		}
	}
	return st, solverSnapshot(sy.s)
}

// scoutDelay is how long a speculative budget rung (the scout at k+1)
// waits before starting work. When rung k succeeds faster than this — the
// common case once Opt4's lower bound makes the first rung tight — the
// scout is canceled before it burns any solver time, keeping the racing
// ladder's wall time at parity with the sequential one on easy problems
// while still overlapping slow UNSAT rungs on hard ones.
const scoutDelay = 50 * time.Millisecond

// raceLadder races adjacent entry budgets (k and k+1) with first-useful-win
// semantics: rung k's outcome is authoritative — its success wins
// immediately and cancels the scout at k+1, while its UNSAT promotes the
// scout to authoritative and launches a new scout at k+2. A scout's success
// is held until every smaller rung has resolved UNSAT, preserving the
// minimal-entry guarantee of strict iterative deepening at roughly half the
// wall-clock when rungs are solver-bound. Each rung runs in an isolated
// budgetEnv, so its outcome — and therefore the ladder's final entry count
// — does not depend on sibling timing.
func (eng *skeletonEngine) raceLadder(ctx context.Context, low, capN int) (*Result, SolverStats, error) {
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan *rungResult, capN-low+1)
	next := low
	inFlight := 0
	launch := func() {
		if next > capN {
			return
		}
		b := next
		next++
		inFlight++
		scout := b > low
		go func() {
			if scout {
				select {
				case <-time.After(scoutDelay):
				case <-raceCtx.Done():
					ch <- &rungResult{budget: b, err: errCanceled}
					return
				}
			}
			env, err := eng.newEnv()
			if err != nil {
				ch <- &rungResult{budget: b, err: err}
				return
			}
			sy := newSynthesizer(eng.effSynth, eng.synthSk, eng.profile, eng.opts, b)
			ch <- eng.runBudget(raceCtx, b, env, sy)
		}()
	}
	launch()
	launch()

	outcomes := map[int]*rungResult{}
	var collected []*rungResult
	drain := func() {
		cancel()
		for inFlight > 0 {
			r := <-ch
			inFlight--
			collected = append(collected, r)
			outcomes[r.budget] = r
		}
	}
	// smallestSuccess returns the successful rung with the smallest budget,
	// if any. It is how a deadline or terminal failure at one rung is kept
	// from masking a success already achieved by a sibling.
	smallestSuccess := func() *rungResult {
		var w *rungResult
		for _, r := range outcomes {
			if r.err == nil && (w == nil || r.budget < w.budget) {
				w = r
			}
		}
		return w
	}

	cur := low
	for inFlight > 0 {
		r := <-ch
		inFlight--
		collected = append(collected, r)
		outcomes[r.budget] = r
		for {
			o, ok := outcomes[cur]
			if !ok {
				break
			}
			if o.err == nil {
				drain()
				return eng.assemble(o, collected)
			}
			if errors.Is(o.err, errBudgetTooSmall) {
				cur++
				launch()
				continue
			}
			// Terminal outcome (cancellation or hard failure) at the
			// authoritative rung: a sibling may still have succeeded at a
			// larger budget — prefer any such result over the error.
			drain()
			if w := smallestSuccess(); w != nil {
				return eng.assemble(w, collected)
			}
			return nil, sumSolver(collected), o.err
		}
	}
	return nil, sumSolver(collected), ErrNoSolution
}

// assemble merges the winning rung's result with the effort of every other
// rung attempted on this skeleton: synthesis/verify times and CEGIS
// iteration counts are summed (they measure work done, as the sequential
// ladder always did), and SolverStats totals every rung's solver.
func (eng *skeletonEngine) assemble(w *rungResult, collected []*rungResult) (*Result, SolverStats, error) {
	st := w.res.Stats
	var total SolverStats
	for _, r := range collected {
		total.Add(r.stats.Solver)
		if r != w {
			st.SynthesisTime += r.stats.SynthesisTime
			st.VerifyTime += r.stats.VerifyTime
			st.CEGISIterations += r.stats.CEGISIterations
		}
	}
	st.Solver = total
	st.BudgetsTried = len(collected)
	st.Elapsed = time.Since(eng.synthStart)
	w.res.Stats = st
	return w.res, total, nil
}

func sumSolver(collected []*rungResult) SolverStats {
	var total SolverStats
	for _, r := range collected {
		total.Add(r.stats.Solver)
	}
	return total
}

// solverSnapshot converts the bit-blasting layer's counters into the
// public SolverStats shape.
func solverSnapshot(s *bv.Solver) SolverStats {
	m := s.Metrics()
	return SolverStats{
		Solves:          m.Solves,
		Decisions:       m.Decisions,
		Propagations:    m.Propagations,
		Conflicts:       m.Conflicts,
		LearnedClauses:  m.LearnedClauses,
		LearnedLiterals: m.LearnedLiterals,
		Restarts:        m.Restarts,
		Clauses:         m.Clauses,
		Gates:           m.Gates,
		Vars:            m.Vars,
		RetainedClauses: m.RetainedLearnts,
		ConsHits:        m.ConsHits,
		BinPropagations: m.BinPropagations,
		GlueLearnts:     m.GlueLearnts,
		ExportedClauses: m.ExportedClauses,
		ImportedClauses: m.ImportedClauses,
		ImportHits:      m.ImportHits,
	}
}

// runBudget runs the CEGIS loop at one entry budget in env over the given
// synthesizer: feed the pool's examples, solve, verify, and either return
// a validated Result, errBudgetTooSmall to climb the ladder, or
// errCanceled when ctx fired mid-search. An interrupted solve or
// verification is never mistaken for UNSAT / "no counterexample": both
// carry explicit interrupt signals (sat.ErrCanceled, the verifier's
// interrupted flag).
//
// The synthesizer may be shared across rungs (the incremental ladder
// passes one persistent session), so the rung's SolverStats are computed
// as the delta from the counters it entered with — summing rung stats
// never double-counts session effort.
func (eng *skeletonEngine) runBudget(ctx context.Context, budget int, env *budgetEnv, sy *synthesizer) *rungResult {
	out := &rungResult{budget: budget}
	stop := func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}

	// Report this rung's solver effort as the counter movement past what
	// earlier rungs already claimed (sy.reported) — the first rung thereby
	// absorbs construction-time encoding, and summing rung deltas
	// reconstructs the session's totals exactly.
	claim := func() SolverStats {
		cur := solverSnapshot(sy.s)
		delta := cur.Sub(sy.reported)
		sy.reported = cur
		return delta
	}
	// Query capture (Options.QuerySink): remember the rung's hardest solve,
	// serialized at solve time so the dump is the exact instance the solver
	// saw, and report it once when the rung finishes.
	var dump *QueryDump
	capture := func(status sat.Status) {
		if eng.opts.QuerySink == nil {
			return
		}
		delta := sy.sess.LastCall().Delta
		if dump != nil && delta.Conflicts <= dump.Conflicts {
			return
		}
		data, err := sy.sess.DumpLastQuery()
		if err != nil {
			return
		}
		// An UNSAT solve's DRAT log refutes exactly the CNF dumped above;
		// SAT solves carry no proof (the model is its own witness).
		var proof []byte
		if status == sat.Unsat {
			proof = sy.sess.DumpLastProof()
		}
		dump = &QueryDump{
			Spec:      eng.effSynth.Name,
			Skeleton:  eng.synthSk.Name,
			Budget:    budget,
			Examples:  sy.fed,
			Status:    status.String(),
			Conflicts: delta.Conflicts,
			DIMACS:    data,
			Proof:     proof,
		}
	}
	fin := func(err error) *rungResult {
		out.stats.Solver = claim()
		out.err = err
		if dump != nil {
			eng.opts.QuerySink(*dump)
		}
		return out
	}
	if stop() {
		return fin(errCanceled)
	}
	if eng.debug {
		fmt.Fprintf(os.Stderr, "[%s] budget=%d examples=%d fed=%d elapsed=%.1fs\n",
			eng.synthSk.Name, budget, env.examples.size(), sy.fed, time.Since(eng.synthStart).Seconds())
	}

	for {
		if stop() {
			return fin(errCanceled)
		}
		tb := time.Now()
		for _, ex := range env.examples.pending(sy.fed) {
			if stop() {
				return fin(errCanceled)
			}
			if err := sy.addTestCase(ex.in, ex.out); err != nil {
				return fin(err)
			}
			sy.fed++
		}
		// Tag clauses learned from here on with the example count they were
		// derived under; the portfolio exchange filters imports by it.
		sy.sess.SetEpoch(sy.fed)
		if eng.debug {
			fmt.Fprintf(os.Stderr, "  [b=%d] build=%.2fs vars=%d\n", budget, time.Since(tb).Seconds(), sy.s.NumVars())
		}
		t0 := time.Now()
		status := sy.solveAt(budget, stop)
		solveTime := time.Since(t0)
		out.stats.SynthesisTime += solveTime
		capture(status)
		iter := IterationStats{
			Budget:    budget,
			Examples:  sy.fed,
			Status:    status.String(),
			SolveTime: solveTime,
			Solver:    solverSnapshot(sy.s),
		}
		if eng.debug {
			fmt.Fprintf(os.Stderr, "  [b=%d] solve=%.2fs status=%v\n", budget, solveTime.Seconds(), status)
		}
		if status == sat.Unsat {
			out.stats.Iterations = append(out.stats.Iterations, iter)
			out.unsat = true
			return fin(errBudgetTooSmall) // budget too small; climb the ladder
		}
		if status == sat.Unknown {
			// The only Unknown source here is the cancellation poll: an
			// interrupted solve reports interruption, never UNSAT.
			iter.Status = "canceled"
			out.stats.Iterations = append(out.stats.Iterations, iter)
			return fin(errCanceled)
		}
		out.stats.CEGISIterations++

		// Verification phase on the synthesis-side spec.
		cand := sy.extract(eng.effSynth, eng.synthSk)
		t1 := time.Now()
		cex, found, _, interrupted := env.ver.counterexampleStop(cand, stop)
		iter.VerifyTime = time.Since(t1)
		out.stats.VerifyTime += iter.VerifyTime
		out.stats.Iterations = append(out.stats.Iterations, iter)
		if interrupted {
			return fin(errCanceled)
		}
		if found {
			env.examples.add(cex)
			continue
		}

		// Success on the synthesis spec: rebuild against the original
		// spec (undo Opt2 scaling) and re-verify.
		final := sy.extract(eng.spec, eng.origSk)
		cex2, found2, _, interrupted2 := env.origVer.counterexampleStop(final, stop)
		if interrupted2 {
			return fin(errCanceled)
		}
		if found2 {
			if eng.effSynth == eng.effOrig {
				// Same spec, different sampling seed: a genuine
				// counterexample the first verifier missed. Feed it
				// back into the CEGIS example set and continue.
				env.examples.add(cex2)
				continue
			}
			// Scaling misled synthesis (should not happen for supported
			// specs); fall back by disabling Opt2 for this skeleton.
			o2 := eng.opts
			o2.Opt2BitWidthMin = false
			res, subSolver, suberr := compileSkeleton(ctx, eng.spec, eng.effOrig, eng.effOrig, eng.origSk, eng.origSk, eng.profile, o2)
			own := claim()
			if dump != nil {
				eng.opts.QuerySink(*dump)
				dump = nil
			}
			if suberr != nil {
				own.Add(subSolver)
				out.stats.Solver = own
				out.err = suberr
				return out
			}
			// Adopt the fallback's stats wholesale and fold this rung's own
			// solver effort in, so the scheduler counts it exactly once.
			res.Stats.Solver.Add(own)
			out.res = res
			out.stats = res.Stats
			return out
		}
		unoptimized := final
		final, err := postOptimize(final, eng.profile)
		if err != nil {
			// Post-optimization found a hard resource violation (e.g.
			// too many stages); a larger budget will not help.
			return fin(err)
		}
		// Folding can change iteration counts; at the unrolling bound K
		// that can shift an outcome across the budget boundary. Keep the
		// optimized program only if it still satisfies the K-bounded
		// contract.
		_, foldBroke, _, foldInterrupted := env.origVer.counterexampleStop(final, stop)
		if foldInterrupted {
			return fin(errCanceled)
		}
		if foldBroke {
			final = unoptimized
			if eng.profile.Arch != hw.SingleTable {
				var serr error
				if final, serr = layoutPipeline(final, eng.profile); serr != nil {
					return fin(errBudgetTooSmall)
				}
			}
		}
		if err := eng.profile.Validate(final); err != nil {
			return fin(errBudgetTooSmall) // exceeds device limits at this shape; try next budget
		}
		out.stats.EntryBudget = budget
		out.stats.SolverVars = sy.s.NumVars()
		out.stats.TestCases = env.examples.size()
		out.stats.Solver = claim()
		out.stats.Elapsed = time.Since(eng.synthStart)
		out.res = &Result{Program: final, Resources: final.Resources(), Stats: out.stats}
		if dump != nil {
			eng.opts.QuerySink(*dump)
		}
		return out
	}
}

// skeletonLowerBound computes the minimum total entry count any correct
// implementation of the skeleton can use: per skeleton state, the number
// of distinct implementation-level targets (skeleton-state classes plus
// accept/reject) its spec rules and defaults reach. Key-split copies
// beyond the canonical one contribute nothing (they may stay empty).
func skeletonLowerBound(spec *pir.Spec, sk *skeleton) int {
	// Map each spec state to the skeleton state class realizing it.
	class := map[int]int{}
	seenClass := map[string]bool{}
	for si, ss := range sk.States {
		if seenClass[ss.Name] {
			continue
		}
		seenClass[ss.Name] = true
		for _, sp := range ss.SpecStates {
			if _, ok := class[sp]; !ok {
				class[sp] = si
			}
		}
	}
	total := 0
	counted := map[string]bool{} // one contribution per spec-state group
	for _, ss := range sk.States {
		sig := fmt.Sprint(ss.SpecStates)
		if counted[sig] {
			continue // later key-split copies of the same spec states
		}
		counted[sig] = true
		// A key-split chain needs at least one entry per continuation level
		// on top of its per-target entries.
		levels := 0
		for _, other := range sk.States {
			if fmt.Sprint(other.SpecStates) == sig && other.ChainLevel > levels {
				levels = other.ChainLevel
			}
		}
		total += levels
		targets := map[int]bool{}
		const (
			tAccept = -1
			tReject = -2
		)
		add := func(t pir.Target) {
			switch t.Kind {
			case pir.Accept:
				targets[tAccept] = true
			case pir.Reject:
				targets[tReject] = true
			default:
				if c, ok := class[t.State]; ok {
					targets[c] = true
				} else {
					targets[tReject] = true // unreachable spec target
				}
			}
		}
		for _, sp := range ss.SpecStates {
			for _, r := range spec.States[sp].Rules {
				add(r.Next)
			}
			add(spec.States[sp].Default)
		}
		n := len(targets)
		if n < 1 {
			n = 1
		}
		total += n
	}
	return total
}

// scaleSpec implements Opt2 (§6.2): every field irrelevant to control flow
// is shrunk to 1 bit, shrinking the synthesis input space exponentially.
// The structural search result transfers back to the original spec because
// transition keys never touch irrelevant fields.
func scaleSpec(spec *pir.Spec) *pir.Spec {
	irr := map[string]bool{}
	for _, f := range spec.IrrelevantFields() {
		irr[f] = true
	}
	if len(irr) == 0 {
		return spec
	}
	fields := make([]pir.Field, len(spec.Fields))
	for i, f := range spec.Fields {
		fields[i] = f
		if irr[f.Name] {
			fields[i].Width = 1
		}
	}
	states := make([]pir.State, len(spec.States))
	for i := range spec.States {
		st := spec.States[i]
		states[i] = pir.State{
			Name:     st.Name,
			Extracts: append([]pir.Extract(nil), st.Extracts...),
			Key:      append([]pir.KeyPart(nil), st.Key...),
			Rules:    append([]pir.Rule(nil), st.Rules...),
			Default:  st.Default,
		}
	}
	scaled, err := pir.New(spec.Name+"-scaled", fields, states)
	if err != nil {
		// Scaling can only fail if the original was malformed; fall back.
		return spec
	}
	return scaled
}

// sameStructure reports whether two skeleton portfolios made identical
// structural decisions (same subproblems, same states), so a model found
// on one transfers to the other.
func sameStructure(a, b []skeleton) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].States) != len(b[i].States) {
			return false
		}
		for j := range a[i].States {
			sa, sb := &a[i].States[j], &b[i].States[j]
			if sa.Name != sb.Name || sa.KeyWidth != sb.KeyWidth ||
				len(sa.Key) != len(sb.Key) || len(sa.Extracts) != len(sb.Extracts) {
				return false
			}
		}
	}
	return true
}

// Unroll rewrites a loopy specification into the bounded loop-free form
// used when compiling for pipelined devices: loop states are replicated
// depth times and a deeper stack is rejected. It is exported so callers
// can state the bounded-equivalence contract explicitly (the compiled
// pipeline is equivalent to Unroll(spec, depth), not to the unbounded
// loop).
func Unroll(spec *pir.Spec, depth int) (*pir.Spec, error) {
	return unrollSpec(spec, depth)
}
