package core

import (
	"strings"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

func chainSpec(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("chain",
		[]pir.Field{{Name: "a.x", Width: 4}, {Name: "b.y", Width: 4}, {Name: "c.z", Width: 4}},
		[]pir.State{
			{Name: "A", Extracts: []pir.Extract{{Field: "a.x"}}, Default: pir.To(1)},
			{Name: "B", Extracts: []pir.Extract{{Field: "b.y"}}, Default: pir.To(2)},
			{Name: "C", Extracts: []pir.Extract{{Field: "c.z"}}, Default: pir.AcceptTarget},
		})
}

// chainProgram is the literal three-state realization of chainSpec.
func chainProgram(spec *pir.Spec) *tcam.Program {
	return &tcam.Program{Spec: spec, States: []tcam.State{
		{Table: 0, ID: 0, Entries: []tcam.Entry{{
			Extracts: []pir.Extract{{Field: "a.x"}}, Next: tcam.To(0, 1)}}},
		{Table: 0, ID: 1, Entries: []tcam.Entry{{
			Extracts: []pir.Extract{{Field: "b.y"}}, Next: tcam.To(0, 2)}}},
		{Table: 0, ID: 2, Entries: []tcam.Entry{{
			Extracts: []pir.Extract{{Field: "c.z"}}, Next: tcam.AcceptTarget}}},
	}}
}

func TestFoldSingletonStatesCollapsesChain(t *testing.T) {
	spec := chainSpec(t)
	prog := chainProgram(spec)
	out := foldSingletonStates(prog, hw.Tofino())
	r := out.Resources()
	if r.Entries != 1 || r.States != 1 {
		t.Fatalf("chain must collapse to one entry: %+v\n%s", r, out)
	}
	// Semantics preserved.
	for v := 0; v < 1<<12; v++ {
		in := bitstream.FromUint(uint64(v), 12)
		if !out.Run(in, 0).Same(spec.Run(in, 0)) {
			t.Fatalf("folding changed semantics on %012b", v)
		}
	}
}

func TestFoldRespectsExtractLimit(t *testing.T) {
	spec := chainSpec(t)
	prog := chainProgram(spec)
	p := hw.Tofino()
	p.ExtractLimit = 8 // two fields fit, three do not
	out := foldSingletonStates(prog, p)
	r := out.Resources()
	if r.Entries != 2 {
		t.Fatalf("want partial fold into 2 entries, got %+v\n%s", r, out)
	}
	for v := 0; v < 1<<12; v++ {
		in := bitstream.FromUint(uint64(v), 12)
		if !out.Run(in, 0).Same(spec.Run(in, 0)) {
			t.Fatalf("partial folding changed semantics on %012b", v)
		}
	}
}

func TestFoldSkipsSelfLoops(t *testing.T) {
	spec := pir.MustNew("loop", []pir.Field{{Name: "h.f", Width: 4}},
		[]pir.State{{Name: "L", Extracts: []pir.Extract{{Field: "h.f"}}, Default: pir.To(0)}})
	prog := &tcam.Program{Spec: spec, States: []tcam.State{{
		Entries: []tcam.Entry{{Extracts: []pir.Extract{{Field: "h.f"}}, Next: tcam.To(0, 0)}},
	}}}
	out := foldSingletonStates(prog, hw.Tofino())
	if out.Resources().States != 1 {
		t.Error("self-looping state must survive folding")
	}
}

func TestDropUnreachable(t *testing.T) {
	spec := chainSpec(t)
	prog := chainProgram(spec)
	prog.States = append(prog.States, tcam.State{Table: 0, ID: 9,
		Entries: []tcam.Entry{{Next: tcam.AcceptTarget}}})
	out := dropUnreachable(prog)
	if out.Lookup(0, 9) != nil {
		t.Error("unreachable state must be dropped")
	}
	if out.Resources().States != 3 {
		t.Errorf("states=%d", out.Resources().States)
	}
}

func TestSplitWideExtractions(t *testing.T) {
	spec := pir.MustNew("wide",
		[]pir.Field{{Name: "h.a", Width: 8}, {Name: "h.b", Width: 8}, {Name: "h.c", Width: 8}},
		[]pir.State{{Name: "S", Extracts: []pir.Extract{
			{Field: "h.a"}, {Field: "h.b"}, {Field: "h.c"}}, Default: pir.AcceptTarget}})
	prog := &tcam.Program{Spec: spec, States: []tcam.State{{
		Entries: []tcam.Entry{{
			Extracts: []pir.Extract{{Field: "h.a"}, {Field: "h.b"}, {Field: "h.c"}},
			Next:     tcam.AcceptTarget,
		}},
	}}}
	p := hw.Tofino()
	p.ExtractLimit = 16
	out := splitWideExtractions(prog, p)
	if err := p.Validate(out); err != nil {
		t.Fatalf("split program still violates: %v\n%s", err, out)
	}
	if out.Resources().Entries < 2 {
		t.Errorf("expected continuation entries:\n%s", out)
	}
	for v := 0; v < 1<<8; v++ {
		in := bitstream.FromUint(uint64(v)<<16|uint64(v)<<8|uint64(v), 24)
		if !out.Run(in, 0).Same(spec.Run(in, 0)) {
			t.Fatalf("split changed semantics")
		}
	}
}

func TestAssignStagesLayersDAG(t *testing.T) {
	spec := chainSpec(t)
	prog := chainProgram(spec)
	out, err := assignStages(prog, hw.IPU())
	if err != nil {
		t.Fatal(err)
	}
	// Three chained states need three stages, strictly forward.
	if out.Resources().Stages != 3 {
		t.Errorf("stages=%d\n%s", out.Resources().Stages, out)
	}
	if err := hw.IPU().Validate(out); err != nil {
		t.Fatal(err)
	}
	// Start must stay at (0, 0).
	if out.Lookup(0, 0) == nil {
		t.Fatal("start relocated")
	}
}

func TestAssignStagesRejectsLoops(t *testing.T) {
	spec := chainSpec(t)
	prog := chainProgram(spec)
	prog.States[2].Entries[0].Next = tcam.To(0, 0) // close a cycle
	if _, err := assignStages(prog, hw.IPU()); err == nil ||
		!strings.Contains(err.Error(), "loop") {
		t.Errorf("want loop error, got %v", err)
	}
}

func TestAssignStagesRespectsStageLimit(t *testing.T) {
	spec := chainSpec(t)
	prog := chainProgram(spec)
	p := hw.IPU()
	p.StageLimit = 2
	if _, err := assignStages(prog, p); err == nil ||
		!strings.Contains(err.Error(), "stages") {
		t.Errorf("want stage-limit error, got %v", err)
	}
}

func TestMergePassThroughShiftsLookahead(t *testing.T) {
	// A (pure extraction, single wildcard) -> B (lookahead key): the merge
	// must shift B's window past A's extraction.
	spec := pir.MustNew("m",
		[]pir.Field{{Name: "a.x", Width: 4}, {Name: "b.y", Width: 4}},
		[]pir.State{
			{Name: "A", Extracts: []pir.Extract{{Field: "a.x"}}, Default: pir.To(1)},
			{
				Name:     "B",
				Extracts: []pir.Extract{{Field: "b.y"}},
				Key:      []pir.KeyPart{pir.FieldSlice("b.y", 0, 2)},
				Rules:    []pir.Rule{pir.ExactRule(0b11, 2, pir.RejectTarget)},
				Default:  pir.AcceptTarget,
			},
		})
	prog := &tcam.Program{Spec: spec, States: []tcam.State{
		{Table: 0, ID: 0, Entries: []tcam.Entry{{
			Extracts: []pir.Extract{{Field: "a.x"}}, Next: tcam.To(0, 1)}}},
		{Table: 0, ID: 1,
			Key: []pir.KeyPart{pir.LookaheadBits(0, 2)},
			Entries: []tcam.Entry{
				{Value: 0b11, Mask: 0b11, Extracts: []pir.Extract{{Field: "b.y"}}, Next: tcam.RejectTarget},
				{Value: 0, Mask: 0, Extracts: []pir.Extract{{Field: "b.y"}}, Next: tcam.AcceptTarget},
			}},
	}}
	out := mergePassThroughStates(prog)
	if out.Resources().States != 1 {
		t.Fatalf("expected merge:\n%s", out)
	}
	for v := 0; v < 1<<8; v++ {
		in := bitstream.FromUint(uint64(v), 8)
		if !out.Run(in, 0).Same(spec.Run(in, 0)) {
			t.Fatalf("merge changed semantics on %08b:\n%s", v, out)
		}
	}
}
