package core

import (
	"errors"
	"strings"
	"testing"

	"parserhawk/internal/hw"
	"parserhawk/internal/lint"
	"parserhawk/internal/pir"
)

// Compile rejects error-severity specs with a diagnostics-bearing error
// before any solving starts.
func TestCompileRejectsLintErrors(t *testing.T) {
	// PH005 error: the varbit length field is never extracted.
	spec := pir.MustNew("badvar", []pir.Field{
		{Name: "len", Width: 2},
		{Name: "opts", Width: 8, Var: true},
	}, []pir.State{
		{Name: "start",
			Extracts: []pir.Extract{{Field: "opts", LenField: "len", LenScale: 2}},
			Default:  pir.AcceptTarget},
	})
	_, err := Compile(spec, hw.Tofino(), DefaultOptions())
	var lerr *LintError
	if !errors.As(err, &lerr) {
		t.Fatalf("want *LintError, got %v", err)
	}
	if lerr.Spec != "badvar" || !lint.HasErrors(lerr.Diags) {
		t.Errorf("LintError payload wrong: %+v", lerr)
	}
	if !strings.Contains(lerr.Error(), "PH005") {
		t.Errorf("message should cite the failing code: %s", lerr.Error())
	}
}

// A prunable spec compiles with the lint summary and the pre/post-prune
// sizes recorded in Stats; the same spec under SkipLint records nothing.
func TestCompileRecordsLintStats(t *testing.T) {
	spec := pir.MustNew("dup", []pir.Field{{Name: "k", Width: 2}}, []pir.State{
		{Name: "start", Extracts: []pir.Extract{{Field: "k"}},
			Key: []pir.KeyPart{pir.WholeField("k", 2)},
			Rules: []pir.Rule{
				pir.ExactRule(1, 2, pir.AcceptTarget),
				pir.ExactRule(1, 2, pir.RejectTarget), // shadowed
			},
			Default: pir.RejectTarget},
	})
	res, err := Compile(spec, hw.Tofino(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Stats.Lint
	if got.Warnings == 0 || got.RulesBefore != 2 || got.RulesAfter != 1 || got.StatesBefore != 1 {
		t.Errorf("lint stats wrong: %+v", got)
	}

	opts := DefaultOptions()
	opts.SkipLint = true
	res2, err := Compile(spec, hw.Tofino(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Lint != (LintStats{}) {
		t.Errorf("SkipLint must record no lint stats: %+v", res2.Stats.Lint)
	}
	if res.Resources.Entries > res2.Resources.Entries {
		t.Errorf("pruning cost entries: %d vs %d", res.Resources.Entries, res2.Resources.Entries)
	}
}
