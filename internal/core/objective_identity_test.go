package core

import (
	"fmt"
	"math/rand"
	"testing"

	"parserhawk/internal/hw"
	"parserhawk/internal/tcam"
)

// legacyCheaper is the dominance rule the synthesizer hard-coded before
// the objective abstraction, transcribed verbatim: non-single-table
// targets ranked by stages then entries, single-table targets by entries
// then states. It is the oracle the per-objective rule must reproduce on
// every pre-streaming profile.
func legacyCheaper(profile hw.Profile, a, b tcam.Resources) bool {
	if profile.Arch != hw.SingleTable {
		if a.Stages != b.Stages {
			return a.Stages < b.Stages
		}
		return a.Entries < b.Entries
	}
	if a.Entries != b.Entries {
		return a.Entries < b.Entries
	}
	return a.States < b.States
}

// legacyLadderCap is the pre-objective clamp on the iterative-deepening
// search cap: single-table devices stopped at TCAMLimit, everything else
// searched the full skeleton sum.
func legacyLadderCap(profile hw.Profile, capN int) int {
	if profile.Arch == hw.SingleTable && capN > profile.TCAMLimit {
		return profile.TCAMLimit
	}
	return capN
}

// TestObjectiveDominanceMatchesLegacy: on every profile that predates the
// streaming arch, the objective-generic dominance comparison must agree
// with the legacy rule on all resource pairs — the refactor moved the
// rule into hw.Objective, it must not have changed it.
func TestObjectiveDominanceMatchesLegacy(t *testing.T) {
	interleaved := hw.Tofino()
	interleaved.Arch = hw.Interleaved
	profiles := []hw.Profile{hw.Tofino(), hw.IPU(), hw.Parameterized(4, 16, 64), interleaved}
	rng := rand.New(rand.NewSource(20260704))
	draw := func() tcam.Resources {
		return tcam.Resources{Entries: rng.Intn(6), Stages: rng.Intn(4), States: rng.Intn(5)}
	}
	for _, p := range profiles {
		for i := 0; i < 5000; i++ {
			a, b := draw(), draw()
			if got, want := resultCheaper(p, a, b), legacyCheaper(p, a, b); got != want {
				t.Fatalf("%s: resultCheaper(%+v, %+v) = %v, legacy says %v", p.Name, a, b, got, want)
			}
		}
	}
}

// TestObjectiveLadderCapMatchesLegacy pins the budget-ladder cap to the
// legacy clamp on the same pre-streaming profiles, across the whole range
// of plausible skeleton sums.
func TestObjectiveLadderCapMatchesLegacy(t *testing.T) {
	interleaved := hw.Tofino()
	interleaved.Arch = hw.Interleaved
	for _, p := range []hw.Profile{hw.Tofino(), hw.IPU(), hw.Parameterized(4, 16, 64), interleaved} {
		obj := p.Objective.For(p.Arch)
		for capN := 0; capN <= 4*p.TCAMLimit; capN++ {
			if got, want := obj.LadderCap(p, capN), legacyLadderCap(p, capN); got != want {
				t.Fatalf("%s: LadderCap(%d) = %d, legacy says %d", p.Name, capN, got, want)
			}
		}
	}
}

// TestObjectiveAutoMatchesExplicitLegacyObjective is the compile-level
// identity sweep: every example spec and a seeded batch of random specs
// are compiled twice per legacy profile — once with the profile's
// implicit (Auto) objective and once with the legacy objective spelled
// out explicitly — at workers 1 and 4. Verdict, entry table, entries,
// stages, and final budget must be identical in all four cells, so the
// objective resolution is provably a no-op on the existing targets.
func TestObjectiveAutoMatchesExplicitLegacyObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("objective identity sweep")
	}
	explicit := func(p hw.Profile, o hw.Objective) hw.Profile {
		p.Objective = o
		return p
	}
	arms := []struct{ auto, legacy hw.Profile }{
		{hw.Tofino(), explicit(hw.Tofino(), hw.MinimizeEntries)},
		{hw.IPU(), explicit(hw.IPU(), hw.MinimizeStages)},
	}
	specs := exampleSpecs(t)
	rng := rand.New(rand.NewSource(20260704))
	for i := 0; i < 6; i++ {
		specs = append(specs, randomSpec(rng, 9000+i))
	}
	for _, arm := range arms {
		for _, spec := range specs {
			for _, w := range []int{1, 4} {
				base := compileAtWorkers(t, spec, arm.auto, w, false)
				got := compileAtWorkers(t, spec, arm.legacy, w, false)
				checkIdentical(t, fmt.Sprintf("%s on %s workers=%d auto-vs-explicit",
					spec.Name, arm.auto.Name, w), base, got)
			}
		}
	}
}
