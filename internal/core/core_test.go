package core

import (
	"testing"
	"time"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// checkEquivalent exhaustively (up to maxBits) or randomly compares the
// compiled program against the spec.
func checkEquivalent(t *testing.T, spec *pir.Spec, res *Result, maxBits int) {
	t.Helper()
	v, err := newVerifier(spec, DefaultOptions(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if cex, found, _ := v.counterexample(res.Program); found {
		got := res.Program.Run(cex, 0)
		want := spec.Run(cex, 0)
		t.Fatalf("not equivalent on %s:\nimpl acc=%v rej=%v dict=%v\nspec acc=%v rej=%v dict=%v\nprogram:\n%s",
			cex, got.Accepted, got.Rejected, got.Dict, want.Accepted, want.Rejected, want.Dict, res.Program)
	}
	_ = maxBits
}

func fig7Spec2(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("spec2",
		[]pir.Field{{Name: "field0", Width: 4}, {Name: "field1", Width: 4}},
		[]pir.State{
			{
				Name:     "State0",
				Extracts: []pir.Extract{{Field: "field0"}},
				Key:      []pir.KeyPart{pir.FieldSlice("field0", 0, 1)},
				Rules:    []pir.Rule{pir.ExactRule(0, 1, pir.To(1))},
				Default:  pir.AcceptTarget,
			},
			{Name: "State1", Extracts: []pir.Extract{{Field: "field1"}}, Default: pir.AcceptTarget},
		})
}

func TestCompileSpec2Tofino(t *testing.T) {
	spec := fig7Spec2(t)
	res, err := Compile(spec, hw.Tofino(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, spec, res, 8)
	// Table 1 realizes this with 3 entries.
	if res.Resources.Entries > 3 {
		t.Errorf("entries=%d want <=3\n%s", res.Resources.Entries, res.Program)
	}
}

func TestCompileSpec2Naive(t *testing.T) {
	spec := fig7Spec2(t)
	opts := NaiveOptions()
	opts.Timeout = 30 * time.Second
	res, err := Compile(spec, hw.Tofino(), opts)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, spec, res, 8)
}

func fig3Spec(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("fig3",
		[]pir.Field{
			{Name: "k", Width: 4},
			{Name: "a", Width: 2}, {Name: "b", Width: 2}, {Name: "c", Width: 2},
		},
		[]pir.State{
			{
				Name:     "Start",
				Extracts: []pir.Extract{{Field: "k"}},
				Key:      []pir.KeyPart{pir.WholeField("k", 4)},
				Rules: []pir.Rule{
					pir.ExactRule(15, 4, pir.To(1)), pir.ExactRule(11, 4, pir.To(1)),
					pir.ExactRule(7, 4, pir.To(1)), pir.ExactRule(3, 4, pir.To(1)),
					pir.ExactRule(14, 4, pir.To(2)), pir.ExactRule(2, 4, pir.To(3)),
				},
				Default: pir.AcceptTarget,
			},
			{Name: "N1", Extracts: []pir.Extract{{Field: "a"}}, Default: pir.AcceptTarget},
			{Name: "N2", Extracts: []pir.Extract{{Field: "b"}}, Default: pir.AcceptTarget},
			{Name: "N3", Extracts: []pir.Extract{{Field: "c"}}, Default: pir.AcceptTarget},
		})
}

func TestCompileFig3DeviceB(t *testing.T) {
	// Device B: 4-bit transition keys. The {15,11,7,3} rules merge under
	// mask 0b0011 (Figure 4, V2 step 1), so 4 entries cover Start plus one
	// each for N1..N3: 7 total. Without merging it would take 9.
	spec := fig3Spec(t)
	res, err := Compile(spec, hw.Tofino(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, spec, res, 12)
	if res.Resources.Entries > 7 {
		t.Errorf("entries=%d want <=7 (mask merging)\n%s", res.Resources.Entries, res.Program)
	}
}

func mplsSpec(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("mpls",
		[]pir.Field{{Name: "label", Width: 4}},
		[]pir.State{{
			Name:     "L",
			Extracts: []pir.Extract{{Field: "label"}},
			Key:      []pir.KeyPart{pir.FieldSlice("label", 3, 4)},
			Rules:    []pir.Rule{pir.ExactRule(0, 1, pir.To(0))},
			Default:  pir.AcceptTarget,
		}})
}

func TestCompileMPLSLoopTofino(t *testing.T) {
	spec := mplsSpec(t)
	opts := DefaultOptions()
	opts.MaxIterations = 6
	res, err := Compile(spec, hw.Tofino(), opts)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, spec, res, 0)
	// A loop-capable device needs only the looping state's entries.
	if res.Resources.Entries > 2 {
		t.Errorf("entries=%d want <=2\n%s", res.Resources.Entries, res.Program)
	}
}

func TestCompileMPLSUnrolledIPU(t *testing.T) {
	spec := mplsSpec(t)
	opts := DefaultOptions()
	opts.MaxIterations = 3
	res, err := Compile(spec, hw.IPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resources.Stages < 2 {
		t.Errorf("stages=%d; unrolled loop must span multiple stages\n%s",
			res.Resources.Stages, res.Program)
	}
	// Equivalence of the unrolled pipeline holds for stacks within the
	// unroll depth; check bounded inputs directly.
	for v := 0; v < 1<<8; v++ {
		in := bitstream.FromUint(uint64(v), 8)
		got := res.Program.Run(in, 0)
		want := spec.Run(in, 3)
		if want.Rejected {
			continue // beyond unroll depth: device drops either way
		}
		if !got.Same(want) {
			t.Fatalf("input %08b: impl %v/%v vs spec %v/%v", v,
				got.Accepted, got.Dict, want.Accepted, want.Dict)
		}
	}
}

func TestCompileSpec2IPU(t *testing.T) {
	spec := fig7Spec2(t)
	res, err := Compile(spec, hw.IPU(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, spec, res, 8)
	if err := hw.IPU().Validate(res.Program); err != nil {
		t.Fatal(err)
	}
}

func TestKeySplitNarrowDevice(t *testing.T) {
	// Device A of Figure 4: 2-bit key limit forces splitting the 4-bit key.
	spec := fig3Spec(t)
	profile := hw.Parameterized(2, 8, 64)
	res, err := Compile(spec, profile, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, spec, res, 12)
	if res.Resources.MaxKeyWidth > 2 {
		t.Errorf("key width %d exceeds device limit", res.Resources.MaxKeyWidth)
	}
}

func TestScaleSpecShrinksIrrelevantFields(t *testing.T) {
	spec := fig3Spec(t)
	scaled := scaleSpec(spec)
	f, _ := scaled.Field("a")
	if f.Width != 1 {
		t.Errorf("irrelevant field width=%d want 1", f.Width)
	}
	k, _ := scaled.Field("k")
	if k.Width != 4 {
		t.Errorf("relevant field must keep width, got %d", k.Width)
	}
}

func TestSkeletonRealizationSameStateKey(t *testing.T) {
	spec := fig7Spec2(t)
	sks, _, err := buildSkeletons(spec, hw.Tofino(), DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	base := sks[len(sks)-1] // base comes after quotient when one exists
	st0 := base.States[0]
	if len(st0.Key) != 1 || !st0.Key[0].Lookahead || st0.Key[0].RelOff != 0 {
		t.Errorf("same-state key must realize as lookahead at the field's offset: %+v", st0.Key)
	}
}

func TestBackoffsCrossState(t *testing.T) {
	// State B keys on a field extracted by state A: back-offset must be
	// A's trailing distance.
	spec := pir.MustNew("cross",
		[]pir.Field{{Name: "x", Width: 4}, {Name: "y", Width: 4}},
		[]pir.State{
			{Name: "A", Extracts: []pir.Extract{{Field: "x"}}, Default: pir.To(1)},
			{
				Name:     "B",
				Extracts: []pir.Extract{{Field: "y"}},
				Key:      []pir.KeyPart{pir.WholeField("x", 4)},
				Rules:    []pir.Rule{pir.ExactRule(5, 4, pir.AcceptTarget)},
				Default:  pir.RejectTarget,
			},
		})
	back, err := backoffs(spec)
	if err != nil {
		t.Fatal(err)
	}
	if back[1]["x"] != 4 {
		t.Errorf("backoff of x at B = %d want 4", back[1]["x"])
	}
	res, err := Compile(spec, hw.Tofino(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, spec, res, 8)
}

func TestCompileRespectsEntryLimit(t *testing.T) {
	spec := fig3Spec(t)
	profile := hw.Tofino()
	profile.TCAMLimit = 3 // too few for this program
	_, err := Compile(spec, profile, DefaultOptions())
	if err == nil {
		t.Fatal("expected failure under a 3-entry budget")
	}
}

func TestCompileTimeout(t *testing.T) {
	spec := fig3Spec(t)
	opts := NaiveOptions()
	opts.Timeout = 1 * time.Millisecond
	_, err := Compile(spec, hw.Tofino(), opts)
	if err == nil {
		t.Skip("finished within 1ms; machine too fast to observe timeout")
	}
}
