package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/hw"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
)

// compileAB compiles one spec in both architectures — the default
// incremental session and FreshEncode's per-rung rebuild — and checks they
// are observationally equivalent: the same success/failure verdict, the
// same winning entry budget, and programs that agree on every probed
// input. This is the A/B soundness property of the session refactor:
// solving rung k under a ladder assumption must be indistinguishable from
// re-encoding rung k with a hard cardinality bound.
//
// The final programs' *enabled entry counts* are deliberately not compared:
// the budget is an upper bound, and when a budget admits several correct
// programs the two solvers may extract different models (e.g. one entry vs
// two behaviorally equivalent ones). Equisatisfiability guarantees the
// rungs' SAT/UNSAT outcomes — hence the winning budget — not the model.
//
// Determinism caveat: identical winning budgets are only guaranteed when
// verification is exhaustive — under sampled verification a lucky wrong
// candidate can end a rung early in one mode but not the other. Callers
// with randomly generated specs should gate on exhaustiveness (see
// exhaustivelyVerifiable).
func compileAB(t *testing.T, spec *pir.Spec, profile hw.Profile, seed int64) {
	t.Helper()
	mk := func(freshEncode bool) (*Result, error) {
		opts := DefaultOptions()
		opts.Timeout = 30 * time.Second
		opts.FreshEncode = freshEncode
		// Sequential ladders on both sides: rung racing can legitimately
		// settle on a larger-than-minimal budget, which is a property of
		// racing, not of the encoding under test.
		opts.Opt7Parallelism = false
		return Compile(spec, profile, opts)
	}
	incr, ierr := mk(false)
	fresh, ferr := mk(true)
	// A timeout is resource exhaustion, not a verdict: equisatisfiability
	// promises the same answers given enough time, not the same runtimes —
	// the runtime gap is the point of the session refactor. The loopy MPLS
	// example genuinely exceeds the budget in sequential fresh mode while
	// the incremental session finishes in under a second.
	if errors.Is(ierr, ErrTimeout) || errors.Is(ferr, ErrTimeout) {
		t.Logf("%s on %s: inconclusive, timeout (incremental err=%v, fresh err=%v)",
			spec.Name, profile.Name, ierr, ferr)
		return
	}
	if (ierr == nil) != (ferr == nil) {
		t.Fatalf("%s on %s: verdicts diverge: incremental err=%v, fresh err=%v",
			spec.Name, profile.Name, ierr, ferr)
	}
	if ierr != nil {
		return // both failed; equal-error is equivalence for our purposes
	}
	if incr.Stats.EntryBudget != fresh.Stats.EntryBudget {
		t.Errorf("%s on %s: winning budgets diverge: incremental=%d fresh=%d",
			spec.Name, profile.Name, incr.Stats.EntryBudget, fresh.Stats.EntryBudget)
	}

	// Behavioral equivalence of the two programs, probed over random
	// inputs at the verifier's input length and iteration budget. Both
	// compilations already verified against the (unrolled) spec
	// internally; this asserts they verified to the same parser.
	v, err := newVerifier(spec, DefaultOptions(), seed)
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 500; i++ {
		in := bitstream.Random(rng, 1+rng.Intn(v.maxLen))
		ri := incr.Program.Run(in, v.maxIterBudget())
		rf := fresh.Program.Run(in, v.maxIterBudget())
		if !ri.Same(rf) {
			t.Fatalf("%s on %s: programs disagree on input %s:\nincremental: %+v\nfresh: %+v",
				spec.Name, profile.Name, in, ri, rf)
		}
	}
}

// exhaustivelyVerifiable reports whether the CEGIS verifier sweeps the
// spec's whole input space, which makes each budget rung's outcome — and
// therefore the A/B winning-budget identity — deterministic.
func exhaustivelyVerifiable(t *testing.T, spec *pir.Spec) bool {
	t.Helper()
	v, err := newVerifier(spec, DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return v.maxLen <= DefaultOptions().ExhaustiveVerifyBits
}

// TestSessionABOverExampleCorpus runs the A/B equivalence check over every
// .p4 specification shipped in examples/. The corpus is fixed and both
// modes are deterministic, so any divergence here is a real encoding bug,
// not flakiness.
func TestSessionABOverExampleCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B compile sweep")
	}
	var specs []string
	root := filepath.Join("..", "..", "examples")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == ".p4" {
			specs = append(specs, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no .p4 specs found under examples/")
	}
	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := p4.ParseSpec(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		compileAB(t, spec, hw.Tofino(), 11)
		compileAB(t, spec, hw.IPU(), 11)
	}
}

// TestSessionABOverRandomSpecs runs the A/B equivalence check over seeded
// random specifications, restricted to input spaces the verifier covers
// exhaustively (so rung outcomes are deterministic and the winning budgets
// must match bit for bit). A narrow-key device is included so key
// splitting and multi-rung ladders are exercised.
func TestSessionABOverRandomSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B compile sweep")
	}
	rng := rand.New(rand.NewSource(20260806))
	profiles := []hw.Profile{hw.Tofino(), hw.Parameterized(2, 12, 64)}
	done, id := 0, 0
	for done < 12 {
		id++
		spec := randomSpec(rng, 5000+id)
		if !exhaustivelyVerifiable(t, spec) {
			continue
		}
		done++
		for _, p := range profiles {
			compileAB(t, spec, p, int64(200+id))
		}
	}
}
