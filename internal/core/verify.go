package core

import (
	"math/rand"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// verifier implements the CEGIS verification phase (§5.2) and the §7.1
// correctness check: does the candidate implementation agree with the
// specification on every input?
//
// When the input space is small enough the check is exhaustive (complete).
// Otherwise it combines directed path coverage — inputs that steer the
// specification through every transition rule — with uniform random
// sampling, mirroring the paper's simulator-based validation (Figure 22).
type verifier struct {
	spec   *pir.Spec
	opts   Options
	rng    *rand.Rand
	maxLen int
	budget int // interpreter iteration bound for equivalence runs
	// window realizations for directed input generation
	layouts []layout
	keys    [][]skelKeyPart
}

func newVerifier(spec *pir.Spec, opts Options, seed int64) (*verifier, error) {
	v := &verifier{
		spec: spec,
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
	}
	// Input length: the longest path of a loop-free spec, or a few loop
	// turns of a loopy one. The interpreter budget is then set strictly
	// above anything an input of that length can drive, so equivalence is
	// never evaluated at an artificial iteration boundary (post-synthesis
	// folding changes iteration counts but not outcomes).
	pathIter := len(spec.States) + 2
	if spec.HasLoop() {
		pathIter = 3 * len(spec.States)
		if pathIter < 8 {
			pathIter = 8
		}
		// A user-supplied iteration bound caps how deep loop verification
		// goes (and how long its inputs are). The interpreter budget below
		// stays far above any path an input can drive, so the bound never
		// creates an artificial iteration-boundary disagreement.
		if opts.MaxIterations > 0 && opts.MaxIterations < pathIter {
			pathIter = opts.MaxIterations
		}
	}
	v.maxLen = spec.MaxConsumedBits(pathIter) + spec.LookaheadUse()
	if v.maxLen == 0 {
		v.maxLen = 1
	}
	v.budget = v.maxLen + len(spec.States) + 4
	back, err := backoffs(spec)
	if err != nil {
		return nil, err
	}
	reach := spec.Reachable()
	v.layouts = make([]layout, len(spec.States))
	v.keys = make([][]skelKeyPart, len(spec.States))
	for i := range spec.States {
		if !reach[i] {
			continue // unreachable states never appear on directed paths
		}
		v.layouts[i], err = stateLayout(spec, &spec.States[i])
		if err != nil {
			return nil, err
		}
		v.keys[i], err = realizeKey(spec, i, v.layouts[i], back[i])
		if err != nil {
			return nil, err
		}
	}
	return v, nil
}

// maxIterBudget is the interpreter iteration bound used for both Spec and
// Impl runs during verification: strictly above any path an input of
// maxLen bits can drive.
func (v *verifier) maxIterBudget() int { return v.budget }

// counterexample searches for an input on which prog and the spec
// disagree. The boolean reports whether one was found; exhaustive reports
// whether the search covered the whole (padded) input space.
func (v *verifier) counterexample(prog *tcam.Program) (cex bitstream.Bits, found, exhaustive bool) {
	cex, found, exhaustive, _ = v.counterexampleStop(prog, nil)
	return cex, found, exhaustive
}

// counterexampleStop is counterexample with a cancellation hook: stop (when
// non-nil) is polled periodically and aborts the search. An aborted search
// reports interrupted=true and MUST NOT be read as "no counterexample
// exists" — the candidate was simply not fully checked. Callers that race
// budget runners rely on this distinction to avoid accepting an unverified
// program when their sibling wins.
func (v *verifier) counterexampleStop(prog *tcam.Program, stop func() bool) (cex bitstream.Bits, found, exhaustive, interrupted bool) {
	k := v.maxIterBudget()
	check := func(in bitstream.Bits) bool {
		return !prog.Run(in, k).Same(v.spec.Run(in, k))
	}
	stopped := func(i int) bool {
		return stop != nil && i&63 == 0 && stop()
	}
	if v.maxLen <= v.opts.ExhaustiveVerifyBits {
		n := uint64(1) << uint(v.maxLen)
		for x := uint64(0); x < n; x++ {
			if stopped(int(x)) {
				return nil, false, false, true
			}
			in := bitstream.FromUint(x, v.maxLen)
			if check(in) {
				return in, true, true, false
			}
		}
		return nil, false, true, false
	}
	// Deterministic per-rule coverage first: one input per (path rule,
	// state rule) combination. These catch wide-key mistakes that random
	// sampling would hit with probability 2^-keyWidth.
	for i, in := range v.directedSuite() {
		if stopped(i) {
			return nil, false, false, true
		}
		if check(in) {
			return in, true, false, false
		}
	}
	// Then stochastic directed walks and uniform random sampling.
	for i := 0; i < v.opts.VerifySamples/2; i++ {
		if stopped(i) {
			return nil, false, false, true
		}
		in := v.directedInput()
		if check(in) {
			return in, true, false, false
		}
	}
	for i := 0; i < v.opts.VerifySamples/2; i++ {
		if stopped(i) {
			return nil, false, false, true
		}
		in := bitstream.Random(v.rng, v.maxLen)
		if check(in) {
			return in, true, false, false
		}
	}
	return nil, false, false, false
}

// directedSuite deterministically constructs inputs that drive the
// specification through every transition rule of every state: for each
// target (state, rule) pair it walks from the start state, writing the
// key pattern steering toward that state at each hop and finally the
// target rule's own pattern. Because a written pattern can overlap bits
// that influenced earlier hops, the walk re-simulates up to three times
// until it stabilizes.
func (v *verifier) directedSuite() []bitstream.Bits {
	// Steering table: for each state, a rule index (or -1 for default)
	// leading one hop closer to each other state, computed by BFS.
	type hop struct {
		from, rule int // rule == -1 means default
	}
	parent := make([]hop, len(v.spec.States))
	for i := range parent {
		parent[i] = hop{from: -1}
	}
	queue := []int{0}
	seen := map[int]bool{0: true}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		st := &v.spec.States[s]
		visitTarget := func(t pir.Target, rule int) {
			if t.Kind != pir.ToState || seen[t.State] {
				return
			}
			seen[t.State] = true
			parent[t.State] = hop{from: s, rule: rule}
			queue = append(queue, t.State)
		}
		for ri, r := range st.Rules {
			visitTarget(r.Next, ri)
		}
		visitTarget(st.Default, -1)
	}
	// Path of (state, rule-to-take) from start to each state.
	pathTo := func(s int) ([]int, []int, bool) {
		var states, rules []int
		for cur := s; cur != 0; {
			h := parent[cur]
			if h.from < 0 {
				return nil, nil, false
			}
			states = append([]int{h.from}, states...)
			rules = append([]int{h.rule}, rules...)
			cur = h.from
		}
		return states, rules, true
	}

	var suite []bitstream.Bits
	for s := range v.spec.States {
		states, rules, ok := pathTo(s)
		if !ok && s != 0 {
			continue
		}
		// One input per rule of s, plus one for the default.
		for target := -1; target < len(v.spec.States[s].Rules); target++ {
			in := make(bitstream.Bits, v.maxLen)
			var window []int     // absolute positions of s's key window
			var pathWindow []int // key windows of the interior hops
			var dontcare []int   // target rule's masked-out window positions
			for pass := 0; pass < 3; pass++ {
				pos := 0
				dict := bitstream.Dict{}
				collect := func(si int, dst []int) []int {
					for _, p := range v.keys[si] {
						for j := 0; j < p.BitWidth(); j++ {
							if ip := pos + p.RelOff + j; ip >= 0 && ip < len(in) {
								dst = append(dst, ip)
							}
						}
					}
					return dst
				}
				step := func(si, rule int) {
					if rule >= 0 && rule < len(v.spec.States[si].Rules) {
						v.writePatternAll(in, pos, si, v.spec.States[si].Rules[rule])
					}
					for _, e := range v.spec.States[si].Extracts {
						w := extractWidthFor(v.spec, e, dict)
						dict[e.Field] = in.Slice(pos, w)
						pos += w
					}
				}
				pathWindow = pathWindow[:0]
				for i, si := range states {
					pathWindow = collect(si, pathWindow)
					step(si, rules[i])
				}
				window = collect(s, window[:0])
				if target >= 0 {
					dontcare = v.dontcarePositions(in, pos, s, v.spec.States[s].Rules[target])
				} else {
					dontcare = nil
				}
				step(s, target)
			}
			suite = append(suite, in)
			// Near-miss neighbours: flip each bit of s's key window. A TCAM
			// entry with a wrong mask bit is indistinguishable from a right
			// one on exact rule patterns; it always differs on a one-bit
			// neighbour.
			for _, ip := range window {
				flipped := in.Clone()
				flipped[ip] ^= 1
				suite = append(suite, flipped)
			}
			// One-deviation path coverage: also flip each bit of every
			// interior hop's key window while the rest of the path stays on
			// its rule patterns. A wrong mask bit on an interior hop is
			// silent when the wrongly entered state falls through to the
			// same outcome — it only shows when a later state's key happens
			// to match, and that is exactly the combination these inputs
			// provide (deviating hop, exact downstream patterns).
			for _, ip := range pathWindow {
				flipped := in.Clone()
				flipped[ip] ^= 1
				suite = append(suite, flipped)
			}
			// Don't-care-plane coverage: the base pattern leaves a rule's
			// masked-out bits at whatever the walk produced (usually 0),
			// so an implementation that is only wrong on the other setting
			// of a don't-care bit — e.g. a split-key realization that
			// drops the mask conjunct of one fragment — survives every
			// input above. Flip each don't-care bit to visit its
			// unexplored plane, and pair each such flip with every
			// one-bit window near-miss: that two-bit neighbourhood is
			// exactly where a dropped mask conjunct first becomes
			// observable.
			for _, dp := range dontcare {
				dflip := in.Clone()
				dflip[dp] ^= 1
				suite = append(suite, dflip)
				for _, ip := range window {
					if ip == dp {
						continue
					}
					both := dflip.Clone()
					both[ip] ^= 1
					suite = append(suite, both)
				}
			}
		}
	}
	return suite
}

// dontcarePositions returns the in-range absolute input positions of the
// key-window bits that rule r's mask ignores, with state si's cursor at
// pos — the bits writePatternAll leaves untouched.
func (v *verifier) dontcarePositions(in bitstream.Bits, pos, si int, r pir.Rule) []int {
	total := 0
	for _, p := range v.keys[si] {
		total += p.BitWidth()
	}
	var out []int
	bit := 0
	for _, p := range v.keys[si] {
		w := p.BitWidth()
		for j := 0; j < w; j++ {
			shift := uint(total - bit - 1)
			if r.Mask>>shift&1 == 0 {
				if ip := pos + p.RelOff + j; ip >= 0 && ip < len(in) {
					out = append(out, ip)
				}
			}
			bit++
		}
	}
	return out
}

// writePatternAll writes a rule pattern into a state's key windows,
// including back-reference windows (the caller re-simulates afterwards, so
// rewriting history is acceptable for input construction).
func (v *verifier) writePatternAll(in bitstream.Bits, pos, si int, r pir.Rule) {
	total := 0
	for _, p := range v.keys[si] {
		total += p.BitWidth()
	}
	bit := 0
	for _, p := range v.keys[si] {
		w := p.BitWidth()
		for j := 0; j < w; j++ {
			shift := uint(total - bit - 1)
			if r.Mask>>shift&1 == 1 {
				if ip := pos + p.RelOff + j; ip >= 0 && ip < len(in) {
					in[ip] = byte(r.Value >> shift & 1)
				}
			}
			bit++
		}
	}
}

// directedInput builds a random input, then repeatedly simulates the spec
// and overwrites the key windows along the visited trajectory with
// randomly chosen rule patterns, so execution explores deep transitions
// instead of falling into defaults. Each pass re-simulates because a
// write may redirect the path.
func (v *verifier) directedInput() bitstream.Bits {
	in := bitstream.Random(v.rng, v.maxLen)
	for pass := 0; pass < 3; pass++ {
		res := v.spec.Run(in, v.maxIterBudget())
		pos := 0
		dict := bitstream.Dict{}
		for _, si := range res.Path {
			st := &v.spec.States[si]
			if len(st.Rules) > 0 && v.rng.Intn(4) != 0 {
				v.writePattern(in, pos, si, st.Rules[v.rng.Intn(len(st.Rules))])
			}
			for _, e := range st.Extracts {
				w := extractWidthFor(v.spec, e, dict)
				dict[e.Field] = in.Slice(pos, w)
				pos += w
			}
		}
	}
	return in
}

// writePattern writes rule.Value (where rule.Mask is set) into the
// cursor-relative key windows of state si with the cursor at pos.
// Back-reference windows (negative offsets) are skipped: their bits were
// laid down by earlier extraction and rewriting them would change history.
func (v *verifier) writePattern(in bitstream.Bits, pos, si int, r pir.Rule) {
	total := 0
	for _, p := range v.keys[si] {
		total += p.BitWidth()
	}
	bit := 0
	for _, p := range v.keys[si] {
		w := p.BitWidth()
		for j := 0; j < w; j++ {
			shift := uint(total - bit - 1)
			if p.RelOff >= 0 && r.Mask>>shift&1 == 1 {
				if ip := pos + p.RelOff + j; ip >= 0 && ip < len(in) {
					in[ip] = byte(r.Value >> shift & 1)
				}
			}
			bit++
		}
	}
}

func extractWidthFor(spec *pir.Spec, e pir.Extract, dict bitstream.Dict) int {
	f, _ := spec.Field(e.Field)
	if e.LenField == "" {
		return f.Width
	}
	lf, _ := spec.Field(e.LenField)
	n := int(dict[e.LenField].Uint(0, lf.Width))*e.LenScale + e.LenBias
	if n < 0 {
		n = 0
	}
	if n > f.Width {
		n = f.Width
	}
	return n
}

// randomInput returns a uniformly random input of the verifier's maximum
// length; the CEGIS loop seeds its test-case set with one (§5.2).
func (v *verifier) randomInput() bitstream.Bits {
	return bitstream.Random(v.rng, v.maxLen)
}
