package core

import (
	"fmt"
	"sort"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// A skeleton is one structural subproblem handed to the solver (§6.7.2):
// the set of implementation states with concrete extraction work and
// concrete transition-key composition. The solver fills in the symbolic
// per-entry (value, mask, next) variables. ParserHawk proposes several
// skeletons per compilation — base, loop-merged, key-split variants — and
// solves them as a portfolio.
type skeleton struct {
	Name   string
	States []skelState
	// Loopy permits transitions to any state (single-TCAM-table targets);
	// otherwise transitions must move strictly forward in state order
	// (pipelined targets, Figure 11 New2).
	Loopy bool
}

// skelKeyPart is a key component with its cursor-relative window resolved
// for the encoder. RelOff is the bit offset of the window from the current
// cursor: non-negative offsets are lookahead; negative offsets reference
// bits of fields extracted in earlier states (matched from their header
// containers at run time).
type skelKeyPart struct {
	pir.KeyPart
	RelOff int
}

// skelState is one implementation state of a skeleton.
type skelState struct {
	Name       string
	SpecStates []int // spec states this impl state realizes
	Extracts   []pir.Extract
	Key        []skelKeyPart
	KeyWidth   int
	MaxEntries int
	// Candidates is the Opt4 value domain for this state's entries: the
	// specification constants (projected to this state's key width) that
	// entry VALUES are drawn from; masks remain symbolic (§6.4.1, §6.4.2).
	// Empty means free symbolic values (the naive encoding).
	Candidates []pir.MaskedConst
	// StaticWidth is the extraction width when no varbit is present;
	// varbit states compute width per input position.
	StaticWidth int
	HasVarbit   bool
	// Key-split chain wiring: states with ChainLevel > 0 are continuation
	// chunks that may only be entered from ChainLevel-1 of the same
	// ChainGroup. Level 0 (and plain states) are freely targetable.
	ChainGroup string
	ChainLevel int
	// OptionalExtract marks states whose entries individually choose
	// whether to perform the state's extraction (key-split chunks: the
	// extraction must happen exactly once along each chain traversal, and
	// synthesis decides where).
	OptionalExtract bool
}

// layout describes where a spec state's extracted fields sit relative to
// the cursor at state entry.
type layout struct {
	offsets  map[string]int // field -> bit offset from state-entry cursor
	width    int            // total static width (varbit counted at 0)
	varbitAt int            // offset where the varbit begins, -1 if none
	varbit   string
}

func stateLayout(spec *pir.Spec, st *pir.State) (layout, error) {
	l := layout{offsets: map[string]int{}, varbitAt: -1}
	for _, e := range st.Extracts {
		f, _ := spec.Field(e.Field)
		if f.Var {
			if l.varbitAt >= 0 {
				return l, fmt.Errorf("core: state %q extracts two varbit fields", st.Name)
			}
			l.varbitAt = l.width
			l.varbit = e.Field
			l.offsets[e.Field] = l.width
			continue
		}
		if l.varbitAt >= 0 {
			return l, fmt.Errorf("core: state %q extracts %q after a varbit field; varbit members must come last",
				st.Name, e.Field)
		}
		l.offsets[e.Field] = l.width
		l.width += f.Width
	}
	return l, nil
}

// backoffs computes, for every spec state, the distance (in bits) from the
// start of each earlier-extracted field to the cursor at the state's
// entry. A field with inconsistent distances across paths, or separated
// from the use site by a varbit extraction, maps to -1 (unusable for the
// static encoding).
func backoffs(spec *pir.Spec) ([]map[string]int, error) {
	type env map[string]int // field -> distance back from cursor; -1 = dynamic
	envs := make([]env, len(spec.States))
	layouts := make([]layout, len(spec.States))
	for i := range spec.States {
		var err error
		layouts[i], err = stateLayout(spec, &spec.States[i])
		if err != nil {
			return nil, err
		}
	}

	merge := func(dst env, src env) (env, bool) {
		if dst == nil {
			out := env{}
			for k, v := range src {
				out[k] = v
			}
			return out, true
		}
		changed := false
		for k, v := range src {
			if old, ok := dst[k]; !ok {
				dst[k] = v
				changed = true
			} else if old != v && old != -1 {
				dst[k] = -1
				changed = true
			}
		}
		return dst, changed
	}

	// Fixpoint propagation (loops converge because conflicting offsets
	// collapse to -1).
	envs[0] = env{}
	work := []int{0}
	for len(work) > 0 {
		si := work[0]
		work = work[1:]
		st := &spec.States[si]
		lay := layouts[si]
		// Environment after this state's extraction.
		after := env{}
		for k, v := range envs[si] {
			if v == -1 || lay.varbitAt >= 0 {
				// Crossing a varbit makes every earlier distance dynamic.
				after[k] = -1
			} else {
				after[k] = v + lay.width
			}
		}
		for f, off := range lay.offsets {
			if f == lay.varbit {
				after[f] = -1
				continue
			}
			if lay.varbitAt >= 0 {
				after[f] = -1 // distance from field start to post-varbit cursor is dynamic
			} else {
				after[f] = lay.width - off
			}
		}
		push := func(t pir.Target) {
			if t.Kind != pir.ToState {
				return
			}
			m, changed := merge(envs[t.State], after)
			envs[t.State] = m
			if changed {
				work = append(work, t.State)
			}
		}
		for _, r := range st.Rules {
			push(r.Next)
		}
		push(st.Default)
	}
	out := make([]map[string]int, len(envs))
	for i, e := range envs {
		out[i] = e
	}
	return out, nil
}

// realizeKey converts one spec state's transition key into cursor-relative
// implementation key parts: same-state fields become lookahead windows at
// their pre-extraction offsets, spec lookahead shifts past the state's
// extraction width, and earlier-state fields become container matches with
// a statically known back-offset.
func realizeKey(spec *pir.Spec, si int, lay layout, back map[string]int) ([]skelKeyPart, error) {
	st := &spec.States[si]
	var out []skelKeyPart
	for _, p := range st.Key {
		switch {
		case p.Lookahead:
			if lay.varbitAt >= 0 {
				return nil, fmt.Errorf("core: state %q uses lookahead past a varbit extraction", st.Name)
			}
			out = append(out, skelKeyPart{
				KeyPart: pir.LookaheadBits(lay.width+p.Skip, p.Width),
				RelOff:  lay.width + p.Skip,
			})
		default:
			if off, ok := lay.offsets[p.Field]; ok {
				if p.Field == lay.varbit {
					return nil, fmt.Errorf("core: state %q keys on its own varbit field %q", st.Name, p.Field)
				}
				// Extracted in this state: bits sit ahead of the cursor.
				out = append(out, skelKeyPart{
					KeyPart: pir.LookaheadBits(off+p.Lo, p.Hi-p.Lo),
					RelOff:  off + p.Lo,
				})
				continue
			}
			d, ok := back[p.Field]
			if !ok {
				return nil, fmt.Errorf("core: state %q keys on field %q that is not extracted on every path",
					st.Name, p.Field)
			}
			if d < 0 {
				return nil, fmt.Errorf("core: state %q keys on field %q whose position is not static (varbit or conflicting paths in between)",
					st.Name, p.Field)
			}
			out = append(out, skelKeyPart{
				KeyPart: p, // container match at run time
				RelOff:  -d + p.Lo,
			})
		}
	}
	return out, nil
}

// buildSkeletons produces the portfolio of structural subproblems for a
// spec and profile, ordered roughly by expected resource usage (smallest
// first). It implements the structural side of Opt3 (field-to-state
// preallocation), Opt4 (candidate constant domains), Opt7.1 (loop-aware vs
// loop-free and loop merging), and §6.4.3 key splitting.
func buildSkeletons(spec *pir.Spec, profile hw.Profile, opts Options, unroll int) ([]skeleton, *pir.Spec, error) {
	reach := spec.Reachable()
	back, err := backoffs(spec)
	if err != nil {
		return nil, nil, err
	}

	loopy := spec.HasLoop()
	if loopy && !profile.AllowLoops() {
		if unroll <= 0 {
			unroll = 4
		}
		var uerr error
		spec, uerr = unrollSpec(spec, unroll)
		if uerr != nil {
			return nil, nil, uerr
		}
		reach = spec.Reachable()
		back, err = backoffs(spec)
		if err != nil {
			return nil, nil, err
		}
		loopy = false
	}

	base, err := baseSkeleton(spec, profile, opts, reach, back, profile.AllowLoops())
	if err != nil {
		return nil, nil, err
	}

	var out []skeleton
	if profile.AllowLoops() {
		// Loop-merged quotient first (fewest states), then loop-free when the
		// spec has no loops (§6.7.1 runs both in parallel).
		if q, ok := quotientSkeleton(spec, profile, opts, base); ok {
			out = append(out, q)
		}
	}
	out = append(out, base)

	// Key-split variants in both chunk orders when any state's key exceeds
	// the hardware width (Figure 4 Step 2; different check orders cost
	// different entry counts).
	needsSplit := false
	for _, st := range base.States {
		if st.KeyWidth > profile.KeyLimit {
			needsSplit = true
		}
	}
	if needsSplit {
		var split []skeleton
		for _, reversed := range []bool{false, true} {
			sk, err := splitSkeleton(spec, profile, opts, base, reversed)
			if err != nil {
				return nil, nil, err
			}
			split = append(split, sk)
		}
		// Split skeletons replace the (un-implementable) wide ones.
		filtered := split
		for _, sk := range out {
			wide := false
			for _, st := range sk.States {
				if st.KeyWidth > profile.KeyLimit {
					wide = true
				}
			}
			if !wide {
				filtered = append(filtered, sk)
			}
		}
		out = filtered
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("core: no implementable skeleton for %q on %s", spec.Name, profile.Name)
	}
	return out, spec, nil
}

// baseSkeleton maps each reachable spec state to one implementation
// state — or to an extraction/selection state pair when the device's
// lookahead window is too small to check the state's key before
// extraction. The deferred pair realizes the classic Gibb-style flow:
// extract the fields into their containers, then match them in the next
// state.
func baseSkeleton(spec *pir.Spec, profile hw.Profile, opts Options, reach []bool, back []map[string]int, loopy bool) (skeleton, error) {
	sk := skeleton{Name: "base", Loopy: loopy && spec.HasLoop()}
	order := topoOrder(spec, reach)
	for _, si := range order {
		st := &spec.States[si]
		lay, err := stateLayout(spec, st)
		if err != nil {
			return skeleton{}, err
		}
		key, err := realizeKey(spec, si, lay, back[si])
		if err != nil {
			return skeleton{}, err
		}
		reachBits := 0
		for _, p := range key {
			if p.Lookahead && p.RelOff >= 0 && p.RelOff+p.BitWidth() > reachBits {
				reachBits = p.RelOff + p.BitWidth()
			}
		}
		if reachBits > profile.LookaheadLimit {
			ext, sel, err := deferredPair(spec, si, st, lay, key, opts)
			if err != nil {
				return skeleton{}, err
			}
			sk.States = append(sk.States, ext, sel)
			continue
		}
		kw := 0
		for _, p := range key {
			kw += p.BitWidth()
		}
		if !opts.Opt5KeyGrouping && !opts.Opt4ConstantSynthesis && kw > 0 && lay.varbitAt < 0 {
			// (Padding applies only with free symbolic constants: Opt4's
			// candidate values are aligned to the spec's grouped key.)
			// Without Opt5 (§6.5) the key is not restricted to the spec's
			// grouped field slices: every bit of the state's extraction
			// window is an individual key-construction candidate, so the
			// solver faces a wider key whose extra bits it must learn to
			// mask out. This is the per-bit allocation search the grouping
			// optimization removes.
			covered := make([]bool, lay.width)
			for _, p := range key {
				if p.RelOff >= 0 {
					for j := 0; j < p.BitWidth(); j++ {
						if at := p.RelOff + j; at < lay.width {
							covered[at] = true
						}
					}
				}
			}
			for at := 0; at < lay.width && kw < profile.KeyLimit && kw < 63; at++ {
				if covered[at] {
					continue
				}
				key = append(key, skelKeyPart{
					KeyPart: pir.LookaheadBits(at, 1),
					RelOff:  at,
				})
				kw++
			}
		}
		ss := skelState{
			Name:        st.Name,
			SpecStates:  []int{si},
			Extracts:    append([]pir.Extract(nil), st.Extracts...),
			Key:         key,
			KeyWidth:    kw,
			MaxEntries:  len(st.Rules) + 2,
			StaticWidth: lay.width,
			HasVarbit:   lay.varbitAt >= 0,
		}
		if opts.Opt4ConstantSynthesis {
			ss.Candidates = stateCandidates(spec, []int{si}, kw)
		}
		sk.States = append(sk.States, ss)
	}
	return sk, nil
}

// deferredPair splits one spec state into an extraction-only state and a
// selection-only state whose key matches the freshly filled containers,
// for devices whose lookahead window cannot cover the key before
// extraction. Post-synthesis folding absorbs the extraction state into its
// predecessors' entries, so the deferral usually costs nothing extra.
func deferredPair(spec *pir.Spec, si int, st *pir.State, lay layout, key []skelKeyPart, opts Options) (skelState, skelState, error) {
	if lay.varbitAt >= 0 {
		return skelState{}, skelState{}, fmt.Errorf(
			"core: state %q needs deferred matching but extracts a varbit field", st.Name)
	}
	var selKey []skelKeyPart
	kw := 0
	for i, p := range key {
		np := p
		if p.Lookahead && p.RelOff >= 0 && p.RelOff < lay.width {
			// A window over this state's own extraction: match the
			// container instead, at its (now negative) back-offset.
			orig := st.Key[i]
			np = skelKeyPart{KeyPart: orig, RelOff: p.RelOff - lay.width}
		} else if p.Lookahead {
			// True lookahead beyond the extraction: shift past it.
			np = skelKeyPart{
				KeyPart: pir.LookaheadBits(p.Skip-lay.width, p.Width),
				RelOff:  p.RelOff - lay.width,
			}
		}
		selKey = append(selKey, np)
		kw += np.BitWidth()
	}
	ext := skelState{
		Name:        st.Name + "/ext",
		SpecStates:  []int{si},
		Extracts:    append([]pir.Extract(nil), st.Extracts...),
		MaxEntries:  2,
		StaticWidth: lay.width,
	}
	sel := skelState{
		Name:       st.Name + "/sel",
		SpecStates: []int{si},
		Key:        selKey,
		KeyWidth:   kw,
		MaxEntries: len(st.Rules) + 2,
	}
	if opts.Opt4ConstantSynthesis {
		sel.Candidates = stateCandidates(spec, []int{si}, kw)
	}
	return ext, sel, nil
}

// stateCandidates collects the Opt4 value domain for an implementation
// state realizing the given spec states: each spec rule's value. If a
// merging (V, M) covers constants A_1..A_n, then (A_i, M) is an equally
// valid entry (§6.4.1), so entry values never need to leave this set.
func stateCandidates(spec *pir.Spec, specStates []int, kw int) []pir.MaskedConst {
	seen := map[uint64]bool{}
	var out []pir.MaskedConst
	add := func(v uint64) {
		v &= widthMask(kw)
		if !seen[v] {
			seen[v] = true
			out = append(out, pir.MaskedConst{Value: v, Mask: widthMask(kw), Width: kw})
		}
	}
	for _, si := range specStates {
		for _, r := range spec.States[si].Rules {
			add(r.Value & r.Mask)
		}
	}
	if len(out) == 0 {
		add(0)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Value < out[b].Value })
	return out
}

// quotientSkeleton merges structurally identical spec states into a single
// looping implementation state (the MPLS single-entry loop of §3.1 and the
// loop-aware half of §6.7.1). Returns ok=false when no two states merge.
func quotientSkeleton(spec *pir.Spec, profile hw.Profile, opts Options, base skeleton) (skeleton, bool) {
	// Group base states by (extract signature, key signature).
	sig := func(ss skelState) string {
		s := ""
		for _, e := range ss.Extracts {
			s += e.Field + "/" + e.LenField + ";"
		}
		s += "|"
		for _, k := range ss.Key {
			s += fmt.Sprintf("%v@%d;", k.KeyPart, k.RelOff)
		}
		return s
	}
	groups := map[string][]int{}
	var orderKeys []string
	for i, ss := range base.States {
		k := sig(ss)
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], i)
	}
	merged := false
	for _, k := range orderKeys {
		if len(groups[k]) > 1 && sig(base.States[groups[k][0]]) != "|" {
			merged = true
		}
	}
	if !merged {
		return skeleton{}, false
	}
	sk := skeleton{Name: "loop-merged", Loopy: true}
	for _, k := range orderKeys {
		idxs := groups[k]
		first := base.States[idxs[0]]
		var specStates []int
		rules := 0
		for _, i := range idxs {
			specStates = append(specStates, base.States[i].SpecStates...)
		}
		for _, si := range specStates {
			rules += len(spec.States[si].Rules)
		}
		ss := first
		ss.SpecStates = specStates
		ss.MaxEntries = rules + 2
		if opts.Opt4ConstantSynthesis {
			ss.Candidates = stateCandidates(spec, specStates, ss.KeyWidth)
		}
		sk.States = append(sk.States, ss)
	}
	return sk, true
}

// splitSkeleton splits every state whose key exceeds the hardware key
// width into a chain of sub-states, each checking one chunk of the key
// (§6.4.3, Figure 4 Step 2). Extraction happens in the final sub-state so
// the cursor is stationary while the chunks are examined. The reversed
// flag flips the chunk check order — the paper's observation that check
// order changes TCAM entry counts.
func splitSkeleton(spec *pir.Spec, profile hw.Profile, opts Options, base skeleton, reversed bool) (skeleton, error) {
	name := "key-split"
	if reversed {
		name = "key-split-rev"
	}
	sk := skeleton{Name: name, Loopy: base.Loopy}
	for _, ss := range base.States {
		if ss.KeyWidth <= profile.KeyLimit {
			sk.States = append(sk.States, ss)
			continue
		}
		// Chunk the flattened key bit range.
		type chunk struct{ lo, hi int } // bit range within the state's key
		var chunks []chunk
		for lo := 0; lo < ss.KeyWidth; lo += profile.KeyLimit {
			hi := lo + profile.KeyLimit
			if hi > ss.KeyWidth {
				hi = ss.KeyWidth
			}
			chunks = append(chunks, chunk{lo, hi})
		}
		if reversed {
			for i, j := 0, len(chunks)-1; i < j; i, j = i+1, j-1 {
				chunks[i], chunks[j] = chunks[j], chunks[i]
			}
		}
		// The split is a TREE, not a chain: one copy of the first chunk
		// state, several copies of each later chunk so different prefixes
		// can route to different continuations (Figure 4 Step 2 — V1 and V2
		// differ exactly in how this tree is wired). The entry-budget
		// minimization leaves unneeded copies empty.
		nRules := 0
		for _, si := range ss.SpecStates {
			nRules += len(spec.States[si].Rules)
		}
		for ci, ch := range chunks {
			copies := 1
			if ci > 0 {
				copies = nRules
				if copies > 4 {
					copies = 4
				}
				if copies < 2 {
					copies = 2
				}
			}
			for cp := 0; cp < copies; cp++ {
				sub := skelState{
					Name:       fmt.Sprintf("%s#%d.%d", ss.Name, ci, cp),
					SpecStates: ss.SpecStates,
					KeyWidth:   ch.hi - ch.lo,
					MaxEntries: nRules + 2,
					ChainGroup: ss.Name,
					ChainLevel: ci,
				}
				sub.Key = sliceKey(ss.Key, ch.lo, ch.hi)
				// Every chunk state carries the extraction work; each ENTRY
				// decides (symbolically) whether to perform it, so an early
				// chunk can extract-and-exit directly — the Figure 4 V2
				// shortcut — while interior entries pass the cursor along
				// untouched.
				sub.Extracts = ss.Extracts
				sub.StaticWidth = ss.StaticWidth
				sub.HasVarbit = ss.HasVarbit
				sub.OptionalExtract = true
				if opts.Opt4ConstantSynthesis {
					sub.Candidates = chunkCandidates(spec, ss.SpecStates, ss.KeyWidth, ch.lo, ch.hi)
				}
				sk.States = append(sk.States, sub)
			}
		}
	}
	return sk, nil
}

// sliceKey extracts bit range [lo, hi) of a composed key as new key parts.
func sliceKey(key []skelKeyPart, lo, hi int) []skelKeyPart {
	var out []skelKeyPart
	pos := 0
	for _, p := range key {
		w := p.BitWidth()
		plo, phi := pos, pos+w
		pos = phi
		s, e := max(plo, lo), min(phi, hi)
		if s >= e {
			continue
		}
		inLo, inHi := s-plo, e-plo // offsets within the part
		np := p
		if p.Lookahead {
			np.KeyPart = pir.LookaheadBits(p.Skip+inLo, inHi-inLo)
			np.RelOff = p.RelOff + inLo
		} else {
			np.KeyPart = pir.FieldSlice(p.Field, p.Lo+inLo, p.Lo+inHi)
			np.RelOff = p.RelOff + inLo
		}
		out = append(out, np)
	}
	return out
}

// chunkCandidates projects each spec rule's value onto the chunk's bit
// range — the §6.4.3 subrange constants C[i:j] that fit the hardware key
// width.
func chunkCandidates(spec *pir.Spec, specStates []int, kw, lo, hi int) []pir.MaskedConst {
	seen := map[uint64]bool{}
	var out []pir.MaskedConst
	w := hi - lo
	add := func(v uint64) {
		v &= widthMask(w)
		if !seen[v] {
			seen[v] = true
			out = append(out, pir.MaskedConst{Value: v, Mask: widthMask(w), Width: w})
		}
	}
	shift := uint(kw - hi)
	for _, si := range specStates {
		for _, r := range spec.States[si].Rules {
			add((r.Value & r.Mask) >> shift)
		}
	}
	if len(out) == 0 {
		add(0)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Value < out[b].Value })
	return out
}

// unrollSpec rewrites a loopy specification into a bounded loop-free one
// for pipelined targets: loop states are replicated depth times; the last
// copy's back edges become rejects (a deeper stack than the device can
// hold is dropped, as the IPU compiler documents).
func unrollSpec(spec *pir.Spec, depth int) (*pir.Spec, error) {
	n := len(spec.States)
	states := make([]pir.State, 0, n*depth)
	// Copy k of state i lives at index k*n + i.
	for k := 0; k < depth; k++ {
		for i := range spec.States {
			st := spec.States[i]
			cp := pir.State{
				Name:     fmt.Sprintf("%s@%d", st.Name, k),
				Extracts: append([]pir.Extract(nil), st.Extracts...),
				Key:      append([]pir.KeyPart(nil), st.Key...),
				Default:  retarget(st.Default, i, k, n, depth),
			}
			for _, r := range st.Rules {
				cp.Rules = append(cp.Rules, pir.Rule{Value: r.Value, Mask: r.Mask, Next: retarget(r.Next, i, k, n, depth)})
			}
			states = append(states, cp)
		}
	}
	return pir.New(spec.Name+"-unrolled", spec.Fields, states)
}

// retarget maps a transition of state i (copy k) into the unrolled state
// space: back or same-level edges advance to the next copy; the deepest
// copy rejects on any further advance.
func retarget(t pir.Target, from, k, n, depth int) pir.Target {
	if t.Kind != pir.ToState {
		return t
	}
	level := k
	if t.State <= from { // backward or self edge: consume one unroll level
		level = k + 1
	}
	if level >= depth {
		return pir.RejectTarget
	}
	return pir.To(level*n + t.State)
}

// topoOrder returns reachable states in topological order when the graph
// is acyclic, or reachable states in declaration order otherwise (loops
// only occur on loop-capable targets where order is irrelevant).
func topoOrder(spec *pir.Spec, reach []bool) []int {
	if spec.HasLoop() {
		var out []int
		for i := range spec.States {
			if reach[i] {
				out = append(out, i)
			}
		}
		return out
	}
	perm := make([]int, 0, len(spec.States))
	mark := make([]int, len(spec.States))
	var visit func(i int)
	visit = func(i int) {
		if mark[i] != 0 {
			return
		}
		mark[i] = 1
		st := &spec.States[i]
		for _, r := range st.Rules {
			if r.Next.Kind == pir.ToState {
				visit(r.Next.State)
			}
		}
		if st.Default.Kind == pir.ToState {
			visit(st.Default.State)
		}
		perm = append(perm, i)
	}
	for i := range spec.States {
		if reach[i] {
			visit(i)
		}
	}
	// perm is reverse-topological; reverse it.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
