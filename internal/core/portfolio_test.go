package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/hw"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
)

// portfolioRun is the schedule-invariant fingerprint of one compilation:
// the verdict, and on success the exact program and its resource shape.
// The portfolio's determinism contract (see portfolio.go) promises this
// fingerprint is the same function of (spec, profile, options) at every
// worker count, so the tests below compare it bit for bit.
type portfolioRun struct {
	err     error
	program string
	entries int
	stages  int
	budget  int
	// ladders is scheduling telemetry, not part of the fingerprint: how
	// many skeleton ladders the portfolio actually started.
	ladders int
}

func compileAtWorkers(t *testing.T, spec *pir.Spec, profile hw.Profile, workers int, noExchange bool) portfolioRun {
	t.Helper()
	opts := DefaultOptions()
	opts.Timeout = 60 * time.Second
	opts.Workers = workers
	opts.NoExchange = noExchange
	res, err := Compile(spec, profile, opts)
	out := portfolioRun{err: err}
	if err != nil {
		return out
	}
	out.program = fmt.Sprint(res.Program)
	out.entries = res.Resources.Entries
	out.stages = res.Resources.Stages
	out.budget = res.Stats.EntryBudget
	out.ladders = res.Stats.Portfolio.LaddersRun
	if workers > 1 && res.Stats.Portfolio.Workers != workers {
		t.Errorf("%s on %s: Stats.Portfolio.Workers = %d, want %d",
			spec.Name, profile.Name, res.Stats.Portfolio.Workers, workers)
	}
	return out
}

// checkIdentical asserts two runs of the same compilation agree on verdict,
// entry table, and stage count. Timeouts are resource exhaustion, not a
// verdict, and make the comparison inconclusive.
func checkIdentical(t *testing.T, label string, base, got portfolioRun) {
	t.Helper()
	if errors.Is(base.err, ErrTimeout) || errors.Is(got.err, ErrTimeout) {
		t.Logf("%s: inconclusive, timeout (base err=%v, got err=%v)", label, base.err, got.err)
		return
	}
	if (base.err == nil) != (got.err == nil) {
		t.Fatalf("%s: verdicts diverge: base err=%v, got err=%v", label, base.err, got.err)
	}
	if base.err != nil {
		if base.err.Error() != got.err.Error() {
			t.Fatalf("%s: failure reasons diverge: base=%v got=%v", label, base.err, got.err)
		}
		return
	}
	if base.program != got.program {
		t.Fatalf("%s: entry tables diverge:\nbase:\n%s\ngot:\n%s", label, base.program, got.program)
	}
	if base.entries != got.entries || base.stages != got.stages || base.budget != got.budget {
		t.Fatalf("%s: resources diverge: base=(%d entries, %d stages, budget %d) got=(%d entries, %d stages, budget %d)",
			label, base.entries, base.stages, base.budget, got.entries, got.stages, got.budget)
	}
}

func exampleSpecs(t *testing.T) []*pir.Spec {
	t.Helper()
	var specs []*pir.Spec
	root := filepath.Join("..", "..", "examples")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".p4" {
			return err
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		spec, perr := p4.ParseSpec(string(src))
		if perr != nil {
			t.Fatalf("%s: %v", path, perr)
		}
		specs = append(specs, spec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no .p4 specs found under examples/")
	}
	return specs
}

// TestPortfolioDeterminismOverExampleCorpus compiles every example spec at
// -workers 1, 2, and 8 on both device families and requires identical
// verdicts, entry tables, and stage counts. The -workers 1 run never enters
// the portfolio scheduler, so this pins the parallel path to the sequential
// semantics, refuters, clause exchange, domination and all.
func TestPortfolioDeterminismOverExampleCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio determinism sweep")
	}
	profiles := []hw.Profile{hw.Tofino(), hw.IPU()}
	for _, spec := range exampleSpecs(t) {
		for _, profile := range profiles {
			base := compileAtWorkers(t, spec, profile, 1, false)
			for _, w := range []int{2, 8} {
				got := compileAtWorkers(t, spec, profile, w, false)
				checkIdentical(t, fmt.Sprintf("%s on %s at workers=%d", spec.Name, profile.Name, w), base, got)
			}
		}
	}
}

// TestPortfolioDeterminismOverRandomSpecs is the seeded-random variant of
// the corpus sweep, plus a -no-exchange arm: disabling the clause exchange
// must not change any outcome either, since authoritative ladders never
// import and refuter verdicts are schedule-invariant facts.
func TestPortfolioDeterminismOverRandomSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio determinism sweep")
	}
	rng := rand.New(rand.NewSource(20260806))
	profiles := []hw.Profile{hw.Tofino(), hw.Parameterized(2, 12, 64)}
	for i := 0; i < 10; i++ {
		spec := randomSpec(rng, 7000+i)
		for _, profile := range profiles {
			base := compileAtWorkers(t, spec, profile, 1, false)
			got := compileAtWorkers(t, spec, profile, 4, false)
			checkIdentical(t, fmt.Sprintf("%s on %s at workers=4", spec.Name, profile.Name), base, got)
			noEx := compileAtWorkers(t, spec, profile, 4, true)
			checkIdentical(t, fmt.Sprintf("%s on %s at workers=4 -no-exchange", spec.Name, profile.Name), base, noEx)
		}
	}
}

// TestPortfolioExchangeUnderContention is the fast concurrency smoke the
// -race job targets: wide-key benchmarks whose split variants give the
// scheduler several skeletons and multi-rung ladders, compiled at
// -workers 8 so ladders, refuter probes, the clause pools, and the shared
// bound all run at once, checked against the sequential fingerprint.
func TestPortfolioExchangeUnderContention(t *testing.T) {
	// The scaled Tofino profile of the evaluation harness: its 12-bit key
	// limit forces key splitting, which is what multiplies the skeletons.
	profile := hw.Profile{
		Name:           "tofino-scaled",
		Arch:           hw.SingleTable,
		KeyLimit:       12,
		TCAMLimit:      24,
		LookaheadLimit: 24,
		ExtractLimit:   64,
	}
	for _, name := range []string{"Large tran key", "Multi-keys (diff pkt fields)"} {
		b, ok := benchdata.ByName(name)
		if !ok {
			t.Fatalf("benchmark %q not in the suite", name)
		}
		base := compileAtWorkers(t, b.Spec, profile, 1, false)
		if base.err != nil {
			t.Fatalf("%s: sequential compile failed: %v", name, base.err)
		}
		for rep := 0; rep < 2; rep++ {
			got := compileAtWorkers(t, b.Spec, profile, 8, false)
			checkIdentical(t, fmt.Sprintf("%s rep %d", name, rep), base, got)
			if got.err == nil && got.ladders < 1 {
				t.Errorf("%s rep %d: portfolio ran no ladders", name, rep)
			}
			t.Logf("%s rep %d: %d ladders", name, rep, got.ladders)
		}
	}
}
