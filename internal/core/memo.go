package core

// The core side of the cross-compile memo cache (internal/memo): the
// interface the portfolio consults, and the canonical per-skeleton keys
// the facts are filed under. core deliberately defines the interface
// rather than importing internal/memo, so the dependency points outward
// (memo imports core, never the reverse).

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/sat"
)

// Memo is the subset of the memo cache the synthesis core talks to.
//
// Tier 2 — SkeletonUnsat/RecordSkeletonUnsat — stores the fact "this
// skeleton's encoding is solver-UNSAT at its ladder cap": with values
// drawn from any spec-consistent example set, no entry table within the
// cap exists in the skeleton's search space, so the whole ladder's
// ErrNoSolution verdict may be recalled without running it. The fact is
// recorded only from genuine solver UNSATs (a refuter kill, or a ladder
// whose cap rung climbed via UNSAT — never via a device-validation
// failure of a found model, which is seed-dependent), and is keyed by
// the canonical spec + skeleton structure + cap + profile + options
// minus the seed (see tier2Key).
//
// Tier 3 — GlueClauses/RecordGlueClauses — stores a skeleton's exchange
// pool (epoch ≤ seedExampleCount clauses) for exact replays only: the
// key includes the seed and the un-canonicalized spec text, so seeded
// clauses always refer to a bit-identical formula and variable
// numbering.
type Memo interface {
	SkeletonUnsat(key string) bool
	RecordSkeletonUnsat(key string)
	GlueClauses(key string) []sat.SeedClause
	RecordGlueClauses(key string, clauses []sat.SeedClause)
}

// seedExampleCount is the number of deterministic seed examples every
// CEGIS environment starts from (all-zeros plus one seeded-random input;
// see newEnv). Refuter probes prove their UNSATs against exactly these,
// and only clauses learned at this epoch or below are persisted to (and
// seeded from) the tier-3 pool — any consumer has at least these
// examples encoded.
const seedExampleCount = 2

// memoKeys carries the per-skeleton tier-2/tier-3 keys of one compile.
// An empty string marks a skeleton that could not be keyed (canonicalization
// failed or referenced an unknown field); such skeletons are neither
// consulted nor recorded.
type memoKeys struct {
	tier2 []string
	tier3 []string
}

// computeMemoKeys canonicalizes the effective synthesis spec and derives
// each skeleton's memo keys. Returns nil when the spec cannot be
// canonicalized — the compile then simply runs unmemoized.
func computeMemoKeys(effSynth *pir.Spec, synthSks []skeleton, profile hw.Profile, opts Options) *memoKeys {
	canon, wit, err := pir.Canonicalize(effSynth)
	if err != nil {
		return nil
	}
	fieldCanon := wit.FieldToCanon()
	stateCanon := make([]int, len(effSynth.States)) // orig index -> canon index
	for c, o := range wit.States {
		stateCanon[o] = c
	}
	stateNameCanon := make(map[string]string, len(effSynth.States))
	for o := range effSynth.States {
		stateNameCanon[effSynth.States[o].Name] = fmt.Sprintf("s%d", stateCanon[o])
	}

	// The seed steers CEGIS example generation but never the existence of
	// a solution, so tier-2 facts are shared across seeds; tier-3 clause
	// pools are not (see tier3 below).
	noSeed := opts
	noSeed.Seed = 0
	optsFP := noSeed.Fingerprint()
	canonText := canon.String()
	specSHA := fmt.Sprintf("%x", sha256.Sum256([]byte(effSynth.String())))

	keys := &memoKeys{tier2: make([]string, len(synthSks)), tier3: make([]string, len(synthSks))}
	for i := range synthSks {
		ser, ok := serializeSkeleton(&synthSks[i], fieldCanon, stateCanon, stateNameCanon)
		if !ok {
			continue
		}
		low, capN := ladderBounds(effSynth, &synthSks[i], profile, opts)
		base := fmt.Sprintf("%s\x00%s\x00%d:%d\x00%s\x00%s",
			canonText, ser, low, capN, profile.Fingerprint(), optsFP)
		keys.tier2[i] = fmt.Sprintf("%x", sha256.Sum256([]byte("t2\x00"+base)))
		// Exact-replay key: the clause pool's variable numbering follows the
		// encoder over the ORIGINAL (un-renamed) spec, and the seed examples
		// follow Options.Seed, so both join the key.
		keys.tier3[i] = fmt.Sprintf("%x", sha256.Sum256([]byte(
			fmt.Sprintf("t3\x00%s\x00seed=%d\x00%s", base, opts.Seed, specSHA))))
	}
	return keys
}

// serializeSkeleton renders a skeleton's full structure in canonical
// names: spec states as canonical indices, fields as canonical names,
// chain groups as canonical state names. Display names (skelState.Name
// embeds original state names) are skipped. Two skeletons serialize
// equally exactly when they pose the same synthesis subproblem up to the
// spec isomorphism, which is what makes tier-2 reuse across alias specs
// sound.
func serializeSkeleton(sk *skeleton, fieldCanon map[string]string, stateCanon []int, stateNameCanon map[string]string) (string, bool) {
	var sb strings.Builder
	field := func(name string) (string, bool) {
		if name == "" {
			return "-", true
		}
		c, ok := fieldCanon[name]
		return c, ok
	}
	fmt.Fprintf(&sb, "loopy=%t", sk.Loopy)
	for si := range sk.States {
		ss := &sk.States[si]
		sb.WriteString(";st{")
		for _, sp := range ss.SpecStates {
			if sp < 0 || sp >= len(stateCanon) {
				return "", false
			}
			fmt.Fprintf(&sb, "p%d,", stateCanon[sp])
		}
		for _, e := range ss.Extracts {
			f, ok1 := field(e.Field)
			lf, ok2 := field(e.LenField)
			if !ok1 || !ok2 {
				return "", false
			}
			fmt.Fprintf(&sb, "x%s,%s,%d,%d;", f, lf, e.LenScale, e.LenBias)
		}
		for _, k := range ss.Key {
			if k.Lookahead {
				fmt.Fprintf(&sb, "l%d,%d,%d;", k.Skip, k.Width, k.RelOff)
				continue
			}
			f, ok := field(k.Field)
			if !ok {
				return "", false
			}
			fmt.Fprintf(&sb, "k%s,%d,%d,%d;", f, k.Lo, k.Hi, k.RelOff)
		}
		fmt.Fprintf(&sb, "kw=%d,max=%d,sw=%d,vb=%t,lvl=%d,opt=%t", ss.KeyWidth, ss.MaxEntries, ss.StaticWidth, ss.HasVarbit, ss.ChainLevel, ss.OptionalExtract)
		if ss.ChainGroup != "" {
			cg, ok := stateNameCanon[ss.ChainGroup]
			if !ok {
				// A chain group that is not a plain spec-state name still
				// keys deterministically on its literal text; it just will
				// not alias across renamed specs.
				cg = "raw:" + ss.ChainGroup
			}
			fmt.Fprintf(&sb, ",cg=%s", cg)
		}
		for _, c := range ss.Candidates {
			fmt.Fprintf(&sb, ";c%#x,%#x,%d", c.Value, c.Mask, c.Width)
		}
		sb.WriteString("}")
	}
	return sb.String(), true
}
