package core

import (
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/cert"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// Regression scenario for the silently-wrong-interior-hop class of bug:
// a TCAM entry on an interior hop carries a wrong mask bit, and the
// wrongly entered state extracts nothing and falls through to accept, so
// the mistake is invisible on exact rule patterns and on every input
// where the downstream key does not match. It only shows on the
// combination (deviating interior hop, exact downstream pattern) — the
// inputs the one-deviation directed suite provides.
//
// The spec is a three-state chain. The middle state branches on pure
// lookahead without extracting, which is what makes a wrong entry into
// it fall through silently:
//
//	start --t1==0xAA--> mid --lookahead==0xBB--> leaf
//	  |                   |                        |
//	default accept   default accept          extract + accept
func hopChainSpec(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("chain",
		[]pir.Field{{Name: "t1", Width: 8}, {Name: "pay", Width: 8}},
		[]pir.State{
			{
				Name:     "start",
				Extracts: []pir.Extract{{Field: "t1"}},
				Key:      []pir.KeyPart{pir.WholeField("t1", 8)},
				Rules:    []pir.Rule{pir.ExactRule(0xAA, 8, pir.To(1))},
				Default:  pir.AcceptTarget,
			},
			{
				Name:    "mid",
				Key:     []pir.KeyPart{pir.LookaheadBits(0, 8)},
				Rules:   []pir.Rule{pir.ExactRule(0xBB, 8, pir.To(2))},
				Default: pir.AcceptTarget,
			},
			{
				Name:     "leaf",
				Extracts: []pir.Extract{{Field: "pay"}},
				Default:  pir.AcceptTarget,
			},
		})
}

// hopChainProg is the correct match-then-extract translation of hopChainSpec.
func hopChainProg(spec *pir.Spec) *tcam.Program {
	return &tcam.Program{
		Spec: spec,
		States: []tcam.State{
			{
				Table: 0, ID: 0,
				Key: []pir.KeyPart{pir.LookaheadBits(0, 8)},
				Entries: []tcam.Entry{
					{Value: 0xAA, Mask: 0xFF, Extracts: []pir.Extract{{Field: "t1"}}, Next: tcam.To(0, 1)},
					{Value: 0, Mask: 0, Extracts: []pir.Extract{{Field: "t1"}}, Next: tcam.AcceptTarget},
				},
			},
			{
				Table: 0, ID: 1,
				Key: []pir.KeyPart{pir.LookaheadBits(0, 8)},
				Entries: []tcam.Entry{
					{Value: 0xBB, Mask: 0xFF, Next: tcam.To(0, 2)},
					{Value: 0, Mask: 0, Next: tcam.AcceptTarget},
				},
			},
			{
				Table: 0, ID: 2,
				Entries: []tcam.Entry{
					{Value: 0, Mask: 0, Extracts: []pir.Extract{{Field: "pay"}}, Next: tcam.AcceptTarget},
				},
			},
		},
	}
}

// brokenChainProg clears the low mask bit of the interior hop: first
// bytes 0xAA and 0xAB now both enter mid. On 0xAB the spec accepts at
// start while the impl wrongly sits in mid — but mid extracts nothing
// and falls through to accept, so the outcomes still agree unless the
// second byte is exactly 0xBB.
func brokenChainProg(spec *pir.Spec) *tcam.Program {
	prog := hopChainProg(spec)
	prog.States[0].Entries[0].Mask = 0xFE
	return prog
}

// bytesInput packs bytes MSB-first into a bit stream of n bits.
func bytesInput(n int, bs ...byte) bitstream.Bits {
	in := make(bitstream.Bits, n)
	for i, b := range bs {
		for j := 0; j < 8 && i*8+j < n; j++ {
			in[i*8+j] = b >> uint(7-j) & 1
		}
	}
	return in
}

func TestInteriorHopDeviationIsSilentOnExactPatterns(t *testing.T) {
	spec := hopChainSpec(t)
	bad := brokenChainProg(spec)
	v, err := newVerifier(spec, DefaultOptions(), 7)
	if err != nil {
		t.Fatal(err)
	}
	k := v.maxIterBudget()
	agree := func(bs ...byte) bool {
		in := bytesInput(v.maxLen, bs...)
		return bad.Run(in, k).Same(spec.Run(in, k))
	}
	// Exact patterns and single deviations are silent: the wrong mask bit
	// needs BOTH the deviating first byte and the matching second byte.
	for _, tc := range []struct {
		name string
		bs   []byte
	}{
		{"exact path", []byte{0xAA, 0xBB, 0x5C}},
		{"deviating hop, quiet downstream", []byte{0xAB, 0x00, 0x5C}},
		{"exact hop, matching downstream", []byte{0xAA, 0xBB, 0x00}},
	} {
		if !agree(tc.bs...) {
			t.Fatalf("%s: expected silent agreement on % x", tc.name, tc.bs)
		}
	}
	if agree(0xAB, 0xBB, 0x5C) {
		t.Fatal("deviating hop with matching downstream key should diverge")
	}
}

func TestDirectedSuiteCatchesInteriorHopDeviation(t *testing.T) {
	spec := hopChainSpec(t)
	good := hopChainProg(spec)
	bad := brokenChainProg(spec)
	v, err := newVerifier(spec, DefaultOptions(), 7)
	if err != nil {
		t.Fatal(err)
	}
	k := v.maxIterBudget()

	// The correct program is equivalent: no counterexample anywhere.
	if cex, found, _ := v.counterexample(good); found {
		t.Fatalf("correct program rejected on %s", cex)
	}

	// The deterministic one-deviation suite alone must expose the wrong
	// interior mask bit — no reliance on random sampling luck.
	caught := false
	for _, in := range v.directedSuite() {
		if !bad.Run(in, k).Same(spec.Run(in, k)) {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatal("one-deviation directed suite missed the wrong interior-hop mask bit")
	}
}

func TestWitnessCatchesInteriorHopDeviation(t *testing.T) {
	spec := hopChainSpec(t)
	good := hopChainProg(spec)
	bad := brokenChainProg(spec)

	// The certificate-side checker accepts the correct translation...
	w, err := cert.BuildWitness(spec, good)
	if err != nil {
		t.Fatalf("BuildWitness rejected the correct program: %v", err)
	}
	if err := cert.CheckWitness(spec, good, w); err != nil {
		t.Fatalf("CheckWitness rejected the correct program: %v", err)
	}

	// ...and independently rejects the deviating one, even though the
	// deviation is silent on almost all inputs. The witness checker's
	// product traversal explores the symbolic configuration where the
	// impl wrongly sits in mid while the spec has accepted, so it does
	// not depend on any concrete input hitting the 2^-16 corner.
	if _, err := cert.BuildWitness(spec, bad); err == nil {
		t.Fatal("BuildWitness accepted a program with a wrong interior-hop mask bit")
	}
	if err := cert.CheckWitness(spec, bad, w); err == nil {
		t.Fatal("CheckWitness accepted a program with a wrong interior-hop mask bit")
	}
}
