package core

import (
	"fmt"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// postOptimize implements the back-end of Figure 8 (§5.3): it recursively
// merges pass-through states into their successors, splits entries whose
// extraction exceeds the device's per-entry limit, and assigns pipeline
// stages on pipelined architectures. The synthesis phase deliberately
// leaves these transformations out of the solver's search space — they are
// cheap to perform concretely but expensive to encode symbolically.
func postOptimize(prog *tcam.Program, profile hw.Profile) (*tcam.Program, error) {
	prog = foldSingletonStates(prog, profile)
	prog = mergePassThroughStates(prog)
	prog = splitWideExtractions(prog, profile)
	if profile.Arch != hw.SingleTable {
		var err error
		prog, err = layoutPipeline(prog, profile)
		if err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// layoutPipeline lays a loop-free program out onto pipeline stages:
// longest-path stage assignment for every pipelined architecture, plus
// cycle alignment for streaming devices, where a transition cannot skip a
// stage (the window advances whether or not the parser has work for it).
func layoutPipeline(prog *tcam.Program, profile hw.Profile) (*tcam.Program, error) {
	prog, err := assignStages(prog, profile)
	if err != nil {
		return nil, err
	}
	if profile.Arch == hw.Streaming {
		prog = alignStreamingStages(prog)
	}
	return prog, nil
}

// alignStreamingStages rewrites every stage-skipping transition through a
// chain of pass-through states (empty key, one mask-0 entry, no
// extraction), one per skipped cycle, so each transition advances exactly
// one stage. Pass-throughs are shared: all entries hopping from stage s
// toward the same eventual target reuse one chain. Stage assignment never
// moves, so the result stays within the already-checked StageLimit; the
// cost is one entry per skipped cycle per distinct target, which is the
// price the streaming device really pays to carry state across a cycle.
func alignStreamingStages(prog *tcam.Program) *tcam.Program {
	out := &tcam.Program{Spec: prog.Spec}
	out.States = append([]tcam.State(nil), prog.States...)
	nextID := map[int]int{}
	for i := range out.States {
		if out.States[i].ID >= nextID[out.States[i].Table] {
			nextID[out.States[i].Table] = out.States[i].ID + 1
		}
	}
	type key [3]int // pass-through stage, target stage, target id
	hops := map[key]tcam.Target{}
	// align returns a target in stage from+1 that reaches tgt (in a stage
	// strictly beyond from), materializing pass-through states on demand.
	var align func(from int, tgt tcam.Target) tcam.Target
	align = func(from int, tgt tcam.Target) tcam.Target {
		if tgt.Table == from+1 {
			return tgt
		}
		k := key{from + 1, tgt.Table, tgt.State}
		if t, ok := hops[k]; ok {
			return t
		}
		id := nextID[from+1]
		nextID[from+1]++
		t := tcam.To(from+1, id)
		hops[k] = t
		out.States = append(out.States, tcam.State{
			Table:   from + 1,
			ID:      id,
			Entries: []tcam.Entry{{Next: align(from+1, tgt)}},
		})
		return t
	}
	n := len(out.States) // pass-throughs appended later are born aligned
	for i := 0; i < n; i++ {
		entries := append([]tcam.Entry(nil), out.States[i].Entries...)
		from := out.States[i].Table
		for ei := range entries {
			nx := entries[ei].Next
			if nx.Kind == tcam.ToState && nx.Table > from+1 {
				entries[ei].Next = align(from, nx)
			}
		}
		out.States[i].Entries = entries
	}
	return out
}

// foldSingletonStates absorbs states that hold exactly one unconditional
// entry (mask 0: pure extraction plus transition) into every entry that
// points at them — the state-clustering effect of Figure 1 that lets one
// TCAM entry advance over several headers. An entry absorbs its successor
// only while the combined extraction stays within the device's per-entry
// extraction limit; entries that cannot absorb keep the original state, so
// folding never loses correctness. Runs to fixpoint, so chains collapse.
func foldSingletonStates(prog *tcam.Program, profile hw.Profile) *tcam.Program {
	for {
		changed := false
		// Identify foldable states.
		type fold struct {
			extracts []pir.Extract
			next     tcam.Target
		}
		foldable := map[[2]int]fold{}
		for i := range prog.States {
			st := &prog.States[i]
			if len(st.Entries) != 1 {
				continue
			}
			e := st.Entries[0]
			if e.Mask != 0 || len(e.Extracts) == 0 {
				continue
			}
			if e.Next.Kind == tcam.ToState && e.Next.Table == st.Table && e.Next.State == st.ID {
				continue // self loop (would not terminate)
			}
			// Start state cannot be absorbed (it has no predecessors' entry
			// to live in), but it can absorb others.
			if st.Table == 0 && st.ID == 0 {
				continue
			}
			foldable[[2]int{st.Table, st.ID}] = fold{extracts: e.Extracts, next: e.Next}
		}
		if len(foldable) == 0 {
			break
		}
		for i := range prog.States {
			for ei := range prog.States[i].Entries {
				e := &prog.States[i].Entries[ei]
				if e.Next.Kind != tcam.ToState {
					continue
				}
				f, ok := foldable[[2]int{e.Next.Table, e.Next.State}]
				if !ok {
					continue
				}
				if f.next.Kind == tcam.ToState && f.next.Table == prog.States[i].Table && f.next.State == prog.States[i].ID {
					continue // folding would create a self edge we cannot verify cheaply; skip
				}
				bits := 0
				for _, x := range append(append([]pir.Extract(nil), e.Extracts...), f.extracts...) {
					fd, _ := prog.Spec.Field(x.Field)
					if fd.Var {
						continue // streamed; not charged against the budget
					}
					bits += fd.Width
				}
				if profile.ExtractLimit > 0 && bits > profile.ExtractLimit {
					continue
				}
				e.Extracts = append(append([]pir.Extract(nil), e.Extracts...), f.extracts...)
				e.Next = f.next
				changed = true
			}
		}
		if !changed {
			break
		}
		prog = dropUnreachable(prog)
	}
	return dropUnreachable(prog)
}

// dropUnreachable removes states no entry and no start position can reach.
func dropUnreachable(prog *tcam.Program) *tcam.Program {
	reach := map[[2]int]bool{{0, 0}: true}
	for {
		grew := false
		for i := range prog.States {
			st := &prog.States[i]
			if !reach[[2]int{st.Table, st.ID}] {
				continue
			}
			for _, e := range st.Entries {
				if e.Next.Kind == tcam.ToState && !reach[[2]int{e.Next.Table, e.Next.State}] {
					reach[[2]int{e.Next.Table, e.Next.State}] = true
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	out := &tcam.Program{Spec: prog.Spec}
	for i := range prog.States {
		if reach[[2]int{prog.States[i].Table, prog.States[i].ID}] {
			out.States = append(out.States, prog.States[i])
		}
	}
	return out
}

// mergePassThroughStates merges state A into state B when A holds exactly
// one enabled entry, that entry is a pure wildcard transitioning to B, B's
// only predecessor is A, and B's key does not reference A's extraction via
// containers in a way that shifting would break. A's extraction is
// prepended to B's and B's lookahead windows shift past it — exactly the
// paper's "merge states with only one default transition rule" rule, which
// is what turns the Pure-Extraction benchmark's state chain into a single
// state.
func mergePassThroughStates(prog *tcam.Program) *tcam.Program {
	skip := map[[2]int]bool{} // states proven unmergeable (dynamic width)
	for {
		ai, bi := findMergeablePair(prog, skip)
		if ai < 0 {
			return prog
		}
		a, b := &prog.States[ai], &prog.States[bi]
		aWidth, ok := staticWidth(prog.Spec, a.Entries[0].Extracts)
		if !ok {
			// Varbit extraction width is dynamic; windows cannot shift.
			skip[[2]int{a.Table, a.ID}] = true
			continue
		}
		// Shift B's lookahead windows past A's extraction.
		for ki := range b.Key {
			if b.Key[ki].Lookahead {
				b.Key[ki].Skip += aWidth
			}
		}
		// Prepend A's extraction to every entry of B.
		for ei := range b.Entries {
			b.Entries[ei].Extracts = append(
				append([]pir.Extract(nil), a.Entries[0].Extracts...),
				b.Entries[ei].Extracts...)
		}
		// Retarget every edge pointing at A to B, drop A.
		prog = dropState(prog, ai, bi)
	}
}

// findMergeablePair locates (A, B) state indices for the merge rule, or
// (-1, -1).
func findMergeablePair(prog *tcam.Program, skip map[[2]int]bool) (int, int) {
	// Predecessor counts by (table, id).
	pred := map[[2]int][]int{}
	for i := range prog.States {
		for _, e := range prog.States[i].Entries {
			if e.Next.Kind == tcam.ToState {
				k := [2]int{e.Next.Table, e.Next.State}
				pred[k] = append(pred[k], i)
			}
		}
	}
	for ai := range prog.States {
		a := &prog.States[ai]
		if skip[[2]int{a.Table, a.ID}] {
			continue
		}
		if len(a.Entries) != 1 || len(a.Entries[0].Extracts) == 0 {
			continue
		}
		e := a.Entries[0]
		if e.Mask != 0 || e.Next.Kind != tcam.ToState {
			continue
		}
		bi := -1
		for i := range prog.States {
			if prog.States[i].Table == e.Next.Table && prog.States[i].ID == e.Next.State {
				bi = i
			}
		}
		if bi < 0 || bi == ai {
			continue
		}
		// B must have A as its only predecessor, and must not be the start.
		bKey := [2]int{prog.States[bi].Table, prog.States[bi].ID}
		if len(pred[bKey]) != 1 || pred[bKey][0] != ai {
			continue
		}
		if prog.States[bi].Table == 0 && prog.States[bi].ID == 0 {
			continue
		}
		// B's key must not reference fields via containers (negative-offset
		// matches survive a merge only for lookahead windows).
		container := false
		for _, k := range prog.States[bi].Key {
			if !k.Lookahead {
				container = true
			}
		}
		if container {
			continue
		}
		return ai, bi
	}
	return -1, -1
}

// dropState removes state index ai after its merge into bi: every edge to
// A is retargeted to B, and when A was the start state, B is relabelled to
// (0, 0) so it takes over as the entry point.
func dropState(prog *tcam.Program, ai, bi int) *tcam.Program {
	aT, aID := prog.States[ai].Table, prog.States[ai].ID
	bT, bID := prog.States[bi].Table, prog.States[bi].ID
	aWasStart := aT == 0 && aID == 0
	out := &tcam.Program{Spec: prog.Spec}
	for i := range prog.States {
		if i == ai {
			continue
		}
		st := prog.States[i]
		st.Entries = append([]tcam.Entry(nil), st.Entries...)
		if aWasStart && st.Table == bT && st.ID == bID {
			st.Table, st.ID = 0, 0
		}
		out.States = append(out.States, st)
	}
	retarget := func(n tcam.Target) tcam.Target {
		if n.Kind != tcam.ToState {
			return n
		}
		if n.Table == aT && n.State == aID || (aWasStart && n.Table == bT && n.State == bID) {
			if aWasStart {
				return tcam.To(0, 0)
			}
			return tcam.To(bT, bID)
		}
		return n
	}
	for i := range out.States {
		for ei := range out.States[i].Entries {
			out.States[i].Entries[ei].Next = retarget(out.States[i].Entries[ei].Next)
		}
	}
	return out
}

// staticWidth sums the widths of an extraction list; ok=false when a
// varbit member makes the width dynamic.
func staticWidth(spec *pir.Spec, extracts []pir.Extract) (int, bool) {
	w := 0
	for _, e := range extracts {
		f, _ := spec.Field(e.Field)
		if f.Var {
			return 0, false
		}
		w += f.Width
	}
	return w, true
}

// splitWideExtractions rewrites entries whose extraction exceeds the
// device's per-entry bit limit into a chain of continuation states, each
// extracting at most the limit (§5.1.2 "extraction length limit", handled
// post-synthesis per §5.3).
func splitWideExtractions(prog *tcam.Program, profile hw.Profile) *tcam.Program {
	nextID := 0
	for i := range prog.States {
		if prog.States[i].ID >= nextID {
			nextID = prog.States[i].ID + 1
		}
	}
	out := &tcam.Program{Spec: prog.Spec}
	for i := range prog.States {
		st := prog.States[i]
		newEntries := make([]tcam.Entry, 0, len(st.Entries))
		for _, e := range st.Entries {
			groups := chunkExtracts(prog.Spec, e.Extracts, profile.ExtractLimit)
			if len(groups) <= 1 {
				newEntries = append(newEntries, e)
				continue
			}
			// First chunk stays in this entry; the rest become a chain of
			// single-entry continuation states.
			finalNext := e.Next
			e.Extracts = groups[0]
			cur := &e
			for gi := 1; gi < len(groups); gi++ {
				cont := tcam.State{
					Table: st.Table,
					ID:    nextID,
					Entries: []tcam.Entry{{
						Mask:     0,
						Extracts: groups[gi],
						Next:     finalNext,
					}},
				}
				nextID++
				cur.Next = tcam.To(st.Table, cont.ID)
				out.States = append(out.States, cont)
				cur = &out.States[len(out.States)-1].Entries[0]
			}
			cur.Next = finalNext
			newEntries = append(newEntries, e)
		}
		st.Entries = newEntries
		out.States = append(out.States, st)
	}
	return out
}

// chunkExtracts partitions an extraction list into runs of at most limit
// fixed bits each. A single fixed field wider than the limit cannot be
// split further here (field-level splitting would need spec changes), so
// it occupies its own chunk; varbit fields are streamed by the device's
// continuation mechanism and count as zero against the budget.
func chunkExtracts(spec *pir.Spec, extracts []pir.Extract, limit int) [][]pir.Extract {
	if limit <= 0 {
		return [][]pir.Extract{extracts}
	}
	var groups [][]pir.Extract
	var cur []pir.Extract
	bits := 0
	for _, e := range extracts {
		f, _ := spec.Field(e.Field)
		w := f.Width
		if f.Var {
			w = 0
		}
		if bits > 0 && bits+w > limit {
			groups = append(groups, cur)
			cur, bits = nil, 0
		}
		cur = append(cur, e)
		bits += w
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// assignStages layers a loop-free program into pipeline stages by longest
// path from the start state: each state's TCAM table becomes its depth.
// This realizes Figure 11's New1/New2 constraints concretely.
func assignStages(prog *tcam.Program, profile hw.Profile) (*tcam.Program, error) {
	type key = [2]int
	idx := map[key]int{}
	for i := range prog.States {
		idx[key{prog.States[i].Table, prog.States[i].ID}] = i
	}
	depth := make([]int, len(prog.States))
	for i := range depth {
		depth[i] = -1
	}
	var visit func(i int, onPath map[int]bool) error
	visit = func(i int, onPath map[int]bool) error {
		if onPath[i] {
			return fmt.Errorf("core: parser loop cannot be pipelined onto %s", profile.Name)
		}
		if depth[i] >= 0 {
			return nil
		}
		onPath[i] = true
		d := 0
		for _, e := range prog.States[i].Entries {
			if e.Next.Kind != tcam.ToState {
				continue
			}
			j, ok := idx[key{e.Next.Table, e.Next.State}]
			if !ok {
				return fmt.Errorf("core: dangling transition to (%d,%d)", e.Next.Table, e.Next.State)
			}
			if err := visit(j, onPath); err != nil {
				return err
			}
			if depth[j]+1 > d {
				d = depth[j] + 1
			}
		}
		delete(onPath, i)
		depth[i] = d
		return nil
	}
	start, ok := idx[key{0, 0}]
	if !ok {
		return nil, fmt.Errorf("core: program has no start state")
	}
	if err := visit(start, map[int]bool{}); err != nil {
		return nil, err
	}
	maxD := 0
	for i := range prog.States {
		if depth[i] < 0 {
			depth[i] = 0 // unreachable; keep at stage of start
		}
		if depth[i] > maxD {
			maxD = depth[i]
		}
	}
	// Stage = maxDepth - depth (start has the greatest depth-to-sink).
	out := &tcam.Program{Spec: prog.Spec}
	ids := map[int]int{} // per-stage next state id
	newID := make([]int, len(prog.States))
	newStage := make([]int, len(prog.States))
	for i := range prog.States {
		newStage[i] = maxD - depth[i]
		newID[i] = ids[newStage[i]]
		ids[newStage[i]]++
	}
	// Force the start state to (0, 0).
	if newStage[start] != 0 {
		return nil, fmt.Errorf("core: start state not in stage 0")
	}
	if newID[start] != 0 {
		for i := range prog.States {
			if newStage[i] == 0 && newID[i] == 0 {
				newID[i] = newID[start]
			}
		}
		newID[start] = 0
	}
	remap := map[key]tcam.Target{}
	for i := range prog.States {
		remap[key{prog.States[i].Table, prog.States[i].ID}] = tcam.To(newStage[i], newID[i])
	}
	for i := range prog.States {
		st := prog.States[i]
		st.Table = newStage[i]
		st.ID = newID[i]
		st.Entries = append([]tcam.Entry(nil), st.Entries...)
		for ei := range st.Entries {
			n := st.Entries[ei].Next
			if n.Kind == tcam.ToState {
				st.Entries[ei].Next = remap[key{n.Table, n.State}]
			}
		}
		out.States = append(out.States, st)
	}
	if maxD+1 > profile.StageLimit {
		return out, fmt.Errorf("core: program needs %d stages, device has %d", maxD+1, profile.StageLimit)
	}
	return out, nil
}
