package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"parserhawk/internal/cert"
	"parserhawk/internal/hw"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// buildCertificate assembles the proof-carrying artifact for a finished
// compile: the effective spec the synthesizer targeted, the program it
// produced, a bisimulation witness relating the two, and — when proof
// logging was on — the DRAT bundle for the hardest UNSAT query. Failures
// to build any half are recorded inside the certificate rather than
// failing the compile: a missing witness is an unverifiable result, and
// it is the checker's job (not the compiler's) to refuse it.
func buildCertificate(orig, eff *pir.Spec, profile hw.Profile, unroll int, prog *tcam.Program, proof *QueryDump) *cert.Certificate {
	c := &cert.Certificate{
		Version: cert.Version,
		Spec:    orig.Name,
		SpecSHA: specSHA(orig),
		Profile: profile.Name,
		Arch:    profile.Arch.String(),
		Unroll:  unroll,
	}
	var err error
	if c.Effective, err = cert.EncodeSpecJSON(eff); err != nil {
		c.Error = fmt.Sprintf("encoding effective spec: %v", err)
		return c
	}
	if c.Program, err = prog.EncodeJSON(); err != nil {
		c.Error = fmt.Sprintf("encoding program: %v", err)
		return c
	}
	w, err := cert.BuildWitness(eff, prog)
	if err != nil {
		c.Error = fmt.Sprintf("building witness: %v", err)
		return c
	}
	c.Witness = w
	if proof != nil {
		c.Proof = &cert.ProofBundle{
			Skeleton:  proof.Skeleton,
			Budget:    proof.Budget,
			Examples:  proof.Examples,
			Status:    proof.Status,
			Conflicts: proof.Conflicts,
			DIMACS:    proof.DIMACS,
			DRAT:      proof.Proof,
		}
	}
	return c
}

// specSHA hashes the canonical P4 rendering of the input spec so a
// checker holding the same source file can pin the certificate to it.
// Specs that do not round-trip through P4 fall back to the pir String
// form; either way the hash is deterministic for a given spec value.
func specSHA(s *pir.Spec) string {
	text, err := p4.Print(s)
	if err != nil {
		text = s.String()
	}
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:])
}

// SpecSHA exposes the certificate's spec-hash computation so external
// checkers (hawkcheck) can recompute it from the input spec.
func SpecSHA(s *pir.Spec) string { return specSHA(s) }
