package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// randomSpec generates a small random loop-free parser specification:
// 2-4 states, 1-3 fields each, random select keys over own or earlier
// fields, random exact/masked rules. The shapes cover extraction-only
// states, defaults to accept/reject/state, and cross-state keys.
func randomSpec(rng *rand.Rand, id int) *pir.Spec {
	nStates := 2 + rng.Intn(3)
	var fields []pir.Field
	type stateFields struct{ names []string }
	perState := make([]stateFields, nStates)
	for s := 0; s < nStates; s++ {
		nf := 1 + rng.Intn(2)
		for f := 0; f < nf; f++ {
			name := fmt.Sprintf("h%d.f%d", s, f)
			w := 1 + rng.Intn(4)
			fields = append(fields, pir.Field{Name: name, Width: w})
			perState[s].names = append(perState[s].names, name)
		}
	}
	width := func(name string) int {
		for _, f := range fields {
			if f.Name == name {
				return f.Width
			}
		}
		return 0
	}

	randTarget := func(from int) pir.Target {
		// Forward-only so the spec stays loop-free; bias toward accept.
		switch r := rng.Intn(4); {
		case r == 0 && from+1 < nStates:
			return pir.To(from + 1 + rng.Intn(nStates-from-1))
		case r == 1:
			return pir.RejectTarget
		default:
			return pir.AcceptTarget
		}
	}

	states := make([]pir.State, nStates)
	for s := 0; s < nStates; s++ {
		st := pir.State{Name: fmt.Sprintf("s%d", s)}
		for _, fn := range perState[s].names {
			st.Extracts = append(st.Extracts, pir.Extract{Field: fn})
		}
		if rng.Intn(4) > 0 { // 3/4 of states select
			// Key over one own field, possibly plus one earlier field. The
			// earlier-field option only exists for the immediate previous
			// state so back-offsets stay path-independent.
			own := perState[s].names[rng.Intn(len(perState[s].names))]
			st.Key = append(st.Key, pir.WholeField(own, width(own)))
			if s == 1 && rng.Intn(2) == 0 {
				prev := perState[0].names[rng.Intn(len(perState[0].names))]
				st.Key = append(st.Key, pir.WholeField(prev, width(prev)))
			}
			kw := st.KeyWidth()
			nRules := 1 + rng.Intn(3)
			for r := 0; r < nRules; r++ {
				mask := pir.ExactRule(0, kw, pir.AcceptTarget).Mask
				if rng.Intn(3) == 0 && kw > 1 {
					mask &^= 1 << uint(rng.Intn(kw)) // wildcard one bit
				}
				st.Rules = append(st.Rules, pir.Rule{
					Value: rng.Uint64() & mask,
					Mask:  mask,
					Next:  randTarget(s),
				})
			}
		}
		st.Default = randTarget(s)
		states[s] = st
	}
	return pir.MustNew(fmt.Sprintf("rand%d", id), fields, states)
}

// TestRandomSpecsCompileCorrectly is the whole-compiler property test:
// every randomly generated specification either compiles to a verified-
// equivalent program or fails with a resource error — never silently
// produces a wrong parser.
func TestRandomSpecsCompileCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized compile sweep")
	}
	rng := rand.New(rand.NewSource(20260704))
	profiles := []hw.Profile{hw.Tofino(), hw.IPU()}
	const trials = 24
	for i := 0; i < trials; i++ {
		spec := randomSpec(rng, i)
		for _, p := range profiles {
			opts := DefaultOptions()
			opts.Timeout = 20 * time.Second
			res, err := Compile(spec, p, opts)
			if err != nil {
				// Resource exhaustion is acceptable; wrongness is not.
				t.Logf("spec %d on %s: %v\n%s", i, p.Name, err, spec)
				continue
			}
			v, verr := newVerifier(spec, DefaultOptions(), int64(i)+100)
			if verr != nil {
				t.Fatalf("spec %d: %v", i, verr)
			}
			if cex, found, _ := v.counterexample(res.Program); found {
				t.Fatalf("spec %d on %s: WRONG program on input %s\nspec:\n%s\nprogram:\n%s",
					i, p.Name, cex, spec, res.Program)
			}
			if err := p.Validate(res.Program); err != nil {
				t.Fatalf("spec %d on %s: invalid program: %v", i, p.Name, err)
			}
		}
	}
}

// TestRandomSpecsNarrowDevice stresses key splitting: the same random
// specs compiled for a 2-bit-key device.
func TestRandomSpecsNarrowDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized compile sweep")
	}
	rng := rand.New(rand.NewSource(42))
	profile := hw.Parameterized(2, 12, 64)
	for i := 0; i < 10; i++ {
		spec := randomSpec(rng, 1000+i)
		opts := DefaultOptions()
		opts.Timeout = 20 * time.Second
		res, err := Compile(spec, profile, opts)
		if err != nil {
			t.Logf("spec %d: %v", i, err)
			continue
		}
		if res.Resources.MaxKeyWidth > 2 {
			t.Fatalf("spec %d: key width %d > 2\n%s", i, res.Resources.MaxKeyWidth, res.Program)
		}
		v, verr := newVerifier(spec, DefaultOptions(), int64(i))
		if verr != nil {
			t.Fatal(verr)
		}
		if cex, found, _ := v.counterexample(res.Program); found {
			t.Fatalf("spec %d: wrong after split on %s\nspec:\n%s\nprogram:\n%s",
				i, cex, spec, res.Program)
		}
	}
}
