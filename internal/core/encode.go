package core

import (
	"fmt"
	"sort"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/bv"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/sat"
	"parserhawk/internal/solve"
	"parserhawk/internal/tcam"
)

// synthesizer is one synthesis subproblem: a skeleton's symbolic entry
// table encoded once over a persistent solving session. Test cases
// (input/output examples) are added incrementally by the CEGIS loop; each
// one appends the unrolled FSM-simulation circuit of Figure 9 evaluated on
// that concrete input, with the TCAM entry contents left symbolic.
//
// In the default incremental mode the table is encoded at the entry-budget
// ladder's cap and each rung k solves under the assumption "at most k
// entries enabled" (the CountLadder threshold literal), so learned clauses,
// variable activity, and every previously encoded counterexample carry
// across rungs. With Options.FreshEncode the old architecture applies: one
// synthesizer per rung with the budget baked in as a hard AtMostK.
type synthesizer struct {
	spec    *pir.Spec
	sk      *skeleton
	profile hw.Profile
	opts    Options
	budget  int // hard entry cap: the rung budget (FreshEncode) or the ladder cap

	sess    *solve.Session
	s       *bv.Solver
	ladder  []bv.Lit     // incremental mode: count thresholds over all enabled lits
	fed     int          // CEGIS examples already encoded
	entries [][]entryVar // [state][entry]
	targets int          // number of transition targets: len(states) + accept + reject

	// reported is the cumulative counter snapshot already attributed to a
	// finished rung. Each rung reports the movement past this mark and
	// advances it, so construction-time encoding lands in the first rung
	// and a shared session's effort is counted exactly once across rungs.
	reported SolverStats

	extractedFields []string // fields some skeleton state extracts, sorted
}

// entryVar holds one TCAM entry's symbolic content.
type entryVar struct {
	enabled bv.Lit
	value   bv.BV
	mask    bv.BV
	nextSel []bv.Lit // one-hot over targets
	// doExtract decides whether the entry performs its state's extraction.
	// Constant true for ordinary states; free for key-split chunk states,
	// where synthesis places the extraction somewhere along the chain.
	doExtract bv.Lit
}

const (
	// target indices appended after the skeleton states
	tgtAcceptOff = 0
	tgtRejectOff = 1
)

// newSynthesizer builds the symbolic entry table for a skeleton under a
// global entry budget (the rung budget in FreshEncode mode, the ladder cap
// otherwise).
func newSynthesizer(spec *pir.Spec, sk *skeleton, profile hw.Profile, opts Options, budget int) *synthesizer {
	sess := solve.New()
	if opts.QuerySink != nil || opts.LogProofs {
		sess = solve.NewRecording()
	}
	if opts.LogProofs {
		sess.LogProofs()
	}
	sy := &synthesizer{
		spec:    spec,
		sk:      sk,
		profile: profile,
		opts:    opts,
		budget:  budget,
		sess:    sess,
		s:       sess.Solver(),
		targets: len(sk.States) + 2,
	}
	seen := map[string]bool{}
	for _, ss := range sk.States {
		for _, e := range ss.Extracts {
			if !seen[e.Field] {
				seen[e.Field] = true
				sy.extractedFields = append(sy.extractedFields, e.Field)
			}
		}
	}

	var allEnabled []bv.Lit
	for si, ss := range sk.States {
		var evs []entryVar
		for ei := 0; ei < ss.MaxEntries; ei++ {
			ev := entryVar{enabled: sy.s.NewLit()}
			switch {
			case ss.KeyWidth == 0:
				ev.value = sy.s.Const(0, 0)
				ev.mask = sy.s.Const(0, 0)
			case len(ss.Candidates) > 0:
				// Opt4 (§6.4.1): the entry VALUE is chosen from the
				// specification's constant set — if a merging (V, M) exists
				// then (A_i, M) works for any covered constant A_i, so
				// restricting values loses nothing. The MASK stays symbolic
				// (§6.4.2 searches masks, optionally in parallel).
				sel := make([]bv.Lit, len(ss.Candidates))
				vals := make([]bv.BV, len(ss.Candidates))
				for ci, c := range ss.Candidates {
					sel[ci] = sy.s.NewLit()
					vals[ci] = sy.s.Const(c.Value, ss.KeyWidth)
				}
				sy.s.ExactlyOne(sel)
				ev.value = sy.s.SelectBV(sel, vals)
				ev.mask = sy.s.NewBV(ss.KeyWidth)
			default:
				// Naive encoding: free symbolic constants of key width —
				// the 2^KW-per-constant search space of §6.
				ev.value = sy.s.NewBV(ss.KeyWidth)
				ev.mask = sy.s.NewBV(ss.KeyWidth)
			}
			ev.nextSel = make([]bv.Lit, sy.targets)
			for t := range ev.nextSel {
				ev.nextSel[t] = sy.s.NewLit()
			}
			sy.s.ExactlyOne(ev.nextSel)
			if ss.OptionalExtract {
				ev.doExtract = sy.s.NewLit()
			} else {
				ev.doExtract = sy.s.True()
			}
			// Architectural and structural target restrictions: pipelined
			// devices move strictly forward; key-split continuation chunks
			// are only enterable from the previous chunk of their chain
			// (the chain knowledge comes from the §6.4.3 analysis, so the
			// naive mode searches without it).
			for t := 0; t < len(sk.States); t++ {
				tgt := &sk.States[t]
				allowed := sk.Loopy || t > si
				if opts.Opt4ConstantSynthesis && tgt.ChainLevel > 0 &&
					!(ss.ChainGroup == tgt.ChainGroup && ss.ChainLevel == tgt.ChainLevel-1) {
					allowed = false
				}
				if !allowed {
					sy.s.Assert(ev.nextSel[t].Not())
				}
			}
			allEnabled = append(allEnabled, ev.enabled)
			evs = append(evs, ev)
		}
		// Symmetry breaking: enabled entries form a prefix. (Skipped in the
		// naive encoding, whose search space the paper measures raw.)
		if opts.Opt4ConstantSynthesis {
			for ei := 1; ei < len(evs); ei++ {
				sy.s.Assert(sy.s.Implies(evs[ei].enabled, evs[ei-1].enabled))
			}
		}
		sy.entries = append(sy.entries, evs)
	}
	if opts.FreshEncode {
		// Old architecture: the budget is a hard cardinality constraint, so
		// every rung re-encodes the whole instance.
		if budget < len(allEnabled) {
			sy.s.AtMostK(allEnabled, budget)
		}
	} else {
		// Incremental sessions: encode a full counting ladder once; rung k
		// becomes the assumption ladder[k].Not() ("not k+1 or more enabled"),
		// so climbing the budget ladder swaps one assumption literal instead
		// of rebuilding and re-bit-blasting the instance.
		sy.ladder = sy.s.CountLadder(allEnabled)
	}
	return sy
}

// solveAt runs the SAT search for one entry-budget rung; cancel aborts
// long searches. In incremental mode the budget is applied as a scoped
// assumption over the counting ladder; in FreshEncode mode the budget was
// baked in at construction and must match.
func (sy *synthesizer) solveAt(budget int, cancel func() bool) sat.Status {
	if sy.opts.FreshEncode {
		if budget != sy.budget {
			panic("core: FreshEncode synthesizer solved at a different budget than it encodes")
		}
		return sy.sess.Solve(cancel)
	}
	if budget < len(sy.ladder) {
		scope := sy.sess.Assume(sy.ladder[budget].Not())
		defer scope.Drop()
	}
	return sy.sess.Solve(cancel)
}

// conf is one concrete (state, cursor) configuration during simulation of
// a test input.
type conf struct {
	state int
	pos   int
}

// matchCircuit caches the priority-match circuitry for one (state, key
// value) pair: the fired formula per entry, the no-entry-matched formula,
// any-fired, and the per-target transition formula. Many configurations
// share key values (zero padding, common prefixes), so caching keeps the
// unrolled circuit compact.
type matchCircuit struct {
	noneMatched  bv.Lit
	firedExtract bv.Lit   // some entry fired with its extraction enabled
	goExtract    []bv.Lit // per target: fired, extraction performed
	goPass       []bv.Lit // per target: fired, cursor untouched
}

func (sy *synthesizer) matchAt(cache map[matchKey]*matchCircuit, state int, kv uint64) *matchCircuit {
	k := matchKey{state, kv}
	if mc, ok := cache[k]; ok {
		return mc
	}
	s := sy.s
	ss := &sy.sk.States[state]
	evs := sy.entries[state]
	mc := &matchCircuit{
		goExtract: make([]bv.Lit, sy.targets),
		goPass:    make([]bv.Lit, sy.targets),
	}
	noneSoFar := s.True()
	firedExtract := s.False()
	keyBV := s.Const(kv, ss.KeyWidth)
	fired := make([]bv.Lit, len(evs))
	for ei, ev := range evs {
		m := s.And(ev.enabled, s.MaskedEq(keyBV, ev.mask, ev.value))
		fired[ei] = s.And(noneSoFar, m)
		noneSoFar = s.And(noneSoFar, m.Not())
		firedExtract = s.Or(firedExtract, s.And(fired[ei], ev.doExtract))
	}
	mc.noneMatched = noneSoFar
	mc.firedExtract = firedExtract
	for t := 0; t < sy.targets; t++ {
		goX, goP := s.False(), s.False()
		for ei, ev := range evs {
			hit := s.And(fired[ei], ev.nextSel[t])
			goX = s.Or(goX, s.And(hit, ev.doExtract))
			goP = s.Or(goP, s.And(hit, ev.doExtract.Not()))
		}
		mc.goExtract[t] = goX
		mc.goPass[t] = goP
	}
	cache[k] = mc
	return mc
}

type matchKey struct {
	state int
	kv    uint64
}

// addTestCase appends the simulation circuit for one input/expected-output
// example and asserts observational equivalence.
func (sy *synthesizer) addTestCase(input bitstream.Bits, expected pir.Result) error {
	s := sy.s
	maxIter := sy.maxIterations(input)
	maxPos := sy.spec.MaxConsumedBits(maxIter) + 1

	// at[c] is the formula "execution is in configuration c".
	at := map[conf]bv.Lit{{state: 0, pos: 0}: s.True()}
	accAny := s.False()
	rejAny := s.False()
	cache := map[matchKey]*matchCircuit{}

	// Per-field running dict state.
	ext := map[string]bv.Lit{} // field extracted so far
	okv := map[string]bv.Lit{} // last extracted value matches expectation
	for _, f := range sy.extractedFields {
		ext[f] = s.False()
		okv[f] = s.False()
	}

	for iter := 0; iter < maxIter && len(at) > 0; iter++ {
		next := map[conf]bv.Lit{}
		hitNow := map[string]bv.Lit{}
		okNow := map[string]bv.Lit{}
		for _, f := range sy.extractedFields {
			hitNow[f] = s.False()
			okNow[f] = s.False()
		}
		for _, c := range sortedConfs(at) {
			atLit := at[c]
			ss := &sy.sk.States[c.state]
			kv := sy.keyValue(ss, input, c.pos)
			width, vbWidth, err := sy.stateWidth(ss, input, c.pos)
			if err != nil {
				return err
			}
			mc := sy.matchAt(cache, c.state, kv)

			// No entry matched: the device rejects.
			rejAny = s.Or(rejAny, s.And(atLit, mc.noneMatched))

			// Transition bookkeeping: an extracting entry advances the
			// cursor, a pass-through entry leaves it in place.
			for t := 0; t < sy.targets; t++ {
				for _, via := range []struct {
					lit     bv.Lit
					advance int
				}{
					{mc.goExtract[t], width},
					{mc.goPass[t], 0},
				} {
					goT := s.And(atLit, via.lit)
					if goT == s.False() {
						continue
					}
					switch t {
					case len(sy.sk.States) + tgtAcceptOff:
						accAny = s.Or(accAny, goT)
					case len(sy.sk.States) + tgtRejectOff:
						rejAny = s.Or(rejAny, goT)
					default:
						nc := conf{state: t, pos: c.pos + via.advance}
						if nc.pos > maxPos {
							// An implementation that runs past every bit the
							// spec could consume is wrong anyway; treat as
							// rejection to bound the configuration space.
							rejAny = s.Or(rejAny, goT)
							continue
						}
						if old, ok := next[nc]; ok {
							next[nc] = s.Or(old, goT)
						} else {
							next[nc] = goT
						}
					}
				}
			}

			// Extraction effects (entries that fire with extraction enabled
			// deposit the state's fields).
			happened := s.And(atLit, mc.firedExtract)
			off := 0
			for _, e := range ss.Extracts {
				fld, _ := sy.spec.Field(e.Field)
				w := fld.Width
				if fld.Var {
					w = vbWidth
				}
				val := input.Slice(c.pos+off, w)
				off += w
				hitNow[e.Field] = s.Or(hitNow[e.Field], happened)
				if exp, ok := expected.Dict[e.Field]; ok && exp.Equal(val) {
					okNow[e.Field] = s.Or(okNow[e.Field], happened)
				}
			}
		}
		for _, f := range sy.extractedFields {
			ext[f] = s.Or(ext[f], hitNow[f])
			okv[f] = s.MuxLit(hitNow[f], okNow[f], okv[f])
		}
		at = next
	}

	// Configurations still live after maxIter iterations are rejected by
	// the device (Figure 6 exits after K table visits). Deterministic
	// order: the shape of this Or-chain influences CDCL search, and map
	// order would make compile times irreproducible.
	for _, c := range sortedConfs(at) {
		rejAny = s.Or(rejAny, at[c])
	}

	// Observational equivalence assertions (§4).
	s.Assert(s.Iff(accAny, s.Bool(expected.Accepted)))
	s.Assert(s.Iff(rejAny, s.Bool(expected.Rejected)))
	for _, f := range sy.extractedFields {
		if _, want := expected.Dict[f]; want {
			s.Assert(ext[f])
			s.Assert(okv[f])
		} else {
			s.Assert(ext[f].Not())
		}
	}
	// Fields the spec extracted but no skeleton state can produce make the
	// example unsatisfiable — that is a skeleton construction bug.
	for f := range expected.Dict {
		if _, ok := ext[f]; !ok {
			return fmt.Errorf("core: skeleton %s cannot extract field %q required by the spec", sy.sk.Name, f)
		}
	}
	return nil
}

// keyValue evaluates a skeleton state's (concrete) transition key on input
// with the cursor at pos. Windows before position zero never occur on
// valid paths (back-references follow extractions); out-of-range bits read
// zero like the interpreters.
func (sy *synthesizer) keyValue(ss *skelState, input bitstream.Bits, pos int) uint64 {
	var kv uint64
	for _, p := range ss.Key {
		w := p.BitWidth()
		kv = kv<<uint(w) | input.Uint(pos+p.RelOff, w)
	}
	return kv
}

// stateWidth computes how many bits the state's extraction consumes at a
// given cursor position, resolving varbit lengths against the input.
func (sy *synthesizer) stateWidth(ss *skelState, input bitstream.Bits, pos int) (total, vbWidth int, err error) {
	if !ss.HasVarbit {
		return ss.StaticWidth, 0, nil
	}
	off := 0
	for _, e := range ss.Extracts {
		fld, _ := sy.spec.Field(e.Field)
		if !fld.Var {
			off += fld.Width
			continue
		}
		if e.LenField == "" {
			return 0, 0, fmt.Errorf("core: varbit field %q lacks a length", e.Field)
		}
		lenOff := -1
		scan := 0
		for _, e2 := range ss.Extracts {
			if e2.Field == e.LenField {
				lenOff = scan
				break
			}
			f2, _ := sy.spec.Field(e2.Field)
			scan += f2.Width
		}
		if lenOff < 0 {
			return 0, 0, fmt.Errorf("core: varbit length field %q must be extracted in the same state", e.LenField)
		}
		lf, _ := sy.spec.Field(e.LenField)
		n := int(input.Uint(pos+lenOff, lf.Width))*e.LenScale + e.LenBias
		if n < 0 {
			n = 0
		}
		if n > fld.Width {
			n = fld.Width
		}
		return off + n, n, nil
	}
	return off, 0, nil
}

// maxIterations bounds the unrolled simulation circuit for one input:
// loop-free skeletons need at most one visit per state; loopy ones are
// bounded by how many extractions the input can feed plus slack for
// extraction-free states.
func (sy *synthesizer) maxIterations(input bitstream.Bits) int {
	if !sy.sk.Loopy {
		return len(sy.sk.States) + 1
	}
	minW := 1 << 30
	for _, ss := range sy.sk.States {
		if ss.StaticWidth > 0 && ss.StaticWidth < minW {
			minW = ss.StaticWidth
		}
	}
	if minW == 1<<30 || minW == 0 {
		minW = 1
	}
	k := len(input)/minW + len(sy.sk.States) + 2
	if k > pir.DefaultMaxIterations {
		k = pir.DefaultMaxIterations
	}
	return k
}

// extract materializes the solver model as a concrete TCAM program over
// the given spec and skeleton (which may be the original, unscaled pair —
// entry contents transfer unchanged because keys only involve
// control-relevant bits; key part windows are re-derived from the
// skeleton).
func (sy *synthesizer) extract(spec *pir.Spec, sk *skeleton) *tcam.Program {
	model := sy.s
	prog := &tcam.Program{Spec: spec}
	for si, ss := range sk.States {
		st := tcam.State{Table: 0, ID: si, Key: skelKeyParts(ss.Key)}
		for _, ev := range sy.entries[si] {
			if !model.Value(ev.enabled) {
				continue
			}
			e := tcam.Entry{
				Value: model.BVValue(ev.value),
				Mask:  model.BVValue(ev.mask),
			}
			if model.Value(ev.doExtract) {
				e.Extracts = append([]pir.Extract(nil), ss.Extracts...)
			}
			for t, sel := range ev.nextSel {
				if !model.Value(sel) {
					continue
				}
				switch t {
				case len(sk.States) + tgtAcceptOff:
					e.Next = tcam.AcceptTarget
				case len(sk.States) + tgtRejectOff:
					e.Next = tcam.RejectTarget
				default:
					e.Next = tcam.To(0, t)
				}
				break
			}
			st.Entries = append(st.Entries, e)
		}
		prog.States = append(prog.States, st)
	}
	return prog
}

// sortedConfs returns the configuration keys in deterministic order so
// circuit construction (and therefore solver behaviour) is reproducible.
func sortedConfs(at map[conf]bv.Lit) []conf {
	out := make([]conf, 0, len(at))
	for c := range at {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].state != out[b].state {
			return out[a].state < out[b].state
		}
		return out[a].pos < out[b].pos
	})
	return out
}

func skelKeyParts(parts []skelKeyPart) []pir.KeyPart {
	out := make([]pir.KeyPart, len(parts))
	for i, p := range parts {
		out[i] = p.KeyPart
	}
	return out
}
