package core_test

import (
	"errors"
	"testing"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/cert"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/tables"
)

// certCompile compiles one benchmark with certificates and proof logging
// on, skipping (not failing) on timeout so slow CI machines degrade
// gracefully; every completed compile must carry a checkable certificate.
func certCompile(t *testing.T, b benchdata.Benchmark, profile hw.Profile) *core.Result {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Timeout = 60 * time.Second
	opts.MaxIterations = b.MaxIterations
	opts.EmitCertificate = true
	opts.LogProofs = true
	res, err := core.Compile(b.Spec, profile, opts)
	if errors.Is(err, core.ErrTimeout) {
		t.Skipf("%s on %s: timed out", b.Name(), profile.Name)
	}
	if err != nil {
		t.Fatalf("%s on %s: %v", b.Name(), profile.Name, err)
	}
	return res
}

// TestCertificateEndToEnd compiles representative Table 3 benchmarks on
// both scaled targets and validates the emitted certificate exactly the
// way hawkcheck does: decode, self-check (witness + DRAT), pin the spec
// hash, and recompute the effective spec independently. The full-suite
// sweep runs in CI via hawkcheck -table3.
func TestCertificateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compilations are slow")
	}
	pick := map[string]bool{
		"Parse Ethernet":             true, // plain chain
		"Parse MPLS":                 true, // loop, unrolled on pipelined targets
		"Large tran key":             true, // key wider than the device's key limit
		"Multi-key (same pkt field)": true, // negative-skip lookahead
	}
	profiles := []hw.Profile{tables.TofinoScaled(), tables.IPUScaled()}
	for _, b := range benchdata.All() {
		if !pick[b.Family] || b.Variant != "" {
			continue
		}
		for _, profile := range profiles {
			b, profile := b, profile
			t.Run(b.Name()+"/"+profile.Name, func(t *testing.T) {
				t.Parallel()
				res := certCompile(t, b, profile)
				c := res.Certificate
				if c == nil {
					t.Fatal("no certificate emitted")
				}
				data, err := c.Encode()
				if err != nil {
					t.Fatal(err)
				}
				rt, err := cert.Decode(data)
				if err != nil {
					t.Fatal(err)
				}
				if err := rt.SelfCheck(); err != nil {
					t.Fatalf("certificate does not check: %v", err)
				}
				if got := core.SpecSHA(b.Spec); got != rt.SpecSHA {
					t.Fatalf("spec hash mismatch: cert %s, recomputed %s", rt.SpecSHA, got)
				}
				opts := core.DefaultOptions()
				opts.MaxIterations = b.MaxIterations
				eff, err := core.EffectiveSpec(b.Spec, profile, opts)
				if err != nil {
					t.Fatal(err)
				}
				effJSON, err := cert.EncodeSpecJSON(eff)
				if err != nil {
					t.Fatal(err)
				}
				// Normalize the certificate copy (Encode re-indents the
				// embedded raw JSON) by round-tripping it through the
				// structural decoder before comparing.
				certEff, err := cert.DecodeSpecJSON(rt.Effective)
				if err != nil {
					t.Fatal(err)
				}
				certEffJSON, err := cert.EncodeSpecJSON(certEff)
				if err != nil {
					t.Fatal(err)
				}
				if string(effJSON) != string(certEffJSON) {
					t.Fatalf("effective spec mismatch:\ncert: %s\nrecomputed: %s", certEffJSON, effJSON)
				}
			})
		}
	}
}

// TestCertificateProofBundle checks that a compile that climbed through at
// least one UNSAT rung attaches a strict-checkable DRAT bundle.
func TestCertificateProofBundle(t *testing.T) {
	if testing.Short() {
		t.Skip("compilations are slow")
	}
	// Large tran key needs key-splitting, so its ladder reliably climbs
	// through UNSAT rungs before succeeding — there is a proof to bundle.
	var bench benchdata.Benchmark
	for _, b := range benchdata.All() {
		if b.Family == "Large tran key" && b.Variant == "" {
			bench = b
		}
	}
	res := certCompile(t, bench, tables.TofinoScaled())
	c := res.Certificate
	if c == nil || c.Proof == nil {
		t.Skip("no UNSAT rung on this schedule; nothing to certify")
	}
	if c.Proof.Status != "unsat" {
		t.Fatalf("proof bundle from a %q solve", c.Proof.Status)
	}
	if err := cert.CheckDRAT(c.Proof.DIMACS, c.Proof.DRAT, cert.Strict); err != nil {
		// Tolerant is the documented bar (imports are axioms); strict
		// failures are fine only if an import was involved.
		if terr := cert.CheckDRAT(c.Proof.DIMACS, c.Proof.DRAT, cert.Tolerant); terr != nil {
			t.Fatalf("proof bundle does not check: %v", terr)
		}
	}
}

// TestCertificateMutationsFail feeds seeded corruptions of a valid
// certificate to the checker and requires every one to be rejected — the
// negative half of the certify CI job, kept here at unit scale.
func TestCertificateMutationsFail(t *testing.T) {
	if testing.Short() {
		t.Skip("compilations are slow")
	}
	var bench benchdata.Benchmark
	for _, b := range benchdata.All() {
		if b.Family == "Parse icmp" && b.Variant == "" {
			bench = b
		}
	}
	res := certCompile(t, bench, tables.TofinoScaled())
	muts, err := cert.FailingMutations(res.Certificate, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) == 0 {
		t.Fatal("no mutations produced")
	}
	for _, m := range muts {
		if m.Cert.SelfCheck() == nil {
			t.Errorf("mutation %s passed the checker", m.Name)
		}
	}
}
