package core

import (
	"context"
	"errors"
	"sync"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/sat"
)

// The portfolio scheduler replaces the one-goroutine-per-skeleton race:
// candidate skeletons form a work queue drained by Options.Workers
// goroutines, each ladder owning its own solve.Session. Idle workers run
// refuter probes (skeletonEngine.refute) against still-running ladders,
// sharing glue clauses with them through a per-skeleton sat.Exchange.
//
// Determinism contract. The scheduler may only act on facts that hold
// under every schedule:
//   - An authoritative ladder's search is never perturbed: its session
//     exports clauses but imports nothing, so each ladder's outcome is the
//     same function of (spec, skeleton, options) it is at -workers 1.
//   - A refuter UNSAT at the ladder cap with only the seed examples proves
//     the skeleton infeasible at every rung under every example set, so
//     recording ErrNoSolution and cancelling the ladder reproduces the
//     verdict the ladder would have reached.
//   - The shared best-cost bound cancels dominated work only through the
//     provably-cheapest rule, and the reduction is truncated to the index
//     prefix the sequential loop would have visited (see onSuccess and
//     runPortfolio). Per-skeleton entry lower bounds must NOT prune
//     siblings, even though it looks safe: post-synthesis folding
//     (foldSingletonStates) can shrink a model below its skeleton's
//     pre-fold lower bound, so a "dominated" skeleton can still win the
//     reduction. The sequential loop runs every skeleton for exactly this
//     reason, and the portfolio must match it.
//   - The reduction itself runs in skeleton-index order with a strict
//     "cheaper" comparison, so ties resolve to the lowest index no matter
//     which ladder finished first.

// ladderProducerID is the Exchange producer id reserved for a skeleton's
// authoritative ladder session; refuter probes use 1+ordinal.
const ladderProducerID = 0

// maxRefutersPerSkeleton bounds concurrent refuter probes per ladder; more
// clones of the same two-example formula hit diminishing returns fast.
const maxRefutersPerSkeleton = 2

// attemptOut is one skeleton attempt's contribution to the reduction.
type attemptOut struct {
	res    *Result
	solver SolverStats
	err    error
}

type portfolioInput struct {
	spec, effOrig, effSynth *pir.Spec
	origSks, synthSks       []skeleton
	profile                 hw.Profile
	opts                    Options
	workers                 int
	provablyCheapest        func(*Result) bool

	// memo/keys, when both non-nil, enable the cross-compile tiers: keys
	// holds one tier-2 and one tier-3 key per skeleton (empty string =
	// unkeyable, skip memoization for that skeleton). See internal/core/memo.go.
	memo Memo
	keys *memoKeys
}

type skelPhase int

const (
	skelPending skelPhase = iota
	skelRunning
	skelDone
	skelSkipped // never started: dominated or made moot by a cheapest result
)

type portfolio struct {
	in  portfolioInput
	ctx context.Context

	mu   sync.Mutex
	cond *sync.Cond

	engs    []*skeletonEngine
	lows    []int
	caps    []int
	phase   []skelPhase
	ctxs    []context.Context
	cancels []context.CancelFunc
	outs    []*attemptOut
	pools   []*sat.Exchange

	cursor      int // first index that may still be pending
	pendingN    int
	laddersLive int
	refLive     []int  // concurrent refuters per skeleton
	refSeq      []int  // refuters ever launched per skeleton
	noMoreRef   []bool // a probe came back SAT; re-probing cannot help
	refuted     []bool

	stopNew bool // a provably-cheapest result ended the race

	stats PortfolioStats
}

// runPortfolio drains the skeleton queue on in.workers goroutines and
// returns the started attempts in skeleton-index order (skipped skeletons
// contribute nothing, exactly like the sequential loop's early break).
func runPortfolio(ctx context.Context, in portfolioInput) ([]attemptOut, PortfolioStats) {
	n := len(in.origSks)
	p := &portfolio{
		in:        in,
		ctx:       ctx,
		engs:      make([]*skeletonEngine, n),
		lows:      make([]int, n),
		caps:      make([]int, n),
		phase:     make([]skelPhase, n),
		ctxs:      make([]context.Context, n),
		cancels:   make([]context.CancelFunc, n),
		outs:      make([]*attemptOut, n),
		pools:     make([]*sat.Exchange, n),
		refLive:   make([]int, n),
		refSeq:    make([]int, n),
		noMoreRef: make([]bool, n),
		refuted:   make([]bool, n),
		pendingN:  n,
	}
	p.cond = sync.NewCond(&p.mu)
	p.stats.Workers = in.workers
	for i := 0; i < n; i++ {
		p.engs[i], p.lows[i], p.caps[i] = newSkeletonEngine(
			in.spec, in.effOrig, in.effSynth, &in.origSks[i], &in.synthSks[i], in.profile, in.opts)
		p.ctxs[i], p.cancels[i] = context.WithCancel(ctx)
		// Tier-2 memo hit: a previous compile proved this skeleton's cap
		// rung solver-UNSAT, so its ladder can only end in ErrNoSolution —
		// record that verdict without starting it. The attempt set (and
		// hence the reduction) is identical to the un-memoized run.
		if p.memoKey(i, tierUnsat) != "" && in.memo.SkeletonUnsat(p.memoKey(i, tierUnsat)) {
			p.phase[i] = skelDone
			p.outs[i] = &attemptOut{err: ErrNoSolution}
			p.pendingN--
			p.stats.SkeletonsMemoSkipped++
			continue
		}
		if !in.opts.NoExchange && !in.opts.FreshEncode {
			p.pools[i] = sat.NewExchange(0)
			p.engs[i].exchange = p.pools[i]
			// Tier-3 warm start: seed the pool with glue clauses a previous
			// run of this exact formula exported. Ladders attach export-only,
			// so seeding only ever accelerates refuter probes — the
			// authoritative search is untouched.
			if key := p.memoKey(i, tierGlue); key != "" {
				p.pools[i].Seed(in.memo.GlueClauses(key))
			}
		}
	}

	// Wake waiting workers when the compile context dies, so pending work
	// drains as canceled instead of blocking on a ladder that will never
	// broadcast.
	watcherDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		case <-watcherDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < in.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.work()
		}()
	}
	wg.Wait()
	close(watcherDone)
	for i := range p.cancels {
		p.cancels[i]()
	}

	// Truncate to the prefix the sequential loop would have visited: it
	// stops after the first (lowest-index) provably-cheapest success, so
	// results beyond that index — even ones whose ladders happened to
	// finish first — must not reach the reduction. Every index up to the
	// cut has run to completion (cancellation only ever targets higher
	// indices), so the prefix is exactly the sequential attempt set.
	cut := n
	for i := 0; i < n; i++ {
		if o := p.outs[i]; o != nil && o.err == nil && in.provablyCheapest(o.res) {
			cut = i + 1
			break
		}
	}
	var outs []attemptOut
	for i := 0; i < cut; i++ {
		if p.outs[i] != nil {
			outs = append(outs, *p.outs[i])
		}
	}
	for i, pool := range p.pools {
		st := pool.Stats()
		p.stats.ExchangePublished += st.Published
		p.stats.ExchangeCollected += st.Collected
		p.stats.ExchangeDropped += st.Dropped
		p.stats.ExchangeSeeded += st.Seeded
		// Tier-3 store: persist the clauses this run learned at or below the
		// seed-example epoch — the only ones a future run's consumers are
		// guaranteed to have the examples for.
		if key := p.memoKey(i, tierGlue); key != "" {
			if cls := pool.Export(seedExampleCount); len(cls) > 0 {
				in.memo.RecordGlueClauses(key, cls)
			}
		}
	}
	return outs, p.stats
}

// Memo tier selectors for memoKey.
const (
	tierUnsat = 2
	tierGlue  = 3
)

// memoKey returns skeleton i's key in the given memo tier, or "" when
// memoization does not apply (no memo attached, spec unkeyable, or the
// skeleton itself unkeyable).
func (p *portfolio) memoKey(i int, tier int) string {
	if p.in.memo == nil || p.in.keys == nil {
		return ""
	}
	if tier == tierUnsat {
		return p.in.keys.tier2[i]
	}
	return p.in.keys.tier3[i]
}

// recordUnsat files skeleton idx's proven cap-level UNSAT in the tier-2
// memo. Lock may be held; the memo synchronizes itself.
func (p *portfolio) recordUnsat(idx int) {
	if key := p.memoKey(idx, tierUnsat); key != "" {
		p.in.memo.RecordSkeletonUnsat(key)
	}
}

type jobKind int

const (
	jobNone jobKind = iota
	jobLadder
	jobRefuter
)

func (p *portfolio) work() {
	for {
		kind, idx, ord := p.nextJob()
		switch kind {
		case jobNone:
			return
		case jobLadder:
			p.runLadder(idx)
		case jobRefuter:
			p.runRefuter(idx, ord)
		}
	}
}

// nextJob blocks until a ladder or refuter assignment is available, or
// until the portfolio has nothing left to do.
func (p *portfolio) nextJob() (jobKind, int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		// A dead compile context drains the still-pending ladders as
		// canceled attempts without running them — the sequential loop
		// likewise visits every skeleton after a deadline and records the
		// immediate errCanceled.
		if p.ctx.Err() != nil && p.pendingN > 0 {
			for i := p.cursor; i < len(p.phase); i++ {
				if p.phase[i] == skelPending {
					p.phase[i] = skelDone
					p.outs[i] = &attemptOut{err: errCanceled}
					p.pendingN--
				}
			}
		}
		if i := p.takeLadder(); i >= 0 {
			return jobLadder, i, 0
		}
		if p.pendingN == 0 && p.laddersLive == 0 {
			return jobNone, 0, 0
		}
		if t := p.refuterTarget(); t >= 0 {
			p.refLive[t]++
			ord := p.refSeq[t]
			p.refSeq[t]++
			p.stats.RefutersRun++
			return jobRefuter, t, ord
		}
		p.cond.Wait()
	}
}

// takeLadder claims the lowest-index pending skeleton, if any. Lock held.
func (p *portfolio) takeLadder() int {
	for ; p.cursor < len(p.phase); p.cursor++ {
		if p.phase[p.cursor] == skelPending {
			i := p.cursor
			p.cursor++
			p.phase[i] = skelRunning
			p.pendingN--
			p.laddersLive++
			p.stats.LaddersRun++
			return i
		}
	}
	return -1
}

// refuterTarget picks the running ladder most worth probing: the one with
// the widest budget span (the most rungs a single cap-level UNSAT would
// skip), lowest index on ties. Single-rung ladders are not probed — the
// probe would just duplicate the ladder's only query. Lock held.
func (p *portfolio) refuterTarget() int {
	best, span := -1, 0
	for i := range p.phase {
		if p.phase[i] != skelRunning || p.refuted[i] || p.noMoreRef[i] {
			continue
		}
		if p.refLive[i] >= maxRefutersPerSkeleton {
			continue
		}
		if s := p.caps[i] - p.lows[i]; s > 0 && (best < 0 || s > span) {
			best, span = i, s
		}
	}
	return best
}

func (p *portfolio) runLadder(idx int) {
	eng := p.engs[idx]
	res, solver, err := eng.runLadder(p.ctxs[idx], p.lows[idx], p.caps[idx])

	p.mu.Lock()
	defer p.mu.Unlock()
	p.laddersLive--
	if p.phase[idx] == skelRunning {
		p.phase[idx] = skelDone
	}
	p.cancels[idx]() // this skeleton's refuters have nothing left to prove
	if p.outs[idx] != nil {
		// A refuter settled this skeleton's verdict first (ErrNoSolution);
		// keep it and fold the canceled ladder's effort in.
		p.outs[idx].solver.Add(solver)
	} else {
		p.outs[idx] = &attemptOut{res: res, solver: solver, err: err}
		if err == nil {
			p.onSuccess(idx, res)
		} else if errors.Is(err, ErrNoSolution) && eng.capUnsat {
			p.recordUnsat(idx)
		}
	}
	p.cond.Broadcast()
}

// onSuccess applies the shared best-cost bound after a ladder win: a result
// at the portfolio's entry lower bound cancels every higher-index sibling,
// mirroring the sequential loop's early break. Lock held.
//
// Only higher-index work is dropped, and lower-index ladders run to
// completion: because skeletons are claimed in index order, every index
// ≤ idx has already started, and the collection step truncates the
// reduction to the prefix ending at the lowest provably-cheapest index —
// exactly the set of attempts -workers 1 performs. A skeleton whose result
// is already in (phase done) but whose index is beyond that prefix is
// discarded there, not here, so the outcome does not depend on whether its
// ladder happened to beat the winner to the finish line.
func (p *portfolio) onSuccess(idx int, res *Result) {
	if !p.in.provablyCheapest(res) {
		return
	}
	p.stopNew = true
	for j := idx + 1; j < len(p.phase); j++ {
		switch p.phase[j] {
		case skelPending:
			p.phase[j] = skelSkipped
			p.pendingN--
			p.stats.SkeletonsDominated++
		case skelRunning:
			if p.ctxs[j].Err() == nil {
				p.cancels[j]()
				p.stats.SkeletonsDominated++
			}
		}
	}
}

func (p *portfolio) runRefuter(idx, ord int) {
	seed := p.in.opts.Seed + int64(1+idx*131+ord*17)
	status, solver := p.engs[idx].refuteStatus(p.ctxs[idx], p.caps[idx], seed, p.pools[idx], 1+ord)

	p.mu.Lock()
	defer p.mu.Unlock()
	p.refLive[idx]--
	p.stats.RefuterEffort.Add(solver)
	switch status {
	case sat.Sat:
		// The two-example formula is satisfiable at the cap: no clone of it
		// can ever answer UNSAT, so stop probing this skeleton.
		p.noMoreRef[idx] = true
	case sat.Unsat:
		if !p.refuted[idx] {
			p.refuted[idx] = true
			p.stats.SkeletonsRefuted++
			if p.outs[idx] == nil {
				// The verdict the ladder would have ground out rung by rung.
				p.outs[idx] = &attemptOut{err: ErrNoSolution}
			}
			p.cancels[idx]()
			// A refuter kill is a genuine solver UNSAT at the cap (strict
			// DRAT-checked when proofs are on) — exactly the tier-2 fact.
			p.recordUnsat(idx)
		}
	}
	p.cond.Broadcast()
}
