package core

import (
	"fmt"

	"parserhawk/internal/pir"
)

// FactorCommonSuffix implements the first future-work item of §8
// (Figure 23): when several states extract differently named fields that
// end in a structurally identical "common part" — same trailing widths,
// same select logic over those trailing bits, same targets — the parser
// can be rewritten to extract the individual prefixes in the original
// states and hand off to one shared state that extracts the common part
// and owns the single copy of the transition logic. The rewrite removes
// the duplicated TCAM entries that the per-state copies would cost.
//
// The transformation renames the factored trailing fields to a single
// shared field, so it is a cross-packet-definition optimization: callers
// opt in via Options.FactorCommonSuffixes or call this directly, and the
// output dictionary uses the shared field's name for the common part.
// ExplainFactoring reports what was merged.
func FactorCommonSuffix(spec *pir.Spec) (*pir.Spec, []Factoring, error) {
	type sig struct {
		keyShape string // trailing key structure relative to state end
		rules    string
		width    int
	}

	// A state is factorable when its entire key consists of slices of its
	// LAST extracted field (the "common" trailing field of Figure 23).
	classify := func(si int) (sig, bool) {
		st := &spec.States[si]
		if len(st.Extracts) == 0 || len(st.Key) == 0 || len(st.Rules) == 0 {
			return sig{}, false
		}
		last := st.Extracts[len(st.Extracts)-1]
		if last.LenField != "" {
			return sig{}, false // varbit suffixes are not shareable
		}
		f, _ := spec.Field(last.Field)
		keyShape := ""
		for _, p := range st.Key {
			if p.Lookahead || p.Field != last.Field {
				return sig{}, false
			}
			keyShape += fmt.Sprintf("[%d:%d)", p.Lo, p.Hi)
		}
		rules := ""
		for _, r := range st.Rules {
			rules += fmt.Sprintf("%x/%x->%v;", r.Value&r.Mask, r.Mask, r.Next)
		}
		rules += fmt.Sprintf("d->%v", st.Default)
		return sig{keyShape: keyShape, rules: rules, width: f.Width}, true
	}

	groups := map[sig][]int{}
	var order []sig
	for si := range spec.States {
		s, ok := classify(si)
		if !ok {
			continue
		}
		if _, seen := groups[s]; !seen {
			order = append(order, s)
		}
		groups[s] = append(groups[s], si)
	}

	var facts []Factoring
	factorable := map[int]sig{}
	for _, s := range order {
		if len(groups[s]) < 2 {
			continue
		}
		f := Factoring{CommonWidth: s.width}
		for _, si := range groups[s] {
			f.States = append(f.States, spec.States[si].Name)
			last := spec.States[si].Extracts[len(spec.States[si].Extracts)-1]
			f.FactoredFields = append(f.FactoredFields, last.Field)
			factorable[si] = s
		}
		facts = append(facts, f)
	}
	if len(facts) == 0 {
		return spec, nil, nil
	}

	// Build the rewritten spec: per group, one shared state; member states
	// lose their trailing extraction and transition logic and default into
	// the shared state.
	newFields := append([]pir.Field(nil), spec.Fields...)
	states := make([]pir.State, len(spec.States))
	for i := range spec.States {
		st := spec.States[i]
		states[i] = pir.State{
			Name:     st.Name,
			Extracts: append([]pir.Extract(nil), st.Extracts...),
			Key:      append([]pir.KeyPart(nil), st.Key...),
			Rules:    append([]pir.Rule(nil), st.Rules...),
			Default:  st.Default,
		}
	}
	sharedIdx := map[string]int{}
	for gi, s := range order {
		members := groups[s]
		if len(members) < 2 {
			continue
		}
		commonField := fmt.Sprintf("common%d.part", gi)
		newFields = append(newFields, pir.Field{Name: commonField, Width: s.width})
		// The shared state replicates the first member's logic over the
		// shared field.
		first := &spec.States[members[0]]
		shared := pir.State{
			Name:     fmt.Sprintf("common%d", gi),
			Extracts: []pir.Extract{{Field: commonField}},
			Default:  first.Default,
		}
		for _, p := range first.Key {
			shared.Key = append(shared.Key, pir.FieldSlice(commonField, p.Lo, p.Hi))
		}
		shared.Rules = append(shared.Rules, first.Rules...)
		states = append(states, shared)
		sharedIdx[shared.Name] = len(states) - 1
		target := pir.To(len(states) - 1)
		for _, si := range members {
			states[si].Extracts = states[si].Extracts[:len(states[si].Extracts)-1]
			states[si].Key = nil
			states[si].Rules = nil
			states[si].Default = target
		}
	}
	out, err := pir.New(spec.Name+"-factored", newFields, states)
	if err != nil {
		return nil, nil, fmt.Errorf("core: factoring produced invalid spec: %w", err)
	}
	return out, facts, nil
}

// Factoring describes one group of states whose common trailing structure
// was shared (Figure 23).
type Factoring struct {
	States         []string // the states that now share a common state
	FactoredFields []string // the per-state fields replaced by the shared one
	CommonWidth    int
}
