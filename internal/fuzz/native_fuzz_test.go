package fuzz

// Native go test -fuzz targets. They run their seed corpora (f.Add plus
// testdata/fuzz/<Name>/) on every plain `go test`, and explore with the
// coverage-guided engine under `go test -fuzz=FuzzSpecInterp` /
// `-fuzz=FuzzCanonicalize`. Unlike the differential campaign (which needs a
// compile per spec), these targets exercise only front-end invariants —
// parse, interpret, canonicalize — so the engine gets millions of
// executions per minute.

import (
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
)

const fuzzSeedSrcA = `
header eth { bit<4> t; }
header v4  { bit<3> p; }
parser SeedA {
    state start {
        extract(eth);
        transition select(eth.t) {
            4       : parse_v4;
            default : accept;
        }
    }
    state parse_v4 { extract(v4); transition accept; }
}
`

const fuzzSeedSrcB = `
header tag { bit<2> kind; bit<2> more; }
header opt { bit<3> v; }
parser SeedB {
    state start {
        extract(tag);
        transition select(tag.kind, tag.more) {
            (1, 1)  : parse_opt;
            (2, 0)  : reject;
            default : accept;
        }
    }
    state parse_opt { extract(opt); transition start; }
}
`

const fuzzSeedSrcC = `
header h { bit<2> n; }
header b { bit<4> body; }
parser SeedC {
    state start {
        extract(h);
        transition select(lookahead<bit<1>>()) {
            1       : parse_b;
            default : accept;
        }
    }
    state parse_b { extract(b, h.n * 2); transition accept; }
}
`

// FuzzSpecInterp fuzzes the §4 reference interpreter: any source the P4
// front end accepts must interpret without panicking, and Run, RunTrace,
// and the consumption bound must stay mutually consistent.
func FuzzSpecInterp(f *testing.F) {
	f.Add(fuzzSeedSrcA, []byte{0x4a}, 0)
	f.Add(fuzzSeedSrcB, []byte{0x55, 0xaa}, 8)
	f.Add(fuzzSeedSrcC, []byte{0xff, 0x00}, 3)
	f.Fuzz(func(t *testing.T, src string, packet []byte, maxIter int) {
		spec, err := p4.ParseSpec(src)
		if err != nil {
			t.Skip()
		}
		if maxIter < 0 || maxIter > 4*pir.DefaultMaxIterations {
			maxIter = 0
		}
		in := bitstream.FromBytes(packet)
		res := spec.Run(in, maxIter)
		traced, trace := spec.RunTrace(in, maxIter)

		if res.Accepted && res.Rejected {
			t.Fatalf("both accepted and rejected: %+v", res)
		}
		if !res.Same(traced) || res.Accepted != traced.Accepted || res.Rejected != traced.Rejected {
			t.Fatalf("Run and RunTrace disagree: %+v vs %+v", res, traced)
		}
		if len(trace) != len(traced.Path) {
			t.Fatalf("trace length %d != path length %d", len(trace), len(traced.Path))
		}
		for i, step := range trace {
			if step.State != traced.Path[i] {
				t.Fatalf("trace step %d attributes state %d, path says %d", i, step.State, traced.Path[i])
			}
			if step.State < 0 || step.State >= len(spec.States) {
				t.Fatalf("trace step %d: state %d out of range", i, step.State)
			}
			if nr := len(spec.States[step.State].Rules); step.Rule < -1 || step.Rule >= nr {
				t.Fatalf("trace step %d: rule %d out of range [-1,%d)", i, step.Rule, nr)
			}
		}
		if bound := spec.MaxConsumedBits(maxIter); res.Consumed > bound {
			t.Fatalf("consumed %d bits, static bound says at most %d", res.Consumed, bound)
		}
	})
}

// FuzzCanonicalize fuzzes the spec canonicalizer: the canonical form must
// validate, canonicalization must be idempotent, and the witness must map
// canonical executions back to the original's observable behavior.
func FuzzCanonicalize(f *testing.F) {
	f.Add(fuzzSeedSrcA, []byte{0x4a})
	f.Add(fuzzSeedSrcB, []byte{0x55, 0xaa})
	f.Add(fuzzSeedSrcC, []byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, src string, packet []byte) {
		spec, err := p4.ParseSpec(src)
		if err != nil {
			t.Skip()
		}
		canon, wit, err := pir.Canonicalize(spec)
		if err != nil {
			t.Fatalf("canonicalize rejected a parsed spec: %v", err)
		}
		if err := canon.Validate(); err != nil {
			t.Fatalf("canonical form does not validate: %v", err)
		}

		again, _, err := pir.Canonicalize(canon)
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		if canon.String() != again.String() {
			t.Fatalf("canonicalize not idempotent:\n%s\nvs\n%s", canon, again)
		}

		in := bitstream.FromBytes(packet)
		want := spec.Run(in, 0)
		got := canon.Run(in, 0)
		got.Dict = wit.OrigDict(got.Dict)
		if !got.Same(want) {
			t.Fatalf("canonical spec not equivalent on input %s:\norig %+v\ncanon %+v", in, want, got)
		}
	})
}
