package fuzz

import (
	"parserhawk/internal/pir"
)

// Property reports whether a candidate spec still exhibits the behaviour
// being minimized. Shrink only offers Validate-clean candidates, and the
// property must be deterministic (Check with a fixed Config.Seed is).
type Property func(*pir.Spec) bool

// Shrink delta-debugs spec down to a locally-minimal spec for which keep
// still holds: no single state, rule, extract, key part, or field can be
// removed without losing the behaviour. Every accepted step re-validated
// the property on the reduced spec, so the result is sound by
// construction — it is not inferred from the original divergence.
// maxChecks bounds property evaluations (<= 0 means 400); on exhaustion
// the best spec found so far is returned.
func Shrink(spec *pir.Spec, keep Property, maxChecks int) *pir.Spec {
	if maxChecks <= 0 {
		maxChecks = 400
	}
	checks := 0
	for {
		improved := false
		for _, cand := range candidates(spec) {
			if checks >= maxChecks {
				return spec
			}
			checks++
			if keep(cand) {
				spec = cand
				improved = true
				break // restart candidate generation from the smaller spec
			}
		}
		if !improved {
			return spec
		}
	}
}

// candidates enumerates every one-step reduction of spec that still passes
// pir validation, largest reductions first (whole states before single
// rules before extracts, key parts, and fields).
func candidates(spec *pir.Spec) []*pir.Spec {
	var out []*pir.Spec
	add := func(name string, fields []pir.Field, states []pir.State) {
		if c, err := pir.New(name, fields, states); err == nil {
			out = append(out, c)
		}
	}

	// Drop a state (never the start state), retargeting dangling edges to
	// the removed state's own default when possible — that preserves the
	// most behaviour — and to reject otherwise.
	for drop := 1; drop < len(spec.States); drop++ {
		name, fields, states := cloneSpec(spec)
		repl := states[drop].Default
		if repl.Kind == pir.ToState && repl.State == drop {
			repl = pir.RejectTarget
		}
		remap := func(t pir.Target) pir.Target {
			if t.Kind == pir.ToState && t.State == drop {
				t = repl // repl never points at drop itself
			}
			if t.Kind == pir.ToState && t.State > drop {
				t.State--
			}
			return t
		}
		states = append(states[:drop], states[drop+1:]...)
		for i := range states {
			for j := range states[i].Rules {
				states[i].Rules[j].Next = remap(states[i].Rules[j].Next)
			}
			states[i].Default = remap(states[i].Default)
		}
		add(name, fields, states)
	}

	// Drop a single rule.
	for si := range spec.States {
		for ri := range spec.States[si].Rules {
			name, fields, states := cloneSpec(spec)
			st := &states[si]
			st.Rules = append(st.Rules[:ri], st.Rules[ri+1:]...)
			add(name, fields, states)
		}
	}

	// Drop a single extract.
	for si := range spec.States {
		for ei := range spec.States[si].Extracts {
			name, fields, states := cloneSpec(spec)
			st := &states[si]
			st.Extracts = append(st.Extracts[:ei], st.Extracts[ei+1:]...)
			add(name, fields, states)
		}
	}

	// Drop a key part, re-projecting every rule's value and mask onto the
	// narrowed key (KeyValue concatenates parts MSB-first in order). When
	// the last part goes, the rules go with it: the state keeps only its
	// default transition.
	for si := range spec.States {
		for pi := range spec.States[si].Key {
			name, fields, states := cloneSpec(spec)
			st := &states[si]
			low := 0 // bits below the dropped part
			for _, p := range st.Key[pi+1:] {
				low += p.BitWidth()
			}
			w := st.Key[pi].BitWidth()
			st.Key = append(st.Key[:pi], st.Key[pi+1:]...)
			if len(st.Key) == 0 {
				st.Rules = nil
			} else {
				lowMask := uint64(1)<<uint(low) - 1
				for ri := range st.Rules {
					r := &st.Rules[ri]
					r.Value = r.Value>>uint(low+w)<<uint(low) | r.Value&lowMask
					r.Mask = r.Mask>>uint(low+w)<<uint(low) | r.Mask&lowMask
				}
			}
			add(name, fields, states)
		}
	}

	// Drop a field nothing references any more.
	for fi := range spec.Fields {
		if fieldReferenced(spec, spec.Fields[fi].Name) {
			continue
		}
		name, fields, states := cloneSpec(spec)
		fields = append(fields[:fi], fields[fi+1:]...)
		add(name, fields, states)
	}

	return out
}

func fieldReferenced(spec *pir.Spec, name string) bool {
	for si := range spec.States {
		st := &spec.States[si]
		for _, e := range st.Extracts {
			if e.Field == name || e.LenField == name {
				return true
			}
		}
		for _, p := range st.Key {
			if !p.Lookahead && p.Field == name {
				return true
			}
		}
	}
	return false
}
