package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"parserhawk/internal/pir"
)

// Mutate derives a random Validate-clean mutant of seed by applying `edits`
// random edits (rule value/mask bit flips, target rewires, rule
// duplication/deletion/priority swaps, default rewires, key-part splits).
// The returned trail describes the edits applied, for reproduction. Mutants
// that would change the seed's loop topology class (introduce a loop into a
// loop-free seed, or a zero-progress cycle the seed did not have) are
// rejected and retried: those leave the equivalence-contract envelope the
// seed corpus was validated under. Returns (nil, "") when no clean mutant
// emerged within the retry budget — rare, and callers just roll again.
func Mutate(rng *rand.Rand, seed *pir.Spec, edits int) (*pir.Spec, string) {
	if edits <= 0 {
		edits = 1
	}
	seedLoops := seed.HasLoop()
	seedZero := zeroProgressCycle(seed)
	for attempt := 0; attempt < 24; attempt++ {
		name, fields, states := cloneSpec(seed)
		var trail []string
		for e := 0; e < edits; e++ {
			op := ops[rng.Intn(len(ops))]
			if desc, ok := op(rng, fields, states); ok {
				trail = append(trail, desc)
			}
		}
		if len(trail) == 0 {
			continue
		}
		mut, err := pir.New(name+"_mut", fields, states)
		if err != nil {
			continue
		}
		if mut.HasLoop() != seedLoops {
			continue
		}
		if !seedZero && zeroProgressCycle(mut) {
			continue
		}
		return mut, strings.Join(trail, "; ")
	}
	return nil, ""
}

// mutOp edits fields/states in place; it reports a description of the edit
// and whether it applied (an op can be inapplicable, e.g. no keyed state).
type mutOp func(rng *rand.Rand, fields []pir.Field, states []pir.State) (string, bool)

var ops = []mutOp{opValueFlip, opMaskFlip, opRewireRule, opRewireDefault,
	opDupRule, opDropRule, opSwapRules, opSplitKeyPart}

// pickRuled returns a random state index with at least one rule, or -1.
func pickRuled(rng *rand.Rand, states []pir.State) int {
	var cands []int
	for i := range states {
		if len(states[i].Rules) > 0 {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[rng.Intn(len(cands))]
}

func keyWidth(st *pir.State) int {
	w := 0
	for _, p := range st.Key {
		w += p.BitWidth()
	}
	return w
}

func randomTarget(rng *rand.Rand, n int) pir.Target {
	switch rng.Intn(6) {
	case 0:
		return pir.AcceptTarget
	case 1:
		return pir.RejectTarget
	default:
		return pir.To(rng.Intn(n))
	}
}

func opValueFlip(rng *rand.Rand, _ []pir.Field, states []pir.State) (string, bool) {
	si := pickRuled(rng, states)
	if si < 0 {
		return "", false
	}
	st := &states[si]
	ri := rng.Intn(len(st.Rules))
	bit := rng.Intn(keyWidth(st))
	st.Rules[ri].Value ^= 1 << uint(bit)
	return fmt.Sprintf("flip value bit %d of %s/rule %d", bit, st.Name, ri), true
}

func opMaskFlip(rng *rand.Rand, _ []pir.Field, states []pir.State) (string, bool) {
	si := pickRuled(rng, states)
	if si < 0 {
		return "", false
	}
	st := &states[si]
	ri := rng.Intn(len(st.Rules))
	bit := rng.Intn(keyWidth(st))
	st.Rules[ri].Mask ^= 1 << uint(bit)
	return fmt.Sprintf("flip mask bit %d of %s/rule %d", bit, st.Name, ri), true
}

func opRewireRule(rng *rand.Rand, _ []pir.Field, states []pir.State) (string, bool) {
	si := pickRuled(rng, states)
	if si < 0 {
		return "", false
	}
	st := &states[si]
	ri := rng.Intn(len(st.Rules))
	t := randomTarget(rng, len(states))
	st.Rules[ri].Next = t
	return fmt.Sprintf("rewire %s/rule %d -> %v", st.Name, ri, t), true
}

func opRewireDefault(rng *rand.Rand, _ []pir.Field, states []pir.State) (string, bool) {
	si := rng.Intn(len(states))
	st := &states[si]
	t := randomTarget(rng, len(states))
	st.Default = t
	return fmt.Sprintf("rewire %s/default -> %v", st.Name, t), true
}

func opDupRule(rng *rand.Rand, _ []pir.Field, states []pir.State) (string, bool) {
	si := pickRuled(rng, states)
	if si < 0 {
		return "", false
	}
	st := &states[si]
	ri := rng.Intn(len(st.Rules))
	at := rng.Intn(len(st.Rules) + 1)
	r := st.Rules[ri]
	st.Rules = append(st.Rules, pir.Rule{})
	copy(st.Rules[at+1:], st.Rules[at:])
	st.Rules[at] = r
	return fmt.Sprintf("duplicate %s/rule %d at %d", st.Name, ri, at), true
}

func opDropRule(rng *rand.Rand, _ []pir.Field, states []pir.State) (string, bool) {
	si := pickRuled(rng, states)
	if si < 0 {
		return "", false
	}
	st := &states[si]
	ri := rng.Intn(len(st.Rules))
	st.Rules = append(st.Rules[:ri], st.Rules[ri+1:]...)
	return fmt.Sprintf("drop %s/rule %d", st.Name, ri), true
}

func opSwapRules(rng *rand.Rand, _ []pir.Field, states []pir.State) (string, bool) {
	var cands []int
	for i := range states {
		if len(states[i].Rules) >= 2 {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	st := &states[cands[rng.Intn(len(cands))]]
	ri := rng.Intn(len(st.Rules) - 1)
	st.Rules[ri], st.Rules[ri+1] = st.Rules[ri+1], st.Rules[ri]
	return fmt.Sprintf("swap %s/rules %d,%d", st.Name, ri, ri+1), true
}

// opSplitKeyPart splits one key part into two adjacent slices — semantics
// preserving on its own (KeyValue concatenates parts MSB-first), so it only
// matters composed with other edits or synthesis key-assembly paths.
func opSplitKeyPart(rng *rand.Rand, _ []pir.Field, states []pir.State) (string, bool) {
	type cand struct{ si, pi int }
	var cands []cand
	for i := range states {
		for j, p := range states[i].Key {
			if p.BitWidth() >= 2 {
				cands = append(cands, cand{i, j})
			}
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	c := cands[rng.Intn(len(cands))]
	st := &states[c.si]
	p := st.Key[c.pi]
	w := p.BitWidth()
	m := 1 + rng.Intn(w-1)
	hi, lo := p, p
	if p.Lookahead {
		hi.Width = m
		lo.Skip += m
		lo.Width = w - m
	} else {
		hi.Hi = p.Lo + m
		lo.Lo = p.Lo + m
	}
	st.Key = append(st.Key, pir.KeyPart{})
	copy(st.Key[c.pi+2:], st.Key[c.pi+1:])
	st.Key[c.pi] = hi
	st.Key[c.pi+1] = lo
	return fmt.Sprintf("split %s/key part %d at %d", st.Name, c.pi, m), true
}

// cloneSpec deep-copies a spec into the mutable (name, fields, states)
// triple pir.New wants, so edits never alias the immutable seed.
func cloneSpec(s *pir.Spec) (string, []pir.Field, []pir.State) {
	fields := append([]pir.Field(nil), s.Fields...)
	states := make([]pir.State, len(s.States))
	for i, st := range s.States {
		c := st
		c.Extracts = append([]pir.Extract(nil), st.Extracts...)
		c.Key = append([]pir.KeyPart(nil), st.Key...)
		c.Rules = append([]pir.Rule(nil), st.Rules...)
		states[i] = c
	}
	return s.Name, fields, states
}

// zeroProgressCycle reports whether the state graph has a cycle that can
// iterate without consuming input — every state on it can extract zero bits
// (no extracts, or only varbits whose length can resolve to zero). Such
// cycles exhaust the interpreter's iteration budget at different points for
// spec and program granularities, which is outside the equivalence contract
// the seed corpus is validated under, so Mutate refuses to introduce one.
func zeroProgressCycle(s *pir.Spec) bool {
	mayZero := make([]bool, len(s.States))
	for i := range s.States {
		z := true
		for _, e := range s.States[i].Extracts {
			if e.LenField == "" {
				z = false
				break
			}
		}
		mayZero[i] = z
	}
	// Cycle detection restricted to may-zero states.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(s.States))
	var visit func(i int) bool
	visit = func(i int) bool {
		color[i] = gray
		st := &s.States[i]
		step := func(t pir.Target) bool {
			if t.Kind != pir.ToState || !mayZero[t.State] {
				return false
			}
			switch color[t.State] {
			case gray:
				return true
			case white:
				return visit(t.State)
			}
			return false
		}
		for _, r := range st.Rules {
			if step(r.Next) {
				return true
			}
		}
		if step(st.Default) {
			return true
		}
		color[i] = black
		return false
	}
	for i := range s.States {
		if mayZero[i] && color[i] == white && visit(i) {
			return true
		}
	}
	return false
}
