// Package fuzz is ParserHawk's differential fuzzer. It mutates seed
// specifications (kept pir.Validate-clean), compiles each mutant through
// core.Compile, and confronts three independent oracles on random packets:
//
//  1. Spec(I) — the §4 reference interpretation of the specification
//     (unrolled to the compile's loop bound on devices that cannot loop,
//     matching the equivalence contract of internal/sim);
//  2. the synthesized TCAM program executed under device semantics
//     (condition-before-extract, internal/tcam);
//  3. SpecLint's SAT-certified verdicts — a rule certified shadowed
//     (PH002) must never fire, and a default certified dead (PH003) must
//     never be taken, on any observed execution of the spec.
//
// Any disagreement is a Divergence. Divergences shrink (Shrink) by
// delta-debugging over states, rules, extracts, key parts, and fields,
// re-validating the divergence at every step, and render as ready-to-commit
// benchdata regression fixtures (Divergence.Fixture).
package fuzz

import (
	"errors"
	"fmt"
	"math/rand"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/lint"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// Kind names the oracle pair a divergence separates.
type Kind string

// Divergence kinds.
const (
	// KindSemantics: the spec interpretation and the synthesized program
	// disagree on a packet (acceptance or extracted dictionary).
	KindSemantics Kind = "spec-vs-program"
	// KindLint: a SAT-certified lint verdict is refuted by an observed
	// execution of the spec.
	KindLint Kind = "lint-vs-observed"
)

// Outcome classifies one Check run.
type Outcome int

// Check outcomes. The Skip* values are not failures: mutants routinely
// wander outside the device's resources or into lint-rejected territory,
// and the campaign merely counts them.
const (
	OK Outcome = iota
	Diverged
	SkipLint       // error-severity lint diagnostics (core would reject)
	SkipNoSolution // no implementation fits the device resources
	SkipTimeout    // compile budget expired
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Diverged:
		return "diverged"
	case SkipLint:
		return "skip-lint"
	case SkipNoSolution:
		return "skip-no-solution"
	case SkipTimeout:
		return "skip-timeout"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config parameterizes Check and the campaign driver.
type Config struct {
	Profile hw.Profile
	// Options is the base compile configuration (timeout, optimizations,
	// workers). Check overrides MaxIterations per seed.
	Options core.Options
	// Packets is the number of random inputs checked per spec (default
	// 4096). Small input spaces are enumerated exhaustively instead.
	Packets int
	// Seed drives packet generation; a fixed seed makes Check
	// deterministic for a given spec and profile.
	Seed int64

	// CorruptProgram and CorruptLint seed defects into the two
	// implementation-side oracles, so regression tests can prove the
	// fuzzer catches what it claims to catch: the first mutates the
	// compiled program in place, the second rewrites the lint verdicts.
	// Both are nil in real campaigns.
	CorruptProgram func(*tcam.Program)
	CorruptLint    func(*pir.Spec, []lint.Diag) []lint.Diag
}

// Divergence is one confirmed oracle disagreement, with enough context to
// reproduce it: the exact spec, profile, packet, and both results.
type Divergence struct {
	Kind    Kind
	Spec    *pir.Spec
	Profile string
	// Trail records the mutation edits that produced Spec from its seed
	// ("" when the seed itself diverged).
	Trail      string
	Input      bitstream.Bits
	SpecResult pir.Result
	ProgResult pir.Result // KindSemantics only
	Claim      lint.Diag  // KindLint only: the refuted verdict
	Detail     string
}

func (d *Divergence) String() string {
	s := fmt.Sprintf("%s divergence on %q [%s]", d.Kind, d.Spec.Name, d.Profile)
	if d.Trail != "" {
		s += " after " + d.Trail
	}
	return s + ": " + d.Detail
}

// Check compiles spec for cfg.Profile and drives the three oracles over
// cfg.Packets inputs. maxIter is the loop budget handed to the compiler
// and both interpreters (0 = defaults: the compiler unrolls loopy specs to
// depth 4 on loop-free devices, the interpreters run DefaultMaxIterations).
// It returns a non-nil Divergence exactly when the outcome is Diverged; an
// error reports infrastructure failure, never a divergence.
func Check(cfg Config, spec *pir.Spec, maxIter int) (*Divergence, Outcome, error) {
	packets := cfg.Packets
	if packets <= 0 {
		packets = 4096
	}
	diags := lint.Run(spec, &cfg.Profile)
	if lint.HasErrors(diags) {
		return nil, SkipLint, nil
	}

	opts := cfg.Options
	opts.MaxIterations = maxIter
	res, err := core.Compile(spec, cfg.Profile, opts)
	if err != nil {
		var le *core.LintError
		switch {
		case errors.Is(err, core.ErrNoSolution):
			return nil, SkipNoSolution, nil
		case errors.Is(err, core.ErrTimeout):
			return nil, SkipTimeout, nil
		case errors.As(err, &le):
			return nil, SkipLint, nil
		}
		return nil, OK, fmt.Errorf("fuzz: compiling %q for %s: %w", spec.Name, cfg.Profile.Name, err)
	}
	prog := res.Program
	if cfg.CorruptProgram != nil {
		cfg.CorruptProgram(prog)
	}
	if cfg.CorruptLint != nil {
		diags = cfg.CorruptLint(spec, diags)
	}

	// Index the SAT-certified claims by state name. Shadowed-rule and
	// dead-default proofs quantify over free key bits, and every observed
	// key value is one such assignment — so a single observed firing (or
	// default take) refutes the certificate outright.
	shadowed := map[string]map[int]lint.Diag{}
	dead := map[string]lint.Diag{}
	for _, d := range diags {
		switch d.Code {
		case lint.CodeShadowedRule:
			if shadowed[d.State] == nil {
				shadowed[d.State] = map[int]lint.Diag{}
			}
			shadowed[d.State][d.Rule] = d
		case lint.CodeDeadDefault:
			dead[d.State] = d
		}
	}

	// Equivalence contract (mirrors internal/sim's harness): pipelined and
	// streaming devices implement the K-unrolled spec, so that is what the
	// program is compared against. The lint oracle always observes the
	// original spec — its certificates are per-state, not per-unrolling.
	contract := spec
	if spec.HasLoop() && !cfg.Profile.AllowLoops() {
		depth := maxIter
		if depth <= 0 {
			depth = 4 // core.Compile's default unroll bound
		}
		unrolled, uerr := core.Unroll(spec, depth)
		if uerr != nil {
			return nil, OK, fmt.Errorf("fuzz: unrolling %q: %w", spec.Name, uerr)
		}
		contract = unrolled
	}

	// maxIter is the compile bound (loop depth / unroll depth), NOT the
	// execution budget: pir.Run's budget counts total state visits, and an
	// unrolled contract's paths are maxIter loop iterations *plus* the
	// prologue states, so running it at budget maxIter would spuriously
	// exhaust. Execute everything at the default budget, as sim does — it
	// dominates every bounded path in the corpus.
	const runIter = 0 // → pir.DefaultMaxIterations

	maxLen := contract.MaxConsumedBits(runIter) + contract.LookaheadUse()
	if n := spec.MaxConsumedBits(runIter) + spec.LookaheadUse(); n > maxLen {
		maxLen = n
	}
	exhaustive := maxLen <= 22 && 1<<uint(maxLen) <= packets
	if exhaustive {
		packets = 1 << uint(maxLen)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < packets; i++ {
		var in bitstream.Bits
		if exhaustive {
			in = bitstream.FromUint(uint64(i), maxLen)
		} else {
			in = bitstream.Random(rng, maxLen)
		}

		specRes, trace := spec.RunTrace(in, runIter)
		contractRes := specRes
		if contract != spec {
			contractRes = contract.Run(in, runIter)
		}
		progRes := prog.Run(in, runIter)
		if !sameObservable(contractRes, progRes) {
			return &Divergence{
				Kind:       KindSemantics,
				Spec:       spec,
				Profile:    cfg.Profile.Name,
				Input:      in,
				SpecResult: contractRes,
				ProgResult: progRes,
				Detail: fmt.Sprintf(
					"spec accept=%v reject=%v vs program accept=%v reject=%v; dict diff: %s",
					contractRes.Accepted, contractRes.Rejected,
					progRes.Accepted, progRes.Rejected,
					contractRes.Dict.Diff(progRes.Dict)),
			}, Diverged, nil
		}

		if len(shadowed) == 0 && len(dead) == 0 {
			continue
		}
		for _, step := range trace {
			st := &spec.States[step.State]
			if step.Rule >= 0 {
				if claim, ok := shadowed[st.Name][step.Rule]; ok {
					return &Divergence{
						Kind:       KindLint,
						Spec:       spec,
						Profile:    cfg.Profile.Name,
						Input:      in,
						SpecResult: specRes,
						Claim:      claim,
						Detail: fmt.Sprintf(
							"rule %d of state %q is certified shadowed (PH002) yet fired on this input",
							step.Rule, st.Name),
					}, Diverged, nil
				}
			} else if len(st.Key) > 0 && len(st.Rules) > 0 {
				if claim, ok := dead[st.Name]; ok {
					return &Divergence{
						Kind:       KindLint,
						Spec:       spec,
						Profile:    cfg.Profile.Name,
						Input:      in,
						SpecResult: specRes,
						Claim:      claim,
						Detail: fmt.Sprintf(
							"default of state %q is certified dead (PH003) yet was taken on this input",
							st.Name),
					}, Diverged, nil
				}
			}
		}
	}
	return nil, OK, nil
}

// sameObservable is the device-observable equivalence relation: acceptance
// outcomes must agree, and the extracted dictionary must agree on accepted
// packets. Rejected packets are dropped by the device — no dictionary is
// delivered — so in-flight extraction state is not compared. This is
// strictly weaker than pir.Result.Same (which sim uses on the curated
// corpus, where rejecting paths never exhaust the iteration budget): a
// mutant that loops forever rejects on both sides at the budget, but the
// spec and the program reach the budget mid-extraction at different
// depths, and comparing those half-built dictionaries would report a
// divergence no packet-observing experiment could witness.
func sameObservable(a, b pir.Result) bool {
	if a.Accepted != b.Accepted || a.Rejected != b.Rejected {
		return false
	}
	return !a.Accepted || a.Dict.Equal(b.Dict)
}
