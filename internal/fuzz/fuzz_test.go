package fuzz

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/bitstream"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/lint"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
	"parserhawk/internal/tables"
	"parserhawk/internal/tcam"
)

func testConfig(profile hw.Profile) Config {
	opts := core.DefaultOptions()
	opts.Timeout = 60 * time.Second
	return Config{Profile: profile, Options: opts, Packets: 1500, Seed: 7}
}

// TestSeedCorpusClean is the fuzzer's ground truth: the deep protocol
// corpus and the seeded-defect fixtures, unmutated and uncorrupted, must
// show zero divergences on every scaled profile's equivalence contract.
func TestSeedCorpusClean(t *testing.T) {
	profiles := []hw.Profile{tables.TofinoScaled(), tables.IPUScaled(), tables.FPGAScaled()}
	if testing.Short() {
		profiles = profiles[:1]
	}
	seeds := append([]benchdata.Benchmark(nil), benchdata.Deep()...)
	seeds = append(seeds,
		benchdata.Benchmark{Family: "FuzzSemantics", Spec: benchdata.FuzzSemanticsFixture()},
		benchdata.Benchmark{Family: "FuzzLint", Spec: benchdata.FuzzLintFixture()},
		benchdata.Benchmark{Family: "FuzzSplitKeyMask", Spec: benchdata.FuzzSplitKeyMaskFixture()},
	)
	for _, profile := range profiles {
		cfg := testConfig(profile)
		for _, b := range seeds {
			d, out, err := Check(cfg, b.Spec, b.MaxIterations)
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name(), profile.Name, err)
			}
			if d != nil {
				t.Errorf("%s on %s: unexplained divergence: %s", b.Name(), profile.Name, d)
			}
			if out != OK {
				t.Errorf("%s on %s: outcome %s, want ok", b.Name(), profile.Name, out)
			}
		}
	}
}

// corruptFirstMask widens the first masked TCAM entry by clearing its
// lowest set mask bit — the canonical seeded defect for the
// spec-vs-program oracle.
func corruptFirstMask(prog *tcam.Program) {
	for si := range prog.States {
		for ei := range prog.States[si].Entries {
			e := &prog.States[si].Entries[ei]
			if e.Mask != 0 {
				e.Mask &= e.Mask - 1
				return
			}
		}
	}
}

func TestSemanticsDefectCaughtAndShrunk(t *testing.T) {
	spec := benchdata.FuzzSemanticsFixture()
	cfg := testConfig(tables.TofinoScaled())
	cfg.CorruptProgram = corruptFirstMask

	d, out, err := Check(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != Diverged || d == nil || d.Kind != KindSemantics {
		t.Fatalf("seeded program defect not caught: outcome=%v divergence=%v", out, d)
	}

	keep := func(c *pir.Spec) bool {
		d2, o2, e2 := Check(cfg, c, 0)
		return e2 == nil && o2 == Diverged && d2.Kind == KindSemantics
	}
	shrunk := Shrink(spec, keep, 200)
	if !keep(shrunk) {
		t.Fatal("shrunk spec no longer exhibits the divergence")
	}
	if len(shrunk.States) >= len(spec.States) && size(shrunk) >= size(spec) {
		t.Errorf("shrink made no progress: %d states / size %d", len(shrunk.States), size(shrunk))
	}
	d3, _, err := Check(cfg, shrunk, 0)
	if err != nil || d3 == nil {
		t.Fatalf("re-check of shrunk spec: %v, %v", d3, err)
	}
	fix := d3.Fixture()
	if !strings.Contains(fix, "hawkfuzz regression fixture") || !strings.Contains(fix, "header") {
		t.Errorf("fixture rendering looks wrong:\n%s", fix)
	}
	if _, err := p4.ParseSpec(fix); err != nil {
		t.Errorf("fixture does not re-parse: %v", err)
	}
}

func TestLintDefectCaughtAndShrunk(t *testing.T) {
	spec := benchdata.FuzzLintFixture()
	cfg := testConfig(tables.TofinoScaled())
	// Forge a PH002 certificate for a rule that plainly fires: the
	// lint-vs-observed oracle must refute it.
	cfg.CorruptLint = func(s *pir.Spec, ds []lint.Diag) []lint.Diag {
		return append(ds, lint.Diag{
			Code: lint.CodeShadowedRule, Severity: lint.Warning,
			State: "start", Rule: 0, Msg: "forged shadowed-rule claim",
		})
	}

	d, out, err := Check(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != Diverged || d == nil || d.Kind != KindLint {
		t.Fatalf("forged lint claim not refuted: outcome=%v divergence=%v", out, d)
	}
	if d.Claim.Code != lint.CodeShadowedRule {
		t.Errorf("divergence carries claim %v, want PH002", d.Claim.Code)
	}

	keep := func(c *pir.Spec) bool {
		d2, o2, e2 := Check(cfg, c, 0)
		return e2 == nil && o2 == Diverged && d2.Kind == KindLint
	}
	shrunk := Shrink(spec, keep, 200)
	if !keep(shrunk) {
		t.Fatal("shrunk spec no longer exhibits the divergence")
	}
	if len(shrunk.States) > 2 {
		t.Errorf("lint divergence shrunk to %d states, expected <= 2", len(shrunk.States))
	}
}

// TestTrueLintClaimsNotRefuted feeds the fuzzer a spec with a genuinely
// shadowed rule and a genuinely dead default (the SpecLint demo): the
// SAT certificates are correct, so millions of packets must not refute
// them.
func TestTrueLintClaimsNotRefuted(t *testing.T) {
	src, err := os.ReadFile("../../examples/lint/shadowed.p4")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := p4.ParseSpec(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(tables.TofinoScaled())
	cfg.Packets = 4000
	d, out, err := Check(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil || out != OK {
		t.Fatalf("true SAT certificates refuted: outcome=%v divergence=%v", out, d)
	}
}

// TestSplitKeyMaskRegression pins the real divergence hawkfuzz found: a
// masked rule over a key wider than KeyLimit, where an unsound candidate
// dropped one fragment's mask conjunct and the sampling verifier missed
// it. The don't-care-plane directed suite must keep this compile honest.
func TestSplitKeyMaskRegression(t *testing.T) {
	spec := benchdata.FuzzSplitKeyMaskFixture()
	cfg := testConfig(tables.TofinoScaled())
	cfg.Packets = 20000
	d, out, err := Check(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil || out != OK {
		t.Fatalf("split-key mask regression resurfaced: outcome=%v divergence=%v", out, d)
	}

	// The historical counterexample shape: key matches the masked rule's
	// split-off fragment but not its full mask (0x4801), and its two
	// neighbours that straddle the defect.
	res, err := core.Compile(spec, cfg.Profile, cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0x4801, 0x4800, 0x0801} {
		in := bitstream.FromUint(k, 16).Concat(bitstream.FromUint(0xD2, 8))
		sr := spec.Run(in, 0)
		pr := res.Program.Run(in, 0)
		if !sameObservable(sr, pr) {
			t.Errorf("key %#x: spec and program disagree: %v vs %v", k, sr.Dict, pr.Dict)
		}
	}
}

func TestMutateDeterministicAndClean(t *testing.T) {
	seed := benchdata.FuzzSemanticsFixture()
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		m1, t1 := Mutate(a, seed, 2)
		m2, t2 := Mutate(b, seed, 2)
		if t1 != t2 {
			t.Fatalf("mutation %d not deterministic: %q vs %q", i, t1, t2)
		}
		if m1 == nil {
			continue
		}
		if err := m1.Validate(); err != nil {
			t.Fatalf("mutant %d (%s) not Validate-clean: %v", i, t1, err)
		}
		if m1.String() != m2.String() {
			t.Fatalf("mutation %d produced different specs for same seed", i)
		}
	}

	// Loopy seeds must stay loopy, and never acquire zero-progress cycles.
	mpls, ok := benchdata.ByName("Parse MPLS")
	if !ok {
		t.Fatal("Parse MPLS benchmark missing")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		m, _ := Mutate(rng, mpls.Spec, 2)
		if m == nil {
			continue
		}
		if m.HasLoop() != mpls.Spec.HasLoop() {
			t.Fatal("mutation changed loop topology class")
		}
		if zeroProgressCycle(m) {
			t.Fatal("mutation introduced a zero-progress cycle")
		}
	}
}

// TestCampaignEndToEnd drives the full pipeline — seed check, mutation,
// divergence, shrink, fixture — with a seeded program defect, proving the
// campaign surfaces it as an unexplained seed divergence with a usable
// fixture.
func TestCampaignEndToEnd(t *testing.T) {
	cfg := CampaignConfig{
		Config: Config{
			Options: core.DefaultOptions(),
			Packets: 800,
			Seed:    3,
		},
		Profiles:     []hw.Profile{tables.TofinoScaled()},
		Mutations:    1,
		ShrinkChecks: 120,
	}
	cfg.Config.Options.Timeout = 60 * time.Second
	cfg.Config.CorruptProgram = corruptFirstMask

	res, err := Run(cfg, []Seed{{Name: "semantics-fixture", Spec: benchdata.FuzzSemanticsFixture()}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || len(res.SeedDivergences) == 0 {
		t.Fatalf("campaign missed the seeded defect: %+v", res)
	}
	d := res.SeedDivergences[0]
	if d.Kind != KindSemantics {
		t.Errorf("divergence kind %v, want %v", d.Kind, KindSemantics)
	}
	fix := d.Fixture()
	if !strings.Contains(fix, "hawkfuzz regression fixture") {
		t.Errorf("fixture missing header:\n%s", fix)
	}
	if len(d.Spec.States) > len(benchdata.FuzzSemanticsFixture().States) {
		t.Errorf("campaign did not shrink the divergence")
	}
}

// TestCampaignCleanCorpus runs a small real campaign (no corruption) over
// two fixtures and asserts zero divergences — mutants compile or skip,
// and every compiled mutant agrees with its spec.
func TestCampaignCleanCorpus(t *testing.T) {
	cfg := CampaignConfig{
		Config: Config{
			Options: core.DefaultOptions(),
			Packets: 600,
			Seed:    11,
		},
		Profiles:  []hw.Profile{tables.TofinoScaled()},
		Mutations: 12,
	}
	cfg.Config.Options.Timeout = 60 * time.Second
	if testing.Short() {
		cfg.Mutations = 4
	}
	res, err := Run(cfg, []Seed{
		{Name: "semantics-fixture", Spec: benchdata.FuzzSemanticsFixture()},
		{Name: "lint-fixture", Spec: benchdata.FuzzLintFixture()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		for _, d := range append(res.SeedDivergences, res.Divergences...) {
			t.Errorf("unexpected divergence: %s\n%s", d, d.Fixture())
		}
	}
}

// size is a rough spec size metric for shrink-progress assertions.
func size(s *pir.Spec) int {
	n := len(s.Fields)
	for i := range s.States {
		st := &s.States[i]
		n += 1 + len(st.Extracts) + len(st.Key) + len(st.Rules)
	}
	return n
}
