package fuzz

import (
	"fmt"
	"math/rand"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// Seed is one corpus entry for a campaign.
type Seed struct {
	Name string
	Spec *pir.Spec
	// MaxIterations bounds loopy seeds (0 = defaults), exactly as
	// benchdata.Benchmark.MaxIterations does.
	MaxIterations int
}

// CampaignConfig drives Run. Zero values pick conservative defaults.
type CampaignConfig struct {
	Config
	// Profiles to fuzz against; each profile runs the full corpus and
	// mutation budget independently and deterministically.
	Profiles []hw.Profile
	// Mutations is the number of mutants checked per profile (default 50).
	Mutations int
	// Edits per mutant (default 2).
	Edits int
	// ShrinkChecks bounds property evaluations per shrink (default 400).
	ShrinkChecks int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// CampaignResult summarises one Run.
type CampaignResult struct {
	Checked  int // specs checked (seeds + mutants), across all profiles
	Outcomes map[Outcome]int
	// SeedDivergences are divergences on *unmutated* seeds — these are
	// unexplained toolchain bugs and the campaign's hardest failure.
	SeedDivergences []*Divergence
	// Divergences are mutant divergences, already shrunk; each carries
	// the minimal spec that still exhibits the disagreement.
	Divergences []*Divergence
}

// Failed reports whether the campaign found any divergence.
func (r *CampaignResult) Failed() bool {
	return len(r.SeedDivergences) > 0 || len(r.Divergences) > 0
}

// Run executes a deterministic differential campaign: every seed is checked
// unmutated first (the corpus must be divergence-free), then the mutation
// budget is spent on random mutants of random seeds. Each divergence is
// shrunk before being reported. The error return is infrastructural only;
// divergences are in the result.
func Run(cfg CampaignConfig, seeds []Seed) (*CampaignResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("fuzz: empty seed corpus")
	}
	mutations := cfg.Mutations
	if mutations <= 0 {
		mutations = 50
	}
	edits := cfg.Edits
	if edits <= 0 {
		edits = 2
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &CampaignResult{Outcomes: map[Outcome]int{}}

	for _, profile := range cfg.Profiles {
		ccfg := cfg.Config
		ccfg.Profile = profile
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(len(profile.Name))<<32 + int64(profile.Arch)))

		for _, s := range seeds {
			ccfg.Seed = rng.Int63()
			d, out, err := Check(ccfg, s.Spec, s.MaxIterations)
			if err != nil {
				return nil, err
			}
			res.Checked++
			res.Outcomes[out]++
			if d != nil {
				logf("UNEXPLAINED: seed %q diverged on %s: %s", s.Name, profile.Name, d.Detail)
				res.SeedDivergences = append(res.SeedDivergences, shrinkDivergence(ccfg, d, s.MaxIterations, cfg.ShrinkChecks))
			} else {
				logf("seed %q on %s: %s", s.Name, profile.Name, out)
			}
		}

		for i := 0; i < mutations; i++ {
			s := seeds[rng.Intn(len(seeds))]
			mut, trail := Mutate(rng, s.Spec, 1+rng.Intn(edits))
			if mut == nil {
				continue
			}
			ccfg.Seed = rng.Int63()
			d, out, err := Check(ccfg, mut, s.MaxIterations)
			if err != nil {
				return nil, err
			}
			res.Checked++
			res.Outcomes[out]++
			if d == nil {
				continue
			}
			d.Trail = trail
			logf("mutant of %q diverged on %s (%s): %s", s.Name, profile.Name, trail, d.Detail)
			res.Divergences = append(res.Divergences, shrinkDivergence(ccfg, d, s.MaxIterations, cfg.ShrinkChecks))
		}
		logf("profile %s done: %d checked so far", profile.Name, res.Checked)
	}
	return res, nil
}

// shrinkDivergence minimizes a divergence's spec while preserving its kind,
// then re-checks the minimal spec to refresh the witnessing packet and
// detail. The original divergence is returned unshrunk if minimization
// somehow loses the behaviour (it cannot, short of budget exhaustion at
// zero improvements, but the guard keeps the report honest).
func shrinkDivergence(cfg Config, d *Divergence, maxIter, shrinkChecks int) *Divergence {
	keep := func(c *pir.Spec) bool {
		d2, out, err := Check(cfg, c, maxIter)
		return err == nil && out == Diverged && d2.Kind == d.Kind
	}
	shrunk := Shrink(d.Spec, keep, shrinkChecks)
	d2, out, err := Check(cfg, shrunk, maxIter)
	if err != nil || out != Diverged || d2.Kind != d.Kind {
		return d
	}
	d2.Trail = d.Trail
	return d2
}
