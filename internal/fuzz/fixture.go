package fuzz

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"parserhawk/internal/p4"
)

// FixtureName returns a stable, filesystem-safe name for the divergence's
// regression fixture, derived from the shrunk spec's structural fingerprint
// so re-discovering the same minimal spec never duplicates fixtures.
func (d *Divergence) FixtureName() string {
	sum := sha256.Sum256([]byte(p4.Fingerprint(d.Spec) + "|" + string(d.Kind)))
	return fmt.Sprintf("fuzz_%s_%x", sanitize(string(d.Kind)), sum[:4])
}

// Fixture renders the divergence as a ready-to-commit benchdata regression
// fixture: a commented, re-parseable P4 source carrying the profile, the
// witnessing packet, and both oracle verdicts. Specs outside the printable
// P4 subset (a shrink can strand a lookahead skip) fall back to the pir
// debug rendering, still under the same header.
func (d *Divergence) Fixture() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// hawkfuzz regression fixture %s\n", d.FixtureName())
	fmt.Fprintf(&sb, "// oracle pair: %s\n", d.Kind)
	fmt.Fprintf(&sb, "// profile:     %s\n", d.Profile)
	if d.Trail != "" {
		fmt.Fprintf(&sb, "// mutations:   %s\n", d.Trail)
	}
	fmt.Fprintf(&sb, "// packet:      %s\n", d.Input.String())
	if d.Kind == KindLint {
		fmt.Fprintf(&sb, "// claim:       %s\n", d.Claim.String())
	}
	for _, line := range strings.Split(d.Detail, "\n") {
		fmt.Fprintf(&sb, "// %s\n", line)
	}
	src, err := p4.Print(d.Spec)
	if err != nil {
		fmt.Fprintf(&sb, "// (not printable as P4: %v)\n", err)
		src = "/*\n" + d.Spec.String() + "*/\n"
	}
	sb.WriteString(src)
	return sb.String()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, strings.ToLower(s))
}
