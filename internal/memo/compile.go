package memo

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"parserhawk/internal/cert"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/sim"
	"parserhawk/internal/tcam"
)

// Tier-1 verdicts. Timeouts, lint rejections, and context errors are never
// cached: a deadline decides whether a verdict arrives, not which one, and
// lint diagnostics carry the caller's original state and field names.
const (
	verdictOK         = "ok"
	verdictNoSolution = "no_solution"
)

// t1Entry is one persisted whole-compile outcome. Program and certificate
// are stored in the producer's original naming so an exact replay is
// byte-identical; FieldCanon (producer field name -> canonical name) is
// the bridge an alias replay composes with the requester's witness.
type t1Entry struct {
	SpecSHA     string            `json:"spec_sha"` // sha256 of the producer's spec text
	Verdict     string            `json:"verdict"`
	ProgramJSON json.RawMessage   `json:"program,omitempty"`
	Cert        json.RawMessage   `json:"cert,omitempty"`
	FieldCanon  map[string]string `json:"field_canon,omitempty"`
}

// CompileContext is core.CompileContext behind the tier-1 memo. The
// signature matches core.CompileContext exactly so callers (the compile
// service, the benchmark tables, the CLI) can swap it in as their compile
// function. A nil cache compiles directly.
//
// Hit semantics:
//   - exact (stored spec text == requester's): the stored program,
//     certificate, and verdict are replayed byte-for-byte.
//   - alias (same canonical form, different text): ok verdicts only, and
//     only when no certificate was requested (certificate witnesses name
//     states) and no loop unrolling applies (the bound defaulting is
//     outside the canonical form). The stored program is renamed
//     producer->canonical->requester and re-validated by sampling against
//     the requester's spec before being served; any doubt is a miss.
//
// Store gating: ok verdicts are stored only when an independently
// self-checked certificate vouches for them (EmitCertificate is forced on
// the inner compile and stripped if the caller didn't ask for it);
// no-solution verdicts are stored for exact replay only.
func (c *Cache) CompileContext(ctx context.Context, spec *pir.Spec, profile hw.Profile, opts core.Options) (*core.Result, error) {
	if c == nil {
		return core.CompileContext(ctx, spec, profile, opts)
	}
	t0 := time.Now()
	canon, wit, cerr := pir.Canonicalize(spec)
	c.addCanon(time.Since(t0))
	if cerr != nil {
		c.mu.Lock()
		c.stats.T1Misses++
		c.mu.Unlock()
		return core.CompileContext(ctx, spec, profile, opts)
	}
	key := t1Key(canon.String(), profile, opts)
	specSHA := shaHex(spec.String())

	if e := c.loadT1(key); e != nil {
		if res, err, ok := c.replay(e, spec, wit, profile, opts, specSHA); ok {
			return res, err
		}
	}
	c.mu.Lock()
	c.stats.T1Misses++
	c.mu.Unlock()

	inner := opts
	inner.EmitCertificate = true // store gate; outcome-invariant (see core fingerprint)
	inner.Memo = c               // tiers 2 and 3
	res, err := core.CompileContext(ctx, spec, profile, inner)
	c.maybeStore(key, specSHA, wit, res, err)
	if res != nil && !opts.EmitCertificate {
		res.Certificate = nil
	}
	return res, err
}

// t1Key derives the tier-1 cache key. Alias specs share it by
// construction: they canonicalize to the same text.
func t1Key(canonText string, profile hw.Profile, opts core.Options) string {
	return shaHex("t1\x00" + canonText + "\x00" + profile.Fingerprint() + "\x00" + opts.Fingerprint())
}

func shaHex(s string) string {
	return fmt.Sprintf("%x", sha256.Sum256([]byte(s)))
}

// loadT1 fetches a tier-1 entry from memory or disk.
func (c *Cache) loadT1(key string) *t1Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.t1[key]; ok {
		return e
	}
	var e t1Entry
	if c.readEntry("t1", key, &e) {
		c.t1[key] = &e
		return &e
	}
	return nil
}

// replay attempts to serve a compile from entry e. ok=false means "treat
// as a miss and compile" — replay never degrades an answer, only skips.
func (c *Cache) replay(e *t1Entry, spec *pir.Spec, wit *pir.Witness, profile hw.Profile, opts core.Options, specSHA string) (*core.Result, error, bool) {
	exact := e.SpecSHA == specSHA
	hit := func(alias bool) {
		c.mu.Lock()
		if alias {
			c.stats.T1AliasHits++
		} else {
			c.stats.T1Hits++
		}
		c.mu.Unlock()
	}
	switch e.Verdict {
	case verdictNoSolution:
		// The no-solution proof search ran against the producer's exact
		// spec; an alias requester gets a fresh compile (which tier 2 will
		// largely skip through anyway).
		if !exact {
			return nil, nil, false
		}
		hit(false)
		return nil, core.ErrNoSolution, true

	case verdictOK:
		prog, derr := tcam.DecodeJSON(e.ProgramJSON)
		if derr != nil {
			return nil, nil, false
		}
		if exact {
			res := &core.Result{Program: prog, Resources: prog.Resources()}
			if opts.EmitCertificate {
				ct, err := cert.Decode(e.Cert)
				if err != nil {
					return nil, nil, false
				}
				res.Certificate = ct
			}
			hit(false)
			return res, nil, true
		}
		// Alias replay.
		if opts.EmitCertificate {
			return nil, nil, false // witness pairs are named in producer states
		}
		if spec.HasLoop() && !profile.AllowLoops() {
			return nil, nil, false // unroll-bound defaulting sits outside the canonical form
		}
		renamed, ok := renameProgram(prog, e.FieldCanon, wit)
		if !ok {
			return nil, nil, false
		}
		// The stored certificate vouched for the producer's program; the
		// rename is mechanical, but re-validate against the requester's
		// spec anyway — a sampling check is cheap next to a compile, and a
		// canonicalizer bug then costs a miss, not a wrong program.
		if rep := sim.Check(spec, renamed, opts.VerifySamples, 16, opts.MaxIterations, opts.Seed); !rep.OK() {
			return nil, nil, false
		}
		hit(true)
		return &core.Result{Program: renamed, Resources: renamed.Resources()}, nil, true
	}
	return nil, nil, false
}

// renameProgram rewrites every field reference of a stored program from
// the producer's names to the requester's, composing the stored
// producer->canonical map with the requester witness's canonical->original
// map. A field either map cannot place makes the whole rename fail.
func renameProgram(prog *tcam.Program, fieldCanon map[string]string, wit *pir.Witness) (*tcam.Program, bool) {
	ren := func(name string) (string, bool) {
		if name == "" {
			return "", true
		}
		cn, ok := fieldCanon[name]
		if !ok {
			return "", false
		}
		on, ok := wit.Fields[cn]
		return on, ok
	}
	fields := make([]pir.Field, 0, len(prog.Spec.Fields))
	for _, f := range prog.Spec.Fields {
		n, ok := ren(f.Name)
		if !ok {
			return nil, false
		}
		fields = append(fields, pir.Field{Name: n, Width: f.Width, Var: f.Var})
	}
	carrier, err := pir.New("deserialized", fields, []pir.State{{Name: "start", Default: pir.AcceptTarget}})
	if err != nil {
		return nil, false
	}
	out := &tcam.Program{Spec: carrier, States: make([]tcam.State, len(prog.States))}
	for i := range prog.States {
		s := prog.States[i] // copies the struct; slices re-built below
		s.Key = append([]pir.KeyPart(nil), s.Key...)
		for j := range s.Key {
			if s.Key[j].Lookahead {
				continue
			}
			n, ok := ren(s.Key[j].Field)
			if !ok {
				return nil, false
			}
			s.Key[j].Field = n
		}
		s.Entries = append([]tcam.Entry(nil), s.Entries...)
		for j := range s.Entries {
			s.Entries[j].Extracts = append([]pir.Extract(nil), s.Entries[j].Extracts...)
			for k := range s.Entries[j].Extracts {
				x := &s.Entries[j].Extracts[k]
				n, ok := ren(x.Field)
				if !ok {
					return nil, false
				}
				ln, ok := ren(x.LenField)
				if !ok {
					return nil, false
				}
				x.Field, x.LenField = n, ln
			}
		}
		out.States[i] = s
	}
	return out, true
}

// maybeStore files a finished compile's outcome when it qualifies.
func (c *Cache) maybeStore(key, specSHA string, wit *pir.Witness, res *core.Result, err error) {
	switch {
	case err == nil:
		if res == nil || res.Certificate == nil || res.Certificate.SelfCheck() != nil {
			return
		}
		pj, jerr := res.Program.EncodeJSON()
		if jerr != nil {
			return
		}
		cj, jerr := res.Certificate.Encode()
		if jerr != nil {
			return
		}
		c.storeT1(key, &t1Entry{
			SpecSHA: specSHA, Verdict: verdictOK,
			ProgramJSON: pj, Cert: cj, FieldCanon: wit.FieldToCanon(),
		})
	case errors.Is(err, core.ErrNoSolution):
		c.storeT1(key, &t1Entry{SpecSHA: specSHA, Verdict: verdictNoSolution})
	}
}

func (c *Cache) storeT1(key string, e *t1Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.t1[key]; ok {
		return
	}
	c.t1[key] = e
	c.stats.T1Stores++
	c.writeEntry("t1", key, e)
}
