// Package memo is ParserHawk's cross-compile memoization layer: a
// three-tier, optionally disk-backed cache keyed by canonical spec hashes
// (internal/pir's Canonicalize), so that alias specs — renamed states,
// reordered rules, shifted field layouts — share cached work.
//
//   - Tier 1 memoizes whole compiles per (canonical spec, profile
//     fingerprint, options fingerprint). An exact hit (same spec text)
//     replays the stored program, certificate, and verdict byte-for-byte.
//     An alias hit (same canonical form, different text) re-names the
//     stored program's fields through the two isomorphism witnesses and
//     re-validates it by sampling before serving it.
//   - Tier 2 memoizes per-skeleton UNSAT-at-cap facts, letting the
//     portfolio skip entire budget ladders (see core.Memo).
//   - Tier 3 memoizes per-skeleton glue-clause pools, seeded into
//     sat.Exchange on exact replays to warm-start refuter probes.
//
// Disk persistence is content-addressed: one file per entry under the
// cache directory, written via temp-file + atomic rename, integrity-guarded
// by a leading SHA-256 line. Corrupt or truncated entries are counted and
// treated as misses — a poisoned cache degrades to a cold compile, never
// to a wrong answer.
package memo

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"parserhawk/internal/sat"
)

// Stats counts the cache's traffic. Hits are split by kind for tier 1
// (exact replays vs witness-renamed alias replays); Corrupt counts disk
// entries rejected by the integrity check; CanonNanos is wall time spent
// canonicalizing specs for key computation.
type Stats struct {
	T1Hits      int64 `json:"t1_hits"`
	T1AliasHits int64 `json:"t1_alias_hits"`
	T1Misses    int64 `json:"t1_misses"`
	T1Stores    int64 `json:"t1_stores"`
	T2Hits      int64 `json:"t2_hits"`
	T2Misses    int64 `json:"t2_misses"`
	T2Stores    int64 `json:"t2_stores"`
	T3Hits      int64 `json:"t3_hits"`
	T3Misses    int64 `json:"t3_misses"`
	T3Stores    int64 `json:"t3_stores"`

	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	Corrupt      int64 `json:"corrupt"`
	CanonNanos   int64 `json:"canon_nanos"`
}

// Sub returns the counter movement from o to s.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		T1Hits: s.T1Hits - o.T1Hits, T1AliasHits: s.T1AliasHits - o.T1AliasHits,
		T1Misses: s.T1Misses - o.T1Misses, T1Stores: s.T1Stores - o.T1Stores,
		T2Hits: s.T2Hits - o.T2Hits, T2Misses: s.T2Misses - o.T2Misses, T2Stores: s.T2Stores - o.T2Stores,
		T3Hits: s.T3Hits - o.T3Hits, T3Misses: s.T3Misses - o.T3Misses, T3Stores: s.T3Stores - o.T3Stores,
		BytesRead: s.BytesRead - o.BytesRead, BytesWritten: s.BytesWritten - o.BytesWritten,
		Corrupt: s.Corrupt - o.Corrupt, CanonNanos: s.CanonNanos - o.CanonNanos,
	}
}

// Cache is the three-tier memo store. The zero value is not usable; a nil
// *Cache is, and behaves as a disabled cache (every operation is a
// transparent no-op), so callers can thread an optional cache without
// guards. All methods are safe for concurrent use.
type Cache struct {
	dir string // "" = memory-only

	mu    sync.Mutex
	t1    map[string]*t1Entry
	t2    map[string]bool
	t3    map[string][]sat.SeedClause
	stats Stats
}

// Open returns a cache persisted under dir, creating the directory if
// needed. Open("") returns a memory-only cache (still useful: repeated
// compiles within one process share all three tiers).
func Open(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: %w", err)
		}
	}
	return &Cache{
		dir: dir,
		t1:  make(map[string]*t1Entry),
		t2:  make(map[string]bool),
		t3:  make(map[string][]sat.SeedClause),
	}, nil
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// addCanon accounts canonicalization wall time.
func (c *Cache) addCanon(d time.Duration) {
	c.mu.Lock()
	c.stats.CanonNanos += d.Nanoseconds()
	c.mu.Unlock()
}

// --- core.Memo implementation (tiers 2 and 3) ---

// t2Record is the persisted form of a tier-2 fact; the fact is the file's
// existence, the body just keeps the format self-describing.
type t2Record struct {
	Unsat bool `json:"unsat"`
}

// SkeletonUnsat reports whether the keyed skeleton was previously proven
// solver-UNSAT at its ladder cap.
func (c *Cache) SkeletonUnsat(key string) bool {
	if c == nil || key == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t2[key] {
		c.stats.T2Hits++
		return true
	}
	var rec t2Record
	if c.readEntry("t2", key, &rec) && rec.Unsat {
		c.t2[key] = true
		c.stats.T2Hits++
		return true
	}
	c.stats.T2Misses++
	return false
}

// RecordSkeletonUnsat files a proven UNSAT-at-cap fact.
func (c *Cache) RecordSkeletonUnsat(key string) {
	if c == nil || key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t2[key] {
		return
	}
	c.t2[key] = true
	c.stats.T2Stores++
	c.writeEntry("t2", key, t2Record{Unsat: true})
}

// t3Record is the persisted form of a tier-3 clause pool.
type t3Record struct {
	Clauses []sat.SeedClause `json:"clauses"`
}

// GlueClauses returns the keyed skeleton's persisted glue-clause pool, or
// nil when none is stored.
func (c *Cache) GlueClauses(key string) []sat.SeedClause {
	if c == nil || key == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cls, ok := c.t3[key]; ok {
		c.stats.T3Hits++
		return cls
	}
	var rec t3Record
	if c.readEntry("t3", key, &rec) && len(rec.Clauses) > 0 {
		c.t3[key] = rec.Clauses
		c.stats.T3Hits++
		return rec.Clauses
	}
	c.stats.T3Misses++
	return nil
}

// RecordGlueClauses stores a skeleton's exported pool. First write wins:
// the key pins the exact formula, so later runs of it learn comparable
// clauses and rewriting buys nothing.
func (c *Cache) RecordGlueClauses(key string, clauses []sat.SeedClause) {
	if c == nil || key == "" || len(clauses) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.t3[key]; ok {
		return
	}
	c.t3[key] = clauses
	c.stats.T3Stores++
	c.writeEntry("t3", key, t3Record{Clauses: clauses})
}

// --- disk layer ---

// entryPath is the content-addressed location of one cache entry.
func (c *Cache) entryPath(kind, key string) string {
	return filepath.Join(c.dir, kind+"-"+key+".json")
}

// readEntry loads and integrity-checks one disk entry into v. Any failure
// — absent file, truncated write, flipped bit, bad JSON — is a miss; a
// failure past the existence check also counts as Corrupt. Lock held.
func (c *Cache) readEntry(kind, key string, v any) bool {
	if c.dir == "" {
		return false
	}
	data, err := os.ReadFile(c.entryPath(kind, key))
	if err != nil {
		return false
	}
	c.stats.BytesRead += int64(len(data))
	nl := bytes.IndexByte(data, '\n')
	if nl != sha256.Size*2 {
		c.stats.Corrupt++
		return false
	}
	sum := sha256.Sum256(data[nl+1:])
	if string(data[:nl]) != hex.EncodeToString(sum[:]) {
		c.stats.Corrupt++
		return false
	}
	if err := json.Unmarshal(data[nl+1:], v); err != nil {
		c.stats.Corrupt++
		return false
	}
	return true
}

// writeEntry persists one entry: SHA-256 line, payload, temp file, atomic
// rename. Write failures are silently dropped — the cache is an
// accelerator, never a correctness dependency. Lock held.
func (c *Cache) writeEntry(kind, key string, v any) {
	if c.dir == "" {
		return
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	sum := sha256.Sum256(payload)
	data := append([]byte(hex.EncodeToString(sum[:])+"\n"), payload...)
	tmp, err := os.CreateTemp(c.dir, "."+kind+"-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.entryPath(kind, key)); err != nil {
		os.Remove(name)
		return
	}
	c.stats.BytesWritten += int64(len(data))
}
