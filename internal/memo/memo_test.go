package memo

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/sat"
	"parserhawk/internal/sim"
)

// smallSpec is a two-state parser small enough to compile in
// milliseconds but non-trivial enough to exercise keys and extraction.
func smallSpec(t *testing.T) *pir.Spec {
	t.Helper()
	fields := []pir.Field{{Name: "tag", Width: 4}, {Name: "data", Width: 8}}
	states := []pir.State{
		{
			Name:     "start",
			Extracts: []pir.Extract{{Field: "tag"}},
			Key:      []pir.KeyPart{pir.FieldSlice("tag", 0, 4)},
			Rules:    []pir.Rule{pir.ExactRule(0x3, 4, pir.To(1))},
			Default:  pir.AcceptTarget,
		},
		{
			Name:     "payload",
			Extracts: []pir.Extract{{Field: "data"}},
			Default:  pir.AcceptTarget,
		},
	}
	return pir.MustNew("small", fields, states)
}

// aliasSpec is smallSpec with renamed states and fields and a rule whose
// value carries garbage outside its mask — same canonical form.
func aliasSpec(t *testing.T) *pir.Spec {
	t.Helper()
	fields := []pir.Field{{Name: "kind", Width: 4}, {Name: "body", Width: 8}}
	states := []pir.State{
		{
			Name:     "s_entry",
			Extracts: []pir.Extract{{Field: "kind"}},
			Key:      []pir.KeyPart{pir.FieldSlice("kind", 0, 4)},
			Rules:    []pir.Rule{{Value: 0xf3, Mask: 0xf, Next: pir.To(1)}},
			Default:  pir.AcceptTarget,
		},
		{
			Name:     "s_body",
			Extracts: []pir.Extract{{Field: "body"}},
			Default:  pir.AcceptTarget,
		},
	}
	return pir.MustNew("alias", fields, states)
}

func testOpts() core.Options {
	o := core.DefaultOptions()
	o.Workers = 1
	o.Opt7Parallelism = false
	o.VerifySamples = 200
	return o
}

func TestExactReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, profile, opts := smallSpec(t), hw.Tofino(), testOpts()
	opts.EmitCertificate = true

	cold, err := c.CompileContext(context.Background(), spec, profile, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.T1Stores != 1 || st.T1Misses != 1 || st.T1Hits != 0 {
		t.Fatalf("cold stats: %+v", st)
	}

	// Fresh cache over the same directory: the hit must come off disk.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c2.CompileContext(context.Background(), spec, profile, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Stats(); got.T1Hits != 1 || got.T1Misses != 0 {
		t.Fatalf("warm stats: %+v", got)
	}
	if warm.Program.String() != cold.Program.String() {
		t.Fatalf("program text diverged:\ncold:\n%s\nwarm:\n%s", cold.Program, warm.Program)
	}
	cj, _ := cold.Program.EncodeJSON()
	wj, _ := warm.Program.EncodeJSON()
	if string(cj) != string(wj) {
		t.Fatal("program JSON diverged between cold and warm")
	}
	if warm.Certificate == nil {
		t.Fatal("warm replay dropped the certificate")
	}
	cc, _ := cold.Certificate.Encode()
	wc, _ := warm.Certificate.Encode()
	if string(cc) != string(wc) {
		t.Fatal("certificate bytes diverged between cold and warm")
	}
	if warm.Resources != cold.Resources {
		t.Fatalf("resources diverged: cold %+v warm %+v", cold.Resources, warm.Resources)
	}
}

func TestAliasHitRenamesAndVerifies(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profile, opts := hw.Tofino(), testOpts()
	if _, err := c.CompileContext(context.Background(), smallSpec(t), profile, opts); err != nil {
		t.Fatal(err)
	}
	alias := aliasSpec(t)
	res, err := c.CompileContext(context.Background(), alias, profile, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.T1AliasHits != 1 {
		t.Fatalf("expected an alias hit, stats: %+v", st)
	}
	// The served program must speak the requester's field names and
	// actually implement the requester's spec.
	text := res.Program.String()
	if strings.Contains(text, "tag") || strings.Contains(text, "data") {
		t.Fatalf("alias program still uses producer field names:\n%s", text)
	}
	if rep := sim.Check(alias, res.Program, 2000, 16, 0, 7); !rep.OK() {
		t.Fatalf("alias program does not implement the alias spec: %s", rep)
	}
}

func TestAliasWithCertificateIsAMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profile, opts := hw.Tofino(), testOpts()
	if _, err := c.CompileContext(context.Background(), smallSpec(t), profile, opts); err != nil {
		t.Fatal(err)
	}
	certOpts := opts
	certOpts.EmitCertificate = true
	res, err := c.CompileContext(context.Background(), aliasSpec(t), profile, certOpts)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.T1AliasHits != 0 {
		t.Fatalf("certificate request must not be served from an alias: %+v", st)
	}
	if res.Certificate == nil || res.Certificate.SelfCheck() != nil {
		t.Fatal("fresh compile must carry a self-checkable certificate")
	}
}

// TestPoisonedCacheFallsBack flips one bit of a stored entry and checks
// the next lookup degrades to a clean compile with the same outcome.
func TestPoisonedCacheFallsBack(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, profile, opts := smallSpec(t), hw.Tofino(), testOpts()
	cold, err := c.CompileContext(context.Background(), spec, profile, opts)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := filepath.Glob(filepath.Join(dir, "t1-*.json"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected one t1 entry, got %v (%v)", ents, err)
	}
	data, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(ents[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c2.CompileContext(context.Background(), spec, profile, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Corrupt == 0 {
		t.Fatalf("poisoned entry was not detected: %+v", st)
	}
	if st.T1Hits != 0 || st.T1Misses != 1 {
		t.Fatalf("poisoned entry must be a miss: %+v", st)
	}
	if warm.Program.String() != cold.Program.String() {
		t.Fatal("fallback compile diverged from the original")
	}
}

func TestNoSolutionCachedExactOnly(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// One entry on a device capped to zero stages cannot fit: force
	// no-solution with a tiny budget instead, which is deterministic.
	spec, profile := smallSpec(t), hw.Tofino()
	opts := testOpts()
	opts.MaxBudget = 1 // two live states need at least two entries
	if _, err := c.CompileContext(context.Background(), spec, profile, opts); err == nil {
		t.Fatal("expected a failing compile")
	} else if !strings.Contains(err.Error(), "no implementation") {
		t.Skipf("budget clamp did not produce no-solution on this profile: %v", err)
	}
	if st := c.Stats(); st.T1Stores != 1 {
		t.Fatalf("no-solution verdict was not stored: %+v", st)
	}
	// Exact re-ask replays the verdict...
	if _, err := c.CompileContext(context.Background(), spec, profile, opts); !strings.Contains(err.Error(), "no implementation") {
		t.Fatalf("exact no-solution replay: %v", err)
	}
	if st := c.Stats(); st.T1Hits != 1 {
		t.Fatalf("exact no-solution must hit: %+v", st)
	}
	// ...but an alias spec does not inherit it via tier 1. It must
	// instead fall through to a compile whose portfolio skips the
	// already-proven-UNSAT ladders through tier 2.
	if _, err := c.CompileContext(context.Background(), aliasSpec(t), profile, opts); err == nil {
		t.Fatal("alias compile should also fail on the clamped budget")
	}
	st := c.Stats()
	if st.T1AliasHits != 0 {
		t.Fatalf("no-solution must never be served from an alias: %+v", st)
	}
	if st.T2Stores == 0 {
		t.Fatalf("UNSAT-at-cap fact was not recorded: %+v", st)
	}
	if st.T2Hits == 0 {
		t.Fatalf("alias compile did not reuse the tier-2 fact: %+v", st)
	}
}

func TestTier2RoundTripAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.RecordSkeletonUnsat("abc123")
	if !c.SkeletonUnsat("abc123") {
		t.Fatal("in-memory tier-2 miss")
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.SkeletonUnsat("abc123") {
		t.Fatal("tier-2 fact did not survive reopen")
	}
	if c2.SkeletonUnsat("other") {
		t.Fatal("tier-2 false positive")
	}
}

func TestTier3RoundTripAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := []sat.SeedClause{{Epoch: 1, Lits: []sat.Lit{2, 5, 9}}, {Epoch: 2, Lits: []sat.Lit{3}}}
	c.RecordGlueClauses("key1", in)
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := c2.GlueClauses("key1")
	if len(out) != 2 || out[0].Epoch != 1 || len(out[0].Lits) != 3 || out[1].Lits[0] != 3 {
		t.Fatalf("tier-3 round trip mangled clauses: %+v", out)
	}
	if c2.GlueClauses("key2") != nil {
		t.Fatal("tier-3 false positive")
	}
}

func TestNilCacheCompiles(t *testing.T) {
	var c *Cache
	res, err := c.CompileContext(context.Background(), smallSpec(t), hw.Tofino(), testOpts())
	if err != nil || res == nil {
		t.Fatalf("nil cache must pass through: %v", err)
	}
	if c.SkeletonUnsat("x") || c.GlueClauses("x") != nil {
		t.Fatal("nil cache tiers must be inert")
	}
}
