package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("status=%v", got)
	}
	if s.Model(a) {
		t.Error("a must be false")
	}
	if !s.Model(b) {
		t.Error("b must be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok {
		t.Error("adding the complement unit must report unsat")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status=%v", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Error("empty clause must be unsat")
	}
	if s.Solve() != Unsat {
		t.Error("solver must stay unsat")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Error("tautology must be accepted")
	}
	if s.Solve() != Sat {
		t.Error("still satisfiable")
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true))
	s.AddClause(MkLit(b, true))
	if s.Solve() != Unsat {
		t.Error("dedup broke semantics")
	}
}

func TestChainPropagation(t *testing.T) {
	// x0 and (x_i -> x_{i+1}) forces all true.
	s := New()
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	if s.Solve() != Sat {
		t.Fatal("chain must be sat")
	}
	for i, v := range vars {
		if !s.Model(v) {
			t.Fatalf("x%d must be true", i)
		}
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons, n holes — classically UNSAT
// and a good conflict-analysis stress test.
func pigeonhole(s *Solver, pigeons, holes int) {
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d)=%v want unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Errorf("PHP(5,5)=%v want sat", got)
	}
}

// bruteForce answers satisfiability of a small CNF by enumeration.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		nVars := 4 + rng.Intn(6)
		nClauses := 3 + rng.Intn(5*nVars)
		var cnf [][]Lit
		for c := 0; c < nClauses; c++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for i := range cl {
				cl[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		alive := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				alive = false
			}
		}
		got := Unsat
		if alive {
			got = s.Solve()
		} else if s.Solve() != Unsat {
			t.Fatalf("trial %d: AddClause said unsat but Solve disagrees", trial)
		}
		want := Unsat
		if bruteForce(nVars, cnf) {
			want = Sat
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v cnf=%v", trial, got, want, cnf)
		}
		if got == Sat {
			// Verify the model actually satisfies the CNF.
			for _, cl := range cnf {
				satisfied := false
				for _, l := range cl {
					v := s.Model(l.Var())
					if l.Neg() {
						v = !v
					}
					if v {
						satisfied = true
						break
					}
				}
				if !satisfied {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, cl)
				}
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a | b
	if s.Solve(MkLit(a, true)) != Sat {
		t.Fatal("sat under ~a")
	}
	if !s.Model(b) {
		t.Error("b must be true under ~a")
	}
	if s.Solve(MkLit(a, true), MkLit(b, true)) != Unsat {
		t.Error("unsat under ~a & ~b")
	}
	// Solver remains usable and satisfiable without assumptions.
	if s.Solve() != Sat {
		t.Error("must recover after assumption unsat")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if s.Solve() != Sat {
		t.Fatal("initial sat")
	}
	s.AddClause(MkLit(a, true))
	s.AddClause(MkLit(b, true))
	if s.Solve() != Unsat {
		t.Error("must be unsat after strengthening")
	}
}

func TestAssumptionOfForcedLiteral(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false)) // a forced true
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if s.Solve(MkLit(a, false)) != Sat {
		t.Error("assuming an implied literal must stay sat")
	}
	if s.Solve(MkLit(a, true)) != Unsat {
		t.Error("assuming the negation of a forced literal must be unsat")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8) // hard enough to not finish instantly
	calls := 0
	s.Cancel = func() bool {
		calls++
		return calls > 2
	}
	got := s.Solve()
	if got == Unknown {
		if s.Err() != ErrCanceled {
			t.Errorf("err=%v", s.Err())
		}
	}
	// Either it finished fast (Unsat) or was canceled — both acceptable.
	if got == Sat {
		t.Error("PHP(9,8) can never be sat")
	}
}

func TestCancelNeverReportsUnsat(t *testing.T) {
	// PHP(10,9) is far too hard to refute within the first few hundred
	// search steps, so an immediate cancel must surface as an interrupt
	// (Unknown + ErrCanceled) — reporting Unsat here would be a soundness
	// bug: the search was cut short before unsatisfiability was established.
	s := New()
	pigeonhole(s, 10, 9)
	s.Cancel = func() bool { return true }
	got := s.Solve()
	if got != Unknown {
		t.Fatalf("canceled solve returned %v, want unknown", got)
	}
	if s.Err() != ErrCanceled {
		t.Fatalf("err=%v want ErrCanceled", s.Err())
	}
	// Clearing the cancel hook must let the same solver finish for real.
	s.Cancel = nil
	if got := s.Solve(); got != Unsat {
		t.Fatalf("uncanceled re-solve returned %v, want unsat", got)
	}
}

func TestCancelDuringDecisionStretch(t *testing.T) {
	// A clause-free instance produces zero conflicts, so a poll keyed to the
	// conflict counter would never fire. The tick-based poll must abort the
	// pure-decision stretch anyway.
	s := New()
	for i := 0; i < 100000; i++ {
		s.NewVar()
	}
	s.Cancel = func() bool { return true }
	if got := s.Solve(); got != Unknown {
		t.Fatalf("status=%v want unknown", got)
	}
	if s.Err() != ErrCanceled {
		t.Fatalf("err=%v want ErrCanceled", s.Err())
	}
}

func TestMetricsAdvanceAndAccumulate(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	before := s.Metrics()
	if before.Clauses == 0 || before.Vars == 0 {
		t.Fatalf("encoding metrics look dead: %+v", before)
	}
	if s.Solve() != Unsat {
		t.Fatal("PHP(6,5) must be unsat")
	}
	m := s.Metrics()
	if m.Decisions == 0 || m.Propagations == 0 || m.Conflicts == 0 ||
		m.LearnedClauses == 0 || m.LearnedLiterals == 0 {
		t.Errorf("search metrics look dead: %+v", m)
	}
	if m.Decisions < before.Decisions || m.Propagations < before.Propagations ||
		m.Conflicts < before.Conflicts || m.Clauses < before.Clauses {
		t.Errorf("metrics must be monotone: before=%+v after=%+v", before, m)
	}
	var sum Metrics
	sum.Add(before)
	sum.Add(m)
	if sum.Conflicts != before.Conflicts+m.Conflicts || sum.Vars != before.Vars+m.Vars {
		t.Errorf("Add mis-accumulates: %+v", sum)
	}
}

func TestMaxConflicts(t *testing.T) {
	s := New()
	pigeonhole(s, 10, 9)
	s.MaxConflicts = 5
	if got := s.Solve(); got != Unknown && got != Unsat {
		t.Errorf("status=%v", got)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d)=%d want %d", i+1, got, w)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	l := MkLit(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Error("encode broken")
	}
	if l.Not().Neg() || l.Not().Var() != 7 {
		t.Error("Not broken")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("status strings")
	}
}

func TestStatsAdvance(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 4)
	s.Solve()
	d, p, c := s.Stats()
	if d == 0 || p == 0 || c == 0 {
		t.Errorf("stats look dead: d=%d p=%d c=%d", d, p, c)
	}
}

func BenchmarkPigeonhole87(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		s := New()
		const n = 60
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		for c := 0; c < int(4.0*n); c++ {
			s.AddClause(
				MkLit(rng.Intn(n), rng.Intn(2) == 1),
				MkLit(rng.Intn(n), rng.Intn(2) == 1),
				MkLit(rng.Intn(n), rng.Intn(2) == 1))
		}
		s.Solve()
	}
}
