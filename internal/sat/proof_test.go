package sat_test

import (
	"bytes"
	"testing"

	"parserhawk/internal/cert"
	"parserhawk/internal/sat"
)

// pigeonhole encodes the unsatisfiable "n+1 pigeons in n holes"
// instance: var p*n+h means pigeon p sits in hole h.
func pigeonhole(s *sat.Solver, n int) {
	vars := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]int, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		var cl []sat.Lit
		for h := 0; h < n; h++ {
			cl = append(cl, sat.MkLit(vars[p][h], false))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p := 0; p <= n; p++ {
			for q := p + 1; q <= n; q++ {
				s.AddClause(sat.MkLit(vars[p][h], true), sat.MkLit(vars[q][h], true))
			}
		}
	}
}

func TestProofCertifiesUnsat(t *testing.T) {
	s := sat.New()
	s.RecordOriginal = true
	s.StartProof()
	pigeonhole(s, 4)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("pigeonhole: got %v, want Unsat", st)
	}
	var cnf bytes.Buffer
	if err := s.WriteDIMACS(&cnf); err != nil {
		t.Fatal(err)
	}
	proof := s.ProofBytes(true)
	if len(proof) == 0 {
		t.Fatal("no proof logged")
	}
	if err := cert.CheckDRAT(cnf.Bytes(), proof, cert.Strict); err != nil {
		t.Fatalf("proof does not check: %v", err)
	}
}

func TestProofCertifiesAssumptionUnsat(t *testing.T) {
	// x1 -> x2, x2 -> x3, and we assume x1 and ¬x3: UNSAT under
	// assumptions while the instance itself is satisfiable. The dumped
	// CNF includes the assumptions as units, so the proof refutes it.
	s := sat.New()
	s.RecordOriginal = true
	s.StartProof()
	v := make([]int, 4)
	for i := range v {
		v[i] = s.NewVar()
	}
	s.AddClause(sat.MkLit(v[0], true), sat.MkLit(v[1], false))
	s.AddClause(sat.MkLit(v[1], true), sat.MkLit(v[2], false))
	assumps := []sat.Lit{sat.MkLit(v[0], false), sat.MkLit(v[2], true)}
	if st := s.Solve(assumps...); st != sat.Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	var cnf bytes.Buffer
	if err := s.WriteDIMACSUnder(&cnf, assumps...); err != nil {
		t.Fatal(err)
	}
	if err := cert.CheckDRAT(cnf.Bytes(), s.ProofBytes(true), cert.Strict); err != nil {
		t.Fatalf("assumption proof does not check: %v", err)
	}
	// The session stays usable and a later solve is certifiable too.
	if st := s.Solve(sat.MkLit(v[0], false), sat.MkLit(v[2], false)); st != sat.Sat {
		t.Fatalf("follow-up solve: got %v, want Sat", st)
	}
}

func TestProofOffByDefault(t *testing.T) {
	s := sat.New()
	pigeonhole(s, 3)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if s.ProofEnabled() || s.ProofBytes(true) != nil {
		t.Fatal("proof logging must be off unless StartProof is called")
	}
}
