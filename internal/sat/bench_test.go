package sat

import (
	"math/rand"
	"testing"
)

// The microbenchmarks below isolate the three hot paths of the solver so
// performance changes are attributable per-mechanism, not just end-to-end:
// propagation throughput (binary implication lists vs long-clause watchers
// with blocking literals), conflict-analysis rate, and the reduceDB /
// arena-GC cost. CI runs them at -benchtime=1x so they cannot silently rot.

// buildBinaryChain wires vars v0 → v1 → … → v(n-1) through the binary
// implication lists: assuming v0 propagates the whole chain.
func buildBinaryChain(n int) (*Solver, Lit) {
	s := New()
	vs := make([]Lit, n)
	for i := range vs {
		vs[i] = MkLit(s.NewVar(), false)
	}
	for i := 0; i+1 < n; i++ {
		s.AddBinary(vs[i].Not(), vs[i+1])
	}
	return s, vs[0]
}

// BenchmarkPropagationBinaryChain measures pure binary-implication-list
// throughput: every Solve call re-propagates a 20k-literal chain with no
// conflicts and no long clauses.
func BenchmarkPropagationBinaryChain(b *testing.B) {
	const n = 20000
	s, head := buildBinaryChain(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(head) != Sat {
			b.Fatal("chain must be satisfiable")
		}
	}
	m := s.Metrics()
	b.ReportMetric(float64(m.Propagations)/float64(b.N), "props/op")
}

// BenchmarkPropagationLongClauses measures long-clause propagation: the
// chain links are ternary clauses (¬vi ∨ z ∨ vi+1) whose third literal z
// is false, so every propagation walks the watcher list, misses the
// blocker, and searches the arena for a replacement watch.
func BenchmarkPropagationLongClauses(b *testing.B) {
	const n = 20000
	s := New()
	vs := make([]Lit, n)
	for i := range vs {
		vs[i] = MkLit(s.NewVar(), false)
	}
	z := MkLit(s.NewVar(), false)
	for i := 0; i+1 < n; i++ {
		s.AddClause(vs[i].Not(), z, vs[i+1])
	}
	s.AddClause(z.Not()) // force z false AFTER the clauses, keeping them ternary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(vs[0]) != Sat {
			b.Fatal("chain must be satisfiable")
		}
	}
	m := s.Metrics()
	b.ReportMetric(float64(m.Propagations)/float64(b.N), "props/op")
}

// BenchmarkConflictAnalysis measures the conflict-analysis rate on the
// pigeonhole principle PHP(8,7) — an unsatisfiable instance whose proof is
// all conflicts, so nearly every cycle is analyze()/record().
func BenchmarkConflictAnalysis(b *testing.B) {
	var conflicts int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New()
		addPigeonhole(s, 8, 7)
		b.StartTimer()
		if s.Solve() != Unsat {
			b.Fatal("pigeonhole must be unsat")
		}
		_, _, c := s.Stats()
		conflicts += c
	}
	b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/op")
}

// addPigeonhole encodes PHP(pigeons, holes): every pigeon in some hole, no
// two pigeons share a hole.
func addPigeonhole(s *Solver, pigeons, holes int) {
	vars := make([][]int, pigeons)
	for p := range vars {
		vars[p] = make([]int, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddBinary(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
}

// hardRandom3SAT builds a fixed-seed random 3-SAT instance near the phase
// transition, large enough that solving accumulates a learnt database past
// the reduceDB trigger.
func hardRandom3SAT(nVars int) *Solver {
	rng := rand.New(rand.NewSource(7))
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	nClauses := int(float64(nVars) * 4.3)
	for i := 0; i < nClauses; i++ {
		var c [3]Lit
		for j := range c {
			c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		s.AddClause(c[:]...)
	}
	return s
}

// BenchmarkSolveWithReduceDB is the end-to-end reduceDB workload: a hard
// random 3-SAT solve that crosses the learnt-database limit repeatedly, so
// the measured time includes the glue-tier partition, the deletion sort,
// and the arena compactions.
func BenchmarkSolveWithReduceDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := hardRandom3SAT(250)
		s.MaxConflicts = 20000
		b.StartTimer()
		s.Solve()
	}
}

// BenchmarkArenaGC isolates the arena compaction itself: a learnt database
// is accumulated once, then each iteration relocates every live clause,
// patches trail reasons, and rebuilds the watch lists.
func BenchmarkArenaGC(b *testing.B) {
	s := hardRandom3SAT(250)
	s.MaxConflicts = 5000
	s.Solve()
	if len(s.learnts) == 0 {
		b.Fatal("expected a live learnt database")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.garbageCollect()
	}
	b.ReportMetric(float64(len(s.arena)), "arena-words")
}
