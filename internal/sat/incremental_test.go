package sat

import (
	"math/rand"
	"testing"
)

// TestRepeatedSolveUnderRandomAssumptionsAgreesWithBruteForce hammers one
// solver with many consecutive Solve calls under randomly drawn assumption
// sets — the incremental-session usage pattern — and cross-checks every
// answer against brute force with the assumptions added as unit clauses.
// Clauses learned in earlier calls (including units learned while
// assumptions were on the trail, the historical crash case) must never
// change a later call's answer.
func TestRepeatedSolveUnderRandomAssumptionsAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nVars := 5 + rng.Intn(6)
		nClauses := 3 + rng.Intn(5*nVars)
		var cnf [][]Lit
		for c := 0; c < nClauses; c++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for i := range cl {
				cl[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		alive := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				alive = false
			}
		}
		for call := 0; call < 12; call++ {
			// Draw up to nVars/2 assumptions over distinct variables.
			perm := rng.Perm(nVars)
			var assumps []Lit
			for _, v := range perm[:rng.Intn(nVars/2+1)] {
				assumps = append(assumps, MkLit(v, rng.Intn(2) == 1))
			}
			got := s.Solve(assumps...)
			if !alive {
				if got != Unsat {
					t.Fatalf("trial %d call %d: dead instance reported %v", trial, call, got)
				}
				continue
			}
			withUnits := cnf
			for _, a := range assumps {
				withUnits = append(withUnits, []Lit{a})
			}
			want := Unsat
			if bruteForce(nVars, withUnits) {
				want = Sat
			}
			if got != want {
				t.Fatalf("trial %d call %d: solver=%v brute=%v assumps=%v cnf=%v",
					trial, call, got, want, assumps, cnf)
			}
			if got == Sat {
				for _, a := range assumps {
					v := s.Model(a.Var())
					if a.Neg() {
						v = !v
					}
					if !v {
						t.Fatalf("trial %d call %d: model violates assumption %v", trial, call, a)
					}
				}
			}
		}
	}
}

// TestPerCallDeltaAndRetention checks the per-call metric accounting: each
// Solve's delta counts exactly one solve, deltas reflect only that call's
// movement, and the retention counter sums the learned clauses alive at
// each call's entry.
func TestPerCallDeltaAndRetention(t *testing.T) {
	s := New()
	const n = 10
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Overlapping odd-parity triples: x_i ⊕ x_{i+1} ⊕ x_{i+2} = 1. XOR
	// systems resist pure propagation, so CDCL must branch and learn.
	for i := 0; i+2 < n; i++ {
		a, b, c := vars[i], vars[i+1], vars[i+2]
		s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, false))
		s.AddClause(MkLit(a, false), MkLit(b, true), MkLit(c, true))
		s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(c, true))
		s.AddClause(MkLit(a, true), MkLit(b, true), MkLit(c, false))
	}

	var retainedWant int64
	var solvedCalls int64
	for call := 0; call < 6; call++ {
		live := int64(s.LearntsLive())
		retainedWant += live
		before := s.Metrics()
		st := s.Solve(MkLit(vars[call%n], call%2 == 0))
		solvedCalls++
		if st == Unknown {
			t.Fatalf("call %d: unexpected Unknown", call)
		}
		d := s.LastSolveDelta()
		if d.Solves != 1 {
			t.Errorf("call %d: delta.Solves=%d want 1", call, d.Solves)
		}
		if d.RetainedLearnts != live {
			t.Errorf("call %d: delta.RetainedLearnts=%d, %d learnts were live at entry",
				call, d.RetainedLearnts, live)
		}
		after := s.Metrics()
		if after.Solves != before.Solves+1 {
			t.Errorf("call %d: cumulative Solves %d -> %d", call, before.Solves, after.Solves)
		}
		if got := after.Sub(before); got != d {
			t.Errorf("call %d: LastSolveDelta %+v != metric movement %+v", call, d, got)
		}
	}
	m := s.Metrics()
	if m.Solves != solvedCalls {
		t.Errorf("Metrics.Solves=%d want %d", m.Solves, solvedCalls)
	}
	if m.RetainedLearnts != retainedWant {
		t.Errorf("Metrics.RetainedLearnts=%d want %d", m.RetainedLearnts, retainedWant)
	}
	if m.LearnedClauses == 0 {
		t.Error("instance was built to force clause learning, but none recorded")
	}
}

// TestMetricsSubInvertsAdd checks Sub is the exact inverse of Add on every
// field, so per-rung deltas reconstruct session totals without drift.
func TestMetricsSubInvertsAdd(t *testing.T) {
	a := Metrics{Decisions: 10, Propagations: 20, Conflicts: 3, LearnedClauses: 2,
		LearnedLiterals: 7, Restarts: 1, Solves: 4, RetainedLearnts: 5}
	b := Metrics{Decisions: 4, Propagations: 8, Conflicts: 1, LearnedClauses: 1,
		LearnedLiterals: 2, Restarts: 0, Solves: 2, RetainedLearnts: 3}
	sum := a
	sum.Add(b)
	if got := sum.Sub(a); got != b {
		t.Errorf("(a+b)-a = %+v, want %+v", got, b)
	}
	if got := sum.Sub(b); got != a {
		t.Errorf("(a+b)-b = %+v, want %+v", got, a)
	}
}
