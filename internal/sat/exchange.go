package sat

import "sync"

// Exchange is a thread-safe learnt-clause pool shared by a portfolio of
// solvers working on (prefixes of) the same formula. Producers publish the
// glue clauses (LBD ≤ 2) they learn, tagged with the example epoch the
// clause was derived under; consumers collect clauses published since their
// last collection, filtered to epochs they have themselves encoded.
//
// Soundness contract: a clause learned by a CDCL solver is implied by its
// input formula alone (never by the solve call's assumptions). In the
// portfolio, every solver for a given skeleton encodes the same
// deterministic circuit plus a growing set of counterexample constraints;
// the epoch is the number of examples encoded when the clause was learned.
// A consumer whose own example set is a superset of the producer's (its
// epoch ≥ the clause's epoch) may therefore adopt the clause as learnt:
// both formulas imply it. Consumers with a smaller example set must not,
// and Collect's maxEpoch filter enforces that.
//
// Ownership: Publish takes ownership of the clause slices (producers drain
// via Solver.DrainGlue and must not reuse the slices). Collect hands the
// stored slices to consumers read-only and shared — importers copy literals
// into their own arenas and never mutate the slice.
type Exchange struct {
	mu      sync.Mutex
	pool    []pooledClause
	cursors map[int]int // consumer id -> index of first uncollected clause

	published int64
	collected int64
	dropped   int64 // publishes refused because the pool hit capacity
	seeded    int64 // clauses injected by Seed from a persisted pool
	capacity  int
}

type pooledClause struct {
	origin int // producer id; consumers skip their own clauses
	epoch  int // examples encoded by the producer when this was learned
	lits   []Lit
}

// DefaultExchangeCap bounds the number of clauses an Exchange retains.
// Synthesis runs are finite and glue clauses are rare, so a static
// append-only pool with a drop counter is simpler than a ring and loses
// nothing in practice.
const DefaultExchangeCap = 4096

// NewExchange returns an empty pool. capacity ≤ 0 selects
// DefaultExchangeCap.
func NewExchange(capacity int) *Exchange {
	if capacity <= 0 {
		capacity = DefaultExchangeCap
	}
	return &Exchange{cursors: make(map[int]int), capacity: capacity}
}

// Publish adds clauses learned by producer origin at the given example
// epoch. Takes ownership of the slices. Clauses beyond the pool capacity
// are dropped (counted, not an error).
func (x *Exchange) Publish(origin, epoch int, clauses [][]Lit) {
	if x == nil || len(clauses) == 0 {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, c := range clauses {
		if len(x.pool) >= x.capacity {
			x.dropped++
			continue
		}
		x.pool = append(x.pool, pooledClause{origin: origin, epoch: epoch, lits: c})
		x.published++
	}
}

// Collect returns every clause published since consumer's previous Collect
// that (a) was produced by a different solver, (b) has epoch ≤ maxEpoch,
// and (c) mentions only variables below maxVar. Skipped clauses are not
// revisited: a consumer's maxEpoch is fixed for its lifetime, so a clause
// filtered out now would be filtered out forever. The returned slices are
// shared and must be treated as read-only.
func (x *Exchange) Collect(consumer, maxEpoch, maxVar int) [][]Lit {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	start := x.cursors[consumer]
	if start >= len(x.pool) {
		return nil
	}
	var out [][]Lit
	for _, p := range x.pool[start:] {
		if p.origin == consumer || p.epoch > maxEpoch {
			continue
		}
		ok := true
		for _, l := range p.lits {
			if l.Var() >= maxVar {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, p.lits)
	}
	x.cursors[consumer] = len(x.pool)
	x.collected += int64(len(out))
	return out
}

// seedOrigin is the producer id used for clauses injected by Seed. No
// real producer uses a negative id, so seeded clauses are collectable by
// every consumer and are never re-exported by Export.
const seedOrigin = -1

// SeedClause is an externally supplied learnt clause: the serializable
// form used to persist a pool's glue clauses across processes.
type SeedClause struct {
	Epoch int   `json:"epoch"`
	Lits  []Lit `json:"lits"`
}

// Seed injects clauses recorded by an earlier run of the identical
// formula (same encoding, hence same variable numbering). Seeded clauses
// obey the same epoch contract as published ones — a consumer only
// collects a seed whose epoch it has encoded — and count against the
// pool capacity. The literal slices are copied.
func (x *Exchange) Seed(clauses []SeedClause) {
	if x == nil || len(clauses) == 0 {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, c := range clauses {
		if len(x.pool) >= x.capacity {
			x.dropped++
			continue
		}
		lits := append([]Lit(nil), c.Lits...)
		x.pool = append(x.pool, pooledClause{origin: seedOrigin, epoch: c.Epoch, lits: lits})
		x.seeded++
	}
}

// Export returns a copy of every pooled clause with epoch ≤ maxEpoch
// that was learned in this run (seeded clauses are skipped — re-storing
// them would be redundant). The copies are safe to retain and serialize.
func (x *Exchange) Export(maxEpoch int) []SeedClause {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []SeedClause
	for _, p := range x.pool {
		if p.origin == seedOrigin || p.epoch > maxEpoch {
			continue
		}
		out = append(out, SeedClause{Epoch: p.epoch, Lits: append([]Lit(nil), p.lits...)})
	}
	return out
}

// ExchangeStats is a snapshot of the pool's traffic counters.
type ExchangeStats struct {
	Published int64 `json:"published"`
	Collected int64 `json:"collected"`
	Dropped   int64 `json:"dropped"`
	Seeded    int64 `json:"seeded,omitempty"`
}

// Stats returns the pool's cumulative traffic counters.
func (x *Exchange) Stats() ExchangeStats {
	if x == nil {
		return ExchangeStats{}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return ExchangeStats{Published: x.published, Collected: x.collected, Dropped: x.dropped, Seeded: x.seeded}
}
