package sat

import (
	"math/rand"
	"sync"
	"testing"
)

func TestExchangeCollectFilters(t *testing.T) {
	x := NewExchange(0)
	x.Publish(0, 2, [][]Lit{{MkLit(0, false), MkLit(1, false)}}) // epoch 2, vars < 2
	x.Publish(0, 5, [][]Lit{{MkLit(2, false)}})                  // epoch 5
	x.Publish(1, 2, [][]Lit{{MkLit(9, false)}})                  // var 9

	// Consumer 1 at maxEpoch 2, 4 vars: skips its own clause, the epoch-5
	// clause, and the out-of-range clause.
	got := x.Collect(1, 2, 4)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("Collect = %v, want the single epoch-2 binary", got)
	}
	// Cursor advanced: nothing new on a second collect, skipped clauses are
	// not revisited.
	if again := x.Collect(1, 2, 100); len(again) != 0 {
		t.Fatalf("second Collect = %v, want empty", again)
	}
	// A different consumer with a wide filter sees everything but nothing
	// of its own.
	if got := x.Collect(2, 10, 100); len(got) != 3 {
		t.Fatalf("consumer 2 Collect = %d clauses, want 3", len(got))
	}
	st := x.Stats()
	if st.Published != 3 || st.Collected != 4 {
		t.Fatalf("stats = %+v, want published 3, collected 4", st)
	}
}

func TestExchangeCapacityDropsExcess(t *testing.T) {
	x := NewExchange(2)
	x.Publish(0, 0, [][]Lit{{MkLit(0, false)}, {MkLit(1, false)}, {MkLit(2, false)}})
	st := x.Stats()
	if st.Published != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want published 2, dropped 1", st)
	}
}

func TestNilExchangeIsInert(t *testing.T) {
	var x *Exchange
	x.Publish(0, 0, [][]Lit{{MkLit(0, false)}})
	if got := x.Collect(1, 0, 10); got != nil {
		t.Fatalf("nil Collect = %v, want nil", got)
	}
	if st := x.Stats(); st != (ExchangeStats{}) {
		t.Fatalf("nil Stats = %+v, want zero", st)
	}
}

// TestGlueExportImportPreservesStatus drives the full path: a producer
// solver learns glue clauses on PHP, publishes them, and a consumer solving
// the identical formula imports them at restart boundaries. Learned clauses
// are implied by the formula, so the consumer's verdict must not change,
// and the import metrics must register the traffic.
func TestGlueExportImportPreservesStatus(t *testing.T) {
	x := NewExchange(0)

	producer := New()
	producer.CollectGlue = true
	pigeonhole(producer, 8, 7)
	if got := producer.Solve(); got != Unsat {
		t.Fatalf("producer PHP(8,7) = %v, want unsat", got)
	}
	x.Publish(0, 0, producer.DrainGlue())
	if producer.Metrics().ExportedClauses == 0 {
		t.Fatal("producer exported no glue clauses from PHP(8,7)")
	}

	consumer := New()
	pigeonhole(consumer, 8, 7)
	consumer.ImportHook = func() [][]Lit {
		return x.Collect(1, 0, consumer.NumVars())
	}
	if got := consumer.Solve(); got != Unsat {
		t.Fatalf("consumer PHP(8,7) = %v, want unsat", got)
	}
	m := consumer.Metrics()
	if m.ImportedClauses == 0 {
		t.Fatal("consumer imported no clauses despite a populated pool")
	}
}

// TestImportIsSoundOnRandomInstances cross-checks that importing another
// solver's learnt clauses never flips a verdict, SAT or UNSAT, across many
// small random 3-SAT instances near the phase transition.
func TestImportIsSoundOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for inst := 0; inst < 60; inst++ {
		nVars := 8 + rng.Intn(5)
		nClauses := int(4.2 * float64(nVars))
		cnf := make([][]Lit, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			var cl []Lit
			for len(cl) < 3 {
				cl = append(cl, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
		}
		want := bruteForce(nVars, cnf)

		build := func() (*Solver, bool) {
			s := New()
			for v := 0; v < nVars; v++ {
				s.NewVar()
			}
			bad := false
			for _, cl := range cnf {
				if !s.AddClause(cl...) {
					bad = true
				}
			}
			return s, bad
		}

		x := NewExchange(0)
		producer, pBad := build()
		producer.CollectGlue = true
		pGot := producer.Solve() == Sat && !pBad
		if pGot != want {
			t.Fatalf("instance %d: producer = %v, brute force = %v", inst, pGot, want)
		}
		x.Publish(0, 0, producer.DrainGlue())

		consumer, cBad := build()
		consumer.ImportHook = func() [][]Lit {
			return x.Collect(1, 0, consumer.NumVars())
		}
		cGot := consumer.Solve() == Sat && !cBad
		if cGot != want {
			t.Fatalf("instance %d: consumer with imports = %v, brute force = %v", inst, cGot, want)
		}
	}
}

func TestDiversifyKeepsVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for inst := 0; inst < 40; inst++ {
		nVars := 8 + rng.Intn(5)
		nClauses := int(4.2 * float64(nVars))
		cnf := make([][]Lit, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			var cl []Lit
			for len(cl) < 3 {
				cl = append(cl, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
		}
		want := bruteForce(nVars, cnf)

		for seed := int64(0); seed < 3; seed++ {
			s := New()
			for v := 0; v < nVars; v++ {
				s.NewVar()
			}
			unsatAdd := false
			for _, cl := range cnf {
				if !s.AddClause(cl...) {
					unsatAdd = true
				}
			}
			s.Diversify(seed)
			got := s.Solve() == Sat && !unsatAdd
			if got != want {
				t.Fatalf("instance %d seed %d: diversified solver = %v, brute force = %v", inst, seed, got, want)
			}
		}
	}
}

// TestConcurrentExchangeTraffic hammers one pool from several goroutines
// solving independent formulas — the -race job's target for the sat layer.
func TestConcurrentExchangeTraffic(t *testing.T) {
	x := NewExchange(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := New()
			s.CollectGlue = true
			s.ImportHook = func() [][]Lit {
				return x.Collect(id, 0, s.NumVars())
			}
			pigeonhole(s, 7, 6)
			if got := s.Solve(); got != Unsat {
				t.Errorf("worker %d: PHP(7,6) = %v, want unsat", id, got)
			}
			x.Publish(id, 0, s.DrainGlue())
		}(w)
	}
	wg.Wait()
	if st := x.Stats(); st.Published == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
}
