package sat

import (
	"bytes"
	"strconv"
)

// DRAT proof logging. When enabled (StartProof), the solver appends one
// line per clause-database change to an in-memory log, in the DRAT
// clausal format the checker in internal/cert replays by forward unit
// propagation:
//
//   - every learnt clause (unit, binary-implication-list, and long) is
//     an addition line, in derivation order;
//   - every exchange-imported clause is an addition line preceded by a
//     "c import" attribution comment, logged with its original literals
//     (level-0 simplification only drops falsified duplicates, which
//     does not change the clause's meaning);
//   - every reduceDB removal is a deletion ("d") line; binary learnts
//     and imports join the implication lists permanently and are never
//     deleted.
//
// The log deliberately omits the final empty clause: the same session
// answers many queries, and only the caller knows which solve's verdict
// is being certified. ProofBytes(true) appends the terminating "0" for
// a solve that returned Unsat.
//
// Every hook is a nil-check on Solver.proof, mirroring RecordOriginal
// and CollectGlue: with logging off the hot path does no work and no
// allocation.

type proofLog struct {
	buf bytes.Buffer
	tmp []byte
}

// StartProof enables DRAT logging on this solver. Call before the first
// Solve so the log covers every learnt clause the verdict depends on.
func (s *Solver) StartProof() {
	if s.proof == nil {
		s.proof = &proofLog{}
	}
}

// ProofEnabled reports whether DRAT logging is active.
func (s *Solver) ProofEnabled() bool { return s.proof != nil }

// ProofBytes returns a copy of the DRAT log. With finalUnsat the
// terminating empty clause is appended, completing a refutation of the
// instance-plus-assumptions CNF that WriteDIMACSUnder dumps for the
// same solve.
func (s *Solver) ProofBytes(finalUnsat bool) []byte {
	if s.proof == nil {
		return nil
	}
	out := append([]byte(nil), s.proof.buf.Bytes()...)
	if finalUnsat {
		out = append(out, '0', '\n')
	}
	return out
}

func (p *proofLog) writeLits(lits []Lit) {
	for _, l := range lits {
		n := l.Var() + 1
		if l.Neg() {
			n = -n
		}
		p.tmp = strconv.AppendInt(p.tmp[:0], int64(n), 10)
		p.buf.Write(p.tmp)
		p.buf.WriteByte(' ')
	}
	p.buf.WriteString("0\n")
}

func (p *proofLog) add(lits []Lit) {
	p.writeLits(lits)
}

func (p *proofLog) del(lits []Lit) {
	p.buf.WriteString("d ")
	p.writeLits(lits)
}

func (p *proofLog) comment(c string) {
	p.buf.WriteString("c ")
	p.buf.WriteString(c)
	p.buf.WriteByte('\n')
}
