package sat

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		nVars := 3 + rng.Intn(6)
		nClauses := 2 + rng.Intn(12)
		var cnf [][]Lit
		src := New()
		src.RecordOriginal = true
		for i := 0; i < nVars; i++ {
			src.NewVar()
		}
		alive := true
		for c := 0; c < nClauses; c++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for i := range cl {
				cl[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
			if !src.AddClause(cl...) {
				alive = false
			}
		}
		var buf bytes.Buffer
		if err := src.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		want := src.Solve()
		got := back.Solve()
		_ = alive
		if got != want {
			t.Fatalf("trial %d: reread instance %v, original %v\ncnf=%v\n%s",
				trial, got, want, cnf, buf.String())
		}
	}
}

// TestDIMACSParseDumpParseFixedPoint is the canonicalization property:
// parsing a randomized DIMACS instance and dumping it reaches a fixed
// point in one step — parse(dump(parse(x))) produces byte-identical text
// to dump(parse(x)) — and every round preserves the solver's verdict.
// This pins the invariant that the dump reflects the recorded original
// clauses, not the solver's internal (arena/implication-list) storage,
// which rewrites binaries into watch lists and simplifies at add time.
func TestDIMACSParseDumpParseFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 60; trial++ {
		nVars := 2 + rng.Intn(8)
		nClauses := 1 + rng.Intn(14)
		var src strings.Builder
		fmt.Fprintf(&src, "c trial %d\np cnf %d %d\n", trial, nVars, nClauses)
		for c := 0; c < nClauses; c++ {
			k := 1 + rng.Intn(4) // length 1 and 2 exercise the unit and implication-list paths
			for i := 0; i < k; i++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				fmt.Fprintf(&src, "%d ", v)
			}
			src.WriteString("0\n")
		}
		first, err := ReadDIMACS(strings.NewReader(src.String()))
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src.String())
		}
		var dump1 bytes.Buffer
		if err := first.WriteDIMACS(&dump1); err != nil {
			t.Fatalf("trial %d: dump: %v", trial, err)
		}
		second, err := ReadDIMACS(bytes.NewReader(dump1.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\n%s", trial, err, dump1.String())
		}
		var dump2 bytes.Buffer
		if err := second.WriteDIMACS(&dump2); err != nil {
			t.Fatalf("trial %d: redump: %v", trial, err)
		}
		if !bytes.Equal(dump1.Bytes(), dump2.Bytes()) {
			t.Fatalf("trial %d: dump is not a fixed point\nfirst:\n%s\nsecond:\n%s",
				trial, dump1.String(), dump2.String())
		}
		if got, want := second.Solve(), first.Solve(); got != want {
			t.Fatalf("trial %d: verdict drifted across round-trip: %v vs %v\n%s",
				trial, got, want, src.String())
		}
	}
}

func TestReadDIMACSFormat(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	s, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Errorf("vars=%d", s.NumVars())
	}
	if s.Solve() != Sat {
		t.Error("instance is satisfiable")
	}
	// x1 false forces... check a model property: both clauses satisfied.
	m := []bool{s.Model(0), s.Model(1), s.Model(2)}
	if !(m[0] || !m[1]) || !(m[1] || m[2]) {
		t.Errorf("model %v violates the clauses", m)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 2\n1 0\n",
		"p dnf 2 1\n1 0\n",
		"p cnf 1 1\n2 0\n", // literal beyond declared
		"p cnf 2 1\n1 zz 0\n",
	}
	for _, c := range cases {
		if _, err := ReadDIMACS(strings.NewReader(c)); err == nil {
			t.Errorf("input %q must fail", c)
		}
	}
}

func TestWriteDIMACSHeader(t *testing.T) {
	s := New()
	s.RecordOriginal = true
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, true))
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "p cnf 2 1\n") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "1 -2 0") {
		t.Errorf("clause wrong:\n%s", out)
	}
}

func TestReadDIMACSWithoutProblemLine(t *testing.T) {
	// Lenient mode: tolerate missing "p" line, growing variables on demand.
	s, err := ReadDIMACS(strings.NewReader("1 2 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Error("satisfiable instance")
	}
	if s.Model(0) {
		t.Error("x1 must be false")
	}
	if !s.Model(1) {
		t.Error("x2 must be true")
	}
}

func TestWriteDIMACSRequiresRecording(t *testing.T) {
	s := New()
	s.NewVar()
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err == nil {
		t.Error("export without recording must fail")
	}
}
