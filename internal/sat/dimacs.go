package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DIMACS CNF interchange: the standard format of SAT competitions and
// external tooling. WriteDIMACS dumps the solver's problem clauses so an
// instance can be cross-checked with any off-the-shelf solver;
// ReadDIMACS loads an instance into a fresh solver.

// WriteDIMACS writes every clause the solver was given (as received,
// before top-level simplification) in DIMACS CNF format, so the exported
// instance is exactly equisatisfiable with the original. Variables are
// emitted 1-based per the format.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	return s.WriteDIMACSUnder(w)
}

// WriteDIMACSUnder writes the instance with the given assumption literals
// appended as unit clauses, so the exported file is equisatisfiable with a
// Solve(assumptions...) call on this solver. With no assumptions it is
// exactly WriteDIMACS.
func (s *Solver) WriteDIMACSUnder(w io.Writer, assumptions ...Lit) error {
	if !s.RecordOriginal {
		return fmt.Errorf("sat: WriteDIMACS requires RecordOriginal to be set before adding clauses")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.original)+len(assumptions)); err != nil {
		return err
	}
	writeLit := func(l Lit) error {
		v := l.Var() + 1
		if l.Neg() {
			v = -v
		}
		_, err := fmt.Fprintf(bw, "%d ", v)
		return err
	}
	for _, c := range s.original {
		for _, l := range c {
			if err := writeLit(l); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	for _, a := range assumptions {
		if err := writeLit(a); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses a DIMACS CNF instance into a fresh solver. Comment
// lines ("c ...") are skipped; the problem line ("p cnf V C") sizes the
// variable pool. Returns the solver even when the instance is trivially
// unsatisfiable (Solve will report Unsat).
func ReadDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	s.RecordOriginal = true
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	declared := -1
	var pending []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "cnf" {
				return nil, fmt.Errorf("sat: bad problem line %q", line)
			}
			n, err := strconv.Atoi(f[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sat: bad variable count in %q", line)
			}
			declared = n
			for s.NumVars() < n {
				s.NewVar()
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", tok)
			}
			if v == 0 {
				s.AddClause(pending...)
				pending = pending[:0]
				continue
			}
			idx := v
			if idx < 0 {
				idx = -idx
			}
			if declared >= 0 && idx > declared {
				return nil, fmt.Errorf("sat: literal %d exceeds declared %d variables", v, declared)
			}
			for s.NumVars() < idx {
				s.NewVar()
			}
			pending = append(pending, MkLit(idx-1, v < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pending) > 0 {
		s.AddClause(pending...)
	}
	return s, nil
}
