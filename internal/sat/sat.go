// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver. It is the combinatorial search engine underneath ParserHawk's
// synthesis queries, standing in for Z3's finite-domain core (the paper
// uses Z3 purely as a bitvector/boolean constraint solver; see DESIGN.md).
//
// Features: two-watched-literal propagation, VSIDS branching with phase
// saving, first-UIP conflict analysis with clause minimization, Luby
// restarts, and incremental solving under assumptions.
package sat

import (
	"errors"
	"sort"
)

// Lit is a literal: variable index v (0-based) with polarity, encoded as
// 2v for the positive literal and 2v+1 for the negation.
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrCanceled is returned (via Solver.Err) when solving stopped because the
// caller's cancel function fired.
var ErrCanceled = errors.New("sat: solve canceled")

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause // learned clauses
	// RecordOriginal, when set before clauses are added, logs every clause
	// AddClause receives (pre-simplification) so WriteDIMACS can export the
	// exact instance. Off by default: synthesis runs add millions of
	// clauses and do not need the copy.
	RecordOriginal bool
	original       [][]Lit

	watches [][]*clause // literal -> clauses watching it

	assign   []lbool // variable assignment
	level    []int32 // decision level per variable
	reason   []*clause
	phase    []bool // saved phase per variable
	activity []float64
	varInc   float64
	claInc   float64

	order heap // VSIDS priority queue

	trail    []Lit
	trailLim []int32
	qhead    int

	seen      []bool
	conflicts int64
	decisions int64
	propsN    int64
	restartsN int64
	learnedN  int64
	learnedLN int64
	clausesN  int64
	ticks     int64
	solvesN   int64
	retainedN int64   // Σ over Solve calls of learned clauses alive at entry
	lastDelta Metrics // counter movement of the most recent Solve call

	// Cancel, when non-nil, is polled periodically; returning true aborts
	// the solve with Unknown and Err() == ErrCanceled.
	Cancel func() bool
	// MaxConflicts, when > 0, bounds total conflicts per Solve call.
	MaxConflicts int64

	err        error
	unsatForce bool // a top-level conflict made the instance permanently UNSAT
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v, &s.activity)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// Stats reports cumulative decisions, propagations and conflicts.
func (s *Solver) Stats() (decisions, propagations, conflicts int64) {
	return s.decisions, s.propsN, s.conflicts
}

// Metrics is a snapshot of the solver's cumulative search counters. All
// fields grow monotonically over the solver's lifetime (learned-clause
// counts track clauses ever learned, not the live database, which the
// reduceDB garbage collector shrinks).
type Metrics struct {
	Decisions       int64 `json:"decisions"`
	Propagations    int64 `json:"propagations"`
	Conflicts       int64 `json:"conflicts"`
	LearnedClauses  int64 `json:"learned_clauses"`
	LearnedLiterals int64 `json:"learned_literals"`
	Restarts        int64 `json:"restarts"`
	Clauses         int64 `json:"clauses"`
	Vars            int64 `json:"vars"`
	Solves          int64 `json:"solves"`
	// RetainedLearnts sums, over every Solve call, the learned clauses that
	// were alive in the database when the call started — search work carried
	// over from earlier calls instead of re-derived. A solver that is rebuilt
	// for every query always reports zero; an incremental session reports how
	// much the persistent clause database was worth.
	RetainedLearnts int64 `json:"retained_learnts"`
}

// Add accumulates another snapshot into m (for aggregating across the
// many solver instances a synthesis run creates).
func (m *Metrics) Add(o Metrics) {
	m.Decisions += o.Decisions
	m.Propagations += o.Propagations
	m.Conflicts += o.Conflicts
	m.LearnedClauses += o.LearnedClauses
	m.LearnedLiterals += o.LearnedLiterals
	m.Restarts += o.Restarts
	m.Clauses += o.Clauses
	m.Vars += o.Vars
	m.Solves += o.Solves
	m.RetainedLearnts += o.RetainedLearnts
}

// Sub returns the counter movement from an earlier snapshot o to m. All
// fields are monotone over a solver's lifetime, so the result is the exact
// effort spent between the two snapshots.
func (m Metrics) Sub(o Metrics) Metrics {
	return Metrics{
		Decisions:       m.Decisions - o.Decisions,
		Propagations:    m.Propagations - o.Propagations,
		Conflicts:       m.Conflicts - o.Conflicts,
		LearnedClauses:  m.LearnedClauses - o.LearnedClauses,
		LearnedLiterals: m.LearnedLiterals - o.LearnedLiterals,
		Restarts:        m.Restarts - o.Restarts,
		Clauses:         m.Clauses - o.Clauses,
		Vars:            m.Vars - o.Vars,
		Solves:          m.Solves - o.Solves,
		RetainedLearnts: m.RetainedLearnts - o.RetainedLearnts,
	}
}

// Metrics returns the solver's cumulative counters.
func (s *Solver) Metrics() Metrics {
	return Metrics{
		Decisions:       s.decisions,
		Propagations:    s.propsN,
		Conflicts:       s.conflicts,
		LearnedClauses:  s.learnedN,
		LearnedLiterals: s.learnedLN,
		Restarts:        s.restartsN,
		Clauses:         s.clausesN,
		Vars:            int64(len(s.assign)),
		Solves:          s.solvesN,
		RetainedLearnts: s.retainedN,
	}
}

// LastSolveDelta returns the counter movement of the most recent Solve
// call alone: how many decisions, conflicts, learned clauses, and so on
// that single query cost, as opposed to the solver's lifetime totals.
func (s *Solver) LastSolveDelta() Metrics { return s.lastDelta }

// LearntsLive returns the number of learned clauses currently alive in
// the database (reduceDB shrinks this; the cumulative LearnedClauses
// metric does not).
func (s *Solver) LearntsLive() int { return len(s.learnts) }

// Err returns the reason a solve ended Unknown, if any.
func (s *Solver) Err() error { return s.err }

// AddClause adds a problem clause. It returns false when the clause makes
// the instance trivially unsatisfiable at the top level. Literals over
// unallocated variables are an error by construction (panic), as they
// indicate an encoder bug.
func (s *Solver) AddClause(lits ...Lit) bool {
	s.clausesN++
	if s.RecordOriginal {
		s.original = append(s.original, append([]Lit(nil), lits...))
	}
	if s.unsatForce {
		return false
	}
	// Must be at decision level 0 for top-level simplification.
	s.backtrackTo(0)
	// Sort, dedupe, drop false literals, detect tautology.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(a, b int) bool { return ls[a] < ls[b] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l.Var() >= len(s.assign) {
			panic("sat: literal over unallocated variable")
		}
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsatForce = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsatForce = true
			return false
		}
		if s.propagate() != nil {
			s.unsatForce = true
			return false
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assign[v] = boolToLbool(!l.Neg())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; it returns the conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propsN++
		ws := s.watches[p]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if c.deleted {
				continue
			}
			// Normalize: watched literal being falsified is c.lits[1]'s
			// negation partner; ensure lits[1] is the falsified one.
			if c.lits[0].Not() == p {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If first watch true, clause satisfied.
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: retain remaining watchers and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[p] = kept
				return c
			}
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *Solver) backtrackTo(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		if !s.order.contains(v) {
			s.order.push(v, &s.activity)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, &s.activity)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learned := []Lit{0} // reserve slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	var marked []int // every var whose seen flag we set, cleared at the end

	for {
		s.bumpClause(confl)
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			marked = append(marked, v)
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learned[0] = p.Not()

	// Clause minimization: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(learned); i++ {
		v := learned[i].Var()
		r := s.reason[v]
		if r == nil {
			learned[j] = learned[i]
			j++
			continue
		}
		redundant := true
		for _, q := range r.lits[1:] {
			if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			learned[j] = learned[i]
			j++
		}
	}
	learned = learned[:j]

	// Backjump level: highest level among learned[1:].
	bt := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()] > s.level[learned[maxI].Var()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		bt = int(s.level[learned[1].Var()])
	}
	for _, v := range marked {
		s.seen[v] = false
	}
	return learned, bt
}

func (s *Solver) record(learned []Lit) {
	s.learnedN++
	s.learnedLN += int64(len(learned))
	if len(learned) == 1 {
		s.enqueue(learned[0], nil)
		return
	}
	c := &clause{lits: append([]Lit(nil), learned...), learnt: true}
	s.learnts = append(s.learnts, c)
	s.watch(c)
	s.bumpClause(c)
	s.enqueue(learned[0], c)
}

func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(a, b int) bool { return s.learnts[a].act > s.learnts[b].act })
	keep := s.learnts[:0]
	for i, c := range s.learnts {
		if i < len(s.learnts)/2 || s.locked(c) || len(c.lits) <= 2 {
			keep = append(keep, c)
		} else {
			c.deleted = true
		}
	}
	s.learnts = keep
}

func (s *Solver) locked(c *clause) bool {
	return s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c
}

// luby computes the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// Solve searches for a model extending the given assumption literals.
// On Sat, Model reads the satisfying assignment. On Unsat under
// assumptions, the instance may still be satisfiable under others — the
// solver stays usable: clauses learned during the call (including those
// mentioning assumption literals, which are implied by the formula alone)
// are retained for later calls.
func (s *Solver) Solve(assumptions ...Lit) Status {
	before := s.Metrics()
	s.solvesN++
	s.retainedN += int64(len(s.learnts))
	st := s.solve(assumptions...)
	s.lastDelta = s.Metrics().Sub(before)
	return st
}

func (s *Solver) solve(assumptions ...Lit) Status {
	s.err = nil
	if s.unsatForce {
		return Unsat
	}
	s.backtrackTo(0)
	if s.propagate() != nil {
		s.unsatForce = true
		return Unsat
	}

	var restarts int64 = 1
	conflictBudget := luby(restarts) * 100
	conflictsHere := int64(0)
	maxLearnts := int64(len(s.clauses)/3 + 500)

	for {
		// Cancellation poll. Counted in loop ticks, not conflicts, so both
		// conflict storms and long decision/propagation stretches (where the
		// conflict counter stands still) notice a cancel promptly. On
		// interrupt the answer is Unknown — never Unsat: the search was cut
		// short, so unsatisfiability was not established.
		s.ticks++
		if s.Cancel != nil && s.ticks&255 == 0 && s.Cancel() {
			s.err = ErrCanceled
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.unsatForce = true
				return Unsat
			}
			// Do not analyze below the assumption levels: if the conflict
			// is forced by assumptions, report Unsat for this call.
			learned, bt := s.analyze(confl)
			if len(learned) == 1 {
				// A unit learned clause is a root-level fact independent of
				// the assumptions. Enqueue it at level 0 — placing it at the
				// clamped assumption level would put a second nil-reason
				// literal inside that level and corrupt later conflict
				// analysis. The loop re-places the assumptions afterwards and
				// reports Unsat if the new fact falsifies one.
				s.backtrackTo(0)
				s.record(learned)
				s.varInc /= 0.95
				s.claInc /= 0.999
				continue
			}
			if bt < s.assumptionLevel(assumptions) {
				bt = s.assumptionLevel(assumptions)
				s.backtrackTo(bt)
				// Re-propagation may fail under assumptions.
				if s.value(learned[0]) == lFalse {
					s.record(learned)
					return Unsat
				}
			} else {
				s.backtrackTo(bt)
			}
			s.record(learned)
			s.varInc /= 0.95
			s.claInc /= 0.999
			continue
		}

		if s.MaxConflicts > 0 && conflictsHere > s.MaxConflicts {
			return Unknown
		}
		if conflictsHere > conflictBudget*restarts {
			restarts++
			s.restartsN++
			conflictBudget = luby(restarts) * 100
			s.backtrackTo(s.assumptionLevel(assumptions))
		}
		if int64(len(s.learnts)) > maxLearnts {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}

		// Place assumptions first.
		if lvl := s.decisionLevel(); lvl < len(assumptions) {
			a := assumptions[lvl]
			switch s.value(a) {
			case lTrue:
				// Already implied: open an empty decision level for it.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				continue
			case lFalse:
				return Unsat
			}
			s.trailLim = append(s.trailLim, int32(len(s.trail)))
			s.enqueue(a, nil)
			continue
		}

		// Pick a branching variable.
		v := -1
		for !s.order.empty() {
			cand := s.order.pop(&s.activity)
			if s.assign[cand] == lUndef {
				v = cand
				break
			}
		}
		if v < 0 {
			return Sat
		}
		s.decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(MkLit(v, !s.phase[v]), nil)
	}
}

func (s *Solver) assumptionLevel(assumptions []Lit) int {
	if len(assumptions) < s.decisionLevel() {
		return len(assumptions)
	}
	return s.decisionLevel()
}

// Model returns the value of variable v in the last Sat answer.
func (s *Solver) Model(v int) bool { return s.assign[v] == lTrue }

// heap is a max-heap on variable activity (VSIDS order).
type heap struct {
	data []int32
	pos  []int32 // var -> index in data, -1 when absent
}

func (h *heap) ensure(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *heap) empty() bool { return len(h.data) == 0 }

func (h *heap) contains(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *heap) push(v int, act *[]float64) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, int32(v))
	h.pos[v] = int32(len(h.data) - 1)
	h.up(len(h.data)-1, act)
}

func (h *heap) pop(act *[]float64) int {
	top := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[top] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return int(top)
}

func (h *heap) update(v int, act *[]float64) {
	if !h.contains(v) {
		return
	}
	h.up(int(h.pos[v]), act)
}

func (h *heap) up(i int, act *[]float64) {
	a := *act
	for i > 0 {
		p := (i - 1) / 2
		if a[h.data[i]] <= a[h.data[p]] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *heap) down(i int, act *[]float64) {
	a := *act
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.data) && a[h.data[l]] > a[h.data[best]] {
			best = l
		}
		if r < len(h.data) && a[h.data[r]] > a[h.data[best]] {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *heap) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.pos[h.data[i]] = int32(i)
	h.pos[h.data[j]] = int32(j)
}
