// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver. It is the combinatorial search engine underneath ParserHawk's
// synthesis queries, standing in for Z3's finite-domain core (the paper
// uses Z3 purely as a bitvector/boolean constraint solver; see DESIGN.md).
//
// The engine is Glucose-class: clause literals live in one flat arena
// addressed by clause references (no per-clause heap objects, so
// propagation walks contiguous memory and the reducer compacts by arena
// GC), watchers carry a cached blocking literal that skips the arena
// dereference when the clause is already satisfied, binary clauses are
// propagated from per-literal implication lists ahead of long clauses,
// and learnt clauses are tracked by literal block distance (LBD) with a
// glue-tiered retention policy. Search is CDCL with VSIDS branching,
// phase saving, first-UIP conflict analysis with clause minimization,
// Luby restarts, and incremental solving under assumptions.
package sat

import (
	"errors"
	"math"
	"sort"
)

// Lit is a literal: variable index v (0-based) with polarity, encoded as
// 2v for the positive literal and 2v+1 for the negation.
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// lbool is a MiniSat-style ternary: XORing with a literal's sign bit
// flips true/false and keeps undef in the ≥2 range, so value() is a load
// and an XOR with no branches.
type lbool uint8

const (
	lTrue  lbool = 0
	lFalse lbool = 1
	lUndef lbool = 2
)

// isUndef reports an unassigned value. After the sign XOR an undef cell
// reads as 2 or 3, so equality against lUndef is NOT the right test.
func (b lbool) isUndef() bool { return b >= 2 }

// cref addresses a clause in the arena: the index of its header word.
type cref = uint32

const (
	// crefUndef is "no clause" (propagation found no conflict).
	crefUndef cref = 0xFFFFFFFF
	// crefBin marks a conflict in a binary clause, whose two literals are
	// in Solver.binConfl — binary clauses have no arena representation.
	crefBin cref = 0xFFFFFFFE
)

// Arena clause layout, in Lit-sized words starting at the cref:
//
//	problem clause: [header, lit0, lit1, ...]
//	learnt clause:  [header, lbd, act(float32 bits), lit0, lit1, ...]
//
// The header packs the literal count and flag bits. Binary clauses never
// enter the arena: they live in the per-literal implication lists.
const (
	hdrLearnt    = 1 << 0
	hdrDeleted   = 1 << 1
	hdrProtected = 1 << 2 // survives one reduceDB round (recently useful)
	hdrReloc     = 1 << 3 // moved by arena GC; next word is the new cref
	hdrImported  = 1 << 4 // adopted from an Exchange pool, not learned here
	hdrSizeShift = 5
)

// reason encoding: a cref, or a binary implication (the implying clause's
// other literal, tagged), or nothing. Binary reasons never materialize a
// clause — conflict analysis reads the literal straight from the tag.
const (
	reasonNone    uint32 = 0xFFFFFFFF
	reasonBinFlag uint32 = 1 << 31
)

func binReason(other Lit) uint32 { return reasonBinFlag | uint32(other) }

// watcher is one entry of a literal's long-clause watch list. blocker is
// any other literal of the clause: if it is already true the clause is
// satisfied and the arena is never touched — the common case.
type watcher struct {
	c       cref
	blocker Lit
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrCanceled is returned (via Solver.Err) when solving stopped because the
// caller's cancel function fired.
var ErrCanceled = errors.New("sat: solve canceled")

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	arena   []Lit  // flat clause storage; crefs index into it
	clauses []cref // long problem clauses
	learnts []cref // long learnt clauses

	// RecordOriginal, when set before clauses are added, logs every clause
	// AddClause receives (pre-simplification) so WriteDIMACS can export the
	// exact instance. Off by default: synthesis runs add millions of
	// clauses and do not need the copy.
	RecordOriginal bool
	original       [][]Lit

	watches    [][]watcher // literal -> long clauses watching it
	binWatches [][]Lit     // literal p -> literals implied when p is true

	assign   []lbool // variable assignment
	level    []int32 // decision level per variable
	reason   []uint32
	phase    []bool // saved phase per variable
	activity []float64
	varInc   float64
	claInc   float64

	order heap // VSIDS priority queue

	trail    []Lit
	trailLim []int32
	qhead    int

	seen     []bool
	lbdStamp []int64 // per-decision-level stamp for LBD counting
	lbdTick  int64
	binConfl [2]Lit // literals of a conflicting binary clause
	addBuf   []Lit  // AddClause scratch

	conflicts  int64
	decisions  int64
	propsN     int64
	binPropsN  int64
	restartsN  int64
	learnedN   int64
	learnedLN  int64
	clausesN   int64
	ticks      int64
	solvesN    int64
	retainedN  int64 // Σ over Solve calls of learned clauses alive at entry
	glueN      int64 // learnt clauses with LBD ≤ 2 at learning time
	binLearntN int64 // learnt binary clauses (kept forever, off-arena)
	lbdHist    [8]int64
	lastDelta  Metrics // counter movement of the most recent Solve call

	// Cancel, when non-nil, is polled periodically; returning true aborts
	// the solve with Unknown and Err() == ErrCanceled.
	Cancel func() bool
	// MaxConflicts, when > 0, bounds total conflicts per Solve call.
	MaxConflicts int64

	// CollectGlue, when set, stages every glue clause (LBD ≤ 2, length ≤
	// maxExportLen) this solver learns into a buffer that DrainGlue hands
	// to an Exchange pool. Off by default: staging copies each clause.
	CollectGlue bool
	glueBuf     [][]Lit
	// ImportHook, when non-nil, is polled at the start of each Solve and at
	// every restart boundary; the clauses it returns are injected at the
	// root level as learnt clauses. The hook must only supply clauses that
	// are implied by this solver's input formula (see Exchange).
	ImportHook  func() [][]Lit
	importedN   int64
	importHitsN int64
	exportedN   int64

	// proof, when non-nil (StartProof), logs every clause-database
	// change in DRAT format; see proof.go. Off by default: the hot path
	// must stay allocation-free.
	proof *proofLog

	err        error
	unsatForce bool // a top-level conflict made the instance permanently UNSAT
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, reasonNone)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.lbdStamp = append(s.lbdStamp, 0)
	s.watches = append(s.watches, nil, nil)
	s.binWatches = append(s.binWatches, nil, nil)
	s.order.push(v, &s.activity)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// Stats reports cumulative decisions, propagations and conflicts.
func (s *Solver) Stats() (decisions, propagations, conflicts int64) {
	return s.decisions, s.propsN, s.conflicts
}

// Metrics is a snapshot of the solver's cumulative search counters. All
// fields grow monotonically over the solver's lifetime (learned-clause
// counts track clauses ever learned, not the live database, which the
// reduceDB garbage collector shrinks).
type Metrics struct {
	Decisions       int64 `json:"decisions"`
	Propagations    int64 `json:"propagations"`
	Conflicts       int64 `json:"conflicts"`
	LearnedClauses  int64 `json:"learned_clauses"`
	LearnedLiterals int64 `json:"learned_literals"`
	Restarts        int64 `json:"restarts"`
	Clauses         int64 `json:"clauses"`
	Vars            int64 `json:"vars"`
	Solves          int64 `json:"solves"`
	// RetainedLearnts sums, over every Solve call, the learned clauses that
	// were alive in the database when the call started — search work carried
	// over from earlier calls instead of re-derived. A solver that is rebuilt
	// for every query always reports zero; an incremental session reports how
	// much the persistent clause database was worth.
	RetainedLearnts int64 `json:"retained_learnts"`
	// BinPropagations counts implications served by the binary implication
	// lists — propagations that never touched the clause arena.
	BinPropagations int64 `json:"bin_propagations"`
	// GlueLearnts counts learnt clauses whose LBD at learning time was ≤ 2
	// ("glue" clauses, exempt from deletion forever).
	GlueLearnts int64 `json:"glue_learnts"`
	// LBDHist buckets learnt clauses by LBD at learning time: index i holds
	// LBD i+1 for i < 7, and the last bucket holds LBD ≥ 8.
	LBDHist [8]int64 `json:"lbd_hist"`
	// ExportedClauses counts glue clauses this solver drained for an
	// Exchange pool; ImportedClauses counts clauses adopted from a pool;
	// ImportHits counts the times an imported clause participated in
	// conflict analysis — the proof work the exchange actually saved.
	ExportedClauses int64 `json:"exported_clauses"`
	ImportedClauses int64 `json:"imported_clauses"`
	ImportHits      int64 `json:"import_hits"`
}

// Add accumulates another snapshot into m (for aggregating across the
// many solver instances a synthesis run creates).
func (m *Metrics) Add(o Metrics) {
	m.Decisions += o.Decisions
	m.Propagations += o.Propagations
	m.Conflicts += o.Conflicts
	m.LearnedClauses += o.LearnedClauses
	m.LearnedLiterals += o.LearnedLiterals
	m.Restarts += o.Restarts
	m.Clauses += o.Clauses
	m.Vars += o.Vars
	m.Solves += o.Solves
	m.RetainedLearnts += o.RetainedLearnts
	m.BinPropagations += o.BinPropagations
	m.GlueLearnts += o.GlueLearnts
	m.ExportedClauses += o.ExportedClauses
	m.ImportedClauses += o.ImportedClauses
	m.ImportHits += o.ImportHits
	for i := range m.LBDHist {
		m.LBDHist[i] += o.LBDHist[i]
	}
}

// Sub returns the counter movement from an earlier snapshot o to m. All
// fields are monotone over a solver's lifetime, so the result is the exact
// effort spent between the two snapshots.
func (m Metrics) Sub(o Metrics) Metrics {
	out := Metrics{
		Decisions:       m.Decisions - o.Decisions,
		Propagations:    m.Propagations - o.Propagations,
		Conflicts:       m.Conflicts - o.Conflicts,
		LearnedClauses:  m.LearnedClauses - o.LearnedClauses,
		LearnedLiterals: m.LearnedLiterals - o.LearnedLiterals,
		Restarts:        m.Restarts - o.Restarts,
		Clauses:         m.Clauses - o.Clauses,
		Vars:            m.Vars - o.Vars,
		Solves:          m.Solves - o.Solves,
		RetainedLearnts: m.RetainedLearnts - o.RetainedLearnts,
		BinPropagations: m.BinPropagations - o.BinPropagations,
		GlueLearnts:     m.GlueLearnts - o.GlueLearnts,
		ExportedClauses: m.ExportedClauses - o.ExportedClauses,
		ImportedClauses: m.ImportedClauses - o.ImportedClauses,
		ImportHits:      m.ImportHits - o.ImportHits,
	}
	for i := range out.LBDHist {
		out.LBDHist[i] = m.LBDHist[i] - o.LBDHist[i]
	}
	return out
}

// Metrics returns the solver's cumulative counters.
func (s *Solver) Metrics() Metrics {
	return Metrics{
		Decisions:       s.decisions,
		Propagations:    s.propsN,
		Conflicts:       s.conflicts,
		LearnedClauses:  s.learnedN,
		LearnedLiterals: s.learnedLN,
		Restarts:        s.restartsN,
		Clauses:         s.clausesN,
		Vars:            int64(len(s.assign)),
		Solves:          s.solvesN,
		RetainedLearnts: s.retainedN,
		BinPropagations: s.binPropsN,
		GlueLearnts:     s.glueN,
		LBDHist:         s.lbdHist,
		ExportedClauses: s.exportedN,
		ImportedClauses: s.importedN,
		ImportHits:      s.importHitsN,
	}
}

// LastSolveDelta returns the counter movement of the most recent Solve
// call alone: how many decisions, conflicts, learned clauses, and so on
// that single query cost, as opposed to the solver's lifetime totals.
func (s *Solver) LastSolveDelta() Metrics { return s.lastDelta }

// LearntsLive returns the number of learned clauses currently alive in
// the database — long learnts plus binary learnts, which live in the
// implication lists and are never deleted. (reduceDB shrinks the long
// part; the cumulative LearnedClauses metric never shrinks.)
func (s *Solver) LearntsLive() int { return len(s.learnts) + int(s.binLearntN) }

// Err returns the reason a solve ended Unknown, if any.
func (s *Solver) Err() error { return s.err }

// ---- arena accessors ----

func (s *Solver) claSize(c cref) int { return int(uint32(s.arena[c]) >> hdrSizeShift) }

func (s *Solver) claBase(c cref) cref {
	if s.arena[c]&hdrLearnt != 0 {
		return c + 3
	}
	return c + 1
}

func (s *Solver) claLits(c cref) []Lit {
	b := s.claBase(c)
	return s.arena[b : b+cref(s.claSize(c))]
}

func (s *Solver) claLBD(c cref) int      { return int(s.arena[c+1]) }
func (s *Solver) setLBD(c cref, lbd int) { s.arena[c+1] = Lit(lbd) }

func (s *Solver) claAct(c cref) float32 {
	return math.Float32frombits(uint32(s.arena[c+2]))
}

func (s *Solver) setAct(c cref, a float32) {
	s.arena[c+2] = Lit(int32(math.Float32bits(a)))
}

// allocClause appends a clause to the arena and returns its reference.
func (s *Solver) allocClause(lits []Lit, learnt bool, lbd int) cref {
	c := cref(len(s.arena))
	hdr := Lit(len(lits) << hdrSizeShift)
	if learnt {
		hdr |= hdrLearnt
	}
	s.arena = append(s.arena, hdr)
	if learnt {
		s.arena = append(s.arena, Lit(lbd), 0) // lbd word, activity word
	}
	s.arena = append(s.arena, lits...)
	return c
}

func (s *Solver) watchClause(c cref) {
	b := s.claBase(c)
	l0, l1 := s.arena[b], s.arena[b+1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c, l0})
}

func (s *Solver) addBinWatch(a, b Lit) {
	s.binWatches[a.Not()] = append(s.binWatches[a.Not()], b)
	s.binWatches[b.Not()] = append(s.binWatches[b.Not()], a)
}

// AddClause adds a problem clause. It returns false when the clause makes
// the instance trivially unsatisfiable at the top level. Literals over
// unallocated variables are an error by construction (panic), as they
// indicate an encoder bug.
func (s *Solver) AddClause(lits ...Lit) bool {
	s.clausesN++
	if s.RecordOriginal {
		s.original = append(s.original, append([]Lit(nil), lits...))
	}
	if s.unsatForce {
		return false
	}
	// Must be at decision level 0 for top-level simplification.
	s.backtrackTo(0)
	// Sort, dedupe, drop false literals, detect tautology.
	ls := append(s.addBuf[:0], lits...)
	s.addBuf = ls[:0]
	insertionSortLits(ls)
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l.Var() >= len(s.assign) {
			panic("sat: literal over unallocated variable")
		}
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsatForce = true
		return false
	case 1:
		return s.addUnit(out[0])
	case 2:
		s.addBinWatch(out[0], out[1])
		return true
	}
	c := s.allocClause(out, false, 0)
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

// AddBinary adds the two-literal clause (a ∨ b): the same semantics as
// AddClause(a, b), but skipping the simplification scratch work, so
// binary-heavy encoders (Tseitin gates are mostly binary clauses) emit
// straight into the implication lists.
func (s *Solver) AddBinary(a, b Lit) bool {
	s.clausesN++
	if s.RecordOriginal {
		s.original = append(s.original, []Lit{a, b})
	}
	if s.unsatForce {
		return false
	}
	if a.Var() >= len(s.assign) || b.Var() >= len(s.assign) {
		panic("sat: literal over unallocated variable")
	}
	s.backtrackTo(0)
	if a == b.Not() {
		return true // tautology
	}
	va, vb := s.value(a), s.value(b)
	switch {
	case va == lTrue || vb == lTrue:
		return true
	case a == b:
		return s.addUnit(a)
	case va == lFalse && vb == lFalse:
		s.unsatForce = true
		return false
	case va == lFalse:
		return s.addUnit(b)
	case vb == lFalse:
		return s.addUnit(a)
	}
	s.addBinWatch(a, b)
	return true
}

// addUnit asserts a top-level fact and propagates it.
func (s *Solver) addUnit(l Lit) bool {
	if !s.enqueue(l, reasonNone) {
		s.unsatForce = true
		return false
	}
	if s.propagate() != crefUndef {
		s.unsatForce = true
		return false
	}
	return true
}

// insertionSortLits sorts small literal slices without the sort.Slice
// closure overhead; AddClause calls this once per clause.
func insertionSortLits(ls []Lit) {
	if len(ls) > 32 {
		sort.Slice(ls, func(a, b int) bool { return ls[a] < ls[b] })
		return
	}
	for i := 1; i < len(ls); i++ {
		l := ls[i]
		j := i - 1
		for j >= 0 && ls[j] > l {
			ls[j+1] = ls[j]
			j--
		}
		ls[j+1] = l
	}
}

func (s *Solver) value(l Lit) lbool {
	return s.assign[l.Var()] ^ lbool(l&1)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l Lit, from uint32) bool {
	switch v := s.value(l); {
	case v == lTrue:
		return true
	case v == lFalse:
		return false
	}
	v := l.Var()
	s.assign[v] = lbool(l & 1)
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; it returns the conflicting clause
// reference, crefBin for a binary conflict (literals in binConfl), or
// crefUndef when a fixpoint is reached without conflict.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propsN++

		// Binary implications first: a tight loop over the implication
		// list, no arena access, no watcher bookkeeping.
		for _, q := range s.binWatches[p] {
			switch s.value(q) {
			case lTrue:
			case lFalse:
				s.binConfl[0] = q
				s.binConfl[1] = p.Not()
				return crefBin
			default:
				s.binPropsN++
				s.enqueue(q, binReason(p.Not()))
			}
		}

		ws := s.watches[p]
		n := len(ws)
		j := 0
		for i := 0; i < n; i++ {
			w := ws[i]
			// Blocking literal: if any cached literal of the clause is
			// already true, the clause is satisfied — skip the arena.
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			base := int(s.claBase(c))
			// Normalize: make arena[base+1] the falsified watch.
			if s.arena[base] == p.Not() {
				s.arena[base], s.arena[base+1] = s.arena[base+1], s.arena[base]
			}
			first := s.arena[base]
			nw := watcher{c, first}
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = nw
				j++
				continue
			}
			// Find a new literal to watch.
			size := s.claSize(c)
			found := false
			for k := 2; k < size; k++ {
				if s.value(s.arena[base+k]) != lFalse {
					s.arena[base+1], s.arena[base+k] = s.arena[base+k], s.arena[base+1]
					nl := s.arena[base+1].Not()
					s.watches[nl] = append(s.watches[nl], nw)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			ws[j] = nw
			j++
			if !s.enqueue(first, c) {
				// Conflict: retain remaining watchers and report.
				for i++; i < n; i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				return c
			}
		}
		s.watches[p] = ws[:j]
	}
	return crefUndef
}

func (s *Solver) backtrackTo(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = reasonNone
		if !s.order.contains(v) {
			s.order.push(v, &s.activity)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, &s.activity)
}

func (s *Solver) bumpClauseAct(c cref) {
	a := s.claAct(c) + float32(s.claInc)
	s.setAct(c, a)
	if a > 1e20 {
		for _, lc := range s.learnts {
			s.setAct(lc, s.claAct(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

// claUsed bumps a learnt clause that participated in conflict analysis:
// activity, plus a dynamic LBD refresh — if the clause's literals now
// span fewer decision levels than when it was learned, the stored LBD
// improves, and the clause is protected from the next reduceDB round.
func (s *Solver) claUsed(c cref) {
	if s.arena[c]&hdrLearnt == 0 {
		return
	}
	if s.arena[c]&hdrImported != 0 {
		s.importHitsN++
	}
	s.bumpClauseAct(c)
	lbd := s.computeLBD(s.claLits(c))
	if lbd < s.claLBD(c) {
		s.setLBD(c, lbd)
		s.arena[c] |= hdrProtected
	}
}

// computeLBD counts the distinct nonzero decision levels among lits.
func (s *Solver) computeLBD(lits []Lit) int {
	s.lbdTick++
	n := 0
	for _, q := range lits {
		lvl := s.level[q.Var()]
		if lvl == 0 {
			continue
		}
		// Decision levels can exceed the variable count: already-implied
		// assumptions open empty levels. Grow the stamp array on demand.
		if int(lvl) >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, make([]int64, int(lvl)+1-len(s.lbdStamp))...)
		}
		if s.lbdStamp[lvl] != s.lbdTick {
			s.lbdStamp[lvl] = s.lbdTick
			n++
		}
	}
	return n
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first), the backjump level, and the
// learned clause's LBD.
func (s *Solver) analyze(confl cref) ([]Lit, int, int) {
	learned := []Lit{0} // reserve slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	var marked []int // every var whose seen flag we set, cleared at the end

	process := func(q Lit) {
		v := q.Var()
		if s.seen[v] || s.level[v] == 0 {
			return
		}
		s.seen[v] = true
		marked = append(marked, v)
		s.bumpVar(v)
		if int(s.level[v]) >= s.decisionLevel() {
			counter++
		} else {
			learned = append(learned, q)
		}
	}

	// Seed with the conflicting clause's literals.
	if confl == crefBin {
		process(s.binConfl[0])
		process(s.binConfl[1])
	} else {
		s.claUsed(confl)
		for _, q := range s.claLits(confl) {
			process(q)
		}
	}
	for {
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		// Expand p's antecedent. A binary reason is the single stored
		// literal — no clause is materialized.
		if r := s.reason[p.Var()]; r&reasonBinFlag != 0 {
			process(Lit(r &^ reasonBinFlag))
		} else {
			s.claUsed(cref(r))
			for _, q := range s.claLits(cref(r))[1:] {
				process(q)
			}
		}
	}
	learned[0] = p.Not()

	// Clause minimization: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(learned); i++ {
		v := learned[i].Var()
		r := s.reason[v]
		if r == reasonNone {
			learned[j] = learned[i]
			j++
			continue
		}
		redundant := true
		if r&reasonBinFlag != 0 {
			q := Lit(r &^ reasonBinFlag)
			if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
				redundant = false
			}
		} else {
			for _, q := range s.claLits(cref(r))[1:] {
				if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
					redundant = false
					break
				}
			}
		}
		if !redundant {
			learned[j] = learned[i]
			j++
		}
	}
	learned = learned[:j]

	// LBD of the learned clause, while every literal is still assigned.
	lbd := s.computeLBD(learned)

	// Backjump level: highest level among learned[1:].
	bt := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()] > s.level[learned[maxI].Var()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		bt = int(s.level[learned[1].Var()])
	}
	for _, v := range marked {
		s.seen[v] = false
	}
	return learned, bt, lbd
}

func (s *Solver) record(learned []Lit, lbd int) {
	s.learnedN++
	s.learnedLN += int64(len(learned))
	b := lbd
	if b < 1 {
		b = 1
	}
	if b > len(s.lbdHist) {
		b = len(s.lbdHist)
	}
	s.lbdHist[b-1]++
	if lbd <= 2 {
		s.glueN++
		if s.CollectGlue && len(learned) <= maxExportLen {
			s.glueBuf = append(s.glueBuf, append([]Lit(nil), learned...))
		}
	}
	if s.proof != nil {
		s.proof.add(learned)
	}
	switch len(learned) {
	case 1:
		s.enqueue(learned[0], reasonNone)
	case 2:
		// Learnt binaries join the implication lists permanently; they are
		// glue-or-better and are never deleted.
		s.addBinWatch(learned[0], learned[1])
		s.binLearntN++
		s.enqueue(learned[0], binReason(learned[1]))
	default:
		c := s.allocClause(learned, true, lbd)
		s.learnts = append(s.learnts, c)
		s.watchClause(c)
		s.bumpClauseAct(c)
		s.enqueue(learned[0], c)
	}
}

// maxExportLen bounds the length of clauses staged for exchange. Glue
// status is about decision levels, not length, so a glue clause can still
// be long; shipping only short ones keeps pool traffic and import cost low.
const maxExportLen = 8

// DrainGlue returns the glue clauses staged since the previous drain,
// transferring ownership to the caller (typically to Exchange.Publish).
// The staging buffer is reset.
func (s *Solver) DrainGlue() [][]Lit {
	b := s.glueBuf
	s.glueBuf = nil
	s.exportedN += int64(len(b))
	return b
}

// importPending polls ImportHook and injects the received clauses at the
// root level. Returns false when an import (with propagation) makes the
// instance permanently unsatisfiable.
func (s *Solver) importPending() bool {
	if s.ImportHook == nil {
		return true
	}
	batch := s.ImportHook()
	if len(batch) == 0 {
		return true
	}
	s.backtrackTo(0)
	for _, lits := range batch {
		if !s.importClause(lits) {
			s.unsatForce = true
			return false
		}
	}
	if s.propagate() != crefUndef {
		s.unsatForce = true
		return false
	}
	return true
}

// importClause adopts one exchanged clause as a learnt clause. The input
// slice is shared with other importers and is never mutated; literals are
// copied through the AddClause scratch buffer. Must run at decision level
// 0. Returns false on a top-level contradiction.
func (s *Solver) importClause(lits []Lit) bool {
	ls := append(s.addBuf[:0], lits...)
	s.addBuf = ls[:0]
	insertionSortLits(ls)
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l.Var() >= len(s.assign) {
			// Mentions a variable this solver has not allocated; the
			// Exchange's maxVar filter should prevent this — skip defensively.
			return true
		}
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		out = append(out, l)
		prev = l
	}
	s.importedN++
	if s.proof != nil {
		// Log the original literals: level-0 simplification only drops
		// falsified or duplicate literals, and the checker attributes the
		// clause to the exchange via the comment.
		s.proof.comment("import")
		s.proof.add(lits)
	}
	switch len(out) {
	case 0:
		return false
	case 1:
		return s.enqueue(out[0], reasonNone)
	case 2:
		// Imported binaries join the implication lists permanently, like
		// learnt binaries.
		s.addBinWatch(out[0], out[1])
		s.binLearntN++
		return true
	}
	c := s.allocClause(out, true, 2)
	s.arena[c] |= hdrImported
	s.learnts = append(s.learnts, c)
	s.watchClause(c)
	return true
}

// Diversify perturbs the solver's VSIDS activities and saved phases with a
// deterministic pseudorandom stream derived from seed, so portfolio clones
// of the same encoding explore the search space in different orders. Call
// after encoding and before the first Solve.
func (s *Solver) Diversify(seed int64) {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019
	for v := range s.assign {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		s.activity[v] = float64(x&0x3FF) * 1e-7
		s.phase[v] = x&0x400 != 0
	}
	s.order.rebuild(&s.activity)
}

// reduceDB trims the long learnt database with a glue-tiered policy:
// glue clauses (LBD ≤ 2) and locked clauses are kept forever, clauses
// that were useful since the last reduction (protected) get one more
// round, and of the rest the worse half — highest LBD first, lowest
// activity as tie-break — is deleted. The arena is then compacted.
func (s *Solver) reduceDB() {
	type cand struct {
		c   cref
		lbd int32
		act float32
	}
	var removable []cand
	keep := s.learnts[:0]
	for _, c := range s.learnts {
		switch {
		case s.claLBD(c) <= 2 || s.locked(c):
			keep = append(keep, c)
		case s.arena[c]&hdrProtected != 0:
			s.arena[c] &^= hdrProtected
			keep = append(keep, c)
		default:
			removable = append(removable, cand{c, int32(s.claLBD(c)), s.claAct(c)})
		}
	}
	sort.Slice(removable, func(a, b int) bool {
		if removable[a].lbd != removable[b].lbd {
			return removable[a].lbd > removable[b].lbd
		}
		return removable[a].act < removable[b].act
	})
	half := len(removable) / 2
	for i, r := range removable {
		if i < half {
			if s.proof != nil {
				s.proof.del(s.claLits(r.c))
			}
			s.arena[r.c] |= hdrDeleted
		} else {
			keep = append(keep, r.c)
		}
	}
	s.learnts = keep
	s.garbageCollect()
}

// garbageCollect compacts the arena: live clauses are copied to a fresh
// slab in allocation order, clause references in the problem/learnt lists
// and in trail reasons are patched via forwarding pointers, and the long
// watch lists are rebuilt. Deleted clauses vanish; binary implication
// lists are untouched (binaries never live in the arena).
func (s *Solver) garbageCollect() {
	old := s.arena
	s.arena = make([]Lit, 0, len(old))
	reloc := func(c cref) cref {
		hdr := old[c]
		n := cref(uint32(hdr)>>hdrSizeShift) + 1
		if hdr&hdrLearnt != 0 {
			n += 2
		}
		nc := cref(len(s.arena))
		s.arena = append(s.arena, old[c:c+n]...)
		old[c] = hdr | hdrReloc
		old[c+1] = Lit(int32(nc))
		return nc
	}
	for i, c := range s.clauses {
		s.clauses[i] = reloc(c)
	}
	for i, c := range s.learnts {
		s.learnts[i] = reloc(c)
	}
	for _, l := range s.trail {
		v := l.Var()
		r := s.reason[v]
		if r == reasonNone || r&reasonBinFlag != 0 {
			continue
		}
		if old[r]&hdrReloc == 0 {
			panic("sat: reason clause collected") // locked clauses are kept; unreachable
		}
		s.reason[v] = uint32(int32(old[r+1]))
	}
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for _, c := range s.clauses {
		s.watchClause(c)
	}
	for _, c := range s.learnts {
		s.watchClause(c)
	}
}

func (s *Solver) locked(c cref) bool {
	l0 := s.arena[s.claBase(c)]
	return s.value(l0) == lTrue && s.reason[l0.Var()] == c
}

// luby computes the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// Solve searches for a model extending the given assumption literals.
// On Sat, Model reads the satisfying assignment. On Unsat under
// assumptions, the instance may still be satisfiable under others — the
// solver stays usable: clauses learned during the call (including those
// mentioning assumption literals, which are implied by the formula alone)
// are retained for later calls.
func (s *Solver) Solve(assumptions ...Lit) Status {
	before := s.Metrics()
	s.solvesN++
	s.retainedN += int64(s.LearntsLive())
	st := s.solve(assumptions...)
	s.lastDelta = s.Metrics().Sub(before)
	return st
}

func (s *Solver) solve(assumptions ...Lit) Status {
	s.err = nil
	if s.unsatForce {
		return Unsat
	}
	s.backtrackTo(0)
	if s.propagate() != crefUndef {
		s.unsatForce = true
		return Unsat
	}
	if !s.importPending() {
		return Unsat
	}

	var restarts int64 = 1
	conflictBudget := luby(restarts) * 100
	conflictsHere := int64(0)
	maxLearnts := int64(len(s.clauses)/3 + 500)

	for {
		// Cancellation poll. Counted in loop ticks, not conflicts, so both
		// conflict storms and long decision/propagation stretches (where the
		// conflict counter stands still) notice a cancel promptly. On
		// interrupt the answer is Unknown — never Unsat: the search was cut
		// short, so unsatisfiability was not established.
		s.ticks++
		if s.Cancel != nil && s.ticks&255 == 0 && s.Cancel() {
			s.err = ErrCanceled
			return Unknown
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.unsatForce = true
				return Unsat
			}
			// Do not analyze below the assumption levels: if the conflict
			// is forced by assumptions, report Unsat for this call.
			learned, bt, lbd := s.analyze(confl)
			if len(learned) == 1 {
				// A unit learned clause is a root-level fact independent of
				// the assumptions. Enqueue it at level 0 — placing it at the
				// clamped assumption level would put a second nil-reason
				// literal inside that level and corrupt later conflict
				// analysis. The loop re-places the assumptions afterwards and
				// reports Unsat if the new fact falsifies one.
				s.backtrackTo(0)
				s.record(learned, lbd)
				s.varInc /= 0.95
				s.claInc /= 0.999
				continue
			}
			if bt < s.assumptionLevel(assumptions) {
				bt = s.assumptionLevel(assumptions)
				s.backtrackTo(bt)
				// Re-propagation may fail under assumptions.
				if s.value(learned[0]) == lFalse {
					s.record(learned, lbd)
					return Unsat
				}
			} else {
				s.backtrackTo(bt)
			}
			s.record(learned, lbd)
			s.varInc /= 0.95
			s.claInc /= 0.999
			continue
		}

		if s.MaxConflicts > 0 && conflictsHere > s.MaxConflicts {
			return Unknown
		}
		if conflictsHere > conflictBudget*restarts {
			restarts++
			s.restartsN++
			conflictBudget = luby(restarts) * 100
			s.backtrackTo(s.assumptionLevel(assumptions))
			// Restart boundaries are the import points: the trail is short,
			// so injecting root-level clauses here is cheap, and the fresh
			// descent gets to propagate them from the start.
			if !s.importPending() {
				return Unsat
			}
		}
		if int64(len(s.learnts)) > maxLearnts {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}

		// Place assumptions first.
		if lvl := s.decisionLevel(); lvl < len(assumptions) {
			a := assumptions[lvl]
			switch s.value(a) {
			case lTrue:
				// Already implied: open an empty decision level for it.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				continue
			case lFalse:
				return Unsat
			}
			s.trailLim = append(s.trailLim, int32(len(s.trail)))
			s.enqueue(a, reasonNone)
			continue
		}

		// Pick a branching variable.
		v := -1
		for !s.order.empty() {
			cand := s.order.pop(&s.activity)
			if s.assign[cand].isUndef() {
				v = cand
				break
			}
		}
		if v < 0 {
			return Sat
		}
		s.decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(MkLit(v, !s.phase[v]), reasonNone)
	}
}

func (s *Solver) assumptionLevel(assumptions []Lit) int {
	if len(assumptions) < s.decisionLevel() {
		return len(assumptions)
	}
	return s.decisionLevel()
}

// Model returns the value of variable v in the last Sat answer.
func (s *Solver) Model(v int) bool { return s.assign[v] == lTrue }

// heap is a max-heap on variable activity (VSIDS order).
type heap struct {
	data []int32
	pos  []int32 // var -> index in data, -1 when absent
}

func (h *heap) ensure(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *heap) empty() bool { return len(h.data) == 0 }

func (h *heap) contains(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *heap) push(v int, act *[]float64) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, int32(v))
	h.pos[v] = int32(len(h.data) - 1)
	h.up(len(h.data)-1, act)
}

func (h *heap) pop(act *[]float64) int {
	top := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[top] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return int(top)
}

func (h *heap) update(v int, act *[]float64) {
	if !h.contains(v) {
		return
	}
	h.up(int(h.pos[v]), act)
}

// rebuild restores the heap property after arbitrary activity rewrites
// (update only handles increases; Diversify can move entries both ways).
func (h *heap) rebuild(act *[]float64) {
	for i := len(h.data)/2 - 1; i >= 0; i-- {
		h.down(i, act)
	}
}

func (h *heap) up(i int, act *[]float64) {
	a := *act
	for i > 0 {
		p := (i - 1) / 2
		if a[h.data[i]] <= a[h.data[p]] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *heap) down(i int, act *[]float64) {
	a := *act
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.data) && a[h.data[l]] > a[h.data[best]] {
			best = l
		}
		if r < len(h.data) && a[h.data[r]] > a[h.data[best]] {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *heap) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.pos[h.data[i]] = int32(i)
	h.pos[h.data[j]] = int32(j)
}
