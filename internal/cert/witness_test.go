package cert

import (
	"testing"

	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// miniSpec is an ethernet-like two-state spec: extract a 16-bit type,
// branch on it, maybe extract one more byte.
func miniSpec(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("mini",
		[]pir.Field{{Name: "ethertype", Width: 16}, {Name: "v4", Width: 8}},
		[]pir.State{
			{
				Name:     "start",
				Extracts: []pir.Extract{{Field: "ethertype"}},
				Key:      []pir.KeyPart{pir.WholeField("ethertype", 16)},
				Rules:    []pir.Rule{pir.ExactRule(0x0800, 16, pir.To(1))},
				Default:  pir.AcceptTarget,
			},
			{
				Name:     "v4",
				Extracts: []pir.Extract{{Field: "v4"}},
				Default:  pir.AcceptTarget,
			},
		})
}

// miniProg is the match-then-extract TCAM translation of miniSpec: the
// type is matched by lookahead before it is extracted.
func miniProg(spec *pir.Spec) *tcam.Program {
	return &tcam.Program{
		Spec: spec,
		States: []tcam.State{
			{
				Table: 0, ID: 0,
				Key: []pir.KeyPart{pir.LookaheadBits(0, 16)},
				Entries: []tcam.Entry{
					{Value: 0x0800, Mask: 0xffff, Extracts: []pir.Extract{{Field: "ethertype"}}, Next: tcam.To(0, 1)},
					{Value: 0, Mask: 0, Extracts: []pir.Extract{{Field: "ethertype"}}, Next: tcam.AcceptTarget},
				},
			},
			{
				Table: 0, ID: 1,
				Entries: []tcam.Entry{
					{Value: 0, Mask: 0, Extracts: []pir.Extract{{Field: "v4"}}, Next: tcam.AcceptTarget},
				},
			},
		},
	}
}

func TestWitnessRoundTrip(t *testing.T) {
	spec := miniSpec(t)
	prog := miniProg(spec)
	w, err := BuildWitness(spec, prog)
	if err != nil {
		t.Fatalf("BuildWitness: %v", err)
	}
	want := map[Pair]bool{
		{Spec: "start", Impl: "0.0"}: true,
		{Spec: "v4", Impl: "0.1"}:    true,
	}
	if len(w.Pairs) != len(want) {
		t.Fatalf("got pairs %v, want %v", w.Pairs, want)
	}
	for _, p := range w.Pairs {
		if !want[p] {
			t.Fatalf("unexpected pair %s", p)
		}
	}
	if err := CheckWitness(spec, prog, w); err != nil {
		t.Fatalf("CheckWitness: %v", err)
	}
}

func TestWitnessRejectsMissingPair(t *testing.T) {
	spec := miniSpec(t)
	prog := miniProg(spec)
	w, err := BuildWitness(spec, prog)
	if err != nil {
		t.Fatalf("BuildWitness: %v", err)
	}
	for i := range w.Pairs {
		cut := &Witness{Pairs: append(append([]Pair(nil), w.Pairs[:i]...), w.Pairs[i+1:]...)}
		if err := CheckWitness(spec, prog, cut); err == nil {
			t.Fatalf("dropping pair %s was not rejected", w.Pairs[i])
		}
	}
}

func TestWitnessCatchesWrongTarget(t *testing.T) {
	spec := miniSpec(t)
	prog := miniProg(spec)
	// Corrupt the program: the IPv4 branch accepts immediately instead
	// of extracting the next byte.
	prog.States[0].Entries[0].Next = tcam.AcceptTarget
	if _, err := BuildWitness(spec, prog); err == nil {
		t.Fatal("BuildWitness accepted a program that skips an extraction")
	}
	w, _ := BuildWitness(spec, miniProg(spec))
	if err := CheckWitness(spec, prog, w); err == nil {
		t.Fatal("CheckWitness accepted a program that skips an extraction")
	}
}

func TestWitnessCatchesExtractionMismatch(t *testing.T) {
	spec := miniSpec(t)
	prog := miniProg(spec)
	prog.States[0].Entries[1].Extracts = nil // accept path forgets the extraction
	if _, err := BuildWitness(spec, prog); err == nil {
		t.Fatal("BuildWitness accepted a program that drops an extraction")
	}
}

func TestWitnessShadowedEntryPruned(t *testing.T) {
	// The second, fully-wildcarded entry shadows everything after it;
	// an unreachable garbage entry must not fail the check.
	spec := miniSpec(t)
	prog := miniProg(spec)
	prog.States[0].Entries = append(prog.States[0].Entries, tcam.Entry{
		Value: 0x1234, Mask: 0xffff, Next: tcam.RejectTarget,
	})
	if _, err := BuildWitness(spec, prog); err != nil {
		t.Fatalf("BuildWitness rejected a program with a shadowed entry: %v", err)
	}
}

func TestWitnessNoMatchMustReject(t *testing.T) {
	// An impl state whose entries do not cover the key space rejects on
	// the uncovered values while the spec accepts: must be caught.
	spec := miniSpec(t)
	prog := miniProg(spec)
	prog.States[0].Entries = prog.States[0].Entries[:1] // only the 0x0800 entry
	if _, err := BuildWitness(spec, prog); err == nil {
		t.Fatal("BuildWitness accepted a program with an uncovered key space")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := miniSpec(t)
	data, err := EncodeSpecJSON(spec)
	if err != nil {
		t.Fatalf("EncodeSpecJSON: %v", err)
	}
	back, err := DecodeSpecJSON(data)
	if err != nil {
		t.Fatalf("DecodeSpecJSON: %v", err)
	}
	if back.String() != spec.String() {
		t.Fatalf("spec round-trip drift:\n%s\nvs\n%s", back, spec)
	}
}

func TestCheckDRAT(t *testing.T) {
	cnf := "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n"
	proof := "2 0\n0\n"
	if err := CheckDRAT([]byte(cnf), []byte(proof), Strict); err != nil {
		t.Fatalf("valid refutation rejected: %v", err)
	}
	// Dropping the lemma leaves the empty clause underivable.
	if err := CheckDRAT([]byte(cnf), []byte("0\n"), Strict); err == nil {
		t.Fatal("truncated proof accepted")
	}
	// A non-RUP addition must be rejected...
	bogus := "c import\n3 0\n0\n"
	if err := CheckDRAT([]byte(cnf), []byte(bogus), Strict); err == nil {
		t.Fatal("strict mode accepted a non-RUP import")
	}
	// ...unless it is an import and the checker is tolerant. The axiom
	// 3 plus the instance still needs the rest of the refutation.
	tolerated := "c import\n3 0\n2 0\n0\n"
	if err := CheckDRAT([]byte(cnf), []byte(tolerated), Tolerant); err != nil {
		t.Fatalf("tolerant mode rejected an imported axiom: %v", err)
	}
	// A satisfiable instance has no refutation.
	sat := "p cnf 2 1\n1 2 0\n"
	if err := CheckDRAT([]byte(sat), []byte("0\n"), Strict); err == nil {
		t.Fatal("claimed refutation of a satisfiable instance accepted")
	}
	if err := CheckDRAT([]byte("garbage in"), []byte("0\n"), Strict); err == nil {
		t.Fatal("malformed DIMACS not reported")
	}
}

func TestCheckDRATDeletion(t *testing.T) {
	cnf := "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n"
	proof := "2 0\nd 1 2 0\n0\n"
	if err := CheckDRAT([]byte(cnf), []byte(proof), Strict); err != nil {
		t.Fatalf("refutation with deletion rejected: %v", err)
	}
}
