// Package cert defines the compilation certificate ParserHawk emits
// alongside every synthesized parser and the independent static checkers
// that validate it.
//
// A certificate has two halves:
//
//   - a bisimulation witness — the spec-state ↔ TCAM-row relation the
//     product-automaton checker in witness.go verifies statically, with
//     no packet simulation and no dependence on the CEGIS verifier in
//     internal/core/verify.go; and
//   - an optional DRAT proof bundle — the DIMACS CNF and clausal proof
//     of the hardest UNSAT solver query, validated by the forward
//     unit-propagation checker in drat.go.
//
// This package deliberately imports only the IRs (pir, tcam): it must
// never import internal/core, so a bug in the synthesizer cannot leak
// into the checker that is supposed to catch it.
package cert

import (
	"encoding/json"
	"fmt"
	"strconv"

	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// Version is the certificate schema version this package reads and
// writes. Checkers reject certificates from a different major schema.
const Version = 1

// Certificate is the self-contained proof-carrying artifact emitted by a
// compile. It embeds everything a checker needs: the effective spec the
// synthesizer actually targeted (post-lint-prune, post-unroll), the
// compiled TCAM program, the witness relating the two, and optionally a
// DRAT proof for the compile's hardest UNSAT query.
type Certificate struct {
	Version int    `json:"version"`
	Spec    string `json:"spec"`    // name of the input specification
	SpecSHA string `json:"specSHA"` // sha256 of the canonical P4 text of the input spec
	Profile string `json:"profile"` // hardware profile the program targets
	// Arch is the profile's architecture class (hw.Arch.String()), so a
	// checker can re-validate the program under the right device
	// semantics — streaming window/depth rules differ from single-table
	// ones — even when it resolves the profile name differently than the
	// compiling binary did. Empty in pre-arch certificates; checkers then
	// fall back to the resolved profile's own arch.
	Arch   string `json:"arch,omitempty"`
	Unroll int    `json:"unroll,omitempty"`

	// Effective is the structural JSON (EncodeSpecJSON) of the effective
	// spec: the input after the lint/prune fixpoint and, for loopy specs
	// on loop-free targets, after unrolling. The witness relates THIS
	// spec to the program; hawkcheck recomputes it independently from
	// the input spec and refuses certificates where the two disagree.
	Effective json.RawMessage `json:"effective"`

	// Program is the tcam deployment JSON (tcam.EncodeJSON) of the
	// compiled parser.
	Program json.RawMessage `json:"program"`

	Witness *Witness     `json:"witness,omitempty"`
	Proof   *ProofBundle `json:"proof,omitempty"`

	// Error is set instead of Witness when witness construction failed.
	// A compile still succeeds in that case — the certificate records
	// that it is unverifiable, and checkers treat it as failing.
	Error string `json:"error,omitempty"`
}

// Witness is a bisimulation witness: the set of joint (spec state,
// TCAM row) configurations reachable in the product automaton. The
// checker re-traverses the product and demands that every configuration
// it reaches is listed, every transition is matched by the other side,
// and every extraction agrees — so a corrupted or stale witness fails
// closed.
type Witness struct {
	Pairs []Pair `json:"pairs"`
}

// Pair is one joint configuration of the product automaton.
type Pair struct {
	// Spec is the effective-spec state name, or "accept"/"reject" once
	// the spec side has terminated while the implementation still
	// stutters toward its own verdict.
	Spec string `json:"spec"`
	// Partial counts how many of the spec state's extractions have
	// already been performed on entry — nonzero when a wide extraction
	// was split across several TCAM rows.
	Partial int `json:"partial,omitempty"`
	// Impl identifies the TCAM row as "table.state".
	Impl string `json:"impl"`
}

func (p Pair) String() string {
	if p.Partial != 0 {
		return fmt.Sprintf("(%s+%d, %s)", p.Spec, p.Partial, p.Impl)
	}
	return fmt.Sprintf("(%s, %s)", p.Spec, p.Impl)
}

// ProofBundle carries the DRAT proof of the hardest UNSAT solver query a
// compile answered, together with the exact CNF (including assumption
// units) it refutes. Status and Conflicts identify the solve the pair
// came from; both files always refer to the same solver call.
type ProofBundle struct {
	Skeleton  string `json:"skeleton"`
	Budget    int    `json:"budget"`
	Examples  int    `json:"examples"`
	Status    string `json:"status"`
	Conflicts int64  `json:"conflicts"`
	DIMACS    []byte `json:"dimacs"` // base64 in JSON
	DRAT      []byte `json:"drat"`   // base64 in JSON
}

// Encode serializes the certificate as indented JSON.
func (c *Certificate) Encode() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Decode parses a certificate produced by Encode.
func Decode(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("cert: %w", err)
	}
	if c.Version != Version {
		return nil, fmt.Errorf("cert: unsupported certificate version %d (checker speaks %d)", c.Version, Version)
	}
	return &c, nil
}

// SelfCheck validates a certificate against its own embedded effective
// spec and program: witness coverage plus, when a proof bundle is
// present, the DRAT refutation. It does NOT re-derive the effective
// spec from the input — callers that hold the input spec (hawkcheck)
// should additionally compare SpecSHA and the recomputed effective
// spec. Returns nil exactly when the certificate checks.
func (c *Certificate) SelfCheck() error {
	if c.Error != "" {
		return fmt.Errorf("cert: certificate records witness construction failure: %s", c.Error)
	}
	if c.Witness == nil {
		return fmt.Errorf("cert: certificate has no witness")
	}
	eff, err := DecodeSpecJSON(c.Effective)
	if err != nil {
		return fmt.Errorf("cert: effective spec: %w", err)
	}
	prog, err := tcam.DecodeJSON(c.Program)
	if err != nil {
		return fmt.Errorf("cert: program: %w", err)
	}
	if err := CheckWitness(eff, prog, c.Witness); err != nil {
		return err
	}
	if c.Proof != nil {
		if err := CheckDRAT(c.Proof.DIMACS, c.Proof.DRAT, Tolerant); err != nil {
			return fmt.Errorf("cert: proof: %w", err)
		}
	}
	return nil
}

// jsonSpec is the structural JSON form of a pir.Spec. The effective
// spec is stored structurally rather than as P4 text because unrolled
// state names ("mpls@2") need not survive a P4 round-trip.
type jsonSpec struct {
	Name   string          `json:"name"`
	Fields []jsonSpecField `json:"fields"`
	States []jsonSpecState `json:"states"`
}

type jsonSpecField struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
	Var   bool   `json:"varbit,omitempty"`
}

type jsonSpecState struct {
	Name     string            `json:"name"`
	Extracts []jsonSpecExtract `json:"extracts,omitempty"`
	Key      []jsonSpecKeyPart `json:"key,omitempty"`
	Rules    []jsonSpecRule    `json:"rules,omitempty"`
	Default  jsonSpecTarget    `json:"default"`
}

type jsonSpecExtract struct {
	Field    string `json:"field"`
	LenField string `json:"lenField,omitempty"`
	LenScale int    `json:"lenScale,omitempty"`
	LenBias  int    `json:"lenBias,omitempty"`
}

type jsonSpecKeyPart struct {
	Field     string `json:"field,omitempty"`
	Lo        int    `json:"lo,omitempty"`
	Hi        int    `json:"hi,omitempty"`
	Lookahead bool   `json:"lookahead,omitempty"`
	Skip      int    `json:"skip,omitempty"`
	Width     int    `json:"width,omitempty"`
}

type jsonSpecRule struct {
	Value string         `json:"value"` // hex
	Mask  string         `json:"mask"`  // hex
	Next  jsonSpecTarget `json:"next"`
}

type jsonSpecTarget struct {
	Kind  string `json:"kind"` // "state" | "accept" | "reject"
	State int    `json:"state,omitempty"`
}

func encodeSpecTarget(t pir.Target) jsonSpecTarget {
	switch t.Kind {
	case pir.Accept:
		return jsonSpecTarget{Kind: "accept"}
	case pir.Reject:
		return jsonSpecTarget{Kind: "reject"}
	default:
		return jsonSpecTarget{Kind: "state", State: t.State}
	}
}

func decodeSpecTarget(t jsonSpecTarget) (pir.Target, error) {
	switch t.Kind {
	case "accept":
		return pir.AcceptTarget, nil
	case "reject":
		return pir.RejectTarget, nil
	case "state":
		return pir.To(t.State), nil
	}
	return pir.Target{}, fmt.Errorf("unknown target kind %q", t.Kind)
}

// EncodeSpecJSON serializes a pir.Spec structurally.
func EncodeSpecJSON(s *pir.Spec) ([]byte, error) {
	out := jsonSpec{Name: s.Name}
	for _, f := range s.Fields {
		out.Fields = append(out.Fields, jsonSpecField{Name: f.Name, Width: f.Width, Var: f.Var})
	}
	for i := range s.States {
		st := &s.States[i]
		js := jsonSpecState{Name: st.Name, Default: encodeSpecTarget(st.Default)}
		for _, x := range st.Extracts {
			js.Extracts = append(js.Extracts, jsonSpecExtract{
				Field: x.Field, LenField: x.LenField,
				LenScale: x.LenScale, LenBias: x.LenBias,
			})
		}
		for _, k := range st.Key {
			js.Key = append(js.Key, jsonSpecKeyPart{
				Field: k.Field, Lo: k.Lo, Hi: k.Hi,
				Lookahead: k.Lookahead, Skip: k.Skip, Width: k.Width,
			})
		}
		for _, r := range st.Rules {
			js.Rules = append(js.Rules, jsonSpecRule{
				Value: fmt.Sprintf("%#x", r.Value),
				Mask:  fmt.Sprintf("%#x", r.Mask),
				Next:  encodeSpecTarget(r.Next),
			})
		}
		out.States = append(out.States, js)
	}
	return json.Marshal(out)
}

// DecodeSpecJSON reconstructs and validates a pir.Spec from its
// EncodeSpecJSON form (validation runs through pir.New).
func DecodeSpecJSON(data []byte) (*pir.Spec, error) {
	var in jsonSpec
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	fields := make([]pir.Field, 0, len(in.Fields))
	for _, f := range in.Fields {
		fields = append(fields, pir.Field{Name: f.Name, Width: f.Width, Var: f.Var})
	}
	states := make([]pir.State, 0, len(in.States))
	for _, js := range in.States {
		def, err := decodeSpecTarget(js.Default)
		if err != nil {
			return nil, fmt.Errorf("state %q: %w", js.Name, err)
		}
		st := pir.State{Name: js.Name, Default: def}
		for _, x := range js.Extracts {
			st.Extracts = append(st.Extracts, pir.Extract{
				Field: x.Field, LenField: x.LenField,
				LenScale: x.LenScale, LenBias: x.LenBias,
			})
		}
		for _, k := range js.Key {
			st.Key = append(st.Key, pir.KeyPart{
				Field: k.Field, Lo: k.Lo, Hi: k.Hi,
				Lookahead: k.Lookahead, Skip: k.Skip, Width: k.Width,
			})
		}
		for _, r := range js.Rules {
			next, err := decodeSpecTarget(r.Next)
			if err != nil {
				return nil, fmt.Errorf("state %q: %w", js.Name, err)
			}
			v, err := strconv.ParseUint(r.Value, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("state %q: rule value %q: %w", js.Name, r.Value, err)
			}
			m, err := strconv.ParseUint(r.Mask, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("state %q: rule mask %q: %w", js.Name, r.Mask, err)
			}
			st.Rules = append(st.Rules, pir.Rule{Value: v, Mask: m, Next: next})
		}
		states = append(states, st)
	}
	return pir.New(in.Name, fields, states)
}
