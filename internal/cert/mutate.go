package cert

import (
	"fmt"
	"math/rand"
	"strings"
)

// Seeded-mutation negative testing: a checker is only trustworthy if it
// rejects corrupted certificates, so CI corrupts every certificate it
// validates and demands rejection. Mutations are deterministic in the
// seed. Each candidate is re-checked here — FailingMutations returns
// only mutants that SelfCheck actually rejects and errors if any
// category cannot produce one, which would mean the checker has gone
// insensitive to that kind of corruption.

// Mutation is one corrupted variant of a certificate.
type Mutation struct {
	Name string
	Cert *Certificate
}

// FailingMutations derives one failing mutant per applicable category:
// a dropped witness pair, a corrupted witness pair, and — when a proof
// bundle is present — a dropped DRAT addition line and a flipped DRAT
// literal. The input certificate must itself pass SelfCheck.
func FailingMutations(c *Certificate, seed int64) ([]Mutation, error) {
	if err := c.SelfCheck(); err != nil {
		return nil, fmt.Errorf("cert: mutate: certificate fails before mutation: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Mutation

	mutant, err := failingWitnessMutation(c, rng, "witness-drop-pair", dropPair)
	if err != nil {
		return nil, err
	}
	out = append(out, mutant)
	mutant, err = failingWitnessMutation(c, rng, "witness-corrupt-pair", corruptPair)
	if err != nil {
		return nil, err
	}
	out = append(out, mutant)

	if c.Proof != nil && len(c.Proof.DRAT) > 0 {
		// Proof mutations are best-effort: when the bundled CNF is
		// refutable by unit propagation alone, the checker derives the
		// contradiction from the instance itself and every proof — however
		// corrupted — is validly accepted, so no failing mutant exists.
		// That is sound (the proof is then redundant), and witness
		// mutations above still exercise the checker on such certificates.
		for _, pm := range []struct {
			name string
			f    func([]string, int) []string
		}{
			{"proof-drop-line", dropProofLine},
			{"proof-flip-literal", flipProofLiteral},
		} {
			mutant, ok, err := failingProofMutation(c, rng, pm.name, pm.f)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, mutant)
			}
		}
	}
	return out, nil
}

func cloneCert(c *Certificate) (*Certificate, error) {
	data, err := c.Encode()
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

func failingWitnessMutation(c *Certificate, rng *rand.Rand, name string, f func(*Witness, int)) (Mutation, error) {
	if c.Witness == nil || len(c.Witness.Pairs) == 0 {
		return Mutation{}, fmt.Errorf("cert: mutate: certificate has no witness pairs to corrupt")
	}
	n := len(c.Witness.Pairs)
	start := rng.Intn(n)
	for off := 0; off < n; off++ {
		m, err := cloneCert(c)
		if err != nil {
			return Mutation{}, err
		}
		f(m.Witness, (start+off)%n)
		if m.SelfCheck() != nil {
			return Mutation{Name: name, Cert: m}, nil
		}
	}
	return Mutation{}, fmt.Errorf("cert: mutate: %s: no pair mutation is rejected by the checker", name)
}

func dropPair(w *Witness, i int) {
	w.Pairs = append(w.Pairs[:i:i], w.Pairs[i+1:]...)
}

func corruptPair(w *Witness, i int) {
	w.Pairs[i].Partial++
}

func failingProofMutation(c *Certificate, rng *rand.Rand, name string, f func([]string, int) []string) (Mutation, bool, error) {
	lines := strings.Split(string(c.Proof.DRAT), "\n")
	var adds []int
	for i, line := range lines {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "c") || strings.HasPrefix(t, "d ") || t == "d" {
			continue
		}
		adds = append(adds, i)
	}
	if len(adds) == 0 {
		return Mutation{}, false, fmt.Errorf("cert: mutate: %s: proof has no addition lines", name)
	}
	start := rng.Intn(len(adds))
	// Prefer later lines: the tail of a refutation is rarely redundant,
	// so the search terminates quickly.
	for off := 0; off < len(adds); off++ {
		i := adds[(start+len(adds)-off)%len(adds)]
		mutated := f(append([]string(nil), lines...), i)
		if mutated == nil {
			continue
		}
		m, err := cloneCert(c)
		if err != nil {
			return Mutation{}, false, err
		}
		m.Proof.DRAT = []byte(strings.Join(mutated, "\n"))
		if m.SelfCheck() != nil {
			return Mutation{Name: name, Cert: m}, true, nil
		}
	}
	// Every corruption of this kind still checks: the instance is
	// UP-refutable on its own, so the proof's content is immaterial.
	return Mutation{}, false, nil
}

func dropProofLine(lines []string, i int) []string {
	return append(lines[:i:i], lines[i+1:]...)
}

func flipProofLiteral(lines []string, i int) []string {
	fields := strings.Fields(lines[i])
	for j, tok := range fields {
		if tok == "0" {
			break
		}
		if strings.HasPrefix(tok, "-") {
			fields[j] = tok[1:]
		} else {
			fields[j] = "-" + tok
		}
		lines[i] = strings.Join(fields, " ")
		return lines
	}
	return nil // line had no literal to flip (bare "0")
}
