package cert

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements a standalone forward DRAT checker: it validates
// an UNSAT verdict by replaying the solver's clausal proof against the
// DIMACS instance (including any assumption unit clauses) with nothing
// but unit propagation. It shares no code with internal/sat — it has
// its own parser and its own watched-literal propagator — so a solver
// bug cannot hide inside the checker that certifies it.
//
// Supported proof subset (see DESIGN.md):
//   - one clause per line, DIMACS literals, 0-terminated
//   - "d <lits> 0" deletes one instance of a clause; deletions of unit
//     clauses are ignored (their propagations are kept), matching
//     standard forward checkers
//   - "c import" flags the next addition as an exchange-imported
//     clause; in Tolerant mode a flagged addition that fails the RUP
//     check is admitted as an axiom (it was derived by a sibling solver
//     from the same instance), in Strict mode it must be RUP like any
//     other lemma
//   - the proof ends with the empty clause ("0"); the check succeeds
//     only if unit propagation has derived a contradiction by then

// DRATMode selects how exchange-imported clauses are treated.
type DRATMode int

const (
	// Strict requires every added clause, imported or not, to be RUP.
	Strict DRATMode = iota
	// Tolerant admits import-flagged additions that fail RUP as axioms.
	Tolerant
)

// CheckDRAT validates that proof is a correct DRAT refutation of the
// DIMACS instance. It returns nil exactly when the proof derives the
// empty clause by reverse unit propagation.
func CheckDRAT(dimacs, proof []byte, mode DRATMode) error {
	ck := &dratChecker{watches: map[int][]int{}, byKey: map[string][]int{}}
	if err := ck.loadDIMACS(dimacs); err != nil {
		return fmt.Errorf("cert: drat: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(proof))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	importNext := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "c") {
			if line == "c import" || strings.HasPrefix(line, "c import ") {
				importNext = true
			}
			continue
		}
		del := false
		if strings.HasPrefix(line, "d ") || line == "d" {
			del = true
			line = strings.TrimSpace(line[1:])
		}
		lits, err := parseLits(line)
		if err != nil {
			return fmt.Errorf("cert: drat: line %d: %w", lineNo, err)
		}
		if del {
			ck.deleteClause(lits)
			continue
		}
		imported := importNext
		importNext = false
		if len(lits) == 0 {
			if ck.contradiction {
				return nil // refutation complete
			}
			return fmt.Errorf("cert: drat: line %d: empty clause is not derivable by unit propagation", lineNo)
		}
		if !ck.rup(lits) {
			if !(mode == Tolerant && imported) {
				return fmt.Errorf("cert: drat: line %d: clause %v is not RUP", lineNo, lits)
			}
		}
		ck.addClause(lits)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cert: drat: %w", err)
	}
	if ck.contradiction {
		// Proofs dumped mid-session may omit the trailing empty clause;
		// a derived contradiction is the refutation either way.
		return nil
	}
	return fmt.Errorf("cert: drat: proof ends without deriving the empty clause")
}

// dratChecker is a minimal watched-literal unit propagator over an
// incrementally growing clause database. Literals use the DIMACS
// convention (±var, 1-based).
type dratChecker struct {
	db            [][]int
	dead          []bool
	watches       map[int][]int    // literal -> indices of clauses watching it
	byKey         map[string][]int // canonical clause -> db indices (for deletion)
	assign        []int8           // var -> 0 unassigned, +1 true, -1 false
	trail         []int
	qhead         int
	contradiction bool
}

func (ck *dratChecker) loadDIMACS(dimacs []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(dimacs))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var pending []int
	sawHeader := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p ") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "cnf" {
				return fmt.Errorf("malformed problem line %q", line)
			}
			sawHeader = true
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return fmt.Errorf("bad literal %q", tok)
			}
			if n == 0 {
				ck.addClause(pending)
				pending = nil
				continue
			}
			pending = append(pending, n)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawHeader {
		return fmt.Errorf("missing DIMACS header")
	}
	if len(pending) != 0 {
		return fmt.Errorf("unterminated clause %v", pending)
	}
	return nil
}

func parseLits(line string) ([]int, error) {
	var lits []int
	terminated := false
	for _, tok := range strings.Fields(line) {
		n, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad literal %q", tok)
		}
		if n == 0 {
			terminated = true
			break
		}
		lits = append(lits, n)
	}
	if !terminated {
		return nil, fmt.Errorf("clause missing terminating 0")
	}
	return lits, nil
}

func (ck *dratChecker) ensureVar(v int) {
	for len(ck.assign) <= v {
		ck.assign = append(ck.assign, 0)
	}
}

// val reports the current value of a literal: +1 true, -1 false, 0 unassigned.
func (ck *dratChecker) val(l int) int8 {
	v := l
	if v < 0 {
		v = -v
	}
	ck.ensureVar(v)
	a := ck.assign[v]
	if a == 0 {
		return 0
	}
	if l < 0 {
		return -a
	}
	return a
}

func (ck *dratChecker) enqueue(l int) {
	v := l
	s := int8(1)
	if v < 0 {
		v, s = -v, -1
	}
	ck.ensureVar(v)
	ck.assign[v] = s
	ck.trail = append(ck.trail, l)
}

func (ck *dratChecker) undoTo(mark int) {
	for i := mark; i < len(ck.trail); i++ {
		v := ck.trail[i]
		if v < 0 {
			v = -v
		}
		ck.assign[v] = 0
	}
	ck.trail = ck.trail[:mark]
	ck.qhead = mark
}

// propagate runs unit propagation to fixpoint; false means conflict.
func (ck *dratChecker) propagate() bool {
	for ck.qhead < len(ck.trail) {
		t := ck.trail[ck.qhead]
		ck.qhead++
		neg := -t
		ws := ck.watches[neg]
		j := 0
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			if ck.dead[ci] {
				continue
			}
			cl := ck.db[ci]
			if cl[0] == neg {
				cl[0], cl[1] = cl[1], cl[0]
			}
			if ck.val(cl[0]) == 1 {
				ws[j] = ci
				j++
				continue
			}
			moved := false
			for k := 2; k < len(cl); k++ {
				if ck.val(cl[k]) != -1 {
					cl[1], cl[k] = cl[k], cl[1]
					ck.watches[cl[1]] = append(ck.watches[cl[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			ws[j] = ci
			j++
			switch ck.val(cl[0]) {
			case -1:
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				ck.watches[neg] = ws[:j]
				return false
			case 0:
				ck.enqueue(cl[0])
			}
		}
		ck.watches[neg] = ws[:j]
	}
	return true
}

// rup reports whether F ∧ ¬C propagates to a conflict (so F implies C).
// The trail is restored afterwards.
func (ck *dratChecker) rup(lits []int) bool {
	if ck.contradiction {
		return true
	}
	mark := len(ck.trail)
	for _, l := range lits {
		switch ck.val(l) {
		case 1:
			// A literal of C is already implied: C follows immediately.
			ck.undoTo(mark)
			return true
		case 0:
			ck.enqueue(-l)
		}
	}
	conflict := !ck.propagate()
	ck.undoTo(mark)
	return conflict
}

// addClause installs a clause as an axiom or verified lemma. The trail
// here only ever holds top-level (permanent) assignments.
func (ck *dratChecker) addClause(lits []int) {
	if ck.contradiction {
		return
	}
	if len(lits) == 0 {
		ck.contradiction = true
		return
	}
	if len(lits) == 1 {
		switch ck.val(lits[0]) {
		case -1:
			ck.contradiction = true
		case 0:
			ck.enqueue(lits[0])
			if !ck.propagate() {
				ck.contradiction = true
			}
		}
		return
	}
	// Order the watched positions onto non-false literals so the watch
	// invariant holds under the current top-level trail.
	cl := append([]int(nil), lits...)
	slot := 0
	for i := 0; i < len(cl) && slot < 2; i++ {
		if ck.val(cl[i]) != -1 {
			cl[slot], cl[i] = cl[i], cl[slot]
			slot++
		}
	}
	switch slot {
	case 0: // every literal false under the top level
		ck.contradiction = true
		return
	case 1:
		if ck.val(cl[0]) == 0 {
			ck.enqueue(cl[0])
			if !ck.propagate() {
				ck.contradiction = true
				return
			}
		}
		// Still install it; a deleted unit-producing clause is never
		// un-propagated, matching the documented subset.
	}
	ci := len(ck.db)
	ck.db = append(ck.db, cl)
	ck.dead = append(ck.dead, false)
	ck.watches[cl[0]] = append(ck.watches[cl[0]], ci)
	if len(cl) > 1 {
		ck.watches[cl[1]] = append(ck.watches[cl[1]], ci)
	}
	k := canonClause(lits)
	ck.byKey[k] = append(ck.byKey[k], ci)
}

// deleteClause removes one instance of the clause from the database.
// Missing instances and unit clauses are ignored, as in standard
// forward DRAT checking.
func (ck *dratChecker) deleteClause(lits []int) {
	if len(lits) <= 1 {
		return
	}
	k := canonClause(lits)
	idxs := ck.byKey[k]
	for len(idxs) > 0 {
		ci := idxs[len(idxs)-1]
		idxs = idxs[:len(idxs)-1]
		if !ck.dead[ci] {
			ck.dead[ci] = true
			break
		}
	}
	ck.byKey[k] = idxs
}

func canonClause(lits []int) string {
	s := append([]int(nil), lits...)
	sort.Ints(s)
	var b strings.Builder
	for _, l := range s {
		fmt.Fprintf(&b, "%d ", l)
	}
	return b.String()
}
