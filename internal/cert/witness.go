package cert

import (
	"fmt"
	"sort"
	"strings"

	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// This file implements the bisimulation-witness checker: a symbolic
// product-automaton traversal of (effective spec × TCAM program).
//
// The two machines disagree on phase — the spec extracts a state's
// fields and THEN matches its key at the advanced cursor, while a TCAM
// row matches its key at the PRE-extraction cursor (via lookahead and
// container references) and then extracts. The traversal bridges the
// shift by tracking one shared symbolic input stream: every input bit
// either machine can observe is an interned atom, and because a config
// is only ever advanced by extractions that both machines perform
// identically, their cursors always coincide and key reads on both
// sides resolve to the same atoms.
//
// Per joint configuration the store keeps, per atom, what is known:
//   - dict:     field name -> atoms of its current value
//   - consumed: the last maxBack consumed bits (for negative-skip
//     container matches), most recent last
//   - ahead:    cursor-relative offsets >= 0 -> atoms already observed
//     by lookahead but not yet extracted
//   - lits:     forced bit values (from entry/rule matches taken)
//   - clauses:  disjunctions recording that earlier, higher-priority
//     entries/rules did NOT match; carried across steps because
//     key-split chains resolve the spec's transition several impl
//     steps before the shadowing entries of later chunk states fire
//
// Branches are explored first-match-wins on both sides; infeasible
// branches (the accumulated literals and clauses are unsatisfiable) are
// pruned by a small DPLL. Everything unknown is a fresh unconstrained
// atom, which makes the traversal an over-approximation of the real
// joint behavior: if it proves agreement, the machines agree on every
// packet, while a spurious disagreement can only reject a good witness,
// never accept a bad one.

const (
	specAccept = -1
	specReject = -2

	// maxConfigs bounds the product traversal; certificates whose
	// product space exceeds it are rejected as uncheckable.
	maxConfigs = 200000
)

// clit is one literal of a store clause: atom takes value bit.
type clit struct {
	atom int32
	bit  byte
}

// store is the symbolic-stream knowledge attached to one configuration.
type store struct {
	dict     map[string][]int32
	consumed []int32
	ahead    map[int]int32
	lits     map[int32]byte
	clauses  [][]clit
	// total is the number of bits consumed so far, clamped to maxBack
	// (all that matters is whether a negative-skip read reaches before
	// the start of the packet, where the stream zero-pads); -1 once a
	// varbit extraction made the cursor symbolic.
	total int
}

func newStore() *store {
	return &store{
		dict:  map[string][]int32{},
		ahead: map[int]int32{},
		lits:  map[int32]byte{},
	}
}

func (st *store) clone() *store {
	out := &store{
		dict:     make(map[string][]int32, len(st.dict)),
		consumed: append([]int32(nil), st.consumed...),
		ahead:    make(map[int]int32, len(st.ahead)),
		lits:     make(map[int32]byte, len(st.lits)),
		clauses:  append([][]clit(nil), st.clauses...),
		total:    st.total,
	}
	for k, v := range st.dict {
		out.dict[k] = v
	}
	for k, v := range st.ahead {
		out.ahead[k] = v
	}
	for k, v := range st.lits {
		out.lits[k] = v
	}
	return out
}

// config is one joint configuration: spec side (state index or a
// terminal sentinel, plus how many of its extracts already ran), impl
// side (a TCAM row), and the shared store.
type config struct {
	spec    int // state index, specAccept, or specReject
	partial int
	table   int
	state   int
	st      *store
}

func (c *config) clone() *config {
	return &config{spec: c.spec, partial: c.partial, table: c.table, state: c.state, st: c.st.clone()}
}

type engine struct {
	eff     *pir.Spec
	prog    *tcam.Program
	maxBack int
	next    int32 // next fresh atom id; 0 is the constant-zero atom
	seen    map[string]bool
	queue   []*config
	pairs   map[Pair]bool
	allowed map[Pair]bool // nil in build mode
}

func (e *engine) fresh() int32 {
	e.next++
	return e.next
}

func (e *engine) failf(format string, args ...any) error {
	return fmt.Errorf("cert: witness: "+format, args...)
}

func specName(eff *pir.Spec, spec int) string {
	switch spec {
	case specAccept:
		return "accept"
	case specReject:
		return "reject"
	}
	return eff.States[spec].Name
}

func specTargetIndex(t pir.Target) int {
	switch t.Kind {
	case pir.Accept:
		return specAccept
	case pir.Reject:
		return specReject
	}
	return t.State
}

// BuildWitness traverses the product automaton and returns the witness
// covering every reachable joint configuration. Construction doubles as
// an independent verification: it fails if any feasible branch shows
// the two machines disagreeing.
func BuildWitness(eff *pir.Spec, prog *tcam.Program) (*Witness, error) {
	pairs, err := traverse(eff, prog, nil)
	if err != nil {
		return nil, err
	}
	w := &Witness{}
	for p := range pairs {
		w.Pairs = append(w.Pairs, p)
	}
	sort.Slice(w.Pairs, func(i, j int) bool {
		a, b := w.Pairs[i], w.Pairs[j]
		if a.Impl != b.Impl {
			return a.Impl < b.Impl
		}
		if a.Spec != b.Spec {
			return a.Spec < b.Spec
		}
		return a.Partial < b.Partial
	})
	return w, nil
}

// CheckWitness re-traverses the product automaton and verifies that the
// witness covers every reachable joint configuration, that every
// transition either machine takes is matched by the other, and that
// extractions agree bit-for-bit. It is fully independent of the
// synthesizer and of internal/core/verify.go.
func CheckWitness(eff *pir.Spec, prog *tcam.Program, w *Witness) error {
	if w == nil {
		return fmt.Errorf("cert: witness: missing witness")
	}
	allowed := make(map[Pair]bool, len(w.Pairs))
	for _, p := range w.Pairs {
		if p.Spec != "accept" && p.Spec != "reject" && eff.StateIndex(p.Spec) < 0 {
			return fmt.Errorf("cert: witness: pair %s names unknown spec state %q", p, p.Spec)
		}
		var t, s int
		if _, err := fmt.Sscanf(p.Impl, "%d.%d", &t, &s); err != nil || prog.Lookup(t, s) == nil {
			return fmt.Errorf("cert: witness: pair %s names unknown TCAM row %q", p, p.Impl)
		}
		allowed[p] = true
	}
	_, err := traverse(eff, prog, allowed)
	return err
}

// traverse runs the product traversal. With allowed == nil it collects
// and returns the reachable pair set (build mode); otherwise every
// reached pair must be in allowed (check mode).
func traverse(eff *pir.Spec, prog *tcam.Program, allowed map[Pair]bool) (map[Pair]bool, error) {
	if len(eff.States) == 0 {
		return nil, fmt.Errorf("cert: witness: effective spec has no states")
	}
	if err := checkFieldTables(eff, prog); err != nil {
		return nil, err
	}
	e := &engine{
		eff:     eff,
		prog:    prog,
		maxBack: computeMaxBack(prog),
		seen:    map[string]bool{},
		pairs:   map[Pair]bool{},
		allowed: allowed,
	}
	c0 := &config{spec: 0, partial: 0, table: 0, state: 0, st: newStore()}
	branches, err := e.normalize(c0, map[int]bool{})
	if err != nil {
		return nil, err
	}
	for _, br := range branches {
		if err := e.enroll(br); err != nil {
			return nil, err
		}
	}
	for len(e.queue) > 0 {
		c := e.queue[0]
		e.queue = e.queue[1:]
		if err := e.step(c); err != nil {
			return nil, err
		}
	}
	return e.pairs, nil
}

// checkFieldTables verifies that every field the program's states
// reference is declared identically in the effective spec, so widths
// computed on either side agree.
func checkFieldTables(eff *pir.Spec, prog *tcam.Program) error {
	check := func(name string) error {
		pf, ok := prog.Spec.Field(name)
		if !ok {
			return fmt.Errorf("cert: witness: program references field %q absent from its own field table", name)
		}
		ef, ok := eff.Field(name)
		if !ok {
			return fmt.Errorf("cert: witness: program references field %q absent from the effective spec", name)
		}
		if pf.Width != ef.Width || pf.Var != ef.Var {
			return fmt.Errorf("cert: witness: field %q declared %d bits (var=%v) by the program but %d bits (var=%v) by the spec",
				name, pf.Width, pf.Var, ef.Width, ef.Var)
		}
		return nil
	}
	for si := range prog.States {
		s := &prog.States[si]
		for _, k := range s.Key {
			if !k.Lookahead {
				if err := check(k.Field); err != nil {
					return err
				}
			}
		}
		for ei := range s.Entries {
			for _, x := range s.Entries[ei].Extracts {
				if err := check(x.Field); err != nil {
					return err
				}
				if x.LenField != "" {
					if err := check(x.LenField); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// computeMaxBack returns how many already-consumed bits any program key
// can reach back into via negative-skip lookahead (container matches).
func computeMaxBack(prog *tcam.Program) int {
	back := 0
	for si := range prog.States {
		for _, k := range prog.States[si].Key {
			if k.Lookahead && k.Skip < 0 && -k.Skip > back {
				back = -k.Skip
			}
		}
	}
	return back
}

// enroll canonicalizes a normalized configuration whose impl side sits
// at a TCAM row, checks witness coverage, and enqueues it if new.
func (e *engine) enroll(c *config) error {
	if c.spec >= 0 && c.partial >= len(e.eff.States[c.spec].Extracts) {
		// normalize() upholds this; a violation is a checker bug.
		return e.failf("internal: unnormalized configuration enqueued")
	}
	gc(c.st)
	key := e.canonicalKey(c)
	if e.seen[key] {
		return nil
	}
	if len(e.seen) >= maxConfigs {
		return e.failf("product traversal exceeded %d configurations", maxConfigs)
	}
	e.seen[key] = true
	pair := Pair{
		Spec:    specName(e.eff, c.spec),
		Partial: c.partial,
		Impl:    fmt.Sprintf("%d.%d", c.table, c.state),
	}
	if e.allowed != nil && !e.allowed[pair] {
		return e.failf("reachable configuration %s is not covered by the witness", pair)
	}
	e.pairs[pair] = true
	e.queue = append(e.queue, c)
	return nil
}

// step explores one TCAM row: resolve its key to atoms, branch over its
// entries first-match-wins, and for each feasible branch consume the
// entry's extractions against the spec and follow its target. The
// no-entry-matched branch is a TCAM reject.
func (e *engine) step(c *config) error {
	ist := e.prog.Lookup(c.table, c.state)
	if ist == nil {
		// Transition into a missing row rejects in tcam.RunFrom; enroll
		// refuses such configs earlier via the witness pre-validation,
		// but builds can reach one through a malformed program.
		return e.requireSpecVerdict(c, specReject)
	}
	keyAtoms := e.resolveKey(c, ist.Key)
	var negs [][]clit
	for ei := range ist.Entries {
		en := &ist.Entries[ei]
		lits, ok := matchConstraints(keyAtoms, en.Value, en.Mask)
		if ok {
			br := c.clone()
			if br.assume(lits, negs) {
				if err := e.consume(br, en.Extracts, en.Next); err != nil {
					return err
				}
			}
		}
		cl, status := negClause(keyAtoms, en.Value, en.Mask)
		switch status {
		case entryAlwaysFires:
			return nil // later entries and the no-match branch are unreachable
		case entryNeverFires:
			continue
		}
		negs = append(negs, cl)
	}
	br := c.clone()
	if br.assume(nil, negs) {
		return e.requireSpecVerdict(br, specReject)
	}
	return nil
}

// consume matches an entry's extraction list against the spec's pending
// extractions one by one, re-normalizing the spec side (which may
// resolve one or more spec transitions) after each, then commits the
// impl transition.
func (e *engine) consume(c *config, extracts []pir.Extract, next tcam.Target) error {
	if len(extracts) == 0 {
		return e.commit(c, next)
	}
	x := extracts[0]
	if c.spec < 0 {
		return e.failf("implementation extracts %q after the spec reached %s", x.Field, specName(e.eff, c.spec))
	}
	ss := &e.eff.States[c.spec]
	sx := ss.Extracts[c.partial]
	if sx != x {
		return e.failf("extraction mismatch in spec state %q: spec extracts %s, implementation extracts %s",
			ss.Name, describeExtract(sx), describeExtract(x))
	}
	e.applyExtract(c, x)
	c.partial++
	branches, err := e.normalize(c, map[int]bool{})
	if err != nil {
		return err
	}
	for _, br := range branches {
		if err := e.consume(br, extracts[1:], next); err != nil {
			return err
		}
	}
	return nil
}

func describeExtract(x pir.Extract) string {
	if x.LenField == "" {
		return x.Field
	}
	return fmt.Sprintf("%s<%s*%d%+d>", x.Field, x.LenField, x.LenScale, x.LenBias)
}

// commit finishes an impl transition after all its extractions ran.
func (e *engine) commit(c *config, next tcam.Target) error {
	switch next.Kind {
	case tcam.Accept:
		return e.requireSpecVerdict(c, specAccept)
	case tcam.Reject:
		return e.requireSpecVerdict(c, specReject)
	}
	c.table, c.state = next.Table, next.State
	return e.enroll(c)
}

// requireSpecVerdict handles the impl side terminating (or rejecting on
// no-match): the spec side of a normalized config must already sit at
// the same verdict. A spec state with pending extractions would extract
// further and diverge the dictionaries, so it fails.
func (e *engine) requireSpecVerdict(c *config, want int) error {
	if c.spec == want {
		return nil
	}
	if c.spec < 0 {
		return e.failf("verdict mismatch: implementation reached %s but spec reached %s",
			specName(e.eff, want), specName(e.eff, c.spec))
	}
	return e.failf("implementation reached %s but spec state %q still expects extraction",
		specName(e.eff, want), e.eff.States[c.spec].Name)
}

// normalize resolves the spec side until it either terminates or has a
// pending extraction: whenever all of a state's extracts ran, the
// spec's transition fires immediately (its key reads resolve at the
// current shared cursor), branching over rules first-match-wins. seen
// guards against zero-progress spec cycles.
func (e *engine) normalize(c *config, seen map[int]bool) ([]*config, error) {
	if c.spec < 0 {
		return []*config{c}, nil
	}
	ss := &e.eff.States[c.spec]
	if c.partial < len(ss.Extracts) {
		return []*config{c}, nil
	}
	if seen[c.spec] {
		return nil, e.failf("zero-progress cycle through spec state %q", ss.Name)
	}
	seen[c.spec] = true
	advance := func(br *config, t pir.Target) ([]*config, error) {
		br.spec = specTargetIndex(t)
		br.partial = 0
		sub := make(map[int]bool, len(seen))
		for k := range seen {
			sub[k] = true
		}
		return e.normalize(br, sub)
	}
	if len(ss.Key) == 0 {
		return advance(c, ss.Default)
	}
	keyAtoms := e.resolveKey(c, ss.Key)
	var out []*config
	var negs [][]clit
	for _, r := range ss.Rules {
		lits, ok := matchConstraints(keyAtoms, r.Value, r.Mask)
		if ok {
			br := c.clone()
			if br.assume(lits, negs) {
				sub, err := advance(br, r.Next)
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			}
		}
		cl, status := negClause(keyAtoms, r.Value, r.Mask)
		switch status {
		case entryAlwaysFires:
			return out, nil // the default is unreachable
		case entryNeverFires:
			continue
		}
		negs = append(negs, cl)
	}
	br := c.clone()
	if br.assume(nil, negs) {
		sub, err := advance(br, ss.Default)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// resolveKey maps a key-part list to one atom per key bit, MSB first.
// Lookahead offsets >= 0 read (or mint) ahead atoms; negative offsets
// read the consumed window, the constant-zero atom before the start of
// the packet, or a fresh unconstrained atom when outside the retained
// window. Field parts read the dictionary; never-extracted fields read
// as constant zero, mirroring bitstream.Dict.
func (e *engine) resolveKey(c *config, key []pir.KeyPart) []int32 {
	st := c.st
	var atoms []int32
	for _, p := range key {
		if p.Lookahead {
			for i := 0; i < p.Width; i++ {
				off := p.Skip + i
				if off >= 0 {
					a, ok := st.ahead[off]
					if !ok {
						a = e.fresh()
						st.ahead[off] = a
					}
					atoms = append(atoms, a)
					continue
				}
				d := -off
				switch {
				case d <= len(st.consumed):
					atoms = append(atoms, st.consumed[len(st.consumed)-d])
				case st.total >= 0 && d > st.total:
					atoms = append(atoms, 0) // before the packet: zero-pad
				default:
					atoms = append(atoms, e.fresh())
				}
			}
			continue
		}
		bits := st.dict[p.Field]
		for i := p.Lo; i < p.Hi; i++ {
			if i < len(bits) {
				atoms = append(atoms, bits[i])
			} else {
				atoms = append(atoms, 0)
			}
		}
	}
	return atoms
}

// applyExtract advances the shared stream by one extraction: ahead
// atoms within the width become the field's value (minting atoms for
// bits nobody observed yet), the consumed window slides, and the ahead
// window shifts down. A varbit extraction advances symbolically — the
// cursor-relative knowledge is discarded and the field becomes fresh —
// because its runtime width is data-dependent; both machines compute
// that width from the same LenField atoms, so their cursors stay equal.
func (e *engine) applyExtract(c *config, x pir.Extract) {
	st := c.st
	f, _ := e.eff.Field(x.Field)
	w := f.Width
	if x.LenField != "" {
		st.consumed = nil
		st.ahead = map[int]int32{}
		st.total = -1
		bits := make([]int32, w)
		for i := range bits {
			bits[i] = e.fresh()
		}
		st.dict[x.Field] = bits
		return
	}
	bits := make([]int32, w)
	for i := 0; i < w; i++ {
		if a, ok := st.ahead[i]; ok {
			bits[i] = a
		} else {
			bits[i] = e.fresh()
		}
	}
	na := make(map[int]int32, len(st.ahead))
	for off, a := range st.ahead {
		if off >= w {
			na[off-w] = a
		}
	}
	st.ahead = na
	st.dict[x.Field] = bits
	if st.total >= 0 {
		st.total += w
		if st.total > e.maxBack {
			st.total = e.maxBack
		}
	}
	if e.maxBack == 0 {
		st.consumed = nil
		return
	}
	st.consumed = append(st.consumed, bits...)
	if len(st.consumed) > e.maxBack {
		st.consumed = append([]int32(nil), st.consumed[len(st.consumed)-e.maxBack:]...)
	}
}

const (
	entryBranches    = iota // clause constrains later branches
	entryAlwaysFires        // matches every assignment: later branches unreachable
	entryNeverFires         // constant mismatch: contributes no constraint
)

// matchConstraints returns the literals forced by "this entry fires":
// every masked key bit equals the entry's value bit. ok is false when a
// constant-zero key bit contradicts the value outright.
func matchConstraints(keyAtoms []int32, value, mask uint64) (lits []clit, ok bool) {
	w := len(keyAtoms)
	for j, a := range keyAtoms {
		pos := uint(w - 1 - j)
		if mask>>pos&1 == 0 {
			continue
		}
		b := byte(value >> pos & 1)
		if a == 0 {
			if b != 0 {
				return nil, false
			}
			continue
		}
		lits = append(lits, clit{atom: a, bit: b})
	}
	return lits, true
}

// negClause returns the clause expressing "this entry does NOT fire":
// at least one masked free key bit differs from the value.
func negClause(keyAtoms []int32, value, mask uint64) ([]clit, int) {
	w := len(keyAtoms)
	var cl []clit
	for j, a := range keyAtoms {
		pos := uint(w - 1 - j)
		if mask>>pos&1 == 0 {
			continue
		}
		b := byte(value >> pos & 1)
		if a == 0 {
			if b != 0 {
				return nil, entryNeverFires // constant mismatch: negation is vacuous
			}
			continue
		}
		cl = append(cl, clit{atom: a, bit: 1 - b})
	}
	if len(cl) == 0 {
		return nil, entryAlwaysFires
	}
	return cl, entryBranches
}

// assume adds match literals and not-matched clauses to the store and
// reports whether the store remains satisfiable.
func (c *config) assume(lits []clit, negs [][]clit) bool {
	st := c.st
	for _, l := range lits {
		if v, ok := st.lits[l.atom]; ok {
			if v != l.bit {
				return false
			}
			continue
		}
		st.lits[l.atom] = l.bit
	}
	st.clauses = append(st.clauses, negs...)
	return satisfiable(st.lits, st.clauses)
}

// satisfiable runs a small DPLL (unit propagation plus branching) over
// the clauses under the fixed literals. Clause literals never mention
// the constant-zero atom, and clause counts per config stay small after
// gc, so this is cheap in practice.
func satisfiable(lits map[int32]byte, clauses [][]clit) bool {
	if len(clauses) == 0 {
		return true
	}
	asn := make(map[int32]byte, len(lits))
	for k, v := range lits {
		asn[k] = v
	}
	return dpll(asn, clauses, 0)
}

func dpll(asn map[int32]byte, clauses [][]clit, depth int) bool {
	if depth > 64 {
		// Give up and over-approximate: treating an undecided store as
		// satisfiable can only add branches, never hide one.
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, cl := range clauses {
			free := -1
			nfree := 0
			sat := false
			for i, l := range cl {
				if v, ok := asn[l.atom]; ok {
					if v == l.bit {
						sat = true
						break
					}
					continue
				}
				nfree++
				free = i
			}
			if sat {
				continue
			}
			if nfree == 0 {
				return false
			}
			if nfree == 1 {
				asn[cl[free].atom] = cl[free].bit
				changed = true
			}
		}
	}
	for _, cl := range clauses {
		sat := false
		pick := -1
		for i, l := range cl {
			if v, ok := asn[l.atom]; ok {
				if v == l.bit {
					sat = true
					break
				}
				continue
			}
			if pick < 0 {
				pick = i
			}
		}
		if sat || pick < 0 {
			continue
		}
		l := cl[pick]
		pos := make(map[int32]byte, len(asn)+1)
		for k, v := range asn {
			pos[k] = v
		}
		pos[l.atom] = l.bit
		if dpll(pos, clauses, depth+1) {
			return true
		}
		asn[l.atom] = 1 - l.bit
		return dpll(asn, clauses, depth+1)
	}
	return true
}

// gc shrinks a store to what future steps can observe: atoms reachable
// from dict, consumed, and ahead. Literals on dead atoms are dropped;
// clauses are simplified against the literals (satisfied clauses and
// false literals removed, units promoted to literals) and any clause
// mentioning a dead atom is dropped entirely — forgetting a constraint
// over-approximates, which is sound for this checker. Canonicalization
// depends on gc producing a minimal, deterministic store.
func gc(st *store) {
	ref := make(map[int32]bool)
	for _, bits := range st.dict {
		for _, a := range bits {
			ref[a] = true
		}
	}
	for _, a := range st.consumed {
		ref[a] = true
	}
	for _, a := range st.ahead {
		ref[a] = true
	}
	for a := range st.lits {
		if !ref[a] {
			delete(st.lits, a)
		}
	}
	for {
		var out [][]clit
		promoted := false
	clauseLoop:
		for _, cl := range st.clauses {
			var kept []clit
			for _, l := range cl {
				if v, ok := st.lits[l.atom]; ok {
					if v == l.bit {
						continue clauseLoop // satisfied
					}
					continue // literal false
				}
				if !ref[l.atom] {
					continue clauseLoop // constraint on a dead atom: forget it
				}
				kept = append(kept, l)
			}
			if len(kept) == 0 {
				// All literals false: the config was infeasible, which
				// assume() rules out before enroll. Keep nothing.
				continue
			}
			if len(kept) == 1 {
				st.lits[kept[0].atom] = kept[0].bit
				promoted = true
				continue
			}
			for i := range kept {
				for j := i + 1; j < len(kept); j++ {
					if kept[i].atom == kept[j].atom && kept[i].bit != kept[j].bit {
						continue clauseLoop // tautology
					}
				}
			}
			out = append(out, kept)
		}
		st.clauses = out
		if !promoted {
			break
		}
	}
	// Deduplicate clauses under a canonical literal order.
	if len(st.clauses) > 1 {
		seen := make(map[string]bool, len(st.clauses))
		var uniq [][]clit
		for _, cl := range st.clauses {
			sort.Slice(cl, func(i, j int) bool {
				if cl[i].atom != cl[j].atom {
					return cl[i].atom < cl[j].atom
				}
				return cl[i].bit < cl[j].bit
			})
			var b strings.Builder
			for _, l := range cl {
				fmt.Fprintf(&b, "%d:%d,", l.atom, l.bit)
			}
			if seen[b.String()] {
				continue
			}
			seen[b.String()] = true
			uniq = append(uniq, cl)
		}
		st.clauses = uniq
	}
}

// canonicalKey renders a configuration under a deterministic atom
// renumbering so that configurations differing only in atom identity
// memoize to the same key. Atoms are numbered in order of first
// appearance scanning dict (sorted by field), consumed, then ahead
// (sorted by offset); after gc every literal and clause atom is
// reachable from those, so the renumbering is total.
func (e *engine) canonicalKey(c *config) string {
	st := c.st
	ren := map[int32]int32{0: 0}
	var next int32
	num := func(a int32) int32 {
		if r, ok := ren[a]; ok {
			return r
		}
		next++
		ren[a] = next
		return next
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d.%d@%d.%d;t%d", c.spec, c.partial, c.table, c.state, st.total)
	fields := make([]string, 0, len(st.dict))
	for f := range st.dict {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		b.WriteString(";f=")
		b.WriteString(f)
		for _, a := range st.dict[f] {
			fmt.Fprintf(&b, ",%d", num(a))
		}
	}
	b.WriteString(";c=")
	for _, a := range st.consumed {
		fmt.Fprintf(&b, "%d,", num(a))
	}
	offs := make([]int, 0, len(st.ahead))
	for off := range st.ahead {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	b.WriteString(";a=")
	for _, off := range offs {
		fmt.Fprintf(&b, "%d:%d,", off, num(st.ahead[off]))
	}
	type rlit struct {
		atom int32
		bit  byte
	}
	rls := make([]rlit, 0, len(st.lits))
	for a, v := range st.lits {
		rls = append(rls, rlit{num(a), v})
	}
	sort.Slice(rls, func(i, j int) bool { return rls[i].atom < rls[j].atom })
	b.WriteString(";l=")
	for _, l := range rls {
		fmt.Fprintf(&b, "%d:%d,", l.atom, l.bit)
	}
	cls := make([]string, 0, len(st.clauses))
	for _, cl := range st.clauses {
		lits := make([]rlit, 0, len(cl))
		for _, l := range cl {
			lits = append(lits, rlit{num(l.atom), l.bit})
		}
		sort.Slice(lits, func(i, j int) bool {
			if lits[i].atom != lits[j].atom {
				return lits[i].atom < lits[j].atom
			}
			return lits[i].bit < lits[j].bit
		})
		var cb strings.Builder
		for _, l := range lits {
			fmt.Fprintf(&cb, "%d:%d|", l.atom, l.bit)
		}
		cls = append(cls, cb.String())
	}
	sort.Strings(cls)
	b.WriteString(";k=")
	for _, s := range cls {
		b.WriteString(s)
		b.WriteString(" ")
	}
	return b.String()
}
