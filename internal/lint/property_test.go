package lint

import (
	"math/rand"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/pir"
)

// randomSpec generates a spec rich in rule shadowing: with some
// probability a new rule is derived from an earlier one by growing its
// mask and agreeing on the shared bits, which makes it a strict subset of
// the earlier rule's match set (hence SAT-provably shadowed). Targets are
// arbitrary, so loops and unreachable states occur too.
func randomSpec(rng *rand.Rand) *pir.Spec {
	nf := 1 + rng.Intn(3)
	fields := make([]pir.Field, nf)
	names := []string{"a", "b", "c"}
	for i := range fields {
		fields[i] = pir.Field{Name: names[i], Width: 1 + rng.Intn(6)}
	}
	ns := 1 + rng.Intn(4)
	states := make([]pir.State, ns)
	for si := range states {
		st := pir.State{Name: "s" + string(rune('0'+si))}
		for fi := range fields {
			if rng.Intn(2) == 0 {
				st.Extracts = append(st.Extracts, pir.Extract{Field: fields[fi].Name})
			}
		}
		target := func() pir.Target {
			switch rng.Intn(10) {
			case 0, 1, 2:
				return pir.AcceptTarget
			case 3, 4:
				return pir.RejectTarget
			default:
				return pir.To(rng.Intn(ns))
			}
		}
		if rng.Intn(5) > 0 { // most states match on a key
			f := fields[rng.Intn(nf)]
			st.Key = []pir.KeyPart{pir.WholeField(f.Name, f.Width)}
			kw := f.Width
			low := uint64(1)<<uint(kw) - 1
			nr := rng.Intn(7)
			for ri := 0; ri < nr; ri++ {
				var r pir.Rule
				if ri > 0 && rng.Intn(5) < 2 {
					// Subset of an earlier rule: provably shadowed.
					base := st.Rules[rng.Intn(ri)]
					r.Mask = (base.Mask | rng.Uint64()) & low
					r.Value = (base.Value & base.Mask) | (rng.Uint64() & r.Mask &^ base.Mask)
				} else {
					r.Mask = rng.Uint64() & low
					r.Value = rng.Uint64() & r.Mask
				}
				r.Next = target()
				st.Rules = append(st.Rules, r)
			}
		}
		st.Default = target()
		states[si] = st
	}
	states[0].Name = "start"
	return pir.MustNew("rand", fields, states)
}

// trace replays the reference interpreter, recording which rule was the
// first match in each visited state and which states fell through to
// their default despite having rules.
func trace(spec *pir.Spec, input bitstream.Bits,
	fired map[[2]int]bool, defaulted map[int]bool) {
	dict := bitstream.Dict{}
	cur, pos := 0, 0
	for iter := 0; iter < pir.DefaultMaxIterations; iter++ {
		st := &spec.States[cur]
		for _, e := range st.Extracts {
			f, _ := spec.Field(e.Field)
			dict[e.Field] = input.Slice(pos, f.Width)
			pos += f.Width
		}
		next := st.Default
		matched := -1
		if len(st.Key) > 0 {
			key := spec.KeyValue(st, dict, input, pos)
			for ri, r := range st.Rules {
				if key&r.Mask == r.Value&r.Mask {
					next, matched = r.Next, ri
					break
				}
			}
			if matched >= 0 {
				fired[[2]int{cur, matched}] = true
			} else if len(st.Rules) > 0 {
				defaulted[cur] = true
			}
		}
		if next.Kind != pir.ToState {
			return
		}
		cur = next.State
	}
}

// TestShadowedRulesNeverFire is the core soundness property: over random
// specs and >10k random packets, a rule lint flags PH002 is never the
// first match, a default lint flags PH003 is never taken, and the pruned
// spec is observationally equivalent to the original on every input.
func TestShadowedRulesNeverFire(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const specs, packets = 120, 100 // 12000 packet runs
	totalShadowed := 0
	for trial := 0; trial < specs; trial++ {
		spec := randomSpec(rng)
		diags := Run(spec, nil)
		if HasErrors(diags) {
			t.Fatalf("trial %d: random generator must not produce error-severity specs: %v", trial, diags)
		}
		shadowed := map[[2]int]bool{}
		deadDflt := map[int]bool{}
		for _, d := range diags {
			si := spec.StateIndex(d.State)
			switch d.Code {
			case CodeShadowedRule:
				shadowed[[2]int{si, d.Rule}] = true
			case CodeDeadDefault:
				deadDflt[si] = true
			}
		}
		totalShadowed += len(shadowed)
		pruned, _ := Prune(spec, diags)

		n := spec.MaxConsumedBits(0) + 8
		fired := map[[2]int]bool{}
		defaulted := map[int]bool{}
		for p := 0; p < packets; p++ {
			input := bitstream.Random(rng, n)
			trace(spec, input, fired, defaulted)
			if !spec.Run(input, 0).Same(pruned.Run(input, 0)) {
				t.Fatalf("trial %d: pruned spec diverges on %s\nspec:\n%s", trial, input, spec)
			}
		}
		for sr := range shadowed {
			if fired[sr] {
				t.Errorf("trial %d: rule %d of state %q lint proved shadowed was the first match\n%s",
					trial, sr[1], spec.States[sr[0]].Name, spec)
			}
		}
		for si := range deadDflt {
			if defaulted[si] {
				t.Errorf("trial %d: default of state %q lint proved dead was taken\n%s",
					trial, spec.States[si].Name, spec)
			}
		}
	}
	if totalShadowed == 0 {
		t.Fatal("generator produced no shadowed rules; the property was vacuous")
	}
}
