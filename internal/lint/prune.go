package lint

import "parserhawk/internal/pir"

// PruneStats reports how much of the specification pruning removed. The
// before/after state and rule counts are the search-space reduction that
// flows into the compiler's statistics.
type PruneStats struct {
	StatesBefore int
	StatesAfter  int
	RulesBefore  int
	RulesAfter   int
}

// Prune builds the reduced specification the synthesizer should compile:
// states flagged PH001 (unreachable) are dropped and rules flagged PH002
// (SAT-proved shadowed) are removed. diags must come from Run on the same
// spec.
//
// Soundness: an unreachable state is never visited by any execution, and a
// shadowed rule is never the first match for any key value (proved over
// the free key space, a superset of the reachable keys), so the pruned
// spec is observationally equivalent to the original — same acceptance,
// same extracted dictionary, on every input. Field declarations are kept
// verbatim so compiled programs share the original field table.
//
// When nothing is prunable (or the rebuilt spec would not validate, which
// cannot happen for specs built by pir.New), the original spec is returned
// unchanged.
func Prune(spec *pir.Spec, diags []Diag) (*pir.Spec, PruneStats) {
	st := PruneStats{StatesBefore: len(spec.States), StatesAfter: len(spec.States)}
	for i := range spec.States {
		st.RulesBefore += len(spec.States[i].Rules)
	}
	st.RulesAfter = st.RulesBefore

	deadState := map[int]bool{}
	deadRule := map[[2]int]bool{}
	for _, d := range diags {
		si := spec.StateIndex(d.State)
		if si < 0 {
			continue
		}
		switch d.Code {
		case CodeUnreachableState:
			deadState[si] = true
		case CodeShadowedRule:
			if d.Rule >= 0 {
				deadRule[[2]int{si, d.Rule}] = true
			}
		}
	}
	if len(deadState) == 0 && len(deadRule) == 0 {
		return spec, st
	}

	// Remap kept states to their new indices (the start state is always
	// reachable, so index 0 survives as index 0).
	newIdx := make([]int, len(spec.States))
	kept := 0
	for i := range spec.States {
		if deadState[i] {
			newIdx[i] = -1
			continue
		}
		newIdx[i] = kept
		kept++
	}
	retarget := func(t pir.Target) pir.Target {
		if t.Kind == pir.ToState {
			t.State = newIdx[t.State]
		}
		return t
	}

	states := make([]pir.State, 0, kept)
	rules := 0
	for i := range spec.States {
		if deadState[i] {
			continue
		}
		src := &spec.States[i]
		ns := pir.State{
			Name:     src.Name,
			Extracts: append([]pir.Extract(nil), src.Extracts...),
			Key:      append([]pir.KeyPart(nil), src.Key...),
			Default:  retarget(src.Default),
		}
		for ri, r := range src.Rules {
			if deadRule[[2]int{i, ri}] {
				continue
			}
			r.Next = retarget(r.Next)
			ns.Rules = append(ns.Rules, r)
		}
		rules += len(ns.Rules)
		states = append(states, ns)
	}

	pruned, err := pir.New(spec.Name, append([]pir.Field(nil), spec.Fields...), states)
	if err != nil {
		return spec, st
	}
	st.StatesAfter = kept
	st.RulesAfter = rules
	return pruned, st
}
