// Package lint is SpecLint: a multi-pass static analyzer over parser
// specifications (pir.Spec) that runs before synthesis.
//
// Each pass emits structured diagnostics with stable codes:
//
//	PH001 unreachable-state  — no path from the start state reaches it
//	PH002 shadowed-rule      — earlier rules cover the rule's match set
//	PH003 dead-default       — the rules cover the whole key space
//	PH004 width-mismatch     — rule value/mask bits outside the key width
//	PH005 extract-overrun    — a key or varbit length reads un-extracted data
//	PH006 key-exceeds-tcam   — per-state key demands exceed the device TCAM
//	PH007 unbounded-loop     — a cycle can iterate without consuming input
//
// The cheap passes (PH001, PH004, PH005, PH006, PH007) use graph traversal
// and interval arithmetic. The shadowed-rule and dead-default passes are
// exact: each verdict is discharged as a per-state SAT query through the
// internal/bv bit-blasting stack — a rule is shadowed iff its match set
// minus the earlier rules' match sets is unsatisfiable — so PH002/PH003
// diagnostics are proofs, not heuristics.
//
// Diagnostics feed back into compilation: core.Compile rejects
// error-severity specs before any solving starts and prunes unreachable
// states and proven-shadowed rules (Prune), shrinking the symbolic FSM the
// CEGIS loop must match.
package lint

import (
	"fmt"
	"sort"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// Code is a stable diagnostic identifier (PH001–PH007).
type Code string

// Diagnostic codes. The catalogue is append-only: codes keep their meaning
// across releases so CI gates and tooling can match on them.
const (
	CodeUnreachableState Code = "PH001" // unreachable-state
	CodeShadowedRule     Code = "PH002" // shadowed-rule (SAT-certified)
	CodeDeadDefault      Code = "PH003" // dead-default (SAT-certified)
	CodeWidthMismatch    Code = "PH004" // width-mismatch
	CodeExtractOverrun   Code = "PH005" // extract-overrun
	CodeKeyExceedsTCAM   Code = "PH006" // key-exceeds-tcam
	CodeUnboundedLoop    Code = "PH007" // unbounded-loop
)

// Name returns the human-readable slug of a code.
func (c Code) Name() string {
	switch c {
	case CodeUnreachableState:
		return "unreachable-state"
	case CodeShadowedRule:
		return "shadowed-rule"
	case CodeDeadDefault:
		return "dead-default"
	case CodeWidthMismatch:
		return "width-mismatch"
	case CodeExtractOverrun:
		return "extract-overrun"
	case CodeKeyExceedsTCAM:
		return "key-exceeds-tcam"
	case CodeUnboundedLoop:
		return "unbounded-loop"
	}
	return "unknown"
}

// Severity classifies a diagnostic.
type Severity int

// Severity levels. Error-severity diagnostics make core.Compile reject the
// specification; warnings and infos never block compilation.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the lowercase severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"error"`:
		*s = Error
	case `"warning"`:
		*s = Warning
	case `"info"`:
		*s = Info
	default:
		return fmt.Errorf("lint: unknown severity %s", data)
	}
	return nil
}

// Diag is one structured diagnostic. State is the state's name ("" for
// spec-level diagnostics) and Rule the rule index within the state (-1 when
// the diagnostic is not rule-scoped).
type Diag struct {
	Code     Code     `json:"code"`
	Severity Severity `json:"severity"`
	State    string   `json:"state,omitempty"`
	Rule     int      `json:"rule"`
	Msg      string   `json:"msg"`
}

func (d Diag) String() string {
	loc := ""
	if d.State != "" {
		loc = fmt.Sprintf(` state %q`, d.State)
		if d.Rule >= 0 {
			loc += fmt.Sprintf(" rule %d", d.Rule)
		}
	}
	return fmt.Sprintf("%s %s:%s %s", d.Code, d.Severity, loc, d.Msg)
}

// Counts tallies the diagnostics by severity.
func Counts(diags []Diag) (errors, warnings, infos int) {
	for _, d := range diags {
		switch d.Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diag) bool {
	e, _, _ := Counts(diags)
	return e > 0
}

// Run executes every analysis pass over the specification and returns the
// diagnostics sorted by state, rule, and code. profile, when non-nil, adds
// the device-feasibility passes (PH006 and the pipelined-loop note of
// PH007); the semantic passes are device-independent.
//
// Pass ordering: reachability runs first because the exact SAT passes and
// the dataflow passes analyze only reachable states — an unreachable state
// is reported once as PH001 and pruned wholesale, not re-diagnosed
// rule-by-rule.
func Run(spec *pir.Spec, profile *hw.Profile) []Diag {
	a := &analysis{spec: spec, profile: profile, reach: spec.Reachable()}
	a.passReachability() // PH001
	a.passWidths()       // PH004 (also computes never-match rules for PH002's model)
	a.passDataflow()     // PH005
	a.passSAT()          // PH002, PH003
	a.passFeasibility()  // PH006
	a.passLoops()        // PH007
	a.sort()
	return a.diags
}

// analysis carries the shared state of one Run.
type analysis struct {
	spec    *pir.Spec
	profile *hw.Profile
	reach   []bool
	// neverMatch[si][ri] marks rules PH004 proved can never fire (value and
	// mask demand a bit above the key width). The SAT pass folds these to
	// constant false and skips re-reporting them as shadowed.
	neverMatch map[[2]int]bool
	diags      []Diag
}

func (a *analysis) report(code Code, sev Severity, state string, rule int, format string, args ...any) {
	a.diags = append(a.diags, Diag{
		Code:     code,
		Severity: sev,
		State:    state,
		Rule:     rule,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// sort orders diagnostics by state index (spec-level first), then rule,
// then code, so output is deterministic and follows the spec's layout.
func (a *analysis) sort() {
	idx := func(name string) int {
		if name == "" {
			return -1
		}
		return a.spec.StateIndex(name)
	}
	sort.SliceStable(a.diags, func(i, j int) bool {
		di, dj := a.diags[i], a.diags[j]
		si, sj := idx(di.State), idx(dj.State)
		if si != sj {
			return si < sj
		}
		if di.Rule != dj.Rule {
			return di.Rule < dj.Rule
		}
		return di.Code < dj.Code
	})
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
