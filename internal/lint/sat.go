package lint

import (
	"parserhawk/internal/bv"
	"parserhawk/internal/pir"
	"parserhawk/internal/sat"
)

// passSAT runs the exact per-state analyses, PH002 (shadowed-rule) and
// PH003 (dead-default), as SAT queries over the state's transition key.
//
// Model: the key is a free bitvector of the state's key width, so the
// query space is a superset of the keys reachable at runtime. Every
// verdict is therefore sound for pruning: if a rule's match set minus the
// earlier rules' match sets is unsatisfiable over the *free* key, the rule
// can never be the first match on any real packet either — so removing it
// (or never taking the pruned default) preserves the parser's semantics
// exactly. The converse direction is deliberately not claimed: a SAT
// result means "not provably dead", never "live".
//
// Each rule's match formula uses the full interpreter semantics, including
// mask bits above the key width (the key's high bits read as zero, so a
// rule demanding a set high bit folds to constant false — already reported
// by PH004 and skipped here to avoid double-reporting).
func (a *analysis) passSAT() {
	for si := range a.spec.States {
		if !a.reach[si] {
			continue
		}
		st := &a.spec.States[si]
		kw := st.KeyWidth()
		if kw == 0 || len(st.Rules) == 0 {
			continue
		}

		s := bv.New()
		key := s.NewBV(kw)
		low := widthMask(kw)
		match := make([]bv.Lit, len(st.Rules))
		for ri, r := range st.Rules {
			if r.Value&r.Mask&^low != 0 {
				// PH004-proved never-match: bits above the key width are
				// always zero, so the rule's high-bit demand fails.
				match[ri] = s.False()
				continue
			}
			match[ri] = s.MaskedEq(key, s.Const(r.Mask&low, kw), s.Const(r.Value&low, kw))
		}

		// One incremental solver per state; each verdict is a Solve under
		// assumptions, so learned clauses are shared across the queries.
		for ri := range st.Rules {
			if a.neverMatch[[2]int{si, ri}] {
				continue // dead by width, not by shadowing
			}
			assumptions := make([]bv.Lit, 0, ri+1)
			assumptions = append(assumptions, match[ri])
			for rj := 0; rj < ri; rj++ {
				assumptions = append(assumptions, s.Not(match[rj]))
			}
			if s.Solve(assumptions...) == sat.Unsat {
				a.report(CodeShadowedRule, Warning, st.Name, ri,
					"rule is shadowed: its match set minus the earlier rules' match sets is unsatisfiable (SAT-proved); it will be pruned")
			}
		}

		assumptions := make([]bv.Lit, len(st.Rules))
		for ri := range st.Rules {
			assumptions[ri] = s.Not(match[ri])
		}
		if s.Solve(assumptions...) == sat.Unsat {
			dflt := st.Default.String()
			if st.Default.Kind == pir.ToState {
				dflt = a.spec.States[st.Default.State].Name
			}
			a.report(CodeDeadDefault, Warning, st.Name, -1,
				"default transition to %s is dead: the rules cover the whole key space (SAT-proved)", dflt)
		}
	}
}
