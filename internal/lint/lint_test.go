package lint

import (
	"encoding/json"
	"strings"
	"testing"

	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// loc is the (code, state, rule) location of an expected diagnostic.
type loc struct {
	code  Code
	sev   Severity
	state string
	rule  int
}

func locsOf(diags []Diag) []loc {
	out := make([]loc, len(diags))
	for i, d := range diags {
		out[i] = loc{d.Code, d.Severity, d.State, d.Rule}
	}
	return out
}

func assertDiags(t *testing.T, diags []Diag, want []loc) {
	t.Helper()
	got := locsOf(diags)
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n got: %+v\nwant: %+v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d: got %+v, want %+v (msg: %s)", i, got[i], want[i], diags[i].Msg)
		}
	}
}

// Narrow profile used by the PH006 fixtures.
func narrowProfile() hw.Profile {
	p := hw.Parameterized(4, 2, 64)
	p.Name = "narrow"
	return p
}

// TestSeededDefects drives every diagnostic code with a fixture spec
// carrying exactly that defect, asserting the exact code, state, and rule
// location — and pairs each with a clean spec that stays silent.
func TestSeededDefects(t *testing.T) {
	f4 := []pir.Field{{Name: "k", Width: 4}}
	key4 := []pir.KeyPart{pir.WholeField("k", 4)}
	ext := []pir.Extract{{Field: "k"}}

	tests := []struct {
		name    string
		spec    *pir.Spec
		profile *hw.Profile
		want    []loc
	}{
		{
			name: "PH001 unreachable state",
			spec: pir.MustNew("ph001", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules:   []pir.Rule{pir.ExactRule(1, 4, pir.AcceptTarget)},
					Default: pir.RejectTarget},
				{Name: "orphan", Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeUnreachableState, Warning, "orphan", -1}},
		},
		{
			name: "PH001 clean: every state referenced",
			spec: pir.MustNew("ph001c", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules:   []pir.Rule{pir.ExactRule(1, 4, pir.To(1))},
					Default: pir.RejectTarget},
				{Name: "leaf", Default: pir.AcceptTarget},
			}),
			want: nil,
		},
		{
			name: "PH002 duplicate rule shadowed",
			spec: pir.MustNew("ph002", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules: []pir.Rule{
						pir.ExactRule(3, 4, pir.AcceptTarget),
						pir.ExactRule(3, 4, pir.RejectTarget), // same pattern, dead
					},
					Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeShadowedRule, Warning, "start", 1}},
		},
		{
			name: "PH002 masked superset shadows",
			spec: pir.MustNew("ph002m", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules: []pir.Rule{
						{Value: 0x8, Mask: 0x8, Next: pir.AcceptTarget}, // top bit set
						pir.ExactRule(0xC, 4, pir.RejectTarget),         // ⊆ rule 0
					},
					Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeShadowedRule, Warning, "start", 1}},
		},
		{
			name: "PH002 union shadows (no single earlier rule covers)",
			spec: pir.MustNew("ph002u", []pir.Field{{Name: "k", Width: 1}}, []pir.State{
				{Name: "start", Extracts: []pir.Extract{{Field: "k"}},
					Key: []pir.KeyPart{pir.WholeField("k", 1)},
					Rules: []pir.Rule{
						pir.ExactRule(0, 1, pir.AcceptTarget),
						pir.ExactRule(1, 1, pir.AcceptTarget),
						{Value: 0, Mask: 0, Next: pir.RejectTarget}, // covered by 0 ∪ 1
					},
					Default: pir.AcceptTarget},
			}),
			want: []loc{
				{CodeDeadDefault, Warning, "start", -1}, // rules cover the 1-bit space
				{CodeShadowedRule, Warning, "start", 2},
			},
		},
		{
			name: "PH002 clean: overlapping but not covered",
			spec: pir.MustNew("ph002c", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules: []pir.Rule{
						pir.ExactRule(3, 4, pir.AcceptTarget),
						{Value: 0x3, Mask: 0x3, Next: pir.RejectTarget}, // still matches e.g. 0x7
					},
					Default: pir.AcceptTarget},
			}),
			want: nil,
		},
		{
			name: "PH003 rules cover the key space",
			spec: pir.MustNew("ph003", []pir.Field{{Name: "b", Width: 2}}, []pir.State{
				{Name: "start", Extracts: []pir.Extract{{Field: "b"}},
					Key: []pir.KeyPart{pir.WholeField("b", 2)},
					Rules: []pir.Rule{
						{Value: 0, Mask: 0x2, Next: pir.AcceptTarget}, // high bit 0
						{Value: 2, Mask: 0x2, Next: pir.To(1)},        // high bit 1
					},
					Default: pir.RejectTarget},
				{Name: "leaf", Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeDeadDefault, Warning, "start", -1}},
		},
		{
			name: "PH003 clean: a key value falls through",
			spec: pir.MustNew("ph003c", []pir.Field{{Name: "b", Width: 2}}, []pir.State{
				{Name: "start", Extracts: []pir.Extract{{Field: "b"}},
					Key: []pir.KeyPart{pir.WholeField("b", 2)},
					Rules: []pir.Rule{
						pir.ExactRule(0, 2, pir.AcceptTarget),
						pir.ExactRule(1, 2, pir.AcceptTarget),
						pir.ExactRule(2, 2, pir.AcceptTarget),
					},
					Default: pir.RejectTarget}, // value 3 reaches it
			}),
			want: nil,
		},
		{
			name: "PH004 value above key width can never match",
			spec: pir.MustNew("ph004", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules: []pir.Rule{
						{Value: 0x10, Mask: 0x1F, Next: pir.AcceptTarget}, // bit 4 of a 4-bit key
					},
					Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeWidthMismatch, Error, "start", 0}},
		},
		{
			name: "PH004 mask above key width is ignored",
			spec: pir.MustNew("ph004m", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules: []pir.Rule{
						{Value: 0x03, Mask: 0x13, Next: pir.AcceptTarget}, // mask bit 4 inspects nothing
					},
					Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeWidthMismatch, Warning, "start", 0}},
		},
		{
			name: "PH004 value bits outside the mask",
			spec: pir.MustNew("ph004v", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules: []pir.Rule{
						{Value: 0x7, Mask: 0x4, Next: pir.AcceptTarget}, // low value bits unused
					},
					Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeWidthMismatch, Warning, "start", 0}},
		},
		{
			name: "PH004 clean: exact full-width rule",
			spec: pir.MustNew("ph004c", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules:   []pir.Rule{pir.ExactRule(0xF, 4, pir.AcceptTarget)},
					Default: pir.RejectTarget},
			}),
			want: nil,
		},
		{
			name: "PH005 varbit length never extracted",
			spec: pir.MustNew("ph005", []pir.Field{
				{Name: "len", Width: 2},
				{Name: "opts", Width: 8, Var: true},
			}, []pir.State{
				{Name: "start",
					Extracts: []pir.Extract{{Field: "opts", LenField: "len", LenScale: 2}},
					Default:  pir.AcceptTarget},
			}),
			want: []loc{{CodeExtractOverrun, Error, "start", -1}},
		},
		{
			name: "PH005 key on never-extracted field",
			spec: pir.MustNew("ph005k", []pir.Field{
				{Name: "a", Width: 2},
				{Name: "ghost", Width: 3},
			}, []pir.State{
				{Name: "start", Extracts: []pir.Extract{{Field: "a"}},
					Key:     []pir.KeyPart{pir.WholeField("ghost", 3)}, // always zero
					Rules:   []pir.Rule{pir.ExactRule(1, 3, pir.AcceptTarget)},
					Default: pir.RejectTarget},
			}),
			want: []loc{{CodeExtractOverrun, Warning, "start", -1}},
		},
		{
			name: "PH005 clean: length extracted in order, key on own field",
			spec: pir.MustNew("ph005c", []pir.Field{
				{Name: "len", Width: 2},
				{Name: "opts", Width: 8, Var: true},
			}, []pir.State{
				{Name: "start",
					Extracts: []pir.Extract{
						{Field: "len"},
						{Field: "opts", LenField: "len", LenScale: 2},
					},
					Key:     []pir.KeyPart{pir.WholeField("len", 2)},
					Rules:   []pir.Rule{pir.ExactRule(1, 2, pir.AcceptTarget)},
					Default: pir.RejectTarget},
			}),
			want: nil,
		},
		{
			name:    "PH006 key wider than the device limit",
			profile: ptr(narrowProfile()),
			spec: pir.MustNew("ph006", []pir.Field{{Name: "wide", Width: 10}}, []pir.State{
				{Name: "start", Extracts: []pir.Extract{{Field: "wide"}},
					Key:     []pir.KeyPart{pir.WholeField("wide", 10)}, // limit is 4
					Rules:   []pir.Rule{pir.ExactRule(5, 10, pir.AcceptTarget)},
					Default: pir.RejectTarget},
			}),
			want: []loc{{CodeKeyExceedsTCAM, Warning, "start", -1}},
		},
		{
			name:    "PH006 lookahead beyond the device window",
			profile: ptr(narrowProfile()),
			spec: pir.MustNew("ph006l", []pir.Field{{Name: "pay", Width: 4}}, []pir.State{
				{Name: "start",
					Key:     []pir.KeyPart{pir.LookaheadBits(2, 2)}, // reach 4 > window 2
					Rules:   []pir.Rule{pir.ExactRule(1, 2, pir.To(1))},
					Default: pir.AcceptTarget},
				{Name: "body", Extracts: []pir.Extract{{Field: "pay"}}, Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeKeyExceedsTCAM, Warning, "start", -1}},
		},
		{
			name:    "PH006 clean: key fits",
			profile: ptr(narrowProfile()),
			spec: pir.MustNew("ph006c", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules:   []pir.Rule{pir.ExactRule(1, 4, pir.AcceptTarget)},
					Default: pir.RejectTarget},
			}),
			want: nil,
		},
		{
			name: "PH007 zero-progress self-loop",
			spec: pir.MustNew("ph007", f4, []pir.State{
				{Name: "start", Extracts: ext, Key: key4,
					Rules:   []pir.Rule{pir.ExactRule(0, 4, pir.To(1))},
					Default: pir.AcceptTarget},
				{Name: "spin", // extracts nothing, keys on the old value
					Key:     key4,
					Rules:   []pir.Rule{pir.ExactRule(0, 4, pir.To(1))},
					Default: pir.AcceptTarget},
			}),
			want: []loc{{CodeUnboundedLoop, Warning, "spin", -1}},
		},
		{
			name: "PH007 clean: loop consumes bits each iteration",
			spec: pir.MustNew("ph007c", []pir.Field{{Name: "mpls", Width: 4}}, []pir.State{
				{Name: "start", Extracts: []pir.Extract{{Field: "mpls"}},
					Key:     []pir.KeyPart{pir.FieldSlice("mpls", 3, 4)},
					Rules:   []pir.Rule{pir.ExactRule(0, 1, pir.To(0))},
					Default: pir.AcceptTarget},
			}),
			want: nil,
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			assertDiags(t, Run(tc.spec, tc.profile), tc.want)
		})
	}
}

func ptr(p hw.Profile) *hw.Profile { return &p }

// TestPipelinedLoopNote: a loopy spec compiled for a forward-only device
// carries the PH007 info note about bounded unrolling.
func TestPipelinedLoopNote(t *testing.T) {
	spec := pir.MustNew("mpls", []pir.Field{{Name: "l", Width: 4}}, []pir.State{
		{Name: "start", Extracts: []pir.Extract{{Field: "l"}},
			Key:     []pir.KeyPart{pir.FieldSlice("l", 3, 4)},
			Rules:   []pir.Rule{pir.ExactRule(0, 1, pir.To(0))},
			Default: pir.AcceptTarget},
	})
	ipu := hw.IPU()
	diags := Run(spec, &ipu)
	want := []loc{{CodeUnboundedLoop, Info, "", -1}}
	assertDiags(t, diags, want)
	tof := hw.Tofino()
	if ds := Run(spec, &tof); len(ds) != 0 {
		t.Errorf("loop-capable device must not warn: %v", ds)
	}
}

// TestPruneRemovesFlaggedParts: pruning removes exactly the unreachable
// states and shadowed rules, remapping transition targets.
func TestPruneRemovesFlaggedParts(t *testing.T) {
	spec := pir.MustNew("p", []pir.Field{{Name: "k", Width: 2}}, []pir.State{
		{Name: "start", Extracts: []pir.Extract{{Field: "k"}},
			Key: []pir.KeyPart{pir.WholeField("k", 2)},
			Rules: []pir.Rule{
				pir.ExactRule(1, 2, pir.To(2)),
				pir.ExactRule(1, 2, pir.RejectTarget), // shadowed
			},
			Default: pir.AcceptTarget},
		{Name: "orphan", Default: pir.AcceptTarget}, // unreachable
		{Name: "leaf", Default: pir.AcceptTarget},
	})
	diags := Run(spec, nil)
	pruned, st := Prune(spec, diags)
	if st.StatesBefore != 3 || st.StatesAfter != 2 || st.RulesBefore != 2 || st.RulesAfter != 1 {
		t.Fatalf("prune stats: %+v", st)
	}
	if len(pruned.States) != 2 || pruned.States[1].Name != "leaf" {
		t.Fatalf("pruned states wrong: %v", pruned)
	}
	r := pruned.States[0].Rules
	if len(r) != 1 || r[0].Next != pir.To(1) {
		t.Fatalf("rule not retargeted to the shifted leaf index: %+v", r)
	}
	// A clean spec passes through untouched (same pointer).
	clean, cst := Prune(pruned, Run(pruned, nil))
	if clean != pruned || cst.StatesAfter != 2 {
		t.Error("clean spec must be returned unchanged")
	}
}

// TestDiagJSONShape locks the machine-readable schema: code, severity (as
// a lowercase string), state, rule, msg.
func TestDiagJSONShape(t *testing.T) {
	d := Diag{Code: CodeShadowedRule, Severity: Warning, State: "start", Rule: 2, Msg: "m"}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"code":"PH002","severity":"warning","state":"start","rule":2,"msg":"m"}`
	if string(data) != want {
		t.Errorf("schema drift:\n got %s\nwant %s", data, want)
	}
	var back Diag
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip changed the diag: %+v", back)
	}
	if CodeUnboundedLoop.Name() != "unbounded-loop" {
		t.Error("code catalogue name wrong")
	}
	if !strings.Contains(d.String(), `PH002 warning: state "start" rule 2`) {
		t.Errorf("human format drift: %s", d.String())
	}
}
