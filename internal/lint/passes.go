package lint

import (
	"strings"

	"parserhawk/internal/pir"
)

// passReachability emits PH001 for every state no path from the start
// state can visit. Unreachable states arise naturally from rewrites (the
// +R2 family of Figure 21) and cost synthesis time for nothing; Prune
// removes them.
func (a *analysis) passReachability() {
	for i := range a.spec.States {
		if !a.reach[i] {
			a.report(CodeUnreachableState, Warning, a.spec.States[i].Name, -1,
				"state is unreachable from the start state and will be pruned")
		}
	}
}

// passWidths emits PH004 for rules whose value or mask uses bits outside
// the state's key width. A rule that requires a set bit above the key
// width can never fire (the key's high bits read as zero), which is an
// error; a mask that merely inspects absent bits, or value bits the mask
// ignores, are warnings.
func (a *analysis) passWidths() {
	a.neverMatch = map[[2]int]bool{}
	for si := range a.spec.States {
		st := &a.spec.States[si]
		kw := st.KeyWidth()
		if kw == 0 {
			continue
		}
		low := widthMask(kw)
		for ri, r := range st.Rules {
			switch {
			case r.Value&r.Mask&^low != 0:
				a.neverMatch[[2]int{si, ri}] = true
				a.report(CodeWidthMismatch, Error, st.Name, ri,
					"rule can never match: value and mask require a set bit above the %d-bit key", kw)
			case r.Mask&^low != 0:
				a.report(CodeWidthMismatch, Warning, st.Name, ri,
					"mask selects bits above the %d-bit key; they never constrain the match", kw)
			case r.Value&^r.Mask&low != 0:
				a.report(CodeWidthMismatch, Warning, st.Name, ri,
					"value bits outside the mask are ignored by the match")
			}
		}
	}
}

// passDataflow emits PH005 when a state reads packet data that extraction
// never produced. Two dataflow analyses over the state graph:
//
//   - must-extracted: fields extracted on *every* path into the state
//     (intersection over predecessors, greatest fixpoint). A varbit
//     extraction whose length field is not must-extracted reads an
//     undefined length — an error.
//   - may-extracted: fields extracted on *some* path (union, least
//     fixpoint). A transition key slicing a field that is not even
//     may-extracted always reads zero — a warning, since hardware
//     containers are zero-initialised, but almost certainly a spec bug.
//
// Only reachable states are analyzed; unreachable ones are PH001's job.
func (a *analysis) passDataflow() {
	spec := a.spec
	n := len(spec.States)

	all := map[string]bool{}
	for _, f := range spec.Fields {
		all[f.Name] = true
	}
	clone := func(m map[string]bool) map[string]bool {
		c := make(map[string]bool, len(m))
		for k := range m {
			c[k] = true
		}
		return c
	}

	// mustIn starts at ⊤ (all fields) everywhere but the entry; the
	// fixpoint shrinks it. mayIn starts at ⊥ (empty) and grows.
	mustIn := make([]map[string]bool, n)
	mayIn := make([]map[string]bool, n)
	for i := 0; i < n; i++ {
		mustIn[i] = clone(all)
		mayIn[i] = map[string]bool{}
	}
	mustIn[0] = map[string]bool{}

	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if !a.reach[i] {
				continue
			}
			st := &spec.States[i]
			mustOut := clone(mustIn[i])
			mayOut := clone(mayIn[i])
			for _, e := range st.Extracts {
				mustOut[e.Field] = true
				mayOut[e.Field] = true
			}
			flow := func(t pir.Target) {
				if t.Kind != pir.ToState {
					return
				}
				s := t.State
				for f := range mustIn[s] {
					if !mustOut[f] {
						delete(mustIn[s], f)
						changed = true
					}
				}
				for f := range mayOut {
					if !mayIn[s][f] {
						mayIn[s][f] = true
						changed = true
					}
				}
			}
			for _, r := range st.Rules {
				flow(r.Next)
			}
			flow(st.Default)
		}
	}

	for i := 0; i < n; i++ {
		if !a.reach[i] {
			continue
		}
		st := &spec.States[i]

		// Varbit lengths must be extracted before use on every path,
		// including earlier in this state's own extraction sequence.
		local := clone(mustIn[i])
		for _, e := range st.Extracts {
			if e.LenField != "" && !local[e.LenField] {
				a.report(CodeExtractOverrun, Error, st.Name, -1,
					"varbit extraction of %q reads length field %q before it is extracted on every path",
					e.Field, e.LenField)
			}
			local[e.Field] = true
		}

		// Transition keys are evaluated after this state's own extracts.
		avail := clone(mayIn[i])
		for _, e := range st.Extracts {
			avail[e.Field] = true
		}
		for _, p := range st.Key {
			if p.Lookahead {
				continue
			}
			if !avail[p.Field] {
				a.report(CodeExtractOverrun, Warning, st.Name, -1,
					"key slices field %q, which no path extracts before this state; it always reads zero",
					p.Field)
			}
		}
	}
}

// passFeasibility emits PH006 when a state's key demands exceed what the
// device's TCAM can match in one lookup. These are warnings, not errors:
// the compiler splits wide keys across chained states and defers
// over-reaching lookahead past extraction, but both cost extra entries and
// stages, so the spec author should know.
func (a *analysis) passFeasibility() {
	if a.profile == nil {
		return
	}
	p := a.profile
	for i := range a.spec.States {
		if !a.reach[i] {
			continue
		}
		st := &a.spec.States[i]
		kw := st.KeyWidth()
		if p.KeyLimit > 0 && kw > p.KeyLimit {
			a.report(CodeKeyExceedsTCAM, Warning, st.Name, -1,
				"key width %d exceeds the %s key limit %d; the key will be split across %d chained lookups",
				kw, p.Name, p.KeyLimit, p.KeySplitStates(kw))
		}
		reach := 0
		for _, part := range st.Key {
			if part.Lookahead && part.Skip+part.Width > reach {
				reach = part.Skip + part.Width
			}
		}
		if reach > 0 && !p.FitsLookahead(reach) {
			a.report(CodeKeyExceedsTCAM, Warning, st.Name, -1,
				"lookahead reaches %d bits past the cursor but the %s window is %d; the match will be deferred past extraction",
				reach, p.Name, p.LookaheadLimit)
		}
	}
}

// passLoops emits PH007. The error-prone shape is a zero-progress cycle: a
// reachable cycle every state of which can extract zero bits, so the
// parser can revisit the same cursor position forever and terminates only
// by the iteration cap. Minimum extraction widths come from interval
// arithmetic: a varbit of length v*scale+bias over v ∈ [0, 2^w-1] is
// clamped to [0, fieldWidth], and a linear function attains its minimum at
// an interval endpoint.
//
// With a profile, a loop on a forward-only device additionally gets an
// informational note: the compiled pipeline is equivalent to the unrolled
// spec, not the unbounded loop.
func (a *analysis) passLoops() {
	spec := a.spec
	n := len(spec.States)

	minBits := make([]int, n)
	for i := 0; i < n; i++ {
		sum := 0
		for _, e := range spec.States[i].Extracts {
			sum += minExtractBits(spec, e)
		}
		minBits[i] = sum
	}

	// zero[i]: state i is reachable and can consume nothing on a visit.
	zero := make([]bool, n)
	for i := 0; i < n; i++ {
		zero[i] = a.reach[i] && minBits[i] == 0
	}
	succ := func(i int) []int {
		var out []int
		add := func(t pir.Target) {
			if t.Kind == pir.ToState && zero[t.State] {
				out = append(out, t.State)
			}
		}
		for _, r := range spec.States[i].Rules {
			add(r.Next)
		}
		add(spec.States[i].Default)
		return out
	}
	// A state is on a zero-progress cycle iff it can reach itself inside
	// the zero-consumption subgraph. State counts are small, so a DFS per
	// candidate is fine.
	for i := 0; i < n; i++ {
		if !zero[i] {
			continue
		}
		seen := make([]bool, n)
		stack := succ(i)
		onCycle := false
		for len(stack) > 0 && !onCycle {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if s == i {
				onCycle = true
				break
			}
			if seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, succ(s)...)
		}
		if onCycle {
			a.report(CodeUnboundedLoop, Warning, spec.States[i].Name, -1,
				"state can revisit itself without consuming any input bits; the loop is bounded only by the iteration cap")
		}
	}

	if a.profile != nil && !a.profile.AllowLoops() && spec.HasLoop() {
		loopStates := loopStateNames(spec)
		a.report(CodeUnboundedLoop, Info, "", -1,
			"parse loop through %s: %s is forward-only, so the compiled pipeline is equivalent to the bounded unrolling, not the unbounded loop",
			loopStates, a.profile.Name)
	}
}

// minExtractBits returns the fewest bits one extraction can consume.
func minExtractBits(spec *pir.Spec, e pir.Extract) int {
	f, _ := spec.Field(e.Field)
	if e.LenField == "" {
		return f.Width
	}
	lf, _ := spec.Field(e.LenField)
	hi := int(widthMask(lf.Width)) // 2^w - 1
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > f.Width {
			return f.Width
		}
		return v
	}
	w0 := clamp(0*e.LenScale + e.LenBias)
	w1 := clamp(hi*e.LenScale + e.LenBias)
	if w0 < w1 {
		return w0
	}
	return w1
}

// loopStateNames names the states on some reachable cycle, for messages.
func loopStateNames(spec *pir.Spec) string {
	reach := spec.Reachable()
	var names []string
	for i := range spec.States {
		if !reach[i] {
			continue
		}
		// A state is loopy if it can reach itself.
		seen := make([]bool, len(spec.States))
		var stack []int
		push := func(t pir.Target) {
			if t.Kind == pir.ToState {
				stack = append(stack, t.State)
			}
		}
		for _, r := range spec.States[i].Rules {
			push(r.Next)
		}
		push(spec.States[i].Default)
		found := false
		for len(stack) > 0 && !found {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if s == i {
				found = true
				break
			}
			if seen[s] {
				continue
			}
			seen[s] = true
			for _, r := range spec.States[s].Rules {
				push(r.Next)
			}
			push(spec.States[s].Default)
		}
		if found {
			names = append(names, spec.States[i].Name)
		}
	}
	if len(names) == 0 {
		return "(none)"
	}
	return strings.Join(names, ", ")
}
