package benchdata

// Wire-scale benchmarks: the same protocol structures at real header
// widths (48-bit MACs, 16-bit etherTypes, 32-bit addresses). The scaled
// suite in bench.go keeps every compiler fast enough for exhaustive
// comparison; the wire-scale suite is where the naive encoding's
// exponential constant space actually bites, reproducing the paper's
// timeout-censored "Orig" cells and the Table 5 ablation gaps.

// WireEthernetIPSource is the classic Ethernet → IPv4 → TCP/UDP parser at
// real widths; the bmv2-style delivery test (internal/sim) drives it with
// genuine packets.
const WireEthernetIPSource = `
header ethernet {
    bit<48> dst;
    bit<48> src;
    bit<16> etherType;
}
header ipv4 {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  tos;
    bit<16> totalLen;
    bit<16> id;
    bit<16> fragOff;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> checksum;
    bit<32> src;
    bit<32> dst;
}
header tcp {
    bit<16> srcPort;
    bit<16> dstPort;
}
header udp {
    bit<16> srcPort;
    bit<16> dstPort;
}
parser EthernetIP {
    state start {
        extract(ethernet);
        transition select(ethernet.etherType) {
            0x0800  : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.protocol) {
            6       : parse_tcp;
            17      : parse_udp;
            default : accept;
        }
    }
    state parse_tcp { extract(tcp); transition accept; }
    state parse_udp { extract(udp); transition accept; }
}
`

// wireSaiV1Source is the Sai V1 structure at wire widths.
const wireSaiV1Source = `
header eth  { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4 { bit<8> ttl; bit<8> proto; bit<32> src; bit<32> dst; }
header ipv6 { bit<8> nexthdr; bit<8> hop; }
header udp  { bit<16> sport; bit<16> dport; }
parser WireSaiV1 {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x0800  : parse_ipv4;
            0x86DD  : parse_ipv6;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            17      : parse_udp;
            default : accept;
        }
    }
    state parse_ipv6 {
        extract(ipv6);
        transition select(ipv6.nexthdr) {
            17      : parse_udp;
            default : accept;
        }
    }
    state parse_udp { extract(udp); transition accept; }
}
`

// wireLargeTranKeySource selects over a full 32-bit key.
const wireLargeTranKeySource = `
header big { bit<32> key; }
header pay { bit<8> tag; }
parser WireLargeTranKey {
    state start {
        extract(big);
        transition select(big.key) {
            0xDEADBEEF : deliver;
            0xDEADBEEE : deliver;
            default    : accept;
        }
    }
    state deliver { extract(pay); transition accept; }
}
`

// wireDashSource is a dash.p4-style service dispatch with a 12-bit tag
// and wide service payloads; every payload is control-irrelevant, which
// is what makes Opt2 decisive here.
const wireDashSource = `
header tag { bit<12> svc; }
header s0  { bit<16> p0; }
header s1  { bit<16> p1; }
header s2  { bit<16> p2; }
header s3  { bit<16> p3; }
parser WireDash {
    state start {
        extract(tag);
        transition select(tag.svc) {
            0x101   : svc0;
            0x102   : svc1;
            0x103   : svc2;
            0x104   : svc3;
            0x201   : svc0;
            0x202   : svc1;
            default : accept;
        }
    }
    state svc0 { extract(s0); transition accept; }
    state svc1 { extract(s1); transition accept; }
    state svc2 { extract(s2); transition accept; }
    state svc3 { extract(s3); transition accept; }
}
`

// wireGeneveSource parses Geneve encapsulation (RFC 8926) — the protocol
// the paper's introduction names as the kind of "diverse and dynamic"
// header that demands flexible parsing. The variable-length option block
// (optLen in 4-byte units) exercises varbit at wire scale, and the
// protocolType select dispatches the inner frame.
const wireGeneveSource = `
header udp {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<16> length;
    bit<16> checksum;
}
header geneve {
    bit<2>  version;
    bit<6>  optLen;
    bit<1>  oam;
    bit<1>  critical;
    bit<6>  reserved;
    bit<16> protocolType;
    bit<24> vni;
    bit<8>  reserved2;
    varbit<504> options;
}
header inner_eth {
    bit<48> dst;
    bit<48> src;
    bit<16> etherType;
}
parser Geneve {
    state start {
        extract(udp);
        transition select(udp.dstPort) {
            6081    : parse_geneve;
            default : accept;
        }
    }
    state parse_geneve {
        extract(geneve, geneve.optLen * 32);
        transition select(geneve.protocolType) {
            0x6558  : parse_inner;
            default : accept;
        }
    }
    state parse_inner { extract(inner_eth); transition accept; }
}
`

// wireQinQSource parses stacked 802.1Q tags (QinQ): outer S-tag, inner
// C-tag, then the payload dispatch — a two-deep chain of identical header
// shapes.
const wireQinQSource = `
header eth   { bit<48> dst; bit<48> src; bit<16> etherType; }
header stag  { bit<16> tci; bit<16> innerType; }
header ctag  { bit<16> tci; bit<16> innerType; }
header ipv4  { bit<8> ttl; bit<8> proto; }
parser QinQ {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x88A8  : parse_stag;
            0x8100  : parse_ctag;
            0x0800  : parse_ipv4;
            default : accept;
        }
    }
    state parse_stag {
        extract(stag);
        transition select(stag.innerType) {
            0x8100  : parse_ctag;
            0x0800  : parse_ipv4;
            default : accept;
        }
    }
    state parse_ctag {
        extract(ctag);
        transition select(ctag.innerType) {
            0x0800  : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 { extract(ipv4); transition accept; }
}
`

// WireScale returns the wire-width benchmark set used for the naive-mode
// (Orig) comparison and the Table 5 ablation.
func WireScale() []Benchmark {
	return []Benchmark{
		{Family: "Wire Ethernet/IP", Spec: mustSpec(WireEthernetIPSource)},
		{Family: "Wire Sai V1", Spec: mustSpec(wireSaiV1Source)},
		{Family: "Wire Large tran key", Spec: mustSpec(wireLargeTranKeySource)},
		{Family: "Wire Dash", Spec: mustSpec(wireDashSource)},
		{Family: "Wire Geneve", Spec: mustSpec(wireGeneveSource)},
		{Family: "Wire QinQ", Spec: mustSpec(wireQinQSource)},
	}
}
