package benchdata

// Deep/encapsulated real-world parsers (the ROADMAP "scenario breadth"
// corpus): tunnel stacks, mobile-core encapsulation, and loop- or
// lookahead-heavy headers that stress varbit handling and pipelined
// unrolling. Field widths follow the same scaling substitution as the
// Table 3 programs (DESIGN.md): wire-width fields shrink to 1–4 bits so
// exhaustive verification stays tractable, while the state/transition
// structure — conditional tunnels, flag-driven optional headers,
// length-driven varbits, segment-list loops — matches the real protocols.
const (
	// srcDeepQUIC discriminates QUIC long vs short headers by looking
	// ahead at the form bit before committing to either layout, then
	// extracts a connection id whose length is carried in the header
	// itself (varbit).
	srcDeepQUIC = `
header udp   { bit<3> sport; bit<3> dport; }
header longh { bit<1> form; bit<2> ver; bit<2> dcl; varbit<6> dcid; }
header shrth { bit<1> form; bit<3> spin; }
parser DeepQUIC {
    state start {
        extract(udp);
        transition select(udp.dport) {
            7       : quic;
            default : accept;
        }
    }
    state quic {
        transition select(lookahead<bit<1>>()) {
            1       : long_hdr;
            default : short_hdr;
        }
    }
    state long_hdr {
        extract(longh, longh.dcl * 2);
        transition accept;
    }
    state short_hdr { extract(shrth); transition accept; }
}
`

	// srcDeepVXLAN parses a full VXLAN encapsulation chain: outer
	// Ethernet, outer IP, UDP port dispatch, the VXLAN header, and the
	// inner Ethernet — five layers deep.
	srcDeepVXLAN = `
header eth   { bit<4> etherType; }
header ipv4  { bit<2> ver; bit<2> proto; }
header udp   { bit<3> dport; }
header vxlan { bit<2> flags; bit<4> vni; }
header ieth  { bit<4> etherType; }
parser DeepVXLAN {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            4       : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            2       : parse_udp;
            default : accept;
        }
    }
    state parse_udp {
        extract(udp);
        transition select(udp.dport) {
            5       : parse_vxlan;
            default : accept;
        }
    }
    state parse_vxlan { extract(vxlan); transition parse_inner; }
    state parse_inner { extract(ieth); transition accept; }
}
`

	// srcDeepGeneve carries a length-driven option block (varbit sized by
	// optLen) between the base header and the inner protocol dispatch.
	srcDeepGeneve = `
header eth { bit<3> etherType; }
header gnv { bit<2> optLen; bit<2> proto; varbit<6> opts; }
header inr { bit<3> tag; }
parser DeepGeneve {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            6       : parse_geneve;
            default : accept;
        }
    }
    state parse_geneve {
        extract(gnv, gnv.optLen * 2);
        transition select(gnv.proto) {
            1       : parse_inner;
            default : accept;
        }
    }
    state parse_inner { extract(inr); transition accept; }
}
`

	// srcDeepGRE models GRE's flag-driven optional fields: the checksum
	// and key headers are present only when their flag bits are set. Both
	// flags are resolved in one two-part select (keying *after* the
	// optional headers would put the key at a path-dependent offset,
	// which no target can realize), so the payload state is reached at
	// four different cursor depths.
	srcDeepGRE = `
header eth    { bit<4> etherType; }
header gre    { bit<1> csum; bit<1> keyf; bit<2> proto; }
header grecs  { bit<3> checksum; }
header grekey { bit<4> key; }
header inr    { bit<3> tag; }
parser DeepGRE {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            4       : parse_gre;
            default : accept;
        }
    }
    state parse_gre {
        extract(gre);
        transition select(gre.csum, gre.keyf) {
            (1, 1)  : parse_csum_key;
            (1, 0)  : parse_csum;
            (0, 1)  : parse_key;
            default : payload;
        }
    }
    state parse_csum_key { extract(grecs); transition parse_key; }
    state parse_csum { extract(grecs); transition payload; }
    state parse_key { extract(grekey); transition payload; }
    state payload { extract(inr); transition accept; }
}
`

	// srcDeepGTPU is the mobile-core GTP-U encapsulation with its chained
	// extension headers: each extension carries a next-extension flag, so
	// the parser loops until the chain ends (pipelined targets unroll).
	srcDeepGTPU = `
header udp  { bit<3> dport; }
header gtpu { bit<2> flags; bit<2> msgType; bit<1> ext; }
header gext { bit<3> content; bit<1> more; }
header inr  { bit<2> tag; }
parser DeepGTPU {
    state start {
        extract(udp);
        transition select(udp.dport) {
            4       : parse_gtpu;
            default : accept;
        }
    }
    state parse_gtpu {
        extract(gtpu);
        transition select(gtpu.ext) {
            1       : parse_ext;
            default : payload;
        }
    }
    state parse_ext {
        extract(gext);
        transition select(gext.more) {
            1       : parse_ext;
            default : payload;
        }
    }
    state payload { extract(inr); transition accept; }
}
`

	// srcDeepSRv6 walks an SRv6 segment list: after the routing header,
	// segments are consumed one per iteration, and a lookahead at the
	// next segment's tag decides whether to keep walking — a loop whose
	// exit condition lives ahead of the cursor.
	srcDeepSRv6 = `
header ipv6 { bit<3> nextHdr; }
header srh  { bit<2> segsLeft; bit<2> nextHdr; }
header seg  { bit<2> tag; bit<2> sid; }
parser DeepSRv6 {
    state start {
        extract(ipv6);
        transition select(ipv6.nextHdr) {
            4       : parse_srh;
            default : accept;
        }
    }
    state parse_srh { extract(srh); transition parse_seg; }
    state parse_seg {
        extract(seg);
        transition select(lookahead<bit<2>>()) {
            3       : parse_seg;
            default : accept;
        }
    }
}
`
)

// deepIter bounds the two loopy deep parsers (GTP-U extension chains and
// SRv6 segment lists), fixing the unroll depth on pipelined targets.
const deepIter = 4

// Deep returns the deep/encapsulated protocol suite. The suite is part of
// All(): every benchmark compiles and certifies on all registered scaled
// profiles and joins the Table 3 and BENCH_baseline reporting.
func Deep() []Benchmark {
	quic := mustSpec(srcDeepQUIC)
	vxlan := mustSpec(srcDeepVXLAN)
	geneve := mustSpec(srcDeepGeneve)
	gre := mustSpec(srcDeepGRE)
	gtpu := mustSpec(srcDeepGTPU)
	srv6 := mustSpec(srcDeepSRv6)

	return []Benchmark{
		{Family: "Deep QUIC", Spec: quic},
		{Family: "Deep QUIC", Variant: "+R1", Spec: addRedundant(quic, 1)},

		{Family: "Deep VXLAN", Spec: vxlan},
		{Family: "Deep VXLAN", Variant: "+R2", Spec: addUnreachable(vxlan)},

		{Family: "Deep Geneve", Spec: geneve},

		{Family: "Deep GRE", Spec: gre},
		{Family: "Deep GRE", Variant: "-R3", Spec: mergeEntries(gre)},

		{Family: "Deep GTP-U", Spec: gtpu, MaxIterations: deepIter},

		{Family: "Deep SRv6", Spec: srv6, MaxIterations: deepIter},
	}
}
