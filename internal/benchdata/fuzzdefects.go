package benchdata

import "parserhawk/internal/pir"

// Seeded-defect fixtures for the differential fuzzer (internal/fuzz).
// These are deliberately *clean* parsers: the defect is injected by the
// fuzz harness's corruption hooks (a program edit for the spec-vs-program
// oracle, a forged lint verdict for the lint-vs-observed oracle), and the
// regression tests in internal/fuzz prove hawkfuzz both detects the
// divergence and shrinks it to a spec that still exhibits it. They are not
// part of All(): they exist to pin the fuzzer's detection power, not to
// benchmark the synthesizer.
const (
	// srcFuzzSemantics feeds the spec-vs-program oracle: a two-level
	// dispatch with enough rules that corrupting any one program entry's
	// value or mask flips the outcome on a dense fraction of packets.
	srcFuzzSemantics = `
header eth  { bit<4> etherType; }
header ipv4 { bit<3> proto; }
header ipv6 { bit<3> nextHdr; }
header tcp  { bit<2> flags; }
parser FuzzSemantics {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            4       : parse_ipv4;
            6       : parse_ipv6;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            6       : parse_tcp;
            default : accept;
        }
    }
    state parse_ipv6 {
        extract(ipv6);
        transition select(ipv6.nextHdr) {
            6       : parse_tcp;
            default : reject;
        }
    }
    state parse_tcp { extract(tcp); transition accept; }
}
`

	// srcFuzzSplitKeyMask is a real hawkfuzz find, shrunk: a 16-bit key
	// exceeds tofino-scaled's KeyLimit of 12, so the synthesizer splits
	// the key across two TCAM states — and an early verifier accepted a
	// program that dropped the second fragment's mask conjunct of the
	// ternary rule, extracting leg.kind on packets the spec sends to the
	// default. The don't-care-plane directed suite in core/verify.go now
	// refutes such candidates; this fixture pins that.
	srcFuzzSplitKeyMask = `
header h   { bit<16> k; }
header leg { bit<8> kind; }
parser FuzzSplitKeyMask {
    state start {
        extract(h);
        transition select(h.k) {
            0x0800              : accept;
            0x0800 &&& 0xBFFF   : parse_leg;
            default             : accept;
        }
    }
    state parse_leg { extract(leg); transition accept; }
}
`

	// srcFuzzLint feeds the lint-vs-observed oracle: rule 0 of the start
	// state fires on a quarter of all packets, so a forged PH002
	// shadowed-rule certificate for it is refuted within a handful of
	// random inputs.
	srcFuzzLint = `
header tag { bit<2> kind; }
header a   { bit<3> va; }
header b   { bit<3> vb; }
parser FuzzLint {
    state start {
        extract(tag);
        transition select(tag.kind) {
            1       : parse_a;
            2       : parse_b;
            default : accept;
        }
    }
    state parse_a { extract(a); transition accept; }
    state parse_b { extract(b); transition accept; }
}
`
)

// FuzzSemanticsFixture returns the seeded-defect fixture for the
// spec-vs-program oracle pair.
func FuzzSemanticsFixture() *pir.Spec { return mustSpec(srcFuzzSemantics) }

// FuzzLintFixture returns the seeded-defect fixture for the
// lint-vs-observed oracle pair.
func FuzzLintFixture() *pir.Spec { return mustSpec(srcFuzzLint) }

// FuzzSplitKeyMaskFixture returns the shrunk spec of a real divergence
// hawkfuzz found (see srcFuzzSplitKeyMask): a masked rule over a key wider
// than the device's KeyLimit. Regression-tested in internal/fuzz.
func FuzzSplitKeyMaskFixture() *pir.Spec { return mustSpec(srcFuzzSplitKeyMask) }
