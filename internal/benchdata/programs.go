// Package benchdata holds the evaluation benchmark suite (§7): parser
// programs re-authored from the paper's sources — Gibb et al.'s realistic
// parsers, production parsers (switch.p4 / sai.p4 / dash.p4 subsets), and
// synthetic patterns — plus the semantic-preserving rewrite rules R1–R5 of
// Figure 21 used to mutate them into the 58 evaluated variants.
//
// Field widths are scaled down from wire sizes (a 16-bit etherType becomes
// 4–6 bits, addresses shrink to a few bits) so that single-core synthesis
// and exhaustive verification finish in seconds; the state/transition
// structure — which is what the compilers compete on — matches the paper's
// benchmarks. DESIGN.md documents this scaling substitution.
package benchdata

// Base parser programs, written in the P4 subset of internal/p4.
const (
	// srcParseEthernet is the classic Ethernet dispatch: one select over
	// etherType fanning out to IPv4 or IPv6.
	srcParseEthernet = `
header eth  { bit<3> dst; bit<3> src; bit<4> etherType; }
header ipv4 { bit<4> ttl; }
header ipv6 { bit<4> hop; }
parser ParseEthernet {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            4       : parse_ipv4;
            5       : parse_ipv4;
            6       : parse_ipv6;
            default : accept;
        }
    }
    state parse_ipv4 { extract(ipv4); transition accept; }
    state parse_ipv6 { extract(ipv6); transition accept; }
}
`

	// srcParseICMP goes one level deeper: Ethernet, IPv4, then ICMP by
	// protocol number.
	srcParseICMP = `
header eth  { bit<4> etherType; }
header ipv4 { bit<4> proto; bit<3> ttl; }
header icmp { bit<3> code; }
parser ParseICMP {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            4       : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            1       : parse_icmp;
            3       : parse_icmp;
            default : accept;
        }
    }
    state parse_icmp { extract(icmp); transition accept; }
}
`

	// srcParseMPLS iterates over an MPLS label stack: the bottom-of-stack
	// bit decides whether to loop. The single-TCAM-table architecture can
	// realize the whole loop with one revisited entry (§3.1); pipelined
	// devices must unroll.
	srcParseMPLS = `
header mpls { bit<3> label; bit<1> bos; }
header ipv4 { bit<4> ttl; }
parser ParseMPLS {
    state start {
        extract(mpls);
        transition select(mpls.bos) {
            0       : start;
            0       : start;
            default : parse_ipv4;
        }
    }
    state parse_ipv4 { extract(ipv4); transition accept; }
}
`

	// srcParseMPLSUnrolled is the "+ unroll loop" variant: the same
	// semantics written with the loop manually unrolled three deep, the
	// form the IPU compiler accepts. ParserHawk's loop-merged skeleton
	// recovers the single-entry loop on Tofino.
	srcParseMPLSUnrolled = `
header mpls { bit<3> label; bit<1> bos; }
header ipv4 { bit<4> ttl; }
parser ParseMPLSUnrolled {
    state start {
        extract(mpls);
        transition select(mpls.bos) {
            0       : label1;
            default : parse_ipv4;
        }
    }
    state label1 {
        extract(mpls);
        transition select(mpls.bos) {
            0       : label2;
            default : parse_ipv4;
        }
    }
    state label2 {
        extract(mpls);
        transition select(mpls.bos) {
            0       : reject;
            default : parse_ipv4;
        }
    }
    state parse_ipv4 { extract(ipv4); transition accept; }
}
`

	// srcLargeTranKey selects over a 16-bit key — wider than the scaled
	// devices' key limit, so the vendor compilers reject it ("Wide tran
	// key") while ParserHawk splits it across states (§6.4.3).
	srcLargeTranKey = `
header big { bit<16> key; }
header pay { bit<2> tag; }
parser LargeTranKey {
    state start {
        extract(big);
        transition select(big.key) {
            0xF0F0  : deliver;
            0xF0F1  : deliver;
            default : accept;
        }
    }
    state deliver { extract(pay); transition accept; }
}
`

	// srcMultiKeySame keys on two different slices of the same packet
	// field in two states ("Multi-key (same pkt field)").
	srcMultiKeySame = `
header h { bit<8> f; }
header a { bit<2> x; }
header b { bit<2> y; }
parser MultiKeySame {
    state start {
        extract(h);
        transition select(h.f[7:6]) {
            3       : mid;
            default : accept;
        }
    }
    state mid {
        extract(a);
        transition select(h.f[1:0]) {
            0       : leaf;
            default : accept;
        }
    }
    state leaf { extract(b); transition accept; }
}
`

	// srcMultiKeysDiff keys on fields from two different headers in one
	// select ("Multi-keys (diff pkt fields)").
	srcMultiKeysDiff = `
header h1 { bit<3> t; }
header h2 { bit<3> u; }
header pl { bit<2> p; }
parser MultiKeysDiff {
    state start {
        extract(h1);
        transition select(h1.t) {
            1       : mid;
            default : accept;
        }
    }
    state mid {
        extract(h2);
        transition select(h1.t, h2.u) {
            (1, 2)  : leaf;
            (1, 5)  : leaf;
            default : accept;
        }
    }
    state leaf { extract(pl); transition accept; }
}
`

	// srcPureExtraction is a chain of extraction-only states — the
	// state-merging stress test. A single TCAM entry should cover the
	// whole chain on Tofino.
	srcPureExtraction = `
header w { bit<4> a; }
header x { bit<4> b; }
header y { bit<4> c; }
header z { bit<4> d; }
header v { bit<4> e; }
parser PureExtraction {
    state start  { extract(w); transition s1; }
    state s1     { extract(x); transition s2; }
    state s2     { extract(y); transition s3; }
    state s3     { extract(z); transition s4; }
    state s4     { extract(v); transition accept; }
}
`

	// srcPureExtractionMerged is the "+ state merging" variant with the
	// chain already merged in source form.
	srcPureExtractionMerged = `
header w { bit<4> a; }
header x { bit<4> b; }
header y { bit<4> c; }
header z { bit<4> d; }
header v { bit<4> e; }
parser PureExtractionMerged {
    state start {
        extract(w);
        extract(x);
        extract(y);
        extract(z);
        extract(v);
        transition accept;
    }
}
`

	// srcSaiV1 is a subset of sai.p4's fixed parser: Ethernet dispatch to
	// IPv4/IPv6, then transport by protocol.
	srcSaiV1 = `
header eth  { bit<4> etherType; }
header ipv4 { bit<3> proto; }
header ipv6 { bit<3> nexthdr; }
header udp  { bit<3> sport; }
parser SaiV1 {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            4       : parse_ipv4;
            6       : parse_ipv6;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            5       : parse_udp;
            default : accept;
        }
    }
    state parse_ipv6 {
        extract(ipv6);
        transition select(ipv6.nexthdr) {
            5       : parse_udp;
            default : accept;
        }
    }
    state parse_udp { extract(udp); transition accept; }
}
`

	// srcSaiV2 is the larger sai.p4 subset: VLAN, both IP versions,
	// transport dispatch, and tunnel recursion into an inner Ethernet.
	srcSaiV2 = `
header eth   { bit<4> etherType; }
header vlan  { bit<4> innerType; }
header ipv4  { bit<3> proto; }
header ipv6  { bit<3> nexthdr; }
header udp   { bit<4> dport; }
header tcp   { bit<2> flags; }
header vxlan { bit<2> vni; }
header ieth  { bit<2> itype; }
parser SaiV2 {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            1       : parse_vlan;
            4       : parse_ipv4;
            6       : parse_ipv6;
            default : accept;
        }
    }
    state parse_vlan {
        extract(vlan);
        transition select(vlan.innerType) {
            4       : parse_ipv4;
            6       : parse_ipv6;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            5       : parse_udp;
            6       : parse_tcp;
            default : accept;
        }
    }
    state parse_ipv6 {
        extract(ipv6);
        transition select(ipv6.nexthdr) {
            5       : parse_udp;
            6       : parse_tcp;
            default : accept;
        }
    }
    state parse_udp {
        extract(udp);
        transition select(udp.dport) {
            9       : parse_vxlan;
            default : accept;
        }
    }
    state parse_tcp { extract(tcp); transition accept; }
    state parse_vxlan { extract(vxlan); transition inner_eth; }
    state inner_eth { extract(ieth); transition accept; }
}
`

	// srcDashV2 is the dash.p4-style wide dispatch: one state fanning out
	// to many services. Its search space is small (Opt2 shrinks every
	// service payload to 1 bit) even though it uses many TCAM entries —
	// the paper's fastest big benchmark.
	srcDashV2 = `
header tag { bit<4> svc; }
header s0  { bit<9> p0; }
header s1  { bit<9> p1; }
header s2  { bit<9> p2; }
header s3  { bit<9> p3; }
header s4  { bit<9> p4; }
header s5  { bit<9> p5; }
header s6  { bit<9> p6; }
header s7  { bit<9> p7; }
parser DashV2 {
    state start {
        extract(tag);
        transition select(tag.svc) {
            0       : svc0;
            1       : svc1;
            2       : svc2;
            3       : svc3;
            4       : svc4;
            5       : svc5;
            6       : svc6;
            7       : svc7;
            8       : svc0;
            9       : svc1;
            10      : svc2;
            11      : svc3;
            12      : svc4;
            13      : svc5;
            default : accept;
        }
    }
    state svc0 { extract(s0); transition accept; }
    state svc1 { extract(s1); transition accept; }
    state svc2 { extract(s2); transition accept; }
    state svc3 { extract(s3); transition accept; }
    state svc4 { extract(s4); transition accept; }
    state svc5 { extract(s5); transition accept; }
    state svc6 { extract(s6); transition accept; }
    state svc7 { extract(s7); transition accept; }
}
`
)
