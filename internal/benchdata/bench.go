package benchdata

import (
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
)

// Benchmark is one evaluated parser program variant.
type Benchmark struct {
	// Family groups variants of one base program (the Table 3 sections).
	Family string
	// Variant labels the rewrite derivation: "" for the base, "+R1" etc.
	Variant string
	Spec    *pir.Spec
	// MaxIterations bounds loopy programs (and fixes the unroll depth on
	// pipelined targets); 0 for loop-free programs.
	MaxIterations int
}

// Name returns "Family Variant".
func (b Benchmark) Name() string {
	if b.Variant == "" {
		return b.Family
	}
	return b.Family + " " + b.Variant
}

// Additional hand-written variant sources (rewrites that need semantic
// restructuring rather than a mechanical mutation).
const (
	// srcLargeTranKeyR4 is Large tran key with the 16-bit select split by
	// hand into two chained 8-bit selects (+R4 of Figure 21).
	srcLargeTranKeyR4 = `
header big { bit<16> key; }
header pay { bit<2> tag; }
parser LargeTranKeyR4 {
    state start {
        extract(big);
        transition select(big.key[15:8]) {
            0xF0    : low;
            default : accept;
        }
    }
    state low {
        transition select(big.key[7:0]) {
            0xF0    : deliver;
            0xF1    : deliver;
            default : accept;
        }
    }
    state deliver { extract(pay); transition accept; }
}
`

	// srcMultiKeySameMerged is Multi-key (same pkt field) with the two
	// keyed states merged into one two-part select (-R5).
	srcMultiKeySameMerged = `
header h { bit<8> f; }
header a { bit<2> x; }
header b { bit<2> y; }
parser MultiKeySameMerged {
    state start {
        extract(h);
        transition select(h.f[7:6], h.f[1:0]) {
            (3, 0)          : both;
            (3, 0 &&& 0)    : first;
            default         : accept;
        }
    }
    state first { extract(a); transition accept; }
    state both  { extract(a); extract(b); transition accept; }
}
`
)

func mustSpec(src string) *pir.Spec { return p4.MustParseSpec(src) }

// All returns the complete evaluated benchmark suite: every Table 3 row
// (29 programs from the paper's nine families plus the 9-program deep
// protocol corpus of deep.go, each compiled for every target in the
// harness).
func All() []Benchmark {
	eth := mustSpec(srcParseEthernet)
	icmp := mustSpec(srcParseICMP)
	mpls := mustSpec(srcParseMPLS)
	ltk := mustSpec(srcLargeTranKey)
	ltkR4 := mustSpec(srcLargeTranKeyR4)
	mks := mustSpec(srcMultiKeySame)
	mksMerged := mustSpec(srcMultiKeySameMerged)
	mkd := mustSpec(srcMultiKeysDiff)
	pure := mustSpec(srcPureExtraction)
	sai1 := mustSpec(srcSaiV1)
	sai2 := mustSpec(srcSaiV2)
	dash := mustSpec(srcDashV2)

	const mplsIter = 4
	return append([]Benchmark{
		{Family: "Parse Ethernet", Spec: eth},
		{Family: "Parse Ethernet", Variant: "+R1", Spec: addRedundant(eth, 1)},
		{Family: "Parse Ethernet", Variant: "-R3", Spec: mergeEntries(eth)},
		{Family: "Parse Ethernet", Variant: "+R2", Spec: addUnreachable(eth)},

		{Family: "Parse icmp", Spec: icmp},
		{Family: "Parse icmp", Variant: "+R5", Spec: splitState(icmp)},
		{Family: "Parse icmp", Variant: "-R3", Spec: mergeEntries(icmp)},

		{Family: "Parse MPLS", Spec: mpls, MaxIterations: mplsIter},
		{Family: "Parse MPLS", Variant: "+unroll", Spec: mustSpec(srcParseMPLSUnrolled), MaxIterations: mplsIter},
		{Family: "Parse MPLS", Variant: "-R1", Spec: removeRedundant(mpls), MaxIterations: mplsIter},
		{Family: "Parse MPLS", Variant: "+R1", Spec: addRedundant(mpls, 2), MaxIterations: mplsIter},

		{Family: "Large tran key", Spec: ltk},
		{Family: "Large tran key", Variant: "+R4", Spec: ltkR4},
		{Family: "Large tran key", Variant: "+R1+R4", Spec: addRedundant(ltkR4, 1)},
		{Family: "Large tran key", Variant: "+R3+R4", Spec: splitEntries(ltkR4)},

		{Family: "Multi-key (same pkt field)", Spec: mks},
		{Family: "Multi-key (same pkt field)", Variant: "-R5", Spec: mksMerged},
		{Family: "Multi-key (same pkt field)", Variant: "-R5-R3", Spec: mergeEntries(mksMerged)},

		{Family: "Multi-keys (diff pkt fields)", Spec: mkd},
		{Family: "Multi-keys (diff pkt fields)", Variant: "+R5", Spec: splitState(mkd)},
		{Family: "Multi-keys (diff pkt fields)", Variant: "-R5", Spec: mergeStates(mkd)},

		{Family: "Pure Extraction states", Spec: pure},
		{Family: "Pure Extraction states", Variant: "+state merging", Spec: mustSpec(srcPureExtractionMerged)},

		{Family: "Sai V1", Spec: sai1},
		{Family: "Sai V1", Variant: "+R2", Spec: addUnreachable(sai1)},

		{Family: "Sai V2", Spec: sai2},
		{Family: "Sai V2", Variant: "+R1+R2", Spec: addUnreachable(addRedundant(sai2, 3))},

		{Family: "Dash V2", Spec: dash},
		{Family: "Dash V2", Variant: "+R1+R2", Spec: addUnreachable(addRedundant(dash, 1))},
	}, Deep()...)
}

// ByName returns the benchmark with the given Name(), or ok=false.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name() == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Families returns the distinct family names in suite order.
func Families() []string {
	var out []string
	seen := map[string]bool{}
	for _, b := range All() {
		if !seen[b.Family] {
			seen[b.Family] = true
			out = append(out, b.Family)
		}
	}
	return out
}
