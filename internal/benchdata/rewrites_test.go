package benchdata

import (
	"testing"

	"parserhawk/internal/pir"
)

// Direct unit tests for the Figure 21 mutators, complementing the
// whole-suite semantic check in bench_test.go.

func baseForRewrites() *pir.Spec {
	return pir.MustNew("base",
		[]pir.Field{{Name: "h.k", Width: 4}, {Name: "p.x", Width: 2}},
		[]pir.State{
			{
				Name:     "S",
				Extracts: []pir.Extract{{Field: "h.k"}},
				Key:      []pir.KeyPart{pir.WholeField("h.k", 4)},
				Rules: []pir.Rule{
					pir.ExactRule(4, 4, pir.To(1)),
					pir.ExactRule(5, 4, pir.To(1)),
					pir.ExactRule(9, 4, pir.RejectTarget),
				},
				Default: pir.AcceptTarget,
			},
			{Name: "P", Extracts: []pir.Extract{{Field: "p.x"}}, Default: pir.AcceptTarget},
		})
}

func TestAddRedundantCounts(t *testing.T) {
	s := baseForRewrites()
	m := addRedundant(s, 2)
	if got := len(m.States[0].Rules); got != 9 {
		t.Errorf("rules=%d want 9 (3 originals + 2 copies of each)", got)
	}
	if len(s.States[0].Rules) != 3 {
		t.Error("mutator modified its input")
	}
}

func TestRemoveRedundantInvertsAdd(t *testing.T) {
	s := baseForRewrites()
	m := removeRedundant(addRedundant(s, 3))
	if got := len(m.States[0].Rules); got != len(s.States[0].Rules) {
		t.Errorf("rules=%d want %d", got, len(s.States[0].Rules))
	}
}

func TestAddUnreachableIsDead(t *testing.T) {
	s := baseForRewrites()
	m := addUnreachable(s)
	rules := m.States[0].Rules
	last := rules[len(rules)-1]
	first := rules[0]
	if last.Value != first.Value || last.Mask != first.Mask {
		t.Error("+R2 must duplicate an existing pattern")
	}
	if last.Next == first.Next {
		t.Error("+R2 must change the target (making the rule dead)")
	}
}

func TestMergeEntriesCompactsSameTarget(t *testing.T) {
	s := baseForRewrites()
	m := mergeEntries(s)
	// 4 and 5 (010x) share a target and merge; 9 does not.
	if got := len(m.States[0].Rules); got != 2 {
		t.Errorf("rules=%d want 2: %+v", got, m.States[0].Rules)
	}
}

func TestSplitEntriesExpandsMasks(t *testing.T) {
	s := mergeEntries(baseForRewrites())
	m := splitEntries(s)
	if got := len(m.States[0].Rules); got != 3 {
		t.Errorf("rules=%d want 3 after re-expansion: %+v", got, m.States[0].Rules)
	}
}

func TestSplitStateProducesSelectionOnlyState(t *testing.T) {
	s := baseForRewrites()
	m := splitState(s)
	if len(m.States) != len(s.States)+1 {
		t.Fatalf("states=%d", len(m.States))
	}
	// The original state keeps extraction only.
	if len(m.States[0].Rules) != 0 || len(m.States[0].Extracts) == 0 {
		t.Error("first state must become extraction-only")
	}
}

func TestMergeStatesFoldsPassThrough(t *testing.T) {
	split := splitState(baseForRewrites())
	m := mergeStates(split)
	if len(m.States) != len(split.States)-1 {
		t.Errorf("states=%d want %d", len(m.States), len(split.States)-1)
	}
}

func TestMutatorsProduceValidSpecs(t *testing.T) {
	// Every mutator output must pass pir validation (rebuild panics
	// otherwise) and keep the same field set.
	s := baseForRewrites()
	for name, m := range map[string]*pir.Spec{
		"+R1": addRedundant(s, 1),
		"-R1": removeRedundant(s),
		"+R2": addUnreachable(s),
		"-R3": mergeEntries(s),
		"+R3": splitEntries(mergeEntries(s)),
		"+R5": splitState(s),
		"-R5": mergeStates(splitState(s)),
	} {
		if len(m.Fields) != len(s.Fields) {
			t.Errorf("%s changed the field set", name)
		}
	}
}

// TestAliasSuitePreservesCanonicalForm pins the property the memo
// hit-rate measurement relies on: every Alias() spec canonicalizes to
// exactly the same text as its All() counterpart, while its surface text
// differs (so a hit must come through the canonicalizer, not string
// equality).
func TestAliasSuitePreservesCanonicalForm(t *testing.T) {
	base, alias := All(), Alias()
	if len(base) != len(alias) {
		t.Fatalf("suite sizes differ: %d vs %d", len(base), len(alias))
	}
	for i := range base {
		if got, want := alias[i].Name(), base[i].Name(); got != want {
			t.Fatalf("benchmark %d renamed: %q vs %q", i, got, want)
		}
		bc, _, err := pir.Canonicalize(base[i].Spec)
		if err != nil {
			t.Fatalf("%s: canonicalize base: %v", base[i].Name(), err)
		}
		ac, _, err := pir.Canonicalize(alias[i].Spec)
		if err != nil {
			t.Fatalf("%s: canonicalize alias: %v", base[i].Name(), err)
		}
		if bc.String() != ac.String() {
			t.Errorf("%s: alias canonical form diverged:\nbase:\n%s\nalias:\n%s",
				base[i].Name(), bc, ac)
		}
		if base[i].Spec.String() == alias[i].Spec.String() {
			t.Errorf("%s: alias surface text identical to base", base[i].Name())
		}
	}
}
