package benchdata

import (
	"fmt"

	"parserhawk/internal/pir"
)

// The R-rules of Figure 21, implemented as semantics-preserving spec
// mutators. Each returns a fresh spec; the input is never modified. The
// mutators capture how real parser programs drift during development:
// copy-pasted (redundant) rules, dead rules left behind, rules split or
// merged by hand, keys widened past device limits, and states split or
// merged for readability.

func cloneStates(spec *pir.Spec) []pir.State {
	out := make([]pir.State, len(spec.States))
	for i := range spec.States {
		st := spec.States[i]
		out[i] = pir.State{
			Name:     st.Name,
			Extracts: append([]pir.Extract(nil), st.Extracts...),
			Key:      append([]pir.KeyPart(nil), st.Key...),
			Rules:    append([]pir.Rule(nil), st.Rules...),
			Default:  st.Default,
		}
	}
	return out
}

func rebuild(spec *pir.Spec, name string, states []pir.State) *pir.Spec {
	out, err := pir.New(name, spec.Fields, states)
	if err != nil {
		panic(fmt.Sprintf("benchdata: rewrite produced invalid spec: %v", err))
	}
	return out
}

// addRedundant (+R1) appends n copies of each existing rule of the first
// state that has rules. The copies can never fire (identical pattern,
// identical target, lower priority) but a written-form compiler pays TCAM
// entries for them.
func addRedundant(spec *pir.Spec, n int) *pir.Spec {
	states := cloneStates(spec)
	for i := range states {
		if len(states[i].Rules) == 0 {
			continue
		}
		base := append([]pir.Rule(nil), states[i].Rules...)
		for c := 0; c < n; c++ {
			states[i].Rules = append(states[i].Rules, base...)
		}
		break
	}
	return rebuild(spec, spec.Name+"+R1", states)
}

// removeRedundant (-R1) deletes rules that exactly duplicate an earlier
// rule (same value, mask, and target) — the inverse of +R1.
func removeRedundant(spec *pir.Spec) *pir.Spec {
	states := cloneStates(spec)
	for i := range states {
		var kept []pir.Rule
		for _, r := range states[i].Rules {
			dup := false
			for _, k := range kept {
				if k.Value == r.Value && k.Mask == r.Mask && k.Next == r.Next {
					dup = true
					break
				}
			}
			if !dup {
				kept = append(kept, r)
			}
		}
		states[i].Rules = kept
	}
	return rebuild(spec, spec.Name+"-R1", states)
}

// addUnreachable (+R2) appends, to the first state with rules, a rule with
// the same pattern as an existing rule but a different target. First-match
// priority makes it dead code; written-form compilers either spend an
// entry on it (Tofino) or report a conflict (IPU).
func addUnreachable(spec *pir.Spec) *pir.Spec {
	states := cloneStates(spec)
	for i := range states {
		if len(states[i].Rules) == 0 {
			continue
		}
		r := states[i].Rules[0]
		other := pir.AcceptTarget
		if r.Next == pir.AcceptTarget {
			other = pir.RejectTarget
		}
		states[i].Rules = append(states[i].Rules, pir.Rule{Value: r.Value, Mask: r.Mask, Next: other})
		break
	}
	return rebuild(spec, spec.Name+"+R2", states)
}

// mergeEntries (-R3) rewrites each state's rule list by greedily merging
// same-target rules that differ in one care bit into masked rules — the
// compact way a careful developer would have written them.
func mergeEntries(spec *pir.Spec) *pir.Spec {
	states := cloneStates(spec)
	intersects := func(a, b pir.Rule) bool {
		return (a.Value^b.Value)&a.Mask&b.Mask == 0
	}
	for i := range states {
		rules := append([]pir.Rule(nil), states[i].Rules...)
		for {
			merged := false
			for a := 0; a < len(rules) && !merged; a++ {
				for b := a + 1; b < len(rules) && !merged; b++ {
					if rules[a].Next != rules[b].Next || rules[a].Mask != rules[b].Mask {
						continue
					}
					diff := (rules[a].Value ^ rules[b].Value) & rules[a].Mask
					if diff == 0 || diff&(diff-1) != 0 {
						continue
					}
					widened := pir.Rule{Value: rules[a].Value &^ diff, Mask: rules[a].Mask &^ diff, Next: rules[a].Next}
					widened.Value &= widened.Mask
					// Merging hoists b's coverage to a's priority; skip if an
					// intervening rule with another target would be shadowed.
					safe := true
					for k := 0; k < b; k++ {
						if k == a {
							continue
						}
						if rules[k].Next != widened.Next && intersects(rules[k], widened) {
							safe = false
							break
						}
					}
					if !safe {
						continue
					}
					rules[a] = widened
					rules = append(rules[:b], rules[b+1:]...)
					merged = true
				}
			}
			if !merged {
				break
			}
		}
		states[i].Rules = rules
	}
	return rebuild(spec, spec.Name+"-R3", states)
}

// splitEntries (+R3) expands each masked rule into the exact values it
// covers (bounded expansion) — the verbose way the same semantics get
// written by hand.
func splitEntries(spec *pir.Spec) *pir.Spec {
	states := cloneStates(spec)
	for i := range states {
		kw := states[i].KeyWidth()
		if kw == 0 || kw > 12 {
			continue
		}
		var out []pir.Rule
		for _, r := range states[i].Rules {
			full := widthMask(kw)
			wild := ^r.Mask & full
			if wild == 0 || popcount(wild) > 3 {
				out = append(out, r)
				continue
			}
			// Enumerate all assignments of the wildcard bits.
			var bits []uint64
			for b := uint64(1); b <= full; b <<= 1 {
				if wild&b != 0 {
					bits = append(bits, b)
				}
			}
			for m := 0; m < 1<<uint(len(bits)); m++ {
				v := r.Value & r.Mask
				for j, b := range bits {
					if m>>uint(j)&1 == 1 {
						v |= b
					}
				}
				out = append(out, pir.Rule{Value: v, Mask: full, Next: r.Next})
			}
		}
		states[i].Rules = out
	}
	return rebuild(spec, spec.Name+"+R3", states)
}

// splitState (+R5) splits the first state that both extracts and selects
// into an extraction-only state followed by a selection-only state whose
// key references the now-earlier extraction — the cross-state-key shape
// that trips restricted compilers.
func splitState(spec *pir.Spec) *pir.Spec {
	states := cloneStates(spec)
	for i := range states {
		if len(states[i].Extracts) == 0 || len(states[i].Rules) == 0 {
			continue
		}
		// Key parts must reference extracted fields (not lookahead) for the
		// split form to be expressible.
		ok := true
		for _, p := range states[i].Key {
			if p.Lookahead {
				ok = false
			}
		}
		if !ok {
			continue
		}
		sel := pir.State{
			Name:    states[i].Name + "_sel",
			Key:     states[i].Key,
			Rules:   states[i].Rules,
			Default: states[i].Default,
		}
		states[i].Key = nil
		states[i].Rules = nil
		states[i].Default = pir.To(len(states))
		states = append(states, sel)
		return rebuild(spec, spec.Name+"+R5", states)
	}
	return rebuild(spec, spec.Name+"+R5", states)
}

// mergeStates (-R5) folds extraction-only states with a single default
// transition into their successor at the source level — the compact
// single-state form of the same program.
func mergeStates(spec *pir.Spec) *pir.Spec {
	states := cloneStates(spec)
	for {
		merged := false
		for a := 0; a < len(states) && !merged; a++ {
			if len(states[a].Rules) != 0 || states[a].Default.Kind != pir.ToState {
				continue
			}
			b := states[a].Default.State
			if b == a {
				continue
			}
			// b must have a as its only predecessor.
			preds := 0
			for i := range states {
				for _, r := range states[i].Rules {
					if r.Next.Kind == pir.ToState && r.Next.State == b {
						preds++
					}
				}
				if states[i].Default.Kind == pir.ToState && states[i].Default.State == b {
					preds++
				}
			}
			if preds != 1 {
				continue
			}
			// Merge: b's work appended to a.
			states[a].Extracts = append(states[a].Extracts, states[b].Extracts...)
			states[a].Key = states[b].Key
			states[a].Rules = states[b].Rules
			states[a].Default = states[b].Default
			// Remove b, remapping indices.
			states = append(states[:b], states[b+1:]...)
			for i := range states {
				remap := func(t pir.Target) pir.Target {
					if t.Kind == pir.ToState && t.State > b {
						return pir.To(t.State - 1)
					}
					return t
				}
				for ri := range states[i].Rules {
					states[i].Rules[ri].Next = remap(states[i].Rules[ri].Next)
				}
				states[i].Default = remap(states[i].Default)
			}
			merged = true
		}
		if !merged {
			break
		}
	}
	return rebuild(spec, spec.Name+"-R5", states)
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// aliasRename produces a same-canonical-form alias of a spec: every field
// and state renamed positionally, and each rule's value salted with
// garbage bits outside its mask (matching ignores them). Semantics are
// untouched — the cross-compile memo's canonicalizer must map compiles of
// the alias back onto cached results for the original.
func aliasRename(spec *pir.Spec) *pir.Spec {
	fieldRen := make(map[string]string, len(spec.Fields))
	fields := make([]pir.Field, len(spec.Fields))
	for i, f := range spec.Fields {
		n := fmt.Sprintf("alias_f%d", i)
		fieldRen[f.Name] = n
		fields[i] = pir.Field{Name: n, Width: f.Width, Var: f.Var}
	}
	states := cloneStates(spec)
	for i := range states {
		states[i].Name = fmt.Sprintf("alias_q%d", i)
		for j := range states[i].Extracts {
			x := &states[i].Extracts[j]
			x.Field = fieldRen[x.Field]
			if x.LenField != "" {
				x.LenField = fieldRen[x.LenField]
			}
		}
		for j := range states[i].Key {
			if !states[i].Key[j].Lookahead {
				states[i].Key[j].Field = fieldRen[states[i].Key[j].Field]
			}
		}
		for j := range states[i].Rules {
			r := &states[i].Rules[j]
			r.Value |= ^r.Mask & widthMask(16)
		}
	}
	out, err := pir.New(spec.Name, fields, states)
	if err != nil {
		panic(fmt.Sprintf("benchdata: alias rewrite produced invalid spec: %v", err))
	}
	return out
}

// Alias returns the Table 3 suite with every spec passed through
// aliasRename: same benchmark names, same semantics, different surface
// text. A memo populated by a run of All() should serve most of an
// Alias() run from tier-1 alias hits.
func Alias() []Benchmark {
	base := All()
	out := make([]Benchmark, len(base))
	for i, b := range base {
		out[i] = Benchmark{Family: b.Family, Variant: b.Variant,
			Spec: aliasRename(b.Spec), MaxIterations: b.MaxIterations}
	}
	return out
}
