package benchdata

import (
	"math/rand"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/pir"
)

func TestAllBenchmarksParse(t *testing.T) {
	bs := All()
	if len(bs) != 38 {
		t.Errorf("suite has %d benchmarks, want 38 (29 Table 3 rows + 9 deep protocols)", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if b.Spec == nil {
			t.Fatalf("%s: nil spec", b.Name())
		}
		if seen[b.Name()] {
			t.Errorf("duplicate benchmark name %q", b.Name())
		}
		seen[b.Name()] = true
	}
}

// TestRewritesPreserveSemantics checks every R-variant against its base
// on random and exhaustive inputs — Figure 21's rewrites are semantics-
// preserving by definition.
func TestRewritesPreserveSemantics(t *testing.T) {
	base := map[string]Benchmark{}
	for _, b := range All() {
		if b.Variant == "" {
			base[b.Family] = b
		}
	}
	rng := rand.New(rand.NewSource(11))
	for _, b := range All() {
		if b.Variant == "" || b.Variant == "+unroll" || b.Variant == "+state merging" {
			// Unrolling bounds loop depth and state merging is a separate
			// source program; both are compared in the core tests instead.
			continue
		}
		bb, ok := base[b.Family]
		if !ok {
			t.Fatalf("%s: no base", b.Name())
		}
		maxIter := b.MaxIterations
		if maxIter == 0 {
			maxIter = pir.DefaultMaxIterations
		}
		maxLen := bb.Spec.MaxConsumedBits(maxIter) + bb.Spec.LookaheadUse()
		checks := 4000
		exhaustive := false
		if maxLen <= 14 {
			checks = 1 << uint(maxLen)
			exhaustive = true
		}
		for i := 0; i < checks; i++ {
			var in bitstream.Bits
			if exhaustive {
				in = bitstream.FromUint(uint64(i), maxLen)
			} else {
				in = bitstream.Random(rng, maxLen)
			}
			got := b.Spec.Run(in, maxIter)
			want := bb.Spec.Run(in, maxIter)
			if !got.Same(want) {
				t.Fatalf("%s: rewrite changed semantics on %s:\nvariant: acc=%v dict=%v\nbase:    acc=%v dict=%v",
					b.Name(), in, got.Accepted, got.Dict, want.Accepted, want.Dict)
			}
		}
	}
}

func TestMutatorsChangeWrittenForm(t *testing.T) {
	eth, _ := ByName("Parse Ethernet")
	plus, _ := ByName("Parse Ethernet +R1")
	if len(plus.Spec.States[0].Rules) <= len(eth.Spec.States[0].Rules) {
		t.Error("+R1 must add written rules")
	}
	minus, _ := ByName("Parse Ethernet -R3")
	if len(minus.Spec.States[0].Rules) >= len(eth.Spec.States[0].Rules) {
		t.Error("-R3 must merge written rules")
	}
	r2, _ := ByName("Parse Ethernet +R2")
	if len(r2.Spec.States[0].Rules) != len(eth.Spec.States[0].Rules)+1 {
		t.Error("+R2 must add exactly one dead rule")
	}
}

func TestSplitStateAddsCrossStateKey(t *testing.T) {
	b, _ := ByName("Parse icmp +R5")
	// The split introduces a selection-only state whose key references a
	// field extracted in the previous state.
	found := false
	for i := range b.Spec.States {
		st := &b.Spec.States[i]
		if len(st.Extracts) == 0 && len(st.Rules) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("+R5 did not produce a selection-only state")
	}
}

func TestLargeTranKeyR4SplitsKey(t *testing.T) {
	b, _ := ByName("Large tran key +R4")
	for i := range b.Spec.States {
		if kw := b.Spec.States[i].KeyWidth(); kw > 8 {
			t.Errorf("state %d key width %d; +R4 should cap at 8", i, kw)
		}
	}
}

func TestByNameAndFamilies(t *testing.T) {
	if _, ok := ByName("does not exist"); ok {
		t.Error("ByName must fail for unknown names")
	}
	fams := Families()
	if len(fams) != 16 {
		t.Errorf("families=%d want 16: %v", len(fams), fams)
	}
}

func TestMPLSVariantsAreLoopy(t *testing.T) {
	for _, name := range []string{"Parse MPLS", "Parse MPLS -R1", "Parse MPLS +R1"} {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if !b.Spec.HasLoop() {
			t.Errorf("%s must be loopy", name)
		}
		if b.MaxIterations == 0 {
			t.Errorf("%s needs an iteration bound", name)
		}
	}
	un, _ := ByName("Parse MPLS +unroll")
	if un.Spec.HasLoop() {
		t.Error("+unroll must be loop-free")
	}
}

func TestWireScaleSuite(t *testing.T) {
	ws := WireScale()
	if len(ws) != 6 {
		t.Fatalf("wire suite has %d benchmarks, want 6", len(ws))
	}
	for _, b := range ws {
		if b.Spec == nil {
			t.Fatalf("%s: nil spec", b.Family)
		}
		if b.Spec.HasLoop() {
			t.Errorf("%s: wire benchmarks are loop-free", b.Family)
		}
	}
	// Geneve carries the wire-scale varbit.
	g := ws[4]
	f, ok := g.Spec.Field("geneve.options")
	if !ok || !f.Var || f.Width != 504 {
		t.Errorf("geneve options field: %+v", f)
	}
	// Parsing a Geneve packet with two 4-byte options lands on the inner
	// Ethernet at the right offset.
	in := bitstream.FromUint(0, 16). // udp.srcPort
						Concat(bitstream.FromUint(6081, 16)).     // udp.dstPort
						Concat(bitstream.FromUint(0, 32)).        // len+checksum
						Concat(bitstream.FromUint(2, 8)).         // ver=0, optLen=2
						Concat(bitstream.FromUint(0, 8)).         // flags
						Concat(bitstream.FromUint(0x6558, 16)).   // protocolType
						Concat(bitstream.FromUint(0xABCDEF, 24)). // vni
						Concat(bitstream.FromUint(0, 8)).         // reserved2
						Concat(bitstream.FromUint(0, 64)).        // 2 options (8 bytes)
						Concat(bitstream.FromUint(0x42, 48))      // inner dst starts
	r := g.Spec.Run(in, 0)
	if !r.Accepted {
		t.Fatal("geneve packet must parse")
	}
	if got := len(r.Dict["geneve.options"]); got != 64 {
		t.Errorf("options width=%d want 64", got)
	}
	if got := r.Dict["inner_eth.dst"].Uint(0, 48); got != 0x42 {
		t.Errorf("inner dst=%#x", got)
	}
	if got := r.Dict["geneve.vni"].Uint(0, 24); got != 0xABCDEF {
		t.Errorf("vni=%#x", got)
	}
}
