// Package pkt builds byte-accurate network packets — the repository's
// stand-in for Scapy in the paper's §7.1 correctness validation. The
// builders produce real wire formats (Ethernet, 802.1Q VLAN, MPLS, IPv4
// with options, IPv6, TCP, UDP, ICMP) so compiled parsers can be exercised
// on genuine traffic shapes.
package pkt

import (
	"encoding/binary"
	"fmt"
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeVLAN = 0x8100
	EtherTypeIPv6 = 0x86DD
	EtherTypeMPLS = 0x8847
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

// Marshal appends the header's wire bytes to b.
func (h Ethernet) Marshal(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	return binary.BigEndian.AppendUint16(b, h.EtherType)
}

// VLAN is an 802.1Q tag.
type VLAN struct {
	PCP       uint8 // 3 bits
	DEI       bool
	VID       uint16 // 12 bits
	EtherType uint16 // inner type
}

// Marshal appends the tag's wire bytes to b.
func (h VLAN) Marshal(b []byte) []byte {
	tci := uint16(h.PCP&0x7)<<13 | uint16(h.VID&0x0FFF)
	if h.DEI {
		tci |= 1 << 12
	}
	b = binary.BigEndian.AppendUint16(b, tci)
	return binary.BigEndian.AppendUint16(b, h.EtherType)
}

// MPLS is one MPLS label-stack entry.
type MPLS struct {
	Label  uint32 // 20 bits
	TC     uint8  // 3 bits
	Bottom bool   // bottom-of-stack flag
	TTL    uint8
}

// Marshal appends the entry's wire bytes to b.
func (h MPLS) Marshal(b []byte) []byte {
	v := h.Label&0xFFFFF<<12 | uint32(h.TC&0x7)<<9 | uint32(h.TTL)
	if h.Bottom {
		v |= 1 << 8
	}
	return binary.BigEndian.AppendUint32(b, v)
}

// IPv4 is an IPv4 header; Options must be a multiple of 4 bytes.
type IPv4 struct {
	DSCP     uint8
	ECN      uint8
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst [4]byte
	Options  []byte
	// PayloadLen sets totalLength = 20 + len(Options) + PayloadLen.
	PayloadLen int
}

// Marshal appends the header's wire bytes (with a correct checksum) to b.
func (h IPv4) Marshal(b []byte) ([]byte, error) {
	if len(h.Options)%4 != 0 || len(h.Options) > 40 {
		return nil, fmt.Errorf("pkt: IPv4 options must be 0-40 bytes in 4-byte units, got %d", len(h.Options))
	}
	ihl := 5 + len(h.Options)/4
	total := ihl*4 + h.PayloadLen
	start := len(b)
	b = append(b, byte(4<<4|ihl), h.DSCP<<2|h.ECN&0x3)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(h.Flags&0x7)<<13|h.FragOff&0x1FFF)
	b = append(b, h.TTL, h.Protocol, 0, 0) // checksum zeroed
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	b = append(b, h.Options...)
	sum := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+10:], sum)
	return b, nil
}

// IPv6 is an IPv6 base header.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     [16]byte
}

// Marshal appends the header's wire bytes to b.
func (h IPv6) Marshal(b []byte) []byte {
	w := uint32(6)<<28 | uint32(h.TrafficClass)<<20 | h.FlowLabel&0xFFFFF
	b = binary.BigEndian.AppendUint32(b, w)
	b = binary.BigEndian.AppendUint16(b, h.PayloadLen)
	b = append(b, h.NextHeader, h.HopLimit)
	b = append(b, h.Src[:]...)
	return append(b, h.Dst[:]...)
}

// TCP is a TCP header without options.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8 // FIN/SYN/RST/PSH/ACK/URG bits
	Window           uint16
}

// Marshal appends the header's wire bytes to b (checksum left zero; the
// parser benchmarks never validate it).
func (h TCP) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, 5<<4, h.Flags) // data offset 5 words
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = append(b, 0, 0, 0, 0) // checksum, urgent pointer
	return b
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	PayloadLen       int
}

// Marshal appends the header's wire bytes to b.
func (h UDP) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(8+h.PayloadLen))
	return append(b, 0, 0) // checksum optional in IPv4
}

// ICMP is an ICMP header (echo-style).
type ICMP struct {
	Type, Code uint8
	ID, Seq    uint16
}

// Marshal appends the header's wire bytes (with checksum) to b.
func (h ICMP) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, h.Type, h.Code, 0, 0)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, h.Seq)
	sum := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+2:], sum)
	return b
}

// Checksum computes the RFC 1071 internet checksum of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// TCPPacket builds a full Ethernet/IPv4/TCP packet with the given
// addressing — the packet shape the paper's bmv2 delivery test uses.
func TCPPacket(srcIP, dstIP [4]byte, srcPort, dstPort uint16, payload []byte) ([]byte, error) {
	eth := Ethernet{
		Dst:       [6]byte{0x02, 0, 0, 0, 0, 2},
		Src:       [6]byte{0x02, 0, 0, 0, 0, 1},
		EtherType: EtherTypeIPv4,
	}
	ip := IPv4{
		TTL: 64, Protocol: ProtoTCP,
		Src: srcIP, Dst: dstIP,
		PayloadLen: 20 + len(payload),
	}
	tcp := TCP{SrcPort: srcPort, DstPort: dstPort, Flags: 0x02 /* SYN */, Window: 65535}

	b := eth.Marshal(nil)
	b, err := ip.Marshal(b)
	if err != nil {
		return nil, err
	}
	b = tcp.Marshal(b)
	return append(b, payload...), nil
}

// MPLSStack builds an Ethernet packet carrying a stack of MPLS labels
// followed by an IPv4 header — the loop benchmark's traffic.
func MPLSStack(labels []uint32, dstIP [4]byte) ([]byte, error) {
	eth := Ethernet{
		Dst:       [6]byte{0x02, 0, 0, 0, 0, 2},
		Src:       [6]byte{0x02, 0, 0, 0, 0, 1},
		EtherType: EtherTypeMPLS,
	}
	b := eth.Marshal(nil)
	for i, l := range labels {
		b = MPLS{Label: l, TTL: 64, Bottom: i == len(labels)-1}.Marshal(b)
	}
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Dst: dstIP}
	return ip.Marshal(b)
}
