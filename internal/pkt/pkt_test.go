package pkt

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestEthernetLayout(t *testing.T) {
	b := Ethernet{
		Dst:       [6]byte{1, 2, 3, 4, 5, 6},
		Src:       [6]byte{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
	}.Marshal(nil)
	if len(b) != 14 {
		t.Fatalf("len=%d", len(b))
	}
	if b[0] != 1 || b[5] != 6 || b[6] != 7 {
		t.Error("address layout wrong")
	}
	if binary.BigEndian.Uint16(b[12:]) != 0x0800 {
		t.Error("etherType wrong")
	}
}

func TestVLANLayout(t *testing.T) {
	b := VLAN{PCP: 5, DEI: true, VID: 0x123, EtherType: EtherTypeIPv6}.Marshal(nil)
	if len(b) != 4 {
		t.Fatalf("len=%d", len(b))
	}
	tci := binary.BigEndian.Uint16(b)
	if tci>>13 != 5 || tci>>12&1 != 1 || tci&0x0FFF != 0x123 {
		t.Errorf("tci=%04x", tci)
	}
}

func TestMPLSLayout(t *testing.T) {
	b := MPLS{Label: 0xABCDE, TC: 3, Bottom: true, TTL: 64}.Marshal(nil)
	v := binary.BigEndian.Uint32(b)
	if v>>12 != 0xABCDE {
		t.Errorf("label=%05x", v>>12)
	}
	if v>>9&0x7 != 3 || v>>8&1 != 1 || v&0xFF != 64 {
		t.Errorf("tc/bos/ttl wrong: %08x", v)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	b, err := IPv4{TTL: 64, Protocol: ProtoTCP,
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}}.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 20 {
		t.Fatalf("len=%d", len(b))
	}
	// Re-checksumming a valid header yields zero.
	if got := Checksum(b); got != 0 {
		t.Errorf("checksum over valid header = %04x, want 0", got)
	}
	if b[0] != 0x45 {
		t.Errorf("version/ihl=%02x", b[0])
	}
}

func TestIPv4Options(t *testing.T) {
	b, err := IPv4{Options: []byte{1, 1, 1, 1, 2, 2, 2, 2}}.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 28 {
		t.Fatalf("len=%d", len(b))
	}
	if b[0]&0x0F != 7 {
		t.Errorf("ihl=%d want 7", b[0]&0x0F)
	}
	if _, err := (IPv4{Options: []byte{1}}).Marshal(nil); err == nil {
		t.Error("odd options length must fail")
	}
	if _, err := (IPv4{Options: make([]byte, 44)}).Marshal(nil); err == nil {
		t.Error("oversize options must fail")
	}
}

func TestIPv6Layout(t *testing.T) {
	h := IPv6{TrafficClass: 0xAB, FlowLabel: 0x12345, NextHeader: ProtoUDP, HopLimit: 64}
	b := h.Marshal(nil)
	if len(b) != 40 {
		t.Fatalf("len=%d", len(b))
	}
	w := binary.BigEndian.Uint32(b)
	if w>>28 != 6 || w>>20&0xFF != 0xAB || w&0xFFFFF != 0x12345 {
		t.Errorf("first word %08x", w)
	}
}

func TestTCPUDPLayout(t *testing.T) {
	b := TCP{SrcPort: 1234, DstPort: 80, Flags: 0x12}.Marshal(nil)
	if len(b) != 20 {
		t.Fatalf("tcp len=%d", len(b))
	}
	if binary.BigEndian.Uint16(b) != 1234 || binary.BigEndian.Uint16(b[2:]) != 80 {
		t.Error("ports wrong")
	}
	if b[12] != 5<<4 {
		t.Error("data offset wrong")
	}
	u := UDP{SrcPort: 53, DstPort: 53, PayloadLen: 4}.Marshal(nil)
	if len(u) != 8 || binary.BigEndian.Uint16(u[4:]) != 12 {
		t.Error("udp length wrong")
	}
}

func TestICMPChecksum(t *testing.T) {
	b := ICMP{Type: 8, ID: 42, Seq: 7}.Marshal(nil)
	if Checksum(b) != 0 {
		t.Error("icmp checksum invalid")
	}
}

func TestChecksumProperties(t *testing.T) {
	// Folding a valid checksum into its own data yields zero.
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		buf := append([]byte(nil), data...)
		buf = append(buf, 0, 0)
		sum := Checksum(buf)
		binary.BigEndian.PutUint16(buf[len(buf)-2:], sum)
		return Checksum(buf) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPPacketComposition(t *testing.T) {
	p, err := TCPPacket([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 1234, 80, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 14+20+20+2 {
		t.Fatalf("len=%d", len(p))
	}
	if binary.BigEndian.Uint16(p[12:]) != EtherTypeIPv4 {
		t.Error("outer etherType")
	}
	if p[14+9] != ProtoTCP {
		t.Error("ip protocol")
	}
	if p[14+19] != 2 {
		t.Error("dst ip last octet")
	}
	if binary.BigEndian.Uint16(p[14+20+2:]) != 80 {
		t.Error("tcp dst port")
	}
}

func TestMPLSStackComposition(t *testing.T) {
	p, err := MPLSStack([]uint32{100, 200, 300}, [4]byte{192, 168, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 14+12+20 {
		t.Fatalf("len=%d", len(p))
	}
	// Only the last entry carries the bottom-of-stack bit.
	for i := 0; i < 3; i++ {
		v := binary.BigEndian.Uint32(p[14+4*i:])
		bos := v>>8&1 == 1
		if bos != (i == 2) {
			t.Errorf("label %d: bos=%v", i, bos)
		}
	}
}
