// Package tcam models the TCAM-based parser implementations that
// ParserHawk generates (§3, §4).
//
// A Program is a set of implementation states, each owning a transition-key
// composition and an ordered list of ternary entries. Entry order encodes
// TCAM priority: the first matching entry fires. Each entry carries its own
// extraction actions and its transition target, matching the row format
// (Condition, ExtractSet, Tran) of Figure 6.
//
// Unlike the specification FSM (internal/pir), an implementation state's
// condition is evaluated *before* its extractions: the key may reference
// only fields extracted in earlier iterations, or raw lookahead bits ahead
// of the current cursor. This cursor/extraction phase shift is exactly what
// makes parser compilation non-trivial.
package tcam

import (
	"fmt"
	"strings"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/pir"
)

// TargetKind discriminates entry transition targets.
type TargetKind int

// Entry transition target kinds.
const (
	ToState TargetKind = iota // jump to (Table, State)
	Accept
	Reject
)

// Target is the Tran field of a TCAM row: the table and state to visit
// next, or a terminal outcome.
type Target struct {
	Kind  TargetKind
	Table int // destination TCAM table (pipeline stage on the IPU)
	State int // destination state id within that table
}

// AcceptTarget and RejectTarget are the terminal targets.
var (
	AcceptTarget = Target{Kind: Accept}
	RejectTarget = Target{Kind: Reject}
)

// To returns a Target for table t, state s.
func To(t, s int) Target { return Target{Kind: ToState, Table: t, State: s} }

func (t Target) String() string {
	switch t.Kind {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("(%d,%d)", t.Table, t.State)
	}
}

// Entry is one TCAM row. The entry fires when key & Mask == Value & Mask
// evaluated over its state's key composition.
type Entry struct {
	Value, Mask uint64
	Extracts    []pir.Extract // fields deposited when the entry fires, in order
	Next        Target
}

// State is one implementation parser state: a key composition shared by its
// entries, and the prioritized entries themselves. A state with no matching
// entry rejects the packet, so synthesizers emit an explicit wildcard entry
// for default-accept behaviour — keeping the paper's "one transition arrow,
// one TCAM entry" accounting honest.
type State struct {
	Table   int
	ID      int
	Key     []pir.KeyPart
	Entries []Entry
}

// KeyWidth returns the state's transition-key width in bits.
func (s *State) KeyWidth() int {
	w := 0
	for _, p := range s.Key {
		w += p.BitWidth()
	}
	return w
}

// Program is a complete TCAM parser implementation for one specification.
type Program struct {
	Spec   *pir.Spec // field declarations and reference semantics
	States []State
}

// Lookup returns the state at (table, id), or nil.
func (p *Program) Lookup(table, id int) *State {
	for i := range p.States {
		if p.States[i].Table == table && p.States[i].ID == id {
			return &p.States[i]
		}
	}
	return nil
}

// Resources summarises hardware resource consumption.
type Resources struct {
	Entries     int // total TCAM entries (the Tofino budget metric)
	Stages      int // number of distinct tables used (the IPU budget metric)
	MaxKeyWidth int // widest transition key of any state
	MaxEntries  int // largest entry count in a single stage
	States      int
}

// Resources computes the program's resource usage.
func (p *Program) Resources() Resources {
	r := Resources{States: len(p.States)}
	stage := map[int]int{}
	for i := range p.States {
		s := &p.States[i]
		r.Entries += len(s.Entries)
		stage[s.Table] += len(s.Entries)
		if kw := s.KeyWidth(); kw > r.MaxKeyWidth {
			r.MaxKeyWidth = kw
		}
	}
	r.Stages = len(stage)
	for _, n := range stage {
		if n > r.MaxEntries {
			r.MaxEntries = n
		}
	}
	return r
}

// Run interprets the program on input for at most maxIter iterations,
// implementing the Impl(I) pseudo-code of Figure 6. maxIter <= 0 selects
// pir.DefaultMaxIterations.
func (p *Program) Run(input bitstream.Bits, maxIter int) pir.Result {
	res, _ := p.RunFrom(input, 0, bitstream.Dict{}, maxIter)
	return res
}

// RunFrom interprets the program with the cursor starting at pos and the
// dictionary pre-seeded — the resumption primitive interleaved
// architectures need (Figure 2(c)): a later sub-parser continues where
// the previous one accepted, seeing fields the match-action pipeline may
// have rewritten. It returns the result and the final cursor position.
func (p *Program) RunFrom(input bitstream.Bits, pos int, dict bitstream.Dict, maxIter int) (pir.Result, int) {
	if maxIter <= 0 {
		maxIter = pir.DefaultMaxIterations
	}
	res := pir.Result{Dict: dict.Clone()}
	cur := To(0, 0)
	for iter := 0; iter < maxIter; iter++ {
		st := p.Lookup(cur.Table, cur.State)
		if st == nil {
			res.Rejected = true
			return res, pos
		}
		res.Path = append(res.Path, cur.State)
		key := p.keyValue(st, res.Dict, input, pos)
		matched := false
		for ei := range st.Entries {
			e := &st.Entries[ei]
			if key&e.Mask != e.Value&e.Mask {
				continue
			}
			matched = true
			for _, x := range e.Extracts {
				w := p.extractWidth(x, res.Dict)
				res.Dict[x.Field] = input.Slice(pos, w)
				pos += w
			}
			res.Consumed = pos
			cur = e.Next
			break
		}
		if !matched {
			res.Rejected = true
			return res, pos
		}
		switch cur.Kind {
		case Accept:
			res.Accepted = true
			return res, pos
		case Reject:
			res.Rejected = true
			return res, pos
		}
	}
	res.Rejected = true
	return res, pos
}

func (p *Program) keyValue(st *State, dict bitstream.Dict, input bitstream.Bits, pos int) uint64 {
	var key uint64
	for _, part := range st.Key {
		w := part.BitWidth()
		var v uint64
		if part.Lookahead {
			v = input.Uint(pos+part.Skip, w)
		} else {
			v = dict[part.Field].Uint(part.Lo, w)
		}
		key = key<<uint(w) | v
	}
	return key
}

func (p *Program) extractWidth(e pir.Extract, dict bitstream.Dict) int {
	f, _ := p.Spec.Field(e.Field)
	if e.LenField == "" {
		return f.Width
	}
	lf, _ := p.Spec.Field(e.LenField)
	n := int(dict[e.LenField].Uint(0, lf.Width))*e.LenScale + e.LenBias
	if n < 0 {
		n = 0
	}
	if n > f.Width {
		n = f.Width
	}
	return n
}

// String renders the program as a table of TCAM rows, one row per entry,
// in the style of Table 1.
func (p *Program) String() string {
	var sb strings.Builder
	for i := range p.States {
		s := &p.States[i]
		parts := make([]string, len(s.Key))
		for j, k := range s.Key {
			parts[j] = k.String()
		}
		fmt.Fprintf(&sb, "TID:%d SID:%d key=(%s)\n", s.Table, s.ID, strings.Join(parts, ","))
		for ei, e := range s.Entries {
			var xs []string
			for _, x := range e.Extracts {
				xs = append(xs, x.Field)
			}
			fmt.Fprintf(&sb, "  EID:%d  %0*b &&& %0*b  extract{%s}  -> %s\n",
				ei, s.KeyWidth(), e.Value, s.KeyWidth(), e.Mask, strings.Join(xs, ","), e.Next)
		}
	}
	return sb.String()
}
