package tcam

import (
	"encoding/json"
	"fmt"

	"parserhawk/internal/pir"
)

// The JSON form of a compiled program is the deployment artifact: the
// field table plus every TCAM row, exactly what a device driver needs to
// populate the parser. EncodeJSON/DecodeJSON round-trip losslessly.

type jsonProgram struct {
	Fields []jsonField `json:"fields"`
	States []jsonState `json:"states"`
}

type jsonField struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
	Var   bool   `json:"varbit,omitempty"`
}

type jsonState struct {
	Table   int           `json:"table"`
	ID      int           `json:"id"`
	Key     []jsonKeyPart `json:"key,omitempty"`
	Entries []jsonEntry   `json:"entries"`
}

type jsonKeyPart struct {
	Field string `json:"field,omitempty"`
	Lo    int    `json:"lo,omitempty"`
	Hi    int    `json:"hi,omitempty"`

	Lookahead bool `json:"lookahead,omitempty"`
	Skip      int  `json:"skip,omitempty"`
	Width     int  `json:"width,omitempty"`
}

type jsonEntry struct {
	Value    string        `json:"value"` // hex
	Mask     string        `json:"mask"`  // hex
	Extracts []jsonExtract `json:"extracts,omitempty"`
	Next     jsonTarget    `json:"next"`
}

type jsonExtract struct {
	Field    string `json:"field"`
	LenField string `json:"lenField,omitempty"`
	LenScale int    `json:"lenScale,omitempty"`
	LenBias  int    `json:"lenBias,omitempty"`
}

type jsonTarget struct {
	Kind  string `json:"kind"` // "state" | "accept" | "reject"
	Table int    `json:"table,omitempty"`
	State int    `json:"state,omitempty"`
}

// EncodeJSON serializes the program (including its field table) so it can
// be stored, diffed, or loaded into a device driver.
func (p *Program) EncodeJSON() ([]byte, error) {
	out := jsonProgram{}
	for _, f := range p.Spec.Fields {
		out.Fields = append(out.Fields, jsonField{Name: f.Name, Width: f.Width, Var: f.Var})
	}
	for i := range p.States {
		s := &p.States[i]
		js := jsonState{Table: s.Table, ID: s.ID}
		for _, k := range s.Key {
			js.Key = append(js.Key, jsonKeyPart{
				Field: k.Field, Lo: k.Lo, Hi: k.Hi,
				Lookahead: k.Lookahead, Skip: k.Skip, Width: k.Width,
			})
		}
		for _, e := range s.Entries {
			je := jsonEntry{
				Value: fmt.Sprintf("%#x", e.Value),
				Mask:  fmt.Sprintf("%#x", e.Mask),
			}
			for _, x := range e.Extracts {
				je.Extracts = append(je.Extracts, jsonExtract{
					Field: x.Field, LenField: x.LenField,
					LenScale: x.LenScale, LenBias: x.LenBias,
				})
			}
			switch e.Next.Kind {
			case Accept:
				je.Next = jsonTarget{Kind: "accept"}
			case Reject:
				je.Next = jsonTarget{Kind: "reject"}
			default:
				je.Next = jsonTarget{Kind: "state", Table: e.Next.Table, State: e.Next.State}
			}
			js.Entries = append(js.Entries, je)
		}
		out.States = append(out.States, js)
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeJSON reconstructs a program from its EncodeJSON form.
func DecodeJSON(data []byte) (*Program, error) {
	var in jsonProgram
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("tcam: %w", err)
	}
	var fields []pir.Field
	for _, f := range in.Fields {
		fields = append(fields, pir.Field{Name: f.Name, Width: f.Width, Var: f.Var})
	}
	// The field table alone is a valid one-state spec carrier; programs
	// deserialized this way exist to be executed, so a synthetic spec with
	// the right fields is sufficient.
	spec, err := pir.New("deserialized", fields, []pir.State{{Name: "start", Default: pir.AcceptTarget}})
	if err != nil {
		return nil, fmt.Errorf("tcam: %w", err)
	}
	prog := &Program{Spec: spec}
	for _, js := range in.States {
		st := State{Table: js.Table, ID: js.ID}
		for _, k := range js.Key {
			st.Key = append(st.Key, pir.KeyPart{
				Field: k.Field, Lo: k.Lo, Hi: k.Hi,
				Lookahead: k.Lookahead, Skip: k.Skip, Width: k.Width,
			})
		}
		for _, je := range js.Entries {
			var e Entry
			if _, err := fmt.Sscanf(je.Value, "%v", &e.Value); err != nil {
				return nil, fmt.Errorf("tcam: bad value %q: %w", je.Value, err)
			}
			if _, err := fmt.Sscanf(je.Mask, "%v", &e.Mask); err != nil {
				return nil, fmt.Errorf("tcam: bad mask %q: %w", je.Mask, err)
			}
			for _, x := range je.Extracts {
				e.Extracts = append(e.Extracts, pir.Extract{
					Field: x.Field, LenField: x.LenField,
					LenScale: x.LenScale, LenBias: x.LenBias,
				})
			}
			switch je.Next.Kind {
			case "accept":
				e.Next = AcceptTarget
			case "reject":
				e.Next = RejectTarget
			case "state":
				e.Next = To(je.Next.Table, je.Next.State)
			default:
				return nil, fmt.Errorf("tcam: bad target kind %q", je.Next.Kind)
			}
			st.Entries = append(st.Entries, e)
		}
		prog.States = append(prog.States, st)
	}
	return prog, nil
}
