package tcam

import (
	"strings"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/pir"
)

func TestJSONRoundTrip(t *testing.T) {
	prog, spec := table1Program(t)
	data, err := prog.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fields"`, `"states"`, `"accept"`, `"0x1"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded JSON missing %s:\n%s", want, data)
		}
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	// The deserialized program must behave identically.
	for v := 0; v < 256; v++ {
		in := bitstream.FromUint(uint64(v), 8)
		got := back.Run(in, 0)
		want := spec.Run(in, 0)
		if !got.Same(want) {
			t.Fatalf("input %08b: decoded program diverges: %v vs %v", v, got.Dict, want.Dict)
		}
	}
	// Resource accounting survives too.
	if back.Resources().Entries != prog.Resources().Entries {
		t.Error("entry count changed across serialization")
	}
}

func TestJSONRoundTripVarbit(t *testing.T) {
	spec := pir.MustNew("vb",
		[]pir.Field{{Name: "h.len", Width: 2}, {Name: "h.opts", Width: 12, Var: true}},
		[]pir.State{{
			Name: "S",
			Extracts: []pir.Extract{
				{Field: "h.len"},
				{Field: "h.opts", LenField: "h.len", LenScale: 4},
			},
			Default: pir.AcceptTarget,
		}})
	prog := &Program{Spec: spec, States: []State{{
		Entries: []Entry{{
			Extracts: []pir.Extract{
				{Field: "h.len"},
				{Field: "h.opts", LenField: "h.len", LenScale: 4},
			},
			Next: AcceptTarget,
		}},
	}}}
	data, err := prog.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	in := bitstream.MustFromString("10_1111_0000_10")
	got := back.Run(in, 0)
	if len(got.Dict["h.opts"]) != 8 {
		t.Errorf("varbit semantics lost: %v", got.Dict)
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeJSON([]byte("{")); err == nil {
		t.Error("malformed JSON must error")
	}
	if _, err := DecodeJSON([]byte(`{"states":[{"entries":[{"value":"zz","mask":"0x0","next":{"kind":"accept"}}]}]}`)); err == nil {
		t.Error("bad hex must error")
	}
	if _, err := DecodeJSON([]byte(`{"states":[{"entries":[{"value":"0x0","mask":"0x0","next":{"kind":"sideways"}}]}]}`)); err == nil {
		t.Error("bad target kind must error")
	}
}
