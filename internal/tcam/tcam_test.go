package tcam

import (
	"strings"
	"testing"

	"parserhawk/internal/bitstream"
	"parserhawk/internal/pir"
)

// table1Program hand-builds Impl2 from Table 1 of the paper: extract
// field0 unconditionally, then extract field1 only when field0[0]==0.
func table1Program(t *testing.T) (*Program, *pir.Spec) {
	t.Helper()
	spec := pir.MustNew("spec2",
		[]pir.Field{{Name: "field0", Width: 4}, {Name: "field1", Width: 4}},
		[]pir.State{
			{
				Name:     "State0",
				Extracts: []pir.Extract{{Field: "field0"}},
				Key:      []pir.KeyPart{pir.FieldSlice("field0", 0, 1)},
				Rules:    []pir.Rule{pir.ExactRule(0, 1, pir.To(1))},
				Default:  pir.AcceptTarget,
			},
			{Name: "State1", Extracts: []pir.Extract{{Field: "field1"}}, Default: pir.AcceptTarget},
		})
	prog := &Program{
		Spec: spec,
		States: []State{
			{
				Table: 0, ID: 0,
				Entries: []Entry{{
					Value: 0, Mask: 0, // Condition: True
					Extracts: []pir.Extract{{Field: "field0"}},
					Next:     To(0, 1),
				}},
			},
			{
				Table: 0, ID: 1,
				Key: []pir.KeyPart{pir.FieldSlice("field0", 0, 1)},
				Entries: []Entry{
					{Value: 0, Mask: 1, Extracts: []pir.Extract{{Field: "field1"}}, Next: AcceptTarget},
					{Value: 1, Mask: 1, Next: AcceptTarget},
				},
			},
		},
	}
	return prog, spec
}

func TestTable1ImplMatchesSpecExhaustively(t *testing.T) {
	prog, spec := table1Program(t)
	for v := 0; v < 256; v++ {
		in := bitstream.FromUint(uint64(v), 8)
		got := prog.Run(in, 0)
		want := spec.Run(in, 0)
		if !got.Same(want) {
			t.Fatalf("input %08b: impl=%v/%v spec=%v/%v diff=%s",
				v, got.Accepted, got.Dict, want.Accepted, want.Dict, want.Dict.Diff(got.Dict))
		}
	}
}

func TestEntryPriority(t *testing.T) {
	spec := pir.MustNew("p", []pir.Field{{Name: "f", Width: 2}},
		[]pir.State{{Name: "S", Extracts: []pir.Extract{{Field: "f"}}, Default: pir.AcceptTarget}})
	prog := &Program{
		Spec: spec,
		States: []State{{
			Table: 0, ID: 0,
			Key: []pir.KeyPart{pir.LookaheadBits(0, 2)},
			Entries: []Entry{
				{Value: 0b10, Mask: 0b10, Next: RejectTarget}, // 1* first
				{Value: 0b11, Mask: 0b11, Extracts: []pir.Extract{{Field: "f"}}, Next: AcceptTarget},
				{Value: 0, Mask: 0, Extracts: []pir.Extract{{Field: "f"}}, Next: AcceptTarget},
			},
		}},
	}
	if r := prog.Run(bitstream.MustFromString("11"), 0); !r.Rejected {
		t.Error("priority: 11 must hit the first (masked) entry and reject")
	}
	if r := prog.Run(bitstream.MustFromString("01"), 0); !r.Accepted || len(r.Dict) != 1 {
		t.Errorf("01 must accept via wildcard: %+v", r)
	}
}

func TestNoMatchingEntryRejects(t *testing.T) {
	spec := pir.MustNew("p", []pir.Field{{Name: "f", Width: 1}},
		[]pir.State{{Name: "S", Default: pir.AcceptTarget}})
	prog := &Program{
		Spec: spec,
		States: []State{{
			Table: 0, ID: 0,
			Key:     []pir.KeyPart{pir.LookaheadBits(0, 1)},
			Entries: []Entry{{Value: 1, Mask: 1, Next: AcceptTarget}},
		}},
	}
	if r := prog.Run(bitstream.MustFromString("0"), 0); !r.Rejected {
		t.Error("no-match must reject")
	}
	if r := prog.Run(bitstream.MustFromString("1"), 0); !r.Accepted {
		t.Error("match must accept")
	}
}

func TestMissingStateRejects(t *testing.T) {
	spec := pir.MustNew("p", []pir.Field{{Name: "f", Width: 1}},
		[]pir.State{{Name: "S", Default: pir.AcceptTarget}})
	prog := &Program{Spec: spec, States: []State{{
		Table: 0, ID: 0,
		Entries: []Entry{{Value: 0, Mask: 0, Next: To(0, 9)}},
	}}}
	if r := prog.Run(bitstream.MustFromString("0"), 0); !r.Rejected {
		t.Error("transition to a missing state must reject")
	}
}

func TestLoopProgramAndIterationBudget(t *testing.T) {
	// Single entry advancing over one 4-bit label while its MSB-ahead bit
	// is 0 — the paper's MPLS single-entry loop (§3.1).
	spec := pir.MustNew("mpls", []pir.Field{{Name: "label", Width: 4}},
		[]pir.State{{
			Name:     "L",
			Extracts: []pir.Extract{{Field: "label"}},
			Key:      []pir.KeyPart{pir.FieldSlice("label", 3, 4)},
			Rules:    []pir.Rule{pir.ExactRule(0, 1, pir.To(0))},
			Default:  pir.AcceptTarget,
		}})
	prog := &Program{Spec: spec, States: []State{{
		Table: 0, ID: 0,
		Key: []pir.KeyPart{pir.LookaheadBits(3, 1)}, // bottom-of-stack bit of the label under the cursor
		Entries: []Entry{
			{Value: 0, Mask: 1, Extracts: []pir.Extract{{Field: "label"}}, Next: To(0, 0)},
			{Value: 1, Mask: 1, Extracts: []pir.Extract{{Field: "label"}}, Next: AcceptTarget},
		},
	}}}
	for v := 0; v < 1<<12; v++ {
		in := bitstream.FromUint(uint64(v), 12)
		got := prog.Run(in, 0)
		want := spec.Run(in, 0)
		if !got.Same(want) {
			t.Fatalf("input %012b: impl != spec (%v vs %v)", v, got, want)
		}
	}
	// Budget exhaustion rejects.
	if r := prog.Run(make(bitstream.Bits, 64), 3); !r.Rejected {
		t.Error("iteration budget must reject endless stacks")
	}
}

func TestVarbitExtractionInImpl(t *testing.T) {
	spec := pir.MustNew("vb",
		[]pir.Field{{Name: "len", Width: 2}, {Name: "opts", Width: 12, Var: true}},
		[]pir.State{{
			Name: "S",
			Extracts: []pir.Extract{
				{Field: "len"},
				{Field: "opts", LenField: "len", LenScale: 4},
			},
			Default: pir.AcceptTarget,
		}})
	prog := &Program{Spec: spec, States: []State{{
		Table: 0, ID: 0,
		Entries: []Entry{{
			Value: 0, Mask: 0,
			Extracts: []pir.Extract{
				{Field: "len"},
				{Field: "opts", LenField: "len", LenScale: 4},
			},
			Next: AcceptTarget,
		}},
	}}}
	in := bitstream.MustFromString("10_1111_0000_10")
	got := prog.Run(in, 0)
	want := spec.Run(in, 0)
	if !got.Same(want) {
		t.Fatalf("varbit impl mismatch: %v vs %v", got.Dict, want.Dict)
	}
	if len(got.Dict["opts"]) != 8 {
		t.Errorf("opts width=%d", len(got.Dict["opts"]))
	}
}

func TestResources(t *testing.T) {
	prog, _ := table1Program(t)
	r := prog.Resources()
	if r.Entries != 3 {
		t.Errorf("entries=%d want 3", r.Entries)
	}
	if r.Stages != 1 {
		t.Errorf("stages=%d want 1", r.Stages)
	}
	if r.MaxKeyWidth != 1 {
		t.Errorf("maxKeyWidth=%d want 1", r.MaxKeyWidth)
	}
	if r.States != 2 {
		t.Errorf("states=%d", r.States)
	}
}

func TestMultiTableResourcesAndLookup(t *testing.T) {
	spec := pir.MustNew("p", []pir.Field{{Name: "f", Width: 1}},
		[]pir.State{{Name: "S", Default: pir.AcceptTarget}})
	prog := &Program{Spec: spec, States: []State{
		{Table: 0, ID: 0, Entries: []Entry{{Next: To(1, 0)}}},
		{Table: 1, ID: 0, Entries: []Entry{{Next: AcceptTarget}, {Next: RejectTarget}}},
	}}
	r := prog.Resources()
	if r.Stages != 2 || r.Entries != 3 || r.MaxEntries != 2 {
		t.Errorf("resources=%+v", r)
	}
	if prog.Lookup(1, 0) == nil || prog.Lookup(2, 0) != nil {
		t.Error("Lookup misbehaved")
	}
}

func TestStringRendering(t *testing.T) {
	prog, _ := table1Program(t)
	s := prog.String()
	for _, want := range []string{"TID:0 SID:0", "TID:0 SID:1", "accept", "extract{field1}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
