// Package sim is the correctness harness of §7.1 and Appendix 11
// (Figure 22): it feeds bitstreams through a specification and a compiled
// TCAM implementation and compares their output dictionaries, and it
// replays the paper's bmv2/Scapy test — inject a crafted TCP packet and
// check that a correctly compiled Ethernet/IP parser delivers it.
package sim

import (
	"fmt"
	"math/rand"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/bitstream"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
	"parserhawk/internal/pkt"
	"parserhawk/internal/tcam"
)

// Report summarises an equivalence check.
type Report struct {
	Checked        int
	Exhaustive     bool
	Counterexample bitstream.Bits // nil when none found
	SpecResult     pir.Result
	ImplResult     pir.Result
}

// OK reports whether no disagreement was found.
func (r Report) OK() bool { return r.Counterexample == nil }

func (r Report) String() string {
	if r.OK() {
		mode := "sampled"
		if r.Exhaustive {
			mode = "exhaustive"
		}
		return fmt.Sprintf("equivalent on %d %s inputs", r.Checked, mode)
	}
	return fmt.Sprintf("MISMATCH on %s:\n  spec: acc=%v dict=%v\n  impl: acc=%v dict=%v",
		r.Counterexample, r.SpecResult.Accepted, r.SpecResult.Dict,
		r.ImplResult.Accepted, r.ImplResult.Dict)
}

// Check compares spec and impl on the input space, exhaustively when the
// relevant space is at most exhaustiveBits wide, otherwise on samples
// random inputs. maxIter bounds FSM execution (0 = default).
func Check(spec *pir.Spec, impl *tcam.Program, samples, exhaustiveBits int, maxIter int, seed int64) Report {
	if samples <= 0 {
		samples = 4096
	}
	if exhaustiveBits <= 0 {
		exhaustiveBits = 16
	}
	k := maxIter
	if k <= 0 {
		k = pir.DefaultMaxIterations
	}
	maxLen := spec.MaxConsumedBits(k) + spec.LookaheadUse()
	if maxLen == 0 {
		maxLen = 1
	}

	try := func(in bitstream.Bits, rep *Report) bool {
		rep.Checked++
		got := impl.Run(in, k)
		want := spec.Run(in, k)
		if !got.Same(want) {
			rep.Counterexample = in
			rep.SpecResult = want
			rep.ImplResult = got
			return true
		}
		return false
	}

	var rep Report
	if maxLen <= exhaustiveBits {
		rep.Exhaustive = true
		for v := uint64(0); v < 1<<uint(maxLen); v++ {
			if try(bitstream.FromUint(v, maxLen), &rep) {
				return rep
			}
		}
		return rep
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		if try(bitstream.Random(rng, maxLen), &rep) {
			return rep
		}
	}
	return rep
}

// WireParserSource is a wire-scale Ethernet → IPv4 → TCP/UDP parser in the
// P4 subset, with real field widths (48-bit MACs, 16-bit etherType, 32-bit
// addresses). The bmv2-style delivery test compiles and drives it.
const WireParserSource = benchdata.WireEthernetIPSource

// WireParser parses WireParserSource.
func WireParser() *pir.Spec {
	return p4.MustParseSpec(WireParserSource)
}

// Delivery is the outcome of the bmv2-style packet test.
type Delivery struct {
	Accepted bool
	DstIP    [4]byte
	DstPort  uint16
	Fields   bitstream.Dict
}

// Delivered reports whether the packet reached the given target IP — the
// paper's pass criterion ("the packet will be successfully delivered to
// the target; otherwise, it should be dropped").
func (d Delivery) Delivered(target [4]byte) bool {
	return d.Accepted && d.DstIP == target
}

// InjectTCP builds an Ethernet/IPv4/TCP packet bound for dstIP:dstPort,
// runs it through the compiled parser program, and decodes the parsed
// fields.
func InjectTCP(impl *tcam.Program, dstIP [4]byte, dstPort uint16) (Delivery, error) {
	raw, err := pkt.TCPPacket([4]byte{10, 0, 0, 1}, dstIP, 49152, dstPort, nil)
	if err != nil {
		return Delivery{}, err
	}
	res := impl.Run(bitstream.FromBytes(raw), 0)
	d := Delivery{Accepted: res.Accepted, Fields: res.Dict}
	if v, ok := res.Dict["ipv4.dst"]; ok {
		u := v.Uint(0, 32)
		d.DstIP = [4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}
	}
	if v, ok := res.Dict["tcp.dstPort"]; ok {
		d.DstPort = uint16(v.Uint(0, 16))
	}
	return d, nil
}
