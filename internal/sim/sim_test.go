package sim

import (
	"strings"
	"testing"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

func TestCheckDetectsBrokenImpl(t *testing.T) {
	spec := pir.MustNew("p", []pir.Field{{Name: "f", Width: 4}},
		[]pir.State{{Name: "S", Extracts: []pir.Extract{{Field: "f"}}, Default: pir.AcceptTarget}})
	good := &tcam.Program{Spec: spec, States: []tcam.State{{
		Entries: []tcam.Entry{{Extracts: []pir.Extract{{Field: "f"}}, Next: tcam.AcceptTarget}},
	}}}
	rep := Check(spec, good, 0, 0, 0, 1)
	if !rep.OK() || !rep.Exhaustive {
		t.Fatalf("good impl flagged: %s", rep)
	}
	bad := &tcam.Program{Spec: spec, States: []tcam.State{{
		Entries: []tcam.Entry{{Next: tcam.AcceptTarget}}, // forgets the extraction
	}}}
	rep = Check(spec, bad, 0, 0, 0, 1)
	if rep.OK() {
		t.Fatal("broken impl not detected")
	}
	if !strings.Contains(rep.String(), "MISMATCH") {
		t.Error("report text")
	}
}

// TestAllBenchmarksSpecImplEquivalence is the §7.1 validation: every
// compiled benchmark passes the Figure 22 simulator check on both targets.
func TestAllBenchmarksSpecImplEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite validation")
	}
	profiles := []hw.Profile{
		{Name: "tofino-scaled", Arch: hw.SingleTable, KeyLimit: 12, TCAMLimit: 24, LookaheadLimit: 24, ExtractLimit: 64},
		{Name: "ipu-scaled", Arch: hw.Pipelined, KeyLimit: 12, TCAMLimit: 24, LookaheadLimit: 24, StageLimit: 8, ExtractLimit: 12},
	}
	for _, b := range benchdata.All() {
		for _, p := range profiles {
			opts := core.DefaultOptions()
			opts.MaxIterations = b.MaxIterations
			res, err := core.Compile(b.Spec, p, opts)
			if err != nil {
				t.Errorf("%s on %s: %v", b.Name(), p.Name, err)
				continue
			}
			// Equivalence contract: a loop-capable target implements the
			// spec outright; a pipelined target implements the bounded
			// unrolling (deeper stacks are dropped by the device).
			contract := b.Spec
			if b.Spec.HasLoop() && p.Arch != hw.SingleTable {
				depth := b.MaxIterations
				if depth == 0 {
					depth = 4
				}
				contract, err = core.Unroll(b.Spec, depth)
				if err != nil {
					t.Fatalf("%s: unroll: %v", b.Name(), err)
				}
			}
			rep := Check(contract, res.Program, 4096, 16, 0, 99)
			if !rep.OK() {
				t.Errorf("%s on %s: %s", b.Name(), p.Name, rep)
			}
		}
	}
}

func TestWireParserSpec(t *testing.T) {
	spec := WireParser()
	if spec.HasLoop() {
		t.Error("wire parser must be loop-free")
	}
	if f, ok := spec.Field("ethernet.dst"); !ok || f.Width != 48 {
		t.Errorf("ethernet.dst: %+v", f)
	}
}

// TestBmv2StyleDelivery compiles the wire-scale parser and injects a real
// TCP packet, checking end-to-end field extraction — the paper's
// bmv2+Scapy test.
func TestBmv2StyleDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("wire-scale compile")
	}
	spec := WireParser()
	res, err := core.Compile(spec, hw.Tofino(), core.DefaultOptions())
	if err != nil {
		t.Fatalf("wire parser compile: %v", err)
	}
	target := [4]byte{192, 168, 1, 42}
	d, err := InjectTCP(res.Program, target, 443)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Delivered(target) {
		t.Fatalf("packet not delivered: %+v", d)
	}
	if d.DstPort != 443 {
		t.Errorf("dstPort=%d", d.DstPort)
	}
	if _, ok := d.Fields["udp.srcPort"]; ok {
		t.Error("udp must not be parsed on a TCP packet")
	}
	// Wrong-type packet: an IPv6 etherType accepts without IPv4 fields, so
	// it is not delivered to the IPv4 target.
	other, err := InjectTCP(res.Program, [4]byte{1, 2, 3, 4}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if other.Delivered(target) {
		t.Error("packet for another IP must not count as delivered")
	}
}
