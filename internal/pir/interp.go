package pir

import (
	"parserhawk/internal/bitstream"
)

// DefaultMaxIterations bounds FSM execution (the parameter K of §4). It is
// deliberately generous: well-formed parsers accept or reject long before.
const DefaultMaxIterations = 64

// Result is the outcome of interpreting a parser on one input bitstream.
type Result struct {
	Dict     bitstream.Dict // extracted packet fields
	Accepted bool           // reached the accept state
	Rejected bool           // reached the reject state
	Consumed int            // bits advanced past by extraction
	Path     []int          // sequence of visited state indices
}

// Same reports whether two results are observationally equivalent under the
// §4 correctness definition: same acceptance outcome and same output
// dictionary.
func (r Result) Same(o Result) bool {
	return r.Accepted == o.Accepted && r.Rejected == o.Rejected && r.Dict.Equal(o.Dict)
}

// TraceStep attributes one visited state's transition decision: Rule is the
// index into State.Rules of the first-match rule that fired, or -1 when the
// default target resolved the transition (keyless states always report -1).
type TraceStep struct {
	State int
	Rule  int
}

// Run interprets the specification on input, visiting at most maxIter
// states. maxIter <= 0 selects DefaultMaxIterations. This is the function
// Spec(I) of §4 and the left half of the Appendix-13 simulator.
func (s *Spec) Run(input bitstream.Bits, maxIter int) Result {
	res, _ := s.run(input, maxIter, false)
	return res
}

// RunTrace is Run plus rule-level attribution: step i of the trace explains
// the transition taken out of Path[i]. The differential fuzzer uses it to
// confront SAT-certified lint verdicts (a rule proved shadowed must never
// fire, a default proved dead must never be taken) with observed executions.
func (s *Spec) RunTrace(input bitstream.Bits, maxIter int) (Result, []TraceStep) {
	return s.run(input, maxIter, true)
}

func (s *Spec) run(input bitstream.Bits, maxIter int, traced bool) (Result, []TraceStep) {
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	res := Result{Dict: bitstream.Dict{}}
	var trace []TraceStep
	cur := 0
	pos := 0
	for iter := 0; iter < maxIter; iter++ {
		st := &s.States[cur]
		res.Path = append(res.Path, cur)
		for _, e := range st.Extracts {
			w := s.extractWidth(e, res.Dict)
			res.Dict[e.Field] = input.Slice(pos, w)
			pos += w
		}
		res.Consumed = pos
		next := st.Default
		fired := -1
		if len(st.Key) > 0 {
			key := s.KeyValue(st, res.Dict, input, pos)
			for ri, r := range st.Rules {
				if key&r.Mask == r.Value&r.Mask {
					next = r.Next
					fired = ri
					break
				}
			}
		}
		if traced {
			trace = append(trace, TraceStep{State: cur, Rule: fired})
		}
		switch next.Kind {
		case Accept:
			res.Accepted = true
			return res, trace
		case Reject:
			res.Rejected = true
			return res, trace
		default:
			cur = next.State
		}
	}
	// Iteration budget exhausted: the device would abort the packet.
	res.Rejected = true
	return res, trace
}

// KeyValue evaluates a state's transition key given the fields extracted so
// far, the raw input, and the current cursor position. Field slices of
// never-extracted fields read as zero, matching hardware container
// initialisation.
func (s *Spec) KeyValue(st *State, dict bitstream.Dict, input bitstream.Bits, pos int) uint64 {
	var key uint64
	for _, p := range st.Key {
		w := p.BitWidth()
		var v uint64
		if p.Lookahead {
			v = input.Uint(pos+p.Skip, w)
		} else {
			v = dict[p.Field].Uint(p.Lo, w)
		}
		key = key<<uint(w) | v
	}
	return key
}

// extractWidth computes the width of one extraction, resolving varbit
// lengths against already-extracted fields.
func (s *Spec) extractWidth(e Extract, dict bitstream.Dict) int {
	f, _ := s.Field(e.Field)
	if e.LenField == "" {
		return f.Width
	}
	lf, _ := s.Field(e.LenField)
	n := int(dict[e.LenField].Uint(0, lf.Width))*e.LenScale + e.LenBias
	if n < 0 {
		n = 0
	}
	if n > f.Width {
		n = f.Width
	}
	return n
}

// MaxConsumedBits returns an upper bound on the number of input bits any
// execution of at most maxIter states can consume (or peek at via
// lookahead). The verification phase uses it to size symbolic inputs. The
// bound is computed by dynamic programming over (iteration, state) pairs,
// so loop-free paths are exact and loops are charged only for the states
// actually repeatable within the budget.
func (s *Spec) MaxConsumedBits(maxIter int) int {
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	// Per-state consumption (varbit charged at max width) and the farthest
	// bit a state's lookahead can peek at past its entry cursor.
	per := make([]int, len(s.States))
	reach := make([]int, len(s.States))
	for i := range s.States {
		st := &s.States[i]
		w := 0
		for _, e := range st.Extracts {
			f, _ := s.Field(e.Field)
			w += f.Width
		}
		per[i] = w
		reach[i] = w
		for _, p := range st.Key {
			if p.Lookahead && w+p.Skip+p.Width > reach[i] {
				reach[i] = w + p.Skip + p.Width
			}
		}
	}
	const unreachable = -1
	enter := make([]int, len(s.States)) // max cursor on entry this iteration
	for i := range enter {
		enter[i] = unreachable
	}
	enter[0] = 0
	best := 0
	for iter := 0; iter < maxIter; iter++ {
		next := make([]int, len(s.States))
		for i := range next {
			next[i] = unreachable
		}
		progress := false
		for i, at := range enter {
			if at == unreachable {
				continue
			}
			if v := at + reach[i]; v > best {
				best = v
			}
			out := at + per[i]
			st := &s.States[i]
			relax := func(t Target) {
				if t.Kind == ToState && out > next[t.State] {
					next[t.State] = out
					progress = true
				}
			}
			for _, r := range st.Rules {
				relax(r.Next)
			}
			relax(st.Default)
		}
		if !progress {
			break
		}
		enter = next
	}
	return best
}
