package pir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parserhawk/internal/bitstream"
)

// Property: every hardware-width subrange of every rule constant appears
// in the Opt4 constant set (§6.4.3's completeness requirement).
func TestConstantSetSubrangeCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		kw := 3 + rng.Intn(6)
		limit := 1 + rng.Intn(kw-1)
		n := 1 + rng.Intn(4)
		var rules []Rule
		for i := 0; i < n; i++ {
			rules = append(rules, ExactRule(rng.Uint64()&(1<<uint(kw)-1), kw, AcceptTarget))
		}
		spec := MustNew("p", []Field{{Name: "k", Width: kw}},
			[]State{{
				Name:     "S",
				Extracts: []Extract{{Field: "k"}},
				Key:      []KeyPart{WholeField("k", kw)},
				Rules:    rules,
				Default:  RejectTarget,
			}})
		cs := spec.ConstantSet(limit)
		have := map[[2]uint64]bool{}
		for _, c := range cs {
			have[[2]uint64{c.Value, uint64(c.Width)}] = true
		}
		for _, r := range rules {
			for lo := 0; lo < kw; lo++ {
				for w := 1; w <= limit && lo+w <= kw; w++ {
					sub := r.Value >> uint(kw-lo-w) & (1<<uint(w) - 1)
					if !have[[2]uint64{sub, uint64(w)}] {
						t.Fatalf("trial %d: missing subrange %0*b of %0*b", trial, w, sub, kw, r.Value)
					}
				}
			}
		}
	}
}

// Property: interpretation is deterministic and padding-invariant — a
// zero-extended input yields the same result.
func TestRunPaddingInvariance(t *testing.T) {
	spec := MustNew("pad",
		[]Field{{Name: "a", Width: 3}, {Name: "b", Width: 5}},
		[]State{
			{
				Name:     "S",
				Extracts: []Extract{{Field: "a"}},
				Key:      []KeyPart{WholeField("a", 3)},
				Rules:    []Rule{ExactRule(5, 3, To(1))},
				Default:  AcceptTarget,
			},
			{Name: "T", Extracts: []Extract{{Field: "b"}}, Default: AcceptTarget},
		})
	f := func(v uint8, pad uint8) bool {
		in := bitstream.FromUint(uint64(v), 8)
		padded := in.Concat(make(bitstream.Bits, int(pad)%16))
		return spec.Run(in, 0).Same(spec.Run(padded, 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxConsumedBits really bounds consumption for arbitrary
// inputs and iteration budgets.
func TestMaxConsumedBitsIsAnUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	specs := []*Spec{
		MustNew("loop", []Field{{Name: "l", Width: 4}},
			[]State{{
				Name:     "L",
				Extracts: []Extract{{Field: "l"}},
				Key:      []KeyPart{FieldSlice("l", 3, 4)},
				Rules:    []Rule{ExactRule(0, 1, To(0))},
				Default:  AcceptTarget,
			}}),
		MustNew("dag",
			[]Field{{Name: "a", Width: 2}, {Name: "b", Width: 6}},
			[]State{
				{
					Name:     "A",
					Extracts: []Extract{{Field: "a"}},
					Key:      []KeyPart{WholeField("a", 2)},
					Rules:    []Rule{ExactRule(1, 2, To(1))},
					Default:  AcceptTarget,
				},
				{Name: "B", Extracts: []Extract{{Field: "b"}}, Default: AcceptTarget},
			}),
	}
	for _, spec := range specs {
		for _, k := range []int{1, 2, 3, 5, 8} {
			bound := spec.MaxConsumedBits(k)
			for i := 0; i < 200; i++ {
				in := bitstream.Random(rng, bound+8)
				if got := spec.Run(in, k).Consumed; got > bound {
					t.Fatalf("%s k=%d: consumed %d > bound %d", spec.Name, k, got, bound)
				}
			}
		}
	}
}

// Property: Reachable is consistent with actual execution paths.
func TestReachableSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	spec := MustNew("r",
		[]Field{{Name: "k", Width: 3}},
		[]State{
			{
				Name:     "S0",
				Extracts: []Extract{{Field: "k"}},
				Key:      []KeyPart{WholeField("k", 3)},
				Rules:    []Rule{ExactRule(1, 3, To(1)), ExactRule(2, 3, To(2))},
				Default:  AcceptTarget,
			},
			{Name: "S1", Default: AcceptTarget},
			{Name: "S2", Default: AcceptTarget},
			{Name: "dead", Default: AcceptTarget},
		})
	reach := spec.Reachable()
	visited := map[int]bool{}
	for i := 0; i < 500; i++ {
		res := spec.Run(bitstream.Random(rng, 3), 0)
		for _, s := range res.Path {
			visited[s] = true
		}
	}
	for s := range visited {
		if !reach[s] {
			t.Errorf("state %d visited but not reachable", s)
		}
	}
	if reach[3] {
		t.Error("dead state must be unreachable")
	}
}
