package pir_test

// External test package: the corpus tests pull specs through the p4
// frontend and benchdata, both of which import pir.

import (
	"fmt"
	"math/rand"
	"testing"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/bitstream"
	"parserhawk/internal/pir"
)

// randomSpec builds a small random (possibly loopy) spec. Deterministic
// given the rng.
func randomSpec(rng *rand.Rand) *pir.Spec {
	nf := 2 + rng.Intn(5)
	fields := make([]pir.Field, nf)
	for i := range fields {
		fields[i] = pir.Field{Name: fmt.Sprintf("field%c", 'A'+i), Width: 4 + rng.Intn(13)}
	}
	ns := 2 + rng.Intn(5)
	randTarget := func() pir.Target {
		switch rng.Intn(4) {
		case 0:
			return pir.AcceptTarget
		case 1:
			return pir.RejectTarget
		default:
			return pir.To(rng.Intn(ns))
		}
	}
	states := make([]pir.State, ns)
	for i := range states {
		st := pir.State{Name: fmt.Sprintf("state%d", i), Default: randTarget()}
		for e := rng.Intn(3); e > 0; e-- {
			st.Extracts = append(st.Extracts, pir.Extract{Field: fields[rng.Intn(nf)].Name})
		}
		if rng.Intn(3) > 0 {
			for k := 1 + rng.Intn(2); k > 0; k-- {
				if rng.Intn(4) == 0 {
					st.Key = append(st.Key, pir.LookaheadBits(rng.Intn(5), 1+rng.Intn(8)))
				} else {
					f := fields[rng.Intn(nf)]
					lo := rng.Intn(f.Width)
					hi := lo + 1 + rng.Intn(f.Width-lo)
					st.Key = append(st.Key, pir.FieldSlice(f.Name, lo, hi))
				}
			}
		}
		if kw := st.KeyWidth(); kw > 0 {
			mask := pir.ExactRule(0, kw, pir.AcceptTarget).Mask
			for r := rng.Intn(5); r > 0; r-- {
				m := rng.Uint64() & mask
				st.Rules = append(st.Rules, pir.Rule{Value: rng.Uint64() & mask, Mask: m, Next: randTarget()})
			}
		}
		states[i] = st
	}
	spec, err := pir.New(fmt.Sprintf("rand%d", rng.Intn(1<<30)), fields, states)
	if err != nil {
		panic(err)
	}
	return spec
}

// checkEquivalent runs both specs on packets random packets and demands
// observational equivalence after un-renaming the canonical dictionary
// through the witness.
func checkEquivalent(t *testing.T, orig, canon *pir.Spec, wit *pir.Witness, rng *rand.Rand, packets int) {
	t.Helper()
	nbits := orig.MaxConsumedBits(0) + 64
	for i := 0; i < packets; i++ {
		n := rng.Intn(nbits + 1)
		if i == 0 {
			n = nbits // at least one full-length packet
		}
		in := bitstream.Random(rng, n)
		want := orig.Run(in, 0)
		got := canon.Run(in, 0)
		got.Dict = wit.OrigDict(got.Dict)
		if !want.Same(got) {
			t.Fatalf("packet %d (%d bits): original %+v, canonical (un-renamed) %+v\noriginal:\n%s\ncanonical:\n%s",
				i, n, want, got, orig, canon)
		}
	}
}

func TestCanonicalizeEquivalentOnRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const specs, packets = 50, 200 // 10k packets total
	for s := 0; s < specs; s++ {
		spec := randomSpec(rng)
		canon, wit, err := pir.Canonicalize(spec)
		if err != nil {
			t.Fatalf("spec %d: %v\n%s", s, err, spec)
		}
		checkEquivalent(t, spec, canon, wit, rng, packets)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for s := 0; s < 60; s++ {
		spec := randomSpec(rng)
		canon, _, err := pir.Canonicalize(spec)
		if err != nil {
			t.Fatal(err)
		}
		again, wit, err := pir.Canonicalize(canon)
		if err != nil {
			t.Fatal(err)
		}
		if canon.String() != again.String() {
			t.Fatalf("not idempotent:\nfirst:\n%s\nsecond:\n%s\ninput:\n%s", canon, again, spec)
		}
		for i, o := range wit.States {
			if i != o {
				t.Fatalf("second witness is not the identity on states: %v", wit.States)
			}
		}
		for c, o := range wit.Fields {
			if c != o {
				t.Fatalf("second witness renames field %q -> %q", o, c)
			}
		}
	}
}

// mutate applies a random semantics-preserving transformation: state and
// field renaming, state reordering (start stays at index 0), unused
// field declarations, garbage value bits outside a rule's mask,
// swapping rule pairs whose order is irrelevant (non-overlapping or
// same-target), and splitting a key slice into two contiguous slices.
func mutate(spec *pir.Spec, rng *rand.Rand) *pir.Spec {
	fields := append([]pir.Field(nil), spec.Fields...)
	states := make([]pir.State, len(spec.States))
	for i := range spec.States {
		st := spec.States[i]
		st.Extracts = append([]pir.Extract(nil), st.Extracts...)
		st.Key = append([]pir.KeyPart(nil), st.Key...)
		st.Rules = append([]pir.Rule(nil), st.Rules...)
		states[i] = st
	}
	renameField := func(old, new string) {
		for i := range fields {
			if fields[i].Name == old {
				fields[i].Name = new
			}
		}
		for i := range states {
			for e := range states[i].Extracts {
				if states[i].Extracts[e].Field == old {
					states[i].Extracts[e].Field = new
				}
				if states[i].Extracts[e].LenField == old {
					states[i].Extracts[e].LenField = new
				}
			}
			for k := range states[i].Key {
				if !states[i].Key[k].Lookahead && states[i].Key[k].Field == old {
					states[i].Key[k].Field = new
				}
			}
		}
	}
	switch rng.Intn(7) {
	case 0: // rename every state
		for i := range states {
			states[i].Name = fmt.Sprintf("renamed_%d_%d", rng.Intn(1000), i)
		}
	case 1: // permute non-start states
		if len(states) > 2 {
			perm := rng.Perm(len(states) - 1)
			inv := make([]int, len(states))
			reordered := make([]pir.State, len(states))
			reordered[0] = states[0]
			inv[0] = 0
			for n, o := range perm {
				reordered[n+1] = states[o+1]
				inv[o+1] = n + 1
			}
			re := func(t pir.Target) pir.Target {
				if t.Kind == pir.ToState {
					t.State = inv[t.State]
				}
				return t
			}
			for i := range reordered {
				for r := range reordered[i].Rules {
					reordered[i].Rules[r].Next = re(reordered[i].Rules[r].Next)
				}
				reordered[i].Default = re(reordered[i].Default)
			}
			states = reordered
		}
	case 2: // rename every field
		for _, f := range append([]pir.Field(nil), fields...) {
			renameField(f.Name, "mut_"+f.Name)
		}
	case 3: // declare an unused field, shuffled into the table
		fields = append(fields, pir.Field{Name: fmt.Sprintf("unused%d", rng.Intn(1000)), Width: 1 + rng.Intn(16)})
		rng.Shuffle(len(fields), func(i, j int) { fields[i], fields[j] = fields[j], fields[i] })
	case 4: // garbage value bits outside the mask
		for i := range states {
			for r := range states[i].Rules {
				states[i].Rules[r].Value |= rng.Uint64() &^ states[i].Rules[r].Mask
			}
		}
	case 5: // swap an order-irrelevant adjacent rule pair
		for i := range states {
			rules := states[i].Rules
			for j := 0; j+1 < len(rules); j++ {
				a, b := rules[j], rules[j+1]
				overlap := ((a.Value ^ b.Value) & a.Mask & b.Mask) == 0
				if !overlap || a.Next == b.Next {
					rules[j], rules[j+1] = b, a
					break
				}
			}
		}
	case 6: // split a multi-bit key slice into two contiguous slices
		for i := range states {
			for k := range states[i].Key {
				p := states[i].Key[k]
				if !p.Lookahead && p.Hi-p.Lo >= 2 {
					mid := p.Lo + 1 + rng.Intn(p.Hi-p.Lo-1)
					split := []pir.KeyPart{pir.FieldSlice(p.Field, p.Lo, mid), pir.FieldSlice(p.Field, mid, p.Hi)}
					states[i].Key = append(states[i].Key[:k], append(split, states[i].Key[k+1:]...)...)
					break
				}
			}
		}
	}
	out, err := pir.New(spec.Name+"_mut", fields, states)
	if err != nil {
		panic(err)
	}
	return out
}

func TestCanonicalizeInvariantUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for s := 0; s < 60; s++ {
		spec := randomSpec(rng)
		canon, _, err := pir.Canonicalize(spec)
		if err != nil {
			t.Fatal(err)
		}
		mut := spec
		for m := 0; m < 3; m++ {
			mut = mutate(mut, rng)
			mcanon, _, err := pir.Canonicalize(mut)
			if err != nil {
				t.Fatalf("mutant: %v\n%s", err, mut)
			}
			if canon.String() != mcanon.String() {
				t.Fatalf("canonical form not invariant (round %d):\noriginal spec:\n%s\nmutant:\n%s\ncanon(orig):\n%s\ncanon(mutant):\n%s",
					m, spec, mut, canon, mcanon)
			}
		}
	}
}

func TestCanonicalizeExamplesCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, b := range benchdata.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			canon, wit, err := pir.Canonicalize(b.Spec)
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalent(t, b.Spec, canon, wit, rng, 50)
			again, _, err := pir.Canonicalize(canon)
			if err != nil {
				t.Fatal(err)
			}
			if canon.String() != again.String() {
				t.Fatal("not idempotent on corpus spec")
			}
		})
	}
}
