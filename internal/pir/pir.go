// Package pir defines ParserHawk's parser intermediate representation.
//
// A parser specification is a finite-state machine (§2.1): each state
// extracts zero or more packet fields from the input bitstream and then
// selects a successor state by matching a transition key — a concatenation
// of already-extracted field slices and not-yet-extracted lookahead bits —
// against an ordered list of ternary (value, mask) rules.
//
// The package also provides the reference interpreter Spec(I) (§4) and the
// semantic analyses that drive the synthesis optimizations of §6: relevant
// transition-key bits (Opt1), irrelevant fields (Opt2), specification
// constant sets with concatenations and hardware-width subranges (Opt4),
// per-field key groups (Opt5), and loop detection (Opt7.1).
package pir

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// TargetKind discriminates transition targets.
type TargetKind int

// Transition target kinds.
const (
	ToState TargetKind = iota // transition to another parser state
	Accept                    // finish parsing successfully
	Reject                    // abort parsing; the packet is dropped
)

// Target is the destination of a state transition.
type Target struct {
	Kind  TargetKind
	State int // index into Spec.States when Kind == ToState
}

// AcceptTarget and RejectTarget are the canonical terminal targets.
var (
	AcceptTarget = Target{Kind: Accept}
	RejectTarget = Target{Kind: Reject}
)

// To returns a Target transitioning to state index s.
func To(s int) Target { return Target{Kind: ToState, State: s} }

func (t Target) String() string {
	switch t.Kind {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("state(%d)", t.State)
	}
}

// Field declares a packet field the parser may extract.
type Field struct {
	Name  string
	Width int  // width in bits; for varbit fields the maximum width
	Var   bool // true for varbit fields whose width is determined at run time
}

// Extract is one field-extraction action inside a state. Extractions within
// a state happen in order, each advancing the stream cursor by the field's
// (possibly runtime-determined) width.
type Extract struct {
	Field string // name of the extracted field

	// Varbit length: when LenField is non-empty the extracted width is
	// value(LenField)*LenScale + LenBias bits, clamped to [0, Field.Width].
	// LenField must have been extracted earlier on every path to this state.
	LenField string
	LenScale int
	LenBias  int
}

// KeyPart is one component of a state's transition key. Exactly one of the
// two variants is used:
//
//   - a field slice: bits [Lo, Hi) of an extracted field, MSB-first, or
//   - lookahead: Width bits starting Skip bits past the current cursor.
type KeyPart struct {
	Field  string // extracted-field variant when non-empty
	Lo, Hi int    // bit range within the field, 0 = MSB

	Lookahead bool // lookahead variant when true
	Skip      int  // bits to skip past the cursor before the window
	Width     int  // lookahead window width
}

// FieldSlice builds a key part selecting bits [lo, hi) of field f.
func FieldSlice(f string, lo, hi int) KeyPart { return KeyPart{Field: f, Lo: lo, Hi: hi} }

// WholeField builds a key part selecting all bits of a width-w field.
func WholeField(f string, w int) KeyPart { return KeyPart{Field: f, Lo: 0, Hi: w} }

// LookaheadBits builds a lookahead key part of width bits, skip bits ahead
// of the cursor.
func LookaheadBits(skip, width int) KeyPart {
	return KeyPart{Lookahead: true, Skip: skip, Width: width}
}

// BitWidth returns the number of key bits this part contributes.
func (p KeyPart) BitWidth() int {
	if p.Lookahead {
		return p.Width
	}
	return p.Hi - p.Lo
}

func (p KeyPart) String() string {
	if p.Lookahead {
		return fmt.Sprintf("lookahead(+%d,%d)", p.Skip, p.Width)
	}
	return fmt.Sprintf("%s[%d:%d]", p.Field, p.Lo, p.Hi)
}

// Rule is one ternary transition rule: the rule fires when
// key & Mask == Value & Mask. Rules are checked in order; the first match
// wins, mirroring TCAM priority.
type Rule struct {
	Value, Mask uint64
	Next        Target
}

// ExactRule builds a rule matching the full key exactly (mask of all ones
// over width bits).
func ExactRule(value uint64, width int, next Target) Rule {
	return Rule{Value: value, Mask: widthMask(width), Next: next}
}

func widthMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// State is one parser state.
type State struct {
	Name     string
	Extracts []Extract
	Key      []KeyPart
	Rules    []Rule
	Default  Target // taken when no rule matches; Accept in P4 by default
}

// KeyWidth returns the total transition-key width of the state in bits.
func (s *State) KeyWidth() int {
	w := 0
	for _, p := range s.Key {
		w += p.BitWidth()
	}
	return w
}

// Spec is a complete parser specification.
type Spec struct {
	Name   string
	Fields []Field
	States []State // States[0] is the start state

	fieldIdx map[string]int
}

// New constructs a validated Spec. It is the only constructor; the returned
// Spec is immutable by convention.
func New(name string, fields []Field, states []State) (*Spec, error) {
	s := &Spec{Name: name, Fields: fields, States: states}
	s.fieldIdx = make(map[string]int, len(fields))
	var dups []error
	for i, f := range fields {
		if _, dup := s.fieldIdx[f.Name]; dup {
			dups = append(dups, fmt.Errorf("pir: duplicate field %q", f.Name))
			continue
		}
		s.fieldIdx[f.Name] = i
	}
	if err := errors.Join(append(dups, s.Validate())...); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNew is New that panics on error; for tests and static benchmark data.
func MustNew(name string, fields []Field, states []State) *Spec {
	s, err := New(name, fields, states)
	if err != nil {
		panic(err)
	}
	return s
}

// Field returns the declaration of the named field.
func (s *Spec) Field(name string) (Field, bool) {
	i, ok := s.fieldIdx[name]
	if !ok {
		return Field{}, false
	}
	return s.Fields[i], true
}

// FieldIndex returns the index of the named field, or -1.
func (s *Spec) FieldIndex(name string) int {
	if i, ok := s.fieldIdx[name]; ok {
		return i
	}
	return -1
}

// StateIndex returns the index of the named state, or -1.
func (s *Spec) StateIndex(name string) int {
	for i := range s.States {
		if s.States[i].Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the specification's structural invariants and returns
// every violation found, joined with errors.Join — not just the first —
// so a caller fixing a hand-written spec sees the whole repair list at
// once. A nil result means the spec is well-formed.
func (s *Spec) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("pir: "+format, args...))
	}
	if len(s.States) == 0 {
		bad("spec %q has no states", s.Name)
	}
	for _, f := range s.Fields {
		if f.Width <= 0 {
			bad("field %q has non-positive width %d", f.Name, f.Width)
		}
	}
	seen := map[string]bool{}
	for si := range s.States {
		st := &s.States[si]
		if seen[st.Name] {
			bad("duplicate state name %q", st.Name)
		}
		seen[st.Name] = true
		for _, e := range st.Extracts {
			f, ok := s.Field(e.Field)
			if !ok {
				bad("state %q extracts unknown field %q", st.Name, e.Field)
				continue
			}
			if e.LenField != "" {
				if !f.Var {
					bad("state %q gives runtime length to fixed field %q", st.Name, e.Field)
				}
				if _, ok := s.Field(e.LenField); !ok {
					bad("state %q length field %q unknown", st.Name, e.LenField)
				}
			} else if f.Var {
				bad("state %q extracts varbit field %q without a length", st.Name, e.Field)
			}
		}
		for _, p := range st.Key {
			if p.Lookahead {
				if p.Skip < 0 || p.Width <= 0 {
					bad("state %q has invalid lookahead %v", st.Name, p)
				}
				continue
			}
			f, ok := s.Field(p.Field)
			if !ok {
				bad("state %q keys on unknown field %q", st.Name, p.Field)
				continue
			}
			if p.Lo < 0 || p.Hi > f.Width || p.Lo >= p.Hi {
				bad("state %q key slice %v out of range for width %d", st.Name, p, f.Width)
			}
		}
		kw := st.KeyWidth()
		if kw > 64 {
			bad("state %q key width %d exceeds 64", st.Name, kw)
		}
		if kw == 0 && len(st.Rules) > 0 {
			bad("state %q has rules but no key", st.Name)
		}
		for _, r := range st.Rules {
			if err := s.checkTarget(r.Next); err != nil {
				bad("state %q rule: %v", st.Name, err)
			}
		}
		if err := s.checkTarget(st.Default); err != nil {
			bad("state %q default: %v", st.Name, err)
		}
	}
	return errors.Join(errs...)
}

func (s *Spec) checkTarget(t Target) error {
	if t.Kind == ToState && (t.State < 0 || t.State >= len(s.States)) {
		return fmt.Errorf("target state %d out of range", t.State)
	}
	return nil
}

// String renders the spec in a compact P4-flavoured text form, useful in
// error messages and golden tests.
func (s *Spec) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "parser %s {\n", s.Name)
	for _, f := range s.Fields {
		kind := "bit"
		if f.Var {
			kind = "varbit"
		}
		fmt.Fprintf(&sb, "  field %s : %s<%d>\n", f.Name, kind, f.Width)
	}
	for i := range s.States {
		st := &s.States[i]
		fmt.Fprintf(&sb, "  state %s {\n", st.Name)
		for _, e := range st.Extracts {
			if e.LenField != "" {
				fmt.Fprintf(&sb, "    extract %s len(%s*%d+%d)\n", e.Field, e.LenField, e.LenScale, e.LenBias)
			} else {
				fmt.Fprintf(&sb, "    extract %s\n", e.Field)
			}
		}
		if len(st.Key) > 0 {
			parts := make([]string, len(st.Key))
			for j, p := range st.Key {
				parts[j] = p.String()
			}
			fmt.Fprintf(&sb, "    select (%s) {\n", strings.Join(parts, ", "))
			for _, r := range st.Rules {
				fmt.Fprintf(&sb, "      %#x &&& %#x : %s\n", r.Value, r.Mask, s.targetName(r.Next))
			}
			fmt.Fprintf(&sb, "      default : %s\n    }\n", s.targetName(st.Default))
		} else {
			fmt.Fprintf(&sb, "    transition %s\n", s.targetName(st.Default))
		}
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

func (s *Spec) targetName(t Target) string {
	if t.Kind == ToState {
		return s.States[t.State].Name
	}
	return t.String()
}

// SortedFieldNames returns all field names in lexical order. Deterministic
// iteration keeps the synthesizer and its tests reproducible.
func (s *Spec) SortedFieldNames() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	sort.Strings(names)
	return names
}
