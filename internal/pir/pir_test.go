package pir

import (
	"strings"
	"testing"

	"parserhawk/internal/bitstream"
)

// spec1 is Spec1.p4 from Figure 7: extract field0 then field1
// unconditionally.
func spec1(t *testing.T) *Spec {
	t.Helper()
	s, err := New("spec1",
		[]Field{{Name: "field0", Width: 4}, {Name: "field1", Width: 4}},
		[]State{
			{Name: "State0", Extracts: []Extract{{Field: "field0"}}, Default: To(1)},
			{Name: "State1", Extracts: []Extract{{Field: "field1"}}, Default: AcceptTarget},
		})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// spec2 is Spec2.p4 from Figure 7: extract field1 only when field0[0]==0.
func spec2(t *testing.T) *Spec {
	t.Helper()
	s, err := New("spec2",
		[]Field{{Name: "field0", Width: 4}, {Name: "field1", Width: 4}},
		[]State{
			{
				Name:     "State0",
				Extracts: []Extract{{Field: "field0"}},
				Key:      []KeyPart{FieldSlice("field0", 0, 1)},
				Rules:    []Rule{ExactRule(0, 1, To(1))},
				Default:  AcceptTarget,
			},
			{Name: "State1", Extracts: []Extract{{Field: "field1"}}, Default: AcceptTarget},
		})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpec1Run(t *testing.T) {
	s := spec1(t)
	in := bitstream.MustFromString("1010_0110")
	r := s.Run(in, 0)
	if !r.Accepted {
		t.Fatal("spec1 must accept")
	}
	if got := r.Dict["field0"].Uint(0, 4); got != 0b1010 {
		t.Errorf("field0=%b", got)
	}
	if got := r.Dict["field1"].Uint(0, 4); got != 0b0110 {
		t.Errorf("field1=%b", got)
	}
	if r.Consumed != 8 {
		t.Errorf("consumed=%d", r.Consumed)
	}
}

func TestSpec2ConditionalExtraction(t *testing.T) {
	s := spec2(t)
	// First bit 0: field1 extracted.
	r := s.Run(bitstream.MustFromString("0010_1111"), 0)
	if _, ok := r.Dict["field1"]; !ok {
		t.Error("field1 should be extracted when field0[0]==0")
	}
	// First bit 1: field1 absent.
	r = s.Run(bitstream.MustFromString("1010_1111"), 0)
	if _, ok := r.Dict["field1"]; ok {
		t.Error("field1 must not be extracted when field0[0]==1")
	}
	if !r.Accepted {
		t.Error("must still accept")
	}
}

func TestFigure3Transitions(t *testing.T) {
	// The Figure 3 motivating program: 4-bit key; {15,11,7,3}->N1, 14->N2,
	// 2->N3, default accept.
	s := MustNew("fig3",
		[]Field{{Name: "k", Width: 4}, {Name: "a", Width: 2}, {Name: "b", Width: 2}, {Name: "c", Width: 2}},
		[]State{
			{
				Name:     "Start",
				Extracts: []Extract{{Field: "k"}},
				Key:      []KeyPart{WholeField("k", 4)},
				Rules: []Rule{
					ExactRule(15, 4, To(1)), ExactRule(11, 4, To(1)),
					ExactRule(7, 4, To(1)), ExactRule(3, 4, To(1)),
					ExactRule(14, 4, To(2)), ExactRule(2, 4, To(3)),
				},
				Default: AcceptTarget,
			},
			{Name: "N1", Extracts: []Extract{{Field: "a"}}, Default: AcceptTarget},
			{Name: "N2", Extracts: []Extract{{Field: "b"}}, Default: AcceptTarget},
			{Name: "N3", Extracts: []Extract{{Field: "c"}}, Default: AcceptTarget},
		})
	for v, want := range map[uint64]string{15: "a", 11: "a", 7: "a", 3: "a", 14: "b", 2: "c"} {
		r := s.Run(bitstream.FromUint(v, 4).Concat(bitstream.MustFromString("01")), 0)
		if _, ok := r.Dict[want]; !ok {
			t.Errorf("key %d: expected extraction of %q, dict=%v", v, want, r.Dict)
		}
	}
	// Default path extracts nothing extra.
	r := s.Run(bitstream.FromUint(1, 4), 0)
	if len(r.Dict) != 1 || !r.Accepted {
		t.Errorf("key 1 must accept with only k extracted: %v", r.Dict)
	}
}

func TestMaskedRulePriority(t *testing.T) {
	s := MustNew("masked",
		[]Field{{Name: "k", Width: 4}},
		[]State{{
			Name:     "S",
			Extracts: []Extract{{Field: "k"}},
			Key:      []KeyPart{WholeField("k", 4)},
			Rules: []Rule{
				{Value: 0b1000, Mask: 0b1000, Next: RejectTarget}, // 1*** first
				ExactRule(0b1111, 4, AcceptTarget),                // shadowed
			},
			Default: AcceptTarget,
		}})
	r := s.Run(bitstream.MustFromString("1111"), 0)
	if !r.Rejected {
		t.Error("first-match priority violated: 1111 must hit the masked rule")
	}
}

func TestLookaheadKey(t *testing.T) {
	// State keys on 2 bits ahead of the cursor without extracting them.
	s := MustNew("la",
		[]Field{{Name: "f", Width: 4}, {Name: "g", Width: 2}},
		[]State{
			{
				Name:     "S0",
				Extracts: []Extract{{Field: "f"}},
				Key:      []KeyPart{LookaheadBits(0, 2)},
				Rules:    []Rule{ExactRule(0b11, 2, To(1))},
				Default:  AcceptTarget,
			},
			{Name: "S1", Extracts: []Extract{{Field: "g"}}, Default: AcceptTarget},
		})
	r := s.Run(bitstream.MustFromString("0000_11"), 0)
	if got := r.Dict["g"].Uint(0, 2); got != 0b11 {
		t.Errorf("lookahead transition failed, dict=%v", r.Dict)
	}
	r = s.Run(bitstream.MustFromString("0000_01"), 0)
	if _, ok := r.Dict["g"]; ok {
		t.Error("lookahead mismatch must take default")
	}
}

func TestVarbitExtraction(t *testing.T) {
	// len field gives number of 4-bit units.
	s := MustNew("vb",
		[]Field{{Name: "len", Width: 2}, {Name: "opts", Width: 12, Var: true}},
		[]State{{
			Name: "S",
			Extracts: []Extract{
				{Field: "len"},
				{Field: "opts", LenField: "len", LenScale: 4},
			},
			Default: AcceptTarget,
		}})
	r := s.Run(bitstream.MustFromString("10_1111_0000_1010"), 0)
	if got := len(r.Dict["opts"]); got != 8 {
		t.Fatalf("varbit width=%d want 8", got)
	}
	if r.Consumed != 10 {
		t.Errorf("consumed=%d want 10", r.Consumed)
	}
	// Length clamped to declared max.
	r = s.Run(bitstream.MustFromString("11_1111_0000_1010"), 0)
	if got := len(r.Dict["opts"]); got != 12 {
		t.Errorf("clamped varbit width=%d want 12", got)
	}
}

func mplsLike(t *testing.T) *Spec {
	t.Helper()
	// Loop: extract a label; bottom-of-stack bit decides loop vs exit.
	s, err := New("mpls",
		[]Field{{Name: "label", Width: 4}},
		[]State{{
			Name:     "L",
			Extracts: []Extract{{Field: "label"}},
			Key:      []KeyPart{FieldSlice("label", 3, 4)},
			Rules:    []Rule{ExactRule(0, 1, To(0))},
			Default:  AcceptTarget,
		}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoopExecutionAndBudget(t *testing.T) {
	s := mplsLike(t)
	// Two non-bottom labels then a bottom label.
	in := bitstream.MustFromString("0000_0010_0101")
	r := s.Run(in, 0)
	if !r.Accepted {
		t.Fatal("must accept at bottom of stack")
	}
	if got := r.Dict["label"].Uint(0, 4); got != 0b0101 {
		t.Errorf("last label=%04b", got)
	}
	if len(r.Path) != 3 {
		t.Errorf("path=%v", r.Path)
	}
	// All-zero input never reaches bottom: iteration budget rejects.
	r = s.Run(make(bitstream.Bits, 400), 4)
	if !r.Rejected {
		t.Error("iteration exhaustion must reject")
	}
}

func TestHasLoop(t *testing.T) {
	if !mplsLike(t).HasLoop() {
		t.Error("mpls-like spec must report a loop")
	}
	if spec1(t).HasLoop() {
		t.Error("spec1 is loop-free")
	}
}

func TestReachable(t *testing.T) {
	s := MustNew("unreach",
		[]Field{{Name: "f", Width: 2}},
		[]State{
			{Name: "S0", Extracts: []Extract{{Field: "f"}}, Default: AcceptTarget},
			{Name: "dead", Default: AcceptTarget},
		})
	r := s.Reachable()
	if !r[0] || r[1] {
		t.Errorf("reachability=%v", r)
	}
}

func TestRelevantBitsAndIrrelevantFields(t *testing.T) {
	s := spec2(t)
	rb := s.RelevantBits()
	if len(rb) != 1 || rb[0] != (BitRef{Field: "field0", Bit: 0}) {
		t.Errorf("relevant bits=%v", rb)
	}
	ir := s.IrrelevantFields()
	if len(ir) != 1 || ir[0] != "field1" {
		t.Errorf("irrelevant=%v", ir)
	}
}

func TestKeyGroupsMerge(t *testing.T) {
	s := MustNew("groups",
		[]Field{{Name: "f", Width: 8}},
		[]State{
			{
				Name:     "A",
				Extracts: []Extract{{Field: "f"}},
				Key:      []KeyPart{FieldSlice("f", 0, 2)},
				Rules:    []Rule{ExactRule(1, 2, To(1))},
				Default:  AcceptTarget,
			},
			{
				Name:    "B",
				Key:     []KeyPart{FieldSlice("f", 2, 4), FieldSlice("f", 6, 8)},
				Rules:   []Rule{ExactRule(5, 4, AcceptTarget)},
				Default: AcceptTarget,
			},
		})
	gs := s.KeyGroups()
	want := []KeyGroup{{"f", 0, 4}, {"f", 6, 8}}
	if len(gs) != len(want) {
		t.Fatalf("groups=%v", gs)
	}
	for i := range gs {
		if gs[i] != want[i] {
			t.Errorf("group %d = %v want %v", i, gs[i], want[i])
		}
	}
}

func TestConstantSetSubranges(t *testing.T) {
	// One 4-bit constant 0b1010 with a 2-bit key limit must contribute the
	// subranges 10,01,10 (as width-1 and width-2 pieces) per §6.4.3.
	s := MustNew("consts",
		[]Field{{Name: "k", Width: 4}},
		[]State{{
			Name:     "S",
			Extracts: []Extract{{Field: "k"}},
			Key:      []KeyPart{WholeField("k", 4)},
			Rules:    []Rule{ExactRule(0b1010, 4, AcceptTarget)},
			Default:  RejectTarget,
		}})
	cs := s.ConstantSet(2)
	hasW2 := false
	for _, c := range cs {
		if c.Width == 2 && c.Value == 0b10 && c.Mask == 0b11 {
			hasW2 = true
		}
		if c.Width > 4 {
			t.Errorf("unexpected wide constant %v", c)
		}
	}
	if !hasW2 {
		t.Errorf("missing subrange constant in %v", cs)
	}
}

func TestConstantSetConcatenation(t *testing.T) {
	// Adjacent states with 1-bit keys: concatenated 2-bit constants appear.
	s := MustNew("concat",
		[]Field{{Name: "a", Width: 1}, {Name: "b", Width: 1}},
		[]State{
			{
				Name:     "A",
				Extracts: []Extract{{Field: "a"}},
				Key:      []KeyPart{WholeField("a", 1)},
				Rules:    []Rule{ExactRule(1, 1, To(1))},
				Default:  RejectTarget,
			},
			{
				Name:     "B",
				Extracts: []Extract{{Field: "b"}},
				Key:      []KeyPart{WholeField("b", 1)},
				Rules:    []Rule{ExactRule(0, 1, AcceptTarget)},
				Default:  RejectTarget,
			},
		})
	cs := s.ConstantSet(0)
	found := false
	for _, c := range cs {
		if c.Width == 2 && c.Value == 0b10 && c.Mask == 0b11 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing concatenated constant 0b10: %v", cs)
	}
}

func TestExtractedFieldsSkipsUnreachable(t *testing.T) {
	s := MustNew("ef",
		[]Field{{Name: "f", Width: 2}, {Name: "g", Width: 2}},
		[]State{
			{Name: "S0", Extracts: []Extract{{Field: "f"}}, Default: AcceptTarget},
			{Name: "dead", Extracts: []Extract{{Field: "g"}}, Default: AcceptTarget},
		})
	ef := s.ExtractedFields()
	if len(ef) != 1 || ef[0] != "f" {
		t.Errorf("extracted=%v", ef)
	}
}

func TestMaxConsumedBits(t *testing.T) {
	if got := spec1(t).MaxConsumedBits(0); got != 8 {
		t.Errorf("spec1 max=%d want 8", got)
	}
	if got := mplsLike(t).MaxConsumedBits(3); got != 12 {
		t.Errorf("mpls max with K=3: %d want 12", got)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		fields []Field
		states []State
		want   string
	}{
		{"no states", []Field{{Name: "f", Width: 1}}, nil, "no states"},
		{"dup field", []Field{{Name: "f", Width: 1}, {Name: "f", Width: 2}},
			[]State{{Name: "S", Default: AcceptTarget}}, "duplicate field"},
		{"bad width", []Field{{Name: "f", Width: 0}},
			[]State{{Name: "S", Default: AcceptTarget}}, "non-positive width"},
		{"unknown extract", []Field{{Name: "f", Width: 1}},
			[]State{{Name: "S", Extracts: []Extract{{Field: "g"}}, Default: AcceptTarget}}, "unknown field"},
		{"varbit without len", []Field{{Name: "f", Width: 4, Var: true}},
			[]State{{Name: "S", Extracts: []Extract{{Field: "f"}}, Default: AcceptTarget}}, "without a length"},
		{"key out of range", []Field{{Name: "f", Width: 2}},
			[]State{{Name: "S", Extracts: []Extract{{Field: "f"}},
				Key: []KeyPart{FieldSlice("f", 0, 3)}, Rules: []Rule{ExactRule(0, 3, AcceptTarget)},
				Default: AcceptTarget}}, "out of range"},
		{"bad target", []Field{{Name: "f", Width: 1}},
			[]State{{Name: "S", Default: To(7)}}, "out of range"},
		{"dup state", []Field{{Name: "f", Width: 1}},
			[]State{{Name: "S", Default: AcceptTarget}, {Name: "S", Default: AcceptTarget}}, "duplicate state"},
	}
	for _, c := range cases {
		_, err := New(c.name, c.fields, c.states)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err=%v want substring %q", c.name, err, c.want)
		}
	}
}

// Validation aggregates: a spec with several independent defects reports
// all of them in one error, not just the first.
func TestValidationAggregatesAllErrors(t *testing.T) {
	_, err := New("multi",
		[]Field{{Name: "f", Width: 0}, {Name: "f", Width: 2}},
		[]State{
			{Name: "S", Extracts: []Extract{{Field: "ghost"}}, Default: To(9)},
			{Name: "S", Default: AcceptTarget},
		})
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{
		"duplicate field", "non-positive width", "unknown field",
		"out of range", "duplicate state",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %q:\n%v", want, err)
		}
	}

	// The exported Validate reports nil on a well-formed spec.
	good := MustNew("ok", []Field{{Name: "f", Width: 1}},
		[]State{{Name: "S", Default: AcceptTarget}})
	if verr := good.Validate(); verr != nil {
		t.Errorf("well-formed spec: %v", verr)
	}
}

func TestStringRendering(t *testing.T) {
	out := spec2(t).String()
	for _, want := range []string{"parser spec2", "state State0", "select", "default : accept", "field0[0:1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestSearchSpaceBitsMonotone(t *testing.T) {
	s := spec2(t)
	if a, b := s.SearchSpaceBits(3, 1), s.SearchSpaceBits(6, 1); b <= a {
		t.Errorf("search space must grow with entries: %d vs %d", a, b)
	}
	if a, b := s.SearchSpaceBits(3, 1), s.SearchSpaceBits(3, 4); b <= a {
		t.Errorf("search space must grow with stages: %d vs %d", a, b)
	}
}

func TestResultSame(t *testing.T) {
	a := Result{Accepted: true, Dict: bitstream.Dict{"f": bitstream.MustFromString("1")}}
	b := Result{Accepted: true, Dict: bitstream.Dict{"f": bitstream.MustFromString("1")}}
	if !a.Same(b) {
		t.Error("identical results must compare Same")
	}
	b.Accepted = false
	b.Rejected = true
	if a.Same(b) {
		t.Error("acceptance flag must matter")
	}
}
