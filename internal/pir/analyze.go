package pir

import "sort"

// HasLoop reports whether the state-transition graph contains a cycle
// reachable from the start state. Loopy parsers (e.g. MPLS label stacks)
// require the loop-aware implementation on Tofino and are rejected outright
// by the IPU's forward-only pipeline (§6.7.1).
func (s *Spec) HasLoop() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(s.States))
	var visit func(i int) bool
	visit = func(i int) bool {
		color[i] = grey
		st := &s.States[i]
		check := func(t Target) bool {
			if t.Kind != ToState {
				return false
			}
			switch color[t.State] {
			case grey:
				return true
			case white:
				return visit(t.State)
			}
			return false
		}
		for _, r := range st.Rules {
			if check(r.Next) {
				return true
			}
		}
		if check(st.Default) {
			return true
		}
		color[i] = black
		return false
	}
	return visit(0)
}

// Reachable returns, for each state, whether any path from the start state
// can visit it. Unreachable states arise from the +R2 rewrite (Figure 21)
// and are pruned for free by the semantic encoding.
func (s *Spec) Reachable() []bool {
	seen := make([]bool, len(s.States))
	var visit func(i int)
	visit = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		st := &s.States[i]
		for _, r := range st.Rules {
			if r.Next.Kind == ToState {
				visit(r.Next.State)
			}
		}
		if st.Default.Kind == ToState {
			visit(st.Default.State)
		}
	}
	visit(0)
	return seen
}

// BitRef identifies one bit of one packet field.
type BitRef struct {
	Field string
	Bit   int // 0 = MSB
}

// RelevantBits returns every field bit used by any state's transition key
// (Opt1, §6.1). The synthesizer restricts implementation key construction
// to exactly these bits. Lookahead windows are reported separately by
// LookaheadUse.
func (s *Spec) RelevantBits() []BitRef {
	seen := map[BitRef]bool{}
	var out []BitRef
	for i := range s.States {
		for _, p := range s.States[i].Key {
			if p.Lookahead {
				continue
			}
			for b := p.Lo; b < p.Hi; b++ {
				r := BitRef{Field: p.Field, Bit: b}
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Field != out[b].Field {
			return out[a].Field < out[b].Field
		}
		return out[a].Bit < out[b].Bit
	})
	return out
}

// LookaheadUse describes the widest lookahead window any state requires:
// max(Skip+Width) over all lookahead key parts, or 0 when lookahead is
// unused. Targets compare it against their lookahead window limit.
func (s *Spec) LookaheadUse() int {
	max := 0
	for i := range s.States {
		for _, p := range s.States[i].Key {
			if p.Lookahead && p.Skip+p.Width > max {
				max = p.Skip + p.Width
			}
		}
	}
	return max
}

// IrrelevantFields returns the names of fields none of whose bits
// participate in any transition key and that never provide a varbit length
// (Opt2, §6.2). Their widths may be scaled to 1 bit during synthesis and
// restored afterwards, shrinking the input space exponentially.
func (s *Spec) IrrelevantFields() []string {
	used := map[string]bool{}
	for i := range s.States {
		for _, p := range s.States[i].Key {
			if !p.Lookahead {
				used[p.Field] = true
			}
		}
		for _, e := range s.States[i].Extracts {
			if e.LenField != "" {
				used[e.LenField] = true
			}
		}
	}
	var out []string
	for _, f := range s.Fields {
		if !used[f.Name] {
			out = append(out, f.Name)
		}
	}
	sort.Strings(out)
	return out
}

// MaskedConst is a candidate (value, mask) pair for TCAM entry synthesis.
type MaskedConst struct {
	Value, Mask uint64
	Width       int
}

// ConstantSet implements the Opt4 domain restriction (§6.4): instead of
// searching the full 2^KW space of symbolic match constants, the solver
// chooses among values that already occur in the specification, plus
//
//   - concatenations of constants in adjacent parser states (§6.4.1,
//     Figure 16(b)), recovering cross-state merges, and
//   - every hardware-width subrange C[i:j] with j-i <= keyWidthLimit of each
//     wide constant (§6.4.3), enabling key splitting.
//
// The result is deduplicated and deterministic.
func (s *Spec) ConstantSet(keyWidthLimit int) []MaskedConst {
	type key struct {
		v, m uint64
		w    int
	}
	seen := map[key]bool{}
	var out []MaskedConst
	add := func(c MaskedConst) {
		c.Value &= c.Mask
		k := key{c.Value, c.Mask, c.Width}
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}

	// Per-state constants and their subranges.
	perState := make([][]MaskedConst, len(s.States))
	for i := range s.States {
		st := &s.States[i]
		kw := st.KeyWidth()
		for _, r := range st.Rules {
			c := MaskedConst{Value: r.Value & widthMask(kw), Mask: r.Mask & widthMask(kw), Width: kw}
			perState[i] = append(perState[i], c)
			add(c)
			if keyWidthLimit > 0 && kw > keyWidthLimit {
				for lo := 0; lo < kw; lo++ {
					for w := 1; w <= keyWidthLimit && lo+w <= kw; w++ {
						shift := uint(kw - lo - w)
						sub := MaskedConst{
							Value: (c.Value >> shift) & widthMask(w),
							Mask:  (c.Mask >> shift) & widthMask(w),
							Width: w,
						}
						add(sub)
					}
				}
			}
		}
	}

	// Concatenations across adjacent states (parent rule constant followed
	// by child rule constant), covering Figure 16(b) merges.
	for i := range s.States {
		st := &s.States[i]
		nexts := map[int]bool{}
		for _, r := range st.Rules {
			if r.Next.Kind == ToState {
				nexts[r.Next.State] = true
			}
		}
		if st.Default.Kind == ToState {
			nexts[st.Default.State] = true
		}
		for _, a := range perState[i] {
			for n := range nexts {
				for _, b := range perState[n] {
					w := a.Width + b.Width
					if w > 64 {
						continue
					}
					add(MaskedConst{
						Value: a.Value<<uint(b.Width) | b.Value,
						Mask:  a.Mask<<uint(b.Width) | b.Mask,
						Width: w,
					})
				}
			}
		}
	}

	sort.Slice(out, func(a, b int) bool {
		if out[a].Width != out[b].Width {
			return out[a].Width < out[b].Width
		}
		if out[a].Value != out[b].Value {
			return out[a].Value < out[b].Value
		}
		return out[a].Mask < out[b].Mask
	})
	return out
}

// KeyGroup is a maximal run of contiguous bits of one field used together
// in transition keys. Opt5 (§6.5) allocates each group to a single
// implementation state as an indivisible unit.
type KeyGroup struct {
	Field  string
	Lo, Hi int
}

// KeyGroups returns the per-field bit groups appearing in the spec's
// transition keys, merged and sorted.
func (s *Spec) KeyGroups() []KeyGroup {
	byField := map[string][]KeyGroup{}
	for i := range s.States {
		for _, p := range s.States[i].Key {
			if p.Lookahead {
				continue
			}
			byField[p.Field] = append(byField[p.Field], KeyGroup{p.Field, p.Lo, p.Hi})
		}
	}
	var out []KeyGroup
	var names []string
	for f := range byField {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		gs := byField[f]
		sort.Slice(gs, func(a, b int) bool { return gs[a].Lo < gs[b].Lo })
		cur := gs[0]
		for _, g := range gs[1:] {
			if g.Lo <= cur.Hi { // overlapping or adjacent: merge
				if g.Hi > cur.Hi {
					cur.Hi = g.Hi
				}
				continue
			}
			out = append(out, cur)
			cur = g
		}
		out = append(out, cur)
	}
	return out
}

// ExtractedFields returns the names of fields extracted by at least one
// reachable state, in first-extraction order. Opt3 (§6.3) preallocates
// exactly these fields to implementation states.
func (s *Spec) ExtractedFields() []string {
	reach := s.Reachable()
	seen := map[string]bool{}
	var out []string
	for i := range s.States {
		if !reach[i] {
			continue
		}
		for _, e := range s.States[i].Extracts {
			if !seen[e.Field] {
				seen[e.Field] = true
				out = append(out, e.Field)
			}
		}
	}
	return out
}

// SearchSpaceBits estimates the size (in bits) of the naive synthesis
// search space for a given entry budget: the symbolic constants (value and
// mask per entry at the state's key width), next-state selectors, and
// key-allocation variables. Table 3 reports this metric per benchmark.
func (s *Spec) SearchSpaceBits(entries int, stages int) int {
	maxKW := 0
	totalFieldBits := 0
	for i := range s.States {
		if kw := s.States[i].KeyWidth(); kw > maxKW {
			maxKW = kw
		}
	}
	for _, f := range s.Fields {
		totalFieldBits += f.Width
	}
	nStates := len(s.States)
	bitsPerEntry := 2*maxKW + log2ceil(nStates+2) // value + mask + next
	if stages > 1 {
		bitsPerEntry += log2ceil(stages) // stage assignment (Dist, Table 2)
	}
	alloc := 0
	for range s.RelevantBits() {
		alloc += log2ceil(nStates + 1) // which state's key each relevant bit joins
	}
	return entries*bitsPerEntry + alloc
}

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
