// Canonicalization: a deterministic normal form for parser specs.
//
// Two specifications that differ only in state names, state declaration
// order, field names, unused field declarations, rule order (where order
// is semantically irrelevant under first-match priority), redundant
// value bits outside a rule's mask, or split-vs-merged contiguous key
// slices of the same field canonicalize to the identical Spec — so a
// content hash of the canonical form is a sound memoization key for any
// analysis that depends only on parser semantics and structure.
//
// The normal form is computed in four passes:
//
//  1. rule values are masked (Value &= Mask), and contiguous key parts
//     reading adjacent bits of the same field (or adjacent lookahead
//     windows) are merged;
//  2. each state's rules are reordered into a canonical order that
//     preserves first-match semantics: for any two rules that can match
//     a common key AND disagree on their target, the original relative
//     order is kept (a topological constraint); all remaining freedom is
//     resolved greedily by (Value, Mask, original index). For any input
//     key, the first matching rule in the new order names the same
//     target as in the old order, because all matching rules pairwise
//     overlap and order among differing-target overlapping pairs is
//     preserved;
//  3. states are renumbered in BFS discovery order from the start state,
//     following each state's canonical rule order and then its default;
//     states unreachable from the start are appended by iterated BFS
//     from structurally-least roots (see bfsOrder). States are renamed
//     s0, s1, …;
//  4. fields are renamed f0, f1, … in order of first use (extracts, then
//     length fields, then key slices, scanned in canonical state order);
//     declared-but-never-referenced fields are dropped. The spec name is
//     normalized to "canon".
//
// Pass 2 compares rule targets by identity (kind + ORIGINAL state
// index), never by canonical numbering — the numbering of pass 3 depends
// on the rule order of pass 2, and breaking that cycle by using raw
// identity is what makes Canonicalize idempotent.
package pir

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"parserhawk/internal/bitstream"
)

// Witness is the isomorphism produced by Canonicalize: enough to map
// names in the canonical spec back to the original (and vice versa), so
// a memoized artifact computed for the canonical form can be un-renamed
// for the requesting spec.
type Witness struct {
	// States maps canonical state index -> original state index.
	States []int
	// Fields maps canonical field name -> original field name.
	Fields map[string]string
}

// OrigField returns the original name of a canonical field (or the
// input unchanged when it is not a canonical name).
func (w *Witness) OrigField(canon string) string {
	if o, ok := w.Fields[canon]; ok {
		return o
	}
	return canon
}

// FieldToCanon returns the inverse field map: original name -> canonical
// name. Fields dropped by canonicalization (never referenced) are absent.
func (w *Witness) FieldToCanon() map[string]string {
	inv := make(map[string]string, len(w.Fields))
	for c, o := range w.Fields {
		inv[o] = c
	}
	return inv
}

// OrigDict renames a dictionary keyed by canonical field names back to
// the original field names.
func (w *Witness) OrigDict(d bitstream.Dict) bitstream.Dict {
	out := make(bitstream.Dict, len(d))
	for k, v := range d {
		out[w.OrigField(k)] = v
	}
	return out
}

// Canonicalize returns the canonical form of s and the witness relating
// the two. The input spec is not modified. Canonicalize is idempotent:
// canonicalizing a canonical spec returns an equal spec and an identity
// witness.
func Canonicalize(s *Spec) (*Spec, *Witness, error) {
	if len(s.States) == 0 {
		return nil, nil, fmt.Errorf("pir: cannot canonicalize spec %q with no states", s.Name)
	}

	// Deep-copy states so the passes can rewrite freely.
	states := make([]State, len(s.States))
	for i := range s.States {
		st := s.States[i]
		st.Extracts = append([]Extract(nil), st.Extracts...)
		st.Key = append([]KeyPart(nil), st.Key...)
		st.Rules = append([]Rule(nil), st.Rules...)
		states[i] = st
	}

	// Pass 1: mask rule values; merge contiguous key parts.
	for i := range states {
		for r := range states[i].Rules {
			states[i].Rules[r].Value &= states[i].Rules[r].Mask
		}
		states[i].Key = mergeKeyParts(states[i].Key)
	}

	// Pass 2: canonical rule order per state.
	for i := range states {
		states[i].Rules = canonRuleOrder(states[i].Rules)
	}

	// Pass 3: BFS renumbering.
	perm := bfsOrder(states, s.Fields) // perm[new] = old
	inv := make([]int, len(states))
	for n, o := range perm {
		inv[o] = n
	}
	renumbered := make([]State, len(states))
	for n, o := range perm {
		st := states[o]
		st.Name = fmt.Sprintf("s%d", n)
		for r := range st.Rules {
			st.Rules[r].Next = retarget(st.Rules[r].Next, inv)
		}
		st.Default = retarget(st.Default, inv)
		renumbered[n] = st
	}

	// Pass 4: field renaming by first use; drop unreferenced fields.
	rename := map[string]string{} // original -> canonical
	var order []string            // original names in first-use order
	use := func(name string) {
		if name == "" {
			return
		}
		if _, ok := rename[name]; !ok {
			rename[name] = fmt.Sprintf("f%d", len(order))
			order = append(order, name)
		}
	}
	for i := range renumbered {
		st := &renumbered[i]
		for _, e := range st.Extracts {
			use(e.Field)
			use(e.LenField)
		}
		for _, p := range st.Key {
			if !p.Lookahead {
				use(p.Field)
			}
		}
	}
	fields := make([]Field, 0, len(order))
	for _, origName := range order {
		f, ok := s.Field(origName)
		if !ok {
			return nil, nil, fmt.Errorf("pir: canonicalize: state references unknown field %q", origName)
		}
		f.Name = rename[origName]
		fields = append(fields, f)
	}
	for i := range renumbered {
		st := &renumbered[i]
		for e := range st.Extracts {
			st.Extracts[e].Field = rename[st.Extracts[e].Field]
			if st.Extracts[e].LenField != "" {
				st.Extracts[e].LenField = rename[st.Extracts[e].LenField]
			}
		}
		for k := range st.Key {
			if !st.Key[k].Lookahead {
				st.Key[k].Field = rename[st.Key[k].Field]
			}
		}
	}

	canon, err := New("canon", fields, renumbered)
	if err != nil {
		return nil, nil, fmt.Errorf("pir: canonicalize: %w", err)
	}
	wit := &Witness{States: perm, Fields: make(map[string]string, len(order))}
	for _, origName := range order {
		wit.Fields[rename[origName]] = origName
	}
	return canon, wit, nil
}

func retarget(t Target, inv []int) Target {
	if t.Kind == ToState {
		t.State = inv[t.State]
	}
	return t
}

// mergeKeyParts collapses adjacent key parts that read contiguous bits:
// field slices [lo,m) [m,hi) of the same field, and lookahead windows
// whose second window starts exactly where the first ends. The key value
// is a straight concatenation, so merging never changes it.
func mergeKeyParts(key []KeyPart) []KeyPart {
	if len(key) < 2 {
		return key
	}
	out := key[:0]
	for _, p := range key {
		if n := len(out); n > 0 {
			q := &out[n-1]
			switch {
			case !q.Lookahead && !p.Lookahead && q.Field == p.Field && q.Hi == p.Lo:
				q.Hi = p.Hi
				continue
			case q.Lookahead && p.Lookahead && p.Skip == q.Skip+q.Width:
				q.Width += p.Width
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

// canonRuleOrder reorders rules preserving first-match semantics (see
// the package comment for the argument). Rules must already be masked.
func canonRuleOrder(rules []Rule) []Rule {
	n := len(rules)
	if n < 2 {
		return rules
	}
	// before[j] lists the i that must precede j.
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rulesOverlap(rules[i], rules[j]) && rules[i].Next != rules[j].Next {
				succ[i] = append(succ[i], j)
				indeg[j]++
			}
		}
	}
	out := make([]Rule, 0, n)
	placed := make([]bool, n)
	for len(out) < n {
		best := -1
		for i := 0; i < n; i++ {
			if placed[i] || indeg[i] != 0 {
				continue
			}
			if best == -1 || ruleLess(rules[i], rules[best]) {
				best = i
			}
		}
		placed[best] = true
		out = append(out, rules[best])
		for _, j := range succ[best] {
			indeg[j]--
		}
	}
	return out
}

// rulesOverlap reports whether some key matches both rules. With values
// already masked this is exactly: the bits constrained by both masks
// agree.
func rulesOverlap(a, b Rule) bool {
	return (a.Value^b.Value)&a.Mask&b.Mask == 0
}

func ruleLess(a, b Rule) bool {
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.Mask != b.Mask {
		return a.Mask < b.Mask
	}
	return false
}

// bfsOrder returns the canonical state order: BFS from state 0 following
// rule order then default. States unreachable from the start are kept
// (lint diagnostics — including error-severity ones — can come from
// them, so they are part of the compile's observable behavior), ordered
// by iterated BFS: the next root is the unvisited state with the
// smallest structural color under Weisfeiler–Leman-style refinement, so
// the order is independent of declaration order. Color ties fall back to
// the original index — a sound (never-wrong) but potentially
// alias-missing resolution for exactly-symmetric unreachable clusters.
// The returned slice maps new index -> old index.
func bfsOrder(states []State, fields []Field) []int {
	n := len(states)
	seen := make([]bool, n)
	pos := make([]int, n) // visit position, -1 while unvisited
	for i := range pos {
		pos[i] = -1
	}
	order := make([]int, 0, n)
	bfsFrom := func(root int) {
		queue := []int{root}
		seen[root] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			pos[cur] = len(order)
			order = append(order, cur)
			visit := func(t Target) {
				if t.Kind == ToState && !seen[t.State] {
					seen[t.State] = true
					queue = append(queue, t.State)
				}
			}
			for _, r := range states[cur].Rules {
				visit(r.Next)
			}
			visit(states[cur].Default)
		}
	}
	bfsFrom(0)
	for len(order) < n {
		colors := refineColors(states, fields, pos)
		root := -1
		for i := 0; i < n; i++ {
			if !seen[i] && (root == -1 || colors[i] < colors[root]) {
				root = i
			}
		}
		bfsFrom(root)
	}
	return order
}

// refineColors computes a declaration-order-independent structural color
// for every unvisited state: the initial color captures the state's
// local shape (extract/key/rule structure with field identity numbered
// by first occurrence within the state, and targets rendered as
// accept/reject/the visit position/unvisited), then iterated refinement
// folds in the colors of each rule target until the partition is as fine
// as WL-1 can make it.
func refineColors(states []State, fields []Field, pos []int) []string {
	n := len(states)
	colors := make([]string, n)
	for i := range states {
		if pos[i] < 0 {
			colors[i] = localColor(&states[i], fields, pos)
		}
	}
	targetColor := func(t Target, colors []string) string {
		switch {
		case t.Kind == Accept:
			return "A"
		case t.Kind == Reject:
			return "R"
		case pos[t.State] >= 0:
			return fmt.Sprintf("v%d", pos[t.State])
		default:
			return colors[t.State]
		}
	}
	for round := 0; round < n; round++ {
		next := make([]string, n)
		for i := range states {
			if pos[i] >= 0 {
				continue
			}
			var sb strings.Builder
			sb.WriteString(colors[i])
			for _, r := range states[i].Rules {
				sb.WriteByte('|')
				sb.WriteString(targetColor(r.Next, colors))
			}
			sb.WriteByte('|')
			sb.WriteString(targetColor(states[i].Default, colors))
			sum := sha256.Sum256([]byte(sb.String()))
			next[i] = fmt.Sprintf("%x", sum[:8])
		}
		colors = next
	}
	return colors
}

// localColor renders an unvisited state's renaming-invariant local shape.
func localColor(st *State, fields []Field, pos []int) string {
	var sb strings.Builder
	decl := map[string]Field{}
	for _, f := range fields {
		decl[f.Name] = f
	}
	local := map[string]int{}
	// fieldID renders a field as its first-occurrence-within-the-state
	// number plus its declared width, so states touching distinct fields
	// of different widths never collide.
	fieldID := func(name string) string {
		if name == "" {
			return "-"
		}
		id, ok := local[name]
		if !ok {
			id = len(local)
			local[name] = id
		}
		f := decl[name]
		v := 0
		if f.Var {
			v = 1
		}
		return fmt.Sprintf("%d.%d.%d", id, f.Width, v)
	}
	for _, e := range st.Extracts {
		fmt.Fprintf(&sb, "x%s,%s,%d,%d;", fieldID(e.Field), fieldID(e.LenField), e.LenScale, e.LenBias)
	}
	for _, p := range st.Key {
		if p.Lookahead {
			fmt.Fprintf(&sb, "l%d,%d;", p.Skip, p.Width)
		} else {
			fmt.Fprintf(&sb, "k%s,%d,%d;", fieldID(p.Field), p.Lo, p.Hi)
		}
	}
	target := func(t Target) string {
		switch {
		case t.Kind == Accept:
			return "A"
		case t.Kind == Reject:
			return "R"
		case pos[t.State] >= 0:
			return fmt.Sprintf("v%d", pos[t.State])
		default:
			return "u"
		}
	}
	for _, r := range st.Rules {
		fmt.Fprintf(&sb, "r%#x,%#x,%s;", r.Value, r.Mask, target(r.Next))
	}
	fmt.Fprintf(&sb, "d%s", target(st.Default))
	return sb.String()
}
