package hw

import (
	"fmt"
	"sort"
	"sync"
)

// The profile registry is the single source of truth for named device
// profiles: the CLI -target/-targets flags, hawkd's /v1/profiles endpoint,
// and the evaluation harness all resolve names through it, so a profile
// registered once appears everywhere at once. The full devices register
// here in init; the evaluation harness registers its scaled equivalents on
// top (see internal/tables).
var registry = struct {
	sync.RWMutex
	byName map[string]Profile
	order  []string
}{byName: map[string]Profile{}}

// Register adds a named profile to the registry. It panics on an empty
// name or a duplicate: both are programmer errors, and a late duplicate
// would silently shadow an already-resolvable target.
func Register(p Profile) {
	if p.Name == "" {
		panic("hw: Register with empty profile name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[p.Name]; dup {
		panic(fmt.Sprintf("hw: profile %q registered twice", p.Name))
	}
	registry.byName[p.Name] = p
	registry.order = append(registry.order, p.Name)
}

// ByName resolves a registered profile by name.
func ByName(name string) (Profile, bool) {
	registry.RLock()
	defer registry.RUnlock()
	p, ok := registry.byName[name]
	return p, ok
}

// All returns every registered profile in registration order.
func All() []Profile {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Profile, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Names returns every registered profile name, sorted, for error messages
// that list the valid targets.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := append([]string(nil), registry.order...)
	sort.Strings(out)
	return out
}

func init() {
	Register(Tofino())
	Register(IPU())
	Register(FPGAStreaming())
}
