package hw

// ByName returns the built-in full-device profile with the given name.
// The compile service and the CLIs resolve user-supplied target names
// through it (the evaluation harness adds its scaled equivalents on top;
// see tables.ProfileByName).
func ByName(name string) (Profile, bool) {
	switch name {
	case "tofino":
		return Tofino(), true
	case "ipu":
		return IPU(), true
	}
	return Profile{}, false
}
