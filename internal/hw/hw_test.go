package hw

import (
	"strings"
	"testing"

	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

func onefield(t *testing.T) *pir.Spec {
	t.Helper()
	return pir.MustNew("p", []pir.Field{{Name: "f", Width: 8}},
		[]pir.State{{Name: "S", Extracts: []pir.Extract{{Field: "f"}}, Default: pir.AcceptTarget}})
}

func TestProfileConstructors(t *testing.T) {
	tof := Tofino()
	if tof.Arch != SingleTable || !tof.AllowLoops() {
		t.Error("tofino must be a loop-capable single table")
	}
	ipu := IPU()
	if ipu.Arch != Pipelined || ipu.AllowLoops() || ipu.StageLimit <= 0 {
		t.Error("ipu must be pipelined, loop-free, staged")
	}
	p := Parameterized(4, 2, 10)
	if p.KeyLimit != 4 || p.LookaheadLimit != 2 || p.ExtractLimit != 10 {
		t.Errorf("parameterized profile wrong: %+v", p)
	}
}

func TestArchString(t *testing.T) {
	for a, want := range map[Arch]string{SingleTable: "single", Pipelined: "pipelined", Interleaved: "interleaved"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("%v.String()=%q", int(a), a.String())
		}
	}
}

func TestValidateKeyWidth(t *testing.T) {
	spec := onefield(t)
	prog := &tcam.Program{Spec: spec, States: []tcam.State{{
		Key:     []pir.KeyPart{pir.WholeField("f", 8)},
		Entries: []tcam.Entry{{Mask: 0xFF, Value: 1, Next: tcam.AcceptTarget}},
	}}}
	p := Parameterized(4, 0, 64)
	if err := p.Validate(prog); err == nil || !strings.Contains(err.Error(), "key width") {
		t.Errorf("want key-width violation, got %v", err)
	}
	p.KeyLimit = 8
	if err := p.Validate(prog); err != nil {
		t.Errorf("unexpected: %v", err)
	}
}

func TestValidateEntryBudgetSingleTable(t *testing.T) {
	spec := onefield(t)
	var entries []tcam.Entry
	for i := 0; i < 5; i++ {
		entries = append(entries, tcam.Entry{Next: tcam.AcceptTarget})
	}
	prog := &tcam.Program{Spec: spec, States: []tcam.State{{Entries: entries}}}
	p := Tofino()
	p.TCAMLimit = 4
	if err := p.Validate(prog); err == nil || !strings.Contains(err.Error(), "entries") {
		t.Errorf("want entry violation, got %v", err)
	}
}

func TestValidateSingleTableRejectsMultiTable(t *testing.T) {
	spec := onefield(t)
	prog := &tcam.Program{Spec: spec, States: []tcam.State{
		{Table: 0, Entries: []tcam.Entry{{Next: tcam.To(1, 0)}}},
		{Table: 1, Entries: []tcam.Entry{{Next: tcam.AcceptTarget}}},
	}}
	if err := Tofino().Validate(prog); err == nil || !strings.Contains(err.Error(), "table") {
		t.Errorf("want table violation, got %v", err)
	}
}

func TestValidatePipelinedForwardOnly(t *testing.T) {
	spec := onefield(t)
	// Backward transition: stage 1 -> stage 0.
	prog := &tcam.Program{Spec: spec, States: []tcam.State{
		{Table: 0, Entries: []tcam.Entry{{Next: tcam.To(1, 0)}}},
		{Table: 1, Entries: []tcam.Entry{{Next: tcam.To(0, 0)}}},
	}}
	if err := IPU().Validate(prog); err == nil || !strings.Contains(err.Error(), "forward") {
		t.Errorf("want forward violation, got %v", err)
	}
	// Self-loop within a stage is also non-forward.
	prog.States[1].Entries[0].Next = tcam.To(1, 0)
	if err := IPU().Validate(prog); err == nil || !strings.Contains(err.Error(), "forward") {
		t.Errorf("want forward violation on self loop, got %v", err)
	}
}

func TestValidatePipelinedStageBudget(t *testing.T) {
	spec := onefield(t)
	prog := &tcam.Program{Spec: spec, States: []tcam.State{
		{Table: 5, Entries: []tcam.Entry{{Next: tcam.AcceptTarget}}},
	}}
	p := IPU()
	p.StageLimit = 3
	if err := p.Validate(prog); err == nil || !strings.Contains(err.Error(), "stage") {
		t.Errorf("want stage violation, got %v", err)
	}
}

func TestValidatePipelinedPerStageEntries(t *testing.T) {
	spec := onefield(t)
	var entries []tcam.Entry
	for i := 0; i < 3; i++ {
		entries = append(entries, tcam.Entry{Next: tcam.AcceptTarget})
	}
	prog := &tcam.Program{Spec: spec, States: []tcam.State{{Table: 0, Entries: entries}}}
	p := IPU()
	p.TCAMLimit = 2
	if err := p.Validate(prog); err == nil || !strings.Contains(err.Error(), "holds") {
		t.Errorf("want per-stage violation, got %v", err)
	}
}

func TestValidateLookaheadWindow(t *testing.T) {
	spec := onefield(t)
	prog := &tcam.Program{Spec: spec, States: []tcam.State{{
		Key:     []pir.KeyPart{pir.LookaheadBits(6, 4)},
		Entries: []tcam.Entry{{Next: tcam.AcceptTarget}},
	}}}
	p := Tofino()
	p.LookaheadLimit = 8
	if err := p.Validate(prog); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Errorf("want lookahead violation, got %v", err)
	}
	p.LookaheadLimit = 10
	if err := p.Validate(prog); err != nil {
		t.Errorf("unexpected: %v", err)
	}
}

func TestValidateExtractLimit(t *testing.T) {
	spec := pir.MustNew("p",
		[]pir.Field{{Name: "f", Width: 8}, {Name: "g", Width: 8}},
		[]pir.State{{Name: "S",
			Extracts: []pir.Extract{{Field: "f"}, {Field: "g"}},
			Default:  pir.AcceptTarget}})
	prog := &tcam.Program{Spec: spec, States: []tcam.State{{
		Entries: []tcam.Entry{{
			Extracts: []pir.Extract{{Field: "f"}, {Field: "g"}},
			Next:     tcam.AcceptTarget,
		}},
	}}}
	p := Tofino()
	p.ExtractLimit = 12
	if err := p.Validate(prog); err == nil || !strings.Contains(err.Error(), "extracts") {
		t.Errorf("want extract violation for multi-field overflow, got %v", err)
	}
	// A single field wider than the limit is completed with continuation
	// entries by the device and must validate.
	prog.States[0].Entries[0].Extracts = []pir.Extract{{Field: "f"}}
	p.ExtractLimit = 4
	if err := p.Validate(prog); err != nil {
		t.Errorf("single wide field must validate, got %v", err)
	}
}

func TestValidateUnknownField(t *testing.T) {
	spec := onefield(t)
	prog := &tcam.Program{Spec: spec, States: []tcam.State{{
		Entries: []tcam.Entry{{Extracts: []pir.Extract{{Field: "ghost"}}, Next: tcam.AcceptTarget}},
	}}}
	if err := Tofino().Validate(prog); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("want unknown-field violation, got %v", err)
	}
}
