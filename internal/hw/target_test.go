package hw

import (
	"sort"
	"strings"
	"testing"

	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

func TestStreamingProfileConstructor(t *testing.T) {
	f := FPGAStreaming()
	if f.Arch != Streaming || f.AllowLoops() {
		t.Error("fpga must be a loop-free streaming pipeline")
	}
	if f.WindowBits <= 0 || f.StageLimit <= 0 {
		t.Errorf("fpga needs a window and a depth budget: %+v", f)
	}
	if f.Objective.For(f.Arch) != MinimizeDepth {
		t.Errorf("fpga objective resolves to %v, want min-depth", f.Objective.For(f.Arch))
	}
}

func TestArchByName(t *testing.T) {
	for _, a := range []Arch{SingleTable, Pipelined, Interleaved, Streaming} {
		got, ok := ArchByName(a.String())
		if !ok || got != a {
			t.Errorf("ArchByName(%q) = %v, %v", a.String(), got, ok)
		}
	}
	if _, ok := ArchByName("quantum"); ok {
		t.Error("unknown arch name resolved")
	}
}

func TestRegistryResolvesBuiltins(t *testing.T) {
	for _, name := range []string{"tofino", "ipu", "fpga"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("unknown profile resolved")
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(All()) != len(names) {
		t.Errorf("All()=%d profiles, Names()=%d", len(All()), len(names))
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", what)
			}
		}()
		f()
	}
	mustPanic("duplicate registration", func() { Register(Tofino()) })
	mustPanic("empty name", func() { Register(Profile{}) })
}

func TestFingerprintDistinguishesArchAndObjective(t *testing.T) {
	base := Tofino()
	seen := map[string]string{}
	add := func(what string, p Profile) {
		t.Helper()
		fp := p.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s fingerprint collides with %s: %q", what, prev, fp)
		}
		seen[fp] = what
	}
	add("base", base)
	archAlias := base
	archAlias.Arch = Streaming
	add("same-name different-arch", archAlias)
	objAlias := base
	objAlias.Objective = MinimizeStages
	add("same-name different-objective", objAlias)
	winAlias := archAlias
	winAlias.WindowBits = 64
	add("same-arch different-window", winAlias)
	if base.Fingerprint() != Tofino().Fingerprint() {
		t.Error("fingerprint is not stable across identical profiles")
	}
}

// streamProg builds a two-state streaming program whose cross-stage edge
// lands on the given table.
func streamProg(t *testing.T, nextTable int) *tcam.Program {
	t.Helper()
	spec := pir.MustNew("p", []pir.Field{{Name: "f", Width: 8}},
		[]pir.State{{Name: "S", Extracts: []pir.Extract{{Field: "f"}}, Default: pir.AcceptTarget}})
	return &tcam.Program{Spec: spec, States: []tcam.State{
		{Table: 0, ID: 0, Entries: []tcam.Entry{{Next: tcam.To(nextTable, 0)}}},
		{Table: nextTable, ID: 0, Entries: []tcam.Entry{{Next: tcam.AcceptTarget}}},
	}}
}

func TestValidateStreamingAlignment(t *testing.T) {
	p := FPGAStreaming()
	if err := p.Validate(streamProg(t, 1)); err != nil {
		t.Errorf("next-cycle transition must validate: %v", err)
	}
	if err := p.Validate(streamProg(t, 2)); err == nil || !strings.Contains(err.Error(), "aligned") {
		t.Errorf("stage-skipping transition must fail alignment, got %v", err)
	}
}

func TestValidateStreamingWindow(t *testing.T) {
	p := FPGAStreaming()
	p.WindowBits = 16
	p.ExtractLimit = 64
	mk := func(fields []pir.Field, extracts []pir.Extract) *tcam.Program {
		var pf []pir.Field
		pf = append(pf, fields...)
		spec := pir.MustNew("p", pf,
			[]pir.State{{Name: "S", Default: pir.AcceptTarget}})
		return &tcam.Program{Spec: spec, States: []tcam.State{
			{Table: 0, ID: 0, Entries: []tcam.Entry{{Extracts: extracts, Next: tcam.AcceptTarget}}},
		}}
	}
	// Two fixed fields totalling more than the window: the second word has
	// not arrived in this cycle, so the entry must be rejected.
	over := mk([]pir.Field{{Name: "a", Width: 12}, {Name: "b", Width: 12}},
		[]pir.Extract{{Field: "a"}, {Field: "b"}})
	if err := p.Validate(over); err == nil || !strings.Contains(err.Error(), "window") {
		t.Errorf("multi-field over-window extract must fail, got %v", err)
	}
	// A single oversized field keeps the continuation-entry exemption.
	wide := mk([]pir.Field{{Name: "a", Width: 48}}, []pir.Extract{{Field: "a"}})
	if err := p.Validate(wide); err != nil {
		t.Errorf("single wide field must keep the continuation exemption: %v", err)
	}
	// Within the window both fields fit in one cycle.
	fit := mk([]pir.Field{{Name: "a", Width: 8}, {Name: "b", Width: 8}},
		[]pir.Extract{{Field: "a"}, {Field: "b"}})
	if err := p.Validate(fit); err != nil {
		t.Errorf("in-window extract must validate: %v", err)
	}
}
