// Package hw describes programmable-parser hardware configurations (§3.1,
// §5.1.2).
//
// ParserHawk's retargetability comes from splitting the implementation
// encoding into generic FSM-simulation rules and a per-device configuration
// profile. A Profile captures everything device-specific the synthesizer
// and the validators need: the parser architecture class and the resource
// limits (key width, TCAM entries, lookahead window, stages, extraction
// length).
package hw

import (
	"fmt"

	"parserhawk/internal/tcam"
)

// Arch is the parser architecture class of Figure 2.
type Arch int

// Architecture classes.
const (
	// SingleTable devices (Tofino) hold the whole parser in one TCAM table
	// whose entries may be revisited, permitting parse loops (Figure 2a).
	SingleTable Arch = iota
	// Pipelined devices (Intel IPU) chain one TCAM table per stage; a packet
	// flows strictly forward, so loops are impossible but throughput is one
	// packet per cycle (Figure 2b).
	Pipelined
	// Interleaved devices (Broadcom Trident) alternate pipelined sub-parsers
	// with match-action stages (Figure 2c). Modeled as Pipelined with
	// checkpoints; provided for the retargetability discussion.
	Interleaved
	// Streaming devices (FPGA streaming parsers) see the packet as a fixed
	// words-per-cycle window sliding strictly forward: one TCAM table per
	// cycle, every transition advances exactly one stage, and the scarce
	// resource is pipeline depth (latency in cycles), not entries.
	Streaming
)

func (a Arch) String() string {
	switch a {
	case SingleTable:
		return "single-tcam-table"
	case Pipelined:
		return "pipelined-tcam-tables"
	case Streaming:
		return "streaming-pipeline"
	default:
		return "interleaved"
	}
}

// ArchByName is the inverse of Arch.String. Certificates carry the arch as
// a string so the checker can re-validate a deployment against the right
// device semantics without importing anything beyond this package.
func ArchByName(name string) (Arch, bool) {
	switch name {
	case "single-tcam-table":
		return SingleTable, true
	case "pipelined-tcam-tables":
		return Pipelined, true
	case "interleaved":
		return Interleaved, true
	case "streaming-pipeline":
		return Streaming, true
	}
	return 0, false
}

// Objective is the device-unit cost model the synthesizer minimizes. The
// iterative-deepening ladder, the portfolio's dominance comparison, and the
// refuter probes are all generic over it: "budget" means Objective units,
// not TCAM entries. The zero value (ObjectiveAuto) derives the historical
// per-architecture default, so profile literals that predate the field keep
// their exact behavior.
type Objective int

// Objectives.
const (
	// ObjectiveAuto selects the architecture's default objective:
	// MinimizeEntries for SingleTable, MinimizeStages for Pipelined and
	// Interleaved, MinimizeDepth for Streaming.
	ObjectiveAuto Objective = iota
	// MinimizeEntries minimizes total TCAM entries, tie-breaking on states.
	MinimizeEntries
	// MinimizeStages minimizes occupied pipeline stages, tie-breaking on
	// total entries.
	MinimizeStages
	// MinimizeDepth minimizes pipeline depth (latency in cycles),
	// tie-breaking on entries and then states.
	MinimizeDepth
)

func (o Objective) String() string {
	switch o {
	case MinimizeEntries:
		return "min-entries"
	case MinimizeStages:
		return "min-stages"
	case MinimizeDepth:
		return "min-depth"
	default:
		return "auto"
	}
}

// For resolves ObjectiveAuto to the architecture's default objective.
// Explicit objectives pass through unchanged.
func (o Objective) For(a Arch) Objective {
	if o != ObjectiveAuto {
		return o
	}
	switch a {
	case SingleTable:
		return MinimizeEntries
	case Streaming:
		return MinimizeDepth
	default:
		return MinimizeStages
	}
}

// Less reports whether resources a are strictly cheaper than b under the
// objective. It is a total preorder; the synthesizer keeps the first result
// in deterministic skeleton order among incomparable candidates.
func (o Objective) Less(a, b tcam.Resources) bool {
	switch o {
	case MinimizeStages:
		if a.Stages != b.Stages {
			return a.Stages < b.Stages
		}
		return a.Entries < b.Entries
	case MinimizeDepth:
		if a.Stages != b.Stages {
			return a.Stages < b.Stages
		}
		if a.Entries != b.Entries {
			return a.Entries < b.Entries
		}
		return a.States < b.States
	default: // MinimizeEntries (and unresolved Auto, treated as entries)
		if a.Entries != b.Entries {
			return a.Entries < b.Entries
		}
		return a.States < b.States
	}
}

// Cost is the scalar objective value of a deployment, in device units:
// entries for MinimizeEntries, occupied stages otherwise. The portfolio's
// provably-cheapest cancellation compares candidate costs against encoded
// lower bounds in these units.
func (o Objective) Cost(r tcam.Resources) int {
	if o == MinimizeEntries {
		return r.Entries
	}
	return r.Stages
}

// UsesEntryLowerBound reports whether per-skeleton entry lower bounds are
// sound bounds on the objective. Only the entry-minimizing objective can
// compare candidate entry counts against them; stage/depth objectives have
// no comparable per-skeleton bound yet.
func (o Objective) UsesEntryLowerBound() bool { return o == MinimizeEntries }

// LadderCap clamps the iterative-deepening search cap to the device. The
// ladder still climbs entry budgets for every objective — entries bound the
// symbolic table size — but only the entry-minimizing objective can cap the
// search at TCAMLimit, because for per-stage-limited devices the total
// entry count may legitimately exceed the per-stage limit.
func (o Objective) LadderCap(p Profile, cap int) int {
	if o == MinimizeEntries && cap > p.TCAMLimit {
		return p.TCAMLimit
	}
	return cap
}

// Profile is one device's hardware configuration (§5.1.2). The zero value
// is not meaningful; use the constructors or fill every field.
type Profile struct {
	Name string
	Arch Arch

	// KeyLimit bounds the state-transition key width per entry, in bits.
	KeyLimit int
	// TCAMLimit bounds TCAM entries: total entries for SingleTable devices,
	// per-stage entries for Pipelined devices.
	TCAMLimit int
	// LookaheadLimit bounds how far past the cursor a key may peek
	// (skip+width), in bits. 0 disables lookahead entirely.
	LookaheadLimit int
	// StageLimit bounds the number of pipeline stages (Pipelined only).
	StageLimit int
	// ExtractLimit bounds the bits extracted by a single entry; wider fields
	// are split across entries by the post-synthesis optimizer.
	ExtractLimit int
	// WindowBits is the streaming window: the bits visible to one cycle's
	// match and extraction on Streaming devices (words-per-cycle × word
	// width). 0 for non-streaming architectures.
	WindowBits int
	// Objective is the cost model the synthesizer minimizes for this
	// device. The zero value (ObjectiveAuto) derives the architecture's
	// historical default, so existing profile literals are unchanged.
	Objective Objective
}

// AllowLoops reports whether the architecture permits revisiting entries.
func (p Profile) AllowLoops() bool { return p.Arch == SingleTable }

// KeySplitStates returns how many chained TCAM lookups a transition key of
// w bits needs on this device: ⌈w/KeyLimit⌉, minimum one. The static
// analyzer uses it to quantify the cost of over-wide spec keys (PH006).
func (p Profile) KeySplitStates(w int) int {
	if p.KeyLimit <= 0 || w <= p.KeyLimit {
		return 1
	}
	return (w + p.KeyLimit - 1) / p.KeyLimit
}

// FitsLookahead reports whether a key that peeks reach bits past the
// cursor can be matched directly in one lookup. Beyond the window the
// compiler must defer the match past extraction (an extra state).
func (p Profile) FitsLookahead(reach int) bool { return reach <= p.LookaheadLimit }

// Tofino returns the profile used for the Barefoot Tofino experiments:
// a single loop-capable TCAM table with a generous entry budget.
func Tofino() Profile {
	return Profile{
		Name:           "tofino",
		Arch:           SingleTable,
		KeyLimit:       32,
		TCAMLimit:      256,
		LookaheadLimit: 32,
		ExtractLimit:   256,
	}
}

// IPU returns the profile used for the Intel IPU experiments: pipelined
// TCAM tables, forward-only transitions, bounded stages.
func IPU() Profile {
	return Profile{
		Name:           "ipu",
		Arch:           Pipelined,
		KeyLimit:       32,
		TCAMLimit:      16,
		LookaheadLimit: 32,
		StageLimit:     16,
		ExtractLimit:   128,
	}
}

// FPGAStreaming returns the profile for the FPGA streaming-parser backend
// (PAPERS.md, "P4-compatible High-level Synthesis of Low Latency 100 Gb/s
// Streaming Packet Parsers in FPGAs"): a fixed words-per-cycle window, one
// match table per cycle, forward-only with every transition advancing
// exactly one stage, and pipeline depth as the minimized resource.
func FPGAStreaming() Profile {
	return Profile{
		Name:           "fpga",
		Arch:           Streaming,
		KeyLimit:       32,
		TCAMLimit:      16,
		LookaheadLimit: 32,
		StageLimit:     24,
		ExtractLimit:   64,
		WindowBits:     64,
		Objective:      MinimizeDepth,
	}
}

// Parameterized returns a SingleTable profile with explicit limits, used by
// the Table 4 experiments that sweep hardware configurations.
func Parameterized(keyLimit, lookahead, extract int) Profile {
	return Profile{
		Name:           fmt.Sprintf("param(key=%d,la=%d,ex=%d)", keyLimit, lookahead, extract),
		Arch:           SingleTable,
		KeyLimit:       keyLimit,
		TCAMLimit:      1024,
		LookaheadLimit: lookahead,
		ExtractLimit:   extract,
	}
}

// Validate checks a TCAM program against the profile, returning the first
// violated constraint. It is the ground truth the paper's §7.1 correctness
// validation relies on: a program that validates here is accepted by the
// device.
func (p Profile) Validate(prog *tcam.Program) error {
	res := prog.Resources()
	if res.MaxKeyWidth > p.KeyLimit {
		return fmt.Errorf("hw %s: key width %d exceeds limit %d", p.Name, res.MaxKeyWidth, p.KeyLimit)
	}
	switch p.Arch {
	case SingleTable:
		if res.Entries > p.TCAMLimit {
			return fmt.Errorf("hw %s: %d TCAM entries exceed limit %d", p.Name, res.Entries, p.TCAMLimit)
		}
		for i := range prog.States {
			if prog.States[i].Table != 0 {
				return fmt.Errorf("hw %s: single-table device but state uses table %d", p.Name, prog.States[i].Table)
			}
		}
	case Pipelined, Interleaved:
		perStage := map[int]int{}
		for i := range prog.States {
			st := &prog.States[i]
			perStage[st.Table] += len(st.Entries)
			if st.Table < 0 || st.Table >= p.StageLimit {
				return fmt.Errorf("hw %s: stage %d outside 0..%d", p.Name, st.Table, p.StageLimit-1)
			}
			for _, e := range st.Entries {
				// New2 of Figure 11: transitions move strictly forward.
				if e.Next.Kind == tcam.ToState && e.Next.Table <= st.Table {
					return fmt.Errorf("hw %s: transition from stage %d to stage %d is not forward",
						p.Name, st.Table, e.Next.Table)
				}
			}
		}
		for stage, n := range perStage {
			if n > p.TCAMLimit {
				return fmt.Errorf("hw %s: stage %d holds %d entries, limit %d", p.Name, stage, n, p.TCAMLimit)
			}
		}
	case Streaming:
		perStage := map[int]int{}
		for i := range prog.States {
			st := &prog.States[i]
			perStage[st.Table] += len(st.Entries)
			if st.Table < 0 || st.Table >= p.StageLimit {
				return fmt.Errorf("hw %s: stage %d outside 0..%d", p.Name, st.Table, p.StageLimit-1)
			}
			for _, e := range st.Entries {
				// The window slides one word group per cycle: a transition
				// that skips a stage would need the packet to stall, and one
				// that goes backward would need it to rewind. Both are
				// impossible on a streaming pipeline.
				if e.Next.Kind == tcam.ToState && e.Next.Table != st.Table+1 {
					return fmt.Errorf("hw %s: transition from stage %d to stage %d is not aligned to the next cycle",
						p.Name, st.Table, e.Next.Table)
				}
			}
		}
		for stage, n := range perStage {
			if n > p.TCAMLimit {
				return fmt.Errorf("hw %s: stage %d holds %d entries, limit %d", p.Name, stage, n, p.TCAMLimit)
			}
		}
	}
	for i := range prog.States {
		st := &prog.States[i]
		for _, part := range st.Key {
			if part.Lookahead && part.Skip+part.Width > p.LookaheadLimit {
				return fmt.Errorf("hw %s: lookahead reach %d exceeds window %d",
					p.Name, part.Skip+part.Width, p.LookaheadLimit)
			}
		}
		for _, e := range st.Entries {
			bits := 0
			fixedFields := 0
			for _, x := range e.Extracts {
				f, ok := prog.Spec.Field(x.Field)
				if !ok {
					return fmt.Errorf("hw %s: entry extracts unknown field %q", p.Name, x.Field)
				}
				if f.Var {
					// Variable-length extraction is streamed by the device
					// with transparent continuation entries, like a single
					// oversized field; it does not count against the
					// per-entry budget.
					continue
				}
				fixedFields++
				bits += f.Width
			}
			// A single fixed field wider than the per-entry limit is legal:
			// the device completes it with extraction-continuation entries
			// (§5.1.2, "more than one entry may be needed to complete the
			// extraction of the entire field"). Multi-field overflows must
			// be split by the compiler instead.
			if bits > p.ExtractLimit && fixedFields > 1 {
				return fmt.Errorf("hw %s: entry extracts %d bits, limit %d", p.Name, bits, p.ExtractLimit)
			}
			// One streaming cycle sees exactly the window; an entry cannot
			// extract across words that have not arrived yet. A single
			// oversized field keeps the continuation-entry exemption above.
			if p.Arch == Streaming && p.WindowBits > 0 && bits > p.WindowBits && fixedFields > 1 {
				return fmt.Errorf("hw %s: entry extracts %d bits, streaming window is %d", p.Name, bits, p.WindowBits)
			}
		}
	}
	return nil
}

// Fingerprint returns a stable identity string covering every field that
// changes compilation outcomes. Cache keys must use it instead of Name:
// two profiles can share a name (a scaled variant, a renamed device) while
// demanding different programs, and a name-keyed cache would alias them.
func (p Profile) Fingerprint() string {
	return fmt.Sprintf("name=%s;arch=%s;obj=%s;key=%d;tcam=%d;la=%d;stage=%d;ex=%d;win=%d",
		p.Name, p.Arch, p.Objective.For(p.Arch), p.KeyLimit, p.TCAMLimit,
		p.LookaheadLimit, p.StageLimit, p.ExtractLimit, p.WindowBits)
}
