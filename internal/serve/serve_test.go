package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parserhawk/internal/cert"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/memo"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
	"parserhawk/internal/tables"
	"parserhawk/internal/tcam"
)

// Two small specs that compile in milliseconds on the scaled profile.
const specA = `
header h { bit<8> t; }
header pay { bit<4> x; }
parser A {
    state start {
        extract(h);
        transition select(h.t) {
            0x01    : deliver;
            default : accept;
        }
    }
    state deliver { extract(pay); transition accept; }
}
`

const specB = `
header g { bit<8> u; }
parser B {
    state start {
        extract(g);
        transition accept;
    }
}
`

// specABlankLines is specA with cosmetic differences only; it must
// normalize to the same canonical text and therefore the same cache key.
const specABlankLines = `

header h { bit<8> t; }

header pay { bit<4> x; }

parser A {
    state start {
        extract(h);

        transition select(h.t) {
            0x01    : deliver;
            default : accept;
        }
    }
    state deliver { extract(pay); transition accept; }
}
`

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Profiles:       []hw.Profile{tables.TofinoScaled(), tables.IPUScaled()},
		DefaultProfile: "tofino-scaled",
		DefaultTimeout: 30 * time.Second,
		CompileTimeout: 60 * time.Second,
		Workers:        2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, url string, req CompileRequest) (int, CompileResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	var resp CompileResponse
	if httpResp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &resp); err != nil {
			t.Fatalf("decoding %q: %v", buf.String(), err)
		}
	}
	return httpResp.StatusCode, resp, buf.String()
}

func TestCompileOKThenCacheHit(t *testing.T) {
	s, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/compile"

	code, resp, raw := postCompile(t, url, CompileRequest{Source: specA})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.Verdict != VerdictOK {
		t.Fatalf("verdict %q (%s), want ok", resp.Verdict, resp.Reason)
	}
	if resp.Cache != CacheMiss {
		t.Fatalf("first request disposition %q, want miss", resp.Cache)
	}
	if resp.Entries == 0 || resp.Program == "" || resp.Stats == nil {
		t.Fatalf("incomplete ok response: entries=%d program=%q stats=%v", resp.Entries, resp.Program, resp.Stats)
	}

	// A cosmetically different rendering of the same parser must hit the
	// same content address.
	code, resp2, raw := postCompile(t, url, CompileRequest{Source: specABlankLines})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp2.Cache != CacheHit {
		t.Fatalf("repeat disposition %q, want hit", resp2.Cache)
	}
	if resp2.Verdict != VerdictOK || resp2.Program != resp.Program ||
		resp2.Entries != resp.Entries || resp2.Stages != resp.Stages {
		t.Fatalf("cached response diverged: %+v vs %+v", resp2, resp)
	}
	if got := s.compiles.value(); got != 1 {
		t.Fatalf("compiles counter %d after cached repeat, want 1", got)
	}

	// A different profile is a different key: no false sharing.
	code, resp3, raw := postCompile(t, url, CompileRequest{Source: specA, Profile: "ipu-scaled"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp3.Cache != CacheMiss {
		t.Fatalf("other-profile disposition %q, want miss", resp3.Cache)
	}
	if got := s.compiles.value(); got != 2 {
		t.Fatalf("compiles counter %d after second profile, want 2", got)
	}
}

func TestCacheEviction(t *testing.T) {
	// Budget fits either compiled outcome alone (the larger is ~8.5 KiB,
	// dominated by its stats trace and certificate) but not both, so the
	// second distinct spec must evict the first.
	const budget = 10 << 10
	s, ts := newTestServer(t, func(c *Config) { c.CacheBytes = budget })
	url := ts.URL + "/v1/compile"

	for _, src := range []string{specA, specB} {
		code, resp, raw := postCompile(t, url, CompileRequest{Source: src})
		if code != http.StatusOK || resp.Verdict != VerdictOK {
			t.Fatalf("compile failed: %d %s", code, raw)
		}
	}
	_, _, evictions, used, _ := s.cache.snapshot()
	if evictions == 0 {
		t.Fatalf("no evictions with %d bytes used against a %d-byte budget", used, budget)
	}
	if used > budget {
		t.Fatalf("cache used %d bytes, budget %d", used, budget)
	}

	// specA was evicted: compiling it again is a miss that recompiles.
	before := s.compiles.value()
	_, resp, _ := postCompile(t, url, CompileRequest{Source: specA})
	if resp.Cache != CacheMiss {
		t.Fatalf("post-eviction disposition %q, want miss", resp.Cache)
	}
	if got := s.compiles.value(); got != before+1 {
		t.Fatalf("compiles %d, want %d", got, before+1)
	}
}

// fakeCompile is an injectable compileFn with controllable timing.
type fakeCompile struct {
	calls   atomic.Int64
	release chan struct{} // compile blocks until closed (nil: immediate)

	mu  sync.Mutex
	ctx context.Context // context of the most recent call
}

func (f *fakeCompile) fn(ctx context.Context, spec *pir.Spec, profile hw.Profile, opts core.Options) (*core.Result, error) {
	f.calls.Add(1)
	f.mu.Lock()
	f.ctx = ctx
	f.mu.Unlock()
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	prog := &tcam.Program{Spec: spec}
	return &core.Result{Program: prog, Resources: prog.Resources()}, nil
}

func (f *fakeCompile) lastCtx() context.Context {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ctx
}

func TestCoalescingFanOut(t *testing.T) {
	fake := &fakeCompile{release: make(chan struct{})}
	s, ts := newTestServer(t, nil)
	s.compileFn = fake.fn
	url := ts.URL + "/v1/compile"

	const n = 8
	resps := make([]CompileResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, resps[i], _ = postCompile(t, url, CompileRequest{Source: specA})
		}(i)
	}

	// Wait until the single compile is underway and every other request
	// has joined the flight, then let it finish.
	deadline := time.Now().Add(5 * time.Second)
	for fake.calls.Load() == 0 || s.coalesced.value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("stuck waiting for fan-in: calls=%d coalesced=%d", fake.calls.Load(), s.coalesced.value())
		}
		time.Sleep(time.Millisecond)
	}
	close(fake.release)
	wg.Wait()

	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("%d compilations for %d identical requests, want 1", got, n)
	}
	miss, coalesced := 0, 0
	for i, r := range resps {
		if r.Verdict != VerdictOK {
			t.Fatalf("request %d verdict %q (%s)", i, r.Verdict, r.Reason)
		}
		switch r.Cache {
		case CacheMiss:
			miss++
		case CacheCoalesced:
			coalesced++
		default:
			t.Fatalf("request %d disposition %q", i, r.Cache)
		}
	}
	if miss != 1 || coalesced != n-1 {
		t.Fatalf("dispositions: %d miss, %d coalesced; want 1 and %d", miss, coalesced, n-1)
	}
}

func TestDeadlineReturnsUnknownAndCancelsCompile(t *testing.T) {
	fake := &fakeCompile{release: make(chan struct{})} // never released
	s, ts := newTestServer(t, nil)
	s.compileFn = fake.fn

	code, resp, raw := postCompile(t, ts.URL+"/v1/compile?timeout=50ms", CompileRequest{Source: specA})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s (a deadline is an outcome, not a request error)", code, raw)
	}
	if resp.Verdict != VerdictUnknown {
		t.Fatalf("verdict %q, want unknown", resp.Verdict)
	}
	if got := s.deadlineExpired.value(); got != 1 {
		t.Fatalf("deadline counter %d, want 1", got)
	}

	// The sole waiter left, so the flight context must cancel the compile
	// through the library's cancellation path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ctx := fake.lastCtx(); ctx != nil && ctx.Err() != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compile context not canceled after the last waiter left")
		}
		time.Sleep(time.Millisecond)
	}
	// Nothing was cached for the interrupted compile.
	if _, _, _, used, entries := s.cache.snapshot(); entries != 0 {
		t.Fatalf("interrupted compile was cached (%d entries, %d bytes)", entries, used)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/compile"

	cases := []struct {
		name string
		req  CompileRequest
		frag string
	}{
		{"malformed spec", CompileRequest{Source: "parser { nope"}, "parsing spec"},
		{"empty source", CompileRequest{Source: ""}, "missing spec source"},
		{"unknown profile", CompileRequest{Source: specA, Profile: "trident"}, "unknown profile"},
		{"bad timeout", CompileRequest{Source: specA, Timeout: "soon"}, "invalid timeout"},
		{"negative timeout", CompileRequest{Source: specA, Timeout: "-3s"}, "must be positive"},
	}
	for _, tc := range cases {
		code, _, raw := postCompile(t, url, tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, raw)
		}
		if !strings.Contains(raw, tc.frag) {
			t.Errorf("%s: body %q missing %q", tc.name, raw, tc.frag)
		}
	}

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile: status %d, want 405", resp.StatusCode)
	}
}

func TestProfilesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []ProfileInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("%d profiles, want 2", len(infos))
	}
	if infos[0].Name != "tofino-scaled" || !infos[0].Default {
		t.Fatalf("first profile %+v, want default tofino-scaled", infos[0])
	}
	if infos[1].Arch != "pipelined-tcam-tables" || infos[1].StageLimit == 0 {
		t.Fatalf("ipu-scaled profile %+v missing pipeline shape", infos[1])
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// One real compile so the verdict and solver families have samples.
	if code, resp, raw := postCompile(t, ts.URL+"/v1/compile", CompileRequest{Source: specB}); code != 200 || resp.Verdict != VerdictOK {
		t.Fatalf("compile failed: %d %s", code, raw)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text format", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"hawkd_compile_requests_total 1",
		"hawkd_compiles_total 1",
		"hawkd_cache_misses_total 1",
		"hawkd_cache_hits_total 0",
		"hawkd_cache_evictions_total 0",
		"hawkd_cache_entries 1",
		"hawkd_queue_depth 0",
		"hawkd_workers_capacity 2",
		`hawkd_compile_verdicts_total{verdict="ok"} 1`,
		"# TYPE hawkd_solver_conflicts_total counter",
		"hawkd_portfolio_ladders_run_total",
		"hawkd_exchange_published_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/stats missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestNoSolutionIsCached proves deterministic failures are cacheable: a
// spec that cannot fit the device compiles once and the verdict replays
// from the cache.
func TestNoSolutionIsCached(t *testing.T) {
	// A single state whose key demands far more TCAM entries than the
	// profile allows at any budget.
	var sb strings.Builder
	sb.WriteString("header h { bit<8> t; }\nheader p { bit<4> x; }\nparser Big {\n  state start {\n    extract(h);\n    transition select(h.t) {\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "      0x%02x : s%d;\n", i, i)
	}
	sb.WriteString("      default : accept;\n    }\n  }\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "  state s%d { extract(p); transition accept; }\n", i)
	}
	sb.WriteString("}\n")

	s, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/compile"
	code, resp, raw := postCompile(t, url, CompileRequest{Source: sb.String()})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.Verdict != VerdictNoSolution {
		t.Skipf("expected no_solution, got %q — spec shape compiled; skipping cacheability assertion", resp.Verdict)
	}
	_, resp2, _ := postCompile(t, url, CompileRequest{Source: sb.String()})
	if resp2.Cache != CacheHit || resp2.Verdict != VerdictNoSolution {
		t.Fatalf("deterministic failure not replayed from cache: %+v", resp2)
	}
	if got := s.compiles.value(); got != 1 {
		t.Fatalf("compiles %d, want 1", got)
	}
}

// TestFailedCertificateIsNotCached proves the certificate gate: a compile
// whose certificate fails the independent checker is still served (the
// synthesizer's own verifier vouched for the program) but must not enter
// the cache, and the failure shows up in the parserhawk_cert_* metrics.
func TestFailedCertificateIsNotCached(t *testing.T) {
	spec, err := p4.ParseSpec(specA)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.EmitCertificate = true
	good, err := core.CompileContext(context.Background(), spec, tables.TofinoScaled(), opts)
	if err != nil {
		t.Fatal(err)
	}
	muts, err := cert.FailingMutations(good.Certificate, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Certificate = muts[0].Cert

	s, ts := newTestServer(t, nil)
	s.compileFn = func(ctx context.Context, sp *pir.Spec, profile hw.Profile, o core.Options) (*core.Result, error) {
		return &bad, nil
	}
	url := ts.URL + "/v1/compile"

	code, resp, raw := postCompile(t, url, CompileRequest{Source: specA})
	if code != http.StatusOK || resp.Verdict != VerdictOK {
		t.Fatalf("compile failed: %d %s", code, raw)
	}
	if resp.CertificateError == "" {
		t.Fatal("corrupted certificate passed the server-side check")
	}
	if len(resp.Certificate) != 0 {
		t.Fatal("failing certificate must not be attached to the response")
	}
	// Second identical request: the outcome must NOT replay from cache.
	_, resp2, _ := postCompile(t, url, CompileRequest{Source: specA})
	if resp2.Cache == CacheHit {
		t.Fatal("uncertified result was served from cache")
	}
	if got := s.certChecked.value(); got != 2 {
		t.Fatalf("cert_checked %d, want 2", got)
	}
	if got := s.certFailed.value(); got != 2 {
		t.Fatalf("cert_failed %d, want 2", got)
	}

	metrics, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(metrics.Body)
	for _, want := range []string{
		"parserhawk_cert_checked_total 2",
		"parserhawk_cert_failed_total 2",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/stats missing %q", want)
		}
	}
}

// TestCertificateAttachedAndCacheable is the positive half: a passing
// certificate rides along in the response, the outcome caches, and the
// cached replay carries the same certificate bytes.
func TestCertificateAttachedAndCacheable(t *testing.T) {
	_, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/compile"
	code, resp, raw := postCompile(t, url, CompileRequest{Source: specA})
	if code != http.StatusOK || resp.Verdict != VerdictOK {
		t.Fatalf("compile failed: %d %s", code, raw)
	}
	if len(resp.Certificate) == 0 || resp.CertificateError != "" {
		t.Fatalf("ok response lacks a certificate (err=%q)", resp.CertificateError)
	}
	c, err := cert.Decode(resp.Certificate)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SelfCheck(); err != nil {
		t.Fatalf("served certificate does not check: %v", err)
	}
	_, resp2, _ := postCompile(t, url, CompileRequest{Source: specA})
	if resp2.Cache != CacheHit {
		t.Fatalf("repeat disposition %q, want hit", resp2.Cache)
	}
	if string(resp2.Certificate) != string(resp.Certificate) {
		t.Fatal("cached replay served different certificate bytes")
	}
}

// TestMultiTargetCompile exercises the targets fan-out: one request, one
// envelope with verdict "multi" and one ordinary per-target response per
// requested profile, in request order, each stamped with its profile
// name. A repeat of the same request must hit the shared cache once per
// target — the per-target compiles populate it under profile-qualified
// keys.
func TestMultiTargetCompile(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Profiles = []hw.Profile{tables.TofinoScaled(), tables.IPUScaled(), tables.FPGAScaled()}
	})
	url := ts.URL + "/v1/compile"
	want := []string{"tofino-scaled", "ipu-scaled", "fpga-scaled"}
	code, resp, raw := postCompile(t, url, CompileRequest{Source: specA, Targets: want})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.Verdict != VerdictMulti {
		t.Fatalf("verdict %q, want %q", resp.Verdict, VerdictMulti)
	}
	if len(resp.Targets) != len(want) {
		t.Fatalf("targets %d, want %d", len(resp.Targets), len(want))
	}
	for i, name := range want {
		sub := resp.Targets[i]
		if sub.Profile != name {
			t.Errorf("target %d: profile %q, want %q", i, sub.Profile, name)
		}
		if sub.Verdict != VerdictOK {
			t.Errorf("%s: verdict %q (%s)", name, sub.Verdict, sub.Reason)
		}
		if sub.Program == "" {
			t.Errorf("%s: no program in sub-response", name)
		}
	}
	_, resp2, _ := postCompile(t, url, CompileRequest{Source: specA, Targets: want})
	for _, sub := range resp2.Targets {
		if sub.Cache != CacheHit {
			t.Errorf("%s: repeat disposition %q, want %q", sub.Profile, sub.Cache, CacheHit)
		}
	}
	if got := s.compiles.value(); got != int64(len(want)) {
		t.Fatalf("compiles %d, want %d", got, len(want))
	}
}

// TestMultiTargetRequestValidation: profile and targets are mutually
// exclusive, and an unknown target is a 400 that lists the registry so
// the client can see what the server actually resolves.
func TestMultiTargetRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/compile"
	code, _, raw := postCompile(t, url, CompileRequest{
		Source: specA, Profile: "tofino-scaled", Targets: []string{"ipu-scaled"},
	})
	if code != http.StatusBadRequest || !strings.Contains(raw, "mutually exclusive") {
		t.Fatalf("profile+targets: %d %s", code, raw)
	}
	code, _, raw = postCompile(t, url, CompileRequest{Source: specA, Targets: []string{"nope"}})
	if code != http.StatusBadRequest || !strings.Contains(raw, "unknown target") ||
		!strings.Contains(raw, "nope") || !strings.Contains(raw, "tofino-scaled") {
		t.Fatalf("unknown target: %d %s", code, raw)
	}
}

// TestCacheKeyIncludesArchAndObjective is the aliasing regression: two
// profiles that agree on every numeric limit and even on the name but
// target different architectures or objectives must not share a cache
// slot — otherwise a cached tofino result could be replayed for an fpga
// request, complete with a program the fpga cannot deploy.
func TestCacheKeyIncludesArchAndObjective(t *testing.T) {
	spec, err := p4.ParseSpec(specA)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	base := tables.TofinoScaled()

	srv := New(Config{})

	archAlias := base
	archAlias.Arch = hw.Streaming
	archAlias.WindowBits = 24
	if srv.cacheKey(spec, specA, base, opts) == srv.cacheKey(spec, specA, archAlias, opts) {
		t.Fatal("cache key ignores the target architecture")
	}

	objAlias := base
	objAlias.Objective = hw.MinimizeStages
	if srv.cacheKey(spec, specA, base, opts) == srv.cacheKey(spec, specA, objAlias, opts) {
		t.Fatal("cache key ignores the synthesis objective")
	}
}

// TestPerProfileVerdictMetrics: multi-target compiles break verdicts out
// per profile in /stats while the original single-label family keeps its
// meaning (one finished compilation each).
func TestPerProfileVerdictMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/compile"
	code, _, raw := postCompile(t, url, CompileRequest{
		Source: specA, Targets: []string{"tofino-scaled", "ipu-scaled"},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	metrics, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(metrics.Body)
	for _, want := range []string{
		`hawkd_compile_profile_verdicts_total{profile="ipu-scaled",verdict="ok"} 1`,
		`hawkd_compile_profile_verdicts_total{profile="tofino-scaled",verdict="ok"} 1`,
		`hawkd_compile_verdicts_total{verdict="ok"} 2`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/stats missing %q", want)
		}
	}
}

// specARenamed is specA with every state, header, and field renamed and
// cosmetic noise added — a different program text whose canonical form is
// identical. The canonical cache key must coalesce it (and the
// whitespace/comment variants) onto specA's entry.
const specARenamed = `
// same parser, different names
header hdr { bit<8> ty; }
header body { bit<4> z; } /* was pay */
parser Renamed {
    state start {
        extract(hdr);
        transition select(hdr.ty) {
            0x01    : hand_off;
            default : accept;
        }
    }
    state hand_off { extract(body); transition accept; }
}
`

// TestAliasSpecsCoalesceToOneCacheEntry is the cache-key regression for
// the canonicalized key: formatting, comment, and renaming variants of
// one parser must trigger exactly one compilation and share one cache
// entry, with no key ever derived from fallback text.
func TestAliasSpecsCoalesceToOneCacheEntry(t *testing.T) {
	s, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/compile"

	first := CompileResponse{}
	for i, src := range []string{specA, specABlankLines, specARenamed} {
		code, resp, raw := postCompile(t, url, CompileRequest{Source: src})
		if code != http.StatusOK || resp.Verdict != VerdictOK {
			t.Fatalf("variant %d: status %d verdict %q (%s)", i, code, resp.Verdict, raw)
		}
		if i == 0 {
			if resp.Cache != CacheMiss {
				t.Fatalf("first request disposition %q, want miss", resp.Cache)
			}
			first = resp
			continue
		}
		if resp.Cache != CacheHit {
			t.Fatalf("variant %d disposition %q, want hit", i, resp.Cache)
		}
		if resp.Entries != first.Entries || resp.Stages != first.Stages {
			t.Fatalf("variant %d resources (%d,%d) diverged from (%d,%d)",
				i, resp.Entries, resp.Stages, first.Entries, first.Stages)
		}
	}
	if got := s.compiles.value(); got != 1 {
		t.Fatalf("expected exactly one compilation, got %d", got)
	}
	if got := s.cacheKeyFallback.value(); got != 0 {
		t.Fatalf("canonicalizable specs incremented the fallback counter %d times", got)
	}

	metrics, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(metrics.Body)
	for _, want := range []string{"hawkd_cache_entries 1", "hawkd_cache_key_fallback_total 0"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

// TestServeWithMemoServesTierCounters wires a memo cache into the server
// and checks a compile populates the memo metric families.
func TestServeWithMemoServesTierCounters(t *testing.T) {
	mc, err := memo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, func(c *Config) { c.Memo = mc })
	url := ts.URL + "/v1/compile"
	if code, resp, raw := postCompile(t, url, CompileRequest{Source: specA}); code != http.StatusOK || resp.Verdict != VerdictOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if st := mc.Stats(); st.T1Misses != 1 || st.T1Stores != 1 {
		t.Fatalf("memo did not see the compile: %+v", st)
	}

	metrics, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(metrics.Body)
	for _, want := range []string{
		`hawkd_memo_tier_misses_total{tier="1"} 1`,
		`hawkd_memo_tier_stores_total{tier="1"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}
