package serve

import (
	"container/list"
	"sync"
)

// lruCache is the content-addressed result cache: completed, deterministic
// compile outcomes keyed by the (canonical spec, profile, options
// fingerprint) hash, bounded by an approximate byte budget with
// least-recently-used eviction.
//
// Only outcomes that are pure functions of the key go in — success,
// no-solution, and lint rejection. Timeouts and cancellations are
// circumstances of one request, not properties of the spec, and are never
// cached (see compileOutcome).
type lruCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	key string
	out *outcome
}

func newLRUCache(budget int64) *lruCache {
	return &lruCache{
		budget: budget,
		ll:     list.New(),
		items:  map[string]*list.Element{},
	}
}

// get returns the cached outcome for key, refreshing its recency.
func (c *lruCache) get(key string) (*outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).out, true
}

// add stores out under key, evicting from the cold end until the byte
// budget holds. An outcome larger than the whole budget is not stored.
// Re-adding an existing key refreshes the entry in place.
func (c *lruCache) add(key string, out *outcome) {
	if out.size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.used += out.size - el.Value.(*lruEntry).out.size
		el.Value.(*lruEntry).out = out
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, out: out})
		c.used += out.size
	}
	for c.used > c.budget {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ent := c.ll.Remove(el).(*lruEntry)
		delete(c.items, ent.key)
		c.used -= ent.out.size
		c.evictions++
	}
}

// snapshot returns the counters and gauges for /stats.
func (c *lruCache) snapshot() (hits, misses, evictions, used, entries int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.used, int64(c.ll.Len())
}
