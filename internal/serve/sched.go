package serve

import (
	"context"
	"sync"
)

// scheduler shares one pool of portfolio worker tokens fairly across
// concurrent compilations. Each compile asks for the worker count it
// would have used standalone (core.Options.Workers) and is granted
// between 1 and that many tokens; the grant becomes the compile's actual
// Options.Workers.
//
// The fairness contract is FIFO admission with work-conserving grants: a
// compile never waits while tokens are free (it takes what is available,
// up to its ask, rather than holding out for a full allotment), and
// waiters are served strictly in arrival order. Shrinking a grant is
// always safe because the portfolio's determinism contract makes the
// compile's verdict, entry table, and stage count independent of the
// worker count — the scheduler trades only latency, never outcomes.
type scheduler struct {
	mu       sync.Mutex
	capacity int
	free     int
	queue    []*schedWaiter
}

type schedWaiter struct {
	want  int
	ready chan int // buffered; receives the grant exactly once
}

func newScheduler(capacity int) *scheduler {
	if capacity < 1 {
		capacity = 1
	}
	return &scheduler{capacity: capacity, free: capacity}
}

// acquire blocks until the scheduler grants 1..want worker tokens or ctx
// is done. The caller must release exactly the granted count.
func (s *scheduler) acquire(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	if want > s.capacity {
		want = s.capacity
	}
	s.mu.Lock()
	if len(s.queue) == 0 && s.free > 0 {
		g := min(want, s.free)
		s.free -= g
		s.mu.Unlock()
		return g, nil
	}
	w := &schedWaiter{want: want, ready: make(chan int, 1)}
	s.queue = append(s.queue, w)
	s.mu.Unlock()

	select {
	case g := <-w.ready:
		return g, nil
	case <-ctx.Done():
		s.mu.Lock()
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		// A grant may have raced the cancellation: release and the first
		// waiter (if any) inherits the tokens, so none leak.
		select {
		case g := <-w.ready:
			s.release(g)
		default:
		}
		return 0, ctx.Err()
	}
}

// release returns n tokens to the pool and serves queued waiters in FIFO
// order, each getting up to its ask while tokens last.
func (s *scheduler) release(n int) {
	s.mu.Lock()
	s.free += n
	for len(s.queue) > 0 && s.free > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		g := min(w.want, s.free)
		s.free -= g
		w.ready <- g
	}
	s.mu.Unlock()
}

// snapshot returns the queue-depth and workers-in-use gauges.
func (s *scheduler) snapshot() (queued, inUse int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.queue)), int64(s.capacity - s.free)
}
