package serve

import (
	"context"
	"sync"
)

// flightGroup implements single-flight request coalescing: all requests
// for the same cache key share one compilation. The first request to
// arrive becomes the leader and starts the compile on a dedicated
// goroutine; later identical requests join as waiters and receive the
// same outcome when it lands. The compile's context stays alive exactly
// as long as someone is waiting — when the last waiter abandons the
// flight (its own deadline expired, or the client disconnected), the
// flight context is canceled and the in-flight SAT search aborts through
// the compiler's existing cancellation path.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done    chan struct{} // closed once out is set
	out     *outcome      // immutable after done closes
	waiters int
	cancel  context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[string]*flight{}}
}

// join returns the in-flight compilation for key, starting one when none
// exists. newCtx builds the compile's context (the server bounds it with
// the compile timeout); run performs the compile and is invoked on the
// flight's own goroutine. Every join must be balanced by exactly one
// leave, after the caller has stopped reading the flight.
func (g *flightGroup) join(key string, newCtx func() (context.Context, context.CancelFunc), run func(ctx context.Context) *outcome) (f *flight, leader bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		g.mu.Unlock()
		return f, false
	}
	ctx, cancel := newCtx()
	f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		out := run(ctx)
		g.mu.Lock()
		// Remove before publishing: a request arriving after the result
		// is published must start fresh (or hit the cache), not join a
		// finished flight.
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		f.out = out
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return f, true
}

// leave drops one waiter. When the last waiter leaves a still-running
// flight, the compile context is canceled; the flight goroutine then
// publishes its canceled outcome to nobody and exits.
func (g *flightGroup) leave(key string, f *flight) {
	g.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	if last && g.flights[key] == f {
		// Nobody is listening anymore; forget the flight so the next
		// identical request is not handed a doomed compilation.
		delete(g.flights, key)
	}
	g.mu.Unlock()
	if last {
		f.cancel()
	}
}

// size reports how many distinct compilations are in flight.
func (g *flightGroup) size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
