package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"parserhawk/internal/core"
)

// counter is a monotonically increasing metric safe for concurrent use.
type counter struct{ v atomic.Int64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) add(n int64)  { c.v.Add(n) }
func (c *counter) value() int64 { return c.v.Load() }

// aggregates accumulates per-compile statistics across the server's
// lifetime: verdict tallies plus the solver and portfolio counters every
// compilation already reports through core.Stats. /stats re-exports them
// in Prometheus text format, so the observability the CLIs provide per
// run (hawkbench -stats) is available as a live scrape for the service.
type aggregates struct {
	mu       sync.Mutex
	verdicts map[string]int64
	// profileVerdicts tallies verdicts per target profile, keyed
	// profile\x00verdict, so /stats can answer "which targets fail" —
	// indistinguishable in the aggregate the moment the server compiles
	// for more than one device.
	profileVerdicts map[string]int64
	solver          core.SolverStats

	laddersRun         int64
	refutersRun        int64
	skeletonsRefuted   int64
	skeletonsDominated int64
	exchangePublished  int64
	exchangeCollected  int64
	exchangeDropped    int64
}

func newAggregates() *aggregates {
	return &aggregates{verdicts: map[string]int64{}, profileVerdicts: map[string]int64{}}
}

// record folds one finished compilation into the totals. stats may be nil
// (failed compiles carry no Stats payload); the verdict is always counted,
// both in the aggregate and under its target profile.
func (a *aggregates) record(profile, verdict string, stats *core.Stats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.verdicts[verdict]++
	a.profileVerdicts[profile+"\x00"+verdict]++
	if stats == nil {
		return
	}
	a.solver.Add(stats.Solver)
	a.laddersRun += int64(stats.Portfolio.LaddersRun)
	a.refutersRun += int64(stats.Portfolio.RefutersRun)
	a.skeletonsRefuted += int64(stats.Portfolio.SkeletonsRefuted)
	a.skeletonsDominated += int64(stats.Portfolio.SkeletonsDominated)
	a.exchangePublished += stats.Portfolio.ExchangePublished
	a.exchangeCollected += stats.Portfolio.ExchangeCollected
	a.exchangeDropped += stats.Portfolio.ExchangeDropped
}

// metricWriter emits the Prometheus text exposition format (0.0.4): one
// HELP/TYPE header per family followed by its samples.
type metricWriter struct{ w io.Writer }

func (m metricWriter) family(name, typ, help string) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m metricWriter) sample(name string, v int64) {
	fmt.Fprintf(m.w, "%s %d\n", name, v)
}

func (m metricWriter) labeled(name, label, value string, v int64) {
	fmt.Fprintf(m.w, "%s{%s=%q} %d\n", name, label, value, v)
}

func (m metricWriter) labeled2(name, l1, v1, l2, v2 string, v int64) {
	fmt.Fprintf(m.w, "%s{%s=%q,%s=%q} %d\n", name, l1, v1, l2, v2, v)
}

// writeMetrics renders every server metric. It takes the live gauges by
// value so the snapshot is internally consistent enough for scraping (the
// counters are independently atomic; Prometheus semantics do not require
// a cross-family consistent cut).
func (s *Server) writeMetrics(w io.Writer) {
	m := metricWriter{w}

	m.family("hawkd_compile_requests_total", "counter", "POST /v1/compile requests accepted for processing.")
	m.sample("hawkd_compile_requests_total", s.requests.value())
	m.family("hawkd_compiles_total", "counter", "Compilations actually started (cache hits and coalesced waiters excluded).")
	m.sample("hawkd_compiles_total", s.compiles.value())
	m.family("hawkd_coalesced_total", "counter", "Requests served by joining an identical in-flight compilation.")
	m.sample("hawkd_coalesced_total", s.coalesced.value())
	m.family("hawkd_deadline_expired_total", "counter", "Requests that hit their deadline before a result arrived (served verdict=unknown).")
	m.sample("hawkd_deadline_expired_total", s.deadlineExpired.value())

	m.family("parserhawk_cert_checked_total", "counter", "Compilation certificates validated by the independent witness checker.")
	m.sample("parserhawk_cert_checked_total", s.certChecked.value())
	m.family("parserhawk_cert_failed_total", "counter", "Certificates the checker rejected; such results are served but never cached.")
	m.sample("parserhawk_cert_failed_total", s.certFailed.value())

	hits, misses, evictions, used, entries := s.cache.snapshot()
	m.family("hawkd_cache_hits_total", "counter", "Compile responses served from the content-addressed cache.")
	m.sample("hawkd_cache_hits_total", hits)
	m.family("hawkd_cache_misses_total", "counter", "Cache lookups that found no entry.")
	m.sample("hawkd_cache_misses_total", misses)
	m.family("hawkd_cache_evictions_total", "counter", "Entries evicted to stay within the cache byte budget.")
	m.sample("hawkd_cache_evictions_total", evictions)
	m.family("hawkd_cache_bytes", "gauge", "Approximate bytes of cached compile results.")
	m.sample("hawkd_cache_bytes", used)
	m.family("hawkd_cache_entries", "gauge", "Cached compile results.")
	m.sample("hawkd_cache_entries", entries)

	m.family("hawkd_inflight_requests", "gauge", "Compile requests currently being handled.")
	m.sample("hawkd_inflight_requests", s.inflight.Load())
	m.family("hawkd_inflight_compiles", "gauge", "Distinct compilations currently running or queued.")
	m.sample("hawkd_inflight_compiles", int64(s.group.size()))
	queued, inUse := s.sched.snapshot()
	m.family("hawkd_queue_depth", "gauge", "Compilations waiting for worker tokens.")
	m.sample("hawkd_queue_depth", queued)
	m.family("hawkd_workers_in_use", "gauge", "Portfolio worker tokens currently granted.")
	m.sample("hawkd_workers_in_use", inUse)
	m.family("hawkd_workers_capacity", "gauge", "Total portfolio worker tokens shared across requests.")
	m.sample("hawkd_workers_capacity", int64(s.sched.capacity))

	s.agg.mu.Lock()
	verdicts := make(map[string]int64, len(s.agg.verdicts))
	for k, v := range s.agg.verdicts {
		verdicts[k] = v
	}
	profileVerdicts := make(map[string]int64, len(s.agg.profileVerdicts))
	for k, v := range s.agg.profileVerdicts {
		profileVerdicts[k] = v
	}
	solver := s.agg.solver
	ladders, refuters := s.agg.laddersRun, s.agg.refutersRun
	refuted, dominated := s.agg.skeletonsRefuted, s.agg.skeletonsDominated
	published, collected, dropped := s.agg.exchangePublished, s.agg.exchangeCollected, s.agg.exchangeDropped
	s.agg.mu.Unlock()

	m.family("hawkd_compile_verdicts_total", "counter", "Finished compilations by verdict.")
	keys := make([]string, 0, len(verdicts))
	for k := range verdicts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m.labeled("hawkd_compile_verdicts_total", "verdict", k, verdicts[k])
	}

	m.family("hawkd_compile_profile_verdicts_total", "counter", "Finished compilations by target profile and verdict.")
	pkeys := make([]string, 0, len(profileVerdicts))
	for k := range profileVerdicts {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	for _, k := range pkeys {
		profile, verdict, _ := strings.Cut(k, "\x00")
		m.labeled2("hawkd_compile_profile_verdicts_total", "profile", profile, "verdict", verdict, profileVerdicts[k])
	}

	m.family("hawkd_solver_solves_total", "counter", "SAT Solve calls across all compilations.")
	m.sample("hawkd_solver_solves_total", solver.Solves)
	m.family("hawkd_solver_decisions_total", "counter", "CDCL decisions across all compilations.")
	m.sample("hawkd_solver_decisions_total", solver.Decisions)
	m.family("hawkd_solver_propagations_total", "counter", "CDCL propagations across all compilations.")
	m.sample("hawkd_solver_propagations_total", solver.Propagations)
	m.family("hawkd_solver_conflicts_total", "counter", "CDCL conflicts across all compilations.")
	m.sample("hawkd_solver_conflicts_total", solver.Conflicts)
	m.family("hawkd_solver_learned_clauses_total", "counter", "Clauses learned across all compilations.")
	m.sample("hawkd_solver_learned_clauses_total", solver.LearnedClauses)
	m.family("hawkd_solver_restarts_total", "counter", "CDCL restarts across all compilations.")
	m.sample("hawkd_solver_restarts_total", solver.Restarts)

	m.family("hawkd_portfolio_ladders_run_total", "counter", "Skeleton ladders started by the portfolio scheduler.")
	m.sample("hawkd_portfolio_ladders_run_total", ladders)
	m.family("hawkd_portfolio_refuters_run_total", "counter", "Refuter probes launched by idle portfolio workers.")
	m.sample("hawkd_portfolio_refuters_run_total", refuters)
	m.family("hawkd_portfolio_skeletons_refuted_total", "counter", "Skeletons killed by a cap-level UNSAT proof.")
	m.sample("hawkd_portfolio_skeletons_refuted_total", refuted)
	m.family("hawkd_portfolio_skeletons_dominated_total", "counter", "Skeletons dropped by the provably-cheapest bound.")
	m.sample("hawkd_portfolio_skeletons_dominated_total", dominated)
	m.family("hawkd_exchange_published_total", "counter", "Glue clauses published to portfolio exchange pools.")
	m.sample("hawkd_exchange_published_total", published)
	m.family("hawkd_exchange_collected_total", "counter", "Clauses handed to exchange consumers.")
	m.sample("hawkd_exchange_collected_total", collected)
	m.family("hawkd_exchange_dropped_total", "counter", "Exchange publishes refused at pool capacity.")
	m.sample("hawkd_exchange_dropped_total", dropped)

	m.family("hawkd_cache_key_fallback_total", "counter", "Cache keys derived from fallback text (pretty-printed or raw source) because canonicalization failed.")
	m.sample("hawkd_cache_key_fallback_total", s.cacheKeyFallback.value())

	if s.cfg.Memo != nil {
		ms := s.cfg.Memo.Stats()
		m.family("hawkd_memo_tier_hits_total", "counter", "Cross-compile memo hits by tier (tier 1 split into exact and alias replays).")
		m.labeled("hawkd_memo_tier_hits_total", "tier", "1", ms.T1Hits)
		m.labeled("hawkd_memo_tier_hits_total", "tier", "1_alias", ms.T1AliasHits)
		m.labeled("hawkd_memo_tier_hits_total", "tier", "2", ms.T2Hits)
		m.labeled("hawkd_memo_tier_hits_total", "tier", "3", ms.T3Hits)
		m.family("hawkd_memo_tier_misses_total", "counter", "Cross-compile memo misses by tier.")
		m.labeled("hawkd_memo_tier_misses_total", "tier", "1", ms.T1Misses)
		m.labeled("hawkd_memo_tier_misses_total", "tier", "2", ms.T2Misses)
		m.labeled("hawkd_memo_tier_misses_total", "tier", "3", ms.T3Misses)
		m.family("hawkd_memo_tier_stores_total", "counter", "Cross-compile memo entries stored by tier.")
		m.labeled("hawkd_memo_tier_stores_total", "tier", "1", ms.T1Stores)
		m.labeled("hawkd_memo_tier_stores_total", "tier", "2", ms.T2Stores)
		m.labeled("hawkd_memo_tier_stores_total", "tier", "3", ms.T3Stores)
		m.family("hawkd_memo_bytes_read_total", "counter", "Bytes read from the memo directory.")
		m.sample("hawkd_memo_bytes_read_total", ms.BytesRead)
		m.family("hawkd_memo_bytes_written_total", "counter", "Bytes written to the memo directory.")
		m.sample("hawkd_memo_bytes_written_total", ms.BytesWritten)
		m.family("hawkd_memo_corrupt_total", "counter", "Memo entries rejected by the integrity check and treated as misses.")
		m.sample("hawkd_memo_corrupt_total", ms.Corrupt)
	}
}
