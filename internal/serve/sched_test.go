package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerGrantsUpToCapacity(t *testing.T) {
	s := newScheduler(4)
	g, err := s.acquire(context.Background(), 8)
	if err != nil || g != 4 {
		t.Fatalf("grant %d err %v, want the full capacity 4", g, err)
	}
	s.release(g)
	if queued, inUse := s.snapshot(); queued != 0 || inUse != 0 {
		t.Fatalf("queued=%d inUse=%d after release", queued, inUse)
	}
}

func TestSchedulerWorkConserving(t *testing.T) {
	s := newScheduler(4)
	g1, _ := s.acquire(context.Background(), 3)
	if g1 != 3 {
		t.Fatalf("first grant %d, want 3", g1)
	}
	// One token free: a wide ask takes it instead of waiting.
	g2, err := s.acquire(context.Background(), 4)
	if err != nil || g2 != 1 {
		t.Fatalf("second grant %d err %v, want the 1 free token", g2, err)
	}
	s.release(g1)
	s.release(g2)
}

func TestSchedulerFIFOUnderContention(t *testing.T) {
	s := newScheduler(1)
	first, _ := s.acquire(context.Background(), 1)

	const n = 5
	var order []int
	var mu sync.Mutex
	var started sync.WaitGroup
	var finished sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		finished.Add(1)
		go func(i int) {
			defer finished.Done()
			// Queue in index order: each goroutine waits for its turn to
			// enqueue so arrival order is deterministic.
			for {
				if q, _ := s.snapshot(); int(q) == i {
					break
				}
				time.Sleep(time.Millisecond)
			}
			started.Done()
			g, err := s.acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.release(g)
		}(i)
	}
	started.Wait()
	s.release(first)
	finished.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order %v, want FIFO", order)
		}
	}
}

func TestSchedulerCancelWhileQueued(t *testing.T) {
	s := newScheduler(1)
	g, _ := s.acquire(context.Background(), 1)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.acquire(ctx, 1)
		errCh <- err
	}()
	for {
		if q, _ := s.snapshot(); q == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("acquire returned without error despite cancellation")
	}
	if q, _ := s.snapshot(); q != 0 {
		t.Fatalf("abandoned waiter still queued (depth %d)", q)
	}
	s.release(g)
	// The pool must be whole again.
	g2, err := s.acquire(context.Background(), 1)
	if err != nil || g2 != 1 {
		t.Fatalf("pool corrupted after cancellation: grant %d err %v", g2, err)
	}
	s.release(g2)
}

func TestSchedulerNeverOversubscribes(t *testing.T) {
	const capacity = 3
	s := newScheduler(capacity)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(want int) {
			defer wg.Done()
			g, err := s.acquire(context.Background(), want)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			cur := inUse.Add(int64(g))
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inUse.Add(-int64(g))
			s.release(g)
		}(1 + i%capacity)
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("peak tokens in use %d exceeds capacity %d", p, capacity)
	}
}
