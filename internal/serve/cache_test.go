package serve

import (
	"fmt"
	"testing"
)

func testOutcome(size int64) *outcome {
	return &outcome{resp: CompileResponse{Verdict: VerdictOK}, cacheable: true, size: size}
}

func TestLRUHitMissCounters(t *testing.T) {
	c := newLRUCache(100)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.add("a", testOutcome(10))
	if _, ok := c.get("a"); !ok {
		t.Fatal("miss after add")
	}
	hits, misses, evictions, used, entries := c.snapshot()
	if hits != 1 || misses != 1 || evictions != 0 || used != 10 || entries != 1 {
		t.Fatalf("snapshot hits=%d misses=%d evictions=%d used=%d entries=%d", hits, misses, evictions, used, entries)
	}
}

func TestLRUEvictsColdEnd(t *testing.T) {
	c := newLRUCache(30)
	c.add("a", testOutcome(10))
	c.add("b", testOutcome(10))
	c.add("c", testOutcome(10))
	c.get("a") // warm a; b is now the cold end
	c.add("d", testOutcome(10))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived; LRU should have evicted the cold end")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted, want only b gone", k)
		}
	}
	_, _, evictions, used, entries := c.snapshot()
	if evictions != 1 || used != 30 || entries != 3 {
		t.Fatalf("evictions=%d used=%d entries=%d", evictions, used, entries)
	}
}

func TestLRUOversizedEntrySkipped(t *testing.T) {
	c := newLRUCache(30)
	c.add("a", testOutcome(10))
	c.add("huge", testOutcome(31))
	if _, ok := c.get("huge"); ok {
		t.Fatal("entry larger than the whole budget was stored")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("existing entry was evicted for an unstorable one")
	}
}

func TestLRUReAddRefreshes(t *testing.T) {
	c := newLRUCache(100)
	c.add("a", testOutcome(10))
	c.add("a", testOutcome(20))
	_, _, _, used, entries := c.snapshot()
	if used != 20 || entries != 1 {
		t.Fatalf("used=%d entries=%d after re-add, want 20 and 1", used, entries)
	}
}

func TestLRUBudgetHeldUnderChurn(t *testing.T) {
	c := newLRUCache(95)
	for i := 0; i < 200; i++ {
		c.add(fmt.Sprintf("k%d", i), testOutcome(10))
		if _, _, _, used, _ := c.snapshot(); used > 95 {
			t.Fatalf("budget exceeded: %d > 95 at insert %d", used, i)
		}
	}
	_, _, evictions, used, entries := c.snapshot()
	if entries != 9 || used != 90 || evictions != 191 {
		t.Fatalf("entries=%d used=%d evictions=%d", entries, used, evictions)
	}
}
