// Package serve wraps core.Compile as a long-running HTTP/JSON compile
// service for concurrent clients — the hawkd daemon.
//
// The service adds four things on top of the library compiler:
//
//   - A content-addressed result cache: completed deterministic outcomes
//     are keyed by the hash of (canonical spec text, profile name,
//     synthesis-relevant options fingerprint), so an identical spec never
//     pays for synthesis twice, no matter how it was formatted or which
//     client sent it.
//   - Single-flight request coalescing: N identical in-flight requests
//     run one compilation and fan the result out.
//   - Per-request deadlines mapped onto the compiler's context
//     cancellation: a request that runs out of time gets verdict
//     "unknown" — never a wrong verdict — and a compile nobody is
//     waiting for anymore is aborted mid-search.
//   - A fair semaphore scheduler that shares one portfolio worker budget
//     (core.Options.Workers) across concurrent compilations.
//
// Identity contract: for any request the service can serve, the verdict,
// entry table, and stage count equal what the parserhawk CLI prints for
// the same spec, profile, and options. CI enforces this with the
// service-identity job (cmd/hawkidentity).
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/memo"
	"parserhawk/internal/p4"
	"parserhawk/internal/pir"
	"parserhawk/internal/tables"
)

// Verdicts of a compile request. Only ok, no_solution, and lint_error are
// deterministic properties of the request and therefore cacheable;
// unknown means "no verdict within this request's circumstances" and
// error covers unexpected compiler failures.
const (
	VerdictOK         = "ok"
	VerdictNoSolution = "no_solution"
	VerdictLintError  = "lint_error"
	VerdictUnknown    = "unknown"
	VerdictError      = "error"
	// VerdictMulti marks a multi-target envelope: the per-target verdicts
	// live in CompileResponse.Targets.
	VerdictMulti = "multi"
)

// Cache dispositions reported in CompileResponse.Cache.
const (
	CacheHit       = "hit"       // served from the result cache
	CacheMiss      = "miss"      // this request led the compilation
	CacheCoalesced = "coalesced" // joined an identical in-flight compilation
)

// Config parameterizes a Server. Zero values select the documented
// defaults.
type Config struct {
	// Profiles are the resolvable target devices; nil means every named
	// profile the repository defines (tables.Profiles).
	Profiles []hw.Profile
	// DefaultProfile is used when a request names none (default "tofino").
	DefaultProfile string
	// CacheBytes bounds the result cache (default 64 MiB).
	CacheBytes int64
	// DefaultTimeout bounds a request's wait when it sends no ?timeout=
	// (default 60s); MaxTimeout caps what ?timeout= may ask for (default
	// 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CompileTimeout bounds one compilation server-side, independent of
	// who is waiting (default 5m).
	CompileTimeout time.Duration
	// Workers is the shared portfolio token pool (default GOMAXPROCS).
	Workers int
	// MaxBodyBytes bounds a request body (default 4 MiB).
	MaxBodyBytes int64
	// Memo, when set, routes compilations through the cross-compile memo
	// cache (internal/memo): whole-compile replays, skeleton-UNSAT facts,
	// and glue-clause warm starts shared across restarts via -memo-dir.
	// The server's own LRU still fronts it at response granularity.
	Memo *memo.Cache
}

func (c Config) withDefaults() Config {
	if c.Profiles == nil {
		c.Profiles = tables.Profiles()
	}
	if c.DefaultProfile == "" {
		c.DefaultProfile = "tofino"
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.CompileTimeout <= 0 {
		c.CompileTimeout = 5 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	// Source is the parser specification in the P4-16 subset.
	Source string `json:"source"`
	// Profile names the target device (GET /v1/profiles lists them);
	// empty selects the server default.
	Profile string `json:"profile,omitempty"`
	// Targets names several target devices at once: the spec is compiled
	// for each (sharing the cache, coalescing, and worker pool with
	// single-target requests) and the response is a VerdictMulti envelope
	// with one entry per target, in request order. Mutually exclusive with
	// Profile.
	Targets []string `json:"targets,omitempty"`
	// Timeout bounds how long this request waits for a verdict, as a Go
	// duration string; the ?timeout= query parameter overrides it.
	Timeout string `json:"timeout,omitempty"`
	// Options overrides synthesis options; nil means DefaultOptions.
	Options *CompileOptions `json:"options,omitempty"`
}

// CompileOptions is the request-settable slice of core.Options.
type CompileOptions struct {
	// Naive selects the paper's Orig mode (every optimization off).
	Naive bool `json:"naive,omitempty"`
	// MaxIterations is the loop unrolling bound (0 = derived).
	MaxIterations int `json:"max_iterations,omitempty"`
	// MaxEntryBudget caps the search-budget ladder, in the target
	// objective's units (core.Options.MaxBudget). The wire name predates
	// the objective-generic ladder and is kept for client compatibility.
	MaxEntryBudget int `json:"max_entry_budget,omitempty"`
	// Workers is the portfolio width this compile would use standalone;
	// the scheduler may grant fewer under load (0 = server capacity).
	// Outcome-invariant, so it is not part of the cache key.
	Workers int `json:"workers,omitempty"`
	// Seed drives CEGIS test-case generation (0 = library default).
	Seed int64 `json:"seed,omitempty"`
}

// CompileResponse is the body of a POST /v1/compile answer. Every compile
// outcome — including unknown — is HTTP 200; non-200 means the request
// itself was invalid and no verdict exists.
type CompileResponse struct {
	Verdict string `json:"verdict"`
	Reason  string `json:"reason,omitempty"`
	// Profile names the device this verdict is for; always set on compile
	// outcomes, so multi-target entries are self-describing.
	Profile string `json:"profile,omitempty"`
	// Targets holds the per-target responses of a VerdictMulti envelope,
	// in request order.
	Targets []CompileResponse `json:"targets,omitempty"`
	// Program is the TCAM entry table rendered exactly as the parserhawk
	// CLI prints it; ProgramJSON is the deployment encoding.
	Program     string          `json:"program,omitempty"`
	ProgramJSON json.RawMessage `json:"program_json,omitempty"`
	Entries     int             `json:"entries"`
	Stages      int             `json:"stages"`
	MaxKeyWidth int             `json:"max_key_width,omitempty"`
	Stats       *core.Stats     `json:"stats,omitempty"`
	// Certificate is the compile's proof-carrying artifact (cert.Certificate
	// JSON): witness-checked server-side before caching, and re-checkable by
	// the client with hawkcheck. CertificateError is set instead when the
	// server-side check failed; such responses are never cached.
	Certificate      json.RawMessage `json:"certificate,omitempty"`
	CertificateError string          `json:"certificate_error,omitempty"`
	// Cache reports how this response was produced: hit, miss, or
	// coalesced. Cached responses carry the original compilation's Stats.
	Cache     string  `json:"cache"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ProfileInfo is one entry of GET /v1/profiles.
type ProfileInfo struct {
	Name           string `json:"name"`
	Arch           string `json:"arch"`
	KeyLimit       int    `json:"key_limit"`
	TCAMLimit      int    `json:"tcam_limit"`
	LookaheadLimit int    `json:"lookahead_limit"`
	StageLimit     int    `json:"stage_limit,omitempty"`
	ExtractLimit   int    `json:"extract_limit"`
	WindowBits     int    `json:"window_bits,omitempty"`
	Objective      string `json:"objective"`
	Default        bool   `json:"default,omitempty"`
}

// outcome is one compilation's shareable result: the response body minus
// the per-request fields (Cache, ElapsedMS), its cacheability, and its
// approximate heap footprint for the cache budget.
type outcome struct {
	resp      CompileResponse
	cacheable bool
	size      int64
}

// Server implements the hawkd HTTP API over one shared cache, flight
// group, and worker pool.
type Server struct {
	cfg      Config
	profiles map[string]hw.Profile
	order    []string // profile listing order
	cache    *lruCache
	group    *flightGroup
	sched    *scheduler
	agg      *aggregates

	// compileFn is core.CompileContext, replaceable by tests that need a
	// compile with controlled timing.
	compileFn func(ctx context.Context, spec *pir.Spec, profile hw.Profile, opts core.Options) (*core.Result, error)

	requests         counter
	compiles         counter
	coalesced        counter
	deadlineExpired  counter
	certChecked      counter
	certFailed       counter
	cacheKeyFallback counter
	inflight         atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		profiles:  map[string]hw.Profile{},
		cache:     newLRUCache(cfg.CacheBytes),
		group:     newFlightGroup(),
		sched:     newScheduler(cfg.Workers),
		agg:       newAggregates(),
		compileFn: core.CompileContext,
	}
	if cfg.Memo != nil {
		s.compileFn = cfg.Memo.CompileContext
	}
	for _, p := range cfg.Profiles {
		if _, ok := s.profiles[p.Name]; ok {
			continue
		}
		s.profiles[p.Name] = p
		s.order = append(s.order, p.Name)
	}
	return s
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.handleCompile)
	mux.HandleFunc("/v1/profiles", s.handleProfiles)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// httpError answers a request-level failure as JSON with the given
// status. Compile outcomes never travel this path.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	infos := make([]ProfileInfo, 0, len(s.order))
	for _, name := range s.order {
		p := s.profiles[name]
		infos = append(infos, ProfileInfo{
			Name:           p.Name,
			Arch:           p.Arch.String(),
			KeyLimit:       p.KeyLimit,
			TCAMLimit:      p.TCAMLimit,
			LookaheadLimit: p.LookaheadLimit,
			StageLimit:     p.StageLimit,
			ExtractLimit:   p.ExtractLimit,
			WindowBits:     p.WindowBits,
			Objective:      p.Objective.For(p.Arch).String(),
			Default:        p.Name == s.cfg.DefaultProfile,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(infos)
}

// waitTimeout resolves this request's deadline: ?timeout= wins over the
// body field, both clamped to MaxTimeout; absent both, the server
// default applies.
func (s *Server) waitTimeout(r *http.Request, req *CompileRequest) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		raw = req.Timeout
	}
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("invalid timeout %q: must be positive", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// buildOptions maps request options onto core.Options and returns them
// with the portfolio width the compile would use standalone (the
// scheduler's ask).
func (s *Server) buildOptions(ro *CompileOptions) (core.Options, int) {
	opts := core.DefaultOptions()
	// The service always asks for a certificate: every successful compile
	// is witness-checked before it may enter the cache, and the artifact
	// rides along in the response for clients that want to re-check it.
	// EmitCertificate is outcome-invariant, so this does not perturb the
	// options fingerprint or the service-vs-CLI identity gate.
	opts.EmitCertificate = true
	if ro == nil {
		return opts, s.cfg.Workers
	}
	if ro.Naive {
		opts = core.NaiveOptions()
		opts.EmitCertificate = true
	}
	if ro.MaxIterations > 0 {
		opts.MaxIterations = ro.MaxIterations
	}
	if ro.MaxEntryBudget > 0 {
		opts.MaxBudget = ro.MaxEntryBudget
	}
	if ro.Seed != 0 {
		opts.Seed = ro.Seed
	}
	want := s.cfg.Workers
	if ro.Workers > 0 {
		want = ro.Workers
	}
	return opts, want
}

// cacheKey derives the content address of one compilation: the canonical
// spec form (pir.Canonicalize) — so formatting, comments, state renames,
// rule reorderings, and field-layout shifts that normalize away do not
// fragment the cache — plus the full profile fingerprint and the
// outcome-relevant options fingerprint. The profile contributes its
// Fingerprint, not its Name: names do not pin the architecture or the
// objective, and a name-keyed cache could alias a tofino result onto an
// fpga request if two registrations ever shared a name (see
// hw.Profile.Fingerprint).
//
// Alias requests coalescing onto one entry means the cached response —
// program text, program JSON, certificate — is rendered in the names of
// whichever alias compiled first; verdict, entries, and stages are
// identical across aliases by the canonicalizer's soundness argument.
//
// When canonicalization fails the key falls back to the pretty-printed
// source, and failing that to the raw request source; each fallback is
// counted (hawkd_cache_key_fallback_total) instead of silently keying on
// text that spurious formatting differences would fragment.
func (s *Server) cacheKey(spec *pir.Spec, source string, profile hw.Profile, opts core.Options) string {
	var canonical string
	if canon, _, err := pir.Canonicalize(spec); err == nil {
		canonical = canon.String()
	} else {
		s.cacheKeyFallback.inc()
		if printed, perr := p4.Print(spec); perr == nil {
			canonical = printed
		} else {
			s.cacheKeyFallback.inc()
			canonical = source
		}
	}
	h := sha256.New()
	h.Write([]byte(canonical))
	h.Write([]byte{0})
	h.Write([]byte(profile.Fingerprint()))
	h.Write([]byte{0})
	h.Write([]byte(opts.Fingerprint()))
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	s.requests.inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var req CompileRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Source == "" {
		httpError(w, http.StatusBadRequest, "missing spec source")
		return
	}
	wait, err := s.waitTimeout(r, &req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := p4.ParseSpec(req.Source)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing spec: %v", err)
		return
	}
	opts, want := s.buildOptions(req.Options)

	reqCtx, cancelWait := context.WithTimeout(r.Context(), wait)
	defer cancelWait()

	if len(req.Targets) > 0 {
		if req.Profile != "" {
			httpError(w, http.StatusBadRequest, "profile and targets are mutually exclusive")
			return
		}
		profiles := make([]hw.Profile, len(req.Targets))
		for i, name := range req.Targets {
			p, ok := s.profiles[name]
			if !ok {
				httpError(w, http.StatusBadRequest, "unknown target %q (known: %s)",
					name, strings.Join(s.order, ", "))
				return
			}
			profiles[i] = p
		}
		// Fan the spec out across the targets concurrently. Each target is
		// an ordinary single-flight compilation — same cache keys, same
		// coalescing — so a multi-target request and a single-target request
		// for one of its members share work. The portfolio worker budget is
		// split across the fan-out; the scheduler keeps the pool itself from
		// oversubscribing.
		wantEach := want / len(profiles)
		if wantEach < 1 {
			wantEach = 1
		}
		results := make([]CompileResponse, len(profiles))
		var wg sync.WaitGroup
		for i, p := range profiles {
			wg.Add(1)
			go func(i int, p hw.Profile) {
				defer wg.Done()
				out, disposition := s.compileVia(reqCtx, spec, req.Source, p, opts, wantEach)
				resp := out.resp
				resp.Profile = p.Name
				resp.Cache = disposition
				results[i] = resp
			}(i, p)
		}
		wg.Wait()
		env := &outcome{resp: CompileResponse{Verdict: VerdictMulti, Targets: results}}
		s.respond(w, env, VerdictMulti, start)
		return
	}

	profName := req.Profile
	if profName == "" {
		profName = s.cfg.DefaultProfile
	}
	profile, ok := s.profiles[profName]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown profile %q (GET /v1/profiles lists them)", profName)
		return
	}
	out, disposition := s.compileVia(reqCtx, spec, req.Source, profile, opts, want)
	s.respond(w, out, disposition, start)
}

// compileVia serves one (spec, profile, options) compilation through the
// cache and the single-flight group, waiting no longer than reqCtx allows.
// It returns the outcome and its cache disposition; on a deadline it
// returns verdict unknown while the flight keeps running for any other
// waiters.
func (s *Server) compileVia(reqCtx context.Context, spec *pir.Spec, source string, profile hw.Profile, opts core.Options, want int) (*outcome, string) {
	key := s.cacheKey(spec, source, profile, opts)
	if out, ok := s.cache.get(key); ok {
		return out, CacheHit
	}

	// Join (or start) the single flight for this key. The compile runs
	// under the server's compile timeout, not any one request's deadline:
	// requests bound their wait, and the flight context dies when the
	// last waiter walks away.
	f, leader := s.group.join(key,
		func() (context.Context, context.CancelFunc) {
			return context.WithTimeout(context.Background(), s.cfg.CompileTimeout)
		},
		func(ctx context.Context) *outcome {
			out := s.compileOutcome(ctx, spec, profile, opts, want)
			if out.cacheable {
				s.cache.add(key, out)
			}
			return out
		})

	disposition := CacheMiss
	if !leader {
		disposition = CacheCoalesced
		s.coalesced.inc()
	}
	select {
	case <-f.done:
		out := f.out
		s.group.leave(key, f)
		return out, disposition
	case <-reqCtx.Done():
		s.group.leave(key, f)
		s.deadlineExpired.inc()
		reason := "deadline exceeded before a verdict was available"
		if errors.Is(reqCtx.Err(), context.Canceled) {
			reason = "request canceled"
		}
		return &outcome{resp: CompileResponse{Verdict: VerdictUnknown, Profile: profile.Name, Reason: reason}}, disposition
	}
}

// compileOutcome runs one compilation under the shared worker pool and
// classifies the result. Outcomes that are deterministic functions of
// (spec, profile, options) — ok, no_solution, lint_error — are marked
// cacheable; interrupted searches (timeout, cancellation) answer unknown
// and are never cached, because retrying with more time could produce a
// real verdict.
func (s *Server) compileOutcome(ctx context.Context, spec *pir.Spec, profile hw.Profile, opts core.Options, want int) *outcome {
	granted, err := s.sched.acquire(ctx, want)
	if err != nil {
		out := &outcome{resp: CompileResponse{
			Verdict: VerdictUnknown,
			Profile: profile.Name,
			Reason:  "compile aborted while queued for workers",
		}}
		s.agg.record(profile.Name, VerdictUnknown, nil)
		return out
	}
	defer s.sched.release(granted)

	opts.Workers = granted
	opts.Timeout = 0 // the flight context is the sole deadline source
	s.compiles.inc()
	res, cerr := s.compileFn(ctx, spec, profile, opts)

	out := &outcome{}
	switch {
	case cerr == nil:
		out.resp = CompileResponse{
			Verdict:     VerdictOK,
			Profile:     profile.Name,
			Program:     res.Program.String(),
			Entries:     res.Resources.Entries,
			Stages:      res.Resources.Stages,
			MaxKeyWidth: res.Resources.MaxKeyWidth,
			Stats:       &res.Stats,
		}
		if data, jerr := res.Program.EncodeJSON(); jerr == nil {
			out.resp.ProgramJSON = data
		}
		out.cacheable = true
		// Certificate gate: an ok verdict whose certificate fails the
		// independent checker is still served (the CEGIS verifier vouched
		// for it) but never cached — a cache must not launder an
		// unverifiable result into many responses.
		s.certChecked.inc()
		if res.Certificate == nil {
			s.certFailed.inc()
			out.cacheable = false
			out.resp.CertificateError = "compile produced no certificate"
		} else if serr := res.Certificate.SelfCheck(); serr != nil {
			s.certFailed.inc()
			out.cacheable = false
			out.resp.CertificateError = serr.Error()
		} else if data, jerr := res.Certificate.Encode(); jerr == nil {
			out.resp.Certificate = data
		}
	case errors.Is(cerr, core.ErrTimeout), ctx.Err() != nil:
		out.resp = CompileResponse{Verdict: VerdictUnknown, Profile: profile.Name, Reason: "compilation interrupted: " + cerr.Error()}
	case errors.Is(cerr, core.ErrNoSolution):
		out.resp = CompileResponse{Verdict: VerdictNoSolution, Profile: profile.Name, Reason: cerr.Error()}
		out.cacheable = true
	default:
		var lintErr *core.LintError
		if errors.As(cerr, &lintErr) {
			out.resp = CompileResponse{Verdict: VerdictLintError, Profile: profile.Name, Reason: cerr.Error()}
			out.cacheable = true
		} else {
			out.resp = CompileResponse{Verdict: VerdictError, Profile: profile.Name, Reason: cerr.Error()}
		}
	}
	out.size = outcomeSize(out)
	s.agg.record(profile.Name, out.resp.Verdict, out.resp.Stats)
	return out
}

// outcomeSize approximates an outcome's heap footprint for the cache
// budget: the variable-size payloads plus a fixed overhead for the
// structs themselves.
func outcomeSize(out *outcome) int64 {
	const overhead = 1024
	n := int64(len(out.resp.Program) + len(out.resp.ProgramJSON) + len(out.resp.Reason) + len(out.resp.Certificate))
	if out.resp.Stats != nil {
		if data, err := json.Marshal(out.resp.Stats); err == nil {
			n += int64(len(data))
		}
	}
	return n + overhead
}

// respond writes one outcome with its per-request disposition.
func (s *Server) respond(w http.ResponseWriter, out *outcome, disposition string, start time.Time) {
	resp := out.resp // shallow copy; shared fields are immutable
	resp.Cache = disposition
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&resp); err != nil {
		// The header is gone; nothing recoverable remains.
		return
	}
}
