package tables

import (
	"reflect"
	"testing"
	"time"

	"parserhawk/internal/core"
)

func TestRunStatsRoundTrip(t *testing.T) {
	in := []RunStats{
		{
			Program: "Sai V1",
			Target:  "tofino-scaled",
			Mode:    "opt",
			OK:      true,
			Entries: 7,
			Stages:  1,
			Seconds: 1.25,

			StatesPrePrune:  5,
			StatesPostPrune: 4,
			RulesPrePrune:   9,
			RulesPostPrune:  8,
			Stats: core.Stats{
				Lint: core.LintStats{
					Warnings: 2, StatesBefore: 5, StatesAfter: 4,
					RulesBefore: 9, RulesAfter: 8,
				},
				CEGISIterations: 9,
				SkeletonsTried:  2,
				BudgetsTried:    3,
				EntryBudget:     7,
				SearchSpaceBits: 412,
				SolverVars:      15034,
				Elapsed:         1250 * time.Millisecond,
				SynthesisTime:   900 * time.Millisecond,
				VerifyTime:      200 * time.Millisecond,
				TestCases:       11,
				Solver: core.SolverStats{
					Solves:          12,
					Decisions:       40321,
					Propagations:    991234,
					Conflicts:       812,
					LearnedClauses:  800,
					LearnedLiterals: 6400,
					Restarts:        3,
					Clauses:         51234,
					Gates:           20110,
					Vars:            15100,
				},
				Iterations: []core.IterationStats{
					{Budget: 6, Examples: 2, Status: "unsat", SolveTime: 10 * time.Millisecond,
						Solver: core.SolverStats{Solves: 1, Decisions: 100}},
					{Budget: 7, Examples: 2, Status: "sat", SolveTime: 80 * time.Millisecond,
						VerifyTime: 5 * time.Millisecond,
						Solver:     core.SolverStats{Solves: 1, Decisions: 900, Conflicts: 12}},
				},
			},
		},
		{
			Program: "Sai V1",
			Target:  "tofino-scaled",
			Mode:    "orig",
			Error:   core.ErrTimeout.Error(),
			Seconds: 10,
		},
	}
	data, err := EncodeRunStats(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRunStats(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the record:\n in: %+v\nout: %+v", in, out)
	}
}

func TestDecodeRunStatsRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeRunStats([]byte(`[{"program":"x","bogus_counter":1}]`)); err == nil {
		t.Error("unknown field must be rejected, not silently dropped")
	}
}

// TestStatsSinkReceivesRuns runs one real (tiny) compilation through the
// harness path and checks the sink observes it with live solver counters.
func TestStatsSinkReceivesRuns(t *testing.T) {
	var runs []RunStats
	cfg := Config{
		OptTimeout: 30 * time.Second,
		Filter:     "Multi-key (same pkt field) -R5-R3",
		StatsSink:  func(r RunStats) { runs = append(runs, r) },
	}
	rows := Table3(cfg)
	if len(rows) == 0 {
		t.Fatal("filter matched no benchmarks")
	}
	if len(runs) < 2 { // at least tofino + ipu per matched benchmark
		t.Fatalf("sink saw %d runs, want >= 2", len(runs))
	}
	for _, r := range runs {
		if r.Mode != "opt" {
			t.Errorf("unexpected mode %q without RunOrig", r.Mode)
		}
		if !r.OK {
			t.Errorf("%s/%s failed: %s", r.Program, r.Target, r.Error)
			continue
		}
		if r.Stats.Solver.Solves == 0 || r.Stats.Solver.Propagations == 0 || r.Stats.Solver.Vars == 0 {
			t.Errorf("%s/%s: solver counters look dead: %+v", r.Program, r.Target, r.Stats.Solver)
		}
		// Opt mode always lints, so the pre-prune sizes reflect the spec.
		if r.StatesPrePrune == 0 || r.RulesPrePrune == 0 ||
			r.StatesPostPrune > r.StatesPrePrune || r.RulesPostPrune > r.RulesPrePrune {
			t.Errorf("%s/%s: prune counters wrong: %d->%d states, %d->%d rules",
				r.Program, r.Target, r.StatesPrePrune, r.StatesPostPrune, r.RulesPrePrune, r.RulesPostPrune)
		}
	}
	if _, err := EncodeRunStats(runs); err != nil {
		t.Fatal(err)
	}
}
