// Package tables regenerates every table and figure of the paper's
// evaluation (§7) from this repository's implementations: ParserHawk
// (internal/core) against the commercial-compiler models
// (internal/vendorc) and DPParserGen (internal/dpgen) over the benchmark
// suite (internal/benchdata).
//
// The hardware profiles here are the scaled equivalents of the paper's
// devices (see DESIGN.md): structure and limits are proportional to the
// real Tofino/IPU parsers, shrunk so that single-core synthesis finishes
// in seconds. Absolute numbers therefore differ from the paper; the
// comparisons — who compiles, who rejects, who spends fewer entries or
// stages, and how much the optimizations speed synthesis up — are the
// reproduced result.
package tables

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/memo"
	"parserhawk/internal/vendorc"
)

// TofinoScaled is the single-TCAM-table profile used for the Tofino
// columns of Tables 3 and 5.
func TofinoScaled() hw.Profile {
	return hw.Profile{
		Name:           "tofino-scaled",
		Arch:           hw.SingleTable,
		KeyLimit:       12,
		TCAMLimit:      24,
		LookaheadLimit: 24,
		ExtractLimit:   64,
	}
}

// IPUScaled is the pipelined profile used for the IPU columns.
func IPUScaled() hw.Profile {
	return hw.Profile{
		Name:           "ipu-scaled",
		Arch:           hw.Pipelined,
		KeyLimit:       12,
		TCAMLimit:      24,
		LookaheadLimit: 24,
		StageLimit:     8,
		ExtractLimit:   12,
	}
}

// FPGAScaled is the streaming-pipeline profile used for the FPGA columns:
// the scaled equivalent of hw.FPGAStreaming, with the window shrunk in
// proportion to the scaled key and lookahead limits.
func FPGAScaled() hw.Profile {
	return hw.Profile{
		Name:           "fpga-scaled",
		Arch:           hw.Streaming,
		KeyLimit:       12,
		TCAMLimit:      24,
		LookaheadLimit: 24,
		StageLimit:     12,
		ExtractLimit:   24,
		WindowBits:     24,
		Objective:      hw.MinimizeDepth,
	}
}

// Config controls a harness run.
type Config struct {
	// OptTimeout bounds each optimized compilation (default 2 min).
	OptTimeout time.Duration
	// OrigTimeout bounds each naive ("Orig") compilation; timed-out cells
	// report ">OrigTimeout" exactly as the paper reports ">86400" (default
	// 10 s).
	OrigTimeout time.Duration
	// RunOrig enables the naive-mode columns. Off, the harness reports
	// only the optimized results (fast mode for CI).
	RunOrig bool
	// Filter restricts benchmarks to those whose name contains the string.
	// Comma-separated alternatives select the union ("Parse,Deep" matches
	// both the Table 3 protocol suites and the deep-encapsulation corpus).
	Filter string
	// FreshEncode disables ParserHawk's incremental solving sessions:
	// every entry-budget rung rebuilds its solver from scratch. The A/B
	// smoke job runs the harness in both modes and compares.
	FreshEncode bool
	// Workers is passed through to core.Options.Workers: how many portfolio
	// goroutines each compilation runs its skeleton ladders and refuter
	// probes on. Zero means GOMAXPROCS; 1 reproduces the sequential
	// compiler exactly. The harness itself runs benchmarks one at a time —
	// parallelism lives inside the compile, where the portfolio scheduler
	// guarantees identical verdicts, entry tables, and stage counts at
	// every worker count (only timing fields vary).
	Workers int
	// NoExchange disables the portfolio's learnt-clause exchange (see
	// core.Options.NoExchange); the A/B harness uses it to measure what
	// clause sharing is worth.
	NoExchange bool
	// StatsSink, when non-nil, receives one RunStats record per ParserHawk
	// compilation the harness performs (both opt and orig modes). hawkbench
	// -stats uses it to collect the solver-level JSON report.
	StatsSink func(RunStats)
	// Memo, when non-nil, routes optimized-mode compilations through the
	// cross-compile memo (hawkbench -memo-dir). Naive-mode runs stay on the
	// plain compiler: they exist as a timing baseline, and serving them
	// from a cache would measure the cache, not the compiler. Each opt
	// record's RunStats.Memo carries the per-compilation counter movement.
	Memo *memo.Cache
}

// record reports one compilation into the sink, if any.
func (c Config) record(r RunStats) {
	if c.StatsSink != nil {
		c.StatsSink(r)
	}
}

func (c Config) withDefaults() Config {
	if c.OptTimeout == 0 {
		c.OptTimeout = 2 * time.Minute
	}
	if c.OrigTimeout == 0 {
		c.OrigTimeout = 10 * time.Second
	}
	return c
}

// TargetResult holds one compiler's outcome on one benchmark/target.
type TargetResult struct {
	Entries     int
	Stages      int
	SearchBits  int
	OptSeconds  float64
	OrigSeconds float64 // naive mode; == OrigTimeout when censored
	OrigTimeout bool
	Speedup     float64 // Orig/Opt; a lower bound when censored
	Err         string  // non-empty when compilation failed
}

// T3Row is one row of Table 3.
type T3Row struct {
	Program      string
	Tofino       TargetResult // ParserHawk on the Tofino profile
	VendorTofino TargetResult // Tofino compiler model
	IPU          TargetResult // ParserHawk on the IPU profile
	VendorIPU    TargetResult // IPU compiler model
	FPGA         TargetResult // ParserHawk on the FPGA streaming profile
	VendorFPGA   TargetResult // FPGA streaming baseline model
}

// Table3 runs every benchmark through ParserHawk (optimized, and
// optionally naive) and the vendor-compiler models on all three targets.
func Table3(cfg Config) []T3Row {
	return runTable3(benchdata.All(), TofinoScaled(), IPUScaled(), FPGAScaled(), cfg)
}

// runTable3 compiles the benchmark set on every target, one benchmark at
// a time; cfg.Workers parallelizes inside each compilation (the portfolio
// scheduler), not across rows, so wall-clock and solver counters attribute
// cleanly to individual benchmarks and the stats stream arrives in order
// by construction.
func runTable3(benches []benchdata.Benchmark, tof, ipu, fpga hw.Profile, cfg Config) []T3Row {
	cfg = cfg.withDefaults()
	var rows []T3Row
	for _, b := range benches {
		if !matchFilter(b.Name(), cfg.Filter) {
			continue
		}
		rows = append(rows, table3Row(b, tof, ipu, fpga, cfg))
	}
	return rows
}

// matchFilter implements Config.Filter: empty matches everything, and each
// comma-separated alternative is a substring test against the benchmark
// name.
func matchFilter(name, filter string) bool {
	if filter == "" {
		return true
	}
	for _, alt := range strings.Split(filter, ",") {
		if alt = strings.TrimSpace(alt); alt != "" && strings.Contains(name, alt) {
			return true
		}
	}
	return false
}

func table3Row(b benchdata.Benchmark, tof, ipu, fpga hw.Profile, cfg Config) T3Row {
	row := T3Row{Program: b.Name()}
	row.Tofino = runParserHawk(b, tof, cfg)
	row.IPU = runParserHawk(b, ipu, cfg)
	row.FPGA = runParserHawk(b, fpga, cfg)
	row.VendorTofino = runVendor(b, tof)
	row.VendorIPU = runVendor(b, ipu)
	row.VendorFPGA = runVendor(b, fpga)
	return row
}

func runParserHawk(b benchdata.Benchmark, profile hw.Profile, cfg Config) TargetResult {
	opts := core.DefaultOptions()
	opts.Timeout = cfg.OptTimeout
	opts.MaxIterations = b.MaxIterations
	opts.FreshEncode = cfg.FreshEncode
	opts.Workers = cfg.Workers
	opts.NoExchange = cfg.NoExchange
	before := cfg.Memo.Stats()
	t0 := time.Now()
	var res *core.Result
	var err error
	if cfg.Memo != nil {
		res, err = cfg.Memo.CompileContext(context.Background(), b.Spec, profile, opts)
	} else {
		res, err = core.Compile(b.Spec, profile, opts)
	}
	out := TargetResult{OptSeconds: time.Since(t0).Seconds()}
	rec := RunStats{Program: b.Name(), Target: profile.Name, Mode: "opt",
		FreshEncode: cfg.FreshEncode, Seconds: out.OptSeconds}
	if cfg.Memo != nil {
		rec.Memo = memoDelta(cfg.Memo.Stats().Sub(before))
	}
	if err != nil {
		out.Err = err.Error()
		rec.Error = out.Err
		cfg.record(rec)
		return out
	}
	out.Entries = res.Resources.Entries
	out.Stages = res.Resources.Stages
	out.SearchBits = res.Stats.SearchSpaceBits
	rec.OK = true
	rec.Entries = out.Entries
	rec.Stages = out.Stages
	rec.Stats = res.Stats
	rec.StatesPrePrune = res.Stats.Lint.StatesBefore
	rec.StatesPostPrune = res.Stats.Lint.StatesAfter
	rec.RulesPrePrune = res.Stats.Lint.RulesBefore
	rec.RulesPostPrune = res.Stats.Lint.RulesAfter
	cfg.record(rec)

	if cfg.RunOrig {
		naive := core.NaiveOptions()
		naive.Timeout = cfg.OrigTimeout
		naive.MaxIterations = b.MaxIterations
		naive.FreshEncode = cfg.FreshEncode
		t1 := time.Now()
		nres, nerr := core.Compile(b.Spec, profile, naive)
		out.OrigSeconds = time.Since(t1).Seconds()
		nrec := RunStats{Program: b.Name(), Target: profile.Name, Mode: "orig",
			FreshEncode: cfg.FreshEncode, Seconds: out.OrigSeconds}
		if nerr != nil {
			nrec.Error = nerr.Error()
		} else {
			nrec.OK = true
			nrec.Entries = nres.Resources.Entries
			nrec.Stages = nres.Resources.Stages
			nrec.Stats = nres.Stats
		}
		cfg.record(nrec)
		if nerr == core.ErrTimeout {
			out.OrigTimeout = true
			out.OrigSeconds = cfg.OrigTimeout.Seconds()
		} else if nerr != nil {
			// A naive-mode failure other than timeout still counts as "did
			// not produce a result in time".
			out.OrigTimeout = true
			out.OrigSeconds = cfg.OrigTimeout.Seconds()
		}
		if out.OptSeconds > 0 {
			out.Speedup = out.OrigSeconds / out.OptSeconds
		}
	}
	return out
}

func runVendor(b benchdata.Benchmark, profile hw.Profile) TargetResult {
	t0 := time.Now()
	var r *vendorc.Result
	var err error
	switch profile.Arch {
	case hw.SingleTable:
		r, err = vendorc.CompileTofino(b.Spec, profile)
	case hw.Streaming:
		r, err = vendorc.CompileStreaming(b.Spec, profile)
	default:
		r, err = vendorc.CompileIPU(b.Spec, profile)
	}
	var entries, stages int
	if err == nil {
		entries, stages = r.Entries, r.Stages
	}
	out := TargetResult{Entries: entries, Stages: stages, OptSeconds: time.Since(t0).Seconds()}
	if err != nil {
		out.Err = shortVendorErr(err)
	}
	return out
}

func shortVendorErr(err error) string {
	s := err.Error()
	s = strings.TrimPrefix(s, "vendorc: ")
	if i := strings.Index(s, ":"); i > 0 {
		s = s[:i]
	}
	return s
}

// Table3Alias runs the Table 3 suite with every spec passed through the
// field/state-renaming alias rewrite (benchdata.Alias): the memo
// hit-rate measurement corpus. Against a memo populated by a plain
// Table3 run, most compiles should land as tier-1 alias hits.
func Table3Alias(cfg Config) []T3Row {
	return runTable3(benchdata.Alias(), TofinoScaled(), IPUScaled(), FPGAScaled(), cfg)
}

// Table3Wire runs the wire-scale benchmark set — real header widths on
// the full device profiles. This is where the naive encoding's
// exponential constant space shows: the Orig columns censor at the
// timeout while the optimized compiler stays in seconds, reproducing the
// paper's O(day) → O(minute) speedup shape.
func Table3Wire(cfg Config) []T3Row {
	return runTable3(benchdata.WireScale(), hw.Tofino(), hw.IPU(), hw.FPGAStreaming(), cfg)
}

// Summary aggregates a Table 3 run into the §7 headline statistics.
type Summary struct {
	Cases              int     // benchmark × target cells
	ParserHawkOK       int     // cells ParserHawk compiled
	VendorRejects      int     // cells the vendor compiler rejected ("11 out of 58")
	VendorSuboptimal   int     // cells where the vendor output costs more ("19 out of 58")
	GeomeanSpeedup     float64 // geometric mean of Orig/Opt speedups
	MinSpeedup         float64
	MaxSpeedup         float64
	UnderOneMinute     int // optimized compiles finishing < 60 s
	UnderFiveMinutes   int
	CensoredOrigCounts int // naive-mode cells that hit the timeout
}

// Summarize computes the headline statistics over Table 3 rows.
func Summarize(rows []T3Row) Summary {
	s := Summary{MinSpeedup: math.Inf(1)}
	logSum, n := 0.0, 0
	cell := func(ph, vendor TargetResult, pipelined bool) {
		s.Cases++
		if ph.Err != "" {
			return
		}
		s.ParserHawkOK++
		if ph.OptSeconds < 60 {
			s.UnderOneMinute++
		}
		if ph.OptSeconds < 300 {
			s.UnderFiveMinutes++
		}
		if vendor.Err != "" {
			s.VendorRejects++
		} else if pipelined && vendor.Stages > ph.Stages ||
			!pipelined && vendor.Entries > ph.Entries {
			s.VendorSuboptimal++
		}
		if ph.Speedup > 0 {
			logSum += math.Log(ph.Speedup)
			n++
			if ph.Speedup < s.MinSpeedup {
				s.MinSpeedup = ph.Speedup
			}
			if ph.Speedup > s.MaxSpeedup {
				s.MaxSpeedup = ph.Speedup
			}
		}
		if ph.OrigTimeout {
			s.CensoredOrigCounts++
		}
	}
	for _, r := range rows {
		cell(r.Tofino, r.VendorTofino, false)
		cell(r.IPU, r.VendorIPU, true)
		cell(r.FPGA, r.VendorFPGA, true)
	}
	if n > 0 {
		s.GeomeanSpeedup = math.Exp(logSum / float64(n))
	} else {
		s.MinSpeedup = 0
	}
	return s
}

// FormatTable3 renders rows in the paper's column layout.
func FormatTable3(rows []T3Row, withOrig bool) string {
	var sb strings.Builder
	if withOrig {
		fmt.Fprintf(&sb, "%-38s | %6s %6s %8s %9s %9s | %-16s | %6s %6s %8s %9s %9s | %-16s | %6s %6s %8s %9s %9s | %-16s\n",
			"Program", "PH#TCAM", "bits", "OPT(s)", "Orig(s)", "speedup", "Tofino compiler",
			"PH#Stg", "bits", "OPT(s)", "Orig(s)", "speedup", "IPU compiler",
			"PH#Cyc", "bits", "OPT(s)", "Orig(s)", "speedup", "FPGA baseline")
	} else {
		fmt.Fprintf(&sb, "%-38s | %7s %6s %8s | %-16s | %7s %6s %8s | %-16s | %7s %6s %8s | %-16s\n",
			"Program", "PH#TCAM", "bits", "OPT(s)", "Tofino compiler",
			"PH#Stg", "bits", "OPT(s)", "IPU compiler",
			"PH#Cyc", "bits", "OPT(s)", "FPGA baseline")
	}
	sb.WriteString(strings.Repeat("-", 210) + "\n")
	for _, r := range rows {
		vt := fmtVendor(r.VendorTofino, false)
		vi := fmtVendor(r.VendorIPU, true)
		vf := fmtVendor(r.VendorFPGA, true)
		pht := fmt.Sprintf("%d", r.Tofino.Entries)
		if r.Tofino.Err != "" {
			pht = "FAIL"
		}
		phi := fmt.Sprintf("%d", r.IPU.Stages)
		if r.IPU.Err != "" {
			phi = "FAIL"
		}
		phf := fmt.Sprintf("%d", r.FPGA.Stages)
		if r.FPGA.Err != "" {
			phf = "FAIL"
		}
		if withOrig {
			fmt.Fprintf(&sb, "%-38s | %7s %6d %8.2f %9s %9s | %-16s | %6s %6d %8.2f %9s %9s | %-16s | %6s %6d %8.2f %9s %9s | %-16s\n",
				r.Program,
				pht, r.Tofino.SearchBits, r.Tofino.OptSeconds,
				fmtOrig(r.Tofino), fmtSpeedup(r.Tofino), vt,
				phi, r.IPU.SearchBits, r.IPU.OptSeconds,
				fmtOrig(r.IPU), fmtSpeedup(r.IPU), vi,
				phf, r.FPGA.SearchBits, r.FPGA.OptSeconds,
				fmtOrig(r.FPGA), fmtSpeedup(r.FPGA), vf)
		} else {
			fmt.Fprintf(&sb, "%-38s | %7s %6d %8.2f | %-16s | %7s %6d %8.2f | %-16s | %7s %6d %8.2f | %-16s\n",
				r.Program,
				pht, r.Tofino.SearchBits, r.Tofino.OptSeconds, vt,
				phi, r.IPU.SearchBits, r.IPU.OptSeconds, vi,
				phf, r.FPGA.SearchBits, r.FPGA.OptSeconds, vf)
		}
	}
	return sb.String()
}

func fmtVendor(v TargetResult, pipelined bool) string {
	if v.Err != "" {
		return v.Err
	}
	if pipelined {
		return fmt.Sprintf("%d stages", v.Stages)
	}
	return fmt.Sprintf("%d entries", v.Entries)
}

func fmtOrig(t TargetResult) string {
	if t.OrigSeconds == 0 {
		return "-"
	}
	if t.OrigTimeout {
		return fmt.Sprintf(">%.0f", t.OrigSeconds)
	}
	return fmt.Sprintf("%.2f", t.OrigSeconds)
}

func fmtSpeedup(t TargetResult) string {
	if t.Speedup == 0 {
		return "-"
	}
	if t.OrigTimeout {
		return fmt.Sprintf(">%.1fx", t.Speedup)
	}
	return fmt.Sprintf("%.1fx", t.Speedup)
}

// FormatSummary renders the §7 headline statistics.
func FormatSummary(s Summary) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cases: %d (benchmark x target)\n", s.Cases)
	fmt.Fprintf(&sb, "ParserHawk compiled: %d/%d\n", s.ParserHawkOK, s.Cases)
	fmt.Fprintf(&sb, "baseline rejected: %d/%d (paper: 11/58)\n", s.VendorRejects, s.Cases)
	fmt.Fprintf(&sb, "baseline suboptimal: %d/%d (paper: 19/58)\n", s.VendorSuboptimal, s.Cases)
	fmt.Fprintf(&sb, "compiles under 1 min: %d/%d (paper: 44/58)\n", s.UnderOneMinute, s.ParserHawkOK)
	fmt.Fprintf(&sb, "compiles under 5 min: %d/%d (paper: >90%%)\n", s.UnderFiveMinutes, s.ParserHawkOK)
	if s.GeomeanSpeedup > 0 {
		fmt.Fprintf(&sb, "geomean OPT speedup: %.2fx (min %.2fx, max %.2fx; %d censored) (paper: 309.44x)\n",
			s.GeomeanSpeedup, s.MinSpeedup, s.MaxSpeedup, s.CensoredOrigCounts)
	}
	return sb.String()
}
