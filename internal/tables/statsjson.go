package tables

import (
	"bytes"
	"encoding/json"
	"fmt"

	"parserhawk/internal/core"
	"parserhawk/internal/memo"
)

// RunStats is the machine-readable record of one ParserHawk compilation in
// a harness run: which benchmark on which target in which mode, the
// outcome, and the full solver-level statistics (core.Stats including the
// CDCL/bit-blasting counters and the per-iteration trace). hawkbench
// -stats emits a JSON array of these, one element per compilation.
type RunStats struct {
	Program string `json:"program"`
	Target  string `json:"target"`
	Mode    string `json:"mode"` // "opt" or "orig"
	// FreshEncode records whether incremental solving sessions were
	// disabled for the run — the A/B comparator refuses to compare two
	// files from the same mode.
	FreshEncode bool    `json:"fresh_encode,omitempty"`
	OK          bool    `json:"ok"`
	Error       string  `json:"error,omitempty"`
	Entries     int     `json:"entries"`
	Stages      int     `json:"stages"`
	Seconds     float64 `json:"seconds"`

	// Specification size before and after the SpecLint prune (also inside
	// Stats.Lint, surfaced top-level so table tooling can chart the search
	// space reduction without digging into the solver trace). All zero in
	// "orig" mode, which compiles with linting skipped.
	StatesPrePrune  int `json:"states_pre_prune,omitempty"`
	StatesPostPrune int `json:"states_post_prune,omitempty"`
	RulesPrePrune   int `json:"rules_pre_prune,omitempty"`
	RulesPostPrune  int `json:"rules_post_prune,omitempty"`

	Stats core.Stats `json:"stats"`

	// Memo is the cross-compile memo's counter movement during this one
	// compilation; nil when the harness ran without a memo (a pointer so
	// pre-memo stats files still decode under DisallowUnknownFields).
	Memo *MemoRunStats `json:"memo,omitempty"`
}

// MemoRunStats is the per-compilation slice of memo.Stats surfaced in the
// hawkbench -stats report: how many tier hits/misses this specific
// compile saw, and how long key canonicalization took.
type MemoRunStats struct {
	T1Hits      int64 `json:"t1_hits"`
	T1AliasHits int64 `json:"t1_alias_hits"`
	T1Misses    int64 `json:"t1_misses"`
	T2Hits      int64 `json:"t2_hits"`
	T2Misses    int64 `json:"t2_misses"`
	T3Hits      int64 `json:"t3_hits"`
	BytesRead   int64 `json:"bytes_read"`
	BytesWrit   int64 `json:"bytes_written"`
	CanonMS     int64 `json:"canon_ms"`
}

// memoDelta converts a memo.Stats movement into the stats-report form.
func memoDelta(d memo.Stats) *MemoRunStats {
	return &MemoRunStats{
		T1Hits: d.T1Hits, T1AliasHits: d.T1AliasHits, T1Misses: d.T1Misses,
		T2Hits: d.T2Hits, T2Misses: d.T2Misses, T3Hits: d.T3Hits,
		BytesRead: d.BytesRead, BytesWrit: d.BytesWritten,
		CanonMS: d.CanonNanos / 1e6,
	}
}

// EncodeRunStats serializes a harness run's per-compilation records as
// indented JSON, the hawkbench -stats output format.
func EncodeRunStats(runs []RunStats) ([]byte, error) {
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("tables: encoding run stats: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeRunStats reverses EncodeRunStats. Unknown fields are rejected so
// schema drift between a producer and a consumer fails loudly instead of
// silently dropping counters.
func DecodeRunStats(data []byte) ([]RunStats, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var runs []RunStats
	if err := dec.Decode(&runs); err != nil {
		return nil, fmt.Errorf("tables: decoding run stats: %w", err)
	}
	return runs, nil
}
