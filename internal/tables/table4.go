package tables

import (
	"fmt"
	"strings"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/core"
	"parserhawk/internal/dpgen"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// The motivating examples (ME) of §3.2 / Table 4, compared against
// DPParserGen under parameterized hardware. Each ME isolates one failure
// mode of rule-based generation:
//
//   - ME-1 needs a merging strategy that exploits TCAM priority: three of
//     four key values share a target, and a correct compiler can cover
//     them with one shadowed wildcard entry. DPParserGen's cube merging
//     cannot use priority, so it pays per-cube.
//   - ME-2 needs transition-key splitting; the chunk-check order and tree
//     shape decide the entry count (Figure 4 Step 2).
//   - ME-3 contains rules that are all redundant with the default —
//     semantic analysis collapses the state to a single wildcard entry,
//     while written-form compilation keeps every rule.

// me1Spec: 2-bit key; values {0,1,2} -> A, {3} -> B. Optimal: entry
// "11 -> B" shadowing a wildcard "-> A" (2 entries + A's work).
func me1Spec() *pir.Spec {
	return pir.MustNew("ME-1",
		[]pir.Field{{Name: "k", Width: 2}, {Name: "a", Width: 2}, {Name: "b", Width: 2}},
		[]pir.State{
			{
				Name:     "S",
				Extracts: []pir.Extract{{Field: "k"}},
				Key:      []pir.KeyPart{pir.WholeField("k", 2)},
				Rules: []pir.Rule{
					pir.ExactRule(0, 2, pir.To(1)),
					pir.ExactRule(1, 2, pir.To(1)),
					pir.ExactRule(2, 2, pir.To(1)),
					pir.ExactRule(3, 2, pir.To(2)),
				},
				Default: pir.RejectTarget,
			},
			{Name: "A", Extracts: []pir.Extract{{Field: "a"}}, Default: pir.AcceptTarget},
			{Name: "B", Extracts: []pir.Extract{{Field: "b"}}, Default: pir.AcceptTarget},
		})
}

// me2Spec: a 16-bit transition key with three rules; fits a 16-bit device
// directly but must be split on an 8-bit device.
func me2Spec() *pir.Spec {
	return pir.MustNew("ME-2",
		[]pir.Field{{Name: "k", Width: 16}, {Name: "d", Width: 2}, {Name: "e", Width: 2}},
		[]pir.State{
			{
				Name:     "S",
				Extracts: []pir.Extract{{Field: "k"}},
				Key:      []pir.KeyPart{pir.WholeField("k", 16)},
				Rules: []pir.Rule{
					pir.ExactRule(0xF0F0, 16, pir.To(1)),
					pir.ExactRule(0xF0F1, 16, pir.To(1)),
					pir.ExactRule(0x0F0F, 16, pir.To(2)),
				},
				Default: pir.AcceptTarget,
			},
			{Name: "D", Extracts: []pir.Extract{{Field: "d"}}, Default: pir.AcceptTarget},
			{Name: "E", Extracts: []pir.Extract{{Field: "e"}}, Default: pir.AcceptTarget},
		})
}

// me3Spec: every rule transitions to the same state the default reaches —
// all entries are redundant, and the whole state collapses to a wildcard.
func me3Spec() *pir.Spec {
	values := []uint64{1, 2, 4, 7, 8, 11, 13, 14} // poorly cube-mergeable
	var rules []pir.Rule
	for _, v := range values {
		rules = append(rules, pir.ExactRule(v, 4, pir.To(1)))
	}
	return pir.MustNew("ME-3",
		[]pir.Field{{Name: "k", Width: 4}, {Name: "a", Width: 2}},
		[]pir.State{
			{
				Name:     "S",
				Extracts: []pir.Extract{{Field: "k"}},
				Key:      []pir.KeyPart{pir.WholeField("k", 4)},
				Rules:    rules,
				Default:  pir.To(1),
			},
			{Name: "A", Extracts: []pir.Extract{{Field: "a"}}, Default: pir.AcceptTarget},
		})
}

// T4Row is one Table 4 row: ParserHawk vs DPParserGen entry counts under
// one parameterized hardware configuration.
type T4Row struct {
	Name       string
	PH, DP     int
	PHErr      string
	DPErr      string
	KeyWidth   int // 0 renders as "Tofino" (the scaled Tofino profile)
	Lookahead  int
	ExtractLim int
}

// Table4 reproduces the DPParserGen comparison.
func Table4(optTimeout time.Duration) []T4Row {
	if optTimeout == 0 {
		optTimeout = 2 * time.Minute
	}
	type cfg struct {
		name    string
		spec    *pir.Spec
		profile hw.Profile
		keyW    int
		la, ex  int
	}
	ltk, _ := benchdata.ByName("Large tran key")
	// The paper's first row uses the real Tofino's limits, whose 32-bit key
	// window fits the benchmark without splitting.
	tofinoFull := hw.Tofino()
	cases := []cfg{
		{"Large tran key", ltk.Spec, tofinoFull, 0, 0, 0},
		{"ME-1", me1Spec(), hw.Parameterized(4, 2, 10), 4, 2, 10},
		{"ME-2", me2Spec(), hw.Parameterized(16, 2, 24), 16, 2, 24},
		{"ME-2", me2Spec(), hw.Parameterized(8, 2, 24), 8, 2, 24},
		{"ME-3", me3Spec(), hw.Parameterized(16, 2, 10), 16, 2, 10},
	}
	var rows []T4Row
	for _, c := range cases {
		row := T4Row{Name: c.name, KeyWidth: c.keyW, Lookahead: c.la, ExtractLim: c.ex}
		opts := core.DefaultOptions()
		opts.Timeout = optTimeout
		if res, err := core.Compile(c.spec, c.profile, opts); err != nil {
			row.PHErr = err.Error()
		} else {
			row.PH = res.Resources.Entries
		}
		if r, err := dpgen.Compile(c.spec, c.profile); err != nil {
			row.DPErr = shortDPErr(err)
		} else {
			row.DP = r.Entries
		}
		rows = append(rows, row)
	}
	return rows
}

func shortDPErr(err error) string {
	return strings.TrimPrefix(err.Error(), "dpgen: ")
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []T4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s | %10s | %12s | %-10s %-10s %-10s\n",
		"Example", "ParserHawk", "DPParserGen", "key width", "lookahead", "extract")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, r := range rows {
		ph := fmt.Sprintf("%d", r.PH)
		if r.PHErr != "" {
			ph = "FAIL"
		}
		dp := fmt.Sprintf("%d", r.DP)
		if r.DPErr != "" {
			dp = r.DPErr
		}
		kw := "Tofino"
		la := "Tofino"
		ex := "Tofino"
		if r.KeyWidth > 0 {
			kw = fmt.Sprintf("%d-bit", r.KeyWidth)
			la = fmt.Sprintf("%d-bit", r.Lookahead)
			ex = fmt.Sprintf("%d-bit", r.ExtractLim)
		}
		fmt.Fprintf(&sb, "%-16s | %10s | %12s | %-10s %-10s %-10s\n", r.Name, ph, dp, kw, la, ex)
	}
	return sb.String()
}
